"""Benchmark: regenerate the paper's Sec. 1 headline summary numbers."""

from repro.experiments import summary


def test_bench_summary(benchmark, scale, duration_s):
    result = benchmark.pedantic(
        summary.run,
        kwargs={"duration_s": duration_s, "scale": scale},
        rounds=1, iterations=1,
    )
    print()
    print(result.render())
    assert result.tables
