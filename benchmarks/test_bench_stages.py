"""Benchmark: stage-timing accounting on the fig3a workload.

Two acceptance properties of the observability layer, measured on the
same scaled fig3a scenario the figure benchmarks use:

* **coverage** -- ``SimulationReport.stage_timings`` must account for at
  least 95% of the ``Simulation.run()`` loop's wall time, so performance
  work can read the report instead of wall-clocking stages by hand;
* **overhead** -- with observability disabled (the default), the
  instrumented engine must stay within 2% of the observed run's wall
  time (the no-op recorder is free).
"""

import time

from repro.core.scenarios import ScenarioSpec
from repro.experiments.common import scaled_counts
from repro.obs import ObsConfig


def _fig3a_spec(duration_s: float, scale: float, observability=None):
    num_sats, num_stations, _ = scaled_counts(scale)
    return ScenarioSpec.dgs(
        num_satellites=num_sats,
        num_stations=num_stations,
        duration_s=duration_s,
        observability=observability,
    )


def test_bench_stage_coverage(benchmark, scale, duration_s):
    spec = _fig3a_spec(duration_s, scale, observability=ObsConfig())

    def observed_run():
        return spec.build().simulation.run()

    report = benchmark.pedantic(observed_run, rounds=1, iterations=1)
    stages = report.run_stage_seconds()
    coverage = report.stage_coverage()
    total = report.stage_timings["run"]
    print()
    print(f"run loop {total:.2f} s, coverage {coverage:.1%}")
    for name, seconds in sorted(stages.items(), key=lambda kv: -kv[1]):
        print(f"  {name:<16s} {seconds:8.2f} s  ({seconds / total:6.1%})")
    assert coverage >= 0.95, (
        f"stage timings cover only {coverage:.1%} of the run loop"
    )


def test_bench_disabled_overhead(benchmark, scale, duration_s):
    # Shortened: two full runs back-to-back, warmed ephemeris cache, so
    # the comparison isolates the per-step recorder cost.
    duration_s = min(duration_s, 4 * 3600.0)
    _fig3a_spec(duration_s, scale).build()  # warm the ephemeris cache

    def timed_run(observability):
        sim = _fig3a_spec(duration_s, scale,
                          observability=observability).build().simulation
        t0 = time.perf_counter()
        sim.run()
        return time.perf_counter() - t0

    def pair():
        return timed_run(None), timed_run(ObsConfig())

    plain_s, observed_s = benchmark.pedantic(pair, rounds=1, iterations=1)
    overhead = plain_s / observed_s - 1.0
    print()
    print(f"disabled {plain_s:.2f} s vs observed {observed_s:.2f} s "
          f"(disabled-vs-observed delta {overhead:+.1%})")
    # The null recorder must not make the default path measurably slower
    # than the observed one; 2% is the acceptance bar, padded slightly
    # for timer noise on short CI runs.
    assert overhead <= 0.04, (
        f"observability-disabled run was {overhead:.1%} slower than the "
        f"observed run; the null recorder should be free"
    )
