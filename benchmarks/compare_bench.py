"""Benchmark regression gate: compare a run against the committed baseline.

Usage::

    python benchmarks/compare_bench.py BENCH_components.json \
        benchmarks/baselines/BENCH_components.baseline.json \
        [--threshold 0.25] [--summary "$GITHUB_STEP_SUMMARY"]

    # regenerate the baseline after an intentional perf change:
    python benchmarks/compare_bench.py BENCH_components.json \
        --write-baseline benchmarks/baselines/BENCH_components.baseline.json

The input is pytest-benchmark's ``--benchmark-json`` output; the baseline
is the slimmed ``repro-bench-baseline/1`` form (per-benchmark median
seconds) committed to the repo.

Raw medians are not comparable across machines -- the baseline was
recorded on one box, CI runs on another -- so the gate normalizes by
machine speed first: every benchmark's current/baseline ratio is divided
by the *median* ratio across all tracked benchmarks.  A uniformly 2x
faster machine then scores ~1.0 everywhere, while a single kernel that
regressed sticks out as an outlier.  A benchmark fails the gate when its
normalized ratio exceeds ``1 + threshold`` (default +25%).  The blind
spot -- a regression hitting *every* benchmark by the same factor -- is
the price of machine independence; the absolute medians still land in
the summary table for eyeballing.

Exit codes: 0 ok, 1 regression (or tracked benchmark missing), 2 usage.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys

BASELINE_SCHEMA = "repro-bench-baseline/1"


def load_medians(path: str) -> dict[str, float]:
    """``name -> median seconds`` from either supported file form."""
    with open(path, "r", encoding="utf-8") as handle:
        raw = json.load(handle)
    if raw.get("schema") == BASELINE_SCHEMA:
        return dict(raw["medians_s"])
    try:
        return {b["name"]: float(b["stats"]["median"])
                for b in raw["benchmarks"]}
    except (KeyError, TypeError) as exc:
        raise ValueError(
            f"{path}: neither a {BASELINE_SCHEMA} file nor "
            f"pytest-benchmark JSON ({exc})"
        ) from None


def write_baseline(current: dict[str, float], path: str,
                   source: str) -> None:
    baseline = {
        "schema": BASELINE_SCHEMA,
        "source": source,
        "medians_s": dict(sorted(current.items())),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")


def compare(current: dict[str, float], baseline: dict[str, float],
            threshold: float) -> tuple[list[list[str]], list[str]]:
    """Delta table rows and the list of failing benchmark names."""
    shared = sorted(set(current) & set(baseline))
    missing = sorted(set(baseline) - set(current))
    ratios = {name: current[name] / baseline[name] for name in shared
              if baseline[name] > 0}
    scale = statistics.median(ratios.values()) if ratios else 1.0
    rows: list[list[str]] = []
    failures = [f"{name} (tracked benchmark missing from this run)"
                for name in missing]
    for name in shared:
        normalized = ratios[name] / scale if scale > 0 else float("inf")
        verdict = "ok"
        if normalized > 1.0 + threshold:
            verdict = f"REGRESSION (+{(normalized - 1) * 100:.0f}%)"
            failures.append(f"{name} ({verdict})")
        rows.append([
            name,
            f"{baseline[name] * 1e3:.3f}",
            f"{current[name] * 1e3:.3f}",
            f"{(normalized - 1) * 100:+.1f}%",
            verdict,
        ])
    for name in sorted(set(current) - set(baseline)):
        rows.append([name, "-", f"{current[name] * 1e3:.3f}", "-",
                     "new (not in baseline)"])
    return rows, failures


def render_markdown(rows: list[list[str]], scale_note: str) -> str:
    header = ["benchmark", "baseline (ms)", "current (ms)",
              "normalized delta", "verdict"]
    lines = ["### Benchmark regression gate", "", scale_note, "",
             "| " + " | ".join(header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    lines += ["| " + " | ".join(row) + " |" for row in rows]
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="pytest-benchmark JSON from this run")
    parser.add_argument("baseline", nargs="?",
                        help="committed baseline to gate against")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed normalized slowdown (0.25 = +25%%)")
    parser.add_argument("--summary", default=None, metavar="PATH",
                        help="append the markdown delta table to PATH "
                             "(e.g. $GITHUB_STEP_SUMMARY)")
    parser.add_argument("--write-baseline", default=None, metavar="PATH",
                        help="write PATH from the current run and exit")
    args = parser.parse_args(argv)

    current = load_medians(args.current)
    if args.write_baseline:
        write_baseline(current, args.write_baseline, source=args.current)
        print(f"wrote {len(current)} benchmark medians to "
              f"{args.write_baseline}")
        return 0
    if not args.baseline:
        parser.error("baseline path required unless --write-baseline")

    baseline = load_medians(args.baseline)
    rows, failures = compare(current, baseline, args.threshold)
    scale_note = (f"Normalized by the median current/baseline ratio; "
                  f"gate: > +{args.threshold * 100:.0f}% normalized.")
    table = render_markdown(rows, scale_note)
    print(table)
    if args.summary:
        with open(args.summary, "a", encoding="utf-8") as handle:
            handle.write(table)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"all {len(rows)} benchmarks within +{args.threshold * 100:.0f}% "
          "of baseline (normalized)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
