"""Benchmark: design-choice ablations (matching, tx fraction, weather,
forecast error).

These back the Sec. 3 discussion quantitatively; there is no paper figure
to match, so the output is the measured table alone.
"""

from repro.experiments import ablations


def test_bench_ablations(benchmark, scale, duration_s):
    # Ablations are a 4-way sweep of multi-variant sims: run them at a
    # fraction of the headline horizon to keep the bench affordable.
    result = benchmark.pedantic(
        ablations.run,
        kwargs={"duration_s": min(duration_s, 6 * 3600.0), "scale": scale},
        rounds=1, iterations=1,
    )
    print()
    print(result.render())
    assert len(result.notes) == 8  # one table per ablation dimension
