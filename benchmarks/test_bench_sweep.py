"""Sweep-runner benchmark: parallel speedup and byte-identity gates.

The grid is the fig3-seeds grid (the four Fig. 3 variants replicated over
four constellation draws, 16 cells) at bench scale.  Four draws rather
than two so LPT can hand each of the 4 workers exactly one heavy dgs-L
cell -- the balance that makes the speedup gate meaningful.  Three gates:

* **byte-identity, parallel**: the merged ``repro-sweep/1`` report from a
  4-worker run equals the serial run's bytes;
* **byte-identity, resume**: a "killed" sweep (half the checkpoints
  survive) resumed with workers produces the same bytes again;
* **speedup**: the 4-worker wall clock beats serial by >= 2.5x -- only
  asserted on machines with >= 4 CPUs (the CI runner), otherwise the
  identity checks still run and the ratio is reported.

Scale/duration come from the usual knobs (REPRO_BENCH_SCALE /
REPRO_BENCH_DURATION); the sweep gate additionally accepts
REPRO_SWEEP_MIN_SPEEDUP to tune the ratio without editing code.
"""

from __future__ import annotations

import os
import shutil
import time

from repro.runners import SweepRunner
from repro.runners.grids import fig3_seed_grid
from repro.runners.sweep import CELLS_SUBDIR

WORKERS = 4


def _grid(duration_s: float, scale: float):
    return fig3_seed_grid(duration_s, scale, fleet_seeds=(7, 8, 9, 10))


def _min_speedup() -> float:
    return float(os.environ.get("REPRO_SWEEP_MIN_SPEEDUP", "2.5"))


def test_sweep_parallel_equivalence_and_speedup(duration_s, scale, tmp_path):
    grid = _grid(duration_s, scale)
    assert len(grid) >= 8

    serial_dir = tmp_path / "serial"
    started = time.perf_counter()
    serial = SweepRunner(grid, run_dir=str(serial_dir), workers=0).run()
    elapsed_serial = time.perf_counter() - started

    parallel_dir = tmp_path / "parallel"
    started = time.perf_counter()
    parallel = SweepRunner(
        grid, run_dir=str(parallel_dir), workers=WORKERS
    ).run()
    elapsed_parallel = time.perf_counter() - started

    assert parallel.to_json() == serial.to_json()

    # Kill/resume: keep half the parallel run's checkpoints, resume.
    resumed_dir = tmp_path / "resumed"
    os.makedirs(resumed_dir / CELLS_SUBDIR)
    survivors = sorted(os.listdir(parallel_dir / CELLS_SUBDIR))[::2]
    for name in survivors:
        shutil.copy(parallel_dir / CELLS_SUBDIR / name,
                    resumed_dir / CELLS_SUBDIR / name)
    resumed = SweepRunner(
        grid, run_dir=str(resumed_dir), workers=WORKERS
    ).run(resume=True)
    assert resumed.skipped == len(survivors)
    assert resumed.to_json() == serial.to_json()

    speedup = elapsed_serial / elapsed_parallel if elapsed_parallel else 0.0
    cpus = os.cpu_count() or 1
    print(
        f"\nsweep {len(grid)} cells: serial {elapsed_serial:.1f}s, "
        f"{WORKERS} workers {elapsed_parallel:.1f}s, speedup {speedup:.2f}x "
        f"({cpus} CPUs)"
    )
    if cpus >= WORKERS:
        assert speedup >= _min_speedup()
