"""Session lifecycle benchmarks: tick overhead and replay at scale.

Two contracts for the event-driven session API:

1. Tick overhead gate -- driving the paper-scale scenario (259 x 173)
   one ``advance()`` tick at a time costs at most 1.5x the batch
   ``Simulation.run()`` per-step cost.  The stepped lifecycle is the
   same loop body; the allowed overhead is the per-tick bookkeeping
   (pending-event drain, plan-delta diff, Python call dispatch).
2. Replay equivalence at fig3a scale -- the session's finalized report
   is byte-identical to the batch report, with and without tenants.
   Tier-1 pins this at toy scale; this bench repeats it at the
   environment-scaled population the figures use.

The pytest-benchmark timings feed the committed
``benchmarks/baselines/BENCH_session.baseline.json`` that
``compare_bench.py`` gates in CI (the ``service-smoke`` job).  Like the
other benches this file is not tier-1 (``testpaths`` excludes
``benchmarks/``).
"""

import math
import time
from dataclasses import replace

from repro.core.scenarios import ScenarioSpec
from repro.demand import tenant_mix
from repro.simulation import SimulationSession

#: The tick-overhead gate runs the paper's full 259 x 173 population --
#: that is the acceptance scale -- over a short horizon (the per-step
#: cost is what's measured, not the day).
GATE_SATELLITES = 259
GATE_STATIONS = 173
GATE_STEPS = 120
OVERHEAD_LIMIT = 1.5


def gate_spec() -> ScenarioSpec:
    return ScenarioSpec.dgs(
        num_satellites=GATE_SATELLITES,
        num_stations=GATE_STATIONS,
        duration_s=GATE_STEPS * 60.0,
    )


def run_batch(spec: ScenarioSpec):
    return spec.build().simulation.run()


def run_session_ticks(spec: ScenarioSpec):
    session = SimulationSession(spec)
    while session.step < session.horizon_steps:
        session.advance(steps=1)
    return session.finalize()


def test_bench_batch_run(benchmark):
    """Batch ``Simulation.run()`` at 259 x 173 over the gate horizon."""
    report = benchmark.pedantic(run_batch, args=(gate_spec(),),
                                rounds=3, iterations=1)
    assert report.generated_bits > 0


def test_bench_session_ticks(benchmark):
    """The same horizon driven one ``advance()`` tick at a time."""
    report = benchmark.pedantic(run_session_ticks, args=(gate_spec(),),
                                rounds=3, iterations=1)
    assert report.generated_bits > 0


def test_session_tick_overhead_gate():
    """Acceptance gate: per-step session cost <= 1.5x batch at 259x173.

    Best-of-3 wall clock on both sides, batch and session interleaved
    run-for-run so drift hits both equally.
    """
    best_batch = best_session = math.inf
    for _ in range(3):
        spec = gate_spec()
        start = time.perf_counter()
        batch_report = run_batch(spec)
        best_batch = min(best_batch, time.perf_counter() - start)

        start = time.perf_counter()
        session_report = run_session_ticks(spec)
        best_session = min(best_session, time.perf_counter() - start)
    assert session_report.to_json() == batch_report.to_json()
    ratio = best_session / best_batch
    print(f"\nsession tick overhead {GATE_SATELLITES}x{GATE_STATIONS}: "
          f"batch {1e3 * best_batch / GATE_STEPS:.2f} ms/step, "
          f"session {1e3 * best_session / GATE_STEPS:.2f} ms/step, "
          f"ratio {ratio:.3f}x (limit {OVERHEAD_LIMIT}x)")
    assert ratio <= OVERHEAD_LIMIT, (
        f"stepped session costs {ratio:.2f}x the batch loop "
        f"(limit {OVERHEAD_LIMIT}x)"
    )


def test_replay_equivalence_at_fig3a_scale(scale, duration_s):
    """Session == batch byte-for-byte at the figures' population scale."""
    from repro.experiments.paper_runs import spec_for_variant

    # The equivalence property is horizon-independent; cap the check at
    # two simulated hours so the full-scale CI run stays quick.
    horizon_s = min(duration_s, 7200.0)
    plain = spec_for_variant("dgs-L", horizon_s, scale)
    tenanted = replace(plain, tenants=tenant_mix("balanced"),
                       value="deadline")
    for spec in (plain, tenanted):
        batch = spec.build().simulation.run()
        session_report = SimulationSession(spec).run_to_horizon()
        label = "tenanted" if spec.tenants else "plain"
        assert session_report.to_json() == batch.to_json(), (
            f"session replay diverged from batch ({label} spec)"
        )
