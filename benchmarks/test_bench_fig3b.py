"""Benchmark: regenerate Fig. 3b (capture-to-reception latency CDF)."""

import numpy as np

from repro.experiments import fig3b


def test_bench_fig3b(benchmark, scale, duration_s):
    result = benchmark.pedantic(
        fig3b.run,
        kwargs={"duration_s": duration_s, "scale": scale},
        rounds=1, iterations=1,
    )
    print()
    print(result.render())
    # See fig3a: the ordering is a contention result; assert it only at
    # scales where the constellation actually loads the baseline.
    if scale >= 0.25:
        dgs_p90 = np.percentile(result.series["dgs"], 90)
        baseline_p90 = np.percentile(result.series["baseline"], 90)
        assert dgs_p90 <= baseline_p90, (
            f"DGS p90 latency {dgs_p90:.0f} min should not exceed the "
            f"baseline's {baseline_p90:.0f} min"
        )
