"""Benchmark: onboard storage requirement (Sec. 3.3 claim)."""

import numpy as np

from repro.experiments import storage_requirement


def test_bench_storage_requirement(benchmark, scale, duration_s):
    result = benchmark.pedantic(
        storage_requirement.run,
        kwargs={"duration_s": duration_s, "scale": scale},
        rounds=1, iterations=1,
    )
    print()
    print(result.render())
    # The claim: delayed acks do not blow up the recorder requirement.
    # Allow DGS up to ~3x the baseline's median peak -- well under the
    # "store a whole day" catastrophe the design avoids.
    base = np.median(result.series["baseline_peak_gb"])
    dgs = np.median(result.series["dgs_peak_gb"])
    if base > 0:
        assert dgs <= 3.0 * base + 2.0, (
            f"DGS median recorder peak {dgs:.1f} GB vs baseline {base:.1f} GB"
        )
