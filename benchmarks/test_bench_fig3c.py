"""Benchmark: regenerate Fig. 3c (value-function adaptability)."""

import numpy as np

from repro.experiments import fig3c


def test_bench_fig3c(benchmark, scale, duration_s):
    result = benchmark.pedantic(
        fig3c.run,
        kwargs={"duration_s": duration_s, "scale": scale},
        rounds=1, iterations=1,
    )
    print()
    print(result.render())
    # The paper's claim: optimizing for throughput inflates tail latency
    # relative to the latency-optimized run of the same network.
    p90_latency_phi = np.percentile(result.series["dgs25-L"], 90)
    p90_throughput_phi = np.percentile(result.series["dgs25-T"], 90)
    assert p90_throughput_phi >= 0.9 * p90_latency_phi, (
        "throughput-optimized p90 latency should not be materially better "
        "than latency-optimized"
    )
