"""Mega-constellation scaling benchmarks and acceptance gates.

Four contracts at Starlink-class population scale, beyond the paper's
259 x 173 scenario:

1. Spatial culling + sparse graphs give >= 5x per-step contact-graph
   build + pricing at 2.5k satellites against a 1000-station network,
   with bit-identical graphs to the dense path.
2. pytest-benchmark timings of the scaling hot paths (candidate
   generation, culled graph build, Walker synthesis) feed the committed
   baseline that ``compare_bench.py`` gates in CI.
3. A 10k-satellite x 1-hour run (float32 ephemeris, windowed streaming)
   completes under a bounded peak-RSS budget, measured in a subprocess
   so the parent's allocations cannot mask a regression.
4. A 4-worker shared-memory sweep builds each fleet's ephemeris exactly
   once: every worker trace reports zero cache misses and at least one
   shared-memory attach.

Like the component benches these are not tier-1 (``testpaths`` excludes
``benchmarks/``); the constellation-scaling CI job runs them.
"""

import glob
import json
import math
import os
import subprocess
import sys
import time
from dataclasses import replace
from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.core.scenarios import ScenarioSpec
from repro.groundstations.network import satnogs_like_network
from repro.orbits.constellation import walker_delta
from repro.orbits.ephemeris import EphemerisTable, clear_ephemeris_cache
from repro.runners.sweep import SweepCell, SweepRunner
from repro.satellites.satellite import Satellite
from repro.scheduling.scheduler import DownlinkScheduler
from repro.scheduling.value_functions import LatencyValue

EPOCH = datetime(2020, 6, 1)

#: The gate scenario: a 2500-satellite Walker shell (the 10k fleet's
#: measurement proxy -- same per-step kernels, CI-friendly runtime)
#: against a 1000-station network, the "1000+ stations" regime where the
#: dense M x N visibility matrix is the cost floor.
GATE_SATELLITES = 2500
GATE_STATIONS = 1000
GATE_INSTANTS = 10

#: Peak-RSS budget for the 10k x 1 h run.  Measured ~0.46 GB (float32
#: ephemeris, windowed streaming); 1.5 GB leaves headroom for allocator
#: variance while still catching any return to dense per-step matrices
#: or float64 monolithic tables.
RSS_BUDGET_KB = 1_500_000


@pytest.fixture(scope="module")
def scaling_world():
    """2500-sat Walker shell, 1000 stations, one shared ephemeris table."""
    clear_ephemeris_cache()
    tles = walker_delta(GATE_SATELLITES, 50, 1, 53.0, 550.0, EPOCH)
    fleet = [Satellite(tle=t) for t in tles]
    for sat in fleet:
        sat.generate_data(EPOCH - timedelta(hours=2), 7200.0)
    network = satnogs_like_network(GATE_STATIONS, seed=13)
    table = EphemerisTable.build(fleet, EPOCH, GATE_INSTANTS + 1, 60.0)

    def make_scheduler(culling):
        # Default weather (clear sky) isolates the geometry + pricing
        # cost the culling targets from the weather oracle's.
        return DownlinkScheduler(
            fleet, network, LatencyValue(),
            ephemeris=table, batched=True, spatial_culling=culling,
        )

    return fleet, network, table, make_scheduler


def _columns_identical(graph_a, graph_b) -> bool:
    cols_a, cols_b = graph_a.columns(), graph_b.columns()
    return all(
        a.shape == b.shape and np.array_equal(a, b)
        for a, b in zip(cols_a, cols_b)
    )


def test_contact_graph_speedup_mega_scale(scaling_world):
    """Acceptance gate: >= 5x culled vs dense at 2500 x 1000 scale.

    Both sides run the batched pricing kernels over the same shared
    ephemeris table; the only difference is the dense M x N visibility
    matrix vs the coarse-grid candidate prefilter.  Timed best-of-3 over
    the same instants back to back (not a pytest-benchmark fixture: the
    bit-identity assertion needs both sides' graphs for every instant).
    """
    _fleet, _network, _table, make_scheduler = scaling_world
    dense = make_scheduler(culling=False)
    culled = make_scheduler(culling=True)
    instants = [EPOCH + timedelta(minutes=k) for k in range(GATE_INSTANTS)]

    # Warm both sides over every timed instant: first-touch costs
    # (pair-group resolution, queue-profile fills) drop out, and the
    # warm-up already produces the graphs for the equivalence check.
    graphs_dense = [dense.contact_graph(when) for when in instants]
    graphs_culled = [culled.contact_graph(when) for when in instants]
    for graph_d, graph_c in zip(graphs_dense, graphs_culled):
        assert graph_d.num_edges > 0
        assert _columns_identical(graph_d, graph_c)

    def best_of(scheduler, reps=3):
        best = math.inf
        for _ in range(reps):
            start = time.perf_counter()
            for when in instants:
                scheduler.contact_graph(when)
            best = min(best, time.perf_counter() - start)
        return best

    elapsed_culled = best_of(culled)
    elapsed_dense = best_of(dense)
    speedup = elapsed_dense / elapsed_culled
    per_step_ms = 1e3 * elapsed_culled / GATE_INSTANTS
    print(
        f"\ncontact graph {GATE_SATELLITES}x{GATE_STATIONS}: "
        f"dense {1e3 * elapsed_dense / GATE_INSTANTS:.1f} ms/step, "
        f"culled {per_step_ms:.1f} ms/step, speedup {speedup:.2f}x"
    )
    assert speedup >= 5.0


def test_bench_culling_candidates(benchmark, scaling_world):
    """Per-step candidate generation alone (grid matmul + CSR expand)."""
    _fleet, _network, table, make_scheduler = scaling_world
    scheduler = make_scheduler(culling=True)
    sat_ecef = table.positions_ecef(EPOCH)
    benchmark(scheduler._culling_grid.candidate_pairs, sat_ecef)


def test_bench_contact_graph_walker2500(benchmark, scaling_world):
    """Full culled build + pricing per step at 2500 x 1000."""
    _fleet, _network, _table, make_scheduler = scaling_world
    scheduler = make_scheduler(culling=True)
    scheduler.contact_graph(EPOCH)
    benchmark(scheduler.contact_graph, EPOCH)


def test_bench_walker_delta_synthesis(benchmark):
    """Deterministic Walker-shell TLE synthesis at 2.5k."""
    benchmark(walker_delta, GATE_SATELLITES, 50, 1, 53.0, 550.0, EPOCH)


_RSS_CHILD = """
import json
import resource

from repro.runners.grids import constellation_scaling_grid

cells = constellation_scaling_grid()
cell = next(c for c in cells if c.label == "walker10000")
result = cell.spec.run()
print(json.dumps({
    "maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    "delivered_tb": result.report.delivered_tb,
}))
"""


def test_walker10000_peak_rss_bounded():
    """10k sats x 1 h completes within the peak-RSS budget.

    Runs the grid's ``walker10000`` cell (float32 ephemeris, windowed
    streaming) in a fresh interpreter and reads the child's own
    ``ru_maxrss``, so the measurement reflects exactly that run.
    """
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.run(
        [sys.executable, "-c", _RSS_CHILD],
        capture_output=True, text=True, env=env, timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(proc.stdout.strip().splitlines()[-1])
    print(f"\nwalker10000 peak RSS: {payload['maxrss_kb'] / 1024:.0f} MB "
          f"(budget {RSS_BUDGET_KB / 1024:.0f} MB)")
    assert payload["maxrss_kb"] < RSS_BUDGET_KB


def test_shared_memory_sweep_builds_once(tmp_path):
    """4-worker sweep over one fleet: zero rebuilds, all workers attach.

    The runner exports the fleet's ephemeris to POSIX shared memory once
    before the pool; each worker's trace must then report the table as a
    shared-memory hit and never as a build.
    """
    base = ScenarioSpec.dgs(
        constellation="walker", num_satellites=24, num_stations=20,
        duration_s=600.0, step_s=60.0,
    )
    cells = [
        SweepCell(f"seed{k}", replace(base, weather_seed=k))
        for k in range(1, 5)
    ]
    runner = SweepRunner(
        cells, run_dir=str(tmp_path), workers=4, trace=True,
        share_ephemeris=True,
    )
    runner.run()

    trace_paths = sorted(glob.glob(str(tmp_path / "traces" / "*.jsonl")))
    assert len(trace_paths) == len(cells)
    for path in trace_paths:
        with open(path) as fh:
            events = [json.loads(line) for line in fh]
        cache = [
            e for e in events
            if e.get("kind") == "cache" and e.get("name") == "ephemeris"
        ]
        assert cache, f"no ephemeris cache event in {path}"
        for event in cache:
            assert event["misses"] == 0, f"worker rebuilt ephemeris: {event}"
            assert event["shm_hits"] >= 1, f"no shared-memory attach: {event}"
