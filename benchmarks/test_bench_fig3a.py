"""Benchmark: regenerate Fig. 3a (data-backlog CDF).

Prints the paper-vs-measured percentile table for Baseline, DGS, and
DGS(25%).  The benchmarked quantity is the full experiment (three one-day
simulations, memoized across figures within the session).
"""

from repro.experiments import fig3a


def test_bench_fig3a(benchmark, scale, duration_s):
    result = benchmark.pedantic(
        fig3a.run,
        kwargs={"duration_s": duration_s, "scale": scale},
        rounds=1, iterations=1,
    )
    print()
    print(result.render())
    # The contention regime DGS targets needs enough satellites; below
    # ~scale 0.25 the 5-station baseline is legitimately unloaded (the
    # paper's own Sec. 1 point), so the ordering is only asserted above it.
    if scale >= 0.25:
        import numpy as np

        dgs = np.median(result.series["dgs"])
        baseline = np.median(result.series["baseline"])
        assert dgs <= baseline, (
            f"DGS median backlog {dgs} should not exceed baseline {baseline}"
        )
