"""Benchmark: validate the environment claims of Secs. 2 and 4.

Pass durations, the ~1.6 Gbps peak baseline link, the ~80 GB best
single-pass download, pass counts, and the 10x node-throughput ratio.
"""

from repro.experiments import setup_validation


def test_bench_setup_validation(benchmark, scale, duration_s):
    result = benchmark.pedantic(
        setup_validation.run,
        kwargs={"duration_s": duration_s, "scale": scale},
        rounds=1, iterations=1,
    )
    print()
    print(result.render())
    metrics = {m: (paper, measured) for m, paper, measured in result.tables[0].rows}
    paper_peak, measured_peak = metrics["peak baseline link (Gbps)"]
    assert abs(measured_peak - paper_peak) / paper_peak < 0.25
