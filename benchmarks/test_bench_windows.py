"""Contact-window index benchmarks: span gate, end-to-end gate, idle skip.

Three acceptance contracts for the precomputed contact-window index
(``repro.scheduling.windows``), all at the fig3a paper population
(259 satellites x 173 stations) regardless of ``REPRO_BENCH_SCALE`` --
the gates pin the scale the claims were measured at:

1. Schedule-span gate -- per-step ``contact_graph`` with the window
   index costs at most 1/3 of the culled threshold scan it replaces
   (``SPAN_SPEEDUP_FLOOR = 3.0``).  Both sides are warmed first and
   timed interleaved best-of-5 on ``time.process_time`` so scheduler
   jitter on shared CI boxes hits them equally.
2. End-to-end gate -- a full simulated day of fig3a (build + run) is
   at least 1.5x faster with the index than the culled path, with
   byte-identical reports.  Measured steady-state: the session-scoped
   ephemeris and window-index caches are warm, matching how the figure
   sweeps and the scheduler service actually run (scenarios are
   memoized across figures within a session).  The cold first build
   pays the one-shot index scan (~1.4 s CPU at paper scale); the cold
   numbers land in the printed summary for eyeballing but are not
   gated.
3. Idle-tick fast-forward -- on a sparse toy constellation the engine
   skips graph build and matching outright whenever the index reports
   zero active pairs (``idle_ticks_skipped > 0``), while the report
   stays byte-identical to the culled path and the reuse counters
   (``window_index_hits``, ``edges_rebuilt``) show intra-pass edge
   reuse actually firing.

The pytest-benchmark timings feed the committed
``benchmarks/baselines/BENCH_windows.baseline.json`` that
``compare_bench.py`` gates in CI.  Like the other benches this file is
not tier-1 (``testpaths`` excludes ``benchmarks/``).
"""

import json
import math
import time
from dataclasses import replace
from datetime import timedelta

from repro.core.scenarios import PAPER_EPOCH, ScenarioSpec
from repro.obs import ObsConfig
from repro.orbits.ephemeris import clear_ephemeris_cache
from repro.scheduling.windows import clear_window_index_cache

GATE_SATELLITES = 259
GATE_STATIONS = 173
#: Gate thresholds from the issue: >=3x on the schedule span, >=1.5x
#: end to end over the full fig3a day.
SPAN_SPEEDUP_FLOOR = 3.0
E2E_SPEEDUP_FLOOR = 1.5
#: Instants timed by the span gate (one simulated hour at 60 s cadence).
SPAN_STEPS = 60


def _fig3a_spec(contact_windows: bool) -> ScenarioSpec:
    spec = ScenarioSpec.dgs(
        num_satellites=GATE_SATELLITES,
        num_stations=GATE_STATIONS,
        duration_s=86400.0,
    )
    return replace(spec, contact_windows=contact_windows)


def _comparable(report) -> dict:
    """Report JSON minus wall-clock stage timings (machine noise)."""
    data = json.loads(report.to_json())
    data.pop("stage_timings", None)
    return data


def _span_pair():
    """Warmed (windows-on, windows-off) scenarios plus the timed instants."""
    scen_on = _fig3a_spec(True).build()
    scen_off = _fig3a_spec(False).build()
    instants = [PAPER_EPOCH + timedelta(minutes=k) for k in range(SPAN_STEPS)]
    for scen in (scen_on, scen_off):
        for when in instants:
            scen.simulation.scheduler.contact_graph(when)
    return scen_on, scen_off, instants


def _measure_span(scen_on, scen_off, instants) -> tuple[float, float]:
    """Interleaved best-of-5 per-step CPU seconds (windows, culled)."""
    best = {True: math.inf, False: math.inf}
    for _ in range(5):
        for flag, scen in ((True, scen_on), (False, scen_off)):
            scheduler = scen.simulation.scheduler
            start = time.process_time()
            for when in instants:
                scheduler.contact_graph(when)
            elapsed = (time.process_time() - start) / len(instants)
            best[flag] = min(best[flag], elapsed)
    return best[True], best[False]


def test_bench_window_graph_span(benchmark):
    """Per-step ``contact_graph`` with the window index, fig3a scale."""
    scen_on, _, instants = _span_pair()
    scheduler = scen_on.simulation.scheduler

    def span():
        for when in instants:
            scheduler.contact_graph(when)

    benchmark.pedantic(span, rounds=3, iterations=1)


def test_bench_culled_graph_span(benchmark):
    """Per-step ``contact_graph`` on the culled path, fig3a scale."""
    _, scen_off, instants = _span_pair()
    scheduler = scen_off.simulation.scheduler

    def span():
        for when in instants:
            scheduler.contact_graph(when)

    benchmark.pedantic(span, rounds=3, iterations=1)


def test_contact_graph_span_gate():
    """Acceptance gate: window-index span >= 3x the culled span.

    One remeasure retry absorbs the occasional scheduler hiccup that
    best-of-5 interleaving cannot -- the gate fails only when both
    measurements land under the floor.
    """
    scen_on, scen_off, instants = _span_pair()
    on_s, off_s = _measure_span(scen_on, scen_off, instants)
    ratio = off_s / on_s
    if ratio < SPAN_SPEEDUP_FLOOR:
        on_s, off_s = _measure_span(scen_on, scen_off, instants)
        ratio = off_s / on_s
    print(f"\ncontact_graph span {GATE_SATELLITES}x{GATE_STATIONS}: "
          f"windows {1e3 * on_s:.3f} ms/step, culled {1e3 * off_s:.3f} "
          f"ms/step, speedup {ratio:.2f}x (floor {SPAN_SPEEDUP_FLOOR}x)")
    assert ratio >= SPAN_SPEEDUP_FLOOR, (
        f"window-index span speedup {ratio:.2f}x is under the "
        f"{SPAN_SPEEDUP_FLOOR}x floor"
    )


def test_end_to_end_fullday_gate():
    """Acceptance gate: full-day fig3a >= 1.5x end to end, reports equal.

    Steady state: one cold pass per side populates the session caches
    (and pays the one-shot index build), then two interleaved timed
    passes per side are gated on best-of CPU time.  Every pass's report
    must match byte for byte.
    """
    clear_ephemeris_cache()
    clear_window_index_cache()

    def run(contact_windows: bool) -> tuple[float, dict]:
        start = time.process_time()
        scen = _fig3a_spec(contact_windows).build()
        report = scen.simulation.run()
        return time.process_time() - start, _comparable(report)

    cold_on, baseline = run(True)
    cold_off, report = run(False)
    assert report == baseline, "cold reports diverged (windows on vs off)"
    best = {True: math.inf, False: math.inf}
    for _ in range(2):
        for flag in (True, False):
            elapsed, report = run(flag)
            assert report == baseline, (
                f"warm report diverged (contact_windows={flag})"
            )
            best[flag] = min(best[flag], elapsed)
    ratio = best[False] / best[True]
    print(f"\nfull-day fig3a end to end: windows {best[True]:.2f} s, "
          f"culled {best[False]:.2f} s, speedup {ratio:.2f}x "
          f"(floor {E2E_SPEEDUP_FLOOR}x; cold {cold_on:.2f} s vs "
          f"{cold_off:.2f} s)")
    assert ratio >= E2E_SPEEDUP_FLOOR, (
        f"end-to-end speedup {ratio:.2f}x is under the "
        f"{E2E_SPEEDUP_FLOOR}x floor"
    )


def test_idle_tick_fast_forward_sparse_toy():
    """Sparse toy: idle ticks are skipped, edges reused, report identical."""
    spec = ScenarioSpec.dgs(num_satellites=6, num_stations=4,
                            duration_s=14400.0)
    observed = replace(spec, observability=ObsConfig()).build()
    observed.simulation.run()
    counters = observed.simulation.obs.counters_snapshot()
    assert counters.get("idle_ticks_skipped", 0) > 0, (
        "sparse toy never fast-forwarded an idle tick"
    )
    assert counters.get("window_index_hits", 0) > 0
    assert counters.get("edges_rebuilt", 0) > 0
    # Reuse means strictly fewer rebuilds than index-served steps.
    assert counters["edges_rebuilt"] < counters["window_index_hits"]
    assert "window_index_build" in observed.simulation.obs.span_calls()

    on = replace(spec, contact_windows=True).build().simulation.run()
    off = replace(spec, contact_windows=False).build().simulation.run()
    assert on.to_json() == off.to_json(), (
        "sparse-toy report diverged between window-index and culled paths"
    )
