"""Component micro-benchmarks: the hot paths of the simulation loop.

Unlike the figure benches (one long pedantic round), these use
pytest-benchmark's statistical timing: SGP4 propagation, vectorized
visibility, contact-graph pricing, and the three matchers.  They guard
against performance regressions that would make full-scale reproduction
impractical (a simulated day is ~1440 of each of these per scenario).
"""

from datetime import datetime, timedelta

import pytest

from repro.core.scenarios import build_paper_fleet, build_paper_weather
from repro.groundstations.network import satnogs_like_network
from repro.orbits.sgp4 import SGP4
from repro.scheduling.graph import GeometryEngine
from repro.scheduling.matching import (
    gale_shapley,
    greedy_matching,
    max_weight_matching,
)
from repro.scheduling.scheduler import DownlinkScheduler
from repro.scheduling.value_functions import LatencyValue

EPOCH = datetime(2020, 6, 1)


@pytest.fixture(scope="module")
def world():
    fleet = build_paper_fleet(100, seed=7)
    for sat in fleet:
        sat.generate_data(EPOCH - timedelta(hours=1), 3600.0)
    network = satnogs_like_network(80, seed=11)
    scheduler = DownlinkScheduler(
        fleet, network, LatencyValue(), weather=build_paper_weather()
    )
    return fleet, network, scheduler


def test_bench_sgp4_propagation(benchmark, world):
    fleet, _network, _scheduler = world
    propagator = SGP4(fleet[0].tle)

    def propagate_one_day():
        for minutes in range(0, 1440, 10):
            propagator.propagate_tsince(float(minutes))

    benchmark(propagate_one_day)


def test_bench_visibility_matrix(benchmark, world):
    fleet, network, _scheduler = world
    engine = GeometryEngine(network)
    benchmark(engine.visibility, fleet, EPOCH)


def test_bench_contact_graph(benchmark, world):
    _fleet, _network, scheduler = world
    benchmark(scheduler.contact_graph, EPOCH)


def test_bench_full_schedule_step(benchmark, world):
    _fleet, _network, scheduler = world
    benchmark(scheduler.schedule_step, EPOCH)


@pytest.fixture(scope="module")
def dense_graph(world):
    """A denser graph than a single instant gives, for matcher timing."""
    _fleet, _network, scheduler = world
    graph = scheduler.contact_graph(EPOCH)
    if len(graph.edges) < 20:
        # Merge a few instants so matchers have real work.
        edges = list(graph.edges)
        for minute in (30, 60, 90, 120):
            extra = scheduler.contact_graph(EPOCH + timedelta(minutes=minute))
            seen = {(e.satellite_index, e.station_index) for e in edges}
            edges.extend(
                e for e in extra.edges
                if (e.satellite_index, e.station_index) not in seen
            )
        from repro.scheduling.graph import ContactGraph

        graph = ContactGraph(EPOCH, edges, graph.num_satellites,
                             graph.num_stations)
    return graph


def test_bench_gale_shapley(benchmark, dense_graph):
    result = benchmark(gale_shapley, dense_graph)
    assert isinstance(result, list)


def test_bench_hungarian_matching(benchmark, dense_graph):
    result = benchmark(max_weight_matching, dense_graph)
    assert isinstance(result, list)


def test_bench_greedy_matching(benchmark, dense_graph):
    result = benchmark(greedy_matching, dense_graph)
    assert isinstance(result, list)
