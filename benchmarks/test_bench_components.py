"""Component micro-benchmarks: the hot paths of the simulation loop.

Unlike the figure benches (one long pedantic round), these use
pytest-benchmark's statistical timing: SGP4 propagation, vectorized
visibility, contact-graph pricing, and the three matchers.  They guard
against performance regressions that would make full-scale reproduction
impractical (a simulated day is ~1440 of each of these per scenario).
"""

import time
from datetime import datetime, timedelta

import pytest

from repro.core.scenarios import build_paper_fleet, build_paper_weather
from repro.groundstations.network import satnogs_like_network
from repro.orbits.ephemeris import (
    EphemerisTable,
    clear_ephemeris_cache,
    shared_ephemeris_table,
)
from repro.orbits.sgp4 import SGP4
from repro.scheduling.graph import GeometryEngine
from repro.scheduling.matching import (
    gale_shapley,
    greedy_matching,
    max_weight_matching,
)
from repro.scheduling.scheduler import DownlinkScheduler
from repro.scheduling.value_functions import LatencyValue

EPOCH = datetime(2020, 6, 1)


@pytest.fixture(scope="module")
def world():
    fleet = build_paper_fleet(100, seed=7)
    for sat in fleet:
        sat.generate_data(EPOCH - timedelta(hours=1), 3600.0)
    network = satnogs_like_network(80, seed=11)
    scheduler = DownlinkScheduler(
        fleet, network, LatencyValue(), weather=build_paper_weather()
    )
    return fleet, network, scheduler


def test_bench_sgp4_propagation(benchmark, world):
    fleet, _network, _scheduler = world
    propagator = SGP4(fleet[0].tle)

    def propagate_one_day():
        for minutes in range(0, 1440, 10):
            propagator.propagate_tsince(float(minutes))

    benchmark(propagate_one_day)


def test_bench_visibility_matrix(benchmark, world):
    fleet, network, _scheduler = world
    engine = GeometryEngine(network)
    benchmark(engine.visibility, fleet, EPOCH)


def test_bench_ephemeris_table(benchmark, world):
    """One vectorized SGP4 pass over the fleet for a 2 h horizon."""
    fleet, _network, _scheduler = world
    benchmark(EphemerisTable.build, fleet, EPOCH, 120, 60.0)


def test_bench_contact_graph(benchmark, world):
    _fleet, _network, scheduler = world
    benchmark(scheduler.contact_graph, EPOCH)


def test_bench_contact_graph_scalar(benchmark, world):
    """The per-pair reference path, for before/after comparison."""
    fleet, network, _scheduler = world
    scheduler = DownlinkScheduler(
        fleet, network, LatencyValue(), weather=build_paper_weather(),
        batched=False,
    )
    benchmark(scheduler.contact_graph, EPOCH)


def test_bench_contact_graph_batched_with_ephemeris(benchmark, world):
    """The production configuration: ephemeris table + batched kernel."""
    fleet, network, _scheduler = world
    table = shared_ephemeris_table(fleet, EPOCH, 120, 60.0)
    scheduler = DownlinkScheduler(
        fleet, network, LatencyValue(), weather=build_paper_weather(),
        ephemeris=table, batched=True,
    )
    benchmark(scheduler.contact_graph, EPOCH)


def test_contact_graph_speedup_paper_scale():
    """Acceptance gate: >= 3x on the paper's 259 x 173 scenario.

    Times ``num_steps`` minutes of graph construction through both paths
    (each including its own propagation strategy: per-satellite SGP4 for
    the scalar path, the shared ephemeris table for the batched one) and
    asserts the ratio.  Not a pytest-benchmark fixture on purpose -- the
    two sides must run the same instants back to back.
    """
    num_steps = 50

    def build(batched):
        fleet = build_paper_fleet(259, seed=7)
        for sat in fleet:
            sat.generate_data(EPOCH - timedelta(hours=1), 3600.0)
        network = satnogs_like_network(173, seed=11)
        table = None
        if batched:
            table = shared_ephemeris_table(fleet, EPOCH, num_steps, 60.0)
        return DownlinkScheduler(
            fleet, network, LatencyValue(), weather=build_paper_weather(),
            ephemeris=table, batched=batched,
        )

    def run(scheduler):
        graphs = []
        start = time.perf_counter()
        for k in range(num_steps):
            graphs.append(
                scheduler.contact_graph(EPOCH + timedelta(minutes=k))
            )
        return time.perf_counter() - start, graphs

    clear_ephemeris_cache()
    scalar = build(batched=False)
    batched = build(batched=True)
    # Warm the weather / pair-group caches so both sides time steady state.
    scalar.contact_graph(EPOCH)
    batched.contact_graph(EPOCH)
    elapsed_batched, graphs_batched = run(batched)
    elapsed_scalar, graphs_scalar = run(scalar)

    for graph_s, graph_b in zip(graphs_scalar, graphs_batched):
        assert len(graph_s.edges) == len(graph_b.edges)
        for edge_s, edge_b in zip(graph_s.edges, graph_b.edges):
            assert edge_s.satellite_index == edge_b.satellite_index
            assert edge_s.station_index == edge_b.station_index
            assert edge_s.weight == edge_b.weight
            assert edge_s.bitrate_bps == edge_b.bitrate_bps

    speedup = elapsed_scalar / elapsed_batched
    print(
        f"\ncontact graph 259x173: scalar {elapsed_scalar:.2f}s, "
        f"batched {elapsed_batched:.2f}s, speedup {speedup:.1f}x"
    )
    assert speedup >= 3.0


def test_deadline_pricing_overhead_paper_scale():
    """Acceptance gate: tenant-priced Phi within 1.5x of LatencyValue.

    Times graph construction on the fig3a workload (259 x 173, batched
    kernels, shared ephemeris) under both value functions, back to back
    over the same instants on the same tenant-stamped fleet, and asserts
    the deadline pricing's extra work (demand columns, per-slot weights,
    urgency term) stays within 1.5x of the paper's age-only pricing.
    """
    from repro.demand import DemandAssigner, RequestGenerator, tenant_mix
    from repro.scheduling.value_functions import DeadlineSlaValue

    num_steps = 30
    mix = tenant_mix("balanced")

    clear_ephemeris_cache()
    fleet = build_paper_fleet(259, seed=7)
    assigner = DemandAssigner(RequestGenerator(mix, seed=13),
                              requests_per_day=24)
    for sat in fleet:
        sat.demand = assigner
        sat.generate_data(EPOCH - timedelta(hours=1), 3600.0)
    network = satnogs_like_network(173, seed=11)
    table = shared_ephemeris_table(fleet, EPOCH, num_steps, 60.0)

    def build(value_function):
        return DownlinkScheduler(
            fleet, network, value_function, weather=build_paper_weather(),
            ephemeris=table, batched=True,
        )

    def run(scheduler):
        start = time.perf_counter()
        for k in range(num_steps):
            scheduler.contact_graph(EPOCH + timedelta(minutes=k))
        return time.perf_counter() - start

    latency = build(LatencyValue())
    deadline = build(DeadlineSlaValue(tenants=mix))
    # Warm caches (weather, pair groups, demand columns) on both sides.
    latency.contact_graph(EPOCH)
    deadline.contact_graph(EPOCH)
    elapsed_deadline = run(deadline)
    elapsed_latency = run(latency)

    ratio = elapsed_deadline / elapsed_latency
    print(
        f"\npricing 259x173: latency {elapsed_latency:.2f}s, "
        f"deadline {elapsed_deadline:.2f}s, ratio {ratio:.2f}x"
    )
    assert ratio <= 1.5


def test_bench_full_schedule_step(benchmark, world):
    _fleet, _network, scheduler = world
    benchmark(scheduler.schedule_step, EPOCH)


@pytest.fixture(scope="module")
def dense_graph(world):
    """A denser graph than a single instant gives, for matcher timing."""
    _fleet, _network, scheduler = world
    graph = scheduler.contact_graph(EPOCH)
    if len(graph.edges) < 20:
        # Merge a few instants so matchers have real work.
        edges = list(graph.edges)
        for minute in (30, 60, 90, 120):
            extra = scheduler.contact_graph(EPOCH + timedelta(minutes=minute))
            seen = {(e.satellite_index, e.station_index) for e in edges}
            edges.extend(
                e for e in extra.edges
                if (e.satellite_index, e.station_index) not in seen
            )
        from repro.scheduling.graph import ContactGraph

        graph = ContactGraph(EPOCH, edges, graph.num_satellites,
                             graph.num_stations)
    return graph


def test_bench_gale_shapley(benchmark, dense_graph):
    result = benchmark(gale_shapley, dense_graph)
    assert isinstance(result, list)


def test_bench_hungarian_matching(benchmark, dense_graph):
    result = benchmark(max_weight_matching, dense_graph)
    assert isinstance(result, list)


def test_bench_greedy_matching(benchmark, dense_graph):
    result = benchmark(greedy_matching, dense_graph)
    assert isinstance(result, list)
