"""Benchmark configuration.

Each benchmark regenerates one of the paper's figures/tables and prints
the paper-vs-measured comparison.  Scale and horizon come from environment
variables so the same files serve both CI smoke runs and full paper-scale
reproduction:

    REPRO_BENCH_SCALE     population scale factor (default 0.3;
                          1.0 = 259 satellites x 173 stations)
    REPRO_BENCH_DURATION  simulated seconds (default 43200 = 12 h;
                          86400 = the paper's full day)

Full reproduction (the numbers recorded in EXPERIMENTS.md):

    REPRO_BENCH_SCALE=1.0 REPRO_BENCH_DURATION=86400 \
        pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import os

import pytest


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.3"))


def bench_duration_s() -> float:
    return float(os.environ.get("REPRO_BENCH_DURATION", str(12 * 3600)))


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


@pytest.fixture(scope="session")
def duration_s() -> float:
    return bench_duration_s()
