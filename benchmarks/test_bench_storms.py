"""Storm-weather and diversity-reception overhead benchmarks.

Three tracked benchmarks -- stationary cell weather, advected storm
tracks, and storms plus two-station diversity reception -- plus the
acceptance gate: the storm + diversity path may cost at most 1.5x the
stationary-weather run on the same population.  The storm field adds a
second additive weather term per (station, instant) sample and the
diversity path adds secondary-receiver recruitment plus per-copy link
evaluations; this bench is what keeps both "cheap by construction".

The pytest-benchmark timings feed the committed
``benchmarks/baselines/BENCH_storms.baseline.json`` that
``compare_bench.py`` gates in CI (the ``storm-diversity-smoke`` job).
Like the other benches this file is not tier-1 (``testpaths`` excludes
``benchmarks/``).
"""

import math
import time

from repro.core.scenarios import ScenarioSpec

#: Mid-scale population: large enough that per-step weather sampling and
#: matching dominate setup, small enough for three interleaved best-of-3
#: runs in a CI smoke job.
GATE_SATELLITES = 100
GATE_STATIONS = 60
GATE_STEPS = 120
OVERHEAD_LIMIT = 1.5


def _spec(**kwargs) -> ScenarioSpec:
    return ScenarioSpec.dgs(
        num_satellites=GATE_SATELLITES,
        num_stations=GATE_STATIONS,
        duration_s=GATE_STEPS * 60.0,
        **kwargs,
    )


def stationary_spec() -> ScenarioSpec:
    return _spec()


def storm_spec() -> ScenarioSpec:
    return _spec(weather="storms", storm_rate=2.0)


def storm_diversity_spec() -> ScenarioSpec:
    return _spec(weather="storms", storm_rate=2.0,
                 execution_mode="diversity", diversity_receivers=2)


def run(spec: ScenarioSpec):
    return spec.build().simulation.run()


def test_bench_stationary_weather(benchmark):
    """Baseline: the PR-1 cell field, live execution."""
    report = benchmark.pedantic(run, args=(stationary_spec(),),
                                rounds=3, iterations=1)
    assert report.generated_bits > 0


def test_bench_storm_weather(benchmark):
    """Advected storm tracks layered on the cell field, live execution."""
    report = benchmark.pedantic(run, args=(storm_spec(),),
                                rounds=3, iterations=1)
    assert report.generated_bits > 0


def test_bench_storm_diversity(benchmark):
    """Storm weather plus two-station diversity reception."""
    report = benchmark.pedantic(run, args=(storm_diversity_spec(),),
                                rounds=3, iterations=1)
    assert report.diversity["passes"] > 0


def test_storm_diversity_overhead_gate():
    """Acceptance gate: storms + diversity <= 1.5x stationary weather.

    Best-of-3 wall clock on both sides, interleaved run-for-run so
    machine drift hits both equally.
    """
    best_plain = best_storm = math.inf
    for _ in range(3):
        start = time.perf_counter()
        run(stationary_spec())
        best_plain = min(best_plain, time.perf_counter() - start)

        start = time.perf_counter()
        report = run(storm_diversity_spec())
        best_storm = min(best_storm, time.perf_counter() - start)
    assert report.diversity["passes"] > 0
    ratio = best_storm / best_plain
    print(f"\nstorm+diversity overhead {GATE_SATELLITES}x{GATE_STATIONS}: "
          f"stationary {1e3 * best_plain / GATE_STEPS:.2f} ms/step, "
          f"storm+div {1e3 * best_storm / GATE_STEPS:.2f} ms/step, "
          f"ratio {ratio:.3f}x (limit {OVERHEAD_LIMIT}x)")
    assert ratio <= OVERHEAD_LIMIT, (
        f"storm + diversity costs {ratio:.2f}x the stationary-weather run "
        f"(limit {OVERHEAD_LIMIT}x)"
    )
