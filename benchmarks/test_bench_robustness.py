"""Benchmark: robustness under station failures (Sec. 1 claim).

No paper figure exists for this -- the paper asserts the single-point-of-
failure argument without measuring it -- so the output is the measured
degradation table, with the qualitative claim asserted.
"""

from repro.experiments import robustness


def test_bench_robustness(benchmark, scale, duration_s):
    result = benchmark.pedantic(
        robustness.run,
        kwargs={"duration_s": min(duration_s, 12 * 3600.0), "scale": scale},
        rounds=1, iterations=1,
    )
    print()
    print(result.render())
    # Losing the busiest station must hurt the 5-station baseline more
    # than the many-station DGS network (announced case; relative terms).
    base_healthy = result.series["baseline:healthy"][0]
    base_hit = result.series["baseline:worst-announced"][0]
    dgs_healthy = result.series["dgs:healthy"][0]
    dgs_hit = result.series["dgs:worst-announced"][0]
    base_loss = (base_healthy - base_hit) / base_healthy if base_healthy else 0.0
    dgs_loss = (dgs_healthy - dgs_hit) / dgs_healthy if dgs_healthy else 0.0
    assert dgs_loss <= base_loss + 0.02, (
        f"DGS should degrade less: baseline -{base_loss:.1%}, DGS -{dgs_loss:.1%}"
    )
