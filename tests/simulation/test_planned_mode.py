"""Tests for planned-execution mode (the paper's operational model)."""

from datetime import datetime

import pytest

from repro.groundstations.network import satnogs_like_network
from repro.orbits.constellation import synthetic_leo_constellation
from repro.satellites.satellite import GB_TO_BITS, Satellite
from repro.scheduling.value_functions import LatencyValue
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulation

EPOCH = datetime(2020, 6, 1)


def build(mode="planned", tx_fraction=0.15, hours=4.0, **config_kwargs):
    tles = synthetic_leo_constellation(8, EPOCH, seed=21)
    sats = [Satellite(tle=t, chunk_size_gb=0.5) for t in tles]
    network = satnogs_like_network(20, tx_capable_fraction=tx_fraction,
                                   seed=13)
    config = SimulationConfig(
        start=EPOCH, duration_s=hours * 3600.0,
        execution_mode=mode, **config_kwargs,
    )
    sim = Simulation(satellites=sats, network=network, value_function=LatencyValue(), config=config)
    return sim


class TestConfigValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="execution_mode"):
            SimulationConfig(execution_mode="vibes")

    def test_horizon_must_cover_refresh(self):
        with pytest.raises(ValueError):
            SimulationConfig(execution_mode="planned",
                             plan_refresh_s=7200.0, plan_horizon_s=3600.0)


class TestPlannedExecution:
    @pytest.fixture(scope="class")
    def planned_run(self):
        sim = build()
        return sim, sim.run()

    def test_data_flows(self, planned_run):
        _sim, report = planned_run
        assert report.delivered_bits > 0.0

    def test_conservation(self, planned_run):
        _sim, report = planned_run
        backlog_bits = sum(report.final_backlog_gb.values()) * GB_TO_BITS
        assert report.delivered_bits + backlog_bits == pytest.approx(
            report.generated_bits, rel=1e-9
        )

    def test_satellites_acquired_plans(self, planned_run):
        sim, _report = planned_run
        # With 15% tx stations, most satellites bootstrap within hours.
        assert len(sim._satellite_plans) >= len(sim.satellites) // 2

    def test_stale_plans_do_not_crash(self):
        """A long refresh interval with a short horizon forces satellites
        to fly with plans that expire -- they simply idle, no errors."""
        sim = build(hours=3.0, plan_refresh_s=3600.0,
                    plan_horizon_s=3600.0)
        report = sim.run()
        assert report.generated_bits > 0.0

    def test_planned_under_forecast_can_mismatch(self):
        """With forecast-driven plans and plan staleness, mismatches and
        losses are possible (counted, not fatal)."""
        sim = build(hours=4.0, use_forecast=True,
                    plan_refresh_s=1800.0, plan_horizon_s=3600.0)
        report = sim.run()
        assert sim.plan_mismatch_steps >= 0
        assert report.lost_transmission_bits >= 0.0


class TestPlannedVsLive:
    def test_live_delivers_at_least_as_much(self):
        """Live matching is the full-information upper bound; planned
        execution pays for plan latency and staleness."""
        live = build(mode="live")
        planned = build(mode="planned")
        live_report = live.run()
        planned_report = planned.run()
        assert planned_report.delivered_bits <= live_report.delivered_bits + 1e-6

    def test_no_tx_stations_means_no_downlink_in_planned_mode(self):
        """Without any uplink path no satellite ever receives a plan, so
        nothing is ever transmitted -- the hybrid design's bootstrap
        requirement made concrete."""
        sim = build(tx_fraction=0.0, hours=2.0)
        report = sim.run()
        assert report.delivered_bits == 0.0
        assert len(sim._satellite_plans) == 0