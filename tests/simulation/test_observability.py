"""Observability layer: no-op equivalence, stage coverage, traced runs.

The contract under test: with observability disabled (the default) the
engine's output is bit-identical to an instrumented run and the recorder
costs nothing measurable; with it enabled, the run emits schema-valid
JSONL, a manifest, and stage timings that account for the run loop.
"""

import json
from datetime import datetime

from repro.groundstations.network import satnogs_like_network
from repro.obs import ObsConfig, validate_trace_file
from repro.orbits.constellation import synthetic_leo_constellation
from repro.satellites.satellite import Satellite
from repro.scheduling.value_functions import LatencyValue
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulation
from repro.weather.cells import RainCellField
from repro.weather.provider import QuantizedWeatherCache

EPOCH = datetime(2020, 6, 1)


def build_sim(observability=None, duration_h=2.0, use_forecast=False,
              contact_windows=True):
    tles = synthetic_leo_constellation(8, EPOCH, seed=21)
    sats = [Satellite(tle=t, chunk_size_gb=0.5) for t in tles]
    network = satnogs_like_network(20, seed=13)
    config = SimulationConfig(
        start=EPOCH, duration_s=duration_h * 3600.0, step_s=60.0,
        use_forecast=use_forecast, contact_windows=contact_windows,
    )
    weather = QuantizedWeatherCache(RainCellField(seed=3))
    return Simulation(
        satellites=sats, network=network, value_function=LatencyValue(),
        config=config, truth_weather=weather, observability=observability,
    )


class TestNoOpEquivalence:
    def test_observed_run_is_bit_identical(self, tmp_path):
        plain = build_sim().run()
        observed = build_sim(observability=ObsConfig(
            trace_path=str(tmp_path / "trace.jsonl"),
        )).run()
        plain_dict = plain.to_dict()
        observed_dict = observed.to_dict()
        # Stage timings are wall-clock and only present when observed;
        # everything simulation-derived must match exactly.
        plain_dict.pop("stage_timings")
        observed_dict.pop("stage_timings")
        assert plain_dict == observed_dict

    def test_default_recorder_is_the_shared_null(self):
        sim = build_sim()
        from repro.obs import NULL_RECORDER

        assert sim.obs is NULL_RECORDER
        assert sim.run().stage_timings == {}


class TestStageTimings:
    def test_stages_cover_the_run(self):
        report = build_sim(observability=ObsConfig()).run()
        stages = report.run_stage_seconds()
        assert {"generate", "backend_advance", "schedule", "execute",
                "bookkeeping", "drain"} <= set(stages)
        # The acceptance bar is >= 95% on the fig3a workload (asserted in
        # the benchmark suite); this tiny run keeps a looser floor since
        # per-step span overhead is proportionally larger.
        assert report.stage_coverage() >= 0.6

    def test_nested_scheduler_spans_present(self):
        report = build_sim(observability=ObsConfig()).run()
        assert "run/schedule/graph_build" in report.stage_timings
        assert "run/schedule/matching" in report.stage_timings
        assert "ephemeris_build" in report.stage_timings


class TestTracedRun:
    def test_trace_validates_and_has_expected_kinds(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        build_sim(observability=ObsConfig(trace_path=str(trace))).run()
        count = validate_trace_file(str(trace))
        assert count > 0
        kinds = {json.loads(line)["kind"]
                 for line in trace.read_text().splitlines()}
        assert {"run_start", "step", "run_end"} <= kinds

    def test_run_end_carries_counters_and_timings(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        build_sim(observability=ObsConfig(trace_path=str(trace))).run()
        last = json.loads(trace.read_text().splitlines()[-1])
        assert last["kind"] == "run_end"
        assert last["status"] == "ok"
        assert "run" in last["stage_timings"]
        assert "weather_samples" in last["counters"]
        assert any(k.startswith("backend/") for k in last["gauges"])

    def test_manifest_written_and_linked(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        manifest_path = tmp_path / "manifest.json"
        build_sim(observability=ObsConfig(
            trace_path=str(trace),
            manifest_path=str(manifest_path),
            seeds={"fleet": 21, "weather": 3},
        )).run()
        manifest = json.loads(manifest_path.read_text())
        assert manifest["seeds"] == {"fleet": 21, "weather": 3}
        assert manifest["config_sha256"]
        first = json.loads(trace.read_text().splitlines()[0])
        assert first["kind"] == "run_start"
        assert first["manifest"]["config_sha256"] == manifest["config_sha256"]

    def test_assignment_events_under_forecast(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        build_sim(observability=ObsConfig(trace_path=str(trace)),
                  use_forecast=True).run()
        lines = [json.loads(line) for line in trace.read_text().splitlines()]
        assignments = [r for r in lines if r["kind"] == "assignment"]
        assert assignments
        assert all(isinstance(a["decoded"], bool) for a in assignments)


class TestComponentStats:
    def test_weather_cache_counters_populate(self):
        # With the contact-window index on, the scheduler's per-bucket
        # weather memo absorbs repeat reads, so the provider sees only
        # the one miss per (station, bucket) -- hits stay at zero.
        sim = build_sim(observability=ObsConfig())
        sim.run()
        gauges = sim.obs.gauges_snapshot()
        assert gauges.get("weather_cache/truth_weather/misses", 0) > 0
        counters = sim.obs.counters_snapshot()
        assert counters.get("weather_samples", 0) > 0
        assert counters.get("contact_edges", 0) > 0
        assert counters.get("window_index_hits", 0) > 0

    def test_weather_cache_hits_without_window_index(self):
        # The reference path re-reads the provider every step, so the
        # quantized cache's hit counter populates.
        sim = build_sim(observability=ObsConfig(), contact_windows=False)
        sim.run()
        gauges = sim.obs.gauges_snapshot()
        assert gauges.get("weather_cache/truth_weather/hits", 0) > 0

    def test_profile_dump(self, tmp_path):
        sim = build_sim(observability=ObsConfig(
            profile_spans=("run",), profile_dir=str(tmp_path),
        ), duration_h=0.5)
        sim.run()
        assert (tmp_path / "run.prof").exists()
