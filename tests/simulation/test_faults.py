"""Tests for outage schedules and fault-injected simulation."""

from datetime import datetime, timedelta

import pytest

from repro.groundstations.network import satnogs_like_network
from repro.orbits.constellation import synthetic_leo_constellation
from repro.satellites.satellite import Satellite
from repro.scheduling.value_functions import LatencyValue
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulation
from repro.simulation.faults import Outage, OutageSchedule

EPOCH = datetime(2020, 6, 1)


class TestOutage:
    def test_covers_half_open_interval(self):
        o = Outage("gs-1", EPOCH, EPOCH + timedelta(hours=1))
        assert o.covers(EPOCH)
        assert o.covers(EPOCH + timedelta(minutes=59))
        assert not o.covers(EPOCH + timedelta(hours=1))
        assert not o.covers(EPOCH - timedelta(seconds=1))

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            Outage("gs-1", EPOCH, EPOCH)

    def test_duration(self):
        o = Outage("gs-1", EPOCH, EPOCH + timedelta(minutes=30))
        assert o.duration_s == 1800.0


class TestOutageSchedule:
    def test_is_down(self):
        schedule = OutageSchedule.total_failure(["a", "b"], EPOCH, 3600.0)
        assert schedule.is_down("a", EPOCH + timedelta(minutes=5))
        assert schedule.is_down("b", EPOCH + timedelta(minutes=5))
        assert not schedule.is_down("c", EPOCH + timedelta(minutes=5))
        assert not schedule.is_down("a", EPOCH + timedelta(hours=2))

    def test_down_stations(self):
        schedule = OutageSchedule.total_failure(["a", "b"], EPOCH, 3600.0)
        assert schedule.down_stations(EPOCH) == {"a", "b"}
        assert schedule.down_stations(EPOCH + timedelta(hours=2)) == set()

    def test_total_downtime(self):
        schedule = OutageSchedule()
        schedule.add(Outage("a", EPOCH, EPOCH + timedelta(hours=1)))
        schedule.add(Outage("a", EPOCH + timedelta(hours=3),
                            EPOCH + timedelta(hours=4)))
        assert schedule.total_downtime_s("a") == 7200.0
        assert schedule.total_downtime_s("b") == 0.0

    def test_random_failures_deterministic(self):
        ids = [f"gs-{i}" for i in range(10)]
        a = OutageSchedule.random_failures(ids, EPOCH, 86400.0, 43200.0,
                                           3600.0, seed=3)
        b = OutageSchedule.random_failures(ids, EPOCH, 86400.0, 43200.0,
                                           3600.0, seed=3)
        assert a.outages == b.outages

    def test_random_failures_within_horizon(self):
        ids = ["gs-0", "gs-1"]
        schedule = OutageSchedule.random_failures(ids, EPOCH, 86400.0,
                                                  20000.0, 5000.0, seed=1)
        end = EPOCH + timedelta(seconds=86400.0)
        for o in schedule.outages:
            assert EPOCH <= o.start < end
            assert o.end <= end

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            OutageSchedule.random_failures(["a"], EPOCH, 100.0, 0.0, 10.0)


class TestFaultInjectedSimulation:
    def _run(self, outages=None, announced=False):
        tles = synthetic_leo_constellation(8, EPOCH, seed=21)
        sats = [Satellite(tle=t, chunk_size_gb=0.5) for t in tles]
        network = satnogs_like_network(15, seed=13)
        config = SimulationConfig(start=EPOCH, duration_s=4 * 3600.0)
        sim = Simulation(satellites=sats, network=network, value_function=LatencyValue(), config=config,
                         outages=outages, outages_announced=announced)
        return network, sim.run()

    def test_total_blackout_delivers_nothing(self):
        network, _ = self._run()
        all_ids = [s.station_id for s in network]
        outages = OutageSchedule.total_failure(all_ids, EPOCH, 5 * 3600.0)
        _n, report = self._run(outages=outages, announced=False)
        assert report.delivered_bits == 0.0

    def test_announced_blackout_wastes_no_transmissions(self):
        network, _ = self._run()
        all_ids = [s.station_id for s in network]
        outages = OutageSchedule.total_failure(all_ids, EPOCH, 5 * 3600.0)
        _n, report = self._run(outages=outages, announced=True)
        # The scheduler knows: no edges, so no transmissions, so no losses.
        assert report.delivered_bits == 0.0
        assert report.lost_transmission_bits == 0.0

    def test_unannounced_blackout_wastes_passes(self):
        network, _ = self._run()
        all_ids = [s.station_id for s in network]
        outages = OutageSchedule.total_failure(all_ids, EPOCH, 5 * 3600.0)
        _n, report = self._run(outages=outages, announced=False)
        assert report.lost_transmission_bits > 0.0

    def test_partial_outage_degrades_not_destroys(self):
        network, healthy = self._run()
        half = [s.station_id for s in network][:7]
        outages = OutageSchedule.total_failure(half, EPOCH, 5 * 3600.0)
        _n, degraded = self._run(outages=outages, announced=True)
        assert 0.0 < degraded.delivered_bits <= healthy.delivered_bits
