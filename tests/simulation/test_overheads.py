"""Tests for acquisition overhead and link-churn accounting."""

from datetime import datetime

import pytest

from repro.groundstations.network import satnogs_like_network
from repro.orbits.constellation import synthetic_leo_constellation
from repro.satellites.satellite import Satellite
from repro.scheduling.value_functions import LatencyValue
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulation

EPOCH = datetime(2020, 6, 1)


def build(acquisition_overhead_s=0.0, matcher="stable"):
    tles = synthetic_leo_constellation(8, EPOCH, seed=21)
    sats = [Satellite(tle=t, chunk_size_gb=0.5) for t in tles]
    network = satnogs_like_network(15, seed=13)
    config = SimulationConfig(
        start=EPOCH, duration_s=4 * 3600.0,
        acquisition_overhead_s=acquisition_overhead_s,
        matcher=matcher,
    )
    return Simulation(satellites=sats, network=network, value_function=LatencyValue(), config=config)


class TestAcquisitionOverhead:
    def test_overhead_reduces_throughput(self):
        clean = build(acquisition_overhead_s=0.0).run()
        lossy = build(acquisition_overhead_s=30.0).run()
        assert lossy.delivered_bits <= clean.delivered_bits

    def test_zero_overhead_is_default(self):
        assert SimulationConfig().acquisition_overhead_s == 0.0

    def test_invalid_overhead(self):
        with pytest.raises(ValueError):
            SimulationConfig(step_s=60.0, acquisition_overhead_s=60.0)
        with pytest.raises(ValueError):
            SimulationConfig(acquisition_overhead_s=-1.0)


class TestLinkChurn:
    def test_churn_counted(self):
        sim = build()
        sim.run()
        # Every pass start is at least one link change.
        assert sim.link_changes > 0

    def test_churn_at_least_number_of_contacts(self):
        sim = build()
        report = sim.run()
        # Each matched step either continues or changes a link; changes
        # cannot exceed total matched slots.
        assert sim.link_changes <= sum(report.matched_step_counts)
