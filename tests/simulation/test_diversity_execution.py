"""Diversity-reception execution mode: the engine-level contracts.

The PR-1/PR-6-style equivalence guarantees, extended to the storm +
diversity path: scalar and batched kernels produce byte-identical
reports, the mode is bit-reproducible, the ``diversity`` report block
round-trips, and specs with the new knobs left at their inert settings
produce byte-identical JSON to specs that predate them.
"""

from datetime import datetime

from repro.core.scenarios import ScenarioSpec, build_storm_weather
from repro.groundstations.network import satnogs_like_network
from repro.orbits.constellation import synthetic_leo_constellation
from repro.satellites.satellite import Satellite
from repro.scheduling.value_functions import LatencyValue
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulation
from repro.simulation.metrics import SimulationReport

EPOCH = datetime(2020, 6, 1)

DIVERSITY_KEYS = {
    "passes", "copies_attempted", "copies_decoded", "combined_decoded",
    "combined_failed", "rescued_by_diversity", "stations",
}


def _spec(**kwargs) -> ScenarioSpec:
    base = dict(
        num_satellites=10, num_stations=30, duration_s=2 * 3600.0,
        weather="storms", storm_rate=3.0,
        execution_mode="diversity", diversity_receivers=2,
    )
    base.update(kwargs)
    return ScenarioSpec.dgs(**base)


class TestDiversityReport:
    def test_block_present_and_consistent(self):
        report = _spec().run().report
        block = report.diversity
        assert set(block) == DIVERSITY_KEYS
        assert block["passes"] > 0
        assert block["copies_attempted"] >= block["passes"]
        assert block["combined_decoded"] + block["combined_failed"] \
            == block["passes"]
        assert block["copies_decoded"] <= block["copies_attempted"]
        station_copies = sum(
            s["copies"] for s in block["stations"].values()
        )
        assert station_copies == block["copies_attempted"]
        primaries = sum(
            s["primary"] for s in block["stations"].values()
        )
        assert primaries == block["passes"]

    def test_round_trip(self):
        report = _spec().run().report
        clone = SimulationReport.from_dict(report.to_dict())
        assert clone.to_json() == report.to_json()
        assert clone.diversity == report.diversity

    def test_absent_without_diversity_mode(self):
        report = ScenarioSpec.dgs(
            num_satellites=8, num_stations=12, duration_s=3600.0,
            weather="storms",
        ).run().report
        assert report.diversity == {}
        assert "diversity" not in report.to_dict()


class TestDeterminism:
    def test_same_spec_same_bytes(self):
        a = _spec().run().report.to_json()
        b = _spec().run().report.to_json()
        assert a == b

    def test_diversity_seed_changes_outcomes(self):
        a = _spec(diversity_seed=19).run().report
        b = _spec(diversity_seed=91).run().report
        assert a.diversity != b.diversity

    def test_storm_seed_changes_weather(self):
        a = _spec(storm_seed=17).run().report.to_json()
        b = _spec(storm_seed=71).run().report.to_json()
        assert a != b

    def test_derive_seeds_covers_new_seeds(self):
        spec = _spec()
        derived = spec.derive_seeds(12345)
        assert derived.storm_seed != spec.storm_seed
        assert derived.diversity_seed != spec.diversity_seed
        # And the manifest knows about them.
        assert "storm" in spec.seeds()
        assert "diversity" in spec.seeds()
        plain = ScenarioSpec.dgs()
        assert "storm" not in plain.seeds()
        assert "diversity" not in plain.seeds()


class TestInertKnobs:
    """weather="cells" + live mode must ignore every new knob."""

    def test_new_knob_values_do_not_change_legacy_runs(self):
        plain = ScenarioSpec.dgs(
            num_satellites=8, num_stations=12, duration_s=3600.0,
        )
        decorated = ScenarioSpec.dgs(
            num_satellites=8, num_stations=12, duration_s=3600.0,
            storm_seed=999, storm_rate=9.0, storm_speed=4.0,
            diversity_receivers=5, diversity_seed=77,
        )
        assert plain.run().report.to_json() == \
            decorated.run().report.to_json()

    def test_old_spec_dicts_still_load(self):
        raw = ScenarioSpec.dgs().to_dict()
        for key in ("weather", "storm_seed", "storm_rate", "storm_speed",
                    "diversity_receivers", "diversity_seed"):
            raw.pop(key)
        spec = ScenarioSpec.from_dict(raw)
        assert spec.weather == "cells"
        assert spec.diversity_receivers == 2


class TestScalarBatchedEquivalence:
    def test_identical_reports_under_storms_and_diversity(self):
        reports = {}
        for batched in (False, True):
            tles = synthetic_leo_constellation(8, EPOCH, seed=21)
            sats = [Satellite(tle=t, chunk_size_gb=0.5) for t in tles]
            network = satnogs_like_network(24, seed=13)
            config = SimulationConfig(
                start=EPOCH, duration_s=2 * 3600.0, step_s=60.0,
                execution_mode="diversity", diversity_receivers=3,
                batched_kernels=batched, precompute_ephemeris=batched,
            )
            sim = Simulation(
                satellites=sats, network=network,
                value_function=LatencyValue(), config=config,
                truth_weather=build_storm_weather(
                    seed=3, storm_seed=17, storm_rate=3.0
                ),
            )
            reports[batched] = sim.run()
        assert reports[False].to_json() == reports[True].to_json()
        assert reports[True].diversity["passes"] > 0


class TestValidation:
    def test_diversity_mode_rejects_lookahead_schedulers(self):
        import pytest

        with pytest.raises(ValueError):
            ScenarioSpec.dgs(execution_mode="diversity",
                             scheduler="horizon", horizon_steps=4)
        with pytest.raises(ValueError):
            ScenarioSpec.dgs(execution_mode="diversity",
                             scheduler="beamforming", beams=2)

    def test_bad_knobs_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            ScenarioSpec.dgs(weather="hail")
        with pytest.raises(ValueError):
            ScenarioSpec.dgs(storm_rate=-1.0)
        with pytest.raises(ValueError):
            ScenarioSpec.dgs(diversity_receivers=0)
        with pytest.raises(ValueError):
            SimulationConfig(execution_mode="telepathy")
