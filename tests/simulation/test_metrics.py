"""Tests for metrics collection and report statistics."""

from datetime import datetime

import numpy as np
import pytest

from repro.simulation.metrics import MetricsCollector

EPOCH = datetime(2020, 6, 1)


def build_report():
    collector = MetricsCollector()
    collector.record_generation(100.0)
    collector.record_generation(100.0)
    collector.record_delivery("sat-A", 600.0, 50.0, "gs-1")
    collector.record_delivery("sat-A", 1200.0, 50.0, "gs-2")
    collector.record_delivery("sat-B", 3000.0, 40.0, "gs-1")
    collector.record_lost_transmission(10.0)
    collector.record_requeue(2)
    collector.record_step(3)
    collector.record_step(1)
    collector.record_snapshot(EPOCH, {"sat-A": 1.0})
    return collector.finalize(
        final_backlog_gb={"sat-A": 0.5, "sat-B": 2.0},
        final_unacked_gb={"sat-A": 0.1, "sat-B": 0.0},
    )


class TestCollector:
    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            MetricsCollector().record_delivery("s", -1.0, 10.0, "g")

    def test_report_totals(self):
        report = build_report()
        assert report.generated_bits == 200.0
        assert report.delivered_bits == 140.0
        assert report.lost_transmission_bits == 10.0
        assert report.retransmitted_chunks == 2
        assert report.matched_step_counts == [3, 1]
        assert report.delivery_fraction == pytest.approx(0.7)

    def test_station_accounting(self):
        report = build_report()
        assert report.station_bits == {"gs-1": 90.0, "gs-2": 50.0}

    def test_snapshots_preserved(self):
        report = build_report()
        assert len(report.snapshots) == 1
        assert report.snapshots[0].backlog_gb == {"sat-A": 1.0}


class TestReportStatistics:
    def test_latency_percentiles(self):
        report = build_report()
        pcts = report.latency_percentiles_min((50, 90))
        all_lat = np.array([600.0, 1200.0, 3000.0])
        assert pcts[50] == pytest.approx(np.percentile(all_lat, 50) / 60.0)
        assert pcts[90] == pytest.approx(np.percentile(all_lat, 90) / 60.0)

    def test_mean_latency(self):
        report = build_report()
        assert report.mean_latency_min() == pytest.approx(1600.0 / 60.0)

    def test_backlog_percentiles(self):
        report = build_report()
        assert report.backlog_percentiles_gb((50,))[50] == pytest.approx(1.25)

    def test_empty_latency_is_nan(self):
        collector = MetricsCollector()
        report = collector.finalize({}, {})
        assert np.isnan(report.mean_latency_min())
        assert np.isnan(report.latency_percentiles_min((50,))[50])

    def test_empty_generation_fraction(self):
        report = MetricsCollector().finalize({}, {})
        assert report.delivery_fraction == 1.0

    def test_delivered_tb(self):
        collector = MetricsCollector()
        collector.record_delivery("s", 1.0, 8e12, "g")
        report = collector.finalize({}, {})
        assert report.delivered_tb == pytest.approx(1.0)
