"""Session lifecycle semantics and the replay-equivalence guarantee.

The headline pin: an event-free :class:`SimulationSession` produces a
:class:`SimulationReport` *byte-identical* (via ``to_json()``) to the
batch ``Simulation.run()`` on the same spec -- with and without tenants,
regardless of how the horizon is sliced into ``advance()`` calls.
"""

from datetime import datetime, timedelta

import pytest

from repro.core.scenarios import ScenarioSpec
from repro.demand import tenant_mix
from repro.simulation import (
    OutageNotice,
    QuotaUpdate,
    SimulationSession,
    SubmitRequest,
)

EPOCH = datetime(2020, 6, 1)


def plain_spec(**overrides):
    params = dict(num_satellites=6, num_stations=10, duration_s=3600.0)
    params.update(overrides)
    return ScenarioSpec.dgs(**params)


def tenant_spec(**overrides):
    params = dict(num_satellites=6, num_stations=10, duration_s=3600.0,
                  tenants=tenant_mix("balanced"), value="deadline")
    params.update(overrides)
    return ScenarioSpec.dgs(**params)


class TestReplayEquivalence:
    def test_plain_session_matches_batch_byte_for_byte(self):
        batch = plain_spec().build().simulation.run()
        session = SimulationSession(plain_spec())
        while not session.step >= session.horizon_steps:
            session.advance(steps=7)
        report = session.finalize()
        assert report.to_json() == batch.to_json()

    def test_tenanted_session_matches_batch_byte_for_byte(self):
        batch = tenant_spec().build().simulation.run()
        session = SimulationSession(tenant_spec())
        report = session.run_to_horizon()
        assert report.to_json() == batch.to_json()

    def test_slicing_does_not_matter(self):
        """1-step ticks and one big advance() land on the same bytes."""
        fine = SimulationSession(plain_spec(duration_s=1800.0))
        while fine.step < fine.horizon_steps:
            fine.advance()
        coarse = SimulationSession(plain_spec(duration_s=1800.0))
        coarse.advance(steps=coarse.horizon_steps)
        assert fine.finalize().to_json() == coarse.finalize().to_json()

    def test_advance_until_wall_clock(self):
        session = SimulationSession(plain_spec())
        session.advance(until=EPOCH + timedelta(minutes=30))
        step_s = session.simulation.config.step_s
        assert session.step == int(1800.0 // step_s)

    def test_planned_mode_session_matches_batch(self):
        spec = plain_spec(execution_mode="planned")
        batch = spec.build().simulation.run()
        report = SimulationSession(spec).run_to_horizon()
        assert report.to_json() == batch.to_json()


class TestIngestSemantics:
    def test_duplicate_request_id_is_idempotent(self):
        session = SimulationSession(tenant_spec())
        sat = session.simulation.satellites[0].satellite_id
        first = session.ingest([SubmitRequest("req-1", "premium", sat)])
        again = session.ingest([SubmitRequest("req-1", "premium", sat)])
        assert first[0]["status"] == "queued"
        assert again[0]["status"] == "duplicate"
        assert len(session._pending) == 1

    def test_atomic_batch_rejection(self):
        """One bad event rejects the whole batch; nothing queues."""
        session = SimulationSession(tenant_spec())
        sat = session.simulation.satellites[0].satellite_id
        with pytest.raises(ValueError, match="unknown tenant"):
            session.ingest([
                SubmitRequest("req-ok", "premium", sat),
                QuotaUpdate("nobody", 10.0),
            ])
        assert not session._pending
        assert "req-ok" not in session._seen_request_ids

    def test_ingest_after_advance_applies_at_next_tick(self):
        """Events land at the *next* tick boundary, never retroactively."""
        session = SimulationSession(tenant_spec())
        session.advance(steps=3)
        sat = session.simulation.satellites[0].satellite_id
        session.ingest([SubmitRequest("late", "premium", sat, chunks=2)])
        assert session.snapshot()["pending_events"] == 1
        assert not session.simulation.demand.assigner._pending
        session.advance()
        assert session.snapshot()["pending_events"] == 0
        pending = session.simulation.demand.assigner._pending[sat]
        assert pending and pending[0][0].tenant_id == "premium"

    def test_submit_needs_tenanted_scenario(self):
        session = SimulationSession(plain_spec())
        sat = session.simulation.satellites[0].satellite_id
        with pytest.raises(ValueError, match="tenanted scenario"):
            session.ingest([SubmitRequest("r", "premium", sat)])

    def test_validation_errors(self):
        session = SimulationSession(tenant_spec())
        sat = session.simulation.satellites[0].satellite_id
        with pytest.raises(ValueError, match="unknown satellite"):
            session.ingest([SubmitRequest("r", "premium", "sat-999")])
        with pytest.raises(ValueError, match="chunks"):
            session.ingest([SubmitRequest("r", "premium", sat, chunks=0)])
        with pytest.raises(ValueError, match="request_id"):
            session.ingest([SubmitRequest("", "premium", sat)])
        with pytest.raises(ValueError, match="quota"):
            session.ingest([QuotaUpdate("premium", -1.0)])
        with pytest.raises(ValueError, match="unknown station"):
            session.ingest([OutageNotice("gs-999", EPOCH,
                                         EPOCH + timedelta(hours=1))])
        with pytest.raises(ValueError, match="end after"):
            station = session.simulation.network[0].station_id
            session.ingest([OutageNotice(station, EPOCH, EPOCH)])
        with pytest.raises(ValueError, match="unknown event type"):
            session.ingest(["not-an-event"])

    def test_finalized_session_rejects_events_and_ticks(self):
        session = SimulationSession(plain_spec(duration_s=600.0))
        session.run_to_horizon()
        with pytest.raises(RuntimeError, match="finalized"):
            session.ingest([])
        with pytest.raises(RuntimeError, match="finalized"):
            session.advance()


class TestEventEffects:
    def test_submitted_request_stamps_chunks(self):
        """An injected request preempts the seeded stream: the next
        captures carry its tenant, priority, and region tags."""
        session = SimulationSession(tenant_spec(duration_s=2 * 3600.0))
        sat = session.simulation.satellites[0]
        session.ingest([SubmitRequest("flood-1", "premium",
                                      sat.satellite_id, chunks=5,
                                      priority=9.0, region="flood")])
        session.run_to_horizon()
        stamped = [c for c in sat.storage.all_chunks()
                   if c.region == "flood"]
        assert stamped, "injected request never stamped a capture"
        assert len(stamped) <= 5
        for chunk in stamped:
            assert chunk.tenant_id == "premium"
            assert chunk.priority == 9.0

    def test_quota_update_takes_effect(self):
        session = SimulationSession(tenant_spec())
        session.advance()
        session.ingest([QuotaUpdate("premium", 123.0)])
        session.advance()
        accountant = session.simulation.demand.accountant
        tenant = accountant._tenants["premium"]
        assert tenant.quota_gb_per_day == 123.0

    def test_outage_notice_blocks_station(self):
        session = SimulationSession(plain_spec())
        sim = session.simulation
        station = sim.network[0].station_id
        session.ingest([OutageNotice(station, EPOCH,
                                     EPOCH + timedelta(hours=2))])
        session.advance()
        assert sim.outages is not None
        assert sim.outages_announced
        assert sim.outages.is_down(station, EPOCH + timedelta(minutes=30))
        assert not sim.outages.is_down(station, EPOCH + timedelta(hours=3))

    def test_outage_refused_over_unannounced_schedule(self):
        from repro.simulation import OutageSchedule

        scenario = plain_spec().build()
        scenario.simulation.outages = OutageSchedule()
        scenario.simulation.outages_announced = False
        session = SimulationSession(scenario=scenario)
        station = scenario.simulation.network[0].station_id
        with pytest.raises(ValueError, match="unannounced"):
            session.ingest([OutageNotice(station, EPOCH,
                                         EPOCH + timedelta(hours=1))])


class TestPlanDeltas:
    def test_deltas_deterministic_across_identical_sessions(self):
        def feed(session):
            sat = session.simulation.satellites[1].satellite_id
            session.advance(steps=5)
            session.ingest([SubmitRequest("r-1", "standard", sat, chunks=3)])
            session.advance(steps=session.horizon_steps - 5)
            return session.finalize()

        spec = tenant_spec(duration_s=2 * 3600.0)
        a = SimulationSession(spec)
        b = SimulationSession(spec)
        report_a, report_b = feed(a), feed(b)
        assert report_a.to_json() == report_b.to_json()
        assert [d.to_dict() for d in a.plan_deltas()] == \
               [d.to_dict() for d in b.plan_deltas()]

    def test_delta_log_is_incremental(self):
        session = SimulationSession(plain_spec(duration_s=2 * 3600.0))
        session.run_to_horizon()
        deltas = session.plan_deltas()
        assert deltas, "a 2h run should see at least one link change"
        assert [d.seq for d in deltas] == list(range(1, len(deltas) + 1))
        tail = session.plan_deltas(since=deltas[0].seq)
        assert tail == deltas[1:]
        with pytest.raises(ValueError):
            session.plan_deltas(since=-1)

    def test_plan_reflects_last_executed_links(self):
        session = SimulationSession(plain_spec(duration_s=2 * 3600.0))
        session.run_to_horizon()
        plan = session.plan()
        sat_ids = [link["satellite_id"] for link in plan]
        assert sat_ids == sorted(sat_ids)
        valid_stations = {s.station_id for s in session.simulation.network}
        assert all(link["station_id"] in valid_stations for link in plan)


class TestSnapshotAndLifecycle:
    def test_snapshot_shape(self):
        session = SimulationSession(plain_spec())
        snap = session.snapshot()
        assert snap["step"] == 0
        assert snap["finished"] is False
        assert snap["now"] == EPOCH.isoformat()
        assert set(snap["backlog_gb"]) == {
            s.satellite_id for s in session.simulation.satellites
        }
        session.advance(steps=4)
        assert session.snapshot()["step"] == 4

    def test_requires_exactly_one_of_spec_or_scenario(self):
        with pytest.raises(TypeError, match="exactly one"):
            SimulationSession()
        with pytest.raises(TypeError, match="exactly one"):
            SimulationSession(plain_spec(),
                              scenario=plain_spec().build())

    def test_scenario_keyword_accepted(self):
        scenario = plain_spec(duration_s=600.0).build()
        session = SimulationSession(scenario=scenario)
        assert session.simulation is scenario.simulation
        session.run_to_horizon()

    def test_advance_rejects_both_until_and_steps(self):
        session = SimulationSession(plain_spec())
        with pytest.raises(TypeError, match="at most one"):
            session.advance(until=EPOCH, steps=1)
        with pytest.raises(ValueError, match=">= 0"):
            session.advance(steps=-1)

    def test_advance_caps_at_horizon(self):
        session = SimulationSession(plain_spec(duration_s=600.0))
        session.advance(steps=10_000)
        assert session.step == session.horizon_steps

    def test_finalize_is_idempotent(self):
        session = SimulationSession(plain_spec(duration_s=600.0))
        session.advance(steps=session.horizon_steps)
        first = session.finalize()
        assert session.finalize() is first

    def test_finalize_without_ticks_still_reports(self):
        session = SimulationSession(plain_spec(duration_s=600.0))
        report = session.finalize()
        assert report.delivered_bits == 0.0
        assert session.finished
