"""Tests for the simulation event log."""

from datetime import datetime, timedelta

import pytest

from repro.simulation.events import Event, EventLog

EPOCH = datetime(2020, 6, 1)


class TestEventLog:
    def test_append_and_filter(self):
        log = EventLog()
        log.record(EPOCH, "transmission", "sat-A", "gs-1", bits=100.0)
        log.record(EPOCH + timedelta(minutes=1), "delivery", "sat-A", "gs-1",
                   chunk_id=7)
        log.record(EPOCH + timedelta(minutes=2), "plan_upload", "sat-B", "gs-2")
        assert len(log) == 3
        assert len(log.of_kind("delivery")) == 1
        assert len(log.for_satellite("sat-A")) == 2
        window = log.between(EPOCH, EPOCH + timedelta(minutes=2))
        assert len(window) == 2

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            EventLog().record(EPOCH, "teleportation", "sat-A")

    def test_jsonl_round_trip(self):
        log = EventLog()
        log.record(EPOCH, "transmission", "sat-A", "gs-1", bits=100.0,
                   decoded=True)
        log.record(EPOCH, "ack_batch", "sat-B", "gs-2", chunk_count=3)
        again = EventLog.from_jsonl(log.to_jsonl())
        assert len(again) == 2
        assert again.of_kind("ack_batch")[0].data["chunk_count"] == 3

    def test_event_json_fields(self):
        import json

        event = Event(EPOCH, "loss", "sat-A", "gs-1", {"bits": 5.0})
        raw = json.loads(event.to_json())
        assert raw["kind"] == "loss"
        assert raw["bits"] == 5.0
        assert raw["when"] == EPOCH.isoformat()


class TestEngineEventRecording:
    @pytest.fixture(scope="class")
    def run_with_events(self):
        from repro.groundstations.network import satnogs_like_network
        from repro.orbits.constellation import synthetic_leo_constellation
        from repro.satellites.satellite import Satellite
        from repro.scheduling.value_functions import LatencyValue
        from repro.simulation.config import SimulationConfig
        from repro.simulation.engine import Simulation

        tles = synthetic_leo_constellation(8, EPOCH, seed=21)
        sats = [Satellite(tle=t, chunk_size_gb=0.5) for t in tles]
        network = satnogs_like_network(20, seed=13)
        config = SimulationConfig(start=EPOCH, duration_s=4 * 3600.0,
                                  record_events=True)
        sim = Simulation(satellites=sats, network=network, value_function=LatencyValue(), config=config)
        return sim, sim.run()

    def test_events_recorded(self, run_with_events):
        sim, _report = run_with_events
        assert sim.events is not None
        assert len(sim.events) > 0

    def test_delivery_events_match_metrics(self, run_with_events):
        sim, report = run_with_events
        delivered_via_events = sum(
            e.data["bits"] for e in sim.events.of_kind("delivery")
        )
        assert delivered_via_events == pytest.approx(report.delivered_bits)

    def test_delivery_latencies_match(self, run_with_events):
        sim, report = run_with_events
        event_latencies = sorted(
            e.data["latency_s"] for e in sim.events.of_kind("delivery")
        )
        metric_latencies = sorted(report.all_latencies_s())
        assert event_latencies == pytest.approx(metric_latencies)

    def test_plan_uploads_only_at_tx_stations(self, run_with_events):
        sim, _report = run_with_events
        tx_ids = {s.station_id for s in sim.network.transmit_capable}
        for event in sim.events.of_kind("plan_upload"):
            assert event.station_id in tx_ids

    def test_disabled_by_default(self):
        from repro.groundstations.network import satnogs_like_network
        from repro.orbits.constellation import synthetic_leo_constellation
        from repro.satellites.satellite import Satellite
        from repro.scheduling.value_functions import LatencyValue
        from repro.simulation.config import SimulationConfig
        from repro.simulation.engine import Simulation

        tles = synthetic_leo_constellation(3, EPOCH, seed=21)
        sats = [Satellite(tle=t) for t in tles]
        network = satnogs_like_network(8, seed=13)
        sim = Simulation(
            satellites=sats, network=network, value_function=LatencyValue(),
            config=SimulationConfig(start=EPOCH, duration_s=600.0),
        )
        sim.run()
        assert sim.events is None
