"""Tests for simulation configuration validation."""

from datetime import datetime

import pytest

from repro.simulation.config import SimulationConfig


class TestValidation:
    def test_defaults_match_paper(self):
        cfg = SimulationConfig()
        assert cfg.duration_s == 86400.0
        assert cfg.step_s == 60.0
        assert cfg.matcher == "stable"
        assert not cfg.use_forecast

    def test_num_steps(self):
        cfg = SimulationConfig(duration_s=3600.0, step_s=60.0)
        assert cfg.num_steps == 60

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            SimulationConfig(duration_s=0.0)

    def test_invalid_step(self):
        with pytest.raises(ValueError):
            SimulationConfig(step_s=-5.0)

    def test_step_longer_than_duration(self):
        with pytest.raises(ValueError):
            SimulationConfig(duration_s=30.0, step_s=60.0)

    def test_invalid_forecast_refresh(self):
        with pytest.raises(ValueError):
            SimulationConfig(forecast_refresh_s=0.0)

    def test_custom_start(self):
        start = datetime(2021, 3, 1)
        assert SimulationConfig(start=start).start == start
