"""SimulationReport JSON serialization: stable round-trip, schema guard."""

from datetime import datetime

import pytest

from repro.simulation.metrics import (
    REPORT_SCHEMA,
    BacklogSnapshot,
    SimulationReport,
)


def sample_report() -> SimulationReport:
    return SimulationReport(
        latency_s={"S1": [60.0, 120.0], "S2": []},
        final_backlog_gb={"S1": 1.5, "S2": 0.0},
        final_unacked_gb={"S1": 0.25, "S2": 0.0},
        delivered_bits=8e9,
        generated_bits=2e10,
        lost_transmission_bits=1e8,
        retransmitted_chunks=3,
        matched_step_counts=[1, 2, 0],
        snapshots=[BacklogSnapshot(
            when=datetime(2020, 6, 1, 0, 30),
            backlog_gb={"S1": 2.0},
            storage_gb={"S1": 2.5},
        )],
        station_bits={"G1": 8e9},
        satellite_bits={"S1": 8e9},
        fault_counters={"undecoded_steps": 2},
        stage_timings={"run": 1.0, "run/schedule": 0.6},
    )


class TestRoundTrip:
    def test_dict_round_trip_is_exact(self):
        report = sample_report()
        clone = SimulationReport.from_dict(report.to_dict())
        assert clone == report

    def test_json_round_trip_is_exact(self):
        report = sample_report()
        clone = SimulationReport.from_json(report.to_json())
        assert clone == report

    def test_json_is_stable(self):
        report = sample_report()
        assert report.to_json() == SimulationReport.from_json(
            report.to_json()
        ).to_json()

    def test_schema_stamped(self):
        assert sample_report().to_dict()["schema"] == REPORT_SCHEMA

    def test_unknown_schema_rejected(self):
        raw = sample_report().to_dict()
        raw["schema"] = "repro-report/99"
        with pytest.raises(ValueError, match="unsupported report schema"):
            SimulationReport.from_dict(raw)

    def test_old_payload_without_optionals(self):
        raw = sample_report().to_dict()
        del raw["fault_counters"]
        del raw["stage_timings"]
        raw["snapshots"][0].pop("storage_gb")
        clone = SimulationReport.from_dict(raw)
        assert clone.fault_counters == {}
        assert clone.stage_timings == {}


class TestStageHelpers:
    def test_run_stage_seconds_picks_direct_children(self):
        report = sample_report()
        report.stage_timings = {
            "run": 2.0, "run/schedule": 1.0, "run/schedule/matching": 0.4,
            "run/execute": 0.8, "ephemeris_build": 0.5,
        }
        assert report.run_stage_seconds() == {"schedule": 1.0, "execute": 0.8}
        assert report.stage_coverage() == pytest.approx(0.9)

    def test_coverage_nan_when_unobserved(self):
        report = sample_report()
        report.stage_timings = {}
        import math

        assert math.isnan(report.stage_coverage())
