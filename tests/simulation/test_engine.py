"""Tests for the data-transfer simulation engine: conservation + semantics."""

from datetime import datetime, timedelta

import pytest

from repro.groundstations.network import (
    baseline_polar_network,
    satnogs_like_network,
)
from repro.orbits.constellation import synthetic_leo_constellation
from repro.satellites.satellite import GB_TO_BITS, Satellite
from repro.scheduling.value_functions import LatencyValue
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulation
from repro.weather.cells import RainCellField
from repro.weather.provider import QuantizedWeatherCache

EPOCH = datetime(2020, 6, 1)


def build_sim(network=None, duration_h=4.0, num_sats=8, **config_kwargs):
    tles = synthetic_leo_constellation(num_sats, EPOCH, seed=21)
    sats = [Satellite(tle=t, chunk_size_gb=0.5) for t in tles]
    network = network or satnogs_like_network(20, seed=13)
    config = SimulationConfig(
        start=EPOCH, duration_s=duration_h * 3600.0, step_s=60.0,
        **config_kwargs,
    )
    weather = QuantizedWeatherCache(RainCellField(seed=3))
    return Simulation(satellites=sats, network=network, value_function=LatencyValue(), config=config,
                      truth_weather=weather)


@pytest.fixture(scope="module")
def dgs_report_and_sim():
    sim = build_sim()
    return sim.run(), sim


class TestConservation:
    def test_generated_equals_delivered_plus_backlog(self, dgs_report_and_sim):
        report, sim = dgs_report_and_sim
        backlog_bits = sum(report.final_backlog_gb.values()) * GB_TO_BITS
        # Generated data is either truly delivered or still undelivered
        # (the true backlog includes lost transmissions).
        assert report.delivered_bits + backlog_bits == pytest.approx(
            report.generated_bits, rel=1e-6
        )

    def test_latencies_non_negative(self, dgs_report_and_sim):
        report, _sim = dgs_report_and_sim
        for values in report.latency_s.values():
            assert all(v >= 0.0 for v in values)

    def test_delivered_counts_match_backend(self, dgs_report_and_sim):
        report, sim = dgs_report_and_sim
        assert sim.backend.total_bits_received == pytest.approx(
            report.delivered_bits
        )

    def test_something_was_delivered(self, dgs_report_and_sim):
        report, _sim = dgs_report_and_sim
        assert report.delivered_bits > 0.0
        assert report.all_latencies_s().size > 0

    def test_no_losses_with_oracle_weather(self, dgs_report_and_sim):
        report, _sim = dgs_report_and_sim
        # Scheduling on truth weather -> predictions always decode.
        assert report.lost_transmission_bits == 0.0
        assert report.retransmitted_chunks == 0

    def test_snapshots_recorded(self, dgs_report_and_sim):
        report, _sim = dgs_report_and_sim
        assert len(report.snapshots) == 4  # every 60 steps over 240 steps


class TestAckSemantics:
    def test_baseline_acks_promptly(self):
        """Every baseline station is tx-capable: acks arrive at the next
        contact with any station, so unacked data is bounded."""
        sim = build_sim(network=baseline_polar_network(), duration_h=6.0)
        report = sim.run()
        # At least one satellite got its data acked.
        acked_total = sum(
            sim.backend.acked_count(s.satellite_id) for s in sim.satellites
        )
        delivered_chunks = sum(len(v) for v in report.latency_s.values())
        if delivered_chunks > 0:
            assert acked_total > 0

    def test_receive_only_network_never_acks(self):
        net = satnogs_like_network(20, tx_capable_fraction=0.0, seed=13)
        sim = build_sim(network=net, duration_h=3.0)
        report = sim.run()
        # Data is delivered but nothing can carry acks back up.
        for sat in sim.satellites:
            assert sim.backend.acked_count(sat.satellite_id) == 0
        delivered = sum(len(v) for v in report.latency_s.values())
        unacked = sum(report.final_unacked_gb.values())
        if delivered > 0:
            assert unacked > 0.0

    def test_plan_epochs_set_by_tx_contacts(self):
        sim = build_sim(duration_h=6.0)
        sim.run()
        planned = [s for s in sim.satellites if s.plan_epoch is not None]
        # With ~10% tx-capable stations most satellites hit one in 6 h.
        assert planned


class TestPlanEnforcement:
    def test_unplanned_satellites_restricted_to_tx_stations(self):
        sim = build_sim(duration_h=3.0, enforce_plan_distribution=True,
                        plan_max_age_s=6 * 3600.0)
        report = sim.run()
        # Deliveries can only have happened at tx-capable stations first
        # (a satellite must meet one before using receive-only stations).
        tx_ids = {s.station_id for s in sim.network.transmit_capable}
        for sat in sim.satellites:
            if sat.plan_epoch is None:
                # Never met a tx station: all its bits went to tx stations
                # (i.e. none, since it never had a plan or a tx contact
                # that delivered).  Check it has no deliveries at rx-only.
                sat_latencies = report.latency_s.get(sat.satellite_id, [])
                # Without a plan there can be no rx-only deliveries; a
                # delivery implies a tx contact, which sets plan_epoch.
                assert not sat_latencies or not tx_ids


class TestForecastScheduling:
    def test_forecast_mode_runs_and_may_lose_data(self):
        sim = build_sim(duration_h=4.0, use_forecast=True,
                        forecast_refresh_s=3600.0)
        report = sim.run()
        assert report.generated_bits > 0
        # Conservation still holds with losses: delivered + true backlog ==
        # generated.
        backlog_bits = sum(report.final_backlog_gb.values()) * GB_TO_BITS
        unacked_lost_ok = report.delivered_bits + backlog_bits
        assert unacked_lost_ok == pytest.approx(report.generated_bits, rel=1e-6)


class TestVectorizedGeneration:
    """The engine's vectorized imagery accumulator vs the scalar path.

    ``Simulation._generate`` tracks per-satellite accumulators in shadow
    arrays and only calls ``Satellite.generate_data`` on chunk-boundary
    steps; the emitted chunks, capture times, and leftover bits must be
    exactly what per-step scalar calls would produce.
    """

    def _scalar_twin(self, satellites, num_steps, step_s):
        chunks = []
        for k in range(num_steps):
            start = EPOCH + timedelta(seconds=k * step_s)
            for sat in satellites:
                chunks.extend(sat.generate_data(start, step_s))
        return chunks

    def test_chunks_match_scalar_replay(self):
        sim = build_sim(num_sats=6, duration_h=2.0)
        # Heterogeneous rates, including a dormant satellite, so boundary
        # crossings land on different steps per satellite.
        tles = synthetic_leo_constellation(6, EPOCH, seed=21)
        twins = [Satellite(tle=t, chunk_size_gb=0.5) for t in tles]
        for i, (sat, twin) in enumerate(zip(sim.satellites, twins)):
            rate = 0.0 if i == 0 else 400.0 + 37.0 * i
            sat.generation_gb_per_day = rate
            twin.generation_gb_per_day = rate
        num_steps, step_s = 120, sim.config.step_s
        for k in range(num_steps):
            sim._generate(EPOCH + timedelta(seconds=(k + 1) * step_s))
        expected = self._scalar_twin(twins, num_steps, step_s)

        produced = [
            c for sat in sim.satellites for c in sat.storage._onboard
        ]
        assert (
            sorted((c.satellite_id, c.capture_time, c.size_bits)
                   for c in produced)
            == sorted((c.satellite_id, c.capture_time, c.size_bits)
                      for c in expected)
        )
        assert len(produced) > 0
        # Leftover (sub-chunk) bits agree exactly per satellite.
        for i, twin in enumerate(twins):
            assert sim._gen_acc[i] == twin._accumulated_bits

    def test_dormant_satellite_never_emits(self):
        sim = build_sim(num_sats=3, duration_h=1.0)
        for sat in sim.satellites:
            sat.generation_gb_per_day = 0.0
        for k in range(60):
            sim._generate(EPOCH + timedelta(seconds=(k + 1) * 60.0))
        assert all(not sat.storage._onboard for sat in sim.satellites)
        assert sim.metrics.generated_bits == 0.0
