"""Tests for run manifests and config digests."""

import json

from repro.obs import build_manifest, config_digest, write_manifest
from repro.obs.manifest import MANIFEST_SCHEMA
from repro.simulation.config import SimulationConfig


class TestConfigDigest:
    def test_stable_across_calls(self):
        config = SimulationConfig()
        assert config_digest(config) == config_digest(config)

    def test_differs_when_config_differs(self):
        a = SimulationConfig(duration_s=3600.0)
        b = SimulationConfig(duration_s=7200.0)
        assert config_digest(a) != config_digest(b)

    def test_dict_key_order_is_canonical(self):
        assert config_digest({"a": 1, "b": 2}) == config_digest({"b": 2, "a": 1})


class TestBuildManifest:
    def test_required_fields(self):
        manifest = build_manifest(config=SimulationConfig(),
                                  seeds={"fleet": 7})
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["seeds"] == {"fleet": 7}
        assert manifest["config_sha256"] == config_digest(SimulationConfig())
        assert "python" in manifest["versions"]
        assert "created_utc" in manifest
        assert "platform" in manifest
        assert "argv" in manifest

    def test_config_is_json_compatible(self):
        manifest = build_manifest(config=SimulationConfig())
        json.dumps(manifest)  # must not raise
        assert isinstance(manifest["config"]["start"], str)  # datetime -> ISO

    def test_extra_merged(self):
        manifest = build_manifest(extra={"scenario": "dgs25-L"})
        assert manifest["scenario"] == "dgs25-L"

    def test_no_config_is_fine(self):
        manifest = build_manifest()
        assert manifest["config"] == {}
        assert manifest["config_sha256"] is None


class TestWriteManifest:
    def test_round_trips_through_disk(self, tmp_path):
        path = tmp_path / "manifest.json"
        manifest = build_manifest(config=SimulationConfig(), seeds={"w": 3})
        write_manifest(str(path), manifest)
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(manifest))
