"""Tests for the JSONL trace writer and its schema validator."""

import json

import pytest

from repro.obs import (
    TRACE_SCHEMA,
    TraceValidationError,
    TraceWriter,
    validate_trace_file,
    validate_trace_lines,
)


def _valid_lines():
    return [
        json.dumps({"kind": "run_start", "schema": TRACE_SCHEMA,
                    "manifest": {}}),
        json.dumps({"kind": "step", "step": 0,
                    "when": "2020-06-01T00:00:00", "matched": 3}),
        json.dumps({"kind": "assignment", "when": "2020-06-01T00:00:00",
                    "satellite_id": "S1", "station_id": "G1",
                    "bitrate_bps": 1.5e8, "decoded": True}),
        json.dumps({"kind": "delivery", "when": "2020-06-01T00:01:00",
                    "satellite_id": "S1", "station_id": "G1",
                    "chunk_id": 17, "latency_s": 60.0}),
        json.dumps({"kind": "fault", "when": "2020-06-01T00:02:00",
                    "fault": "undecoded"}),
        json.dumps({"kind": "cache", "name": "ephemeris",
                    "hits": 3, "misses": 1}),
        json.dumps({"kind": "run_end", "stage_timings": {}, "counters": {},
                    "gauges": {}, "fault_counters": {}}),
    ]


class TestValidTraces:
    def test_full_trace_passes(self):
        assert validate_trace_lines(_valid_lines()) == []

    def test_blank_lines_ignored(self):
        lines = _valid_lines()
        lines.insert(2, "")
        assert validate_trace_lines(lines) == []

    def test_extra_fields_allowed(self):
        lines = _valid_lines()
        record = json.loads(lines[1])
        record["custom"] = "anything"
        lines[1] = json.dumps(record)
        assert validate_trace_lines(lines) == []


class TestInvalidTraces:
    def test_empty_trace(self):
        assert validate_trace_lines([]) == ["trace is empty"]

    def test_invalid_json(self):
        errors = validate_trace_lines(["{nope"])
        assert any("invalid JSON" in e for e in errors)

    def test_must_start_with_run_start(self):
        lines = _valid_lines()[1:]
        errors = validate_trace_lines(lines)
        assert any("first event must be run_start" in e for e in errors)

    def test_wrong_schema_version(self):
        lines = _valid_lines()
        lines[0] = json.dumps({"kind": "run_start", "schema": "other/9",
                               "manifest": {}})
        errors = validate_trace_lines(lines)
        assert any("unsupported schema" in e for e in errors)

    def test_missing_required_field(self):
        lines = _valid_lines()
        lines[1] = json.dumps({"kind": "step", "step": 0,
                               "when": "2020-06-01T00:00:00"})
        errors = validate_trace_lines(lines)
        assert any("missing field 'matched'" in e for e in errors)

    def test_bool_is_not_int(self):
        lines = _valid_lines()
        lines[1] = json.dumps({"kind": "step", "step": True,
                               "when": "2020-06-01T00:00:00", "matched": 1})
        errors = validate_trace_lines(lines)
        assert any("must be int, got bool" in e for e in errors)

    def test_bad_timestamp(self):
        lines = _valid_lines()
        lines[1] = json.dumps({"kind": "step", "step": 0,
                               "when": "yesterday", "matched": 1})
        errors = validate_trace_lines(lines)
        assert any("ISO-8601" in e for e in errors)

    def test_unknown_kind(self):
        lines = _valid_lines()
        lines.insert(1, json.dumps({"kind": "mystery"}))
        errors = validate_trace_lines(lines)
        assert any("unknown event kind" in e for e in errors)

    def test_missing_run_end(self):
        lines = _valid_lines()[:-1]
        errors = validate_trace_lines(lines)
        assert any("exactly one run_end" in e for e in errors)

    def test_run_end_must_be_last(self):
        lines = _valid_lines()
        lines.append(lines[1])  # a step after run_end
        errors = validate_trace_lines(lines)
        assert any("last event" in e for e in errors)


class TestWriter:
    def test_streams_sorted_json_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        writer = TraceWriter(str(path))
        writer.write_event("run_start", schema=TRACE_SCHEMA, manifest={})
        writer.write_event("step", step=0, when="2020-06-01T00:00:00",
                           matched=0)
        writer.write_event("run_end", stage_timings={}, counters={},
                           gauges={}, fault_counters={})
        writer.close()
        assert writer.lines_written == 3
        assert validate_trace_file(str(path)) == 3
        first = path.read_text().splitlines()[0]
        assert list(json.loads(first)) == sorted(json.loads(first))

    def test_write_after_close_is_ignored(self, tmp_path):
        path = tmp_path / "t.jsonl"
        writer = TraceWriter(str(path))
        writer.write_event("run_start", schema=TRACE_SCHEMA, manifest={})
        writer.close()
        writer.write_event("step", step=0, when="x", matched=0)
        assert len(path.read_text().splitlines()) == 1


class TestValidateFile:
    def test_raises_with_all_errors(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(TraceValidationError) as excinfo:
            validate_trace_file(str(path))
        assert len(excinfo.value.errors) >= 2  # bad JSON + structure errors

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            validate_trace_file(str(tmp_path / "absent.jsonl"))
