"""Tests for the recorder pair: live spans/counters vs the shared no-op."""

import time

from repro.obs import NULL_RECORDER, NullRecorder, ObsConfig, Recorder, make_recorder


class TestNullRecorder:
    def test_disabled_flag(self):
        assert NULL_RECORDER.enabled is False

    def test_span_is_inert_and_shared(self):
        a = NULL_RECORDER.span("x")
        b = NULL_RECORDER.span("y")
        assert a is b  # one shared object, no per-call allocation
        with a:
            pass

    def test_everything_is_a_noop(self):
        rec = NullRecorder()
        rec.counter("c", 5)
        rec.gauge("g", 1.0)
        rec.add_time("p", 2.0)
        rec.event("step", step=1)
        rec.start_run({})
        rec.finish_run(status="ok")
        assert rec.stage_timings() == {}
        assert rec.counters_snapshot() == {}
        assert rec.gauges_snapshot() == {}

    def test_make_recorder_routes_to_singleton(self):
        assert make_recorder(None) is NULL_RECORDER
        assert make_recorder(ObsConfig(enabled=False)) is NULL_RECORDER
        assert isinstance(make_recorder(ObsConfig()), Recorder)


class TestSpans:
    def test_paths_are_slash_joined_stacks(self):
        rec = Recorder()
        with rec.span("run"):
            with rec.span("schedule"):
                with rec.span("matching"):
                    pass
            with rec.span("schedule"):
                pass
        timings = rec.stage_timings()
        assert set(timings) == {"run", "run/schedule", "run/schedule/matching"}
        calls = rec.span_calls()
        assert calls["run/schedule"] == 2
        assert calls["run/schedule/matching"] == 1

    def test_nested_time_accumulates_into_parent(self):
        rec = Recorder()
        with rec.span("run"):
            with rec.span("work"):
                time.sleep(0.01)
        timings = rec.stage_timings()
        assert timings["run/work"] >= 0.009
        assert timings["run"] >= timings["run/work"]

    def test_add_time_accounts_under_fixed_path(self):
        rec = Recorder()
        rec.add_time("weather_sampling", 0.5)
        rec.add_time("weather_sampling", 0.25)
        assert rec.stage_timings()["weather_sampling"] == 0.75
        assert rec.span_calls()["weather_sampling"] == 2

    def test_exception_still_pops_the_stack(self):
        rec = Recorder()
        try:
            with rec.span("run"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert "run" in rec.stage_timings()
        with rec.span("after"):
            pass
        assert "after" in rec.stage_timings()  # not "run/after"


class TestCountersAndGauges:
    def test_counter_accumulates(self):
        rec = Recorder()
        rec.counter("assignments")
        rec.counter("assignments", 4)
        assert rec.counters_snapshot()["assignments"] == 5

    def test_gauge_overwrites(self):
        rec = Recorder()
        rec.gauge("backlog", 10.0)
        rec.gauge("backlog", 3.0)
        assert rec.gauges_snapshot()["backlog"] == 3.0


class TestProfiling:
    def test_profiled_span_dumps_stats(self, tmp_path):
        rec = Recorder(ObsConfig(
            profile_spans=("work",), profile_dir=str(tmp_path)
        ))
        for _ in range(3):
            with rec.span("work"):
                sum(range(1000))
        rec.finish_run(status="ok")
        assert (tmp_path / "work.prof").exists()

    def test_no_nested_profiles(self, tmp_path):
        rec = Recorder(ObsConfig(
            profile_spans=("outer", "inner"), profile_dir=str(tmp_path)
        ))
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        rec.finish_run(status="ok")
        # Only the outer span profiled; the inner one was skipped while
        # another profile was active (cProfile cannot nest).
        assert (tmp_path / "outer.prof").exists()
        assert not (tmp_path / "inner.prof").exists()


class TestFinishRun:
    def test_finish_is_idempotent(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        rec = Recorder(ObsConfig(trace_path=str(trace)))
        rec.start_run({"schema": "x"})
        rec.finish_run(status="ok")
        rec.finish_run(status="ok")
        lines = trace.read_text().strip().splitlines()
        assert sum(1 for ln in lines if '"run_end"' in ln) == 1
