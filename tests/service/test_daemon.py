"""HTTP contract tests for the scheduler daemon.

Each test boots a :class:`SchedulerService` on an ephemeral port
(``port=0``), drives it with stdlib ``http.client``, and shuts it down
via ``POST /shutdown`` -- the same path a real client uses.
"""

import http.client
import json
import threading
import time

import pytest

from repro.core.scenarios import ScenarioSpec
from repro.demand import tenant_mix
from repro.service import SchedulerService
from repro.simulation import SimulationSession


def make_service(pace_s=0.01, **spec_overrides):
    params = dict(num_satellites=4, num_stations=8, duration_s=1800.0,
                  tenants=tenant_mix("balanced"), value="deadline")
    params.update(spec_overrides)
    spec = ScenarioSpec.dgs(**params)
    return SchedulerService(SimulationSession(spec), port=0, pace_s=pace_s)


@pytest.fixture()
def daemon():
    """A running daemon + a request helper; always shut down cleanly."""
    service = make_service()
    result = {}
    thread = threading.Thread(
        target=lambda: result.update(report=service.serve_forever()),
        daemon=True,
    )
    thread.start()
    host, port = service.address

    def call(method, path, payload=None):
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            body = None if payload is None else json.dumps(payload)
            conn.request(method, path, body=body,
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()

    try:
        yield service, call
    finally:
        if not service.session.finished:
            call("POST", "/shutdown")
        else:
            service.request_stop()
        thread.join(timeout=30)
        assert not thread.is_alive(), "daemon failed to shut down"


class TestEndpoints:
    def test_healthz(self, daemon):
        service, call = daemon
        status, body = call("GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["horizon_steps"] == service.session.horizon_steps
        assert 0 <= body["step"] <= body["horizon_steps"]

    def test_submit_and_duplicate_ack(self, daemon):
        service, call = daemon
        sat = service.session.simulation.satellites[0].satellite_id
        request = {"request_id": "req-1", "tenant_id": "premium",
                   "satellite_id": sat, "chunks": 2}
        status, body = call("POST", "/requests", {"requests": [request]})
        assert status == 200
        assert body["acks"][0]["status"] == "queued"
        status, body = call("POST", "/requests", request)  # bare object form
        assert status == 200
        assert body["acks"][0]["status"] == "duplicate"

    def test_quota_and_outage_endpoints(self, daemon):
        service, call = daemon
        station = service.session.simulation.network[0].station_id
        status, body = call("POST", "/quota",
                            {"tenant_id": "standard",
                             "quota_gb_per_day": 42.0})
        assert status == 200
        assert body["acks"][0] == {"event": "quota_update",
                                   "tenant_id": "standard",
                                   "status": "queued"}
        status, body = call("POST", "/outages",
                            {"station_id": station,
                             "start": "2020-06-01T00:10:00",
                             "end": "2020-06-01T00:20:00"})
        assert status == 200
        assert body["acks"][0]["status"] == "queued"

    def test_plan_and_deltas(self, daemon):
        service, call = daemon
        status, body = call("GET", "/plan")
        assert status == 200
        assert isinstance(body["links"], list)
        status, body = call("GET", "/plan/deltas?since=0")
        assert status == 200
        assert body["since"] == 0
        assert body["latest_seq"] >= len(body["deltas"])
        for delta in body["deltas"]:
            assert set(delta) == {"seq", "step", "when",
                                  "assigned", "released"}

    def test_metrics_carry_tenant_reports(self, daemon):
        _service, call = daemon
        status, body = call("GET", "/metrics")
        assert status == 200
        assert "delivered_bits" in body
        assert set(body["tenant_reports"]) == {"premium", "standard",
                                               "bulk"}

    def test_shutdown_returns_report(self, daemon):
        service, call = daemon
        status, body = call("POST", "/shutdown")
        assert status == 200
        report = body["report"]
        assert report["delivered_bits"] >= 0.0
        assert service.session.finished


class TestErrorContract:
    def test_unknown_path_404(self, daemon):
        _service, call = daemon
        for method, path in (("GET", "/nope"), ("POST", "/nope")):
            status, body = call(method, path)
            assert status == 404
            assert "error" in body

    def test_unknown_tenant_400(self, daemon):
        service, call = daemon
        sat = service.session.simulation.satellites[0].satellite_id
        status, body = call("POST", "/requests",
                            {"request_id": "x", "tenant_id": "nope",
                             "satellite_id": sat})
        assert status == 400
        assert "unknown tenant" in body["error"]

    def test_missing_field_400(self, daemon):
        _service, call = daemon
        status, body = call("POST", "/requests", {"request_id": "x"})
        assert status == 400
        assert "missing field" in body["error"]
        status, body = call("POST", "/quota", {"tenant_id": "premium"})
        assert status == 400
        assert "missing field" in body["error"]

    def test_unknown_request_field_400(self, daemon):
        _service, call = daemon
        status, body = call("POST", "/requests",
                            {"request_id": "x", "tenant_id": "premium",
                             "satellite_id": "s", "surprise": 1})
        assert status == 400
        assert "unknown request fields" in body["error"]

    def test_bad_json_body_400(self, daemon):
        service, _call = daemon
        host, port = service.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request("POST", "/requests", body="{not json")
            response = conn.getresponse()
            body = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 400
        assert "not valid JSON" in body["error"]

    def test_bad_since_400(self, daemon):
        _service, call = daemon
        status, body = call("GET", "/plan/deltas?since=minus-one")
        assert status == 400
        status, body = call("GET", "/plan/deltas?since=-1")
        assert status == 400
        assert ">= 0" in body["error"]

    def test_events_after_finalize_409(self, daemon):
        service, call = daemon
        # Finalize the session directly but leave the HTTP server up, so
        # the late submission still gets an HTTP answer (409, not a
        # connection error).
        service.finalize()
        sat = service.session.simulation.satellites[0].satellite_id
        status, body = call("POST", "/requests",
                            {"request_id": "late", "tenant_id": "premium",
                             "satellite_id": sat})
        assert status == 409
        assert "finalized" in body["error"]


class TestServiceObject:
    def test_ephemeral_port_bound(self):
        service = make_service()
        host, port = service.address
        assert host == "127.0.0.1"
        assert port > 0
        assert service.url == f"http://{host}:{port}"
        service._server.server_close()

    def test_finalize_without_serving(self):
        """finalize() works standalone -- no HTTP round-trip required."""
        service = make_service()
        report = service.finalize()
        assert report.delivered_bits >= 0.0
        assert service.finalize() is report  # idempotent passthrough
        service._server.server_close()

    def test_free_running_daemon_reaches_horizon(self):
        service = make_service(pace_s=0.0, duration_s=600.0)
        result = {}
        thread = threading.Thread(
            target=lambda: result.update(report=service.serve_forever()),
            daemon=True,
        )
        thread.start()
        # The un-paced ticker races to the horizon; wait for it, then stop.
        for _ in range(600):
            if service.session.step >= service.session.horizon_steps:
                break
            time.sleep(0.05)
        service.request_stop()
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert result["report"].to_json() == \
            service.session.finalize().to_json()
