"""Secondary-receiver selection over the priced contact graph."""

from datetime import datetime

from repro.scheduling.graph import ContactEdge, ContactGraph
from repro.scheduling.matching import Assignment, diversity_groups

import pytest

WHEN = datetime(2020, 6, 1)


def _edge(sat: int, gs: int, weight: float) -> ContactEdge:
    return ContactEdge(
        satellite_index=sat, station_index=gs, weight=weight,
        bitrate_bps=1e6, elevation_deg=45.0, range_km=1000.0,
        required_esn0_db=5.0,
    )


def _graph(edges) -> ContactGraph:
    sats = max(e.satellite_index for e in edges) + 1
    stations = max(e.station_index for e in edges) + 1
    return ContactGraph(WHEN, edges=list(edges),
                        num_satellites=sats, num_stations=stations)


class TestDiversityGroups:
    def test_best_idle_station_chosen(self):
        graph = _graph([
            _edge(0, 0, 10.0), _edge(0, 1, 6.0), _edge(0, 2, 8.0),
        ])
        assignments = [Assignment.from_edge(graph.edges[0])]
        groups = diversity_groups(graph, assignments, max_receivers=2)
        assert [e.station_index for e in groups[0]] == [2]

    def test_primary_stations_never_recruited(self):
        graph = _graph([
            _edge(0, 0, 10.0), _edge(0, 1, 9.0),
            _edge(1, 1, 10.0), _edge(1, 2, 3.0),
        ])
        assignments = [
            Assignment.from_edge(graph.edges[0]),   # sat0 -> gs0
            Assignment.from_edge(graph.edges[2]),   # sat1 -> gs1
        ]
        groups = diversity_groups(graph, assignments, max_receivers=3)
        # gs1 serves sat1, so sat0 gets nothing; sat1 gets gs2.
        assert groups[0] == []
        assert [e.station_index for e in groups[1]] == [2]

    def test_secondaries_are_exclusive(self):
        graph = _graph([
            _edge(0, 0, 10.0), _edge(0, 2, 5.0),
            _edge(1, 1, 10.0), _edge(1, 2, 9.0),
        ])
        assignments = [
            Assignment.from_edge(graph.edges[0]),
            Assignment.from_edge(graph.edges[2]),
        ]
        groups = diversity_groups(graph, assignments, max_receivers=2)
        # First assignment in order claims gs2; the second finds it taken.
        assert [e.station_index for e in groups[0]] == [2]
        assert groups[1] == []

    def test_receiver_cap(self):
        graph = _graph(
            [_edge(0, 0, 10.0)] + [_edge(0, g, 10.0 - g) for g in range(1, 6)]
        )
        assignments = [Assignment.from_edge(graph.edges[0])]
        for cap in (1, 2, 3, 4):
            groups = diversity_groups(graph, assignments, max_receivers=cap)
            assert len(groups[0]) == cap - 1

    def test_deterministic_tiebreak_on_station_index(self):
        graph = _graph([
            _edge(0, 0, 10.0), _edge(0, 3, 7.0), _edge(0, 1, 7.0),
        ])
        assignments = [Assignment.from_edge(graph.edges[0])]
        groups = diversity_groups(graph, assignments, max_receivers=2)
        assert [e.station_index for e in groups[0]] == [1]

    def test_invalid_cap_rejected(self):
        graph = _graph([_edge(0, 0, 10.0)])
        with pytest.raises(ValueError):
            diversity_groups(graph, [], max_receivers=0)
