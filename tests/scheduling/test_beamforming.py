"""Tests for the beamforming scheduler extension."""

from datetime import datetime, timedelta

import pytest

from repro.scheduling.beamforming import BeamformingScheduler
from repro.scheduling.scheduler import DownlinkScheduler
from repro.scheduling.value_functions import ThroughputValue

EPOCH = datetime(2020, 6, 1)


@pytest.fixture()
def loaded(small_fleet, small_network):
    for sat in small_fleet:
        sat.generate_data(EPOCH - timedelta(hours=2), 7200.0)
    return small_fleet, small_network


def contention_instant(fleet, network):
    """An instant where at least one station sees two satellites."""
    probe = DownlinkScheduler(fleet, network, ThroughputValue())
    for hour in range(48):
        for minute in (0, 15, 30, 45):
            when = EPOCH + timedelta(hours=hour, minutes=minute)
            graph = probe.contact_graph(when)
            per_station = {}
            for e in graph.edges:
                per_station.setdefault(e.station_index, set()).add(
                    e.satellite_index
                )
            if any(len(s) >= 2 for s in per_station.values()):
                return when
    return None


class TestConstruction:
    def test_invalid_beams(self, loaded):
        fleet, network = loaded
        with pytest.raises(ValueError):
            BeamformingScheduler(fleet, network, ThroughputValue(), beams=0)

    def test_capacities_default_to_beams(self, loaded):
        fleet, network = loaded
        sched = BeamformingScheduler(fleet, network, ThroughputValue(), beams=3)
        assert sched.capacities == [3] * len(network)


class TestBeamSplit:
    def test_single_beam_identical_to_plain_scheduler(self, loaded):
        fleet, network = loaded
        plain = DownlinkScheduler(fleet, network, ThroughputValue())
        beam1 = BeamformingScheduler(fleet, network, ThroughputValue(), beams=1)
        step_a = plain.schedule_step(EPOCH)
        step_b = beam1.schedule_step(EPOCH)
        assert [(a.satellite_index, a.station_index, a.bitrate_bps)
                for a in step_a.assignments] == \
               [(a.satellite_index, a.station_index, a.bitrate_bps)
                for a in step_b.assignments]

    def test_multibeam_can_serve_more_satellites(self, loaded):
        fleet, network = loaded
        when = contention_instant(fleet, network)
        if when is None:
            pytest.skip("no multi-satellite contention in the sample window")
        single = DownlinkScheduler(fleet, network, ThroughputValue())
        multi = BeamformingScheduler(fleet, network, ThroughputValue(),
                                     beams=3, lossless=True)
        served_single = len(single.schedule_step(when).assignments)
        served_multi = len(multi.schedule_step(when).assignments)
        assert served_multi >= served_single

    def test_power_split_lowers_per_link_rate(self, loaded):
        fleet, network = loaded
        when = contention_instant(fleet, network)
        if when is None:
            pytest.skip("no multi-satellite contention in the sample window")
        lossy = BeamformingScheduler(fleet, network, ThroughputValue(), beams=3)
        lossless = BeamformingScheduler(fleet, network, ThroughputValue(),
                                        beams=3, lossless=True)
        step_lossy = lossy.schedule_step(when)
        step_lossless = lossless.schedule_step(when)
        # On any station serving multiple sats, the lossy variant's summed
        # rate cannot exceed the lossless one's.
        def station_rates(step):
            rates = {}
            for a in step.assignments:
                rates.setdefault(a.station_index, []).append(a.bitrate_bps)
            return rates

        lossy_rates = station_rates(step_lossy)
        lossless_rates = station_rates(step_lossless)
        for station, rates in lossy_rates.items():
            if len(rates) >= 2 and station in lossless_rates:
                assert sum(rates) <= sum(lossless_rates[station]) + 1e-6

    def test_repriced_links_still_closeable(self, loaded):
        fleet, network = loaded
        when = contention_instant(fleet, network)
        if when is None:
            pytest.skip("no multi-satellite contention in the sample window")
        sched = BeamformingScheduler(fleet, network, ThroughputValue(), beams=4)
        step = sched.schedule_step(when)
        for a in step.assignments:
            assert a.bitrate_bps > 0.0
            assert a.required_esn0_db > -50.0
