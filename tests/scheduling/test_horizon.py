"""Tests for the receding-horizon scheduler."""

from datetime import datetime, timedelta

import pytest

from repro.scheduling.horizon import HorizonScheduler
from repro.scheduling.scheduler import DownlinkScheduler
from repro.scheduling.value_functions import LatencyValue

EPOCH = datetime(2020, 6, 1)


@pytest.fixture()
def loaded(small_fleet, small_network):
    for sat in small_fleet:
        sat.generate_data(EPOCH - timedelta(hours=2), 7200.0)
    return small_fleet, small_network


class TestConstruction:
    def test_invalid_horizon(self, loaded):
        fleet, network = loaded
        with pytest.raises(ValueError):
            HorizonScheduler(fleet, network, LatencyValue(), horizon_steps=0)

    def test_invalid_replan(self, loaded):
        fleet, network = loaded
        with pytest.raises(ValueError):
            HorizonScheduler(fleet, network, LatencyValue(),
                             horizon_steps=5, replan_steps=6)


class TestWindowing:
    def test_h1_matches_valid_assignment_structure(self, loaded):
        fleet, network = loaded
        sched = HorizonScheduler(fleet, network, LatencyValue(),
                                 horizon_steps=1, replan_steps=1)
        step = sched.schedule_step(EPOCH)
        sats = [a.satellite_index for a in step.assignments]
        assert len(sats) == len(set(sats))

    def test_window_reused_until_replan(self, loaded):
        fleet, network = loaded
        sched = HorizonScheduler(fleet, network, LatencyValue(),
                                 horizon_steps=6, replan_steps=3, step_s=60.0)
        sched.schedule_step(EPOCH)
        first_window_start = sched._window_start
        sched.schedule_step(EPOCH + timedelta(seconds=60))
        sched.schedule_step(EPOCH + timedelta(seconds=120))
        assert sched._window_start == first_window_start
        sched.schedule_step(EPOCH + timedelta(seconds=180))
        assert sched._window_start == EPOCH + timedelta(seconds=180)

    def test_off_grid_time_triggers_replan(self, loaded):
        fleet, network = loaded
        sched = HorizonScheduler(fleet, network, LatencyValue(),
                                 horizon_steps=4, replan_steps=4, step_s=60.0)
        sched.schedule_step(EPOCH)
        sched.schedule_step(EPOCH + timedelta(seconds=90))  # not on the grid
        assert sched._window_start == EPOCH + timedelta(seconds=90)


class TestAssignmentValidity:
    def test_capacity_respected_every_step(self, loaded):
        fleet, network = loaded
        sched = HorizonScheduler(fleet, network, LatencyValue(),
                                 horizon_steps=8, replan_steps=8, step_s=60.0)
        for k in range(8):
            step = sched.schedule_step(EPOCH + timedelta(seconds=60 * k))
            stations = [a.station_index for a in step.assignments]
            assert len(stations) == len(set(stations))  # capacity 1

    def test_comparable_first_step_value(self, loaded):
        """The window's first step should be within 2x of the myopic
        stable matching (greedy over the window trades instantaneous value
        for future slots)."""
        fleet, network = loaded
        myopic = DownlinkScheduler(fleet, network, LatencyValue(), step_s=60.0)
        horizon = HorizonScheduler(fleet, network, LatencyValue(),
                                   horizon_steps=5, replan_steps=5, step_s=60.0)
        when = None
        for hour in range(48):
            candidate = EPOCH + timedelta(hours=hour)
            if myopic.contact_graph(candidate).edges:
                when = candidate
                break
        assert when is not None
        myopic_value = sum(a.weight for a in myopic.schedule_step(when).assignments)
        horizon_value = sum(
            a.weight for a in horizon.schedule_step(when).assignments
        )
        if myopic_value > 0:
            assert horizon_value >= 0.5 * myopic_value
