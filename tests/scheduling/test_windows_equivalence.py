"""Window-index path vs the per-step reference paths: identical outputs.

The contact-window index stores the exact elevations/ranges the per-step
culled and dense paths compute, so driving the scheduling loop from it
must produce bit-identical edges, schedules, and reports.  These tests
pin that contract at graph level (including constraints, availability
holes, and plan gating), at full-simulation level (faults, storms,
diversity reception, forecast-driven scheduling, tenants), for the
horizon/beamforming scheduler replacements (which skip the index build
by design), and at mega-constellation scale with spatial culling --
mirroring ``test_culling_equivalence.py`` one layer up.
"""

from dataclasses import replace
from datetime import datetime, timedelta

import pytest

from repro.core.scenarios import ScenarioSpec
from repro.groundstations.network import satnogs_like_network
from repro.orbits.constellation import synthetic_leo_constellation, walker_delta
from repro.orbits.ephemeris import clear_ephemeris_cache, shared_ephemeris_table
from repro.satellites.satellite import Satellite
from repro.scheduling.scheduler import DownlinkScheduler
from repro.scheduling.value_functions import LatencyValue
from repro.scheduling.windows import (
    clear_window_index_cache,
    shared_window_index,
)
from repro.weather.cells import RainCellField
from repro.weather.provider import QuantizedWeatherCache

EPOCH = datetime(2020, 6, 1)
STEP_S = 60.0


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_ephemeris_cache()
    clear_window_index_cache()
    yield
    clear_ephemeris_cache()
    clear_window_index_cache()


def _fleet(n=40, seed=21, walker=False):
    if walker:
        tles = walker_delta(n, max(1, n // 10), 1, 53.0, 550.0, EPOCH)
    else:
        tles = synthetic_leo_constellation(n, EPOCH, seed=seed)
    sats = [Satellite(tle=t, chunk_size_gb=0.5) for t in tles]
    for sat in sats:
        sat.generate_data(EPOCH - timedelta(hours=2), 7200.0)
    return sats


def _scheduler(satellites, network, **kwargs):
    return DownlinkScheduler(
        satellites,
        network,
        LatencyValue(),
        weather=QuantizedWeatherCache(RainCellField(seed=3)),
        **kwargs,
    )


def _attach_index(scheduler, satellites, network, table, num_steps,
                  culled=True):
    scheduler.window_index = shared_window_index(
        satellites, network, start=EPOCH, num_steps=num_steps,
        step_s=STEP_S, geometry=scheduler._geometry, ephemeris=table,
        culling=scheduler._culling_grid if culled else None,
        link_budget_for=scheduler._link_budget_for,
        pair_groups=scheduler._pair_groups,
    )


def _assert_graphs_identical(graph_a, graph_b):
    """Bitwise edge-for-edge equality (order included)."""
    assert len(graph_a.edges) == len(graph_b.edges)
    for ea, eb in zip(graph_a.edges, graph_b.edges):
        assert ea == eb


def _report_dict(spec):
    raw = spec.build().simulation.run().to_dict()
    raw.pop("stage_timings", None)
    return raw


def _assert_on_off_identical(spec):
    on = _report_dict(replace(spec, contact_windows=True))
    off = _report_dict(replace(spec, contact_windows=False))
    assert on == off


class TestGraphEquivalence:
    def test_identical_edges_against_culled_and_dense(self):
        satellites = _fleet(40)
        network = satnogs_like_network(40, seed=13)
        num_steps = 180
        table = shared_ephemeris_table(satellites, EPOCH, num_steps, STEP_S)
        windowed = _scheduler(satellites, network, spatial_culling=True,
                              ephemeris=table)
        _attach_index(windowed, satellites, network, table, num_steps)
        culled = _scheduler(satellites, network, spatial_culling=True,
                            ephemeris=table)
        dense = _scheduler(satellites, network, spatial_culling=False,
                           ephemeris=table)
        total = 0
        for k in range(0, num_steps, 5):
            when = EPOCH + timedelta(minutes=k)
            graph_w = windowed.contact_graph(when)
            _assert_graphs_identical(graph_w, culled.contact_graph(when))
            _assert_graphs_identical(graph_w, dense.contact_graph(when))
            total += len(graph_w.edges)
        assert total > 0

    def test_off_grid_instants_fall_back_bitwise(self):
        """Instants between grid steps must price like the culled path."""
        satellites = _fleet(30)
        network = satnogs_like_network(30, seed=13)
        table = shared_ephemeris_table(satellites, EPOCH, 60, STEP_S)
        windowed = _scheduler(satellites, network, ephemeris=table)
        _attach_index(windowed, satellites, network, table, 60)
        culled = _scheduler(satellites, network, ephemeris=table)
        for k in (10, 30, 50):
            when = EPOCH + timedelta(minutes=k, seconds=30)
            _assert_graphs_identical(
                windowed.contact_graph(when), culled.contact_graph(when)
            )

    def test_identical_edges_with_constraints_and_plan_gating(self):
        """Bitmaps, availability holes, and plan gates mask identically."""
        satellites = _fleet(30)
        network_a = satnogs_like_network(30, seed=13)
        network_b = satnogs_like_network(30, seed=13)
        for network in (network_a, network_b):
            for j, station in enumerate(network):
                if j % 5 == 0:
                    station.constraints.bitmap = (1 << len(satellites)) - 2

        def available(index, when):
            return index % 7 != 0

        num_steps = 120
        table = shared_ephemeris_table(satellites, EPOCH, num_steps, STEP_S)
        kwargs = dict(
            ephemeris=table, station_available=available,
            require_current_plan=True, plan_max_age_s=3600.0,
        )
        windowed = _scheduler(satellites, network_a, **kwargs)
        _attach_index(windowed, satellites, network_a, table, num_steps)
        reference = _scheduler(satellites, network_b, **kwargs)
        for s in (windowed, reference):
            s.satellites[0].receive_plan(EPOCH)
            s.satellites[2].receive_plan(EPOCH)
        for k in range(0, num_steps, 10):
            when = EPOCH + timedelta(minutes=k)
            _assert_graphs_identical(
                windowed.contact_graph(when), reference.contact_graph(when)
            )


class TestSimulationEquivalence:
    def test_reports_identical_under_faults(self):
        _assert_on_off_identical(ScenarioSpec.dgs(
            num_satellites=20, num_stations=25, duration_s=7200.0,
            fault_intensity=0.25, fault_seed=11,
        ))

    def test_reports_identical_with_storms_and_diversity(self):
        _assert_on_off_identical(ScenarioSpec.dgs(
            num_satellites=15, num_stations=20, duration_s=7200.0,
            weather="storms", storm_rate=2.0, storm_speed=1.5,
            execution_mode="diversity", diversity_receivers=3,
        ))

    def test_reports_identical_with_forecast_scheduling(self):
        _assert_on_off_identical(ScenarioSpec.dgs(
            num_satellites=15, num_stations=20, duration_s=7200.0,
            use_forecast=True,
        ))

    def test_reports_identical_with_tenants(self):
        from repro.demand import tenant_mix

        _assert_on_off_identical(ScenarioSpec.dgs(
            num_satellites=15, num_stations=20, duration_s=7200.0,
            tenants=tenant_mix("balanced"), value="deadline",
        ))

    def test_reports_identical_for_horizon_and_beams_schedulers(self):
        """The replacements skip the index build; the knob stays inert."""
        for extra in (
            dict(scheduler="horizon", horizon_steps=3),
            dict(scheduler="beamforming", beams=2),
        ):
            spec = ScenarioSpec.dgs(
                num_satellites=12, num_stations=15, duration_s=3600.0,
                **extra,
            )
            on = replace(spec, contact_windows=True).build()
            assert on.simulation.window_index is None
            on_report = on.simulation.run().to_dict()
            off_report = (
                replace(spec, contact_windows=False)
                .build().simulation.run().to_dict()
            )
            on_report.pop("stage_timings", None)
            off_report.pop("stage_timings", None)
            assert on_report == off_report


class TestMegaScaleWalker:
    def test_walker_2500x1000_edges_identical_with_culling(self):
        """Index + culling at mega-constellation scale, edge-for-edge."""
        satellites = _fleet(2500, walker=True)
        network = satnogs_like_network(1000, seed=13)
        num_steps = 10
        table = shared_ephemeris_table(satellites, EPOCH, num_steps, STEP_S)
        windowed = _scheduler(satellites, network, spatial_culling=True,
                              ephemeris=table)
        _attach_index(windowed, satellites, network, table, num_steps)
        culled = _scheduler(satellites, network, spatial_culling=True,
                            ephemeris=table)
        total = 0
        for k in range(0, num_steps, 3):
            when = EPOCH + timedelta(minutes=k)
            graph_w = windowed.contact_graph(when)
            _assert_graphs_identical(graph_w, culled.contact_graph(when))
            total += len(graph_w.edges)
        assert total > 0
