"""Tests for matching algorithms: stability, optimality, capacity handling."""

from datetime import datetime

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.scheduling.graph import ContactEdge, ContactGraph
from repro.scheduling.matching import (
    gale_shapley,
    greedy_matching,
    hungarian,
    is_stable,
    max_weight_matching,
)

EPOCH = datetime(2020, 6, 1)


def make_graph(edge_spec, num_sats=None, num_stations=None):
    """edge_spec: list of (sat, station, weight)."""
    edges = [
        ContactEdge(satellite_index=s, station_index=g, weight=w,
                    bitrate_bps=w * 1e6, elevation_deg=45.0, range_km=900.0)
        for s, g, w in edge_spec
    ]
    if num_sats is None:
        num_sats = 1 + max((s for s, _g, _w in edge_spec), default=0)
    if num_stations is None:
        num_stations = 1 + max((g for _s, g, _w in edge_spec), default=0)
    return ContactGraph(when=EPOCH, edges=edges, num_satellites=num_sats,
                        num_stations=num_stations)


def assert_valid(graph, assignments, capacities=None):
    caps = capacities or [1] * graph.num_stations
    sats = [a.satellite_index for a in assignments]
    assert len(sats) == len(set(sats)), "satellite matched twice"
    by_station = {}
    for a in assignments:
        by_station.setdefault(a.station_index, []).append(a)
    for station, assigned in by_station.items():
        assert len(assigned) <= caps[station], "station over capacity"
    edge_set = {(e.satellite_index, e.station_index) for e in graph.edges}
    for a in assignments:
        assert (a.satellite_index, a.station_index) in edge_set


# Strategy generating random bipartite graphs.
graphs = st.builds(
    make_graph,
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=7),
            st.integers(min_value=0, max_value=5),
            st.floats(min_value=0.1, max_value=100.0),
        ),
        max_size=30,
        unique_by=lambda t: (t[0], t[1]),
    ),
    num_sats=st.just(8),
    num_stations=st.just(6),
)


class TestGaleShapley:
    def test_simple_preference(self):
        graph = make_graph([(0, 0, 10.0), (0, 1, 5.0), (1, 0, 8.0), (1, 1, 7.0)])
        assignments = gale_shapley(graph)
        pairs = {(a.satellite_index, a.station_index) for a in assignments}
        # Sat 0 takes its better station 0; sat 1 gets station 1.
        assert pairs == {(0, 0), (1, 1)}

    def test_contention_resolved_by_weight(self):
        graph = make_graph([(0, 0, 10.0), (1, 0, 20.0)])
        assignments = gale_shapley(graph)
        assert len(assignments) == 1
        assert assignments[0].satellite_index == 1

    def test_empty_graph(self):
        graph = make_graph([])
        assert gale_shapley(graph) == []

    @settings(max_examples=80)
    @given(graph=graphs)
    def test_output_is_valid_matching(self, graph):
        assignments = gale_shapley(graph)
        assert_valid(graph, assignments)

    @settings(max_examples=80)
    @given(graph=graphs)
    def test_output_is_stable(self, graph):
        """The paper's core guarantee: no blocking pair exists."""
        assignments = gale_shapley(graph)
        assert is_stable(graph, assignments)

    @settings(max_examples=40)
    @given(graph=graphs, cap=st.integers(min_value=1, max_value=3))
    def test_stable_under_capacity(self, graph, cap):
        caps = [cap] * graph.num_stations
        assignments = gale_shapley(graph, caps)
        assert_valid(graph, assignments, caps)
        assert is_stable(graph, assignments, caps)

    def test_maximal_no_free_pair(self):
        # Stability implies maximality: no edge between two unmatched nodes.
        graph = make_graph(
            [(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0), (0, 1, 2.0), (2, 0, 3.0)]
        )
        assignments = gale_shapley(graph)
        matched_sats = {a.satellite_index for a in assignments}
        matched_stations = {a.station_index for a in assignments}
        for e in graph.edges:
            assert (
                e.satellite_index in matched_sats
                or e.station_index in matched_stations
            )


#: Like ``graphs`` but weights drawn from a tiny discrete set, so tied
#: edge weights are the norm rather than a measure-zero accident.
tied_graphs = st.builds(
    make_graph,
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=7),
            st.integers(min_value=0, max_value=5),
            st.sampled_from([1.0, 2.0, 2.0, 3.0, 5.0]),
        ),
        max_size=30,
        unique_by=lambda t: (t[0], t[1]),
    ),
    num_sats=st.just(8),
    num_stations=st.just(6),
)


class TestGaleShapleyTiedWeights:
    """The satellite preference sort and the station eviction sort break
    ties differently (station index ascending vs satellite index
    descending).  Under *weak* stability -- the guarantee ``is_stable``
    checks, where a blocking pair needs strict preference on both sides --
    any deferred-acceptance run is stable regardless of tie-break order;
    these tests pin that so a future tie-break change cannot regress it.
    """

    @settings(max_examples=120)
    @given(graph=tied_graphs)
    def test_stable_under_ties(self, graph):
        assignments = gale_shapley(graph)
        assert_valid(graph, assignments)
        assert is_stable(graph, assignments)

    @settings(max_examples=60)
    @given(graph=tied_graphs, cap=st.integers(min_value=1, max_value=3))
    def test_stable_under_ties_with_capacity(self, graph, cap):
        caps = [cap] * graph.num_stations
        assignments = gale_shapley(graph, caps)
        assert_valid(graph, assignments, caps)
        assert is_stable(graph, assignments, caps)

    def test_all_weights_equal(self):
        # Fully tied: every maximal matching is weakly stable; check the
        # algorithm still yields a valid, stable, maximal result.
        graph = make_graph(
            [(s, g, 1.0) for s in range(3) for g in range(3)]
        )
        assignments = gale_shapley(graph)
        assert len(assignments) == 3
        assert_valid(graph, assignments)
        assert is_stable(graph, assignments)

    def test_deterministic_under_ties(self):
        spec = [(0, 0, 2.0), (0, 1, 2.0), (1, 0, 2.0), (1, 1, 2.0),
                (2, 0, 2.0), (2, 1, 1.0)]
        first = gale_shapley(make_graph(spec))
        second = gale_shapley(make_graph(spec))
        assert first == second


class TestHungarian:
    def test_identity(self):
        cost = np.array([[1.0, 2.0], [2.0, 1.0]])
        rows, cols = hungarian(cost)
        assert list(cols[np.argsort(rows)]) == [0, 1]

    def test_rectangular(self):
        cost = np.array([[1.0, 9.0, 9.0], [9.0, 1.0, 9.0]])
        rows, cols = hungarian(cost)
        total = cost[rows, cols].sum()
        assert total == pytest.approx(2.0)

    def test_tall_matrix_transposed(self):
        cost = np.array([[1.0, 9.0], [9.0, 1.0], [5.0, 5.0]])
        rows, cols = hungarian(cost)
        assert len(rows) == 2  # min(n_rows, n_cols) assignments

    @settings(max_examples=60, deadline=None)
    @given(
        shape=st.tuples(st.integers(2, 7), st.integers(2, 7)),
        seed=st.integers(0, 10_000),
    )
    def test_matches_scipy(self, shape, seed):
        from scipy.optimize import linear_sum_assignment

        rng = np.random.default_rng(seed)
        cost = rng.uniform(0.0, 10.0, size=shape)
        rows, cols = hungarian(cost)
        ref_rows, ref_cols = linear_sum_assignment(cost)
        assert cost[rows, cols].sum() == pytest.approx(
            cost[ref_rows, ref_cols].sum()
        )

    def test_rejects_non_matrix(self):
        with pytest.raises(ValueError):
            hungarian(np.array([1.0, 2.0]))


class TestMaxWeightMatching:
    def test_beats_stable_when_they_differ(self):
        # Classic instance where stability costs global value.
        graph = make_graph([(0, 0, 10.0), (0, 1, 9.0), (1, 0, 9.9)])
        stable_value = sum(a.weight for a in gale_shapley(graph))
        optimal_value = sum(a.weight for a in max_weight_matching(graph))
        assert optimal_value >= stable_value

    @settings(max_examples=60, deadline=None)
    @given(graph=graphs)
    def test_optimal_dominates_stable_and_greedy(self, graph):
        optimal = sum(a.weight for a in max_weight_matching(graph))
        stable = sum(a.weight for a in gale_shapley(graph))
        greedy = sum(a.weight for a in greedy_matching(graph))
        assert optimal >= stable - 1e-9
        assert optimal >= greedy - 1e-9

    @settings(max_examples=40, deadline=None)
    @given(graph=graphs)
    def test_valid_matching(self, graph):
        assert_valid(graph, max_weight_matching(graph))

    def test_capacity_expansion(self):
        graph = make_graph([(0, 0, 5.0), (1, 0, 4.0), (2, 0, 3.0)])
        assignments = max_weight_matching(graph, capacities=[2])
        assert len(assignments) == 2
        assert sum(a.weight for a in assignments) == pytest.approx(9.0)

    def test_empty(self):
        assert max_weight_matching(make_graph([])) == []


class TestGreedy:
    def test_takes_heaviest_first(self):
        graph = make_graph([(0, 0, 1.0), (1, 0, 2.0)])
        assignments = greedy_matching(graph)
        assert assignments[0].satellite_index == 1

    @settings(max_examples=60)
    @given(graph=graphs)
    def test_half_approximation(self, graph):
        """Greedy is a 1/2-approximation of the optimum."""
        greedy = sum(a.weight for a in greedy_matching(graph))
        optimal = sum(a.weight for a in max_weight_matching(graph))
        assert greedy >= 0.5 * optimal - 1e-9

    @settings(max_examples=40)
    @given(graph=graphs)
    def test_valid(self, graph):
        assert_valid(graph, greedy_matching(graph))


class TestCapacityValidation:
    def test_wrong_capacity_length(self):
        graph = make_graph([(0, 0, 1.0)])
        with pytest.raises(ValueError):
            gale_shapley(graph, capacities=[1, 1, 1])
