"""Spatial culling vs the dense path: superset candidates, identical graphs.

The coarse-grid prefilter must be *conservative*: its candidate pairs are
a superset of the geometrically visible pairs, so the culled sparse path
prices exactly the pairs the dense path prices -- and because the per-pair
arithmetic is the same elementwise operations, edges (and therefore
schedules and reports) are bit-identical with culling on or off.  These
tests pin that contract at candidate, graph, and full-simulation level,
including at the paper's population scale and under fault injection.
"""

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.core.scenarios import ScenarioSpec
from repro.groundstations.network import satnogs_like_network
from repro.obs.recorder import Recorder
from repro.orbits.constellation import synthetic_leo_constellation, walker_delta
from repro.orbits.ephemeris import clear_ephemeris_cache, shared_ephemeris_table
from repro.satellites.satellite import Satellite
from repro.scheduling.culling import StationGrid, max_central_angle_rad
from repro.scheduling.graph import GeometryEngine
from repro.scheduling.scheduler import DownlinkScheduler
from repro.scheduling.value_functions import LatencyValue
from repro.weather.cells import RainCellField
from repro.weather.provider import QuantizedWeatherCache

EPOCH = datetime(2020, 6, 1)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_ephemeris_cache()
    yield
    clear_ephemeris_cache()


def _fleet(n=40, seed=21, walker=False):
    if walker:
        tles = walker_delta(n, max(1, n // 10), 1, 53.0, 550.0, EPOCH)
    else:
        tles = synthetic_leo_constellation(n, EPOCH, seed=seed)
    sats = [Satellite(tle=t, chunk_size_gb=0.5) for t in tles]
    for sat in sats:
        sat.generate_data(EPOCH - timedelta(hours=2), 7200.0)
    return sats


def _scheduler(satellites, network, culling, **kwargs):
    return DownlinkScheduler(
        satellites,
        network,
        LatencyValue(),
        weather=QuantizedWeatherCache(RainCellField(seed=3)),
        spatial_culling=culling,
        **kwargs,
    )


def _assert_graphs_identical(graph_a, graph_b):
    """Bitwise edge-for-edge equality (order included)."""
    assert len(graph_a.edges) == len(graph_b.edges)
    for ea, eb in zip(graph_a.edges, graph_b.edges):
        assert ea == eb


class TestCandidateSuperset:
    def test_candidates_cover_all_visible_pairs(self):
        """Every dense-visible pair appears among the grid's candidates."""
        satellites = _fleet(60)
        network = satnogs_like_network(50, seed=13)
        geometry = GeometryEngine(network)
        grid = StationGrid(network)
        covered_total = 0
        for k in range(0, 240, 10):
            when = EPOCH + timedelta(minutes=k)
            sat_ecef = geometry.satellite_ecef(satellites, when)
            _, _, visible = geometry.visibility(
                satellites, when, sat_ecef=sat_ecef
            )
            cand_sat, cand_gs = grid.candidate_pairs(sat_ecef)
            candidates = set(zip(cand_sat.tolist(), cand_gs.tolist()))
            vis_sat, vis_gs = np.nonzero(visible)
            for pair in zip(vis_sat.tolist(), vis_gs.tolist()):
                assert pair in candidates
            covered_total += vis_sat.size
        assert covered_total > 0  # the superset check actually bit

    def test_candidates_lexsorted_and_unique(self):
        """Candidate order must match np.nonzero's row-major order."""
        satellites = _fleet(30)
        network = satnogs_like_network(40, seed=13)
        geometry = GeometryEngine(network)
        grid = StationGrid(network)
        sat_ecef = geometry.satellite_ecef(satellites, EPOCH)
        cand_sat, cand_gs = grid.candidate_pairs(sat_ecef)
        flat = cand_sat * len(network) + cand_gs
        assert np.all(np.diff(flat) > 0)  # strictly increasing => sorted, unique

    def test_culling_actually_culls(self):
        """The prefilter must reject a large share of the M x N product."""
        satellites = _fleet(100, walker=True)
        network = satnogs_like_network(80, seed=13)
        geometry = GeometryEngine(network)
        grid = StationGrid(network)
        sat_ecef = geometry.satellite_ecef(satellites, EPOCH)
        cand_sat, _ = grid.candidate_pairs(sat_ecef)
        dense_pairs = len(satellites) * len(network)
        assert cand_sat.size < 0.5 * dense_pairs

    def test_max_central_angle_monotone_in_elevation(self):
        r = np.array([6378.0 + 550.0])
        low = max_central_angle_rad(r, 0.0)[0]
        high = max_central_angle_rad(r, 25.0)[0]
        assert 0.0 < high < low < np.pi / 2

    def test_empty_network_and_fleet(self):
        network = satnogs_like_network(10, seed=13)
        grid = StationGrid(network)
        empty_sat, empty_gs = grid.candidate_pairs(np.empty((0, 3)))
        assert empty_sat.size == 0 and empty_gs.size == 0


class TestGraphEquivalence:
    def test_identical_edges_across_a_horizon(self):
        satellites = _fleet(40)
        network = satnogs_like_network(40, seed=13)
        dense = _scheduler(satellites, network, culling=False)
        culled = _scheduler(satellites, network, culling=True)
        total = 0
        for k in range(0, 180, 5):
            when = EPOCH + timedelta(minutes=k)
            graph_d = dense.contact_graph(when)
            graph_c = culled.contact_graph(when)
            _assert_graphs_identical(graph_d, graph_c)
            total += len(graph_d.edges)
        assert total > 0

    def test_identical_edges_with_ephemeris_and_constraints(self):
        satellites = _fleet(30)
        network = satnogs_like_network(30, seed=13)
        # Give some stations restrictive constraint bitmaps and
        # availability holes, so every sparse mask stage is exercised.
        for j, station in enumerate(network):
            if j % 5 == 0:
                station.constraints.bitmap = (1 << len(satellites)) - 2

        def available(index, when):
            return index % 7 != 0

        table = shared_ephemeris_table(satellites, EPOCH, 120, 60.0)
        dense = _scheduler(
            satellites, network, culling=False,
            ephemeris=table, station_available=available,
            require_current_plan=True, plan_max_age_s=3600.0,
        )
        culled = _scheduler(
            satellites, network, culling=True,
            ephemeris=table, station_available=available,
            require_current_plan=True, plan_max_age_s=3600.0,
        )
        for s in (dense, culled):
            s.satellites[0].receive_plan(EPOCH)
            s.satellites[2].receive_plan(EPOCH)
        for k in range(0, 120, 10):
            when = EPOCH + timedelta(minutes=k)
            _assert_graphs_identical(
                dense.contact_graph(when), culled.contact_graph(when)
            )

    def test_visible_pair_counters_agree(self):
        """Culled and dense paths must report the same visible_pairs."""
        satellites = _fleet(30)
        network = satnogs_like_network(30, seed=13)
        counts = {}
        for culling in (False, True):
            rec = Recorder()
            sched = _scheduler(satellites, network, culling=culling,
                               recorder=rec)
            sched.contact_graph(EPOCH)
            counts[culling] = rec.counters_snapshot()
        assert counts[False]["visible_pairs"] == counts[True]["visible_pairs"]
        assert counts[True]["candidate_pairs"] >= counts[True]["visible_pairs"]
        assert "culled_pairs" in counts[True]


class TestPaperScaleEquivalence:
    def test_fig3a_reports_bit_identical(self):
        """fig3a at full paper scale: identical reports culling on/off."""
        reports = {}
        for culling in (False, True):
            spec = ScenarioSpec.dgs(
                duration_s=1800.0, spatial_culling=culling
            )
            reports[culling] = spec.build().run("dgs-L").report
        on, off = reports[True].to_dict(), reports[False].to_dict()
        on.pop("stage_timings", None)
        off.pop("stage_timings", None)
        assert on == off

    def test_fig3a_reports_bit_identical_under_faults(self):
        """The graded station_weight fault path must also match."""
        reports = {}
        for culling in (False, True):
            spec = ScenarioSpec.dgs(
                duration_s=1800.0, spatial_culling=culling,
                fault_intensity=0.25, fault_seed=11,
            )
            reports[culling] = spec.build().run("dgs-L").report
        on, off = reports[True].to_dict(), reports[False].to_dict()
        on.pop("stage_timings", None)
        off.pop("stage_timings", None)
        assert on == off
