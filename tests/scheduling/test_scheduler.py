"""Tests for the DownlinkScheduler orchestration layer."""

from datetime import datetime, timedelta

import pytest

from repro.scheduling.matching import is_stable
from repro.scheduling.scheduler import DownlinkScheduler
from repro.scheduling.value_functions import LatencyValue

EPOCH = datetime(2020, 6, 1)


@pytest.fixture()
def scheduler(small_fleet, small_network):
    for sat in small_fleet:
        sat.generate_data(EPOCH - timedelta(hours=2), 7200.0)
    return DownlinkScheduler(small_fleet, small_network, LatencyValue())


def first_active_instant(scheduler):
    for hour in range(48):
        when = EPOCH + timedelta(hours=hour)
        if scheduler.contact_graph(when).edges:
            return when
    pytest.fail("no contacts in 48 h -- geometry broken")


class TestScheduleStep:
    def test_assignments_come_from_graph(self, scheduler):
        when = first_active_instant(scheduler)
        graph = scheduler.contact_graph(when)
        step = scheduler.schedule_step(when)
        edge_pairs = {(e.satellite_index, e.station_index) for e in graph.edges}
        for a in step.assignments:
            assert (a.satellite_index, a.station_index) in edge_pairs

    def test_stable_matching_property(self, scheduler):
        when = first_active_instant(scheduler)
        graph = scheduler.contact_graph(when)
        step = scheduler.schedule_step(when)
        assert is_stable(graph, step.assignments)

    def test_matcher_selection(self, small_fleet, small_network):
        for sat in small_fleet:
            sat.generate_data(EPOCH - timedelta(hours=2), 7200.0)
        stable = DownlinkScheduler(small_fleet, small_network,
                                   LatencyValue(), matcher="stable")
        optimal = DownlinkScheduler(small_fleet, small_network,
                                    LatencyValue(), matcher="optimal")
        when = first_active_instant(stable)
        value_stable = sum(a.weight for a in stable.schedule_step(when).assignments)
        value_optimal = sum(a.weight for a in optimal.schedule_step(when).assignments)
        assert value_optimal >= value_stable - 1e-9

    def test_unknown_matcher_rejected(self, small_fleet, small_network):
        with pytest.raises(ValueError, match="unknown matcher"):
            DownlinkScheduler(small_fleet, small_network, matcher="magic")

    def test_invalid_step(self, small_fleet, small_network):
        with pytest.raises(ValueError):
            DownlinkScheduler(small_fleet, small_network, step_s=0.0)

    def test_station_for_satellite(self, scheduler):
        when = first_active_instant(scheduler)
        step = scheduler.schedule_step(when)
        if step.assignments:
            a = step.assignments[0]
            assert step.station_for_satellite(a.satellite_index) == a.station_index
        assert step.station_for_satellite(9999) is None


class TestBuildPlan:
    def test_plan_covers_horizon(self, scheduler):
        when = first_active_instant(scheduler)
        plan = scheduler.build_plan(when, horizon_s=1800.0)
        assert plan.issued_at == when
        for entries in plan.entries.values():
            for entry in entries:
                assert when <= entry.start < when + timedelta(seconds=1800.0)
                assert entry.expected_bitrate_bps > 0.0

    def test_plan_entries_chronological(self, scheduler):
        when = first_active_instant(scheduler)
        plan = scheduler.build_plan(when, horizon_s=3600.0)
        for entries in plan.entries.values():
            starts = [e.start for e in entries]
            assert starts == sorted(starts)

    def test_empty_plan_for_satellite_without_contacts(self, scheduler):
        when = first_active_instant(scheduler)
        plan = scheduler.build_plan(when, horizon_s=600.0)
        assert plan.for_satellite(12345) == []

    def test_invalid_horizon(self, scheduler):
        with pytest.raises(ValueError):
            scheduler.build_plan(EPOCH, horizon_s=0.0)
