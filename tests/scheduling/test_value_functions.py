"""Tests for value functions Phi."""

from datetime import datetime, timedelta

import pytest

from repro.satellites.data import DataChunk
from repro.satellites.satellite import Satellite
from repro.scheduling.value_functions import (
    AuctionValue,
    CompositeValue,
    LatencyValue,
    PriorityValue,
    ThroughputValue,
    ValueFunction,
)

EPOCH = datetime(2020, 6, 1)
NOW = EPOCH + timedelta(hours=6)


@pytest.fixture()
def loaded_satellite(small_tles):
    sat = Satellite(tle=small_tles[0])
    sat.generate_data(EPOCH, 3600.0)  # ~4 GB captured around EPOCH
    return sat


@pytest.fixture()
def empty_satellite(small_tles):
    return Satellite(tle=small_tles[1])


class TestProtocol:
    def test_all_implementations_conform(self):
        for vf in (LatencyValue(), ThroughputValue(), PriorityValue(),
                   AuctionValue(), CompositeValue(((LatencyValue(), 1.0),))):
            assert isinstance(vf, ValueFunction)


class TestLatencyValue:
    def test_zero_for_dead_link(self, loaded_satellite):
        assert LatencyValue().edge_value(loaded_satellite, "g", 0.0, NOW, 60.0) == 0.0

    def test_zero_for_empty_queue(self, empty_satellite):
        assert LatencyValue().edge_value(empty_satellite, "g", 1e8, NOW, 60.0) == 0.0

    def test_older_data_more_valuable(self, small_tles):
        stale = Satellite(tle=small_tles[0])
        stale.generate_data(EPOCH, 3600.0)
        fresh = Satellite(tle=small_tles[1])
        fresh.generate_data(NOW - timedelta(hours=1), 3600.0)
        vf = LatencyValue()
        assert vf.edge_value(stale, "g", 1e8, NOW, 60.0) > \
            vf.edge_value(fresh, "g", 1e8, NOW, 60.0)

    def test_faster_link_more_valuable(self, loaded_satellite):
        vf = LatencyValue()
        slow = vf.edge_value(loaded_satellite, "g", 5e7, NOW, 60.0)
        fast = vf.edge_value(loaded_satellite, "g", 3e8, NOW, 60.0)
        assert fast > slow

    def test_fresh_data_still_positive(self, small_tles):
        sat = Satellite(tle=small_tles[0])
        sat.generate_data(NOW - timedelta(seconds=60), 60.0)
        # Any backlog at all gives a positive weight.
        if sat.storage.backlog_bits > 0:
            assert LatencyValue().edge_value(sat, "g", 1e8, NOW, 60.0) > 0.0


class TestThroughputValue:
    def test_equals_deliverable_bits(self, loaded_satellite):
        value = ThroughputValue().edge_value(loaded_satellite, "g", 1e8, NOW, 60.0)
        expected = min(1e8 * 60.0, loaded_satellite.storage.backlog_bits)
        assert value == pytest.approx(expected)

    def test_capped_by_backlog(self, small_tles):
        sat = Satellite(tle=small_tles[0])
        sat.generate_data(EPOCH, 864.0)  # exactly ~1 GB
        value = ThroughputValue().edge_value(sat, "g", 1e12, NOW, 60.0)
        assert value == pytest.approx(sat.storage.backlog_bits)

    def test_zero_cases(self, loaded_satellite, empty_satellite):
        vf = ThroughputValue()
        assert vf.edge_value(loaded_satellite, "g", 0.0, NOW, 60.0) == 0.0
        assert vf.edge_value(empty_satellite, "g", 1e8, NOW, 60.0) == 0.0


class TestPriorityValue:
    def test_priority_boosts_value(self, small_tles):
        plain = Satellite(tle=small_tles[0])
        plain.storage.capture(DataChunk("p", 8e9, EPOCH, priority=0.0))
        urgent = Satellite(tle=small_tles[1])
        urgent.storage.capture(DataChunk("u", 8e9, EPOCH, priority=2.0))
        vf = PriorityValue()
        assert vf.edge_value(urgent, "g", 1e8, NOW, 60.0) > \
            vf.edge_value(plain, "g", 1e8, NOW, 60.0)

    def test_region_multiplier(self, small_tles):
        sat = Satellite(tle=small_tles[0])
        sat.storage.capture(DataChunk("s", 8e9, EPOCH, region="flood-zone"))
        base = PriorityValue().edge_value(sat, "g", 1e8, NOW, 60.0)
        boosted = PriorityValue(
            region_multipliers={"flood-zone": 5.0}
        ).edge_value(sat, "g", 1e8, NOW, 60.0)
        assert boosted == pytest.approx(5.0 * base)


class TestAuctionValue:
    def test_bid_scales_value(self, loaded_satellite):
        sat_id = loaded_satellite.satellite_id
        cheap = AuctionValue(default_bid=1.0)
        rich = AuctionValue(bids={(sat_id, "g"): 3.0}, default_bid=1.0)
        assert rich.edge_value(loaded_satellite, "g", 1e8, NOW, 60.0) == \
            pytest.approx(
                3.0 * cheap.edge_value(loaded_satellite, "g", 1e8, NOW, 60.0)
            )

    def test_default_bid_elsewhere(self, loaded_satellite):
        vf = AuctionValue(bids={("other", "g"): 9.0}, default_bid=2.0)
        value = vf.edge_value(loaded_satellite, "g", 1e8, NOW, 60.0)
        assert value == pytest.approx(2.0 * min(1e8 * 60.0,
                                                loaded_satellite.storage.backlog_bits))


class TestCompositeValue:
    def test_weighted_sum(self, loaded_satellite):
        lat, thr = LatencyValue(), ThroughputValue()
        combo = CompositeValue(((lat, 0.5), (thr, 2.0)))
        expected = (
            0.5 * lat.edge_value(loaded_satellite, "g", 1e8, NOW, 60.0)
            + 2.0 * thr.edge_value(loaded_satellite, "g", 1e8, NOW, 60.0)
        )
        assert combo.edge_value(loaded_satellite, "g", 1e8, NOW, 60.0) == \
            pytest.approx(expected)
