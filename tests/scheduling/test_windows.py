"""Unit tests for the contact-window index: CSR shape, boundaries, cache.

Equivalence against the per-step scheduling paths lives in
``test_windows_equivalence.py``; this file pins the index's own
contracts -- that the stored per-step pair sets are exactly what direct
geometry computes, that pass intervals are half-open ``[rise, set)``,
that the scalar :class:`PassPredictor` brackets the step-sampled
windows, and that the session cache returns the same object without
re-scanning.
"""

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.groundstations.network import satnogs_like_network
from repro.obs.recorder import Recorder
from repro.orbits.constellation import synthetic_leo_constellation
from repro.orbits.ephemeris import (
    StreamingEphemerisTable,
    clear_ephemeris_cache,
    shared_ephemeris_table,
)
from repro.orbits.passes import PassPredictor
from repro.satellites.satellite import Satellite
from repro.scheduling.graph import GeometryEngine
from repro.scheduling.windows import (
    ContactWindowIndex,
    clear_window_index_cache,
    shared_window_index,
)

EPOCH = datetime(2020, 6, 1)
STEP_S = 60.0
NUM_STEPS = 180


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_ephemeris_cache()
    clear_window_index_cache()
    yield
    clear_ephemeris_cache()
    clear_window_index_cache()


def _fleet(n=25, seed=21):
    tles = synthetic_leo_constellation(n, EPOCH, seed=seed)
    return [Satellite(tle=t, chunk_size_gb=0.5) for t in tles]


def _build(satellites, network, num_steps=NUM_STEPS, **kwargs):
    return ContactWindowIndex.build(
        satellites, network, start=EPOCH, num_steps=num_steps,
        step_s=STEP_S, **kwargs,
    )


class TestCsrAgainstDirectGeometry:
    def test_pairs_match_dense_visibility_bitwise(self):
        """Every step's stored pairs/elevations/ranges == direct geometry."""
        satellites = _fleet()
        network = satnogs_like_network(30, seed=13)
        geometry = GeometryEngine(network)
        index = _build(satellites, network, geometry=geometry)
        assert index.step_ptr.shape == (NUM_STEPS + 1,)
        assert np.all(np.diff(index.step_ptr) >= 0)
        total_pairs = 0
        for k in range(NUM_STEPS):
            when = EPOCH + timedelta(seconds=k * STEP_S)
            elevation, rng_km, visible = geometry.visibility(satellites, when)
            vs, vg = np.nonzero(visible)
            sat, gs, elev, rng = index.pairs_at(k)
            assert np.array_equal(sat, vs.astype(np.int32))
            assert np.array_equal(gs, vg.astype(np.int32))
            # Bitwise: same elementwise arithmetic on the same positions.
            assert np.array_equal(elev, elevation[vs, vg])
            assert np.array_equal(rng, rng_km[vs, vg])
            assert index.active_count(k) == vs.size
            total_pairs += vs.size
        assert total_pairs > 0  # the comparison actually bit

    def test_windows_partition_the_pair_steps(self):
        """Interval records replay exactly the stored per-step pair sets."""
        satellites = _fleet()
        network = satnogs_like_network(30, seed=13)
        index = _build(satellites, network)
        from_windows: dict[int, set] = {k: set() for k in range(NUM_STEPS)}
        for w in range(index.num_windows):
            pair = (int(index.window_sat[w]), int(index.window_gs[w]))
            rise = int(index.window_rise_step[w])
            set_ = int(index.window_set_step[w])
            assert 0 <= rise < set_ <= NUM_STEPS  # half-open, non-empty
            for k in range(rise, set_):
                assert pair not in from_windows[k]  # no overlapping passes
                from_windows[k].add(pair)
        for k in range(NUM_STEPS):
            sat, gs, _, _ = index.pairs_at(k)
            assert from_windows[k] == set(zip(sat.tolist(), gs.tolist()))

    def test_boundary_flags_and_segments(self):
        """Boundary iff the pair set changed; segments constant between."""
        satellites = _fleet()
        network = satnogs_like_network(30, seed=13)
        index = _build(satellites, network)
        previous: set = set()
        for k in range(NUM_STEPS):
            sat, gs, _, _ = index.pairs_at(k)
            current = set(zip(sat.tolist(), gs.tolist()))
            if k == 0:
                assert index.boundary[0]
            else:
                assert bool(index.boundary[k]) == (current != previous)
                same_segment = index.segment_id(k) == index.segment_id(k - 1)
                assert same_segment == (not index.boundary[k])
            previous = current

    def test_streaming_ephemeris_build_identical(self):
        """Windowed ephemeris streaming does not change the index."""
        satellites = _fleet(15)
        network = satnogs_like_network(20, seed=13)
        mono = shared_ephemeris_table(satellites, EPOCH, NUM_STEPS, STEP_S)
        monolithic = _build(satellites, network, ephemeris=mono)
        stream = StreamingEphemerisTable(
            satellites, EPOCH, NUM_STEPS, STEP_S, window_steps=16
        )
        streamed = _build(satellites, network, ephemeris=stream)
        assert np.array_equal(monolithic.step_ptr, streamed.step_ptr)
        assert np.array_equal(monolithic.pair_sat, streamed.pair_sat)
        assert np.array_equal(monolithic.pair_elevation,
                              streamed.pair_elevation)
        assert np.array_equal(monolithic.pair_range, streamed.pair_range)


class TestStepOf:
    def test_on_grid_off_grid_and_out_of_range(self):
        satellites = _fleet(10)
        network = satnogs_like_network(10, seed=13)
        index = _build(satellites, network, num_steps=30)
        assert index.step_of(EPOCH) == 0
        assert index.step_of(EPOCH + timedelta(seconds=29 * STEP_S)) == 29
        assert index.step_of(EPOCH + timedelta(seconds=30 * STEP_S)) is None
        assert index.step_of(EPOCH - timedelta(seconds=STEP_S)) is None
        assert index.step_of(EPOCH + timedelta(seconds=90.0)) is None


class TestHalfOpenBoundaries:
    def test_set_step_is_first_invisible_step(self):
        """A pair is visible on [rise, set) and invisible just outside."""
        satellites = _fleet()
        network = satnogs_like_network(30, seed=13)
        index = _build(satellites, network)
        assert index.num_windows > 0
        checked = 0
        for w in range(index.num_windows):
            pair = (int(index.window_sat[w]), int(index.window_gs[w]))
            rise = int(index.window_rise_step[w])
            set_ = int(index.window_set_step[w])

            def present(k):
                sat, gs, _, _ = index.pairs_at(k)
                return pair in set(zip(sat.tolist(), gs.tolist()))

            assert present(rise) and present(set_ - 1)
            if rise > 0:
                assert not present(rise - 1)
            if set_ < NUM_STEPS:
                assert not present(set_)
                checked += 1
        assert checked > 0  # at least one set landed inside the horizon

    def test_windows_for_contains_respects_half_open_set(self):
        satellites = _fleet()
        network = satnogs_like_network(30, seed=13)
        index = _build(satellites, network)
        found = 0
        for w in range(min(index.num_windows, 10)):
            sat = int(index.window_sat[w])
            gs = int(index.window_gs[w])
            for window in index.windows_for(sat, gs):
                assert window.contains(window.rise_time)
                assert not window.contains(window.set_time)
                found += 1
        assert found > 0


class TestPassPredictorBracket:
    def test_predictor_crossings_bracket_step_sampled_windows(self):
        """Scalar bisected rise/set always bracket the grid intervals.

        The index samples the elevation mask on the step grid, so its
        rise lands at-or-after the true crossing and its set at most one
        step after: ``predictor_rise <= rise_time`` and
        ``set_time <= predictor_set + step_s``.
        """
        satellites = _fleet(12, seed=5)
        network = satnogs_like_network(12, seed=13)
        index = _build(satellites, network)
        end = EPOCH + timedelta(seconds=NUM_STEPS * STEP_S)
        step = timedelta(seconds=STEP_S)
        matched = 0
        for i, sat in enumerate(satellites):
            for j, station in enumerate(network):
                grid_windows = index.windows_for(i, j)
                if not grid_windows:
                    continue
                predictor = PassPredictor(
                    sat.position_teme,
                    station.latitude_deg,
                    station.longitude_deg,
                    station.altitude_km,
                    station.min_elevation_deg,
                )
                exact = list(predictor.passes(EPOCH, end))
                for grid in grid_windows:
                    bracketing = [
                        w for w in exact
                        if w.rise_time <= grid.rise_time
                        and grid.set_time <= w.set_time + step
                    ]
                    assert bracketing, (
                        f"no predictor pass brackets sat {i} / station {j} "
                        f"window {grid.rise_time}..{grid.set_time}"
                    )
                    matched += 1
            if matched >= 8:
                break
        assert matched > 0


class TestSharedIndexCache:
    def test_memory_hit_returns_same_object(self):
        satellites = _fleet(10)
        network = satnogs_like_network(10, seed=13)
        geometry = GeometryEngine(network)
        table = shared_ephemeris_table(satellites, EPOCH, 60, STEP_S)
        recorder = Recorder()
        kwargs = dict(
            start=EPOCH, num_steps=60, step_s=STEP_S,
            geometry=geometry, ephemeris=table, recorder=recorder,
        )
        first = shared_window_index(satellites, network, **kwargs)
        second = shared_window_index(satellites, network, **kwargs)
        assert second is first
        counters = recorder.counters_snapshot()
        assert counters["window_index_cache/build"] == 1
        assert counters["window_index_cache/memory_hit"] == 1

    def test_different_grid_or_mask_misses(self):
        satellites = _fleet(10)
        network = satnogs_like_network(10, seed=13)
        geometry = GeometryEngine(network)
        table = shared_ephemeris_table(satellites, EPOCH, 60, STEP_S)
        base = shared_window_index(
            satellites, network, start=EPOCH, num_steps=60, step_s=STEP_S,
            geometry=geometry, ephemeris=table,
        )
        shorter = shared_window_index(
            satellites, network, start=EPOCH, num_steps=30, step_s=STEP_S,
            geometry=geometry, ephemeris=table,
        )
        assert shorter is not base
        # A different elevation mask changes the geometry fingerprint.
        strict = satnogs_like_network(10, seed=13)
        for station in strict:
            station.min_elevation_deg = station.min_elevation_deg + 10.0
        other = shared_window_index(
            satellites, strict, start=EPOCH, num_steps=60, step_s=STEP_S,
            geometry=GeometryEngine(strict), ephemeris=table,
        )
        assert other is not base

    def test_clear_cache_forces_rebuild(self):
        satellites = _fleet(10)
        network = satnogs_like_network(10, seed=13)
        geometry = GeometryEngine(network)
        table = shared_ephemeris_table(satellites, EPOCH, 60, STEP_S)
        first = shared_window_index(
            satellites, network, start=EPOCH, num_steps=60, step_s=STEP_S,
            geometry=geometry, ephemeris=table,
        )
        clear_window_index_cache()
        rebuilt = shared_window_index(
            satellites, network, start=EPOCH, num_steps=60, step_s=STEP_S,
            geometry=geometry, ephemeris=table,
        )
        assert rebuilt is not first
        assert np.array_equal(rebuilt.step_ptr, first.step_ptr)
        assert np.array_equal(rebuilt.pair_elevation, first.pair_elevation)
