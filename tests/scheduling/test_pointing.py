"""Tests for antenna pointing schedules."""

from datetime import datetime, timedelta

import pytest

from repro.scheduling.pointing import (
    PointingSample,
    PointingTrack,
    pointing_tracks,
    rotator_conflicts,
)
from repro.scheduling.scheduler import DownlinkScheduler
from repro.scheduling.value_functions import LatencyValue

EPOCH = datetime(2020, 6, 1)


@pytest.fixture(scope="module")
def plan_world():
    from repro.groundstations.network import satnogs_like_network
    from repro.orbits.constellation import synthetic_leo_constellation
    from repro.satellites.satellite import Satellite

    tles = synthetic_leo_constellation(6, EPOCH, seed=42)
    sats = [Satellite(tle=t) for t in tles]
    for sat in sats:
        sat.generate_data(EPOCH - timedelta(hours=2), 7200.0)
    network = satnogs_like_network(12, seed=5)
    scheduler = DownlinkScheduler(sats, network, LatencyValue())
    plan = scheduler.build_plan(EPOCH, horizon_s=2 * 3600.0)
    return sats, network, plan


class TestTrackGeneration:
    def test_tracks_exist_for_plan_contacts(self, plan_world):
        sats, network, plan = plan_world
        tracks = pointing_tracks(plan, sats, network)
        assert tracks  # the plan had contacts
        for station_index, station_tracks in tracks.items():
            for track in station_tracks:
                assert track.station_index == station_index
                assert len(track.samples) >= 2

    def test_samples_above_horizon(self, plan_world):
        """The scheduler only books visible contacts, so pointing tracks
        stay above the horizon throughout."""
        sats, network, plan = plan_world
        tracks = pointing_tracks(plan, sats, network)
        for station_tracks in tracks.values():
            for track in station_tracks:
                for sample in track.samples:
                    assert sample.elevation_deg > -1.0
                    assert 0.0 <= sample.azimuth_deg < 360.0

    def test_doppler_profile_attached(self, plan_world):
        sats, network, plan = plan_world
        tracks = pointing_tracks(plan, sats, network, carrier_hz=8.2e9)
        some = next(iter(tracks.values()))[0]
        assert any(s.doppler_hz != 0.0 for s in some.samples)
        for sample in some.samples:
            assert abs(sample.doppler_hz) < 250e3  # LEO X-band bound

    def test_no_rotator_conflicts_capacity_one(self, plan_world):
        sats, network, plan = plan_world
        tracks = pointing_tracks(plan, sats, network)
        for station_tracks in tracks.values():
            assert rotator_conflicts(station_tracks) == []

    def test_invalid_sample_interval(self, plan_world):
        sats, network, plan = plan_world
        with pytest.raises(ValueError):
            pointing_tracks(plan, sats, network, sample_s=0.0)


class TestSlewRates:
    def _track(self, azimuths, elevations=None, dt_s=10.0):
        elevations = elevations or [45.0] * len(azimuths)
        track = PointingTrack(0, 0)
        for k, (az, el) in enumerate(zip(azimuths, elevations)):
            track.samples.append(PointingSample(
                EPOCH + timedelta(seconds=k * dt_s), az, el,
            ))
        return track

    def test_azimuth_wrap_unwrapped(self):
        # 358 -> 2 deg is a 4-degree move, not 356.
        track = self._track([358.0, 2.0])
        assert track.max_azimuth_rate_deg_s() == pytest.approx(0.4)

    def test_elevation_rate(self):
        track = self._track([10.0, 10.0], [10.0, 30.0])
        assert track.max_elevation_rate_deg_s() == pytest.approx(2.0)

    def test_feasibility(self):
        slow_pass = self._track([10.0, 15.0, 20.0])
        assert slow_pass.feasible_for(1.0)
        overhead_pass = self._track([10.0, 90.0, 170.0])
        assert not overhead_pass.feasible_for(1.0)

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            self._track([0.0, 1.0]).feasible_for(0.0)

    def test_leo_tracks_feasible_for_typical_rotators(self, plan_world):
        """Most scheduled passes stay under a hobby rotator's ~6 deg/s;
        only near-overhead passes exceed it."""
        sats, network, plan = plan_world
        tracks = pointing_tracks(plan, sats, network)
        all_tracks = [t for ts in tracks.values() for t in ts]
        feasible = sum(1 for t in all_tracks if t.feasible_for(6.0))
        assert feasible >= len(all_tracks) * 0.6
