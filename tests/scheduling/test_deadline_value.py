"""Tests for the tenant-priced DeadlineSlaValue.

Scalar semantics first (weights, urgency pressure, quota discounting),
then the contract the batched pipeline must honor: ``edge_values`` is
bit-identical to the per-edge scalar method, at graph level and through
a full simulation.
"""

from datetime import datetime, timedelta
from types import SimpleNamespace

import pytest

from repro.demand import DemandAssigner, DemandLayer, RequestGenerator, Tenant, tenant_mix
from repro.groundstations.network import satnogs_like_network
from repro.orbits.constellation import synthetic_leo_constellation
from repro.orbits.ephemeris import clear_ephemeris_cache
from repro.satellites.data import DataChunk
from repro.satellites.satellite import Satellite
from repro.scheduling.scheduler import DownlinkScheduler
from repro.scheduling.value_functions import DeadlineSlaValue
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulation
from repro.weather.cells import RainCellField
from repro.weather.provider import QuantizedWeatherCache

EPOCH = datetime(2020, 6, 1)

TENANTS = (
    Tenant("gold", tier=3, weight=4.0, sla_deadline_s=3600.0),
    Tenant("base", tier=1, weight=1.0, sla_deadline_s=86400.0),
)


def _satellite_with(chunks):
    chunks = list(chunks)
    storage = SimpleNamespace(
        onboard_chunks=chunks,
        backlog_bits=sum(c.remaining_bits for c in chunks),
        peek_sendable=lambda: chunks[0] if chunks else None,
    )
    return SimpleNamespace(storage=storage)


def _chunk(tenant_id="", age_s=600.0, deadline_in_s=None, size_bits=4e9,
           chunk_id=0):
    capture = EPOCH - timedelta(seconds=age_s)
    deadline = None
    if deadline_in_s is not None:
        deadline = EPOCH + timedelta(seconds=deadline_in_s)
    return DataChunk(
        satellite_id="sat-1", size_bits=size_bits, capture_time=capture,
        chunk_id=chunk_id, tenant_id=tenant_id, deadline=deadline,
    )


class TestScalarSemantics:
    def test_validation(self):
        with pytest.raises(ValueError):
            DeadlineSlaValue(urgency_horizon_s=0.0)
        with pytest.raises(ValueError):
            DeadlineSlaValue(over_quota_factor=0.0)

    def test_zero_bitrate_prices_zero(self):
        value = DeadlineSlaValue(tenants=TENANTS)
        sat = _satellite_with([_chunk("gold", deadline_in_s=7200.0)])
        assert value.edge_value(sat, "gs", 0.0, EPOCH, 60.0) == 0.0

    def test_tenant_weight_scales_price(self):
        value = DeadlineSlaValue(tenants=TENANTS)
        # Deadlines beyond the urgency horizon: pure age pricing, so the
        # ratio between the tenants is exactly the weight ratio.
        gold = _satellite_with([_chunk("gold", deadline_in_s=7200.0)])
        base = _satellite_with([_chunk("base", deadline_in_s=7200.0)])
        v_gold = value.edge_value(gold, "gs", 1e6, EPOCH, 60.0)
        v_base = value.edge_value(base, "gs", 1e6, EPOCH, 60.0)
        assert v_gold == pytest.approx(4.0 * v_base)

    def test_deadline_pressure_adds_urgency(self):
        value = DeadlineSlaValue(tenants=TENANTS)
        relaxed = _satellite_with([_chunk("base", deadline_in_s=86400.0)])
        due_now = _satellite_with([_chunk("base", deadline_in_s=0.0)])
        v_relaxed = value.edge_value(relaxed, "gs", 1e6, EPOCH, 60.0)
        v_due = value.edge_value(due_now, "gs", 1e6, EPOCH, 60.0)
        # Pressure at the deadline is exactly 1: one urgency_weight_s of
        # effective extra age, scaled by the sendable fraction.
        sendable_fraction = 1e6 * 60.0 / 4e9
        expected = value.urgency_weight_s * sendable_fraction
        assert v_due - v_relaxed == pytest.approx(expected)

    def test_pressure_clips_at_two_horizons(self):
        value = DeadlineSlaValue(tenants=TENANTS)
        overdue = _satellite_with(
            [_chunk("base", deadline_in_s=-value.urgency_horizon_s)]
        )
        ancient = _satellite_with(
            [_chunk("base", deadline_in_s=-10 * value.urgency_horizon_s)]
        )
        v_overdue = value.edge_value(overdue, "gs", 1e6, EPOCH, 60.0)
        v_ancient = value.edge_value(ancient, "gs", 1e6, EPOCH, 60.0)
        assert v_overdue == pytest.approx(v_ancient)

    def test_untenanted_chunk_prices_at_unit_weight(self):
        value = DeadlineSlaValue(tenants=TENANTS)
        plain = _satellite_with([_chunk("")])
        base = _satellite_with([_chunk("base", deadline_in_s=86400.0)])
        assert value.edge_value(plain, "gs", 1e6, EPOCH, 60.0) == \
            pytest.approx(value.edge_value(base, "gs", 1e6, EPOCH, 60.0))

    def test_over_quota_tenant_discounted(self):
        class _Ledger:
            def under_quota(self, tenant_id, now):
                return tenant_id != "gold"

        priced = DeadlineSlaValue(tenants=TENANTS, accountant=_Ledger())
        free = DeadlineSlaValue(tenants=TENANTS)
        sat = _satellite_with([_chunk("gold", deadline_in_s=7200.0)])
        discounted = priced.edge_value(sat, "gs", 1e6, EPOCH, 60.0)
        full = free.edge_value(sat, "gs", 1e6, EPOCH, 60.0)
        assert discounted == pytest.approx(priced.over_quota_factor * full)

    def test_all_new_data_fallback(self):
        value = DeadlineSlaValue(tenants=TENANTS)
        sat = _satellite_with([_chunk("base", age_s=0.0,
                                      deadline_in_s=86400.0)])
        priced = value.edge_value(sat, "gs", 1e6, EPOCH, 60.0)
        deliverable = 1e6 * 60.0
        assert priced == pytest.approx(
            value.min_age_factor * 60.0 * deliverable / 4e9
        )


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_ephemeris_cache()
    yield
    clear_ephemeris_cache()


MIX = tenant_mix("balanced")


def _stamped_fleet(n=10, seed=21):
    """A fleet with two hours of tenant-stamped backlog."""
    tles = synthetic_leo_constellation(n, EPOCH, seed=seed)
    sats = [Satellite(tle=t, chunk_size_gb=0.5) for t in tles]
    assigner = DemandAssigner(RequestGenerator(MIX, seed=13),
                              requests_per_day=24)
    for sat in sats:
        sat.demand = assigner
        sat.generate_data(EPOCH - timedelta(hours=2), 7200.0)
    return sats


def _scheduler(batched):
    return DownlinkScheduler(
        _stamped_fleet(),
        satnogs_like_network(24, seed=13),
        DeadlineSlaValue(tenants=MIX),
        weather=QuantizedWeatherCache(RainCellField(seed=3)),
        batched=batched,
    )


class TestBatchedEquivalence:
    def test_identical_weights_across_a_horizon(self):
        scalar = _scheduler(batched=False)
        batched = _scheduler(batched=True)
        total = 0
        for k in range(0, 180, 5):
            when = EPOCH + timedelta(minutes=k)
            graph_s = scalar.contact_graph(when)
            graph_b = batched.contact_graph(when)
            assert len(graph_s.edges) == len(graph_b.edges)
            for ea, eb in zip(graph_s.edges, graph_b.edges):
                assert ea.satellite_index == eb.satellite_index
                assert ea.station_index == eb.station_index
                assert ea.weight == eb.weight
                assert ea.bitrate_bps == eb.bitrate_bps
            total += len(graph_s.edges)
        assert total > 0

    def test_identical_simulation_reports(self):
        reports = {}
        for batched in (False, True):
            tles = synthetic_leo_constellation(8, EPOCH, seed=21)
            sats = [Satellite(tle=t, chunk_size_gb=0.5) for t in tles]
            network = satnogs_like_network(20, seed=13)
            config = SimulationConfig(
                start=EPOCH, duration_s=3 * 3600.0, step_s=60.0,
                batched_kernels=batched, precompute_ephemeris=batched,
            )
            demand = DemandLayer.build(
                tenants=MIX, requests_per_day=24, seed=13, start=EPOCH
            )
            sim = Simulation(
                satellites=sats, network=network,
                value_function=DeadlineSlaValue(
                    tenants=MIX, accountant=demand.accountant
                ),
                config=config,
                truth_weather=QuantizedWeatherCache(RainCellField(seed=3)),
                demand=demand,
            )
            reports[batched] = sim.run()
        assert reports[False].to_json() == reports[True].to_json()
