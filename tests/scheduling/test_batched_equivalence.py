"""Batched pipeline vs the scalar reference: same edges, same schedules.

Matchers tie-break on edge order, so the batched path must reproduce the
scalar path's edges exactly and in the same row-major (satellite, station)
order -- these tests pin that contract at graph, scheduler, and full
simulation level.
"""

from datetime import datetime, timedelta

import pytest

from repro.groundstations.network import satnogs_like_network
from repro.orbits.constellation import synthetic_leo_constellation
from repro.orbits.ephemeris import (
    clear_ephemeris_cache,
    shared_ephemeris_table,
)
from repro.satellites.satellite import Satellite
from repro.scheduling.scheduler import DownlinkScheduler
from repro.scheduling.value_functions import LatencyValue
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulation
from repro.weather.cells import RainCellField
from repro.weather.provider import QuantizedWeatherCache

EPOCH = datetime(2020, 6, 1)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_ephemeris_cache()
    yield
    clear_ephemeris_cache()


def _fleet(n=10, seed=21):
    tles = synthetic_leo_constellation(n, EPOCH, seed=seed)
    sats = [Satellite(tle=t, chunk_size_gb=0.5) for t in tles]
    for sat in sats:
        sat.generate_data(EPOCH - timedelta(hours=2), 7200.0)
    return sats


def _scheduler(batched, use_ephemeris, num_steps=180, **kwargs):
    satellites = _fleet()
    network = satnogs_like_network(24, seed=13)
    table = None
    if use_ephemeris:
        table = shared_ephemeris_table(satellites, EPOCH, num_steps, 60.0)
    return DownlinkScheduler(
        satellites,
        network,
        LatencyValue(),
        weather=QuantizedWeatherCache(RainCellField(seed=3)),
        ephemeris=table,
        batched=batched,
        **kwargs,
    )


def _assert_graphs_equal(graph_a, graph_b, geometry_tol=0.0):
    """Edge-for-edge equality.

    ``geometry_tol`` admits float noise on the *continuous* geometry
    fields when one side propagates through the batch-SGP4 ephemeris
    (positions agree to ~1e-12 km, i.e. 1 ulp); the discrete outcomes
    (edge set, order, MODCOD, bitrate, weight) must still match exactly.
    """
    assert len(graph_a.edges) == len(graph_b.edges)
    for ea, eb in zip(graph_a.edges, graph_b.edges):
        assert ea.satellite_index == eb.satellite_index
        assert ea.station_index == eb.station_index
        assert ea.weight == eb.weight
        assert ea.bitrate_bps == eb.bitrate_bps
        assert ea.required_esn0_db == eb.required_esn0_db
        if geometry_tol:
            assert ea.elevation_deg == pytest.approx(
                eb.elevation_deg, abs=geometry_tol
            )
            assert ea.range_km == pytest.approx(eb.range_km, abs=geometry_tol)
        else:
            assert ea.elevation_deg == eb.elevation_deg
            assert ea.range_km == eb.range_km


class TestGraphEquivalence:
    def test_identical_edges_across_a_horizon(self):
        scalar = _scheduler(batched=False, use_ephemeris=False)
        batched = _scheduler(batched=True, use_ephemeris=False)
        total = 0
        for k in range(0, 180, 5):
            when = EPOCH + timedelta(minutes=k)
            graph_s = scalar.contact_graph(when)
            graph_b = batched.contact_graph(when)
            _assert_graphs_equal(graph_s, graph_b)
            total += len(graph_s.edges)
        assert total > 0  # the comparison actually exercised edges

    def test_identical_edges_with_ephemeris_table(self):
        """Batched + precomputed ephemeris against fully scalar."""
        scalar = _scheduler(batched=False, use_ephemeris=False)
        batched = _scheduler(batched=True, use_ephemeris=True)
        for k in range(0, 180, 7):
            when = EPOCH + timedelta(minutes=k)
            _assert_graphs_equal(
                scalar.contact_graph(when), batched.contact_graph(when),
                geometry_tol=1e-6,
            )

    def test_identical_edges_under_plan_distribution(self):
        """The has-plan x can-transmit mask must vectorize faithfully."""
        kwargs = dict(require_current_plan=True, plan_max_age_s=3600.0)
        scalar = _scheduler(batched=False, use_ephemeris=False, **kwargs)
        batched = _scheduler(batched=True, use_ephemeris=False, **kwargs)
        # A couple of satellites hold fresh plans; the rest do not.
        for s in (scalar, batched):
            s.satellites[0].receive_plan(EPOCH)
            s.satellites[3].receive_plan(EPOCH)
        for k in range(0, 120, 10):
            when = EPOCH + timedelta(minutes=k)
            _assert_graphs_equal(
                scalar.contact_graph(when), batched.contact_graph(when)
            )

    def test_identical_edges_with_station_outages(self):
        def available(index, when):
            return index % 3 != 0
        scalar = _scheduler(
            batched=False, use_ephemeris=False, station_available=available
        )
        batched = _scheduler(
            batched=True, use_ephemeris=False, station_available=available
        )
        for k in range(0, 120, 10):
            when = EPOCH + timedelta(minutes=k)
            graph_s = scalar.contact_graph(when)
            graph_b = batched.contact_graph(when)
            _assert_graphs_equal(graph_s, graph_b)
            assert all(e.station_index % 3 != 0 for e in graph_b.edges)


class TestScheduleEquivalence:
    def test_identical_assignments(self):
        scalar = _scheduler(batched=False, use_ephemeris=False)
        batched = _scheduler(batched=True, use_ephemeris=True)
        for k in range(0, 180, 5):
            when = EPOCH + timedelta(minutes=k)
            step_s = scalar.schedule_step(when)
            step_b = batched.schedule_step(when)
            assert step_s.num_edges == step_b.num_edges
            pairs_s = [
                (a.satellite_index, a.station_index)
                for a in step_s.assignments
            ]
            pairs_b = [
                (a.satellite_index, a.station_index)
                for a in step_b.assignments
            ]
            assert pairs_s == pairs_b


class TestSimulationEquivalence:
    def test_identical_reports(self):
        """A full (short) run schedules and delivers identically."""
        reports = {}
        for batched in (False, True):
            tles = synthetic_leo_constellation(8, EPOCH, seed=21)
            sats = [Satellite(tle=t, chunk_size_gb=0.5) for t in tles]
            network = satnogs_like_network(20, seed=13)
            config = SimulationConfig(
                start=EPOCH,
                duration_s=3 * 3600.0,
                step_s=60.0,
                batched_kernels=batched,
                precompute_ephemeris=batched,
            )
            weather = QuantizedWeatherCache(RainCellField(seed=3))
            sim = Simulation(satellites=sats, network=network, value_function=LatencyValue(), config=config,
                             truth_weather=weather)
            reports[batched] = sim.run()
        scalar, batched = reports[False], reports[True]
        assert scalar.matched_step_counts == batched.matched_step_counts
        assert scalar.delivered_bits == batched.delivered_bits
        assert scalar.generated_bits == batched.generated_bits
        assert scalar.latency_s == batched.latency_s
        assert scalar.station_bits == batched.station_bits
        assert scalar.final_backlog_gb == batched.final_backlog_gb
