"""Tests for contact-graph construction and the vectorized geometry engine."""

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.core.api import DGSNetwork
from repro.satellites.satellite import Satellite
from repro.scheduling.graph import GeometryEngine, build_contact_graph
from repro.scheduling.value_functions import LatencyValue, ThroughputValue
from repro.weather.cells import WeatherSample
from repro.weather.provider import ClearSkyProvider

EPOCH = datetime(2020, 6, 1)


def clear_forecast(lat, lon, when):
    return WeatherSample(0.0, 0.0)


@pytest.fixture()
def loaded_fleet(small_fleet):
    for sat in small_fleet:
        sat.generate_data(EPOCH - timedelta(hours=1), 3600.0)
    return small_fleet


def budget_factory(network):
    from repro.linkbudget.budget import LinkBudget

    cache = {}

    def link_budget_for(sat, station_index):
        key = (id(sat.radio), station_index)
        if key not in cache:
            cache[key] = LinkBudget(sat.radio, network[station_index].receiver)
        return cache[key]

    return link_budget_for


class TestGeometryEngine:
    def test_matches_scalar_look_angles(self, loaded_fleet, small_network):
        """The vectorized path must agree with the reference scalar path."""
        engine = GeometryEngine(small_network)
        elevation, rng_km, visible = engine.visibility(loaded_fleet, EPOCH)
        api = DGSNetwork(satellites=loaded_fleet, network=small_network)
        for i, sat in enumerate(loaded_fleet):
            for j, station in enumerate(small_network):
                topo = api.look_angles(sat, station, EPOCH)
                assert elevation[i, j] == pytest.approx(
                    topo.elevation_deg, abs=1e-6
                )
                assert rng_km[i, j] == pytest.approx(topo.range_km, abs=1e-6)

    def test_visibility_consistent_with_mask(self, loaded_fleet, small_network):
        engine = GeometryEngine(small_network)
        elevation, _rng, visible = engine.visibility(loaded_fleet, EPOCH)
        for j, station in enumerate(small_network):
            expected = elevation[:, j] > station.min_elevation_deg
            assert np.array_equal(visible[:, j], expected)


class TestBuildContactGraph:
    def build(self, fleet, network, when=EPOCH, value=None, **kwargs):
        return build_contact_graph(
            satellites=fleet,
            network=network,
            when=when,
            value_function=value or LatencyValue(),
            link_budget_for=budget_factory(network),
            forecast=clear_forecast,
            step_s=60.0,
            **kwargs,
        )

    def test_edges_reference_valid_indices(self, loaded_fleet, small_network):
        graph = self.build(loaded_fleet, small_network)
        for e in graph.edges:
            assert 0 <= e.satellite_index < len(loaded_fleet)
            assert 0 <= e.station_index < len(small_network)
            assert e.weight > 0.0
            assert e.bitrate_bps > 0.0
            assert e.elevation_deg > 0.0

    def test_some_edges_over_a_day(self, loaded_fleet, small_network):
        total = 0
        for hour in range(24):
            graph = self.build(loaded_fleet, small_network,
                               when=EPOCH + timedelta(hours=hour))
            total += len(graph.edges)
        assert total > 0

    def test_empty_queue_produces_no_edges(self, small_fleet, small_network):
        # Satellites with nothing to send have zero-value edges everywhere.
        graph = self.build(small_fleet, small_network)
        assert graph.edges == []

    def test_constraint_bitmap_respected(self, loaded_fleet, small_network):
        from repro.groundstations.station import DownlinkConstraints

        # Find a time with edges, then deny that satellite at that station.
        when = EPOCH
        graph = self.build(loaded_fleet, small_network, when=when)
        for hour in range(24):
            when = EPOCH + timedelta(hours=hour)
            graph = self.build(loaded_fleet, small_network, when=when)
            if graph.edges:
                break
        assert graph.edges, "no contact in a day -- geometry broken"
        target = graph.edges[0]
        station = small_network[target.station_index]
        original = station.constraints
        try:
            station.constraints = DownlinkConstraints.deny_all()
            graph2 = self.build(loaded_fleet, small_network, when=when)
            assert all(
                e.station_index != target.station_index for e in graph2.edges
            )
        finally:
            station.constraints = original

    def test_plan_requirement_limits_to_tx_stations(self, loaded_fleet,
                                                    small_network):
        when = None
        for hour in range(24):
            candidate = EPOCH + timedelta(hours=hour)
            graph = self.build(loaded_fleet, small_network, when=candidate)
            if graph.edges:
                when = candidate
                break
        assert when is not None
        # No satellite holds a plan: edges may only touch tx-capable stations.
        constrained = self.build(
            loaded_fleet, small_network, when=when,
            require_current_plan=True, plan_max_age_s=3600.0,
        )
        for e in constrained.edges:
            assert small_network[e.station_index].can_transmit

    def test_weight_matrix_shape(self, loaded_fleet, small_network):
        graph = self.build(loaded_fleet, small_network)
        mat = graph.weight_matrix()
        assert mat.shape == (len(loaded_fleet), len(small_network))

    def test_throughput_value_weights(self, loaded_fleet, small_network):
        graph = self.build(loaded_fleet, small_network, value=ThroughputValue())
        for e in graph.edges:
            assert e.weight <= e.bitrate_bps * 60.0 + 1e-6
