"""Tests for the experiment harness (small-scale smoke runs).

These run the identical code paths as the full-scale benches, scaled to
seconds so the suite stays fast: the assertions check *structure* and the
qualitative shape (who wins), not the paper's absolute numbers, which the
benchmark harness reproduces at scale=1.0.
"""

import pytest

from repro.experiments import ablations, fig3a, fig3b, fig3c, setup_validation, summary
from repro.experiments.common import ExperimentResult, scaled_counts
from repro.experiments.paper_runs import clear_cache, get_run

SCALE = 0.06  # ~16 satellites, ~10 stations
DURATION = 4 * 3600.0


@pytest.fixture(scope="module", autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestExperimentResultSerialization:
    def test_json_round_trip(self):
        from repro.analysis.tables import ComparisonTable

        result = ExperimentResult("figX", "a test figure")
        result.series["dgs"] = [1.0, 2.0, 3.0]
        table = ComparisonTable(title="t", unit="min")
        table.add("p50", 58.0, 49.0)
        result.tables.append(table)
        result.notes.append("a note")
        again = ExperimentResult.from_json(result.to_json())
        assert again.experiment_id == "figX"
        assert again.series == result.series
        assert again.tables[0].rows == table.rows
        assert again.notes == ["a note"]
        assert again.render() == result.render()


class TestScaledCounts:
    def test_full_scale_is_paper_population(self):
        assert scaled_counts(1.0) == (259, 173, 5)

    def test_small_scale_floors(self):
        sats, stations, baseline = scaled_counts(0.01)
        assert sats >= 5
        assert stations >= 8
        assert baseline >= 3

    def test_invalid(self):
        with pytest.raises(ValueError):
            scaled_counts(0.0)
        with pytest.raises(ValueError):
            scaled_counts(1.5)


class TestPaperRuns:
    def test_memoization(self):
        a = get_run("dgs-L", DURATION, SCALE)
        b = get_run("dgs-L", DURATION, SCALE)
        assert a is b

    def test_variant_wiring(self):
        baseline = get_run("baseline-L", DURATION, SCALE)
        assert baseline.num_stations <= 5
        dgs25 = get_run("dgs25-L", DURATION, SCALE)
        full = get_run("dgs-L", DURATION, SCALE)
        assert dgs25.num_stations < full.num_stations


class TestFigureExperiments:
    def test_fig3a_structure(self):
        result = fig3a.run(DURATION, SCALE)
        assert isinstance(result, ExperimentResult)
        assert set(result.series) == {"baseline", "dgs", "dgs25"}
        assert len(result.tables) == 3
        rendered = result.render()
        assert "fig3a" in rendered
        assert "p50" in rendered

    def test_fig3b_structure(self):
        """At toy scale the baseline can legitimately win (the paper's own
        point: 5 stations are fine for small constellations and collapse
        under contention as fleets grow), so this test checks structure;
        the full-scale benchmark reproduces the paper's ordering."""
        result = fig3b.run(DURATION, SCALE)
        assert set(result.series) == {"baseline", "dgs", "dgs25"}
        for label in result.series:
            cdf = result.cdf(label)
            assert cdf.min >= 0.0
            assert cdf.percentile(90) >= cdf.percentile(50)
        assert any("improvement" in n for n in result.notes)

    def test_fig3c_structure(self):
        result = fig3c.run(DURATION, SCALE)
        assert set(result.series) == {"baseline-L", "dgs25-L", "dgs25-T"}
        assert result.notes

    def test_summary_tables(self):
        result = summary.run(DURATION, SCALE)
        titles = [t.title for t in result.tables]
        assert any("Latency" in t for t in titles)
        assert any("Backlog" in t for t in titles)


class TestSetupValidation:
    def test_validates_environment_claims(self):
        result = setup_validation.run(duration_s=86400.0, scale=0.03)
        table = result.tables[0]
        metrics = {m: (paper, measured) for m, paper, measured in table.rows}
        paper_rate, measured_rate = metrics["peak baseline link (Gbps)"]
        assert measured_rate == pytest.approx(paper_rate, rel=0.2)
        ratio_paper, ratio_measured = metrics[
            "baseline/DGS node median throughput ratio"
        ]
        assert 0.6 * ratio_paper < ratio_measured < 1.5 * ratio_paper


class TestAblations:
    def test_matching_ablation_rows(self):
        rows = ablations.run_matching(duration_s=2 * 3600.0, scale=SCALE)
        assert [r.label for r in rows] == ["stable", "optimal", "greedy"]
        for row in rows:
            assert row.delivered_tb >= 0.0

    def test_weather_ablation_clear_at_least_as_good(self):
        rows = ablations.run_weather(duration_s=2 * 3600.0, scale=SCALE)
        by_label = {r.label: r for r in rows}
        assert by_label["clear"].delivered_tb >= by_label["stormy"].delivered_tb - 0.05

    def test_horizon_ablation_includes_paper_scheduler(self):
        rows = ablations.run_horizon(duration_s=2 * 3600.0, scale=SCALE,
                                     horizons=(1, 4))
        assert [r.label for r in rows] == ["H=1", "H=4"]
        # Lookahead must stay in the same performance regime as myopic.
        assert rows[1].delivered_tb >= 0.5 * rows[0].delivered_tb

    def test_beamforming_ablation(self):
        rows = ablations.run_beamforming(duration_s=2 * 3600.0, scale=SCALE,
                                         beam_counts=(1, 2))
        assert [r.label for r in rows] == ["beams=1", "beams=2"]


class TestRobustness:
    def test_structure_and_degradation_signs(self):
        from repro.experiments import robustness

        result = robustness.run(duration_s=3 * 3600.0, scale=SCALE)
        assert "baseline:healthy" in result.series
        assert "dgs:worst-announced" in result.series
        # A failure can never increase delivery.
        for system in ("baseline", "dgs"):
            healthy = result.series[f"{system}:healthy"][0]
            for fault in ("worst-announced", "worst-unannounced"):
                assert result.series[f"{system}:{fault}"][0] <= healthy + 1e-9
        # Unannounced failures are at least as bad as announced ones.
        for system in ("baseline", "dgs"):
            announced = result.series[f"{system}:worst-announced"][0]
            unannounced = result.series[f"{system}:worst-unannounced"][0]
            assert unannounced <= announced + 1e-9
