"""Tests for the DGSNetwork public facade."""

from datetime import datetime, timedelta

import pytest

from repro.core.api import DGSNetwork
from repro.simulation.config import SimulationConfig

EPOCH = datetime(2020, 6, 1)


@pytest.fixture()
def api(small_fleet, small_network):
    for sat in small_fleet:
        sat.generate_data(EPOCH - timedelta(hours=2), 7200.0)
    return DGSNetwork(satellites=small_fleet, network=small_network)


class TestConstruction:
    def test_rejects_empty_fleet(self, small_network):
        with pytest.raises(ValueError):
            DGSNetwork(satellites=[], network=small_network)

    def test_rejects_empty_network(self, small_fleet):
        from repro.groundstations.network import GroundStationNetwork

        with pytest.raises(ValueError):
            DGSNetwork(satellites=small_fleet, network=GroundStationNetwork([]))


class TestGeometryQueries:
    def test_look_angles(self, api):
        topo = api.look_angles(api.satellites[0], api.network[0], EPOCH)
        assert -90.0 <= topo.elevation_deg <= 90.0
        assert 0.0 <= topo.azimuth_deg < 360.0
        assert topo.range_km > 200.0

    def test_predict_passes(self, api):
        windows = api.predict_passes(
            api.satellites[0], api.network[0], EPOCH, EPOCH + timedelta(days=1)
        )
        for w in windows:
            assert w.duration_seconds > 0
            assert w.max_elevation_deg > api.network[0].min_elevation_deg

    def test_visible_pairs_consistent_with_look_angles(self, api):
        pairs = api.visible_pairs(EPOCH)
        for sat_idx, gs_idx in pairs:
            topo = api.look_angles(
                api.satellites[sat_idx], api.network[gs_idx], EPOCH
            )
            assert topo.elevation_deg > api.network[gs_idx].min_elevation_deg

    def test_next_contact(self, api):
        found = api.next_contact(api.satellites[0], EPOCH, search_hours=24.0)
        assert found is not None
        station, window = found
        assert window.rise_time >= EPOCH - timedelta(minutes=1)


class TestLinkAndSchedule:
    def test_link_quality(self, api):
        result = api.link_quality(api.satellites[0], api.network[0], EPOCH)
        assert result.fspl_db > 100.0

    def test_schedule_returns_step(self, api):
        step = api.schedule(EPOCH)
        assert step.when == EPOCH
        assert step.num_edges >= len(step.assignments)

    def test_build_plan(self, api):
        plan = api.build_plan(EPOCH, horizon_s=1200.0)
        assert plan.horizon_s == 1200.0


class TestSimulate:
    def test_simulate_short_run(self, api):
        report = api.simulate(EPOCH, duration_s=1800.0)
        assert report.generated_bits > 0.0

    def test_simulate_with_config(self, api):
        config = SimulationConfig(start=EPOCH, duration_s=600.0, step_s=60.0)
        report = api.simulate(EPOCH, duration_s=600.0, config=config)
        assert len(report.matched_step_counts) == 10
