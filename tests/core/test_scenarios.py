"""Tests for paper scenario builders."""

import pytest

from repro.core.scenarios import (
    ScenarioSpec,
    build_paper_fleet,
    build_paper_weather,
    run_scenario,
    value_function_by_name,
)
from repro.scheduling.value_functions import LatencyValue, ThroughputValue


class TestFleetBuilder:
    def test_paper_defaults(self):
        fleet = build_paper_fleet(count=10)
        assert len(fleet) == 10
        for sat in fleet:
            assert sat.generation_gb_per_day == 100.0
            assert sat.radio.channels == 6

    def test_deterministic(self):
        a = build_paper_fleet(count=5, seed=3)
        b = build_paper_fleet(count=5, seed=3)
        assert [s.tle.to_lines() for s in a] == [s.tle.to_lines() for s in b]


class TestValueFunctionLookup:
    def test_names(self):
        assert isinstance(value_function_by_name("latency"), LatencyValue)
        assert isinstance(value_function_by_name("throughput"), ThroughputValue)

    def test_unknown(self):
        with pytest.raises(ValueError):
            value_function_by_name("vibes")


class TestScenarioAssembly:
    def test_dgs_scenario_shapes(self):
        fleet, network, sim = ScenarioSpec.dgs(
            num_satellites=6, num_stations=10, duration_s=600.0
        ).build()
        assert len(fleet) == 6
        assert len(network) == 10
        assert sim.config.matcher == "stable"

    def test_dgs25_fraction(self):
        _fleet, network, _sim = ScenarioSpec.dgs(
            station_fraction=0.25, num_satellites=4, num_stations=20,
            duration_s=600.0,
        ).build()
        assert len(network) == 5

    def test_baseline_scenario(self):
        fleet, network, sim = ScenarioSpec.baseline(
            num_satellites=4, duration_s=600.0
        ).build()
        assert len(network) == 5
        assert all(s.can_transmit for s in network)

    def test_run_scenario_labels(self):
        _f, _n, sim = ScenarioSpec.dgs(
            num_satellites=4, num_stations=8, duration_s=600.0
        ).build()
        result = run_scenario("test-run", sim)
        assert result.label == "test-run"
        assert result.num_satellites == 4
        assert result.report.generated_bits >= 0.0

    def test_weather_builder_deterministic(self):
        from datetime import datetime

        a = build_paper_weather(seed=3)
        b = build_paper_weather(seed=3)
        when = datetime(2020, 6, 1, 5)
        assert a.sample(47.0, 8.0, when) == b.sample(47.0, 8.0, when)
