"""The keyword-only API redesign keeps legacy call shapes working.

Positional ``Simulation(...)`` / ``DGSNetwork(...)`` calls and the
``make_*_scenario`` builders still function but warn; the new spellings
(`ScenarioSpec`, keyword arguments) are silent and produce the same
objects.
"""

import warnings
from datetime import datetime

import pytest

from repro.core.api import DGSNetwork
from repro.core.scenarios import (
    ScenarioSpec,
    build_paper_fleet,
    build_paper_weather,
    make_baseline_scenario,
    make_dgs_scenario,
)
from repro.groundstations.network import satnogs_like_network
from repro.scheduling.value_functions import LatencyValue
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulation

EPOCH = datetime(2020, 6, 1)


def small_world():
    fleet = build_paper_fleet(4, seed=7)
    network = satnogs_like_network(6, seed=11)
    config = SimulationConfig(start=EPOCH, duration_s=600.0)
    return fleet, network, config


class TestSimulationShim:
    def test_positional_args_warn_but_work(self):
        fleet, network, config = small_world()
        with pytest.warns(DeprecationWarning, match="positional"):
            sim = Simulation(fleet, network, LatencyValue(), config)
        assert sim.satellites is fleet
        assert sim.config is config

    def test_keyword_call_is_silent(self):
        fleet, network, config = small_world()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            Simulation(satellites=fleet, network=network,
                       value_function=LatencyValue(), config=config)

    def test_duplicate_argument_rejected(self):
        fleet, network, config = small_world()
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="multiple values"):
                Simulation(fleet, network, LatencyValue(), config,
                           satellites=fleet)

    def test_too_many_positionals_rejected(self):
        fleet, network, config = small_world()
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="at most"):
                Simulation(fleet, network, LatencyValue(), config, None, None)

    def test_missing_required_named_in_error(self):
        with pytest.raises(TypeError, match="satellites="):
            Simulation()


class TestDGSNetworkShim:
    def test_positional_args_warn_but_work(self):
        fleet, network, _config = small_world()
        with pytest.warns(DeprecationWarning, match="positional"):
            net = DGSNetwork(fleet, network)
        assert net.satellites is fleet

    def test_keyword_call_is_silent(self):
        fleet, network, _config = small_world()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            DGSNetwork(satellites=fleet, network=network)

    def test_missing_required_rejected(self):
        with pytest.raises(TypeError, match="satellites"):
            DGSNetwork()


class TestScenarioBuilderShims:
    def test_make_dgs_scenario_warns_and_matches_spec(self):
        with pytest.warns(DeprecationWarning, match="ScenarioSpec"):
            fleet, network, sim = make_dgs_scenario(
                num_satellites=4, num_stations=6, duration_s=600.0
            )
        scenario = ScenarioSpec.dgs(
            num_satellites=4, num_stations=6, duration_s=600.0
        ).build()
        assert len(fleet) == len(scenario.fleet)
        assert len(network) == len(scenario.network)
        assert sim.config == scenario.simulation.config

    def test_make_baseline_scenario_warns(self):
        with pytest.warns(DeprecationWarning, match="ScenarioSpec"):
            _fleet, network, _sim = make_baseline_scenario(
                num_satellites=4, duration_s=600.0
            )
        assert len(network) == 5

    def test_scenario_unpacks_like_the_legacy_tuple(self):
        scenario = ScenarioSpec.dgs(
            num_satellites=4, num_stations=6, duration_s=600.0
        ).build()
        fleet, network, sim = scenario
        assert fleet is scenario.fleet
        assert network is scenario.network
        assert sim is scenario.simulation


class TestScenarioSpec:
    def test_labels(self):
        assert ScenarioSpec.dgs().label() == "dgs-L"
        assert ScenarioSpec.dgs(station_fraction=0.25,
                                value="throughput").label() == "dgs25-T"
        assert ScenarioSpec.baseline().label() == "baseline-L"

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            ScenarioSpec(kind="orbital-cannon")

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError, match="station_fraction"):
            ScenarioSpec.dgs(station_fraction=0.0)

    def test_seeds_surface_for_manifest(self):
        spec = ScenarioSpec.dgs(fleet_seed=1, weather_seed=2, network_seed=3)
        assert spec.seeds() == {"fleet": 1, "weather": 2, "network": 3}

    def test_observability_seeds_autofilled(self):
        from repro.obs import ObsConfig

        spec = ScenarioSpec.dgs(num_satellites=4, num_stations=6,
                                duration_s=600.0,
                                observability=ObsConfig())
        scenario = spec.build()
        assert scenario.simulation.obs.config.seeds == spec.seeds()
