"""The keyword-only API redesign: the legacy constructors are gone.

The PR-3 deprecation shims (positional ``Simulation(...)`` /
``DGSNetwork(...)`` calls and the ``make_*_scenario`` builders) went
through their cycle and were removed: every legacy spelling now fails
with an actionable error naming the replacement, and the new spellings
(`ScenarioSpec`, keyword arguments) are the only way in.
"""

from datetime import datetime

import pytest

from repro.core.api import DGSNetwork
from repro.core.scenarios import (
    ScenarioSpec,
    build_paper_fleet,
)
from repro.groundstations.network import satnogs_like_network
from repro.scheduling.value_functions import LatencyValue
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulation

EPOCH = datetime(2020, 6, 1)


def small_world():
    fleet = build_paper_fleet(4, seed=7)
    network = satnogs_like_network(6, seed=11)
    config = SimulationConfig(start=EPOCH, duration_s=600.0)
    return fleet, network, config


class TestSimulationLegacyRemoval:
    def test_positional_args_rejected_with_hint(self):
        fleet, network, config = small_world()
        with pytest.raises(TypeError, match="satellites="):
            Simulation(fleet, network, LatencyValue(), config)

    def test_error_names_scenariospec_migration(self):
        fleet, network, config = small_world()
        with pytest.raises(TypeError, match="ScenarioSpec"):
            Simulation(fleet, network, LatencyValue(), config)

    def test_keyword_call_works(self):
        fleet, network, config = small_world()
        sim = Simulation(satellites=fleet, network=network,
                         value_function=LatencyValue(), config=config)
        assert sim.satellites is fleet
        assert sim.config is config

    def test_missing_required_named_in_error(self):
        with pytest.raises(TypeError, match="satellites="):
            Simulation()


class TestDGSNetworkLegacyRemoval:
    def test_positional_args_rejected_with_hint(self):
        fleet, network, _config = small_world()
        with pytest.raises(TypeError, match="satellites="):
            DGSNetwork(fleet, network)

    def test_keyword_call_works(self):
        fleet, network, _config = small_world()
        net = DGSNetwork(satellites=fleet, network=network)
        assert net.satellites is fleet

    def test_missing_required_rejected(self):
        with pytest.raises(TypeError, match="satellites"):
            DGSNetwork()


class TestScenarioBuilderRemoval:
    def test_make_dgs_scenario_gone_with_hint(self):
        import repro.core.scenarios as scenarios

        with pytest.raises(AttributeError, match=r"ScenarioSpec\.dgs"):
            scenarios.make_dgs_scenario

    def test_make_baseline_scenario_gone_with_hint(self):
        import repro.core.scenarios as scenarios

        with pytest.raises(AttributeError, match=r"ScenarioSpec\.baseline"):
            scenarios.make_baseline_scenario

    def test_import_fails(self):
        with pytest.raises(ImportError):
            from repro.core.scenarios import make_dgs_scenario  # noqa: F401

    def test_not_reexported_from_core(self):
        import repro.core as core

        assert not hasattr(core, "make_dgs_scenario")
        assert not hasattr(core, "make_baseline_scenario")

    def test_other_missing_attributes_still_plain(self):
        import repro.core.scenarios as scenarios

        with pytest.raises(AttributeError, match="no attribute"):
            scenarios.definitely_not_a_thing

    def test_scenario_unpacks_like_the_legacy_tuple(self):
        scenario = ScenarioSpec.dgs(
            num_satellites=4, num_stations=6, duration_s=600.0
        ).build()
        fleet, network, sim = scenario
        assert fleet is scenario.fleet
        assert network is scenario.network
        assert sim is scenario.simulation


class TestScenarioSpec:
    def test_labels(self):
        assert ScenarioSpec.dgs().label() == "dgs-L"
        assert ScenarioSpec.dgs(station_fraction=0.25,
                                value="throughput").label() == "dgs25-T"
        assert ScenarioSpec.baseline().label() == "baseline-L"

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            ScenarioSpec(kind="orbital-cannon")

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError, match="station_fraction"):
            ScenarioSpec.dgs(station_fraction=0.0)

    def test_seeds_surface_for_manifest(self):
        spec = ScenarioSpec.dgs(fleet_seed=1, weather_seed=2, network_seed=3)
        assert spec.seeds() == {"fleet": 1, "weather": 2, "network": 3}

    def test_observability_seeds_autofilled(self):
        from repro.obs import ObsConfig

        spec = ScenarioSpec.dgs(num_satellites=4, num_stations=6,
                                duration_s=600.0,
                                observability=ObsConfig())
        scenario = spec.build()
        assert scenario.simulation.obs.config.seeds == spec.seeds()
