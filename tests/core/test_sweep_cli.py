"""Tests for ``repro sweep``: arg validation, resume, and equivalence."""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.core.scenarios import ScenarioSpec


@pytest.fixture(scope="module")
def grid_file(tmp_path_factory) -> str:
    """A tiny 4-cell explicit grid (2 sats, 5 stations, 15 sim-minutes)."""
    cells = [
        {
            "label": f"cell{i}",
            "spec": ScenarioSpec.dgs(
                num_satellites=2, num_stations=5, duration_s=900.0,
                fleet_seed=7 + i,
            ).to_dict(),
        }
        for i in range(4)
    ]
    path = tmp_path_factory.mktemp("grid") / "grid.json"
    path.write_text(json.dumps(cells), encoding="utf-8")
    return str(path)


class TestBadArgs:
    def test_no_grid_exits_2(self, capsys):
        assert main(["sweep"]) == 2
        assert "exactly one of" in capsys.readouterr().err

    def test_both_grid_kinds_exit_2(self, grid_file, capsys):
        assert main(["sweep", "--grid", "fig3",
                     "--grid-file", grid_file]) == 2
        assert "exactly one of" in capsys.readouterr().err

    def test_unknown_grid_exits_2(self, capsys):
        assert main(["sweep", "--grid", "fig9"]) == 2
        assert "unknown grid" in capsys.readouterr().err

    def test_negative_workers_exit_2(self, capsys):
        assert main(["sweep", "--grid", "fig3", "--workers", "-1"]) == 2
        assert "--workers" in capsys.readouterr().err

    def test_missing_grid_file_exits_2(self, capsys):
        assert main(["sweep", "--grid-file", "/nope/grid.json"]) == 2
        assert "error" in capsys.readouterr().err

    def test_malformed_grid_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('[{"label": "x"}]', encoding="utf-8")
        assert main(["sweep", "--grid-file", str(path)]) == 2
        assert "spec" in capsys.readouterr().err

    def test_trace_without_dir_exits_2(self, grid_file, capsys):
        assert main(["sweep", "--grid-file", grid_file, "--trace"]) == 2
        assert "--trace" in capsys.readouterr().err

    def test_conflicting_resume_and_out_exit_2(self, grid_file, capsys):
        assert main(["sweep", "--grid-file", grid_file,
                     "--resume", "/a", "--out", "/b"]) == 2
        assert "--resume" in capsys.readouterr().err


class TestSweepRuns:
    @pytest.fixture(scope="class")
    def serial_dir(self, grid_file, tmp_path_factory) -> str:
        out = str(tmp_path_factory.mktemp("serial"))
        assert main(["sweep", "--grid-file", grid_file, "--out", out]) == 0
        return out

    def test_report_written(self, serial_dir, capsys):
        with open(os.path.join(serial_dir, "sweep_report.json"),
                  encoding="utf-8") as handle:
            merged = json.load(handle)
        assert merged["schema"] == "repro-sweep/1"
        assert merged["cell_count"] == 4

    def test_parallel_report_is_byte_identical(self, grid_file, serial_dir,
                                               tmp_path, capsys):
        out = str(tmp_path / "parallel")
        assert main(["sweep", "--grid-file", grid_file, "--out", out,
                     "--workers", "2"]) == 0
        stdout = capsys.readouterr().out
        assert "2 workers" in stdout
        with open(os.path.join(serial_dir, "sweep_report.json"), "rb") as a:
            with open(os.path.join(out, "sweep_report.json"), "rb") as b:
                assert a.read() == b.read()

    def test_resume_skips_completed_cells(self, grid_file, serial_dir,
                                          capsys):
        assert main(["sweep", "--grid-file", grid_file,
                     "--resume", serial_dir]) == 0
        stdout = capsys.readouterr().out
        assert "0 run, 4 resumed" in stdout

    def test_partial_resume_finishes_the_grid(self, grid_file, serial_dir,
                                              tmp_path, capsys):
        # A "killed" sweep: copy two of four checkpoints, then resume.
        partial = tmp_path / "partial"
        cells_dir = partial / "cells"
        cells_dir.mkdir(parents=True)
        survivors = sorted(
            os.listdir(os.path.join(serial_dir, "cells"))
        )[:2]
        for name in survivors:
            with open(os.path.join(serial_dir, "cells", name), "rb") as src:
                (cells_dir / name).write_bytes(src.read())
        assert main(["sweep", "--grid-file", grid_file,
                     "--resume", str(partial), "--workers", "2"]) == 0
        assert "2 run, 2 resumed" in capsys.readouterr().out
        with open(os.path.join(serial_dir, "sweep_report.json"), "rb") as a:
            with open(partial / "sweep_report.json", "rb") as b:
                assert a.read() == b.read()

    def test_labels_listed_in_output(self, grid_file, serial_dir, capsys):
        assert main(["sweep", "--grid-file", grid_file,
                     "--resume", serial_dir]) == 0
        stdout = capsys.readouterr().out
        for i in range(4):
            assert f"cell{i}" in stdout


class TestExperimentWorkersFlag:
    def test_workers_flag_accepted(self, capsys):
        assert main(["experiment", "fig3a", "--scale", "0.05",
                     "--hours", "0.5", "--workers", "2"]) == 0
        assert "Fig 3a" in capsys.readouterr().out

    def test_workers_noted_for_inprocess_experiments(self, capsys):
        assert main(["experiment", "storage", "--scale", "0.05",
                     "--hours", "0.5", "--workers", "2"]) == 0
        assert "--workers ignored" in capsys.readouterr().err
