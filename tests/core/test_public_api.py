"""Public API surface tests: every exported name exists and imports."""

import importlib
import types

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.orbits",
    "repro.linkbudget",
    "repro.weather",
    "repro.groundstations",
    "repro.satellites",
    "repro.demand",
    "repro.scheduling",
    "repro.network",
    "repro.simulation",
    "repro.service",
    "repro.satnogs",
    "repro.baseline",
    "repro.analysis",
    "repro.experiments",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    module = importlib.import_module(package_name)
    exported = getattr(module, "__all__", [])
    for name in exported:
        assert hasattr(module, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_module_docstrings(package_name):
    """Every package documents itself (deliverable: doc comments)."""
    module = importlib.import_module(package_name)
    assert module.__doc__, f"{package_name} has no module docstring"
    assert len(module.__doc__.strip()) > 40


def test_public_classes_have_docstrings():
    """Spot-check that major public classes carry real docstrings."""
    from repro import DGSNetwork
    from repro.linkbudget import LinkBudget, RadioConfig
    from repro.orbits import SGP4, TLE, PassPredictor
    from repro.satellites import OnboardStorage, Satellite
    from repro.scheduling import DownlinkScheduler
    from repro.simulation import Simulation

    for cls in (DGSNetwork, LinkBudget, RadioConfig, SGP4, TLE,
                PassPredictor, OnboardStorage, Satellite,
                DownlinkScheduler, Simulation):
        assert cls.__doc__ and len(cls.__doc__.strip()) > 20, cls


class TestCanonicalSurface:
    """``repro.__all__`` is the one public surface -- nothing else leaks."""

    CANONICAL = {
        "DGSNetwork",
        "DemandLayer",
        "DownlinkRequest",
        "ObsConfig",
        "OutageNotice",
        "PlanDelta",
        "QuotaUpdate",
        "Scenario",
        "ScenarioResult",
        "ScenarioSpec",
        "SchedulerService",
        "Simulation",
        "SimulationConfig",
        "SimulationReport",
        "SimulationSession",
        "SubmitRequest",
        "Tenant",
        "tenant_mix",
        "__version__",
    }

    def test_all_matches_canonical_set(self):
        import repro

        assert set(repro.__all__) == self.CANONICAL

    def test_nothing_else_leaks(self):
        """Every non-underscore, non-module attribute is in ``__all__``."""
        import repro

        leaked = {
            name for name, value in vars(repro).items()
            if not name.startswith("_")
            and not isinstance(value, types.ModuleType)
        } - set(repro.__all__)
        assert not leaked, f"undeclared names leak from repro: {sorted(leaked)}"

    def test_session_and_service_exports_are_the_real_ones(self):
        import repro
        from repro.service.daemon import SchedulerService
        from repro.simulation.session import SimulationSession

        assert repro.SimulationSession is SimulationSession
        assert repro.SchedulerService is SchedulerService


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"
