"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])


class TestPasses:
    def test_prints_windows(self, capsys):
        assert main(["passes", "--hours", "12"]) == 0
        out = capsys.readouterr().out
        assert "passes" in out
        assert "max el" in out


class TestSchedule:
    def test_prints_assignments(self, capsys):
        assert main(["schedule", "--satellites", "10",
                     "--stations", "15", "--minute", "30"]) == 0
        out = capsys.readouterr().out
        assert "feasible links" in out

    def test_matcher_flag(self, capsys):
        assert main(["schedule", "--satellites", "6", "--stations", "10",
                     "--matcher", "greedy"]) == 0
        assert "greedy matching" in capsys.readouterr().out


class TestSimulate:
    def test_dgs_run(self, capsys):
        assert main(["simulate", "--hours", "1", "--satellites", "6",
                     "--stations", "10"]) == 0
        out = capsys.readouterr().out
        assert "delivered:" in out
        assert "latency" in out

    def test_baseline_run(self, capsys):
        assert main(["simulate", "--system", "baseline", "--hours", "1",
                     "--satellites", "6"]) == 0
        assert "baseline" in capsys.readouterr().out


class TestDataset:
    def test_stdout_json(self, capsys):
        assert main(["dataset", "--stations", "10", "--satellites", "5",
                     "--days", "1"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["stations"]) == 10
        assert len(data["satellites"]) == 5

    def test_file_output(self, tmp_path, capsys):
        target = tmp_path / "dataset.json"
        assert main(["dataset", "--stations", "8", "--satellites", "4",
                     "--days", "1", "--output", str(target)]) == 0
        data = json.loads(target.read_text())
        assert len(data["stations"]) == 8

    def test_filter_flag(self, capsys):
        assert main(["dataset", "--stations", "30", "--satellites", "4",
                     "--days", "1", "--filter"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert all(s["status"] == "online" for s in data["stations"])
