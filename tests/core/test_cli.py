"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])


class TestPasses:
    def test_prints_windows(self, capsys):
        assert main(["passes", "--hours", "12"]) == 0
        out = capsys.readouterr().out
        assert "passes" in out
        assert "max el" in out


class TestSchedule:
    def test_prints_assignments(self, capsys):
        assert main(["schedule", "--satellites", "10",
                     "--stations", "15", "--minute", "30"]) == 0
        out = capsys.readouterr().out
        assert "feasible links" in out

    def test_matcher_flag(self, capsys):
        assert main(["schedule", "--satellites", "6", "--stations", "10",
                     "--matcher", "greedy"]) == 0
        assert "greedy matching" in capsys.readouterr().out


class TestSimulate:
    def test_dgs_run(self, capsys):
        assert main(["simulate", "--hours", "1", "--satellites", "6",
                     "--stations", "10"]) == 0
        out = capsys.readouterr().out
        assert "delivered:" in out
        assert "latency" in out

    def test_baseline_run(self, capsys):
        assert main(["simulate", "--system", "baseline", "--hours", "1",
                     "--satellites", "6"]) == 0
        assert "baseline" in capsys.readouterr().out

    def test_traced_run_artifacts(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        manifest = tmp_path / "manifest.json"
        report = tmp_path / "report.json"
        assert main(["simulate", "--hours", "0.5", "--satellites", "5",
                     "--stations", "8",
                     "--trace", str(trace),
                     "--manifest", str(manifest),
                     "--json-out", str(report)]) == 0
        assert "stage timings" in capsys.readouterr().out
        from repro.obs import validate_trace_file
        from repro.simulation.metrics import SimulationReport

        assert validate_trace_file(str(trace)) > 0
        assert json.loads(manifest.read_text())["schema"] == "repro-manifest/1"
        loaded = SimulationReport.from_json(report.read_text())
        assert loaded.stage_timings


class TestValidateTrace:
    def test_valid_trace_ok(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(["simulate", "--hours", "0.25", "--satellites", "4",
                     "--stations", "6", "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["validate-trace", str(trace)]) == 0
        assert "schema ok" in capsys.readouterr().out

    def test_invalid_trace_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "mystery"}\n')
        assert main(["validate-trace", str(bad)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro validate-trace: error:")
        assert err.count("\n") == 1


class TestErrorReporting:
    def test_missing_trace_file(self, capsys):
        assert main(["validate-trace", "/no/such/trace.jsonl"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_tle_file(self, capsys):
        assert main(["passes", "--tle-file", "/no/such/elements.tle"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unwritable_dataset_output(self, capsys):
        assert main(["dataset", "--stations", "3", "--satellites", "3",
                     "--days", "1",
                     "--output", "/no/such/dir/out.json"]) == 2
        assert "error:" in capsys.readouterr().err


class TestPassesTleFile:
    def test_passes_from_file(self, tmp_path, capsys):
        from datetime import datetime

        from repro.orbits.catalog import TLECatalog
        from repro.orbits.constellation import synthetic_leo_constellation

        catalog = TLECatalog()
        catalog.extend(
            synthetic_leo_constellation(2, datetime(2020, 6, 1), seed=7)
        )
        path = tmp_path / "fleet.tle"
        path.write_text(catalog.to_3le())
        assert main(["passes", "--tle-file", str(path),
                     "--satellites", "2", "--hours", "6"]) == 0
        assert "passes" in capsys.readouterr().out


class TestDataset:
    def test_stdout_json(self, capsys):
        assert main(["dataset", "--stations", "10", "--satellites", "5",
                     "--days", "1"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["stations"]) == 10
        assert len(data["satellites"]) == 5

    def test_file_output(self, tmp_path, capsys):
        target = tmp_path / "dataset.json"
        assert main(["dataset", "--stations", "8", "--satellites", "4",
                     "--days", "1", "--output", str(target)]) == 0
        data = json.loads(target.read_text())
        assert len(data["stations"]) == 8

    def test_filter_flag(self, capsys):
        assert main(["dataset", "--stations", "30", "--satellites", "4",
                     "--days", "1", "--filter"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert all(s["status"] == "online" for s in data["stations"])


class TestSweepGridFileErrors:
    """Bad --grid-file inputs keep the one-line-stderr + exit-2 contract."""

    def run_sweep(self, path, capsys):
        code = main(["sweep", "--grid-file", str(path), "--workers", "1"])
        err = capsys.readouterr().err
        return code, err

    def assert_one_line_error(self, code, err):
        assert code == 2
        assert err.startswith("repro sweep: error:")
        assert err.count("\n") == 1, f"stderr not one line: {err!r}"

    def test_missing_file(self, capsys):
        code, err = self.run_sweep("/no/such/grid.json", capsys)
        self.assert_one_line_error(code, err)
        assert "cannot read grid file" in err

    def test_invalid_json(self, tmp_path, capsys):
        path = tmp_path / "grid.json"
        path.write_text("{not json at all")
        code, err = self.run_sweep(path, capsys)
        self.assert_one_line_error(code, err)
        assert "not valid JSON" in err

    def test_not_a_list(self, tmp_path, capsys):
        path = tmp_path / "grid.json"
        path.write_text('{"label": "x"}')
        code, err = self.run_sweep(path, capsys)
        self.assert_one_line_error(code, err)
        assert "non-empty JSON list" in err

    def test_entry_without_spec(self, tmp_path, capsys):
        path = tmp_path / "grid.json"
        path.write_text('[{"label": "x"}]')
        code, err = self.run_sweep(path, capsys)
        self.assert_one_line_error(code, err)
        assert "grid entry 0" in err

    def test_mistyped_spec_field(self, tmp_path, capsys):
        path = tmp_path / "grid.json"
        path.write_text(json.dumps(
            [{"label": "bad", "spec": {"kind": "dgs",
                                       "station_fraction": "lots"}}]
        ))
        code, err = self.run_sweep(path, capsys)
        self.assert_one_line_error(code, err)
        assert "grid entry 0" in err

    def test_unknown_spec_field(self, tmp_path, capsys):
        path = tmp_path / "grid.json"
        path.write_text(json.dumps(
            [{"label": "bad", "spec": {"kind": "dgs", "warp_drive": 9}}]
        ))
        code, err = self.run_sweep(path, capsys)
        self.assert_one_line_error(code, err)

    def test_grid_and_grid_file_mutually_exclusive(self, capsys):
        code = main(["sweep", "--grid", "fig3", "--grid-file", "x.json"])
        err = capsys.readouterr().err
        self.assert_one_line_error(code, err)
        assert "exactly one" in err


class TestServe:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 0
        assert args.host == "127.0.0.1"
        assert args.pace == 0.0
        assert args.tenants is None

    def test_serve_smoke_over_http(self, tmp_path):
        """Boot `repro serve` as a subprocess, hit it, shut it down."""
        import http.client
        import os
        import pathlib
        import subprocess
        import sys as _sys

        import repro

        env = dict(os.environ)
        env["PYTHONPATH"] = str(pathlib.Path(repro.__file__).parents[1])
        report_path = tmp_path / "report.json"
        proc = subprocess.Popen(
            [_sys.executable, "-m", "repro.cli", "serve",
             "--satellites", "3", "--stations", "5", "--hours", "0.5",
             "--pace", "0.02", "--tenants", "balanced",
             "--value", "deadline", "--json-out", str(report_path)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True,
        )
        try:
            banner = proc.stderr.readline()
            assert banner.startswith("repro serve: http://")
            port = int(banner.split("http://127.0.0.1:")[1].split(" ")[0])
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
            try:
                conn.request("GET", "/healthz")
                health = json.loads(conn.getresponse().read())
                assert health["status"] == "ok"
                conn.request("POST", "/shutdown", body="{}")
                shut = json.loads(conn.getresponse().read())
                assert "report" in shut
            finally:
                conn.close()
            out, _err = proc.communicate(timeout=60)
        finally:
            proc.kill()
        assert proc.returncode == 0
        assert out.startswith("served ")
        report = json.loads(report_path.read_text())
        assert report["delivered_bits"] >= 0.0


class TestWindowIndexFlag:
    def test_parsed_on_simulate_and_serve(self):
        parser = build_parser()
        assert parser.parse_args(["simulate"]).no_window_index is False
        assert parser.parse_args(
            ["simulate", "--no-window-index"]
        ).no_window_index is True
        assert parser.parse_args(
            ["serve", "--no-window-index"]
        ).no_window_index is True

    def test_reports_identical_with_and_without_index(self, tmp_path, capsys):
        reports = {}
        for name, flags in (("on", []), ("off", ["--no-window-index"])):
            out = tmp_path / f"{name}.json"
            assert main(["simulate", "--hours", "1", "--satellites", "6",
                         "--stations", "10", "--json-out", str(out)]
                        + flags) == 0
            capsys.readouterr()
            reports[name] = json.loads(out.read_text())
            reports[name].pop("stage_timings", None)
        assert reports["on"] == reports["off"]

    def test_operational_error_one_line_exit_2(self, capsys):
        """The flag composes with the CLI's operational-error contract."""
        assert main(["simulate", "--hours", "0.5", "--satellites", "3",
                     "--stations", "5", "--no-window-index",
                     "--json-out", "/no/such/dir/report.json"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert len(err.strip().splitlines()) == 1
