"""Tests for data chunks and their downlink lifecycle."""

from datetime import datetime, timedelta

import pytest

from repro.satellites.data import ChunkState, DataChunk

EPOCH = datetime(2020, 6, 1)


def make_chunk(size_bits=8e9):
    return DataChunk(satellite_id="sat-1", size_bits=size_bits, capture_time=EPOCH)


class TestLifecycle:
    def test_initial_state(self):
        chunk = make_chunk()
        assert chunk.state is ChunkState.ONBOARD
        assert chunk.remaining_bits == chunk.size_bits
        assert chunk.sent_bits == 0.0
        assert chunk.latency_seconds() is None

    def test_partial_transmit(self):
        chunk = make_chunk(1000.0)
        sent = chunk.transmit(400.0, EPOCH + timedelta(minutes=1))
        assert sent == 400.0
        assert chunk.remaining_bits == 600.0
        assert chunk.state is ChunkState.ONBOARD

    def test_complete_transmit_records_delivery(self):
        chunk = make_chunk(1000.0)
        when = EPOCH + timedelta(minutes=30)
        sent = chunk.transmit(5000.0, when)
        assert sent == 1000.0
        assert chunk.state is ChunkState.DELIVERED
        assert chunk.delivery_time == when
        assert chunk.latency_seconds() == pytest.approx(1800.0)

    def test_transmit_after_delivery_is_noop(self):
        chunk = make_chunk(100.0)
        chunk.transmit(100.0, EPOCH)
        assert chunk.transmit(50.0, EPOCH) == 0.0

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            make_chunk().transmit(-1.0, EPOCH)

    def test_acknowledge(self):
        chunk = make_chunk(100.0)
        chunk.transmit(100.0, EPOCH)
        ack_at = EPOCH + timedelta(hours=2)
        chunk.acknowledge(ack_at)
        assert chunk.state is ChunkState.ACKED
        assert chunk.ack_time == ack_at

    def test_cannot_ack_onboard_chunk(self):
        with pytest.raises(ValueError):
            make_chunk().acknowledge(EPOCH)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            DataChunk(satellite_id="s", size_bits=0.0, capture_time=EPOCH)

    def test_unique_ids(self):
        ids = {make_chunk().chunk_id for _ in range(100)}
        assert len(ids) == 100


class TestLostTransmission:
    def test_undecoded_flagged(self):
        chunk = make_chunk(100.0)
        chunk.transmit(100.0, EPOCH, decoded=False)
        assert chunk.state is ChunkState.DELIVERED  # satellite's view
        assert not chunk.ground_received  # the truth

    def test_requeue_resets_for_retransmission(self):
        chunk = make_chunk(100.0)
        chunk.transmit(100.0, EPOCH, decoded=False)
        chunk.requeue()
        assert chunk.state is ChunkState.ONBOARD
        assert chunk.remaining_bits == 100.0
        assert chunk.ground_received
        assert chunk.retransmissions == 1
        # Second time around it succeeds.
        chunk.transmit(100.0, EPOCH + timedelta(hours=1))
        assert chunk.ground_received

    def test_cannot_requeue_onboard(self):
        with pytest.raises(ValueError):
            make_chunk().requeue()


class TestChunkIdAllocator:
    def test_sequential_from_start(self):
        from repro.satellites.data import ChunkIdAllocator

        allocator = ChunkIdAllocator(start=5)
        assert [allocator.next_id() for _ in range(3)] == [5, 6, 7]

    def test_defaults_to_zero(self):
        from repro.satellites.data import ChunkIdAllocator

        assert ChunkIdAllocator().next_id() == 0

    def test_negative_start_rejected(self):
        from repro.satellites.data import ChunkIdAllocator

        with pytest.raises(ValueError):
            ChunkIdAllocator(start=-1)

    def test_independent_allocators_restart_numbering(self):
        """Regression: ids used to come from a module-global counter, so
        two in-process simulations of the same scenario numbered their
        chunks differently and their reports diverged."""
        from repro.satellites.data import ChunkIdAllocator

        first = ChunkIdAllocator()
        first.next_id()
        first.next_id()
        second = ChunkIdAllocator()
        assert second.next_id() == 0
