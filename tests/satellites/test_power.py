"""Tests for the spacecraft power model."""

import pytest
from hypothesis import given, strategies as st

from repro.satellites.power import PowerModel


class TestEnergyBalance:
    def test_starts_full(self):
        power = PowerModel(battery_capacity_wh=40.0)
        assert power.state_of_charge == 1.0
        assert power.can_transmit()

    def test_idle_in_sunlight_stays_charged(self):
        power = PowerModel()
        power.step(3600.0, sunlit=True, transmitting=False)
        assert power.state_of_charge == 1.0  # clamped at capacity

    def test_transmitting_in_eclipse_drains(self):
        power = PowerModel()
        before = power.energy_wh
        power.step(3600.0, sunlit=False, transmitting=True)
        # idle 3 W + tx 25 W for 1 h = 28 Wh drained.
        assert power.energy_wh == pytest.approx(before - 28.0)

    def test_charging_nets_out_loads(self):
        power = PowerModel(energy_wh=10.0)
        power.step(3600.0, sunlit=True, transmitting=True)
        # +20 generation, -28 loads -> net -8 Wh.
        assert power.energy_wh == pytest.approx(2.0)

    def test_clamps_at_zero(self):
        power = PowerModel(energy_wh=1.0)
        power.step(7200.0, sunlit=False, transmitting=True)
        assert power.energy_wh == 0.0

    def test_transmit_gate(self):
        power = PowerModel(battery_capacity_wh=40.0, energy_wh=7.0,
                           min_transmit_soc=0.2)
        assert not power.can_transmit()
        power.step(3600.0, sunlit=True, transmitting=False)  # +17 Wh net
        assert power.can_transmit()

    @given(
        duration=st.floats(min_value=0.0, max_value=86400.0),
        sunlit=st.booleans(),
        transmitting=st.booleans(),
    )
    def test_energy_stays_in_bounds(self, duration, sunlit, transmitting):
        power = PowerModel(energy_wh=20.0)
        power.step(duration, sunlit, transmitting)
        assert 0.0 <= power.energy_wh <= power.battery_capacity_wh

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PowerModel(panel_watts=-1.0)
        with pytest.raises(ValueError):
            PowerModel(min_transmit_soc=1.0)
        with pytest.raises(ValueError):
            PowerModel().step(-1.0, True, False)


class TestSustainableDuty:
    def test_reference_point(self):
        power = PowerModel()  # 20 W panels, 3 W idle, 25 W tx
        duty = power.sustainable_transmit_duty(0.63)
        assert duty == pytest.approx((20.0 * 0.63 - 3.0) / 25.0)

    def test_dark_orbit_zero_duty(self):
        assert PowerModel().sustainable_transmit_duty(0.0) == 0.0

    def test_clamped_at_one(self):
        generous = PowerModel(panel_watts=1000.0)
        assert generous.sustainable_transmit_duty(1.0) == 1.0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            PowerModel().sustainable_transmit_duty(1.5)

    def test_free_transmitter_with_surplus(self):
        power = PowerModel(transmit_load_watts=0.0)
        assert power.sustainable_transmit_duty(1.0) == 1.0

    def test_free_transmitter_cannot_outrun_idle_drain(self):
        """Regression: a zero-watt transmitter used to report full duty
        even when the idle load alone drained the battery."""
        power = PowerModel(transmit_load_watts=0.0, panel_watts=2.0,
                           idle_load_watts=3.0)
        assert power.sustainable_transmit_duty(1.0) == 0.0
        assert power.sustainable_transmit_duty(0.0) == 0.0


class TestEngineIntegration:
    def test_power_gated_simulation(self, small_tles):
        """Satellites with drained batteries transmit nothing."""
        from datetime import datetime

        from repro.groundstations.network import satnogs_like_network
        from repro.satellites.satellite import Satellite
        from repro.scheduling.value_functions import LatencyValue
        from repro.simulation.config import SimulationConfig
        from repro.simulation.engine import Simulation

        epoch = datetime(2020, 6, 1)
        sats = [
            Satellite(
                tle=t,
                chunk_size_gb=0.5,
                power=PowerModel(energy_wh=0.0, panel_watts=0.0),
            )
            for t in small_tles[:4]
        ]
        network = satnogs_like_network(15, seed=13)
        config = SimulationConfig(start=epoch, duration_s=2 * 3600.0)
        sim = Simulation(satellites=sats, network=network, value_function=LatencyValue(), config=config)
        report = sim.run()
        assert report.delivered_bits == 0.0

    def test_healthy_power_allows_transmission(self, small_tles):
        from datetime import datetime

        from repro.groundstations.network import satnogs_like_network
        from repro.satellites.satellite import Satellite
        from repro.scheduling.value_functions import LatencyValue
        from repro.simulation.config import SimulationConfig
        from repro.simulation.engine import Simulation

        epoch = datetime(2020, 6, 1)
        sats = [
            Satellite(tle=t, chunk_size_gb=0.5, power=PowerModel())
            for t in small_tles
        ]
        network = satnogs_like_network(15, seed=13)
        config = SimulationConfig(start=epoch, duration_s=4 * 3600.0)
        sim = Simulation(satellites=sats, network=network, value_function=LatencyValue(), config=config)
        report = sim.run()
        assert report.delivered_bits > 0.0
        # Batteries were actually integrated.
        assert any(s.power.energy_wh < s.power.battery_capacity_wh
                   or s.power.state_of_charge == 1.0 for s in sats)
