"""Tests for the onboard storage priority queue and ack bookkeeping."""

from datetime import datetime, timedelta

import pytest
from hypothesis import given, strategies as st

from repro.satellites.data import ChunkState, DataChunk
from repro.satellites.storage import OnboardStorage, highest_priority_first

EPOCH = datetime(2020, 6, 1)


def chunk_at(minutes, size=1000.0, priority=0.0):
    return DataChunk(
        satellite_id="sat",
        size_bits=size,
        capture_time=EPOCH + timedelta(minutes=minutes),
        priority=priority,
    )


class TestQueueOrder:
    def test_oldest_first_default(self):
        storage = OnboardStorage()
        storage.capture(chunk_at(30))
        storage.capture(chunk_at(10))
        storage.capture(chunk_at(20))
        head = storage.peek_sendable()
        assert head.capture_time == EPOCH + timedelta(minutes=10)

    def test_priority_ordering(self):
        storage = OnboardStorage(queue_key=highest_priority_first)
        storage.capture(chunk_at(10, priority=0.0))
        storage.capture(chunk_at(30, priority=5.0))
        assert storage.peek_sendable().priority == 5.0

    def test_empty_peek(self):
        assert OnboardStorage().peek_sendable() is None


class TestTransmit:
    def test_drains_in_order(self):
        storage = OnboardStorage()
        first, second = chunk_at(0, 1000.0), chunk_at(5, 1000.0)
        storage.capture(second)
        storage.capture(first)
        sent, completed = storage.transmit(1500.0, EPOCH + timedelta(hours=1))
        assert sent == 1500.0
        assert completed == [first]
        assert second.remaining_bits == 500.0

    def test_partial_then_finish(self):
        storage = OnboardStorage()
        storage.capture(chunk_at(0, 1000.0))
        storage.transmit(600.0, EPOCH)
        sent, completed = storage.transmit(600.0, EPOCH)
        assert sent == 400.0
        assert len(completed) == 1

    def test_zero_budget(self):
        storage = OnboardStorage()
        storage.capture(chunk_at(0))
        sent, completed = storage.transmit(0.0, EPOCH)
        assert sent == 0.0
        assert completed == []

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            OnboardStorage().transmit(-1.0, EPOCH)

    @given(
        sizes=st.lists(st.floats(min_value=1.0, max_value=5000.0),
                       min_size=1, max_size=20),
        budget=st.floats(min_value=0.0, max_value=100000.0),
    )
    def test_conservation(self, sizes, budget):
        storage = OnboardStorage()
        for i, size in enumerate(sizes):
            storage.capture(chunk_at(i, size))
        total_before = storage.backlog_bits
        sent, _ = storage.transmit(budget, EPOCH + timedelta(hours=1))
        assert sent <= budget + 1e-6
        assert storage.backlog_bits + sent == pytest.approx(total_before)


class TestAcks:
    def test_acknowledge_frees_chunks(self):
        storage = OnboardStorage()
        c = chunk_at(0, 100.0)
        storage.capture(c)
        storage.transmit(100.0, EPOCH)
        assert storage.unacked_bits == 100.0
        freed = storage.acknowledge([c.chunk_id], EPOCH + timedelta(hours=1))
        assert freed == 1
        assert storage.unacked_bits == 0.0
        assert c.state is ChunkState.ACKED

    def test_unknown_ids_ignored(self):
        storage = OnboardStorage()
        c = chunk_at(0, 100.0)
        storage.capture(c)
        storage.transmit(100.0, EPOCH)
        assert storage.acknowledge([999999], EPOCH) == 0
        assert storage.unacked_bits == 100.0

    def test_requeue_stale_unacked(self):
        storage = OnboardStorage()
        old, recent = chunk_at(0, 100.0), chunk_at(0, 100.0)
        storage.capture(old)
        storage.transmit(100.0, EPOCH + timedelta(hours=1), decoded=False)
        storage.capture(recent)
        storage.transmit(100.0, EPOCH + timedelta(hours=5))
        requeued = storage.requeue_stale_unacked(
            sent_before=EPOCH + timedelta(hours=3)
        )
        assert requeued == [old]
        assert storage.backlog_bits == 100.0  # old is back in the queue
        assert storage.unacked_bits == 100.0  # recent still awaiting ack

    def test_requeue_boundary_is_inclusive(self):
        """A chunk whose ack deadline lands exactly on the contact instant
        requeues at that contact instead of waiting out an extra pass."""
        storage = OnboardStorage()
        boundary = chunk_at(0, 100.0)
        storage.capture(boundary)
        delivered_at = EPOCH + timedelta(hours=1)
        storage.transmit(100.0, delivered_at, decoded=False)
        # Contact happens exactly ack_timeout after delivery: cutoff ==
        # delivery_time.  The inclusive boundary requeues it now.
        requeued = storage.requeue_stale_unacked(sent_before=delivered_at)
        assert requeued == [boundary]
        assert storage.unacked_bits == 0.0
        assert storage.backlog_bits == 100.0
        # One microsecond younger: still within the ack window.
        survivor = chunk_at(0, 100.0)
        storage.capture(survivor)
        storage.transmit(
            100.0, delivered_at + timedelta(microseconds=1), decoded=False
        )
        assert storage.requeue_stale_unacked(sent_before=delivered_at) == []
        assert storage.unacked_bits == 100.0


class TestAccounting:
    def test_true_backlog_counts_lost_chunks(self):
        storage = OnboardStorage()
        lost = chunk_at(0, 100.0)
        storage.capture(lost)
        storage.transmit(100.0, EPOCH, decoded=False)
        assert storage.backlog_bits == 0.0  # satellite thinks it's sent
        assert storage.true_backlog_bits == 100.0  # ground never got it

    def test_stored_bits_includes_unacked(self):
        storage = OnboardStorage()
        storage.capture(chunk_at(0, 100.0))
        storage.capture(chunk_at(1, 200.0))
        storage.transmit(100.0, EPOCH)
        assert storage.stored_bits == pytest.approx(300.0)

    def test_capacity_eviction(self):
        storage = OnboardStorage(capacity_bits=250.0)
        storage.capture(chunk_at(0, 100.0))
        storage.capture(chunk_at(1, 100.0))
        storage.capture(chunk_at(2, 100.0))
        assert storage.stored_bits <= 250.0
        assert storage.dropped_bits == 100.0
        # The oldest chunk was the victim.
        assert storage.peek_sendable().capture_time == EPOCH + timedelta(minutes=1)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            OnboardStorage(capacity_bits=0.0)


class TestPrefixAgeValue:
    def test_zero_budget_zero_value(self):
        storage = OnboardStorage()
        storage.capture(chunk_at(0))
        assert storage.prefix_age_value(0.0, EPOCH + timedelta(hours=1)) == 0.0

    def test_value_scales_with_budget(self):
        storage = OnboardStorage()
        for minute in (0, 10, 20):
            storage.capture(chunk_at(minute, 1000.0))
        now = EPOCH + timedelta(hours=2)
        small = storage.prefix_age_value(1000.0, now)
        large = storage.prefix_age_value(3000.0, now)
        assert large > small

    def test_older_queue_more_valuable(self):
        fresh, stale = OnboardStorage(), OnboardStorage()
        fresh.capture(chunk_at(110, 1000.0))
        stale.capture(chunk_at(0, 1000.0))
        now = EPOCH + timedelta(hours=2)
        assert stale.prefix_age_value(1000.0, now) > fresh.prefix_age_value(1000.0, now)

    def test_prefix_is_oldest_data(self):
        storage = OnboardStorage()
        storage.capture(chunk_at(0, 1000.0))
        storage.capture(chunk_at(60, 1000.0))
        now = EPOCH + timedelta(hours=2)
        # Budget for exactly one chunk: the value should be the older age.
        value = storage.prefix_age_value(1000.0, now)
        assert value == pytest.approx(7200.0)
