"""Tests for the Satellite model: generation, orbit binding, plan state."""

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.satellites.satellite import GB_TO_BITS, Satellite

EPOCH = datetime(2020, 6, 1)


@pytest.fixture()
def satellite(small_tles):
    return Satellite(tle=small_tles[0], generation_gb_per_day=100.0,
                     chunk_size_gb=1.0)


class TestGeneration:
    def test_daily_volume(self, satellite):
        chunks = satellite.generate_data(EPOCH, 86400.0)
        total_gb = sum(c.size_bits for c in chunks) / GB_TO_BITS
        assert total_gb == pytest.approx(100.0, abs=1.0)

    def test_capture_times_inside_interval(self, satellite):
        chunks = satellite.generate_data(EPOCH, 3600.0)
        for chunk in chunks:
            assert EPOCH < chunk.capture_time <= EPOCH + timedelta(seconds=3600)

    def test_capture_times_monotonic(self, satellite):
        chunks = satellite.generate_data(EPOCH, 7200.0)
        times = [c.capture_time for c in chunks]
        assert times == sorted(times)

    def test_fractional_accumulation_across_calls(self, satellite):
        # 100 GB/day = 1 chunk every 864 s; 500 s steps emit nothing,
        # then one chunk once the accumulator crosses 1 GB.
        first = satellite.generate_data(EPOCH, 500.0)
        second = satellite.generate_data(EPOCH + timedelta(seconds=500), 500.0)
        assert len(first) == 0
        assert len(second) == 1

    def test_long_run_conservation(self, satellite):
        total_chunks = 0
        now = EPOCH
        for _ in range(100):
            total_chunks += len(satellite.generate_data(now, 864.0))
            now += timedelta(seconds=864.0)
        assert total_chunks == pytest.approx(100, abs=1)

    def test_zero_rate(self, small_tles):
        idle = Satellite(tle=small_tles[0], generation_gb_per_day=0.0)
        assert idle.generate_data(EPOCH, 86400.0) == []

    def test_invalid_parameters(self, small_tles):
        with pytest.raises(ValueError):
            Satellite(tle=small_tles[0], generation_gb_per_day=-1.0)
        with pytest.raises(ValueError):
            Satellite(tle=small_tles[0], chunk_size_gb=0.0)

    def test_negative_duration_rejected(self, satellite):
        with pytest.raises(ValueError):
            satellite.generate_data(EPOCH, -1.0)


class TestOrbitBinding:
    def test_position_is_leo(self, satellite):
        pos, vel = satellite.position_teme(EPOCH + timedelta(hours=3))
        radius = float(np.linalg.norm(pos))
        assert 6378.0 + 200.0 < radius < 6378.0 + 1000.0
        assert 6.5 < float(np.linalg.norm(vel)) < 8.0

    def test_satellite_id_from_name(self, satellite):
        assert satellite.satellite_id == satellite.tle.name


class TestPlanState:
    def test_no_plan_initially(self, satellite):
        assert not satellite.has_current_plan(EPOCH, max_age_s=3600.0)

    def test_plan_freshness(self, satellite):
        satellite.receive_plan(EPOCH)
        assert satellite.has_current_plan(EPOCH + timedelta(minutes=30), 3600.0)
        assert not satellite.has_current_plan(EPOCH + timedelta(hours=2), 3600.0)


class TestMetrics:
    def test_backlog_gb(self, satellite):
        satellite.generate_data(EPOCH, 8640.0)  # 10 GB
        assert satellite.backlog_gb == pytest.approx(10.0, abs=0.5)
        assert satellite.unacked_gb == 0.0
