"""Property-based tests over randomized small simulation worlds.

Hypothesis drives world construction (fleet size, network size, seeds,
durations, knobs); the invariants must hold for every world:

* conservation: generated == delivered + true backlog;
* latency non-negativity and ordering;
* per-station byte accounting sums to the total;
* satellite-side chunk state machines end in consistent states.
"""

from datetime import datetime

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.groundstations.network import satnogs_like_network
from repro.orbits.constellation import synthetic_leo_constellation
from repro.satellites.data import ChunkState
from repro.satellites.satellite import GB_TO_BITS, Satellite
from repro.scheduling.value_functions import LatencyValue, ThroughputValue
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulation

EPOCH = datetime(2020, 6, 1)

worlds = st.fixed_dictionaries(
    {
        "num_sats": st.integers(min_value=1, max_value=6),
        "num_stations": st.integers(min_value=2, max_value=10),
        "fleet_seed": st.integers(min_value=0, max_value=50),
        "network_seed": st.integers(min_value=0, max_value=50),
        "hours": st.sampled_from([1.0, 2.0]),
        "value": st.sampled_from(["latency", "throughput"]),
        "enforce_plans": st.booleans(),
    }
)


def build_and_run(params):
    tles = synthetic_leo_constellation(
        params["num_sats"], EPOCH, seed=params["fleet_seed"]
    )
    sats = [Satellite(tle=t, chunk_size_gb=0.5) for t in tles]
    network = satnogs_like_network(
        params["num_stations"], seed=params["network_seed"]
    )
    value = (LatencyValue() if params["value"] == "latency"
             else ThroughputValue())
    config = SimulationConfig(
        start=EPOCH,
        duration_s=params["hours"] * 3600.0,
        step_s=120.0,
        enforce_plan_distribution=params["enforce_plans"],
        snapshot_every_steps=0,
    )
    sim = Simulation(satellites=sats, network=network, value_function=value, config=config)
    return sim, sim.run()


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(params=worlds)
def test_simulation_invariants(params):
    sim, report = build_and_run(params)

    # Conservation of data.
    backlog_bits = sum(report.final_backlog_gb.values()) * GB_TO_BITS
    assert report.delivered_bits + backlog_bits == pytest.approx(
        report.generated_bits, rel=1e-9, abs=1.0
    )

    # Latency sanity.
    latencies = report.all_latencies_s()
    assert (latencies >= 0.0).all() if latencies.size else True
    if latencies.size:
        assert latencies.max() <= params["hours"] * 3600.0 + 1.0

    # Station accounting.
    assert sum(report.station_bits.values()) == pytest.approx(
        report.delivered_bits
    )

    # Chunk state machines.
    for sat in sim.satellites:
        for chunk in sat.storage.onboard_chunks:
            assert chunk.state is ChunkState.ONBOARD
            assert chunk.remaining_bits > 0.0
        for chunk in sat.storage.delivered_unacked_chunks:
            assert chunk.state is ChunkState.DELIVERED
            assert chunk.delivery_time is not None
        for chunk in sat.storage.acked_chunks:
            assert chunk.state is ChunkState.ACKED
            assert chunk.ground_received
            assert chunk.ack_time is not None
            assert chunk.ack_time >= chunk.delivery_time

    # Backend consistency: every ack the backend issued is on a satellite.
    for sat in sim.satellites:
        assert sim.backend.acked_count(sat.satellite_id) == len(
            sat.storage.acked_chunks
        )
