"""Integration tests for user-facing workflows beyond the core data flow."""

import json
from datetime import datetime, timedelta

import pytest

from repro.satnogs.dataset import generate_geometric_dataset

EPOCH = datetime(2020, 6, 1)


class TestRealDataWorkflow:
    """The drop-in-real-data path: dataset -> loader -> network -> simulate."""

    def test_dataset_to_simulation(self):
        dataset = generate_geometric_dataset(
            num_stations=6, num_satellites=3, start=EPOCH, hours=6.0, seed=5,
        )
        # Round-trip the dataset through the API-compatible JSON surface:
        # dataset records -> API-shaped payloads -> loader -> network.
        stations_payload = json.dumps([
            {
                "id": s.station_id, "name": s.name, "lat": s.latitude_deg,
                "lng": s.longitude_deg, "altitude": s.altitude_m,
                "status": s.status, "observations": s.observation_count,
                "antenna": [{"band": band} for band in s.bands],
            }
            for s in dataset.stations
        ])
        from repro.satnogs.loader import load_stations_api, stations_to_network

        records = load_stations_api(stations_payload)
        network = stations_to_network(records, tx_capable_fraction=0.2)
        assert len(network) == 6

        from repro.satellites.satellite import Satellite
        from repro.scheduling.value_functions import LatencyValue
        from repro.simulation.config import SimulationConfig
        from repro.simulation.engine import Simulation

        satellites = [
            Satellite(tle=record.tle(), chunk_size_gb=0.5)
            for record in dataset.satellites
        ]
        config = SimulationConfig(start=EPOCH, duration_s=4 * 3600.0)
        sim = Simulation(satellites=satellites, network=network, value_function=LatencyValue(), config=config)
        report = sim.run()
        assert report.generated_bits > 0.0


class TestHorizonSchedulerEndToEnd:
    def test_horizon_simulation_conserves_data(self):
        from repro.groundstations.network import satnogs_like_network
        from repro.orbits.constellation import synthetic_leo_constellation
        from repro.satellites.satellite import GB_TO_BITS, Satellite
        from repro.scheduling.horizon import HorizonScheduler
        from repro.scheduling.value_functions import LatencyValue
        from repro.simulation.config import SimulationConfig
        from repro.simulation.engine import Simulation

        tles = synthetic_leo_constellation(6, EPOCH, seed=31)
        sats = [Satellite(tle=t, chunk_size_gb=0.5) for t in tles]
        network = satnogs_like_network(12, seed=13)
        config = SimulationConfig(start=EPOCH, duration_s=3 * 3600.0)
        sim = Simulation(satellites=sats, network=network, value_function=LatencyValue(), config=config)
        base = sim.scheduler
        sim.scheduler = HorizonScheduler(
            base.satellites, base.network, base.value_function,
            weather=base.weather, step_s=base.step_s,
            horizon_steps=10, replan_steps=5,
        )
        report = sim.run()
        backlog_bits = sum(report.final_backlog_gb.values()) * GB_TO_BITS
        assert report.delivered_bits + backlog_bits == pytest.approx(
            report.generated_bits, rel=1e-9
        )


class TestBeamformingEndToEnd:
    def test_beamforming_simulation_runs(self):
        from repro.groundstations.network import satnogs_like_network
        from repro.orbits.constellation import synthetic_leo_constellation
        from repro.satellites.satellite import Satellite
        from repro.scheduling.beamforming import BeamformingScheduler
        from repro.scheduling.value_functions import ThroughputValue
        from repro.simulation.config import SimulationConfig
        from repro.simulation.engine import Simulation

        tles = synthetic_leo_constellation(10, EPOCH, seed=37)
        sats = [Satellite(tle=t, chunk_size_gb=0.5) for t in tles]
        network = satnogs_like_network(8, seed=13)
        config = SimulationConfig(start=EPOCH, duration_s=2 * 3600.0)
        sim = Simulation(satellites=sats, network=network, value_function=ThroughputValue(), config=config)
        base = sim.scheduler
        sim.scheduler = BeamformingScheduler(
            base.satellites, base.network, base.value_function,
            weather=base.weather, step_s=base.step_s, beams=2,
        )
        report = sim.run()
        assert report.generated_bits > 0.0


class TestCatalogDrivenFleet:
    def test_catalog_round_trip_to_fleet(self, tmp_path):
        from repro.orbits.catalog import TLECatalog
        from repro.orbits.constellation import synthetic_leo_constellation
        from repro.satellites.satellite import Satellite

        tles = synthetic_leo_constellation(5, EPOCH, seed=41)
        catalog = TLECatalog()
        catalog.extend(tles)
        path = tmp_path / "catalog.tle"
        path.write_text(catalog.to_3le())

        loaded = TLECatalog.from_3le(path.read_text())
        fleet = [Satellite(tle=loaded.latest(n)) for n in loaded.satnums]
        assert len(fleet) == 5
        for sat in fleet:
            pos, _vel = sat.position_teme(EPOCH + timedelta(hours=1))
            assert 6500.0 < (pos @ pos) ** 0.5 < 7100.0
