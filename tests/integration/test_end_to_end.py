"""Integration tests: the whole stack on one small world.

Everything here exercises orbits -> link model -> weather -> scheduler ->
simulation -> backend together, asserting cross-module invariants that no
unit test can see.
"""

from datetime import datetime, timedelta

import pytest

from repro.core.api import DGSNetwork
from repro.core.scenarios import build_paper_weather
from repro.groundstations.network import satnogs_like_network
from repro.orbits.constellation import synthetic_leo_constellation
from repro.satellites.satellite import GB_TO_BITS, Satellite
from repro.scheduling.value_functions import LatencyValue, ThroughputValue
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulation

EPOCH = datetime(2020, 6, 1)


def build_world(num_sats=10, num_stations=25, seed=17):
    tles = synthetic_leo_constellation(num_sats, EPOCH, seed=seed)
    sats = [Satellite(tle=t, chunk_size_gb=0.5) for t in tles]
    network = satnogs_like_network(num_stations, seed=seed + 1)
    return sats, network


class TestScheduledLinksAreReal:
    def test_assignments_point_at_visible_satellites(self):
        sats, network = build_world()
        for sat in sats:
            sat.generate_data(EPOCH - timedelta(hours=1), 3600.0)
        api = DGSNetwork(satellites=sats, network=network, weather=build_paper_weather())
        for hour in (0, 6, 12):
            when = EPOCH + timedelta(hours=hour)
            step = api.schedule(when)
            for a in step.assignments:
                topo = api.look_angles(sats[a.satellite_index],
                                       network[a.station_index], when)
                assert topo.elevation_deg > 0.0
                # The assigned bitrate must be achievable at this geometry
                # under clear sky (weather can only have made it lower).
                from repro.linkbudget.budget import LinkBudget

                budget = LinkBudget(sats[a.satellite_index].radio,
                                    network[a.station_index].receiver)
                clear = budget.evaluate(topo.range_km, topo.elevation_deg,
                                        network[a.station_index].latitude_deg)
                assert a.bitrate_bps <= clear.bitrate_bps + 1e-6


class TestEndToEndDataFlow:
    @pytest.fixture(scope="class")
    def finished_run(self):
        sats, network = build_world()
        config = SimulationConfig(start=EPOCH, duration_s=6 * 3600.0, step_s=60.0)
        sim = Simulation(satellites=sats, network=network, value_function=LatencyValue(), config=config,
                         truth_weather=build_paper_weather())
        return sim, sim.run()

    def test_data_conservation(self, finished_run):
        _sim, report = finished_run
        backlog_bits = sum(report.final_backlog_gb.values()) * GB_TO_BITS
        assert report.delivered_bits + backlog_bits == pytest.approx(
            report.generated_bits, rel=1e-9
        )

    def test_chunk_latency_recomputes_from_timestamps(self, finished_run):
        sim, _report = finished_run
        for sat in sim.satellites:
            for chunk in sat.storage.delivered_unacked_chunks + \
                    sat.storage.acked_chunks:
                latency = chunk.latency_seconds()
                assert latency is not None
                assert latency >= 0.0

    def test_acked_chunks_were_received(self, finished_run):
        sim, _report = finished_run
        for sat in sim.satellites:
            for chunk in sat.storage.acked_chunks:
                assert chunk.ground_received

    def test_backend_consistent_with_satellites(self, finished_run):
        sim, _report = finished_run
        for sat in sim.satellites:
            acked_onboard = len(sat.storage.acked_chunks)
            assert acked_onboard == sim.backend.acked_count(sat.satellite_id)

    def test_station_bits_sum_to_delivered(self, finished_run):
        _sim, report = finished_run
        assert sum(report.station_bits.values()) == pytest.approx(
            report.delivered_bits
        )


class TestValueFunctionBehaviourEndToEnd:
    def test_throughput_phi_delivers_at_least_as_much(self):
        """Phi = |x| maximizes moved bits; it should never deliver much
        less than the latency optimizer on the same world."""
        results = {}
        for name, vf in (("latency", LatencyValue()),
                         ("throughput", ThroughputValue())):
            sats, network = build_world(seed=23)
            config = SimulationConfig(start=EPOCH, duration_s=4 * 3600.0)
            sim = Simulation(satellites=sats, network=network, value_function=vf, config=config,
                             truth_weather=build_paper_weather())
            results[name] = sim.run()
        assert results["throughput"].delivered_bits >= \
            0.85 * results["latency"].delivered_bits


class TestHybridEndToEnd:
    def test_plan_enforcement_reduces_early_throughput(self):
        """With plan distribution enforced, satellites cannot use
        receive-only stations until after a tx contact, so less data moves
        in a short window."""
        def run(enforce):
            sats, network = build_world(seed=29)
            config = SimulationConfig(
                start=EPOCH, duration_s=3 * 3600.0,
                enforce_plan_distribution=enforce,
                plan_max_age_s=12 * 3600.0,
            )
            sim = Simulation(satellites=sats, network=network, value_function=LatencyValue(), config=config,
                             truth_weather=build_paper_weather())
            return sim.run()

        free = run(False)
        constrained = run(True)
        assert constrained.delivered_bits <= free.delivered_bits + 1e-6
