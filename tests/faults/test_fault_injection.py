"""Engine-level fault injection: degradation, recovery, and equivalence."""

from datetime import datetime, timedelta

from repro.faults import (
    BackhaulFault,
    FaultSchedule,
    StaleTleWindow,
    StationOutage,
    UndecodedPass,
)
from repro.groundstations.network import satnogs_like_network
from repro.orbits.constellation import synthetic_leo_constellation
from repro.satellites.satellite import Satellite
from repro.scheduling.value_functions import LatencyValue
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulation

EPOCH = datetime(2020, 6, 1)
DURATION_S = 4 * 3600.0


def _simulate(faults=None, announced=True, prior=None, ack_timeout_s=None,
              batched=True):
    """A fresh small world per call (engine mutates storage in place)."""
    tles = synthetic_leo_constellation(8, EPOCH, seed=21)
    sats = [Satellite(tle=t, chunk_size_gb=0.5) for t in tles]
    network = satnogs_like_network(15, seed=13)
    config = SimulationConfig(
        start=EPOCH,
        duration_s=DURATION_S,
        ack_timeout_s=ack_timeout_s if ack_timeout_s is not None else 3 * 3600.0,
        batched_kernels=batched,
    )
    sim = Simulation(satellites=sats, network=network, value_function=LatencyValue(), config=config, faults=faults,
                     faults_announced=announced,
                     fault_availability_prior=prior)
    return network, sim


def _report_fields(report):
    return (
        report.latency_s,
        report.final_backlog_gb,
        report.final_unacked_gb,
        report.delivered_bits,
        report.generated_bits,
        report.lost_transmission_bits,
        report.retransmitted_chunks,
        report.matched_step_counts,
        report.station_bits,
        report.satellite_bits,
    )


class TestOptInEquivalence:
    def test_none_and_empty_schedule_identical(self):
        """The fault layer is pure opt-in: faults=None and an empty
        FaultSchedule must produce the same run, bit for bit."""
        _n, sim_off = _simulate(faults=None)
        report_off = sim_off.run()
        _n, sim_empty = _simulate(faults=FaultSchedule())
        report_empty = sim_empty.run()
        assert _report_fields(report_empty) == _report_fields(report_off)
        # Only the counters block distinguishes the two reports.
        assert report_off.fault_counters == {}
        assert report_empty.fault_counters == {
            name: 0 for name in report_empty.fault_counters
        }
        assert set(report_empty.fault_counters) == {
            "station_outage_steps", "partial_outage_steps",
            "undecoded_steps", "stale_tle_steps", "receipts_dropped",
            "receipts_delayed", "ack_batches_missed", "redelivered_chunks",
        }

    def test_scalar_and_batched_paths_agree_under_faults(self):
        """The availability weight is applied identically in the scalar
        and batched contact-graph kernels."""
        network, _ = _simulate()
        faults = FaultSchedule(outages=[
            StationOutage(network[j].station_id, EPOCH,
                          EPOCH + timedelta(hours=5),
                          severity=0.5 if j % 2 else 1.0)
            for j in range(6)
        ])
        _n, sim_batched = _simulate(faults=faults, batched=True)
        _n, sim_scalar = _simulate(faults=faults, batched=False)
        report_b = sim_batched.run()
        report_s = sim_scalar.run()
        assert _report_fields(report_b) == _report_fields(report_s)
        assert report_b.fault_counters == report_s.fault_counters


class TestSeededRunsReproduce:
    def test_same_seed_same_report(self):
        network, _ = _simulate()
        def make_faults():
            _n, sim = _simulate()
            return FaultSchedule.generate(
                station_ids=[st.station_id for st in network],
                satellite_ids=[s.satellite_id for s in sim.satellites],
                start=EPOCH, horizon_s=DURATION_S,
                intensity=0.4, seed=17,
            )
        _n, sim_a = _simulate(faults=make_faults())
        _n, sim_b = _simulate(faults=make_faults())
        report_a = sim_a.run()
        report_b = sim_b.run()
        assert _report_fields(report_a) == _report_fields(report_b)
        assert report_a.fault_counters == report_b.fault_counters


class TestGracefulDegradation:
    def test_twenty_percent_outage_completes_with_counters(self):
        """The acceptance scenario: >= 20% of stations hard-down for the
        whole run completes without exceptions and reports counters."""
        network, _ = _simulate()
        down = [st.station_id for st in network][:5]  # 5/15 = 33%
        faults = FaultSchedule.station_blackout(down, EPOCH, DURATION_S + 3600)
        _n, sim = _simulate(faults=faults, announced=False)
        report = sim.run()
        assert report.generated_bits > 0.0
        assert report.delivered_bits > 0.0  # degraded, not destroyed
        assert set(report.fault_counters) != set()
        assert report.fault_counters["station_outage_steps"] > 0
        assert report.lost_transmission_bits > 0.0

    def test_announced_outage_routes_around(self):
        """Announced hard outages prune edges: nothing is wasted on the
        dark stations."""
        network, _ = _simulate()
        all_down = FaultSchedule.station_blackout(
            [st.station_id for st in network], EPOCH, DURATION_S + 3600
        )
        _n, sim = _simulate(faults=all_down, announced=True)
        report = sim.run()
        assert report.delivered_bits == 0.0
        assert report.lost_transmission_bits == 0.0
        assert report.fault_counters["station_outage_steps"] == 0

    def test_availability_prior_keeps_gamble_edges(self):
        """With a prior, announced-down stations keep (down-weighted)
        edges, so the scheduler gambles and wastes the passes."""
        network, _ = _simulate()
        all_down = FaultSchedule.station_blackout(
            [st.station_id for st in network], EPOCH, DURATION_S + 3600
        )
        _n, sim = _simulate(faults=all_down, announced=True, prior=0.25)
        report = sim.run()
        assert report.delivered_bits == 0.0
        assert report.lost_transmission_bits > 0.0
        assert report.fault_counters["station_outage_steps"] > 0

    def test_partial_outage_throttles_throughput(self):
        network, _ = _simulate()
        half_power = FaultSchedule(outages=[
            StationOutage(st.station_id, EPOCH,
                          EPOCH + timedelta(seconds=DURATION_S + 3600),
                          severity=0.5)
            for st in network
        ])
        _n, sim_healthy = _simulate()
        healthy = sim_healthy.run()
        _n, sim_half = _simulate(faults=half_power)
        throttled = sim_half.run()
        assert 0.0 < throttled.delivered_bits < healthy.delivered_bits
        assert throttled.fault_counters["partial_outage_steps"] > 0

    def test_undecoded_window_loses_bits(self):
        network, _ = _simulate()
        faults = FaultSchedule(undecoded=[
            UndecodedPass(st.station_id, EPOCH,
                          EPOCH + timedelta(seconds=DURATION_S + 3600))
            for st in network
        ])
        _n, sim = _simulate(faults=faults)
        report = sim.run()
        assert report.delivered_bits == 0.0
        assert report.lost_transmission_bits > 0.0
        assert report.fault_counters["undecoded_steps"] > 0

    def test_stale_tle_window_loses_bits(self):
        _n, sim_probe = _simulate()
        sat_ids = [s.satellite_id for s in sim_probe.satellites]
        faults = FaultSchedule(stale_tle=[
            StaleTleWindow(sat_id, EPOCH,
                           EPOCH + timedelta(seconds=DURATION_S + 3600))
            for sat_id in sat_ids
        ])
        _n, sim = _simulate(faults=faults)
        report = sim.run()
        assert report.delivered_bits == 0.0
        assert report.fault_counters["stale_tle_steps"] > 0


class TestBackhaulFaults:
    def test_latency_spike_delays_receipts(self):
        network, _ = _simulate()
        spikes = FaultSchedule(backhaul=[
            BackhaulFault(st.station_id, EPOCH,
                          EPOCH + timedelta(seconds=DURATION_S + 3600),
                          extra_latency_s=600.0)
            for st in network
        ])
        _n, sim = _simulate(faults=spikes)
        report = sim.run()
        assert report.fault_counters["receipts_delayed"] > 0
        assert report.fault_counters["receipts_dropped"] == 0
        # Receipts arrive late but arrive: unique data is still delivered.
        assert report.delivered_bits > 0.0

    def test_partition_drops_receipts_and_requeue_recovers(self):
        """The acceptance path for partitions: receipts are lost, so acks
        never come; the existing ack-timeout requeue retransmits; the
        engine counts redeliveries instead of double-counting them."""
        network, _ = _simulate()
        # Partition every station for the first half of the run with a
        # short ack timeout, so requeues and redeliveries happen within it.
        partition = FaultSchedule(backhaul=[
            BackhaulFault(st.station_id, EPOCH,
                          EPOCH + timedelta(seconds=DURATION_S / 2),
                          partitioned=True)
            for st in network
        ])
        _n, sim = _simulate(faults=partition, ack_timeout_s=900.0)
        report = sim.run()
        counters = report.fault_counters
        assert counters["receipts_dropped"] > 0
        assert report.retransmitted_chunks > 0
        # Unique-delivery accounting: one latency sample per unique chunk.
        total_latency_samples = sum(
            len(v) for v in report.latency_s.values()
        )
        assert total_latency_samples == len(sim._delivered_chunk_ids)
        assert report.delivered_bits <= report.generated_bits

    def test_partition_blocks_ack_batches(self):
        network, _ = _simulate()
        partition = FaultSchedule(backhaul=[
            BackhaulFault(st.station_id, EPOCH,
                          EPOCH + timedelta(seconds=DURATION_S + 3600),
                          partitioned=True)
            for st in network
        ])
        _n, sim = _simulate(faults=partition)
        report = sim.run()
        assert report.fault_counters["ack_batches_missed"] > 0
        # No receipts ever reach the backend, so nothing is ever acked.
        assert sim.backend.total_receipts == 0
        for sat in sim.satellites:
            assert sat.storage.acked_chunks == []


class TestFaultSweepExperiment:
    def test_fault_sweep_is_deterministic(self):
        """Two runs of the robustness fault sweep with the same seed
        produce byte-identical serialized reports."""
        from repro.experiments import robustness

        kwargs = dict(duration_s=7200.0, scale=0.06,
                      intensities=(0.0, 0.5), seed=3)
        first = robustness.fault_sweep(**kwargs)
        second = robustness.fault_sweep(**kwargs)
        assert first.to_json() == second.to_json()
        assert any(key.startswith("intensity:") for key in first.series)


class TestEndOfRunDrain:
    def test_huge_latency_spike_cannot_strand_receipts(self):
        """Regression: the end-of-run drain used to flush a fixed hour
        past the horizon, so a backhaul spike larger than that stranded
        receipts in flight forever and the backend's totals leaked."""
        network, _ = _simulate()
        spikes = FaultSchedule(backhaul=[
            BackhaulFault(st.station_id, EPOCH,
                          EPOCH + timedelta(seconds=DURATION_S + 3600),
                          extra_latency_s=2 * 86400.0)
            for st in network
        ])
        _n, sim = _simulate(faults=spikes)
        report = sim.run()
        assert report.delivered_bits > 0.0
        # Every receipt landed despite arriving two days "late".
        assert sim.backend.in_flight_count == 0
        assert sim.backend.total_bits_received == report.delivered_bits
