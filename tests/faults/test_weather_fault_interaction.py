"""Single-penalty contract between injected faults and weather.

A station inside a storm cell AND under an injected outage must be
discounted once per cause: rain enters the edge weight only through the
link budget's attenuation (a lower decodable bitrate), fault availability
only through the graph's ``weight_factor``.  Applying availability a
second time anywhere -- or letting weather leak into ``station_weight`` --
would double-penalize exactly the stations the storm scenarios stress.
"""

from datetime import datetime, timedelta

from repro.core.scenarios import build_storm_weather
from repro.faults import FaultSchedule, StationOutage
from repro.groundstations.network import satnogs_like_network
from repro.orbits.constellation import synthetic_leo_constellation
from repro.satellites.satellite import Satellite
from repro.scheduling.value_functions import LatencyValue
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulation
from repro.weather.cells import WeatherSample
from repro.weather.provider import ConstantWeatherProvider

EPOCH = datetime(2020, 6, 1)
STORMY = WeatherSample(rain_rate_mm_h=20.0, cloud_water_kg_m2=3.0,
                       temperature_k=285.0)
AVAILABILITY = 0.4


def _fleet(n=8, seed=21):
    sats = [
        Satellite(tle=t, chunk_size_gb=0.5)
        for t in synthetic_leo_constellation(n, EPOCH, seed=seed)
    ]
    for sat in sats:
        sat.generate_data(EPOCH - timedelta(hours=2), 7200.0)
    return sats


def _partial_outage_schedule(network, severity):
    """Every station (partially) down for the whole window.

    ``severity`` is the capacity fraction *lost*, so availability is
    ``1 - severity`` (0.6 lost -> 0.4 available)."""
    return FaultSchedule(outages=[
        StationOutage(
            station_id=st.station_id, start=EPOCH - timedelta(days=1),
            end=EPOCH + timedelta(days=2), severity=severity,
        )
        for st in network
    ])


def _simulation(weather, faults):
    network = satnogs_like_network(20, seed=13)
    if faults is not None:
        faults = _partial_outage_schedule(network, 1.0 - AVAILABILITY)
    return Simulation(
        satellites=_fleet(), network=network,
        value_function=LatencyValue(),
        config=SimulationConfig(start=EPOCH, duration_s=3600.0),
        truth_weather=weather, faults=faults, faults_announced=True,
    )


class TestSinglePenalty:
    def test_fault_scales_rainy_edges_exactly_once(self):
        """weight(storm + fault) == weight(storm) * availability,
        bit-exactly, edge for edge.

        If availability were applied twice (once in station_weight, once
        anywhere else), the ratio would be availability**2; if weather
        leaked into station_weight, the ratio would drift with rain."""
        rain = ConstantWeatherProvider(STORMY)
        sim_plain = _simulation(rain, faults=None)
        sim_faulted = _simulation(rain, faults=True)
        compared = 0
        for minutes in range(0, 60, 10):
            when = EPOCH + timedelta(minutes=minutes)
            ga = sim_plain.scheduler.contact_graph(when)
            gb = sim_faulted.scheduler.contact_graph(when)
            assert len(ga.edges) == len(gb.edges)
            for ea, eb in zip(ga.edges, gb.edges):
                assert (ea.satellite_index, ea.station_index) == \
                    (eb.satellite_index, eb.station_index)
                assert eb.weight == ea.weight * AVAILABILITY
                # The *link* itself is identical: rain already shaped the
                # bitrate/MODCOD the same way on both sides.
                assert eb.bitrate_bps == ea.bitrate_bps
                assert eb.required_esn0_db == ea.required_esn0_db
            compared += len(ga.edges)
        assert compared > 0

    def test_station_weight_ignores_weather(self):
        """The closure prices fault availability only: same factor under
        clear sky and under a downpour."""
        clear = ConstantWeatherProvider(
            WeatherSample(0.0, 0.0, 283.0)
        )
        sim_clear = _simulation(clear, faults=True)
        sim_rain = _simulation(ConstantWeatherProvider(STORMY), faults=True)
        when = EPOCH + timedelta(minutes=30)
        for sim in (sim_clear, sim_rain):
            factors = [
                sim.scheduler.station_weight(j, when)
                for j in range(len(sim.network))
            ]
            assert factors == [AVAILABILITY] * len(sim.network)

    def test_storm_weather_with_faults_runs_clean(self):
        """End to end under real storm tracks + partial outages: the run
        completes and the availability scaling appears in the report as
        partial-outage accounting, not as doubled weather loss."""
        weather = build_storm_weather(seed=3, storm_seed=17, storm_rate=3.0)
        sim = _simulation(weather, faults=True)
        report = sim.run()
        assert report.fault_counters["partial_outage_steps"] > 0
        assert report.delivered_bits > 0


class TestDiversitySinglePenalty:
    def test_partial_availability_scales_copy_probability_not_bits(self):
        """In diversity mode a partial outage discounts the station's
        *decode probability*; the transmitter's bits budget is untouched
        (it belongs to the satellite, not any one receiver)."""
        network = satnogs_like_network(20, seed=13)
        fleet = _fleet()
        sim = Simulation(
            satellites=fleet, network=network,
            value_function=LatencyValue(),
            config=SimulationConfig(
                start=EPOCH, duration_s=3600.0,
                execution_mode="diversity", diversity_receivers=2,
            ),
            truth_weather=ConstantWeatherProvider(
                WeatherSample(0.0, 0.0, 283.0)
            ),
            faults=_partial_outage_schedule(network, 1.0 - AVAILABILITY),
            faults_announced=True,
        )
        a = when = None
        for minutes in range(0, 120, 10):
            when = EPOCH + timedelta(minutes=minutes)
            step = sim.scheduler.schedule_step(when, keep_graph=True)
            if step.assignments:
                a = step.assignments[0]
                break
        assert a is not None, "need at least one contact to test"
        sat = fleet[a.satellite_index]
        p_faulted = sim._copy_decode_probability(
            sat, a.station_index, a.elevation_deg, a.range_km,
            a.required_esn0_db, when,
        )
        faults, sim.faults = sim.faults, None
        p_healthy = sim._copy_decode_probability(
            sat, a.station_index, a.elevation_deg, a.range_km,
            a.required_esn0_db, when,
        )
        sim.faults = faults
        assert 0.0 < p_faulted < p_healthy
        assert p_faulted == p_healthy * AVAILABILITY

    def test_hard_down_copy_is_zero(self):
        network = satnogs_like_network(20, seed=13)
        fleet = _fleet()
        sim = Simulation(
            satellites=fleet, network=network,
            value_function=LatencyValue(),
            config=SimulationConfig(
                start=EPOCH, duration_s=3600.0,
                execution_mode="diversity",
            ),
            truth_weather=ConstantWeatherProvider(
                WeatherSample(0.0, 0.0, 283.0)
            ),
            faults=_partial_outage_schedule(network, 1.0),
            faults_announced=False,
        )
        when = EPOCH + timedelta(minutes=10)
        sat = fleet[0]
        assert sim._copy_decode_probability(
            sat, 0, 45.0, 1000.0, 5.0, when
        ) == 0.0
