"""Unit tests for the fault event types and the seeded FaultSchedule."""

from datetime import datetime, timedelta

import pytest

from repro.faults import (
    BackhaulFault,
    FaultCounters,
    FaultSchedule,
    StaleTleWindow,
    StationOutage,
    UndecodedPass,
)

EPOCH = datetime(2020, 6, 1)


def hours(h):
    return EPOCH + timedelta(hours=h)


class TestEvents:
    def test_half_open_window(self):
        o = StationOutage("gs-1", EPOCH, hours(1))
        assert o.covers(EPOCH)
        assert o.covers(hours(1) - timedelta(seconds=1))
        assert not o.covers(hours(1))
        assert not o.covers(EPOCH - timedelta(seconds=1))

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            StationOutage("gs-1", EPOCH, EPOCH)

    def test_severity_bounds(self):
        with pytest.raises(ValueError):
            StationOutage("gs-1", EPOCH, hours(1), severity=0.0)
        with pytest.raises(ValueError):
            StationOutage("gs-1", EPOCH, hours(1), severity=1.1)
        partial = StationOutage("gs-1", EPOCH, hours(1), severity=0.4)
        assert partial.availability == pytest.approx(0.6)

    def test_backhaul_must_do_something(self):
        with pytest.raises(ValueError):
            BackhaulFault("gs-1", EPOCH, hours(1))
        with pytest.raises(ValueError):
            BackhaulFault("gs-1", EPOCH, hours(1), extra_latency_s=-5.0)
        assert BackhaulFault("gs-1", EPOCH, hours(1), partitioned=True)
        assert BackhaulFault("gs-1", EPOCH, hours(1), extra_latency_s=30.0)

    def test_duration(self):
        assert UndecodedPass("gs-1", EPOCH, hours(2)).duration_s == 7200.0
        assert StaleTleWindow("sat-1", EPOCH, hours(1)).duration_s == 3600.0


class TestScheduleQueries:
    def test_availability_healthy_by_default(self):
        schedule = FaultSchedule()
        assert schedule.station_availability("gs-1", EPOCH) == 1.0
        assert schedule.event_count == 0

    def test_availability_worst_outage_wins(self):
        schedule = FaultSchedule(outages=[
            StationOutage("gs-1", EPOCH, hours(2), severity=0.5),
            StationOutage("gs-1", hours(1), hours(3), severity=1.0),
        ])
        assert schedule.station_availability("gs-1", hours(0.5)) == 0.5
        assert schedule.station_availability("gs-1", hours(1.5)) == 0.0
        assert schedule.station_availability("gs-1", hours(2.5)) == 0.0
        assert schedule.station_availability("gs-1", hours(3)) == 1.0
        assert schedule.station_availability("gs-2", hours(1.5)) == 1.0

    def test_partition_wins_over_latency_spike(self):
        schedule = FaultSchedule(backhaul=[
            BackhaulFault("gs-1", EPOCH, hours(2), extra_latency_s=300.0),
            BackhaulFault("gs-1", hours(1), hours(2), partitioned=True),
        ])
        assert not schedule.is_partitioned("gs-1", hours(0.5))
        assert schedule.backhaul_fault("gs-1", hours(0.5)).extra_latency_s \
            == 300.0
        assert schedule.is_partitioned("gs-1", hours(1.5))
        assert schedule.backhaul_fault("gs-1", hours(3)) is None

    def test_undecoded_and_stale_tle(self):
        schedule = FaultSchedule(
            undecoded=[UndecodedPass("gs-1", EPOCH, hours(1))],
            stale_tle=[StaleTleWindow("sat-A", hours(1), hours(2))],
        )
        assert schedule.is_undecoded("gs-1", hours(0.5))
        assert not schedule.is_undecoded("gs-1", hours(1.5))
        assert not schedule.is_undecoded("gs-2", hours(0.5))
        assert schedule.is_tle_stale("sat-A", hours(1.5))
        assert not schedule.is_tle_stale("sat-B", hours(1.5))

    def test_faulted_stations(self):
        schedule = FaultSchedule(
            outages=[StationOutage("gs-1", EPOCH, hours(1))],
            backhaul=[BackhaulFault("gs-2", EPOCH, hours(1),
                                    partitioned=True)],
            undecoded=[UndecodedPass("gs-3", hours(2), hours(3))],
        )
        assert schedule.faulted_stations(hours(0.5)) == {"gs-1", "gs-2"}
        assert schedule.faulted_stations(hours(2.5)) == {"gs-3"}

    def test_station_blackout_helper(self):
        schedule = FaultSchedule.station_blackout(["a", "b"], EPOCH, 3600.0)
        assert schedule.station_availability("a", hours(0.5)) == 0.0
        assert schedule.station_availability("b", hours(0.5)) == 0.0
        assert schedule.station_availability("a", hours(2)) == 1.0


class TestGenerate:
    STATIONS = [f"gs-{i:03d}" for i in range(20)]
    SATS = [f"sat-{i}" for i in range(8)]

    def test_same_seed_bit_identical(self):
        kwargs = dict(start=EPOCH, horizon_s=86400.0, intensity=0.4, seed=11)
        a = FaultSchedule.generate(self.STATIONS, self.SATS, **kwargs)
        b = FaultSchedule.generate(self.STATIONS, self.SATS, **kwargs)
        assert a.outages == b.outages
        assert a.backhaul == b.backhaul
        assert a.undecoded == b.undecoded
        assert a.stale_tle == b.stale_tle

    def test_different_seed_differs(self):
        a = FaultSchedule.generate(self.STATIONS, self.SATS, EPOCH, 86400.0,
                                   intensity=0.4, seed=1)
        b = FaultSchedule.generate(self.STATIONS, self.SATS, EPOCH, 86400.0,
                                   intensity=0.4, seed=2)
        assert a.event_count > 0
        assert (a.outages, a.backhaul) != (b.outages, b.backhaul)

    def test_zero_intensity_empty(self):
        schedule = FaultSchedule.generate(self.STATIONS, self.SATS, EPOCH,
                                          86400.0, intensity=0.0, seed=5)
        assert schedule.event_count == 0

    def test_intensity_scales_event_count(self):
        light = FaultSchedule.generate(self.STATIONS, self.SATS, EPOCH,
                                       86400.0, intensity=0.05, seed=9)
        heavy = FaultSchedule.generate(self.STATIONS, self.SATS, EPOCH,
                                       86400.0, intensity=0.8, seed=9)
        assert heavy.event_count > light.event_count

    def test_all_event_classes_generated(self):
        schedule = FaultSchedule.generate(self.STATIONS, self.SATS, EPOCH,
                                          7 * 86400.0, intensity=0.5, seed=3)
        assert schedule.outages
        assert schedule.backhaul
        assert schedule.undecoded
        assert schedule.stale_tle
        assert any(o.severity < 1.0 for o in schedule.outages)
        assert any(o.severity == 1.0 for o in schedule.outages)
        assert any(b.partitioned for b in schedule.backhaul)
        assert any(not b.partitioned for b in schedule.backhaul)

    def test_windows_inside_horizon(self):
        horizon = 43200.0
        schedule = FaultSchedule.generate(self.STATIONS, self.SATS, EPOCH,
                                          horizon, intensity=0.6, seed=4)
        end = EPOCH + timedelta(seconds=horizon)
        for events in (schedule.outages, schedule.backhaul,
                       schedule.undecoded, schedule.stale_tle):
            for event in events:
                assert EPOCH <= event.start < end
                assert event.end <= end

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            FaultSchedule.generate(self.STATIONS, self.SATS, EPOCH, 100.0,
                                   intensity=1.5)
        with pytest.raises(ValueError):
            FaultSchedule.generate(self.STATIONS, self.SATS, EPOCH, 0.0)


class TestCounters:
    def test_as_dict_stable_order(self):
        counters = FaultCounters()
        counters.receipts_dropped = 3
        d = counters.as_dict()
        assert d["receipts_dropped"] == 3
        assert list(d) == [
            "station_outage_steps", "partial_outage_steps",
            "undecoded_steps", "stale_tle_steps", "receipts_dropped",
            "receipts_delayed", "ack_batches_missed", "redelivered_chunks",
        ]
        assert counters.total_events == 3
