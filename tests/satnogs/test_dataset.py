"""Tests for the synthetic SatNOGS-like dataset."""

from datetime import datetime

import pytest

from repro.satnogs.dataset import SatNOGSDataset, generate_dataset

EPOCH = datetime(2020, 6, 1)


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(num_stations=80, num_satellites=40,
                            start=EPOCH, days=10, seed=2)


class TestGeneration:
    def test_sizes(self, dataset):
        assert len(dataset.stations) == 80
        assert len(dataset.satellites) == 40
        assert len(dataset.observations) > 1000

    def test_deterministic(self):
        a = generate_dataset(num_stations=20, num_satellites=10, seed=5)
        b = generate_dataset(num_stations=20, num_satellites=10, seed=5)
        assert a.to_json() == b.to_json()

    def test_satellite_tles_parse(self, dataset):
        for record in dataset.satellites:
            tle = record.tle()
            assert tle.satnum == record.norad_id

    def test_observations_reference_valid_entities(self, dataset):
        station_ids = {s.station_id for s in dataset.stations}
        norad_ids = {s.norad_id for s in dataset.satellites}
        for obs in dataset.observations:
            assert obs.station_id in station_ids
            assert obs.norad_id in norad_ids

    def test_observations_sorted_by_rise(self, dataset):
        rises = [o.rise_time for o in dataset.observations]
        assert rises == sorted(rises)

    def test_durations_match_leo_pass_statistics(self, dataset):
        """Sec. 2/4: passes last up to ~10 min; most are shorter."""
        durations = [o.duration_s for o in dataset.observations]
        assert max(durations) < 16 * 60.0
        assert min(durations) >= 60.0
        import numpy as np

        median = float(np.median(durations))
        assert 2 * 60.0 < median < 10 * 60.0

    def test_elevations_skew_low(self, dataset):
        """Random-phase LEO geometry: low-elevation passes dominate."""
        elevations = [o.max_elevation_deg for o in dataset.observations]
        low = sum(1 for e in elevations if e < 30.0)
        assert low / len(elevations) > 0.5

    def test_snr_correlates_with_elevation(self, dataset):
        import numpy as np

        els = np.array([o.max_elevation_deg for o in dataset.observations])
        snrs = np.array([o.snr_db for o in dataset.observations])
        corr = float(np.corrcoef(els, snrs)[0, 1])
        assert corr > 0.3

    def test_offline_stations_have_no_observations(self, dataset):
        offline = {s.station_id for s in dataset.stations if s.status != "online"}
        for obs in dataset.observations:
            assert obs.station_id not in offline


class TestFiltering:
    def test_paper_filter(self, dataset):
        filtered = dataset.filter_operational(min_observations=1000)
        assert 0 < len(filtered.stations) < len(dataset.stations)
        for station in filtered.stations:
            assert station.status == "online"
            assert station.observation_count >= 1000
        kept = {s.station_id for s in filtered.stations}
        for obs in filtered.observations:
            assert obs.station_id in kept

    def test_full_scale_filter_near_paper_size(self):
        """200 raw stations filter down to roughly the paper's 173."""
        data = generate_dataset(num_stations=200, num_satellites=10,
                                days=1, seed=0)
        filtered = data.filter_operational(min_observations=1000)
        assert 100 < len(filtered.stations) < 200

    def test_query_helpers(self, dataset):
        station = dataset.stations[0]
        for obs in dataset.observations_for_station(station.station_id):
            assert obs.station_id == station.station_id
        sat = dataset.satellites[0]
        for obs in dataset.observations_for_satellite(sat.norad_id):
            assert obs.norad_id == sat.norad_id


class TestSerialization:
    def test_json_round_trip(self, dataset):
        again = SatNOGSDataset.from_json(dataset.to_json())
        assert again.to_json() == dataset.to_json()
        assert len(again.observations) == len(dataset.observations)
        assert again.stations[0] == dataset.stations[0]
        assert again.observations[0] == dataset.observations[0]
