"""Tests for the SatNOGS API loader."""

import json

import pytest

from repro.satnogs.loader import (
    SatNOGSLoaderError,
    load_dataset,
    load_observations_api,
    load_stations_api,
    stations_to_network,
)

STATIONS_PAYLOAD = json.dumps([
    {
        "id": 2, "name": "KB9JHU", "lat": 39.236, "lng": -86.305,
        "altitude": 280.0, "status": "Online", "observations": 12000,
        "antenna": [{"band": "UHF", "antenna_type": "yagi"},
                    {"band": "VHF", "antenna_type": "turnstile"}],
    },
    {
        "id": 6, "name": "Apomahon", "lat": 53.118, "lng": -7.9,
        "altitude": 100.0, "status": "Testing", "observations": 300,
        "antenna": [],
    },
])

OBSERVATIONS_PAYLOAD = json.dumps([
    {
        "id": 1001, "ground_station": 2, "norad_cat_id": 25544,
        "start": "2020-06-01T10:00:00Z", "end": "2020-06-01T10:09:30Z",
        "max_altitude": 45.0, "transmitter_mode": "FM",
        "vetted_status": "good", "snr": 12.5,
    },
    {
        "id": 1002, "ground_station": 6, "norad_cat_id": 43017,
        "start": "2020-06-01T08:00:00Z", "end": "2020-06-01T08:04:00Z",
        "max_altitude": 11.0, "vetted_status": "bad", "snr": None,
    },
])


class TestStationLoader:
    def test_parses_fields(self):
        stations = load_stations_api(STATIONS_PAYLOAD)
        assert len(stations) == 2
        first = stations[0]
        assert first.station_id == 2
        assert first.name == "KB9JHU"
        assert first.latitude_deg == pytest.approx(39.236)
        assert first.bands == ("UHF", "VHF")
        assert first.status == "online"
        assert first.observation_count == 12000

    def test_default_band_when_no_antennas(self):
        stations = load_stations_api(STATIONS_PAYLOAD)
        assert stations[1].bands == ("UHF",)

    def test_invalid_json(self):
        with pytest.raises(SatNOGSLoaderError, match="invalid JSON"):
            load_stations_api("{broken")

    def test_non_array(self):
        with pytest.raises(SatNOGSLoaderError, match="array"):
            load_stations_api('{"id": 1}')

    def test_missing_field(self):
        with pytest.raises(SatNOGSLoaderError, match="malformed"):
            load_stations_api('[{"id": 1}]')


class TestObservationLoader:
    def test_parses_and_sorts(self):
        observations = load_observations_api(OBSERVATIONS_PAYLOAD)
        assert [o.observation_id for o in observations] == [1002, 1001]
        good = observations[1]
        assert good.station_id == 2
        assert good.norad_id == 25544
        assert good.duration_s == pytest.approx(570.0)
        assert good.good
        assert not observations[0].good

    def test_null_snr_defaults_zero(self):
        observations = load_observations_api(OBSERVATIONS_PAYLOAD)
        assert observations[0].snr_db == 0.0


class TestDatasetAssembly:
    def test_with_tles(self, str3_tle):
        line1, line2 = str3_tle.to_lines()
        dataset = load_dataset(
            STATIONS_PAYLOAD, OBSERVATIONS_PAYLOAD,
            tle_text=f"TESTSAT\n{line1}\n{line2}\n",
        )
        assert len(dataset.stations) == 2
        assert len(dataset.observations) == 2
        assert len(dataset.satellites) == 1
        assert dataset.satellites[0].norad_id == str3_tle.satnum

    def test_without_tles(self):
        dataset = load_dataset(STATIONS_PAYLOAD, OBSERVATIONS_PAYLOAD)
        assert dataset.satellites == []


class TestNetworkConversion:
    def test_conversion(self):
        records = load_stations_api(STATIONS_PAYLOAD)
        network = stations_to_network(records, tx_capable_fraction=0.5)
        assert len(network) == 2
        assert len(network.transmit_capable) == 1
        assert network[0].station_id == "satnogs-2"
        assert network[0].latitude_deg == pytest.approx(39.236)
        assert network[0].altitude_km == pytest.approx(0.280)

    def test_empty_rejected(self):
        with pytest.raises(SatNOGSLoaderError):
            stations_to_network([])
