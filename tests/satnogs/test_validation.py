"""Tests for orbit validation against observation logs."""

from datetime import datetime

import pytest

from repro.satnogs.dataset import generate_dataset, generate_geometric_dataset
from repro.satnogs.validation import ks_statistic, validate_against_observations

EPOCH = datetime(2020, 6, 1)


@pytest.fixture(scope="module")
def geometric_dataset():
    return generate_geometric_dataset(
        num_stations=4, num_satellites=3, start=EPOCH, hours=12.0, seed=3,
    )


class TestKSStatistic:
    def test_identical_samples_zero(self):
        assert ks_statistic([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 0.0

    def test_disjoint_samples_one(self):
        assert ks_statistic([1.0, 2.0], [10.0, 11.0]) == 1.0

    def test_bounds(self):
        value = ks_statistic([1.0, 5.0, 9.0], [2.0, 5.0, 8.0])
        assert 0.0 <= value <= 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_statistic([], [1.0])


class TestGeometricDataset:
    def test_observations_exist(self, geometric_dataset):
        assert geometric_dataset.observations
        assert all(s.status == "online" for s in geometric_dataset.stations)

    def test_durations_physical(self, geometric_dataset):
        for obs in geometric_dataset.observations:
            assert 0.0 < obs.duration_s < 16 * 60.0


class TestValidation:
    def test_geometric_observations_validate(self, geometric_dataset):
        """Observations derived from true geometry must be recovered:
        near-total coverage and small duration errors -- this is the
        paper's 'validate orbit calculation and link duration' check."""
        result = validate_against_observations(
            geometric_dataset, max_observations=40, min_elevation_deg=5.0,
        )
        assert result.observations_checked > 5
        assert result.coverage > 0.9
        assert result.median_duration_error < 0.1
        assert result.ks_statistic < 0.35

    def test_statistical_observations_validate_poorly(self):
        """The month-scale statistical generator is NOT geometry-tied; its
        observation times should largely fail pass matching, which is how
        we know the validator has teeth."""
        dataset = generate_dataset(num_stations=6, num_satellites=4,
                                   start=EPOCH, days=2, seed=4)
        result = validate_against_observations(dataset, max_observations=30)
        assert result.observations_checked > 0
        assert result.coverage < 0.9

    def test_empty_dataset(self):
        from repro.satnogs.dataset import SatNOGSDataset

        result = validate_against_observations(SatNOGSDataset())
        assert result.observations_checked == 0
        import math

        assert math.isnan(result.coverage)
