"""Tests for weather provider implementations and the quantizing cache."""

from datetime import datetime, timedelta

import pytest

from repro.weather.cells import RainCellField, WeatherSample
from repro.weather.provider import (
    ClearSkyProvider,
    ConstantWeatherProvider,
    QuantizedWeatherCache,
    WeatherProvider,
)

EPOCH = datetime(2020, 6, 1)


class CountingProvider:
    """Test double that counts how often the inner provider is hit."""

    def __init__(self):
        self.calls = 0

    def sample(self, lat_deg, lon_deg, when):
        self.calls += 1
        return WeatherSample(1.0, 0.2)


class TestProtocol:
    def test_implementations_satisfy_protocol(self):
        for provider in (ClearSkyProvider(),
                         ConstantWeatherProvider(WeatherSample(0.0, 0.0)),
                         RainCellField(seed=1),
                         QuantizedWeatherCache(ClearSkyProvider())):
            assert isinstance(provider, WeatherProvider)


class TestClearSky:
    def test_always_dry(self):
        provider = ClearSkyProvider()
        s = provider.sample(10.0, 20.0, EPOCH)
        assert s.rain_rate_mm_h == 0.0
        assert s.cloud_water_kg_m2 == 0.0


class TestConstant:
    def test_returns_configured_sample(self):
        sample = WeatherSample(42.0, 1.5)
        provider = ConstantWeatherProvider(sample)
        assert provider.sample(0.0, 0.0, EPOCH) is sample


class TestQuantizedCache:
    def test_same_bucket_hits_cache(self):
        inner = CountingProvider()
        cache = QuantizedWeatherCache(inner, period_s=300.0)
        cache.sample(47.0, 8.0, EPOCH)
        cache.sample(47.0, 8.0, EPOCH + timedelta(seconds=60))
        cache.sample(47.0, 8.0, EPOCH + timedelta(seconds=299))
        assert inner.calls == 1

    def test_new_bucket_misses(self):
        inner = CountingProvider()
        cache = QuantizedWeatherCache(inner, period_s=300.0)
        cache.sample(47.0, 8.0, EPOCH)
        cache.sample(47.0, 8.0, EPOCH + timedelta(seconds=600))
        assert inner.calls == 2

    def test_different_locations_cached_separately(self):
        inner = CountingProvider()
        cache = QuantizedWeatherCache(inner, period_s=300.0)
        cache.sample(47.0, 8.0, EPOCH)
        cache.sample(48.0, 8.0, EPOCH)
        assert inner.calls == 2

    def test_values_match_inner(self):
        truth = RainCellField(seed=5)
        cache = QuantizedWeatherCache(truth, period_s=1.0)
        when = EPOCH + timedelta(hours=3)
        assert cache.sample(47.0, 8.0, when) == truth.sample(47.0, 8.0, when)

    def test_eviction_keeps_working(self):
        inner = CountingProvider()
        cache = QuantizedWeatherCache(inner, period_s=300.0, max_entries=4)
        for k in range(20):
            cache.sample(10.0 + k, 0.0, EPOCH)
        assert inner.calls == 20
        assert cache.sample(10.0, 0.0, EPOCH).rain_rate_mm_h == 1.0

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            QuantizedWeatherCache(ClearSkyProvider(), period_s=0.0)


class TestPrequantizedSample:
    """``sample_prequantized`` shares keys, counters, and values with
    ``sample`` -- the scheduler's per-station memo rounds once up front."""

    def test_interleaves_with_sample_on_one_cache(self):
        inner = CountingProvider()
        cache = QuantizedWeatherCache(inner, period_s=300.0)
        lat, lon = 47.1234567, 8.7654321
        first = cache.sample(lat, lon, EPOCH)
        again = cache.sample_prequantized(
            round(lat, 3), round(lon, 3), lat, lon,
            EPOCH + timedelta(seconds=120),
        )
        assert again is first
        assert inner.calls == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_miss_samples_with_unrounded_coordinates(self):
        class EchoProvider:
            def sample(self, lat_deg, lon_deg, when):
                return WeatherSample(lat_deg, lon_deg)

        cache = QuantizedWeatherCache(EchoProvider(), period_s=300.0)
        lat, lon = 47.1239, -12.0004
        value = cache.sample_prequantized(
            round(lat, 3), round(lon, 3), lat, lon, EPOCH
        )
        assert value.rain_rate_mm_h == lat  # unrounded, as sample() does
        assert value.cloud_water_kg_m2 == lon
        # The rounded key serves a later plain sample() at the same spot.
        assert cache.sample(lat, lon, EPOCH) is value

    def test_values_match_inner_field(self):
        truth = RainCellField(seed=5)
        cache = QuantizedWeatherCache(truth, period_s=1.0)
        when = EPOCH + timedelta(hours=3)
        got = cache.sample_prequantized(
            round(47.05678, 3), round(8.01234, 3), 47.05678, 8.01234, when
        )
        assert got == truth.sample(47.05678, 8.01234, when)
