"""Weather-provider edge cases: forecast horizon boundaries, empty cell
grids, and the ``always_clear`` fast path's interaction with the graph
builder's weather-loop skip."""

from datetime import datetime, timedelta

from repro.groundstations.network import satnogs_like_network
from repro.orbits.constellation import synthetic_leo_constellation
from repro.satellites.satellite import Satellite
from repro.scheduling.scheduler import DownlinkScheduler
from repro.scheduling.value_functions import LatencyValue
from repro.weather.cells import RainCellField, WeatherSample
from repro.weather.forecast import ForecastProvider
from repro.weather.provider import (
    ClearSkyProvider,
    ConstantWeatherProvider,
    QuantizedWeatherCache,
)

EPOCH = datetime(2020, 6, 1)
WET = WeatherSample(rain_rate_mm_h=8.0, cloud_water_kg_m2=1.0,
                    temperature_k=285.0)


class TestForecastHorizonBoundaries:
    def test_zero_lead_is_exactly_truth(self):
        provider = ForecastProvider(ConstantWeatherProvider(WET))
        got = provider.forecast(10.0, 10.0, EPOCH, EPOCH)
        assert got == WET

    def test_negative_lead_is_exactly_truth(self):
        """valid_at before issued_at (hindcast) must not corrupt."""
        provider = ForecastProvider(ConstantWeatherProvider(WET))
        got = provider.forecast(
            10.0, 10.0, EPOCH, EPOCH - timedelta(hours=6)
        )
        assert got == WET

    def test_one_second_lead_is_already_a_forecast(self):
        """The truth/forecast boundary is exactly lead 0, not a window."""
        provider = ForecastProvider(
            ConstantWeatherProvider(WET), error_growth_per_day=5.0
        )
        later = EPOCH + timedelta(seconds=1)
        got = provider.forecast(10.0, 10.0, EPOCH, later)
        # Deterministic, but no longer the identity on truth in general:
        # the same call reproduces, a different issue time re-rolls.
        again = provider.forecast(10.0, 10.0, EPOCH, later)
        assert got == again

    def test_miss_probability_clamps_at_half(self):
        """At extreme leads the miss rate saturates at 50%, it never
        becomes certain that a wet truth is forecast dry."""
        provider = ForecastProvider(
            ConstantWeatherProvider(WET),
            error_growth_per_day=0.0,
            miss_probability_per_day=1.0,
        )
        valid = EPOCH + timedelta(days=5)  # unclamped miss_p would be 5.0
        misses = sum(
            provider.forecast(float(lat), float(lon), EPOCH, valid)
            .rain_rate_mm_h == 0.0
            for lat in range(-40, 40, 8)
            for lon in range(-100, 100, 10)
        )
        total = len(range(-40, 40, 8)) * len(range(-100, 100, 10))
        assert 0.35 < misses / total < 0.65


class TestEmptyCellGrids:
    def test_epoch_with_no_cells_samples_dry(self):
        field = RainCellField(seed=3)
        when = EPOCH + timedelta(hours=3)
        epoch = int((when - datetime(2000, 1, 1)).total_seconds() // (6 * 3600))
        # Force every epoch the sample scans to be empty.
        for ep in range(epoch - 3, epoch + 1):
            field._epoch_cells[ep] = []
        sample = field.sample(20.0, 20.0, when)
        assert sample.rain_rate_mm_h == 0.0
        # Background cloud and temperature still well-formed.
        assert 0.0 <= sample.cloud_water_kg_m2 <= 6.0
        assert 250.0 < sample.temperature_k < 300.0

    def test_relevant_cells_empty_epoch_returns_empty(self):
        field = RainCellField(seed=3)
        field._epoch_cells[123456] = []
        assert field._relevant_cells(0.0, 0.0, 123456) == []

    def test_zero_intensity_field_never_rains(self):
        field = RainCellField(seed=3, intensity_scale=0.0)
        for hours in (0, 6, 12, 48):
            sample = field.sample(
                10.0, 10.0, EPOCH + timedelta(hours=hours)
            )
            assert sample.rain_rate_mm_h == 0.0


class TestAlwaysClearSkip:
    """PR-6's weather-loop skip: a provider flagged ``always_clear`` lets
    the pricing kernel bypass the per-station weather oracle entirely.
    The skip must be invisible in the output."""

    def _scheduler(self, weather):
        tles = synthetic_leo_constellation(8, EPOCH, seed=21)
        sats = [Satellite(tle=t, chunk_size_gb=0.5) for t in tles]
        for sat in sats:
            sat.generate_data(EPOCH - timedelta(hours=2), 7200.0)
        return DownlinkScheduler(
            sats, satnogs_like_network(20, seed=13), LatencyValue(),
            weather=weather,
        )

    def test_flag_present_on_clear_sky_only(self):
        assert ClearSkyProvider.always_clear is True
        assert getattr(ConstantWeatherProvider(WET), "always_clear",
                       False) is False
        # Wrapping in the cache hides the flag (the cache cannot promise
        # its inner provider is clear): the skip is then simply not taken.
        wrapped = QuantizedWeatherCache(ClearSkyProvider())
        assert getattr(wrapped, "always_clear", False) is False

    def test_skip_produces_identical_graphs(self):
        """ClearSky (skip taken) == explicit zero-weather provider (skip
        not taken), edge for edge."""
        zero = ConstantWeatherProvider(WeatherSample(0.0, 0.0, 283.0))
        skipping = self._scheduler(ClearSkyProvider())
        looping = self._scheduler(zero)
        compared = 0
        for minutes in range(0, 120, 10):
            when = EPOCH + timedelta(minutes=minutes)
            ga = skipping.contact_graph(when)
            gb = looping.contact_graph(when)
            assert len(ga.edges) == len(gb.edges)
            for ea, eb in zip(ga.edges, gb.edges):
                assert ea == eb
            compared += len(ga.edges)
        assert compared > 0

    def test_cached_clear_sky_still_matches(self):
        """Losing the flag through the cache changes the code path, not
        the schedule."""
        bare = self._scheduler(ClearSkyProvider())
        cached = self._scheduler(QuantizedWeatherCache(ClearSkyProvider()))
        when = EPOCH + timedelta(minutes=30)
        ga = bare.contact_graph(when)
        gb = cached.contact_graph(when)
        assert len(ga.edges) == len(gb.edges)
        for ea, eb in zip(ga.edges, gb.edges):
            assert ea == eb
