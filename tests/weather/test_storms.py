"""Advected storm tracks: determinism, kinematics, knobs, composition."""

import subprocess
import sys
from datetime import datetime, timedelta

import pytest

from repro.weather.cells import RainCellField, WeatherSample, _ORIGIN
from repro.weather.provider import ConstantWeatherProvider, QuantizedWeatherCache
from repro.weather.storms import StormCell, StormField, StormWeatherProvider

WHEN = datetime(2020, 6, 3, 12, 0)


def _sample_grid(field: StormField, when=WHEN):
    return [
        field.storm_at(lat, lon, when)
        for lat in (-60.0, -20.0, 0.0, 20.0, 60.0)
        for lon in (-150.0, -60.0, 0.0, 60.0, 150.0)
    ]


class TestStormCell:
    def _cell(self, **overrides) -> StormCell:
        base = dict(
            birth_lat_deg=40.0, birth_lon_deg=-30.0, birth_time_s=1000.0,
            lifetime_s=24 * 3600.0, radius_km=400.0, peak_rain_mm_h=30.0,
            zonal_speed_km_h=40.0, meridional_speed_km_h=5.0,
        )
        base.update(overrides)
        return StormCell(**base)

    def test_center_moves_east_for_positive_zonal_speed(self):
        cell = self._cell()
        lat0, lon0 = cell.center_at(cell.birth_time_s)
        lat1, lon1 = cell.center_at(cell.birth_time_s + 6 * 3600.0)
        assert lon1 > lon0
        assert lat1 > lat0  # poleward drift in the northern hemisphere

    def test_center_longitude_wraps(self):
        cell = self._cell(birth_lon_deg=179.5)
        _, lon = cell.center_at(cell.birth_time_s + 24 * 3600.0)
        assert -180.0 <= lon <= 180.0

    def test_envelope_trapezoid(self):
        cell = self._cell()
        assert cell.envelope_at(cell.birth_time_s - 1.0) == 0.0
        assert cell.envelope_at(cell.birth_time_s + cell.lifetime_s + 1.0) == 0.0
        mid = cell.birth_time_s + cell.lifetime_s / 2.0
        assert cell.envelope_at(mid) == 1.0
        ramp_frac = cell.envelope_at(
            cell.birth_time_s + 0.1 * cell.lifetime_s
        )
        assert 0.0 < ramp_frac < 1.0

    def test_footprint_flat_core_and_bounded_support(self):
        cell = self._cell()
        mid = cell.birth_time_s + cell.lifetime_s / 2.0
        clat, clon = cell.center_at(mid)
        at_core = cell.footprint_at(clat, clon, mid)
        near_core = cell.footprint_at(clat + 1.0, clon, mid)
        assert at_core == 1.0
        # Super-Gaussian: barely attenuated ~100 km inside the core.
        assert near_core > 0.9
        # Hard zero beyond 2.5 radii.
        far = cell.footprint_at(clat + 20.0, clon, mid)
        assert far == 0.0


class TestStormFieldDeterminism:
    def test_same_seed_same_storms(self):
        a = _sample_grid(StormField(seed=99, rate=4.0))
        b = _sample_grid(StormField(seed=99, rate=4.0))
        assert a == b

    def test_different_seed_different_storms(self):
        a = _sample_grid(StormField(seed=99, rate=4.0))
        b = _sample_grid(StormField(seed=100, rate=4.0))
        assert a != b

    def test_evaluation_order_is_irrelevant(self):
        field = StormField(seed=5, rate=4.0)
        later = field.storm_at(30.0, 10.0, WHEN + timedelta(hours=30))
        earlier = field.storm_at(30.0, 10.0, WHEN)
        fresh = StormField(seed=5, rate=4.0)
        assert fresh.storm_at(30.0, 10.0, WHEN) == earlier
        assert fresh.storm_at(
            30.0, 10.0, WHEN + timedelta(hours=30)
        ) == later

    def test_bit_reproducible_across_processes(self):
        """The acceptance criterion: same (seed, knobs) in a separate
        interpreter produces the identical storm process."""
        code = (
            "from datetime import datetime\n"
            "from repro.weather.storms import StormField\n"
            "f = StormField(seed=42, rate=3.0, speed_scale=1.5)\n"
            "vals = [f.storm_at(lat, lon, datetime(2020, 6, 3, 12))\n"
            "        for lat in (-60., -20., 0., 20., 60.)\n"
            "        for lon in (-150., -60., 0., 60., 150.)]\n"
            "print(repr(vals))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            check=True,
        ).stdout.strip()
        here = repr(_sample_grid(StormField(seed=42, rate=3.0,
                                            speed_scale=1.5)))
        assert out == here

    def test_cell_cache_eviction_does_not_change_results(self):
        field = StormField(seed=7, rate=2.0)
        want = field.storm_at(30.0, 10.0, WHEN)
        # Touch > 16 distinct epochs to force evictions, then re-ask.
        for day in range(25):
            field.storm_at(0.0, 0.0, _ORIGIN + timedelta(days=day))
        assert field.storm_at(30.0, 10.0, WHEN) == want


class TestStormFieldKnobs:
    def test_rate_zero_means_no_storms(self):
        field = StormField(seed=3, rate=0.0)
        for day in range(10):
            when = WHEN + timedelta(days=day)
            assert field.storm_at(20.0, 20.0, when) == (0.0, 0.0)

    def test_rate_scales_storm_count(self):
        low = StormField(seed=3, rate=0.5)
        high = StormField(seed=3, rate=5.0)
        count = lambda f: sum(  # noqa: E731
            len(f._cells_for_epoch(ep)) for ep in range(30)
        )
        assert count(high) > count(low)

    def test_speed_scale_moves_tracks_faster(self):
        slow = StormField(seed=3, rate=2.0, speed_scale=0.1)
        fast = StormField(seed=3, rate=2.0, speed_scale=3.0)
        for s, f in zip(slow._cells_for_epoch(0), fast._cells_for_epoch(0)):
            assert abs(f.zonal_speed_km_h) > abs(s.zonal_speed_km_h)

    def test_negative_knobs_rejected(self):
        with pytest.raises(ValueError):
            StormField(rate=-0.1)
        with pytest.raises(ValueError):
            StormField(speed_scale=-1.0)
        with pytest.raises(ValueError):
            StormField(intensity_scale=-1.0)

    def test_storms_are_heavy_rain(self):
        """Somewhere under some storm core it rains storm-hard (>15 mm/h,
        the spawn floor), which the stationary field essentially never
        produces at a point."""
        field = StormField(seed=11, rate=4.0)
        peak = 0.0
        for ep in range(5):
            for cell in field._cells_for_epoch(ep):
                mid = cell.birth_time_s + cell.lifetime_s / 2.0
                lat, lon = cell.center_at(mid)
                when = _ORIGIN + timedelta(seconds=mid)
                peak = max(peak, field.storm_at(lat, lon, when)[0])
        assert peak > 15.0


class TestStormWeatherProvider:
    def test_zero_contribution_returns_base_sample_object(self):
        base = ConstantWeatherProvider(WeatherSample(1.0, 0.5, 280.0))
        provider = StormWeatherProvider(base, StormField(seed=3, rate=0.0))
        sample = provider.sample(10.0, 10.0, WHEN)
        assert sample is base.sample(10.0, 10.0, WHEN) or sample == base.sample(
            10.0, 10.0, WHEN
        )
        assert sample.rain_rate_mm_h == 1.0

    def test_composition_is_additive_under_a_storm(self):
        field = StormField(seed=11, rate=4.0)
        # Find a wet spot under some storm.
        spot = None
        for cell in field._cells_for_epoch(0):
            mid = cell.birth_time_s + cell.lifetime_s / 2.0
            lat, lon = cell.center_at(mid)
            when = _ORIGIN + timedelta(seconds=mid)
            if field.storm_at(lat, lon, when)[0] > 0.0:
                spot = (lat, lon, when)
                break
        assert spot is not None
        lat, lon, when = spot
        base = ConstantWeatherProvider(WeatherSample(2.0, 0.3, 285.0))
        provider = StormWeatherProvider(base, field)
        combined = provider.sample(lat, lon, when)
        rain, _cloud = field.storm_at(lat, lon, when)
        assert combined.rain_rate_mm_h == pytest.approx(2.0 + rain)
        assert combined.temperature_k == 285.0

    def test_cloud_clamped(self):
        base = ConstantWeatherProvider(WeatherSample(0.0, 5.9, 285.0))
        provider = StormWeatherProvider(
            base, StormField(seed=11, rate=6.0, intensity_scale=10.0)
        )
        for day in range(5):
            for lat in (-40.0, 0.0, 40.0):
                sample = provider.sample(
                    lat, 0.0, WHEN + timedelta(days=day)
                )
                assert sample.cloud_water_kg_m2 <= 6.0

    def test_wraps_in_quantized_cache(self):
        inner = StormWeatherProvider(
            RainCellField(seed=3), StormField(seed=17, rate=2.0)
        )
        cached = QuantizedWeatherCache(inner)
        a = cached.sample(30.0, 10.0, WHEN)
        b = cached.sample(30.0, 10.0, WHEN)
        assert a == b
        assert cached.hits >= 1

    def test_standalone_provider_protocol(self):
        field = StormField(seed=17, rate=2.0)
        sample = field.sample(45.0, 5.0, WHEN)
        assert isinstance(sample, WeatherSample)
        assert sample.temperature_k < 288.0  # latitude-cooled
