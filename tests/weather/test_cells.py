"""Tests for the rain-cell weather field."""

from datetime import datetime, timedelta

import pytest

from repro.weather.cells import RainCellField, WeatherSample, haversine_km

EPOCH = datetime(2020, 6, 1)


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_km(47.0, 8.0, 47.0, 8.0) == 0.0

    def test_known_distance(self):
        # London -> Paris ~ 344 km.
        assert haversine_km(51.5074, -0.1278, 48.8566, 2.3522) == pytest.approx(
            344.0, abs=10.0
        )

    def test_antipodal(self):
        d = haversine_km(0.0, 0.0, 0.0, 180.0)
        assert d == pytest.approx(3.14159265 * 6371.0, rel=1e-3)

    def test_symmetry(self):
        assert haversine_km(10.0, 20.0, -30.0, 140.0) == pytest.approx(
            haversine_km(-30.0, 140.0, 10.0, 20.0)
        )


class TestDeterminism:
    def test_same_seed_same_weather(self):
        a = RainCellField(seed=5)
        b = RainCellField(seed=5)
        for hours in (0, 7, 31):
            when = EPOCH + timedelta(hours=hours)
            assert a.sample(47.0, 8.0, when) == b.sample(47.0, 8.0, when)

    def test_different_seeds_differ_somewhere(self):
        a = RainCellField(seed=1)
        b = RainCellField(seed=2)
        diffs = 0
        for hours in range(0, 200, 5):
            when = EPOCH + timedelta(hours=hours)
            if a.sample(47.0, 8.0, when) != b.sample(47.0, 8.0, when):
                diffs += 1
        assert diffs > 0

    def test_query_order_does_not_matter(self):
        a = RainCellField(seed=9)
        b = RainCellField(seed=9)
        t1, t2 = EPOCH + timedelta(hours=2), EPOCH + timedelta(hours=50)
        r1_then_r2 = (a.sample(47.0, 8.0, t1), a.sample(-30.0, 150.0, t2))
        r2_then_r1 = (b.sample(-30.0, 150.0, t2), b.sample(47.0, 8.0, t1))
        assert r1_then_r2[0] == r2_then_r1[1]
        assert r1_then_r2[1] == r2_then_r1[0]


class TestStatistics:
    @pytest.fixture(scope="class")
    def month_samples(self):
        field = RainCellField(seed=3)
        sites = [(1.0, 103.0), (47.0, 8.0), (51.0, 0.0), (-33.0, 151.0), (75.0, 20.0)]
        samples = []
        for lat, lon in sites:
            for h in range(0, 720, 4):
                samples.append(
                    (lat, field.sample(lat, lon, EPOCH + timedelta(hours=h)))
                )
        return samples

    def test_wet_fraction_plausible(self, month_samples):
        wet = sum(1 for _lat, s in month_samples if s.is_raining)
        fraction = wet / len(month_samples)
        assert 0.02 < fraction < 0.35

    def test_rain_rates_non_negative_and_bounded(self, month_samples):
        for _lat, s in month_samples:
            assert s.rain_rate_mm_h >= 0.0
            assert s.rain_rate_mm_h < 300.0

    def test_cloud_water_bounded(self, month_samples):
        for _lat, s in month_samples:
            assert 0.0 <= s.cloud_water_kg_m2 <= 6.0

    def test_polar_colder_than_tropics(self, month_samples):
        tropics = [s.temperature_k for lat, s in month_samples if abs(lat) < 10]
        polar = [s.temperature_k for lat, s in month_samples if abs(lat) > 70]
        assert min(tropics) > max(polar)

    def test_temporal_correlation(self):
        """Weather 5 minutes apart is almost always the same regime."""
        field = RainCellField(seed=3)
        agreements = 0
        checks = 0
        for h in range(0, 240, 3):
            t = EPOCH + timedelta(hours=h)
            a = field.sample(47.0, 8.0, t)
            b = field.sample(47.0, 8.0, t + timedelta(minutes=5))
            checks += 1
            if a.is_raining == b.is_raining:
                agreements += 1
        assert agreements / checks > 0.9


class TestIntensityScale:
    def test_zero_scale_disables_rain(self):
        field = RainCellField(seed=3, intensity_scale=0.0)
        for h in range(0, 100, 5):
            s = field.sample(47.0, 8.0, EPOCH + timedelta(hours=h))
            assert s.rain_rate_mm_h == 0.0

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            RainCellField(intensity_scale=-1.0)

    def test_scale_amplifies(self):
        nominal = RainCellField(seed=3, intensity_scale=1.0)
        stormy = RainCellField(seed=3, intensity_scale=3.0)
        total_nominal = total_stormy = 0.0
        for h in range(0, 720, 6):
            t = EPOCH + timedelta(hours=h)
            total_nominal += nominal.sample(47.0, 8.0, t).rain_rate_mm_h
            total_stormy += stormy.sample(47.0, 8.0, t).rain_rate_mm_h
        assert total_stormy == pytest.approx(3.0 * total_nominal, rel=1e-6)


class TestWeatherSample:
    def test_is_raining_threshold(self):
        assert not WeatherSample(0.05, 0.1).is_raining
        assert WeatherSample(0.5, 0.1).is_raining
