"""Tests for forecast providers and error growth."""

from datetime import datetime, timedelta

import pytest

from repro.weather.cells import RainCellField, WeatherSample
from repro.weather.forecast import ForecastProvider, PerfectForecast
from repro.weather.provider import ConstantWeatherProvider

EPOCH = datetime(2020, 6, 1)


class TestPerfectForecast:
    def test_reveals_truth(self):
        truth = RainCellField(seed=4)
        oracle = PerfectForecast(truth)
        valid = EPOCH + timedelta(hours=36)
        assert oracle.forecast(47.0, 8.0, EPOCH, valid) == truth.sample(
            47.0, 8.0, valid
        )


class TestForecastProvider:
    def test_nowcast_is_truth(self):
        truth = RainCellField(seed=4)
        fc = ForecastProvider(truth)
        assert fc.forecast(47.0, 8.0, EPOCH, EPOCH) == truth.sample(47.0, 8.0, EPOCH)

    def test_deterministic(self):
        truth = RainCellField(seed=4)
        a = ForecastProvider(truth, seed=7)
        b = ForecastProvider(RainCellField(seed=4), seed=7)
        valid = EPOCH + timedelta(hours=30)
        assert a.forecast(47.0, 8.0, EPOCH, valid) == b.forecast(
            47.0, 8.0, EPOCH, valid
        )

    def test_error_grows_with_lead_time(self):
        """Longer leads deviate more from truth on average."""
        truth = ConstantWeatherProvider(WeatherSample(10.0, 0.5))
        fc = ForecastProvider(truth, seed=1)
        def mean_abs_error(lead_h):
            errors = []
            for k in range(60):
                issued = EPOCH + timedelta(hours=k)
                predicted = fc.forecast(40.0, -100.0 + k, issued,
                                        issued + timedelta(hours=lead_h))
                errors.append(abs(predicted.rain_rate_mm_h - 10.0))
            return sum(errors) / len(errors)

        assert mean_abs_error(48.0) > mean_abs_error(6.0)

    def test_short_lead_accurate(self):
        truth = ConstantWeatherProvider(WeatherSample(10.0, 0.5))
        fc = ForecastProvider(truth, seed=1, miss_probability_per_day=0.0)
        predicted = fc.forecast(40.0, -100.0, EPOCH, EPOCH + timedelta(hours=1))
        assert predicted.rain_rate_mm_h == pytest.approx(10.0, rel=0.5)

    def test_misses_happen_at_long_lead(self):
        truth = ConstantWeatherProvider(WeatherSample(10.0, 0.5))
        fc = ForecastProvider(truth, seed=1, miss_probability_per_day=0.3)
        misses = 0
        for k in range(200):
            predicted = fc.forecast(
                40.0, -170.0 + k, EPOCH, EPOCH + timedelta(hours=36)
            )
            if predicted.rain_rate_mm_h == 0.0:
                misses += 1
        assert misses > 5  # ~45% expected

    def test_invalid_parameters(self):
        truth = RainCellField(seed=4)
        with pytest.raises(ValueError):
            ForecastProvider(truth, error_growth_per_day=-0.1)
        with pytest.raises(ValueError):
            ForecastProvider(truth, miss_probability_per_day=1.5)

    def test_temperature_passes_through(self):
        truth = ConstantWeatherProvider(WeatherSample(0.0, 0.1, temperature_k=250.0))
        fc = ForecastProvider(truth, seed=1)
        predicted = fc.forecast(40.0, -100.0, EPOCH, EPOCH + timedelta(hours=24))
        assert predicted.temperature_k == 250.0
