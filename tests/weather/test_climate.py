"""Tests for climate-zone banding."""

import pytest

from repro.weather.climate import (
    ALL_ZONES,
    ZONE_BANDS,
    climate_zone_for_latitude,
)


class TestZoneLookup:
    def test_tropics(self):
        assert climate_zone_for_latitude(0.0).name == "tropical"
        assert climate_zone_for_latitude(-10.0).name == "tropical"

    def test_temperate(self):
        assert climate_zone_for_latitude(47.0).name == "temperate"
        assert climate_zone_for_latitude(-47.0).name == "temperate"

    def test_polar(self):
        assert climate_zone_for_latitude(85.0).name == "polar"

    def test_hemispheric_symmetry(self):
        for lat in (5.0, 25.0, 45.0, 60.0, 80.0):
            assert climate_zone_for_latitude(lat) is climate_zone_for_latitude(-lat)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            climate_zone_for_latitude(91.0)


class TestZoneParameters:
    def test_tropics_rain_hardest(self):
        tropical = climate_zone_for_latitude(0.0)
        polar = climate_zone_for_latitude(85.0)
        assert tropical.mean_rain_rate_mm_h > polar.mean_rain_rate_mm_h

    def test_all_parameters_positive(self):
        for zone in ALL_ZONES:
            assert zone.cell_density_per_mm_km2 > 0
            assert zone.mean_rain_rate_mm_h > 0
            assert zone.mean_cell_radius_km > 0
            assert zone.mean_cell_lifetime_h > 0
            assert zone.background_cloud_kg_m2 >= 0

    def test_bands_cover_the_globe(self):
        edges = sorted((lo, hi) for lo, hi, _z in ZONE_BANDS)
        assert edges[0][0] == -90.0
        assert edges[-1][1] == 90.0
        for (lo1, hi1), (lo2, hi2) in zip(edges, edges[1:]):
            assert hi1 == lo2  # contiguous, non-overlapping

    def test_band_zones_match_lookup(self):
        for lo, hi, zone in ZONE_BANDS:
            mid = (lo + hi) / 2.0
            assert climate_zone_for_latitude(mid).name == zone.name
