"""Tests for the parallel sweep engine: shard, checkpoint, merge, resume.

The load-bearing property is byte-identity: the merged ``repro-sweep/1``
report must serialize to the same bytes whether the grid ran serially,
across a process pool, or through a kill/resume cycle.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.scenarios import ScenarioSpec
from repro.runners import (
    CELL_SCHEMA,
    SWEEP_MANIFEST_SCHEMA,
    SWEEP_SCHEMA,
    SweepCell,
    SweepRunner,
    merge_cells,
    report_from_payload,
    run_specs,
    shard_cells,
    sweep_report_json,
)
from repro.runners.sweep import checkpoint_path, load_checkpoint, write_checkpoint

DURATION_S = 900.0


def tiny_spec(fleet_seed: int = 7, **kwargs) -> ScenarioSpec:
    return ScenarioSpec.dgs(
        num_satellites=2, num_stations=5, duration_s=DURATION_S,
        fleet_seed=fleet_seed, **kwargs,
    )


def tiny_grid(n: int = 4) -> list[SweepCell]:
    return [SweepCell(f"cell{i}", tiny_spec(fleet_seed=7 + i))
            for i in range(n)]


class TestSweepCell:
    def test_config_hash_is_stable(self):
        a, b = SweepCell("a", tiny_spec()), SweepCell("b", tiny_spec())
        assert a.config_sha256() == b.config_sha256()  # label is not identity

    def test_config_hash_separates_specs(self):
        assert (SweepCell("a", tiny_spec(fleet_seed=7)).config_sha256()
                != SweepCell("a", tiny_spec(fleet_seed=8)).config_sha256())

    def test_cost_scales_with_population_and_steps(self):
        small = SweepCell("s", tiny_spec())
        big = SweepCell("b", ScenarioSpec.dgs(
            num_satellites=4, num_stations=5, duration_s=2 * DURATION_S,
        ))
        assert big.cost_estimate() == pytest.approx(4 * small.cost_estimate())

    def test_baseline_cost_uses_station_count(self):
        cell = SweepCell("b", ScenarioSpec.baseline(
            num_satellites=2, duration_s=DURATION_S, station_count=5,
        ))
        steps = int(DURATION_S // cell.spec.step_s)
        assert cell.cost_estimate() == pytest.approx(2 * 5 * steps)

    def test_lookahead_schedulers_cost_more_than_live(self):
        """Horizon/planned/beam cells rebuild graphs beyond raw steps."""
        live = SweepCell("l", tiny_spec()).cost_estimate()
        horizon = SweepCell("h", tiny_spec(
            scheduler="horizon", horizon_steps=10,
        )).cost_estimate()
        planned = SweepCell("p", tiny_spec(
            execution_mode="planned",
        )).cost_estimate()
        beams = SweepCell("bf", tiny_spec(
            scheduler="beamforming", beams=3,
        )).cost_estimate()
        assert horizon > 2 * live
        assert planned > 2 * live
        assert beams == pytest.approx(3 * live)


class TestSharding:
    def test_deterministic(self):
        cells = tiny_grid(7)
        assert shard_cells(cells, 3) == shard_cells(list(reversed(cells)), 3)

    def test_partition_is_exact(self):
        cells = tiny_grid(7)
        shards = shard_cells(cells, 3)
        flattened = [c.config_sha256() for shard in shards for c in shard]
        assert sorted(flattened) == sorted(c.config_sha256() for c in cells)
        assert len(flattened) == len(set(flattened))

    def test_more_workers_than_cells_drops_empty_shards(self):
        shards = shard_cells(tiny_grid(2), 8)
        assert len(shards) == 2
        assert all(shard for shard in shards)

    def test_balances_heterogeneous_costs(self):
        cells = tiny_grid(2) + [
            SweepCell("heavy", ScenarioSpec.dgs(
                num_satellites=8, num_stations=5, duration_s=4 * DURATION_S,
            )),
        ]
        shards = shard_cells(cells, 2)
        heavy_shard = next(
            s for s in shards if any(c.label == "heavy" for c in s)
        )
        # LPT never co-locates the dominating cell with the whole remainder.
        assert len(heavy_shard) < len(cells)

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="workers"):
            shard_cells(tiny_grid(2), 0)


class TestSpecSerialization:
    def test_round_trip_preserves_identity(self):
        spec = tiny_spec(weather_intensity=2.0, scheduler="horizon",
                         horizon_steps=5, fault_intensity=0.25)
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.config_sha256() == spec.config_sha256()

    def test_from_dict_rejects_unknown_keys(self):
        raw = tiny_spec().to_dict()
        raw["warp_drive"] = True
        with pytest.raises(ValueError, match="warp_drive"):
            ScenarioSpec.from_dict(raw)

    def test_contact_windows_knob_round_trips_and_hashes(self):
        """The window-index knob is spec identity: serialized + hashed."""
        on = tiny_spec()
        off = tiny_spec(contact_windows=False)
        assert on.to_dict()["contact_windows"] is True
        assert off.to_dict()["contact_windows"] is False
        clone = ScenarioSpec.from_dict(off.to_dict())
        assert clone == off
        assert clone.config_sha256() == off.config_sha256()
        assert on.config_sha256() != off.config_sha256()

    def test_derive_seeds_is_deterministic(self):
        spec = tiny_spec()
        assert spec.derive_seeds(1).seeds() == spec.derive_seeds(1).seeds()
        assert spec.derive_seeds(1).seeds() != spec.derive_seeds(2).seeds()

    def test_derive_seeds_keyed_by_seed_free_identity(self):
        # Two cells differing only in their seed knobs share one derived
        # seed set -- the sweep seed controls the whole grid's RNG.
        a = tiny_spec(fleet_seed=7).derive_seeds(99)
        b = tiny_spec(fleet_seed=8).derive_seeds(99)
        assert a.seeds() == b.seeds()
        c = tiny_spec(fleet_seed=7, weather_intensity=2.0).derive_seeds(99)
        assert c.seeds() != a.seeds()


class TestCheckpoints:
    def _entry(self, cell: SweepCell) -> dict:
        return {
            "cell": {
                "schema": CELL_SCHEMA,
                "label": cell.label,
                "config_sha256": cell.config_sha256(),
                "spec": cell.spec.to_dict(),
                "report": {"delivered_bits": 1.0},
            },
            "runtime": {"wall_s": 0.1, "shard": 0},
        }

    def test_round_trip(self, tmp_path):
        cell = tiny_grid(1)[0]
        entry = self._entry(cell)
        write_checkpoint(str(tmp_path), entry)
        assert load_checkpoint(str(tmp_path), cell) == entry

    def test_missing_returns_none(self, tmp_path):
        assert load_checkpoint(str(tmp_path), tiny_grid(1)[0]) is None

    def test_corrupt_returns_none(self, tmp_path):
        cell = tiny_grid(1)[0]
        path = checkpoint_path(str(tmp_path), cell.config_sha256())
        os.makedirs(os.path.dirname(path))
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{truncated")
        assert load_checkpoint(str(tmp_path), cell) is None

    def test_edited_spec_invalidates_checkpoint(self, tmp_path):
        cell = tiny_grid(1)[0]
        entry = self._entry(cell)
        entry["cell"]["spec"]["duration_s"] = 123.0  # grid was edited
        write_checkpoint(str(tmp_path), entry)
        assert load_checkpoint(str(tmp_path), cell) is None


class TestMerge:
    def test_orders_by_config_hash(self):
        entries = [
            {"cell": {"config_sha256": "bb", "label": "late"}},
            {"cell": {"config_sha256": "aa", "label": "early"}},
        ]
        merged = merge_cells(entries)
        assert merged["schema"] == SWEEP_SCHEMA
        assert merged["cell_count"] == 2
        assert [c["label"] for c in merged["cells"]] == ["early", "late"]

    def test_json_is_canonical(self):
        merged = merge_cells([])
        assert sweep_report_json(merged) == sweep_report_json(
            json.loads(sweep_report_json(merged))
        )


class TestRunnerValidation:
    def test_empty_grid(self):
        with pytest.raises(ValueError, match="empty"):
            SweepRunner([])

    def test_duplicate_labels(self):
        cells = [SweepCell("x", tiny_spec(7)), SweepCell("x", tiny_spec(8))]
        with pytest.raises(ValueError, match="duplicate cell labels"):
            SweepRunner(cells)

    def test_duplicate_specs(self):
        cells = [SweepCell("a", tiny_spec()), SweepCell("b", tiny_spec())]
        with pytest.raises(ValueError, match="duplicate spec"):
            SweepRunner(cells)

    def test_trace_requires_run_dir(self):
        with pytest.raises(ValueError, match="run_dir"):
            SweepRunner(tiny_grid(1), trace=True)

    def test_resume_requires_run_dir(self):
        with pytest.raises(ValueError, match="run_dir"):
            SweepRunner(tiny_grid(1)).run(resume=True)


@pytest.fixture(scope="module")
def serial_result(tmp_path_factory):
    run_dir = tmp_path_factory.mktemp("serial")
    return SweepRunner(tiny_grid(), run_dir=str(run_dir), workers=0).run()


class TestEquivalence:
    def test_parallel_matches_serial_bytes(self, serial_result):
        parallel = SweepRunner(tiny_grid(), workers=2).run()
        assert parallel.to_json() == serial_result.to_json()

    def test_shared_ephemeris_matches_serial_bytes(self, serial_result):
        shared = SweepRunner(tiny_grid(), workers=2,
                             share_ephemeris=True).run()
        assert shared.to_json() == serial_result.to_json()

    def test_resume_matches_serial_bytes(self, serial_result, tmp_path):
        # Simulate a killed sweep: two of four checkpoints survive.
        grid = tiny_grid()
        run_dir = str(tmp_path / "resumed")
        for cell in grid[:2]:
            entry = load_checkpoint(
                os.path.dirname(serial_result.report_path), cell
            )
            write_checkpoint(run_dir, entry)
        resumed = SweepRunner(grid, run_dir=run_dir, workers=2).run(
            resume=True
        )
        assert resumed.skipped == 2
        assert resumed.completed == 2
        assert resumed.to_json() == serial_result.to_json()
        with open(resumed.report_path, encoding="utf-8") as handle:
            assert handle.read() == serial_result.to_json()

    def test_fresh_run_ignores_checkpoints_without_resume(self, tmp_path):
        grid = tiny_grid(2)
        run_dir = str(tmp_path)
        first = SweepRunner(grid, run_dir=run_dir).run()
        again = SweepRunner(grid, run_dir=run_dir).run(resume=False)
        assert again.skipped == 0
        assert again.to_json() == first.to_json()


class TestSharedEphemerisExport:
    def test_fleet_identical_cells_share_one_block(self):
        from repro.runners.sweep import _export_shared_ephemeris

        cells = [
            SweepCell("full", tiny_spec(station_fraction=1.0)),
            SweepCell("half", tiny_spec(station_fraction=0.5)),
            SweepCell("stream", tiny_spec(ephemeris_window_steps=8)),
        ]
        handles, blocks = _export_shared_ephemeris(cells)
        try:
            # Two cells share one fleet; the streaming cell opts out.
            assert len(handles) == 1
            assert len(blocks) == 1
        finally:
            for shm in blocks:
                shm.close()
                shm.unlink()

    def test_longest_horizon_wins(self):
        from repro.runners.sweep import _export_shared_ephemeris

        cells = [
            SweepCell("short", tiny_spec()),
            SweepCell("long", ScenarioSpec.dgs(
                num_satellites=2, num_stations=5,
                duration_s=4 * DURATION_S, fleet_seed=7,
            )),
        ]
        handles, blocks = _export_shared_ephemeris(cells)
        try:
            assert len(handles) == 1
            (handle,) = handles.values()
            shape = handle[1]
            assert shape[0] == int(4 * DURATION_S // 60.0)
        finally:
            for shm in blocks:
                shm.close()
                shm.unlink()


class TestArtifacts:
    def test_report_schema_and_payloads(self, serial_result):
        merged = serial_result.merged
        assert merged["schema"] == SWEEP_SCHEMA
        assert merged["cell_count"] == 4
        hashes = [c["config_sha256"] for c in merged["cells"]]
        assert hashes == sorted(hashes)
        for payload in merged["cells"]:
            assert payload["schema"] == CELL_SCHEMA
            assert payload["report"]["stage_timings"] == {}
            assert payload["seeds"]["fleet"] == payload["spec"]["fleet_seed"]
            report = report_from_payload(payload)
            assert report.generated_bits > 0

    def test_manifest_records_runtime_facts(self, serial_result):
        manifest = serial_result.manifest
        assert manifest["schema"] == SWEEP_MANIFEST_SCHEMA
        assert manifest["workers"] == 0
        assert manifest["cell_count"] == 4
        assert manifest["completed_cells"] == 4
        assert manifest["resumed_cells"] == 0
        assert [h for shard in manifest["shard_assignment"] for h in shard]
        for digest, cell in manifest["cells"].items():
            assert cell["wall_s"] > 0
            assert cell["shard"] == 0
            assert cell["resumed"] is False
            assert cell["cost_estimate"] > 0
            assert len(digest) == 64

    def test_checkpoints_on_disk(self, serial_result):
        run_dir = os.path.dirname(serial_result.report_path)
        for cell in tiny_grid():
            assert os.path.exists(
                checkpoint_path(run_dir, cell.config_sha256())
            )

    def test_traces_validate(self, tmp_path):
        from repro.obs import validate_trace_file

        grid = tiny_grid(2)
        runner = SweepRunner(grid, run_dir=str(tmp_path), trace=True)
        result = runner.run()
        assert result.manifest["traced"] is True
        for cell in grid:
            trace = tmp_path / "traces" / f"{cell.config_sha256()}.jsonl"
            assert validate_trace_file(str(trace)) > 0

    def test_trace_does_not_change_report_bytes(self, serial_result,
                                                tmp_path):
        traced = SweepRunner(
            tiny_grid(), run_dir=str(tmp_path), trace=True
        ).run()
        assert traced.to_json() == serial_result.to_json()


class TestRunSpecs:
    def test_returns_payloads_by_label(self):
        grid = tiny_grid(2)
        payloads = run_specs(grid)
        assert set(payloads) == {"cell0", "cell1"}
        assert payloads["cell0"]["label"] == "cell0"

    def test_sweep_seed_rewrites_cell_seeds(self):
        grid = [
            SweepCell("calm", tiny_spec(weather_intensity=1.0)),
            SweepCell("stormy", tiny_spec(weather_intensity=2.0)),
        ]
        seeded = SweepRunner(grid, workers=0, sweep_seed=5)
        derived = {cell.label: cell.spec.seeds() for cell in seeded.cells}
        assert derived["calm"] != grid[0].spec.seeds()
        assert derived["calm"] != derived["stormy"]

    def test_sweep_seed_collapses_seed_only_grids(self):
        # Cells distinguished only by their seed knobs become identical
        # once the sweep seed rewrites them; the runner must say so
        # rather than silently running one cell twice.
        with pytest.raises(ValueError, match="duplicate spec"):
            SweepRunner(tiny_grid(2), sweep_seed=5)


class TestNamedGrids:
    def test_build_grid_names(self):
        from repro.runners.grids import GRID_BUILDERS, build_grid

        for name in GRID_BUILDERS:
            cells = build_grid(name, 3600.0, 0.1)
            assert cells
            labels = [c.label for c in cells]
            assert len(labels) == len(set(labels))
            hashes = [c.config_sha256() for c in cells]
            assert len(hashes) == len(set(hashes))

    def test_build_grid_unknown_name(self):
        from repro.runners.grids import build_grid

        with pytest.raises(ValueError, match="unknown grid"):
            build_grid("nope", 3600.0, 0.1)

    def test_fig3_seed_grid_has_eight_cells(self):
        from repro.runners.grids import fig3_seed_grid

        cells = fig3_seed_grid(3600.0, 0.1)
        assert len(cells) == 8

    def test_grid_file_round_trip(self, tmp_path):
        from repro.runners.grids import cells_from_json, load_grid_file

        grid = tiny_grid(2)
        text = json.dumps([
            {"label": c.label, "spec": c.spec.to_dict()} for c in grid
        ])
        assert cells_from_json(text) == grid
        path = tmp_path / "grid.json"
        path.write_text(text, encoding="utf-8")
        assert load_grid_file(str(path)) == grid

    def test_grid_file_rejects_garbage(self):
        from repro.runners.grids import cells_from_json

        with pytest.raises(ValueError, match="non-empty"):
            cells_from_json("[]")
        with pytest.raises(ValueError, match="spec"):
            cells_from_json('[{"label": "x"}]')
