"""Tests for the ITU-R attenuation models (P.838 / P.839 / P.840 / P.676)."""

import pytest
from hypothesis import given, strategies as st

from repro.linkbudget.itu import (
    cloud_attenuation_db,
    cloud_specific_coefficient,
    gaseous_attenuation_db,
    rain_attenuation_db,
    rain_coefficients,
    rain_height_km,
    rain_specific_attenuation_db_km,
    slant_path_length_km,
)


class TestP838Coefficients:
    def test_10ghz_textbook_values(self):
        # P.838-3 at 10 GHz: kH ~ 0.01217, alphaH ~ 1.2571.
        k_h, a_h = rain_coefficients(10.0, "h")
        assert k_h == pytest.approx(0.01217, rel=0.1)
        assert a_h == pytest.approx(1.2571, rel=0.05)

    def test_horizontal_exceeds_vertical(self):
        # Raindrops are oblate: horizontal attenuation >= vertical.
        for f in (4.0, 8.2, 12.0, 20.0, 30.0):
            k_h, a_h = rain_coefficients(f, "h")
            k_v, a_v = rain_coefficients(f, "v")
            gamma_h = k_h * 25.0**a_h
            gamma_v = k_v * 25.0**a_v
            assert gamma_h >= gamma_v * 0.95

    def test_circular_between_h_and_v(self):
        k_h, _ = rain_coefficients(12.0, "h")
        k_v, _ = rain_coefficients(12.0, "v")
        k_c, _ = rain_coefficients(12.0, "circular")
        assert min(k_h, k_v) <= k_c <= max(k_h, k_v)

    @given(f=st.floats(min_value=1.0, max_value=100.0))
    def test_coefficients_physical(self, f):
        k, alpha = rain_coefficients(f)
        assert k > 0.0
        assert 0.4 < alpha < 1.8

    def test_out_of_range_frequency(self):
        with pytest.raises(ValueError):
            rain_coefficients(0.5)

    def test_unknown_polarization(self):
        with pytest.raises(ValueError):
            rain_coefficients(10.0, "diagonal")


class TestSpecificAttenuation:
    def test_zero_rain_zero_attenuation(self):
        assert rain_specific_attenuation_db_km(0.0, 12.0) == 0.0

    def test_increases_with_rain_rate(self):
        gammas = [
            rain_specific_attenuation_db_km(r, 12.0) for r in (1, 5, 25, 100)
        ]
        assert all(a < b for a, b in zip(gammas, gammas[1:]))

    def test_increases_with_frequency_below_100ghz(self):
        gammas = [rain_specific_attenuation_db_km(25.0, f) for f in (4, 8, 12, 20, 40)]
        assert all(a < b for a, b in zip(gammas, gammas[1:]))

    def test_xband_magnitude(self):
        # ~0.1-0.4 dB/km at 8.2 GHz in 25 mm/h rain.
        gamma = rain_specific_attenuation_db_km(25.0, 8.2)
        assert 0.05 < gamma < 0.6

    def test_negative_rain_rejected(self):
        with pytest.raises(ValueError):
            rain_specific_attenuation_db_km(-1.0, 12.0)


class TestRainHeight:
    def test_tropics_high(self):
        assert rain_height_km(0.0) == 5.0
        assert rain_height_km(10.0) == 5.0

    def test_decreases_poleward(self):
        assert rain_height_km(40.0) < rain_height_km(25.0)
        assert rain_height_km(-60.0) < rain_height_km(-30.0)

    def test_never_negative(self):
        for lat in range(-90, 91, 5):
            assert rain_height_km(float(lat)) >= 0.0

    def test_polar_south_zero(self):
        assert rain_height_km(-80.0) == 0.0


class TestSlantPath:
    def test_zenith_equals_height(self):
        assert slant_path_length_km(90.0, 4.0) == pytest.approx(4.0)

    def test_low_elevation_longer(self):
        assert slant_path_length_km(10.0, 4.0) > slant_path_length_km(45.0, 4.0)

    def test_grazing_clamped(self):
        # Below 5 deg the path is clamped to the 5 deg value.
        assert slant_path_length_km(1.0, 4.0) == slant_path_length_km(5.0, 4.0)

    def test_zero_height_zero_path(self):
        assert slant_path_length_km(30.0, 0.0) == 0.0


class TestRainAttenuationTotal:
    def test_zero_rain(self):
        assert rain_attenuation_db(0.0, 12.0, 30.0, 45.0) == 0.0

    def test_heavy_rain_ku_band_magnitude(self):
        # The paper quotes 10-25 dB rain fades at 10+ GHz: heavy tropical
        # rain at Ku band and low elevation should reach that range.
        att = rain_attenuation_db(50.0, 14.0, 10.0, 10.0)
        assert 5.0 < att < 40.0

    def test_xband_moderate(self):
        att = rain_attenuation_db(10.0, 8.2, 30.0, 45.0)
        assert 0.05 < att < 5.0

    def test_lower_elevation_attenuates_more(self):
        low = rain_attenuation_db(20.0, 12.0, 10.0, 45.0)
        high = rain_attenuation_db(20.0, 12.0, 80.0, 45.0)
        assert low > high

    @given(
        rain=st.floats(min_value=0.0, max_value=150.0),
        f=st.floats(min_value=1.0, max_value=50.0),
        el=st.floats(min_value=0.0, max_value=90.0),
        lat=st.floats(min_value=-89.0, max_value=89.0),
    )
    def test_non_negative_and_finite(self, rain, f, el, lat):
        att = rain_attenuation_db(rain, f, el, lat)
        assert att >= 0.0
        assert att < 1000.0


class TestCloudAttenuation:
    def test_zero_cloud(self):
        assert cloud_attenuation_db(0.0, 30.0, 45.0) == 0.0

    def test_coefficient_grows_with_frequency(self):
        coeffs = [cloud_specific_coefficient(f) for f in (5, 10, 20, 40)]
        assert all(a < b for a, b in zip(coeffs, coeffs[1:]))

    def test_30ghz_magnitude(self):
        # K_l(30 GHz, 0 C) ~ 0.4-0.9 dB/km per g/m^3.
        assert 0.2 < cloud_specific_coefficient(30.0) < 1.2

    def test_xband_small(self):
        # Clouds are nearly transparent at X band: < 1 dB even for heavy
        # cloud at low elevation.
        att = cloud_attenuation_db(1.0, 8.2, 10.0)
        assert att < 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            cloud_attenuation_db(-0.1, 8.2, 45.0)


class TestGaseousAttenuation:
    def test_water_vapour_line_peak(self):
        # The 22.3 GHz water line exceeds its neighbourhood.
        assert gaseous_attenuation_db(22.3, 90.0) > gaseous_attenuation_db(15.0, 90.0)
        assert gaseous_attenuation_db(22.3, 90.0) > gaseous_attenuation_db(30.0, 90.0)

    def test_xband_small(self):
        assert gaseous_attenuation_db(8.2, 90.0) < 0.1

    def test_elevation_scaling(self):
        assert gaseous_attenuation_db(8.2, 10.0) > gaseous_attenuation_db(8.2, 60.0)
