"""The soft decode-probability model around the MODCOD threshold."""

import numpy as np
import pytest

from repro.linkbudget.decode import (
    DEFAULT_SIGMA_DB,
    decode_probability,
    decode_probability_batch,
)


class TestDecodeProbability:
    def test_half_at_threshold(self):
        assert decode_probability(10.0, 10.0) == pytest.approx(0.5)

    def test_monotone_in_margin(self):
        probs = [
            decode_probability(10.0 + m, 10.0)
            for m in (-3.0, -1.0, 0.0, 1.0, 3.0)
        ]
        assert probs == sorted(probs)
        assert probs[0] < 0.01
        assert probs[-1] > 0.99

    def test_bounded(self):
        assert 0.0 <= decode_probability(-50.0, 10.0) <= 1.0
        assert 0.0 <= decode_probability(80.0, 10.0) <= 1.0

    def test_default_margin_gives_high_success(self):
        # The scheduler's 1 dB ACM margin under the default sigma.
        p = decode_probability(11.0, 10.0, DEFAULT_SIGMA_DB)
        assert 0.85 < p < 0.95

    def test_sigma_widens_the_shoulder(self):
        tight = decode_probability(10.5, 10.0, sigma_db=0.2)
        loose = decode_probability(10.5, 10.0, sigma_db=2.0)
        assert tight > loose  # same positive margin, more jitter = worse
        # And symmetric below threshold: more jitter = better.
        assert decode_probability(9.5, 10.0, sigma_db=2.0) > \
            decode_probability(9.5, 10.0, sigma_db=0.2)

    def test_nonpositive_sigma_rejected(self):
        with pytest.raises(ValueError):
            decode_probability(10.0, 10.0, sigma_db=0.0)
        with pytest.raises(ValueError):
            decode_probability(10.0, 10.0, sigma_db=-1.0)


class TestBatchParity:
    def test_batch_matches_scalar_bit_exactly(self):
        esn0 = np.linspace(-5.0, 25.0, 61)
        required = np.full_like(esn0, 10.0)
        batch = decode_probability_batch(esn0, required)
        scalar = np.array([
            decode_probability(float(e), 10.0) for e in esn0
        ])
        assert batch.shape == esn0.shape
        assert (batch == scalar).all()

    def test_broadcast_scalar_threshold(self):
        esn0 = np.array([[8.0, 10.0], [12.0, 14.0]])
        batch = decode_probability_batch(esn0, 10.0)
        assert batch.shape == (2, 2)
        assert batch[0, 1] == decode_probability(10.0, 10.0)
