"""Tests for the P.618 exceedance / availability extension."""

import pytest
from hypothesis import given, strategies as st

from repro.linkbudget.itu import (
    link_availability_percent,
    rain_attenuation_exceeded_db,
)


class TestExceedance:
    def test_deeper_fades_at_rarer_exceedance(self):
        args = (30.0, 14.0, 30.0, 47.0)
        a_001 = rain_attenuation_exceeded_db(*args, exceedance_percent=0.01)
        a_01 = rain_attenuation_exceeded_db(*args, exceedance_percent=0.1)
        a_1 = rain_attenuation_exceeded_db(*args, exceedance_percent=1.0)
        assert a_001 > a_01 > a_1 > 0.0

    def test_fades_grow_with_frequency(self):
        fades = [
            rain_attenuation_exceeded_db(30.0, f, 30.0, 47.0)
            for f in (8.2, 14.0, 20.0, 30.0)
        ]
        assert all(a < b for a, b in zip(fades, fades[1:]))

    def test_paper_fade_range(self):
        """Sec. 1: 'attenuation of 10-25 dB due to rain and clouds' at the
        bands ground stations use -- the 0.01% fades at Ku/Ka land there."""
        ku = rain_attenuation_exceeded_db(30.0, 14.0, 30.0, 47.0)
        ka = rain_attenuation_exceeded_db(30.0, 26.5, 30.0, 47.0)
        assert 5.0 < ku < 30.0
        assert 10.0 < ka < 40.0

    def test_zero_rain_zero_fade(self):
        assert rain_attenuation_exceeded_db(0.0, 14.0, 30.0, 47.0) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            rain_attenuation_exceeded_db(-1.0, 14.0, 30.0, 47.0)
        with pytest.raises(ValueError):
            rain_attenuation_exceeded_db(30.0, 14.0, 30.0, 47.0,
                                         exceedance_percent=50.0)

    @given(
        rain=st.floats(min_value=1.0, max_value=120.0),
        f=st.floats(min_value=4.0, max_value=40.0),
        el=st.floats(min_value=5.0, max_value=90.0),
        lat=st.floats(min_value=-70.0, max_value=70.0),
        p=st.floats(min_value=0.001, max_value=5.0),
    )
    def test_non_negative_finite(self, rain, f, el, lat, p):
        fade = rain_attenuation_exceeded_db(rain, f, el, lat,
                                            exceedance_percent=p)
        assert 0.0 <= fade < 500.0


class TestAvailability:
    def test_more_margin_more_availability(self):
        low = link_availability_percent(2.0, 30.0, 20.0, 30.0, 47.0)
        high = link_availability_percent(12.0, 30.0, 20.0, 30.0, 47.0)
        assert high >= low

    def test_x_band_nearly_always_available(self):
        availability = link_availability_percent(3.0, 30.0, 8.2, 30.0, 47.0)
        assert availability > 99.9

    def test_ka_band_needs_big_margins(self):
        small_margin = link_availability_percent(2.0, 30.0, 26.5, 30.0, 47.0)
        assert small_margin < 99.95

    def test_consistency_with_exceedance(self):
        """availability(fade(p)) should recover ~100-p."""
        p = 0.1
        fade = rain_attenuation_exceeded_db(30.0, 14.0, 30.0, 47.0,
                                            exceedance_percent=p)
        availability = link_availability_percent(fade, 30.0, 14.0, 30.0, 47.0)
        assert availability == pytest.approx(100.0 - p, abs=0.05)

    def test_invalid_margin(self):
        with pytest.raises(ValueError):
            link_availability_percent(-1.0, 30.0, 14.0, 30.0, 47.0)
