"""Tests for Doppler prediction and blind-acquisition budgets."""

from datetime import datetime, timedelta

import pytest

from repro.linkbudget.doppler import (
    acquisition_window_hz,
    doppler_shift_hz,
    max_doppler_hz,
    pass_doppler_profile,
)
from repro.orbits.passes import PassPredictor
from repro.orbits.sgp4 import SGP4

EPOCH = datetime(2020, 6, 1)


class TestShiftBasics:
    def test_sign_convention(self):
        assert doppler_shift_hz(-7.0, 8.2e9) > 0.0  # approaching = blue
        assert doppler_shift_hz(7.0, 8.2e9) < 0.0

    def test_xband_magnitude(self):
        # 7.4 km/s at 8.2 GHz: ~202 kHz.
        assert doppler_shift_hz(-7.4, 8.2e9) == pytest.approx(202.4e3, rel=0.01)

    def test_max_doppler(self):
        assert max_doppler_hz(8.2e9) == pytest.approx(207.9e3, rel=0.01)
        with pytest.raises(ValueError):
            max_doppler_hz(-1.0)


class TestPassProfile:
    @pytest.fixture(scope="class")
    def profile(self, request):
        from repro.orbits.constellation import synthetic_leo_constellation

        tle = synthetic_leo_constellation(1, EPOCH, seed=42)[0]
        prop = SGP4(tle)
        predictor = PassPredictor(prop.propagate, 47.6, -122.3, 0.05,
                                  min_elevation_deg=5.0)
        window = next(iter(predictor.passes(EPOCH, EPOCH + timedelta(days=1))))
        return pass_doppler_profile(
            prop.propagate, 47.6, -122.3, 0.05,
            window.rise_time, window.duration_seconds, carrier_hz=8.2e9,
        )

    def test_blue_then_red(self, profile):
        """Approaching first (positive shift), receding last (negative)."""
        assert profile[0].shift_hz > 0.0
        assert profile[-1].shift_hz < 0.0

    def test_monotone_decreasing_shift(self, profile):
        shifts = [s.shift_hz for s in profile]
        assert all(a >= b for a, b in zip(shifts, shifts[1:]))

    def test_magnitudes_within_leo_bounds(self, profile):
        bound = max_doppler_hz(8.2e9)
        for sample in profile:
            assert abs(sample.shift_hz) <= bound

    def test_slew_rate_peaks_mid_pass(self, profile):
        rates = [abs(s.rate_hz_s) for s in profile[1:]]
        mid = len(rates) // 2
        # The fastest frequency slew happens near closest approach, not at
        # the horizon ends.
        assert max(rates[mid - 3: mid + 3]) >= 0.8 * max(rates)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            pass_doppler_profile(lambda t: None, 0, 0, 0, EPOCH, -5.0, 8.2e9)


class TestAcquisitionWindow:
    def test_tle_grade_window_small(self):
        """Kilometre-grade ephemeris (the paper's Sec. 3.1 accuracy claim)
        keeps the X-band search window in the tens of kHz."""
        window = acquisition_window_hz(1.0, 8.2e9)
        assert window < 50e3

    def test_grows_with_position_error(self):
        assert acquisition_window_hz(10.0, 8.2e9) > acquisition_window_hz(1.0, 8.2e9)

    def test_oscillator_floor(self):
        # Even perfect ephemeris leaves the oscillator term.
        floor = acquisition_window_hz(0.0, 8.2e9, oscillator_ppm=0.5)
        assert floor == pytest.approx(8.2e9 * 0.5e-6)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            acquisition_window_hz(-1.0, 8.2e9)
