"""Tests for the DVB-S2 MODCOD table and ACM selection."""

import pytest
from hypothesis import given, strategies as st

from repro.linkbudget.dvbs2 import (
    DVBS2_MODCODS,
    achievable_bitrate_bps,
    best_modcod,
    modcod_by_name,
    required_esn0_db,
)


class TestTable:
    def test_has_all_28_modcods(self):
        assert len(DVBS2_MODCODS) == 28

    def test_sorted_by_threshold(self):
        thresholds = [mc.esn0_db for mc in DVBS2_MODCODS]
        assert thresholds == sorted(thresholds)

    def test_efficiency_increases_with_threshold_within_modulation(self):
        for modulation in ("QPSK", "8PSK", "16APSK", "32APSK"):
            mcs = [m for m in DVBS2_MODCODS if m.modulation == modulation]
            effs = [m.spectral_efficiency for m in mcs]
            assert effs == sorted(effs)

    def test_standard_values(self):
        assert required_esn0_db("QPSK 1/4") == pytest.approx(-2.35)
        assert required_esn0_db("QPSK 9/10") == pytest.approx(6.42)
        assert required_esn0_db("32APSK 9/10") == pytest.approx(16.05)
        assert modcod_by_name("8PSK 3/5").spectral_efficiency == pytest.approx(
            1.779991
        )

    def test_unknown_modcod(self):
        with pytest.raises(KeyError, match="64APSK"):
            modcod_by_name("64APSK 1/2")

    def test_efficiency_bounds(self):
        for mc in DVBS2_MODCODS:
            assert 0.4 < mc.spectral_efficiency < 4.5

    def test_bitrate_scales_with_symbol_rate(self):
        mc = modcod_by_name("QPSK 1/2")
        assert mc.bitrate_bps(2e6) == pytest.approx(2 * mc.bitrate_bps(1e6))


class TestACM:
    def test_below_minimum_returns_none(self):
        assert best_modcod(-5.0) is None

    def test_high_snr_gives_top_modcod(self):
        assert best_modcod(30.0).name == "32APSK 9/10"

    def test_margin_is_subtracted(self):
        # At exactly the QPSK 1/2 threshold with 1 dB margin, QPSK 1/2 is
        # NOT usable, the next one down is.
        at_threshold = best_modcod(1.0, margin_db=1.0)
        assert at_threshold is not None
        assert at_threshold.esn0_db <= 0.0
        without_margin = best_modcod(1.0, margin_db=0.0)
        assert without_margin.name == "QPSK 1/2"

    @given(esn0=st.floats(min_value=-10.0, max_value=30.0))
    def test_selection_is_feasible_and_maximal(self, esn0):
        mc = best_modcod(esn0, margin_db=1.0)
        if mc is None:
            assert esn0 - 1.0 < DVBS2_MODCODS[0].esn0_db
        else:
            assert mc.esn0_db <= esn0 - 1.0
            better = [
                m for m in DVBS2_MODCODS
                if m.spectral_efficiency > mc.spectral_efficiency
            ]
            assert all(m.esn0_db > esn0 - 1.0 for m in better)

    @given(
        lo=st.floats(min_value=-5.0, max_value=25.0),
        delta=st.floats(min_value=0.0, max_value=10.0),
    )
    def test_rate_monotonic_in_snr(self, lo, delta):
        r_lo = achievable_bitrate_bps(lo, 1e6)
        r_hi = achievable_bitrate_bps(lo + delta, 1e6)
        assert r_hi >= r_lo

    def test_no_link_is_zero_rate(self):
        assert achievable_bitrate_bps(-20.0, 75e6) == 0.0
