"""Tests for free-space path loss (paper Eq. 1)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.linkbudget.fspl import free_space_loss_linear, free_space_path_loss_db


class TestFSPL:
    def test_textbook_value(self):
        # 1 km at 1 GHz: 92.45 dB.
        assert free_space_path_loss_db(1.0, 1.0) == pytest.approx(92.45, abs=0.01)

    def test_leo_xband(self):
        # 1000 km at 8.2 GHz: 92.45 + 60 + 18.28 = 170.7 dB.
        assert free_space_path_loss_db(1000.0, 8.2) == pytest.approx(170.7, abs=0.1)

    def test_inverse_square_in_db(self):
        # Doubling distance adds exactly 20*log10(2) ~ 6.02 dB.
        near = free_space_path_loss_db(500.0, 8.2)
        far = free_space_path_loss_db(1000.0, 8.2)
        assert far - near == pytest.approx(6.0206, abs=1e-3)

    def test_frequency_square_in_db(self):
        low = free_space_path_loss_db(700.0, 2.0)
        high = free_space_path_loss_db(700.0, 8.0)
        assert high - low == pytest.approx(20.0 * math.log10(4.0), abs=1e-6)

    @given(
        d=st.floats(min_value=1.0, max_value=50000.0),
        f=st.floats(min_value=0.1, max_value=50.0),
    )
    def test_linear_matches_db(self, d, f):
        linear = free_space_loss_linear(d * 1e3, f * 1e9)
        db = free_space_path_loss_db(d, f)
        assert 10.0 * math.log10(linear) == pytest.approx(db, abs=1e-9)

    @given(
        d=st.floats(min_value=100.0, max_value=3000.0),
        f=st.floats(min_value=1.0, max_value=40.0),
    )
    def test_monotonic(self, d, f):
        assert free_space_path_loss_db(d + 10.0, f) > free_space_path_loss_db(d, f)
        assert free_space_path_loss_db(d, f + 1.0) > free_space_path_loss_db(d, f)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            free_space_path_loss_db(0.0, 8.2)
        with pytest.raises(ValueError):
            free_space_path_loss_db(500.0, -1.0)
