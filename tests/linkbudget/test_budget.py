"""Tests for the end-to-end link budget and its paper calibration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.linkbudget.budget import (
    LinkBudget,
    RadioConfig,
    baseline_receiver,
    dgs_node_receiver,
)


@pytest.fixture(scope="module")
def radio():
    return RadioConfig()


@pytest.fixture(scope="module")
def dgs_budget(radio):
    return LinkBudget(radio, dgs_node_receiver())


@pytest.fixture(scope="module")
def baseline_budget(radio):
    return LinkBudget(radio, baseline_receiver())


class TestRadioConfig:
    def test_power_split_across_channels(self, radio):
        full = radio.eirp_dbw_per_channel(1)
        split = radio.eirp_dbw_per_channel(6)
        assert full == radio.total_eirp_dbw
        assert full - split == pytest.approx(7.78, abs=0.01)

    def test_invalid_channel_counts(self, radio):
        with pytest.raises(ValueError):
            radio.eirp_dbw_per_channel(0)
        with pytest.raises(ValueError):
            radio.eirp_dbw_per_channel(7)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            RadioConfig(frequency_ghz=-1.0)
        with pytest.raises(ValueError):
            RadioConfig(channels=0)


class TestPaperCalibration:
    def test_baseline_peak_near_1_6_gbps(self, baseline_budget):
        """Sec. 2: 'data rate around 1.6 Gbps by combining six ... channels'."""
        result = baseline_budget.evaluate(500.0, 90.0, 78.0)
        assert result.bitrate_bps == pytest.approx(1.6e9, rel=0.15)
        assert result.active_channels == 6

    def test_dgs_node_peak_order_of_magnitude(self, dgs_budget):
        result = dgs_budget.evaluate(500.0, 90.0, 47.0)
        assert 0.08e9 < result.bitrate_bps < 0.35e9
        assert result.active_channels == 1

    def test_ten_x_median_throughput_ratio(self, radio):
        """Sec. 4: baseline achieves ~10x the median DGS node throughput."""
        from repro.baseline.system import measured_node_throughput_ratio

        ratio = measured_node_throughput_ratio(radio)
        assert 7.0 < ratio < 14.0


class TestLinkPhysics:
    def test_below_horizon_never_closes(self, dgs_budget):
        result = dgs_budget.evaluate(2500.0, -5.0, 47.0)
        assert not result.closes
        assert result.bitrate_bps == 0.0

    def test_rate_degrades_toward_horizon(self, baseline_budget):
        """Sec. 2: 'As the satellite reaches closer to the horizon, the
        link quality degrades and the satellite has to downgrade its rate'."""
        rates = []
        for rng, el in ((500.0, 90.0), (800.0, 40.0), (1400.0, 15.0), (2200.0, 5.0)):
            rates.append(baseline_budget.evaluate(rng, el, 60.0).bitrate_bps)
        assert all(a >= b for a, b in zip(rates, rates[1:]))
        assert rates[0] > rates[-1]

    def test_rain_reduces_esn0(self, dgs_budget):
        dry = dgs_budget.evaluate(800.0, 40.0, 47.0, rain_rate_mm_h=0.0)
        wet = dgs_budget.evaluate(800.0, 40.0, 47.0, rain_rate_mm_h=25.0)
        assert wet.esn0_db < dry.esn0_db
        assert wet.rain_db > 0.0

    def test_cloud_reduces_esn0(self, dgs_budget):
        clear = dgs_budget.evaluate(800.0, 40.0, 47.0)
        cloudy = dgs_budget.evaluate(800.0, 40.0, 47.0, cloud_water_kg_m2=2.0)
        assert cloudy.esn0_db < clear.esn0_db

    def test_hardware_calibration_term(self, radio):
        clean = LinkBudget(radio, dgs_node_receiver())
        lossy = LinkBudget(radio, dgs_node_receiver(), hardware_calibration_db=3.0)
        assert lossy.evaluate(800.0, 40.0, 47.0).esn0_db == pytest.approx(
            clean.evaluate(800.0, 40.0, 47.0).esn0_db - 3.0
        )

    @settings(max_examples=50)
    @given(
        rng=st.floats(min_value=400.0, max_value=3000.0),
        el=st.floats(min_value=0.1, max_value=90.0),
        rain=st.floats(min_value=0.0, max_value=80.0),
        cloud=st.floats(min_value=0.0, max_value=4.0),
        lat=st.floats(min_value=-80.0, max_value=80.0),
    )
    def test_result_invariants(self, dgs_budget, rng, el, rain, cloud, lat):
        result = dgs_budget.evaluate(rng, el, lat, rain, cloud)
        assert result.fspl_db > 100.0
        assert result.rain_db >= 0.0
        assert result.cloud_db >= 0.0
        assert result.gas_db >= 0.0
        if result.closes:
            assert result.bitrate_bps > 0.0
            assert result.modcod.esn0_db <= result.esn0_db - dgs_budget.acm_margin_db
        else:
            assert result.bitrate_bps == 0.0

    def test_total_atmospheric_sum(self, dgs_budget):
        result = dgs_budget.evaluate(800.0, 30.0, 47.0, 10.0, 1.0)
        assert result.total_atmospheric_db == pytest.approx(
            result.rain_db + result.cloud_db + result.gas_db
        )
