"""Tests for the DVB-S2 framing layer against EN 302 307 structure."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.linkbudget.dvbs2 import DVBS2_MODCODS, modcod_by_name
from repro.linkbudget.dvbs2_framing import (
    BBHEADER_BITS,
    KBCH_NORMAL,
    KBCH_SHORT,
    FrameSpec,
    FramingError,
    all_frame_specs,
    frame_error_probability,
    framing_overhead_fraction,
    simulate_pass_frames,
)


class TestKbchTables:
    def test_kbch_below_rate_times_frame(self):
        """BCH shortening: kbch is slightly under rate * n_ldpc."""
        for rate_text, kbch in KBCH_NORMAL.items():
            num, den = rate_text.split("/")
            nominal = 64800 * int(num) / int(den)
            assert kbch <= nominal
            assert kbch > nominal - 800  # BCH parity is small

    def test_short_frames_scale(self):
        for rate_text, kbch in KBCH_SHORT.items():
            num, den = rate_text.split("/")
            nominal = 16200 * int(num) / int(den)
            assert kbch <= nominal

    def test_known_values(self):
        assert KBCH_NORMAL["1/2"] == 32208
        assert KBCH_NORMAL["9/10"] == 58192
        assert KBCH_SHORT["1/4"] == 3072


class TestFrameSpec:
    def test_qpsk_half_structure(self):
        spec = FrameSpec(modcod_by_name("QPSK 1/2"))
        assert spec.coded_bits == 64800
        assert spec.xfecframe_symbols == 32400
        assert spec.symbols_per_frame == 32400 + 90
        assert spec.data_bits_per_frame == 32208 - BBHEADER_BITS

    def test_net_efficiency_reproduces_table_13_exactly(self):
        """EN 302 307 Table 13's efficiencies are defined as
        (kbch - 80) / (64800/bps + 90) -- i.e. they already include the
        BBHEADER and PLHEADER.  Our frame structure must reproduce the
        published numbers to 4 decimals, which cross-validates the kbch
        tables, the XFECFRAME symbol counts, and the header sizes all at
        once."""
        for spec in all_frame_specs(pilots=False):
            net = spec.net_spectral_efficiency
            ideal = spec.modcod.spectral_efficiency
            assert net == pytest.approx(ideal, abs=5e-4)

    def test_pilots_cost_capacity(self):
        plain = FrameSpec(modcod_by_name("8PSK 3/4"), pilots=False)
        piloted = FrameSpec(modcod_by_name("8PSK 3/4"), pilots=True)
        assert piloted.symbols_per_frame > plain.symbols_per_frame
        assert piloted.net_spectral_efficiency < plain.net_spectral_efficiency

    def test_short_frames_less_efficient(self):
        normal = FrameSpec(modcod_by_name("QPSK 1/2"), short_frame=False)
        short = FrameSpec(modcod_by_name("QPSK 1/2"), short_frame=True)
        assert short.net_spectral_efficiency < normal.net_spectral_efficiency

    def test_short_910_undefined(self):
        with pytest.raises(FramingError):
            FrameSpec(modcod_by_name("QPSK 9/10"), short_frame=True)

    def test_frame_duration(self):
        spec = FrameSpec(modcod_by_name("QPSK 1/2"))
        duration = spec.frame_duration_s(75e6)
        assert duration == pytest.approx(32490 / 75e6)
        assert spec.net_bitrate_bps(75e6) == pytest.approx(
            spec.data_bits_per_frame / duration
        )

    def test_invalid_symbol_rate(self):
        with pytest.raises(FramingError):
            FrameSpec(modcod_by_name("QPSK 1/2")).frame_duration_s(0.0)

    def test_overhead_fraction(self):
        # Table 13 already folds in header overheads, so no-pilot normal
        # frames show ~zero extra overhead; pilots add a real 1-2.5%.
        for mc in DVBS2_MODCODS:
            assert abs(framing_overhead_fraction(mc.name)) < 1e-3
            assert 0.005 < framing_overhead_fraction(mc.name, pilots=True) < 0.03


class TestFrameErrorModel:
    def test_waterfall_shape(self):
        mc = modcod_by_name("QPSK 1/2")
        well_below = frame_error_probability(mc.esn0_db - 2.0, mc)
        at_threshold = frame_error_probability(mc.esn0_db, mc)
        above = frame_error_probability(mc.esn0_db + 1.0, mc)
        assert well_below > 0.99
        assert at_threshold < 1e-3
        assert above < at_threshold

    @given(delta=st.floats(min_value=-5.0, max_value=5.0))
    def test_monotone_in_snr(self, delta):
        mc = modcod_by_name("8PSK 2/3")
        lower = frame_error_probability(mc.esn0_db + delta, mc)
        higher = frame_error_probability(mc.esn0_db + delta + 0.1, mc)
        assert higher <= lower + 1e-12

    def test_probability_bounds(self):
        mc = modcod_by_name("32APSK 9/10")
        for esn0 in (-50.0, 0.0, 16.05, 100.0):
            per = frame_error_probability(esn0, mc)
            assert 0.0 <= per <= 1.0


class TestPassSimulation:
    def test_clean_pass_loses_nothing(self):
        result = simulate_pass_frames(
            lambda t: 10.0, duration_s=300.0, symbol_rate_baud=75e6,
            modcod_name="QPSK 1/2",
        )
        assert result.frames_sent > 600
        assert result.frames_lost == 0
        assert result.goodput_bits == pytest.approx(
            result.frames_sent * (32208 - BBHEADER_BITS)
        )

    def test_degrading_pass_loses_tail(self):
        # Es/N0 sinks through the threshold halfway through the pass.
        mc = modcod_by_name("QPSK 1/2")

        def profile(t):
            return mc.esn0_db + 3.0 - 6.0 * (t / 300.0)

        result = simulate_pass_frames(profile, 300.0, 75e6, "QPSK 1/2")
        assert 0 < result.frames_lost < result.frames_sent
        assert 0.3 < result.frame_loss_rate < 0.7

    def test_seeded_run_is_deterministic(self):
        def profile(t):
            return 0.7  # near the QPSK 1/2 waterfall

        a = simulate_pass_frames(profile, 60.0, 75e6, "QPSK 1/2", seed=5)
        b = simulate_pass_frames(profile, 60.0, 75e6, "QPSK 1/2", seed=5)
        assert a == b

    def test_expectation_close_to_sampled(self):
        def profile(t):
            return 0.65

        expected = simulate_pass_frames(profile, 120.0, 75e6, "QPSK 1/2")
        sampled = simulate_pass_frames(profile, 120.0, 75e6, "QPSK 1/2", seed=1)
        assert sampled.frames_lost == pytest.approx(
            expected.frames_lost, abs=max(30, 0.3 * expected.frames_sent ** 0.5 * 3)
        )

    def test_invalid_duration(self):
        with pytest.raises(FramingError):
            simulate_pass_frames(lambda t: 10.0, 0.0, 75e6, "QPSK 1/2")
