"""Precomputed kernel statics vs the plain batch path, bit for bit.

The contact-window index hoists the geometry-only link-budget terms
(free-space loss, gaseous attenuation, the cloud model's elevation sine,
and the rain model's slant-path geometry) out of the per-step loop.
Every hoisted helper must reproduce the exact bits of the full batch
path it replaces -- the window-index equivalence suites rest on that.
"""

import random

import numpy as np

from repro.linkbudget.budget import (
    KernelStatics,
    LinkBudget,
    RadioConfig,
    dgs_node_receiver,
)
from repro.linkbudget.itu import (
    cloud_attenuation_db_batch,
    cloud_attenuation_db_batch_presin,
    rain_attenuation_db_batch,
    rain_attenuation_db_batch_pregeom,
    rain_height_km_batch,
)

FREQ_GHZ = 8.2


def _samples(n=400, seed=7):
    rng = random.Random(seed)
    return {
        "range_km": np.array([rng.uniform(300.0, 3000.0) for _ in range(n)]),
        "elevation_deg": np.array(
            [rng.uniform(-10.0, 90.0) for _ in range(n)]
        ),
        "station_latitude_deg": np.array(
            [rng.uniform(-80.0, 80.0) for _ in range(n)]
        ),
        "rain_rate_mm_h": np.array(
            [rng.choice([0.0, rng.uniform(0.0, 60.0)]) for _ in range(n)]
        ),
        "cloud_water_kg_m2": np.array(
            [rng.choice([0.0, rng.uniform(0.0, 2.0)]) for _ in range(n)]
        ),
        "station_altitude_km": np.array(
            [rng.uniform(0.0, 3.0) for _ in range(n)]
        ),
    }


def _rain_geometry(elevation, latitude, altitude):
    """The exact geometry columns ``precompute_statics`` derives."""
    height = np.maximum(0.0, rain_height_km_batch(latitude) - altitude)
    el = np.maximum(elevation, 5.0)
    sin_el = np.sin(np.radians(el))
    slant = np.where(height > 0.0, height / sin_el, 0.0)
    lg = slant * np.cos(np.radians(el))
    b_term = 0.38 * (1.0 - np.exp(-2.0 * lg))
    return slant, lg, b_term


class TestPregeomRain:
    def test_bitwise_match_with_mixed_wet_dry(self):
        s = _samples()
        slant, lg, b_term = _rain_geometry(
            s["elevation_deg"], s["station_latitude_deg"],
            s["station_altitude_km"],
        )
        full = rain_attenuation_db_batch(
            s["rain_rate_mm_h"], FREQ_GHZ, s["elevation_deg"],
            s["station_latitude_deg"], s["station_altitude_km"],
        )
        pre = rain_attenuation_db_batch_pregeom(
            s["rain_rate_mm_h"], FREQ_GHZ, slant, lg, b_term
        )
        assert np.array_equal(full, pre)

    def test_all_dry_and_all_wet(self):
        s = _samples(n=50)
        for rain in (np.zeros(50), np.full(50, 12.5)):
            slant, lg, b_term = _rain_geometry(
                s["elevation_deg"][:50], s["station_latitude_deg"][:50],
                s["station_altitude_km"][:50],
            )
            full = rain_attenuation_db_batch(
                rain, FREQ_GHZ, s["elevation_deg"][:50],
                s["station_latitude_deg"][:50], s["station_altitude_km"][:50],
            )
            pre = rain_attenuation_db_batch_pregeom(
                rain, FREQ_GHZ, slant, lg, b_term
            )
            assert np.array_equal(full, pre)

    def test_scalar_rain_broadcasts(self):
        """A scalar rain rate must broadcast like the full batch helper."""
        s = _samples(n=30)
        slant, lg, b_term = _rain_geometry(
            s["elevation_deg"][:30], s["station_latitude_deg"][:30],
            s["station_altitude_km"][:30],
        )
        full = rain_attenuation_db_batch(
            8.0, FREQ_GHZ, s["elevation_deg"][:30],
            s["station_latitude_deg"][:30], s["station_altitude_km"][:30],
        )
        pre = rain_attenuation_db_batch_pregeom(
            8.0, FREQ_GHZ, slant, lg, b_term
        )
        assert np.array_equal(full, pre)


class TestPresinCloud:
    def test_bitwise_match(self):
        s = _samples()
        sin_el = np.sin(np.radians(np.maximum(s["elevation_deg"], 5.0)))
        full = cloud_attenuation_db_batch(
            s["cloud_water_kg_m2"], FREQ_GHZ, s["elevation_deg"]
        )
        pre = cloud_attenuation_db_batch_presin(
            s["cloud_water_kg_m2"], FREQ_GHZ, sin_el
        )
        assert np.array_equal(full, pre)

    def test_scalar_cloud_broadcasts(self):
        s = _samples(n=30)
        sin_el = np.sin(np.radians(np.maximum(s["elevation_deg"][:30], 5.0)))
        full = cloud_attenuation_db_batch(
            0.4, FREQ_GHZ, s["elevation_deg"][:30]
        )
        pre = cloud_attenuation_db_batch_presin(0.4, FREQ_GHZ, sin_el)
        assert np.array_equal(full, pre)


class TestEvaluateBatchWithStatics:
    BUDGET = LinkBudget(RadioConfig(), dgs_node_receiver())

    def _assert_results_equal(self, a, b):
        for name in ("esn0_db", "bitrate_bps", "modcod_index"):
            assert np.array_equal(getattr(a, name), getattr(b, name)), name

    def test_static_path_bit_identical(self):
        s = _samples()
        statics = self.BUDGET.precompute_statics(
            s["range_km"], s["elevation_deg"],
            s["station_latitude_deg"], s["station_altitude_km"],
        )
        plain = self.BUDGET.evaluate_batch(**s)
        hoisted = self.BUDGET.evaluate_batch(**s, static=statics)
        self._assert_results_equal(plain, hoisted)

    def test_statics_without_rain_geometry(self):
        """Latitude omitted: fspl/gas/sine hoisted, rain recomputed."""
        s = _samples()
        statics = self.BUDGET.precompute_statics(
            s["range_km"], s["elevation_deg"]
        )
        assert statics.rain_slant is None
        plain = self.BUDGET.evaluate_batch(**s)
        hoisted = self.BUDGET.evaluate_batch(**s, static=statics)
        self._assert_results_equal(plain, hoisted)

    def test_narrow_and_take_match_recomputation(self):
        s = _samples()
        statics = self.BUDGET.precompute_statics(
            s["range_km"], s["elevation_deg"],
            s["station_latitude_deg"], s["station_altitude_km"],
        )
        lo, hi = 100, 250
        narrow = statics.narrow(lo, hi)
        assert isinstance(narrow, KernelStatics)
        sliced = {k: v[lo:hi] for k, v in s.items()}
        plain = self.BUDGET.evaluate_batch(**sliced)
        hoisted = self.BUDGET.evaluate_batch(**sliced, static=narrow)
        self._assert_results_equal(plain, hoisted)
        # narrow() shares memory with the parent columns (zero-copy).
        assert np.shares_memory(narrow.fspl_db, statics.fspl_db)

        idx = np.array([5, 17, 17, 390, 2])
        taken = statics.take(idx)
        gathered = {k: v[idx] for k, v in s.items()}
        plain = self.BUDGET.evaluate_batch(**gathered)
        hoisted = self.BUDGET.evaluate_batch(**gathered, static=taken)
        self._assert_results_equal(plain, hoisted)
