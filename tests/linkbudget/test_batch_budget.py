"""Batched link-budget kernel vs the scalar reference, element by element."""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.linkbudget.budget import (
    LinkBudget,
    RadioConfig,
    baseline_receiver,
    dgs_node_receiver,
)
from repro.linkbudget.dvbs2 import (
    DVBS2_MODCODS,
    ESN0_THRESHOLDS_DB,
    best_modcod,
    best_modcod_indices,
)

BUDGETS = {
    "dgs": LinkBudget(RadioConfig(), dgs_node_receiver()),
    "baseline-calibrated": LinkBudget(
        RadioConfig(),
        baseline_receiver(),
        acm_margin_db=2.0,
        hardware_calibration_db=1.5,
    ),
    "pilots": LinkBudget(RadioConfig(), dgs_node_receiver(), pilots=True),
}


def _random_samples(n, seed):
    rng = random.Random(seed)
    return {
        "range_km": np.array([rng.uniform(300.0, 3000.0) for _ in range(n)]),
        "elevation_deg": np.array([rng.uniform(-10.0, 90.0) for _ in range(n)]),
        "station_latitude_deg": np.array(
            [rng.uniform(-80.0, 80.0) for _ in range(n)]
        ),
        "rain_rate_mm_h": np.array(
            [rng.choice([0.0, rng.uniform(0.0, 60.0)]) for _ in range(n)]
        ),
        "cloud_water_kg_m2": np.array(
            [rng.uniform(0.0, 2.0) for _ in range(n)]
        ),
        "station_altitude_km": np.array(
            [rng.uniform(0.0, 3.0) for _ in range(n)]
        ),
    }


class TestRainClampEdges:
    """Scalar-vs-batch parity at the edges of the rain model's clamps:
    zero rain, zero effective path (station above the rain height), 90 deg
    elevation (cos -> ~0 horizontal projection), and rain heavy enough to
    pin the P.618 reduction factor at its 0.05 lower clamp."""

    FREQ_GHZ = 30.0

    def _parity(self, rain, elevation, latitude, altitude=0.0):
        from repro.linkbudget.itu import (
            rain_attenuation_db,
            rain_attenuation_db_batch,
        )

        scalar = rain_attenuation_db(
            rain, self.FREQ_GHZ, elevation, latitude, altitude
        )
        batch = rain_attenuation_db_batch(
            np.array([rain]), self.FREQ_GHZ, np.array([elevation]),
            np.array([latitude]), np.array([altitude]),
        )
        assert batch[0] == pytest.approx(scalar, abs=1e-9)
        return scalar

    def test_zero_rain_is_exactly_zero(self):
        assert self._parity(0.0, 30.0, 45.0) == 0.0

    def test_station_above_rain_height_zero_path(self):
        # 5.5 km station vs a 5.0 km tropical rain height: the effective
        # path is non-positive, so attenuation is exactly zero and the
        # reduction factor's lg <= 0 branch is exercised.
        assert self._parity(25.0, 10.0, 0.0, altitude=5.5) == 0.0

    def test_high_latitude_zero_rain_height(self):
        # P.839 height hits its 0.0 floor poleward of ~71 deg south.
        assert self._parity(10.0, 20.0, -80.0) == 0.0

    def test_vertical_path_at_90_deg_elevation(self):
        # cos(90 deg) collapses the horizontal projection to ~0; the
        # reduction factor is ~1 and attenuation ~= gamma * height.
        value = self._parity(20.0, 90.0, 0.0)
        assert value > 0.0

    def test_extreme_rain_pins_lower_clamp(self):
        from repro.linkbudget.itu import (
            _horizontal_reduction_factor,
            rain_specific_attenuation_db_km,
            slant_path_length_km,
        )

        rain, elevation, latitude = 5000.0, 5.0, 0.0
        gamma = rain_specific_attenuation_db_km(rain, self.FREQ_GHZ)
        slant = slant_path_length_km(elevation, 5.0)
        # The probe really does drive r below the clamp...
        assert _horizontal_reduction_factor(
            slant, elevation, gamma, self.FREQ_GHZ
        ) == 0.05
        # ...and batch still matches scalar exactly on the clamped branch.
        self._parity(rain, elevation, latitude)

    def test_clamp_edge_grid_parity(self):
        """A dense grid straddling every branch in one batched call."""
        from repro.linkbudget.itu import (
            rain_attenuation_db,
            rain_attenuation_db_batch,
        )

        rain = np.array([0.0, 0.0, 0.5, 25.0, 5000.0, 120.0, 40.0])
        elevation = np.array([5.0, 90.0, 90.0, 10.0, 5.0, 7.5, 90.0])
        latitude = np.array([0.0, 45.0, 0.0, 0.0, 0.0, -80.0, 23.0])
        altitude = np.array([0.0, 0.0, 0.0, 5.5, 0.0, 0.0, 4.99])
        batch = rain_attenuation_db_batch(
            rain, self.FREQ_GHZ, elevation, latitude, altitude
        )
        for p in range(rain.size):
            scalar = rain_attenuation_db(
                float(rain[p]), self.FREQ_GHZ, float(elevation[p]),
                float(latitude[p]), float(altitude[p]),
            )
            assert batch[p] == pytest.approx(scalar, abs=1e-9)


class TestBestModcodIndices:
    @pytest.mark.parametrize("margin_db", [0.0, 1.0, 2.0])
    def test_matches_scalar_at_every_threshold(self, margin_db):
        """Exact agreement at thresholds, just above, and just below."""
        probes = []
        for thr in ESN0_THRESHOLDS_DB:
            probes.extend(
                [thr + margin_db, thr + margin_db + 1e-9, thr + margin_db - 1e-9]
            )
        probes.extend([-50.0, 0.0, 50.0])
        probes = np.array(probes)
        indices = best_modcod_indices(probes, margin_db)
        for esn0, index in zip(probes, indices):
            expected = best_modcod(float(esn0), margin_db)
            if expected is None:
                assert index == -1
            else:
                assert DVBS2_MODCODS[index] is expected

    def test_prefix_argmax_handles_nonmonotone_efficiency(self):
        """8PSK 3/5 outranks QPSK 8/9 despite a lower threshold: the batch
        path must pick by efficiency over all supported rows, like the
        scalar loop, not just the last supported row."""
        esn0 = np.array([6.5])  # supports up to ~QPSK 8/9 + 8PSK 3/5
        index = best_modcod_indices(esn0, margin_db=0.0)[0]
        assert DVBS2_MODCODS[index] is best_modcod(6.5, 0.0)


class TestEvaluateBatch:
    @pytest.mark.parametrize("name", sorted(BUDGETS))
    def test_matches_scalar_on_random_samples(self, name):
        budget = BUDGETS[name]
        samples = _random_samples(400, seed=sum(map(ord, name)))
        result = budget.evaluate_batch(**samples)
        for p in range(400):
            scalar = budget.evaluate(
                range_km=float(samples["range_km"][p]),
                elevation_deg=float(samples["elevation_deg"][p]),
                station_latitude_deg=float(
                    samples["station_latitude_deg"][p]
                ),
                rain_rate_mm_h=float(samples["rain_rate_mm_h"][p]),
                cloud_water_kg_m2=float(samples["cloud_water_kg_m2"][p]),
                station_altitude_km=float(
                    samples["station_altitude_km"][p]
                ),
            )
            assert result.esn0_db[p] == pytest.approx(
                scalar.esn0_db, abs=1e-9
            )
            assert bool(result.closes[p]) == scalar.closes
            if scalar.closes:
                assert result.modcod_at(p) is scalar.modcod
                assert result.bitrate_bps[p] == pytest.approx(
                    scalar.bitrate_bps, rel=1e-12
                )
                assert result.required_esn0_db[p] == scalar.modcod.esn0_db
            else:
                assert result.bitrate_bps[p] == 0.0
                assert result.required_esn0_db[p] == -100.0

    @settings(max_examples=150, deadline=None)
    @given(
        range_km=st.floats(min_value=200.0, max_value=4000.0),
        elevation_deg=st.floats(min_value=-20.0, max_value=90.0),
        latitude_deg=st.floats(min_value=-85.0, max_value=85.0),
        rain_mm_h=st.floats(min_value=0.0, max_value=100.0),
        cloud_kg_m2=st.floats(min_value=0.0, max_value=5.0),
        altitude_km=st.floats(min_value=0.0, max_value=4.0),
    )
    def test_property_single_element_matches_scalar(
        self, range_km, elevation_deg, latitude_deg, rain_mm_h,
        cloud_kg_m2, altitude_km,
    ):
        budget = BUDGETS["dgs"]
        result = budget.evaluate_batch(
            range_km=np.array([range_km]),
            elevation_deg=np.array([elevation_deg]),
            station_latitude_deg=np.array([latitude_deg]),
            rain_rate_mm_h=np.array([rain_mm_h]),
            cloud_water_kg_m2=np.array([cloud_kg_m2]),
            station_altitude_km=np.array([altitude_km]),
        )
        scalar = budget.evaluate(
            range_km=range_km,
            elevation_deg=elevation_deg,
            station_latitude_deg=latitude_deg,
            rain_rate_mm_h=rain_mm_h,
            cloud_water_kg_m2=cloud_kg_m2,
            station_altitude_km=altitude_km,
        )
        assert result.esn0_db[0] == pytest.approx(scalar.esn0_db, abs=1e-9)
        assert bool(result.closes[0]) == scalar.closes
        if scalar.closes:
            assert result.modcod_at(0) is scalar.modcod
            assert result.bitrate_bps[0] == pytest.approx(
                scalar.bitrate_bps, rel=1e-12
            )

    def test_below_horizon_never_closes(self):
        budget = BUDGETS["dgs"]
        result = budget.evaluate_batch(
            range_km=np.array([500.0, 500.0]),
            elevation_deg=np.array([-5.0, 0.0]),
        )
        assert not result.closes.any()
        assert (result.bitrate_bps == 0.0).all()

    def test_attenuation_components_match_scalar(self):
        budget = BUDGETS["dgs"]
        samples = _random_samples(50, seed=99)
        result = budget.evaluate_batch(**samples)
        for p in range(50):
            scalar = budget.evaluate(
                range_km=float(samples["range_km"][p]),
                elevation_deg=float(samples["elevation_deg"][p]),
                station_latitude_deg=float(
                    samples["station_latitude_deg"][p]
                ),
                rain_rate_mm_h=float(samples["rain_rate_mm_h"][p]),
                cloud_water_kg_m2=float(samples["cloud_water_kg_m2"][p]),
                station_altitude_km=float(
                    samples["station_altitude_km"][p]
                ),
            )
            assert result.fspl_db[p] == pytest.approx(scalar.fspl_db, abs=1e-9)
            assert result.rain_db[p] == pytest.approx(scalar.rain_db, abs=1e-9)
            assert result.cloud_db[p] == pytest.approx(
                scalar.cloud_db, abs=1e-9
            )
            assert result.gas_db[p] == pytest.approx(scalar.gas_db, abs=1e-9)
