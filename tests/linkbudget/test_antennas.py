"""Tests for antenna gain and receiver noise models."""

import pytest
from hypothesis import given, strategies as st

from repro.linkbudget.antennas import (
    AntennaSpec,
    ReceiverSpec,
    half_power_beamwidth_deg,
    parabolic_gain_dbi,
    system_noise_temperature_k,
)


class TestParabolicGain:
    def test_textbook_value(self):
        # 1 m dish at 8.2 GHz, 60% efficiency: ~36.5 dBi.
        assert parabolic_gain_dbi(1.0, 8.2, 0.6) == pytest.approx(36.5, abs=0.3)

    def test_four_meter_dish(self):
        # 4x diameter = +12 dB.
        g1 = parabolic_gain_dbi(1.0, 8.2, 0.6)
        g4 = parabolic_gain_dbi(4.0, 8.2, 0.6)
        assert g4 - g1 == pytest.approx(12.04, abs=0.01)

    @given(
        d=st.floats(min_value=0.1, max_value=30.0),
        f=st.floats(min_value=0.5, max_value=50.0),
    )
    def test_gain_monotonic_in_diameter_and_frequency(self, d, f):
        assert parabolic_gain_dbi(d * 1.5, f) > parabolic_gain_dbi(d, f)
        assert parabolic_gain_dbi(d, f * 1.5) > parabolic_gain_dbi(d, f)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            parabolic_gain_dbi(-1.0, 8.2)
        with pytest.raises(ValueError):
            parabolic_gain_dbi(1.0, 8.2, efficiency=1.5)


class TestBeamwidth:
    def test_one_meter_xband(self):
        # ~2.6 deg for 1 m at 8.2 GHz.
        assert half_power_beamwidth_deg(1.0, 8.2) == pytest.approx(2.56, abs=0.1)

    def test_narrower_for_bigger_dish(self):
        assert half_power_beamwidth_deg(4.0, 8.2) < half_power_beamwidth_deg(1.0, 8.2)


class TestSystemNoise:
    def test_typical_receiver(self):
        t = system_noise_temperature_k(60.0, 1.0, 0.3)
        assert 100.0 < t < 220.0

    def test_higher_nf_higher_temperature(self):
        assert system_noise_temperature_k(60.0, 2.0, 0.3) > \
            system_noise_temperature_k(60.0, 1.0, 0.3)

    def test_lossless_feed_passes_antenna_temp(self):
        t = system_noise_temperature_k(60.0, 0.0, 0.0)
        assert t == pytest.approx(60.0)


class TestReceiverSpec:
    def test_g_over_t(self):
        rx = ReceiverSpec(antenna=AntennaSpec(diameter_m=4.0, efficiency=0.65),
                          noise_figure_db=0.8, channels=6)
        got = rx.g_over_t_db(8.2)
        assert 24.0 < got < 30.0

    def test_bigger_dish_better_g_over_t(self):
        small = ReceiverSpec(antenna=AntennaSpec(diameter_m=1.0))
        big = ReceiverSpec(antenna=AntennaSpec(diameter_m=4.0))
        assert big.g_over_t_db(8.2) > small.g_over_t_db(8.2)
