"""Tests for terminal plotting."""

import pytest

from repro.analysis.plots import render_cdfs, render_histogram


class TestRenderCdfs:
    def test_basic_structure(self):
        text = render_cdfs(
            {"a": [1.0, 2.0, 3.0], "b": [2.0, 4.0, 6.0]},
            title="test plot", x_label="minutes",
            width=40, height=8,
        )
        lines = text.splitlines()
        assert lines[0] == "test plot"
        assert "1.00 |" in text
        assert "0.00 |" in text
        assert "minutes" in text
        assert "* a" in text
        assert "o b" in text

    def test_monotone_curve(self):
        """Markers never move downward left to right for a single series."""
        text = render_cdfs({"x": list(range(100))}, width=30, height=10)
        rows = [ln[6:] for ln in text.splitlines() if "|" in ln and "+" not in ln]
        last_row_with_marker = None
        for col in range(30):
            for row_index, row in enumerate(rows):
                if col < len(row) and row[col] == "*":
                    if last_row_with_marker is not None:
                        assert row_index <= last_row_with_marker
                    last_row_with_marker = row_index
                    break

    def test_x_max_clipping(self):
        text = render_cdfs({"a": [1.0, 2.0, 1000.0]}, x_max=10.0,
                           width=30, height=6)
        axis_line = text.splitlines()[-2]  # numeric axis labels
        assert axis_line.strip().endswith("10")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_cdfs({})
        with pytest.raises(ValueError):
            render_cdfs({"a": []})

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            render_cdfs({"a": [1.0]}, width=5, height=2)


class TestRenderHistogram:
    def test_counts_sum(self):
        values = [1.0, 1.1, 5.0, 5.1, 5.2, 9.9]
        text = render_histogram(values, bins=3, title="h")
        counts = [int(ln.rsplit(" ", 1)[-1]) for ln in text.splitlines()[1:]]
        assert sum(counts) == len(values)

    def test_constant_values(self):
        text = render_histogram([3.0, 3.0, 3.0], bins=4)
        assert "3" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_histogram([])
