"""Tests for contact reconstruction from event logs."""

from datetime import datetime, timedelta

import pytest

from repro.analysis.contacts import contacts_from_events, summarize_contacts
from repro.simulation.events import EventLog

EPOCH = datetime(2020, 6, 1)


def log_with(*entries):
    log = EventLog()
    for minutes, sat, station, bits, decoded in entries:
        log.record(
            EPOCH + timedelta(minutes=minutes), "transmission", sat, station,
            bits=bits, decoded=decoded,
        )
    return log


class TestReconstruction:
    def test_consecutive_steps_merge(self):
        log = log_with((0, "A", "g1", 100.0, True), (1, "A", "g1", 100.0, True),
                       (2, "A", "g1", 50.0, True))
        contacts = contacts_from_events(log, step_s=60.0)
        assert len(contacts) == 1
        contact = contacts[0]
        assert contact.bits == 250.0
        assert contact.steps == 3
        assert contact.duration_s == pytest.approx(180.0)

    def test_gap_splits_contacts(self):
        log = log_with((0, "A", "g1", 100.0, True), (30, "A", "g1", 100.0, True))
        contacts = contacts_from_events(log, step_s=60.0)
        assert len(contacts) == 2

    def test_tolerated_gap_does_not_split(self):
        log = log_with((0, "A", "g1", 100.0, True), (2, "A", "g1", 100.0, True))
        contacts = contacts_from_events(log, step_s=60.0,
                                        gap_tolerance_steps=1)
        assert len(contacts) == 1

    def test_station_change_is_new_contact(self):
        log = log_with((0, "A", "g1", 100.0, True), (1, "A", "g2", 100.0, True))
        contacts = contacts_from_events(log, step_s=60.0)
        assert len(contacts) == 2
        assert {c.station_id for c in contacts} == {"g1", "g2"}

    def test_decode_fraction(self):
        log = log_with((0, "A", "g1", 100.0, True), (1, "A", "g1", 100.0, False))
        contact = contacts_from_events(log, step_s=60.0)[0]
        assert contact.decode_fraction == 0.5

    def test_invalid_step(self):
        with pytest.raises(ValueError):
            contacts_from_events(EventLog(), step_s=0.0)


class TestSummary:
    def test_empty(self):
        summary = summarize_contacts([])
        assert summary.count == 0
        assert "0 contacts" in summary.render()

    def test_aggregates(self):
        log = log_with((0, "A", "g1", 8e9, True), (1, "A", "g1", 8e9, True),
                       (60, "B", "g2", 8e9, True))
        contacts = contacts_from_events(log, step_s=60.0)
        summary = summarize_contacts(contacts)
        assert summary.count == 2
        assert summary.total_bits == pytest.approx(24e9)
        assert summary.per_station_counts == {"g1": 1, "g2": 1}


class TestEndToEnd:
    def test_contacts_from_real_run(self):
        from repro.groundstations.network import satnogs_like_network
        from repro.orbits.constellation import synthetic_leo_constellation
        from repro.satellites.satellite import Satellite
        from repro.scheduling.value_functions import LatencyValue
        from repro.simulation.config import SimulationConfig
        from repro.simulation.engine import Simulation

        tles = synthetic_leo_constellation(5, EPOCH, seed=21)
        sats = [Satellite(tle=t, chunk_size_gb=0.5) for t in tles]
        network = satnogs_like_network(12, seed=13)
        config = SimulationConfig(start=EPOCH, duration_s=3 * 3600.0,
                                  record_events=True)
        sim = Simulation(satellites=sats, network=network, value_function=LatencyValue(), config=config)
        report = sim.run()
        contacts = contacts_from_events(sim.events, step_s=config.step_s)
        assert contacts
        # Contact durations look like LEO passes (bounded by ~15 min).
        for contact in contacts:
            assert contact.duration_s <= 20 * 60.0
        # All transmitted bits are accounted for in contacts.
        total = sum(c.bits for c in contacts)
        assert total >= report.delivered_bits - 1e-6