"""Tests for result-table rendering."""

import pytest

from repro.analysis.tables import ComparisonTable, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "long-header"], [["xx", "1"], ["y", "22"]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert len({len(line) for line in lines}) == 1  # equal widths

    def test_title(self):
        text = format_table(["a"], [["1"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])


class TestComparisonTable:
    def test_render_contains_values_and_ratio(self):
        table = ComparisonTable(title="Fig X", unit="min")
        table.add("p50", 58.0, 29.0)
        text = table.render()
        assert "Fig X" in text
        assert "58.0" in text
        assert "29.0" in text
        assert "0.50x" in text

    def test_ratio_errors(self):
        table = ComparisonTable(title="t")
        table.add("m1", 10.0, 12.0)
        table.add("m2", 0.0, 5.0)
        ratios = table.ratio_errors()
        assert ratios["m1"] == pytest.approx(1.2)
        assert ratios["m2"] == float("inf")
