"""Tests for empirical CDFs."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis.cdf import EmpiricalCDF

samples_strategy = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=1, max_size=200,
)


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([])

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([1.0, float("nan")])

    def test_basic_stats(self):
        cdf = EmpiricalCDF([3.0, 1.0, 2.0])
        assert cdf.n == 3
        assert cdf.min == 1.0
        assert cdf.max == 3.0
        assert cdf.mean() == pytest.approx(2.0)
        assert cdf.median() == pytest.approx(2.0)


class TestEvaluate:
    def test_step_function(self):
        cdf = EmpiricalCDF([1.0, 2.0, 3.0, 4.0])
        assert cdf.evaluate(0.5) == 0.0
        assert cdf.evaluate(1.0) == 0.25
        assert cdf.evaluate(2.5) == 0.5
        assert cdf.evaluate(4.0) == 1.0
        assert cdf.evaluate(100.0) == 1.0

    @given(samples=samples_strategy)
    def test_monotone_non_decreasing(self, samples):
        cdf = EmpiricalCDF(samples)
        xs = sorted(samples)
        values = [cdf.evaluate(x) for x in xs]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    @given(samples=samples_strategy)
    def test_range(self, samples):
        cdf = EmpiricalCDF(samples)
        for x in (cdf.min - 1.0, cdf.min, cdf.max, cdf.max + 1.0):
            assert 0.0 <= cdf.evaluate(x) <= 1.0


class TestPercentiles:
    @given(samples=samples_strategy)
    def test_percentile_monotone(self, samples):
        cdf = EmpiricalCDF(samples)
        values = [cdf.percentile(q) for q in (0, 25, 50, 75, 90, 99, 100)]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))

    @given(samples=samples_strategy)
    def test_percentile_within_sample_range(self, samples):
        cdf = EmpiricalCDF(samples)
        for q in (0.0, 37.0, 100.0):
            assert cdf.min - 1e-9 <= cdf.percentile(q) <= cdf.max + 1e-9

    def test_matches_numpy(self):
        data = [5.0, 1.0, 9.0, 3.0, 7.0]
        cdf = EmpiricalCDF(data)
        for q in (10, 50, 90):
            assert cdf.percentile(q) == pytest.approx(np.percentile(data, q))

    def test_out_of_range_rejected(self):
        cdf = EmpiricalCDF([1.0])
        with pytest.raises(ValueError):
            cdf.percentile(101.0)


class TestCurve:
    def test_curve_shapes(self):
        cdf = EmpiricalCDF(list(range(100)))
        xs, ps = cdf.curve(points=50)
        assert len(xs) == len(ps) == 50
        assert ps[0] == 0.0
        assert ps[-1] == 1.0
        assert all(a <= b for a, b in zip(xs, xs[1:]))

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([1.0]).curve(points=1)

    def test_summary(self):
        cdf = EmpiricalCDF(list(range(1, 101)))
        summary = cdf.summary((50, 90))
        assert summary[50] == pytest.approx(50.5)
        assert summary[90] == pytest.approx(90.1)
