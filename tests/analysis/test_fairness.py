"""Tests for fairness metrics."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.fairness import (
    fairness_report,
    gini_coefficient,
    jain_index,
)

allocations = st.lists(
    st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=100
)


class TestJain:
    def test_equal_is_one(self):
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_winner_take_all(self):
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_all_zero_is_fair(self):
        assert jain_index([0.0, 0.0]) == 1.0

    @given(values=allocations)
    def test_bounds(self, values):
        index = jain_index(values)
        assert 1.0 / len(values) - 1e-9 <= index <= 1.0 + 1e-9

    @given(values=allocations, factor=st.floats(min_value=0.1, max_value=100))
    def test_scale_invariant(self, values, factor):
        scaled = [v * factor for v in values]
        assert jain_index(scaled) == pytest.approx(jain_index(values))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_index([1.0, -1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            jain_index([])


class TestGini:
    def test_equal_is_zero(self):
        assert gini_coefficient([3.0, 3.0, 3.0]) == pytest.approx(0.0, abs=1e-9)

    def test_concentrated_near_one(self):
        assert gini_coefficient([0.0] * 99 + [1.0]) > 0.95

    @given(values=allocations)
    def test_bounds(self, values):
        g = gini_coefficient(values)
        assert -1e-9 <= g < 1.0

    def test_ordering_agrees_with_jain(self):
        fair = [1.0, 1.0, 1.0, 1.0]
        unfair = [4.0, 0.0, 0.0, 0.0]
        assert gini_coefficient(fair) < gini_coefficient(unfair)
        assert jain_index(fair) > jain_index(unfair)


class TestFairnessReport:
    def test_summary_fields(self):
        report = fairness_report([0.0, 1.0, 2.0, 5.0])
        assert report.participants == 4
        assert report.starved == 1
        assert report.min_share == 0.0
        assert 0.0 < report.jain < 1.0
        assert "Jain" in report.render()

    def test_all_zero(self):
        report = fairness_report([0.0, 0.0])
        assert report.jain == 1.0
        assert report.starved == 2


class TestSimulationFairness:
    def test_matching_fairness_end_to_end(self):
        from datetime import datetime

        from repro.analysis.fairness import matching_fairness
        from repro.groundstations.network import satnogs_like_network
        from repro.orbits.constellation import synthetic_leo_constellation
        from repro.satellites.satellite import Satellite
        from repro.scheduling.value_functions import LatencyValue
        from repro.simulation.config import SimulationConfig
        from repro.simulation.engine import Simulation

        epoch = datetime(2020, 6, 1)
        tles = synthetic_leo_constellation(8, epoch, seed=21)
        sats = [Satellite(tle=t, chunk_size_gb=0.5) for t in tles]
        network = satnogs_like_network(15, seed=13)
        sim = Simulation(
            satellites=sats, network=network, value_function=LatencyValue(),
            config=SimulationConfig(start=epoch, duration_s=3 * 3600.0),
        )
        report = sim.run()
        fairness = matching_fairness(report)
        assert fairness.participants == 8
        assert 0.0 < fairness.jain <= 1.0
