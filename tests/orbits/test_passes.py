"""Tests for contact-window (pass) prediction."""

from datetime import datetime, timedelta

import pytest

from repro.orbits.passes import ContactWindow, PassPredictor
from repro.orbits.sgp4 import SGP4


@pytest.fixture(scope="module")
def predictor(small_tles_module):
    sat = SGP4(small_tles_module[0])
    return PassPredictor(sat.propagate, 47.6, -122.3, 0.05, min_elevation_deg=5.0)


@pytest.fixture(scope="module")
def small_tles_module():
    from datetime import datetime

    from repro.orbits.constellation import synthetic_leo_constellation

    return synthetic_leo_constellation(6, datetime(2020, 6, 1), seed=42)


@pytest.fixture(scope="module")
def day_passes(predictor):
    start = datetime(2020, 6, 1)
    return list(predictor.passes(start, start + timedelta(days=1)))


class TestPassPrediction:
    def test_finds_passes(self, day_passes):
        # A polar LEO passes a mid-latitude station several times a day.
        assert 2 <= len(day_passes) <= 10

    def test_durations_match_leo_physics(self, day_passes):
        for window in day_passes:
            assert 30.0 <= window.duration_seconds <= 15 * 60.0

    def test_windows_are_ordered_and_disjoint(self, day_passes):
        for earlier, later in zip(day_passes, day_passes[1:]):
            assert earlier.set_time <= later.rise_time
            assert not earlier.overlaps(later)

    def test_culmination_inside_window(self, day_passes):
        for window in day_passes:
            assert window.rise_time <= window.culmination_time <= window.set_time

    def test_culmination_is_above_mask(self, day_passes):
        for window in day_passes:
            assert window.max_elevation_deg > 5.0

    def test_elevation_low_at_boundaries(self, predictor, day_passes):
        window = max(day_passes, key=lambda w: w.max_elevation_deg)
        rise_el = predictor.elevation_deg(window.rise_time)
        set_el = predictor.elevation_deg(window.set_time)
        # Boundaries bisected to the 5-degree mask crossing.
        assert rise_el == pytest.approx(5.0, abs=0.5)
        assert set_el == pytest.approx(5.0, abs=0.5)
        assert window.max_elevation_deg > rise_el

    def test_culmination_is_local_max(self, predictor, day_passes):
        window = max(day_passes, key=lambda w: w.max_elevation_deg)
        peak = window.max_elevation_deg
        for offset in (-60, -30, 30, 60):
            when = window.culmination_time + timedelta(seconds=offset)
            if window.rise_time <= when <= window.set_time:
                assert predictor.elevation_deg(when) <= peak + 0.05

    def test_empty_interval(self, predictor):
        start = datetime(2020, 6, 1)
        assert list(predictor.passes(start, start)) == []

    def test_truncation_at_interval_end(self, predictor, day_passes):
        # Cut the window short in the middle of the first pass; the pass
        # should be truncated to the requested end.
        first = day_passes[0]
        mid = first.rise_time + timedelta(seconds=first.duration_seconds / 2)
        truncated = list(predictor.passes(datetime(2020, 6, 1), mid))
        assert truncated
        assert truncated[-1].set_time <= mid


class TestContactWindow:
    def test_contains(self):
        window = ContactWindow(
            rise_time=datetime(2020, 6, 1, 10, 0),
            set_time=datetime(2020, 6, 1, 10, 8),
            culmination_time=datetime(2020, 6, 1, 10, 4),
            max_elevation_deg=42.0,
        )
        assert window.contains(datetime(2020, 6, 1, 10, 4))
        assert not window.contains(datetime(2020, 6, 1, 10, 9))
        assert window.duration_seconds == 480.0


class TestHalfOpenBoundary:
    """Regression for the half-open ``[rise, set)`` interval contract."""

    def test_rise_inclusive_set_exclusive(self):
        window = ContactWindow(
            rise_time=datetime(2020, 6, 1, 10, 0),
            set_time=datetime(2020, 6, 1, 10, 8),
            culmination_time=datetime(2020, 6, 1, 10, 4),
            max_elevation_deg=42.0,
        )
        assert window.contains(window.rise_time)
        assert not window.contains(window.set_time)

    def test_shared_boundary_tick_belongs_to_exactly_one_window(self):
        """Back-to-back windows never both claim the boundary instant."""
        boundary = datetime(2020, 6, 1, 10, 8)
        earlier = ContactWindow(
            rise_time=datetime(2020, 6, 1, 10, 0),
            set_time=boundary,
            culmination_time=datetime(2020, 6, 1, 10, 4),
            max_elevation_deg=42.0,
        )
        later = ContactWindow(
            rise_time=boundary,
            set_time=datetime(2020, 6, 1, 10, 15),
            culmination_time=datetime(2020, 6, 1, 10, 11),
            max_elevation_deg=17.0,
        )
        assert [w.contains(boundary) for w in (earlier, later)] == [
            False, True,
        ]
        assert not earlier.overlaps(later)
