"""Tests for ground tracks and revisit analysis."""

from datetime import datetime

import pytest

from repro.orbits.groundtrack import (
    constellation_revisit,
    ground_track,
    revisit_gaps_hours,
    target_visits,
)
from repro.orbits.sgp4 import SGP4

EPOCH = datetime(2020, 6, 1)


@pytest.fixture(scope="module")
def propagator(small_tles_module):
    return SGP4(small_tles_module[0]).propagate


@pytest.fixture(scope="module")
def small_tles_module():
    from repro.orbits.constellation import synthetic_leo_constellation

    return synthetic_leo_constellation(4, EPOCH, seed=42)


class TestGroundTrack:
    def test_point_count(self, propagator):
        points = list(ground_track(propagator, EPOCH, 600.0, step_s=60.0))
        assert len(points) == 11

    def test_coordinates_valid(self, propagator):
        for p in ground_track(propagator, EPOCH, 5760.0, step_s=120.0):
            assert -90.0 <= p.latitude_deg <= 90.0
            assert -180.0 <= p.longitude_deg <= 180.0
            assert 200.0 < p.altitude_km < 1000.0

    def test_latitude_bounded_by_inclination(self, small_tles_module):
        tle = small_tles_module[0]
        prop = SGP4(tle).propagate
        max_lat = max(
            abs(p.latitude_deg)
            for p in ground_track(prop, EPOCH, 86400.0, step_s=120.0)
        )
        # |lat| <= inclination (or 180 - inclination for retrograde).
        bound = min(tle.inclination_deg, 180.0 - tle.inclination_deg)
        assert max_lat <= bound + 0.5

    def test_track_moves_westward_between_orbits(self, propagator):
        """Earth rotation shifts successive equator crossings west."""
        crossings = []
        previous = None
        for p in ground_track(propagator, EPOCH, 4 * 5760.0, step_s=30.0):
            if previous is not None and previous.latitude_deg < 0 <= p.latitude_deg:
                crossings.append(p.longitude_deg)
            previous = p
        assert len(crossings) >= 2
        delta = (crossings[1] - crossings[0] + 540.0) % 360.0 - 180.0
        assert -35.0 < delta < -15.0  # ~ -24 deg per ~96 min orbit

    def test_invalid_parameters(self, propagator):
        with pytest.raises(ValueError):
            list(ground_track(propagator, EPOCH, -1.0))
        with pytest.raises(ValueError):
            list(ground_track(propagator, EPOCH, 100.0, step_s=0.0))


class TestTargetVisits:
    def test_wide_swath_finds_visits(self, propagator):
        visits = target_visits(propagator, 0.0, 0.0, swath_km=3000.0,
                               start=EPOCH, duration_s=86400.0, step_s=60.0)
        assert visits
        for v in visits:
            assert v.cross_track_km <= 1500.0

    def test_narrow_swath_fewer_visits(self, propagator):
        wide = target_visits(propagator, 0.0, 0.0, 3000.0, EPOCH, 86400.0, 60.0)
        narrow = target_visits(propagator, 0.0, 0.0, 300.0, EPOCH, 86400.0, 60.0)
        assert len(narrow) <= len(wide)

    def test_polar_target_with_polar_orbit(self, small_tles_module):
        # Find an SSO/polar member of the sample constellation.
        polar = next(
            t for t in small_tles_module if t.inclination_deg > 80.0
        )
        prop = SGP4(polar).propagate
        visits = target_visits(prop, 85.0, 0.0, swath_km=3000.0,
                               start=EPOCH, duration_s=86400.0, step_s=60.0)
        # A polar orbiter passes near the pole every orbit (~15/day);
        # a 3000 km swath catches most of them.
        assert len(visits) >= 6

    def test_invalid_swath(self, propagator):
        with pytest.raises(ValueError):
            target_visits(propagator, 0.0, 0.0, 0.0, EPOCH, 3600.0)


class TestRevisit:
    def test_gaps_sorted_input_invariant(self):
        times = [EPOCH.replace(hour=h) for h in (3, 1, 10)]
        gaps = revisit_gaps_hours(times)
        assert gaps == [2.0, 7.0]

    def test_constellation_improves_revisit(self, small_tles_module):
        single = [SGP4(small_tles_module[0]).propagate]
        full = [SGP4(t).propagate for t in small_tles_module]
        stats_one = constellation_revisit(single, 40.0, -100.0, 2500.0,
                                          EPOCH, 86400.0)
        stats_all = constellation_revisit(full, 40.0, -100.0, 2500.0,
                                          EPOCH, 86400.0)
        assert stats_all["visits"] >= stats_one["visits"]
