"""Tests for TLE catalog management."""

from datetime import datetime, timedelta

import pytest

from repro.orbits.catalog import TLECatalog, staleness_error_km
from repro.orbits.constellation import synthetic_leo_constellation
from repro.orbits.tle import TLE, TLEError

EPOCH = datetime(2020, 6, 1)


def refit(tle: TLE, days_later: float) -> TLE:
    """The same orbit re-fitted at a later epoch (drifted elements)."""
    from repro.orbits.kepler import KeplerJ2Propagator
    import math

    prop = KeplerJ2Propagator(tle)
    new_epoch = tle.epoch + timedelta(days=days_later)
    dt = days_later * 86400.0
    return TLE.from_elements(
        satnum=tle.satnum,
        epoch=new_epoch,
        inclination_deg=tle.inclination_deg,
        raan_deg=(tle.raan_deg + math.degrees(prop.raan_dot * dt)) % 360.0,
        eccentricity=tle.eccentricity,
        argp_deg=(tle.argp_deg + math.degrees(prop.argp_dot * dt)) % 360.0,
        mean_anomaly_deg=(tle.mean_anomaly_deg
                          + math.degrees(prop.mean_anomaly_dot * dt)) % 360.0,
        mean_motion_rev_day=tle.mean_motion_rev_day,
        bstar=tle.bstar,
        name=tle.name,
    )


@pytest.fixture(scope="module")
def tles():
    return synthetic_leo_constellation(5, EPOCH, seed=8)


class TestCatalog:
    def test_add_and_lookup(self, tles):
        catalog = TLECatalog()
        catalog.extend(tles)
        assert len(catalog) == 5
        assert tles[0].satnum in catalog
        assert catalog.latest(tles[0].satnum).satnum == tles[0].satnum

    def test_latest_picks_freshest(self, tles):
        catalog = TLECatalog()
        old = tles[0]
        new = refit(old, 3.0)
        catalog.add(new)
        catalog.add(old)  # insertion order should not matter
        assert catalog.latest(old.satnum).epoch == new.epoch

    def test_as_of_excludes_future_elements(self, tles):
        catalog = TLECatalog()
        old = tles[0]
        new = refit(old, 3.0)
        catalog.extend([old, new])
        as_of = old.epoch + timedelta(days=1)
        assert catalog.latest(old.satnum, as_of=as_of).epoch == old.epoch

    def test_as_of_before_everything_raises(self, tles):
        catalog = TLECatalog()
        catalog.add(tles[0])
        with pytest.raises(KeyError):
            catalog.latest(tles[0].satnum, as_of=EPOCH - timedelta(days=30))

    def test_unknown_satellite(self):
        with pytest.raises(KeyError):
            TLECatalog().latest(99999)

    def test_epochs_sorted(self, tles):
        catalog = TLECatalog()
        old = tles[0]
        catalog.extend([refit(old, 5.0), old, refit(old, 2.0)])
        epochs = catalog.epochs(old.satnum)
        assert epochs == sorted(epochs)


class TestSerialization:
    def test_3le_round_trip(self, tles):
        catalog = TLECatalog()
        catalog.extend(tles)
        text = catalog.to_3le()
        again = TLECatalog.from_3le(text)
        assert again.satnums == catalog.satnums
        for satnum in catalog.satnums:
            assert again.latest(satnum).to_lines() == \
                catalog.latest(satnum).to_lines()

    def test_2le_without_names(self, tles):
        pairs = []
        for tle in tles[:2]:
            line1, line2 = tle.to_lines()
            pairs.extend([line1, line2])
        catalog = TLECatalog.from_3le("\n".join(pairs))
        assert len(catalog) == 2

    def test_garbage_rejected(self):
        with pytest.raises(TLEError):
            TLECatalog.from_3le("this is not\na tle file\nat all")


class TestStaleness:
    def test_fresh_elements_zero_error(self, tles):
        error = staleness_error_km(tles[0], tles[0], EPOCH + timedelta(days=1))
        assert error == 0.0

    def test_error_grows_with_staleness(self, tles):
        old = tles[0]
        fresh = refit(old, 3.0)
        when_soon = fresh.epoch + timedelta(hours=1)
        when_late = fresh.epoch + timedelta(days=4)
        assert staleness_error_km(old, fresh, when_late) >= 0.0
        assert staleness_error_km(old, fresh, when_soon) >= 0.0

    def test_mismatched_satellites_rejected(self, tles):
        with pytest.raises(ValueError):
            staleness_error_km(tles[0], tles[1], EPOCH)
