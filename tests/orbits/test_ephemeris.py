"""Batched fleet propagation vs the scalar SGP4 reference."""

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.orbits.constellation import synthetic_leo_constellation
from repro.orbits.ephemeris import (
    BatchSGP4,
    EphemerisTable,
    clear_ephemeris_cache,
    shared_ephemeris_table,
)
from repro.orbits.sgp4 import SGP4
from repro.orbits.timebase import datetime_to_jd, gmst_rad
from repro.satellites.satellite import Satellite

EPOCH = datetime(2020, 6, 1)


@pytest.fixture(scope="module")
def tles():
    return synthetic_leo_constellation(12, EPOCH, seed=3)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_ephemeris_cache()
    yield
    clear_ephemeris_cache()


class TestBatchSGP4:
    def test_matches_scalar_over_a_day(self, tles):
        """Sub-metre agreement with per-satellite SGP4 across 24 h."""
        props = [SGP4(t) for t in tles]
        batch = BatchSGP4(props)
        # One tsince grid per satellite: minutes since its own epoch.
        minutes = np.arange(0.0, 1440.0, 30.0)
        for tsince in minutes:
            pos_b, vel_b = batch.propagate_tsince(
                np.full(len(props), tsince)
            )
            for i, prop in enumerate(props):
                pos_s, vel_s = prop.propagate_tsince(float(tsince))
                assert np.max(np.abs(pos_b[i] - pos_s)) < 1e-3  # < 1 m
                assert np.max(np.abs(vel_b[i] - vel_s)) < 1e-6

    def test_broadcasts_time_grids(self, tles):
        props = [SGP4(t) for t in tles]
        batch = BatchSGP4(props)
        grid = np.arange(0.0, 60.0, 10.0)[:, None] + np.zeros(len(props))
        pos, vel = batch.propagate_tsince(grid)
        assert pos.shape == (6, len(props), 3)
        assert vel.shape == (6, len(props), 3)


class TestEphemerisTable:
    def test_positions_match_scalar_pipeline(self, tles):
        """Table rows equal scalar propagate + GMST rotation, < 1 m."""
        fleet = [Satellite(tle=t) for t in tles]
        table = EphemerisTable.build(fleet, EPOCH, 48, 60.0)
        for k in (0, 1, 17, 47):
            when = EPOCH + timedelta(seconds=60.0 * k)
            theta = gmst_rad(datetime_to_jd(when))
            cos_t, sin_t = np.cos(theta), np.sin(theta)
            rot = np.array(
                [[cos_t, sin_t, 0.0], [-sin_t, cos_t, 0.0], [0.0, 0.0, 1.0]]
            )
            grid = table.positions_ecef(when)
            for i, sat in enumerate(fleet):
                pos_teme, _ = sat.position_teme(when)
                assert np.max(np.abs(grid[i] - rot @ pos_teme)) < 1e-3

    def test_off_grid_and_out_of_range_lookups(self, tles):
        fleet = [Satellite(tle=t) for t in tles]
        table = EphemerisTable.build(fleet, EPOCH, 10, 60.0)
        assert table.index_of(EPOCH + timedelta(seconds=300)) == 5
        assert table.index_of(EPOCH + timedelta(seconds=330)) is None
        assert table.index_of(EPOCH - timedelta(seconds=60)) is None
        assert table.index_of(EPOCH + timedelta(seconds=600)) is None
        assert table.positions_ecef(EPOCH + timedelta(seconds=90)) is None

    def test_covers(self, tles):
        fleet = [Satellite(tle=t) for t in tles]
        table = EphemerisTable.build(fleet, EPOCH, 10, 60.0)
        assert table.covers(EPOCH, 10, 60.0)
        assert table.covers(EPOCH, 4, 60.0)
        assert not table.covers(EPOCH, 11, 60.0)
        assert not table.covers(EPOCH, 4, 30.0)
        assert not table.covers(EPOCH + timedelta(seconds=60), 4, 60.0)

    def test_save_load_roundtrip(self, tles, tmp_path):
        fleet = [Satellite(tle=t) for t in tles]
        table = EphemerisTable.build(fleet, EPOCH, 5, 60.0)
        path = str(tmp_path / "table.npz")
        table.save(path)
        loaded = EphemerisTable.load(path)
        assert loaded.start == table.start
        assert loaded.step_s == table.step_s
        np.testing.assert_array_equal(loaded.positions, table.positions)


class TestSharedCache:
    def test_same_table_served_across_variants(self, tles):
        fleet_a = [Satellite(tle=t) for t in tles]
        fleet_b = [Satellite(tle=t) for t in tles]  # same orbits, new objects
        table_a = shared_ephemeris_table(fleet_a, EPOCH, 20, 60.0)
        table_b = shared_ephemeris_table(fleet_b, EPOCH, 20, 60.0)
        assert table_a is table_b

    def test_longer_table_serves_shorter_request(self, tles):
        fleet = [Satellite(tle=t) for t in tles]
        long_table = shared_ephemeris_table(fleet, EPOCH, 30, 60.0)
        short_table = shared_ephemeris_table(fleet, EPOCH, 10, 60.0)
        assert short_table is long_table

    def test_corrupt_disk_cache_is_rebuilt(self, tles, tmp_path):
        fleet = [Satellite(tle=t) for t in tles]
        table = shared_ephemeris_table(
            fleet, EPOCH, 6, 60.0, cache_dir=str(tmp_path)
        )
        (cache_file,) = tmp_path.glob("ephemeris_*.npz")
        cache_file.write_text("garbage")
        clear_ephemeris_cache()
        rebuilt = shared_ephemeris_table(
            fleet, EPOCH, 6, 60.0, cache_dir=str(tmp_path)
        )
        np.testing.assert_array_equal(rebuilt.positions, table.positions)

    def test_truncated_disk_cache_is_rebuilt(self, tles, tmp_path):
        """A file cut off mid-array (killed writer on a non-atomic
        filesystem, torn download, ...) must be treated as corrupt."""
        fleet = [Satellite(tle=t) for t in tles]
        table = shared_ephemeris_table(
            fleet, EPOCH, 6, 60.0, cache_dir=str(tmp_path)
        )
        (cache_file,) = tmp_path.glob("ephemeris_*.npz")
        payload = cache_file.read_bytes()
        # Keep the zip header and most of the positions array, drop the tail.
        cache_file.write_bytes(payload[: int(len(payload) * 0.6)])
        clear_ephemeris_cache()
        rebuilt = shared_ephemeris_table(
            fleet, EPOCH, 6, 60.0, cache_dir=str(tmp_path)
        )
        np.testing.assert_array_equal(rebuilt.positions, table.positions)
        # The rebuild also repaired the on-disk copy.
        clear_ephemeris_cache()
        reloaded = shared_ephemeris_table(
            fleet, EPOCH, 6, 60.0, cache_dir=str(tmp_path)
        )
        np.testing.assert_array_equal(reloaded.positions, table.positions)

    def test_no_temp_files_left_behind(self, tles, tmp_path):
        fleet = [Satellite(tle=t) for t in tles]
        shared_ephemeris_table(fleet, EPOCH, 6, 60.0, cache_dir=str(tmp_path))
        assert not list(tmp_path.glob(".ephemeris_tmp_*"))

    def test_disk_cache_roundtrip(self, tles, tmp_path):
        fleet = [Satellite(tle=t) for t in tles]
        table = shared_ephemeris_table(
            fleet, EPOCH, 8, 60.0, cache_dir=str(tmp_path)
        )
        assert list(tmp_path.glob("ephemeris_*.npz"))
        clear_ephemeris_cache()
        reloaded = shared_ephemeris_table(
            fleet, EPOCH, 8, 60.0, cache_dir=str(tmp_path)
        )
        assert reloaded is not table
        np.testing.assert_array_equal(reloaded.positions, table.positions)
