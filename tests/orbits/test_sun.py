"""Tests for solar geometry and eclipse detection."""

import math
from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.orbits.sun import AU_KM, is_eclipsed, sun_position_teme, sunlit_fraction


class TestSunPosition:
    def test_distance_near_one_au(self):
        for month in range(1, 13):
            sun = sun_position_teme(datetime(2020, month, 15))
            distance = float(np.linalg.norm(sun))
            assert 0.98 * AU_KM < distance < 1.02 * AU_KM

    def test_perihelion_in_january(self):
        january = float(np.linalg.norm(sun_position_teme(datetime(2020, 1, 4))))
        july = float(np.linalg.norm(sun_position_teme(datetime(2020, 7, 4))))
        assert january < july

    def test_equinox_on_equatorial_plane(self):
        # Around the March equinox the sun's declination crosses zero.
        sun = sun_position_teme(datetime(2020, 3, 20, 4))
        declination = math.degrees(
            math.asin(sun[2] / np.linalg.norm(sun))
        )
        assert abs(declination) < 0.7

    def test_summer_solstice_declination(self):
        sun = sun_position_teme(datetime(2020, 6, 20, 22))
        declination = math.degrees(math.asin(sun[2] / np.linalg.norm(sun)))
        assert declination == pytest.approx(23.43, abs=0.1)


class TestEclipse:
    def test_subsolar_satellite_is_sunlit(self):
        when = datetime(2020, 6, 1, 12)
        sun = sun_position_teme(when)
        sat = sun / np.linalg.norm(sun) * 6878.0  # toward the sun
        assert not is_eclipsed(sat, when)

    def test_antisolar_satellite_is_shadowed(self):
        when = datetime(2020, 6, 1, 12)
        sun = sun_position_teme(when)
        sat = -sun / np.linalg.norm(sun) * 6878.0  # behind the Earth
        assert is_eclipsed(sat, when)

    def test_terminator_satellite_sunlit(self):
        # A point perpendicular to the sun direction at LEO altitude grazes
        # the shadow cylinder boundary from outside.
        when = datetime(2020, 6, 1, 12)
        sun = sun_position_teme(when)
        sun_hat = sun / np.linalg.norm(sun)
        perpendicular = np.cross(sun_hat, [0.0, 0.0, 1.0])
        perpendicular /= np.linalg.norm(perpendicular)
        assert not is_eclipsed(perpendicular * 6878.0, when)

    def test_leo_orbit_sunlit_fraction(self, small_tles):
        from repro.orbits.sgp4 import SGP4

        prop = SGP4(small_tles[0])
        fraction = sunlit_fraction(
            prop.propagate, datetime(2020, 6, 1),
            duration_s=2 * 5760.0,  # two orbits
        )
        # LEO spends roughly 55-100% of an orbit in sunlight (dawn-dusk
        # SSO orbits can be eclipse-free).
        assert 0.5 <= fraction <= 1.0

    def test_sunlit_fraction_validates_samples(self, small_tles):
        from repro.orbits.sgp4 import SGP4

        prop = SGP4(small_tles[0])
        with pytest.raises(ValueError):
            sunlit_fraction(prop.propagate, datetime(2020, 6, 1), 5760.0,
                            samples=1)
