"""Tests for Kepler's equation, element conversions, and the J2 propagator."""

import math
from datetime import datetime, timedelta

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.orbits.constants import WGS72
from repro.orbits.kepler import (
    KeplerianElements,
    KeplerJ2Propagator,
    eccentric_anomaly_from_mean,
    true_anomaly_from_eccentric,
)
from repro.orbits.tle import TLE


class TestKeplerEquation:
    @given(
        mean=st.floats(min_value=-20.0, max_value=20.0),
        ecc=st.floats(min_value=0.0, max_value=0.95),
    )
    def test_solves_keplers_equation(self, mean, ecc):
        e_anom = eccentric_anomaly_from_mean(mean, ecc)
        residual = e_anom - ecc * math.sin(e_anom) - (mean % (2 * math.pi))
        # Compare modulo 2*pi.
        assert math.isclose(math.cos(residual), 1.0, abs_tol=1e-9)

    def test_circular_orbit_identity(self):
        for mean in (0.0, 1.0, 3.0, 6.0):
            assert eccentric_anomaly_from_mean(mean, 0.0) == pytest.approx(
                mean % (2 * math.pi)
            )

    def test_rejects_hyperbolic(self):
        with pytest.raises(ValueError):
            eccentric_anomaly_from_mean(1.0, 1.2)

    @given(
        e_anom=st.floats(min_value=0.0, max_value=2 * math.pi),
        ecc=st.floats(min_value=0.0, max_value=0.9),
    )
    def test_true_anomaly_range(self, e_anom, ecc):
        nu = true_anomaly_from_eccentric(e_anom, ecc)
        assert 0.0 <= nu < 2 * math.pi + 1e-9

    def test_true_anomaly_circular_equals_eccentric(self):
        for e_anom in (0.5, 2.0, 4.0):
            assert true_anomaly_from_eccentric(e_anom, 0.0) == pytest.approx(e_anom)


class TestElements:
    @pytest.fixture(scope="class")
    def elements(self):
        tle = TLE.from_elements(
            satnum=1, epoch=datetime(2020, 6, 1), inclination_deg=97.0,
            raan_deg=45.0, eccentricity=0.002, argp_deg=90.0,
            mean_anomaly_deg=10.0, mean_motion_rev_day=15.0,
        )
        return KeplerianElements.from_tle(tle)

    def test_semi_major_axis_from_mean_motion(self, elements):
        # 15 rev/day -> period 96 min -> a ~ 6932 km (mu=398600.8).
        n = 15.0 * 2 * math.pi / 86400.0
        expected = (WGS72.mu_km3_s2 / n**2) ** (1 / 3)
        assert elements.semi_major_axis_km == pytest.approx(expected)

    def test_apogee_perigee_ordering(self, elements):
        assert elements.apogee_radius_km > elements.perigee_radius_km
        assert elements.apogee_radius_km == pytest.approx(
            elements.semi_major_axis_km * 1.002
        )

    def test_state_vector_radius(self, elements):
        pos, vel = elements.to_state_vector()
        radius = float(np.linalg.norm(pos))
        assert elements.perigee_radius_km <= radius <= elements.apogee_radius_km + 1e-6

    def test_vis_viva(self, elements):
        pos, vel = elements.to_state_vector()
        r = float(np.linalg.norm(pos))
        v = float(np.linalg.norm(vel))
        expected_v = math.sqrt(
            WGS72.mu_km3_s2 * (2.0 / r - 1.0 / elements.semi_major_axis_km)
        )
        assert v == pytest.approx(expected_v, rel=1e-9)

    def test_angular_momentum_matches_elements(self, elements):
        pos, vel = elements.to_state_vector()
        h = np.cross(pos, vel)
        h_mag = float(np.linalg.norm(h))
        expected = math.sqrt(WGS72.mu_km3_s2 * elements.semi_latus_rectum_km)
        assert h_mag == pytest.approx(expected, rel=1e-9)
        # Inclination from the momentum vector.
        incl = math.acos(h[2] / h_mag)
        assert incl == pytest.approx(elements.inclination_rad, abs=1e-9)


class TestJ2Propagator:
    @pytest.fixture(scope="class")
    def sso_tle(self):
        return TLE.from_elements(
            satnum=2, epoch=datetime(2020, 6, 1), inclination_deg=97.79,
            raan_deg=0.0, eccentricity=0.001, argp_deg=0.0,
            mean_anomaly_deg=0.0, mean_motion_rev_day=14.9,
        )

    def test_sun_synchronous_raan_rate(self, sso_tle):
        prop = KeplerJ2Propagator(sso_tle)
        # SSO target: 360 deg/year = 0.9856 deg/day eastward.
        raan_dot_deg_day = math.degrees(prop.raan_dot) * 86400.0
        assert raan_dot_deg_day == pytest.approx(0.9856, abs=0.05)

    def test_retrograde_orbit_regresses_westward_when_prograde(self):
        tle = TLE.from_elements(
            satnum=3, epoch=datetime(2020, 6, 1), inclination_deg=51.6,
            raan_deg=0.0, eccentricity=0.001, argp_deg=0.0,
            mean_anomaly_deg=0.0, mean_motion_rev_day=15.5,
        )
        prop = KeplerJ2Propagator(tle)
        assert prop.raan_dot < 0.0  # prograde orbits regress westward

    def test_altitude_constant_for_circular(self, sso_tle):
        prop = KeplerJ2Propagator(sso_tle)
        radii = []
        for hours in range(0, 24, 3):
            pos, _ = prop.propagate(sso_tle.epoch + timedelta(hours=hours))
            radii.append(float(np.linalg.norm(pos)))
        assert max(radii) - min(radii) < 30.0
