"""Tests for Julian dates, TLE epochs, and sidereal time."""

import math
from datetime import datetime, timedelta, timezone

import pytest
from hypothesis import given, strategies as st

from repro.orbits.timebase import (
    JD_J2000,
    datetime_to_jd,
    datetime_to_tle_epoch,
    gmst_rad,
    jd_to_datetime,
    tle_epoch_to_datetime,
    wrap_pi,
    wrap_two_pi,
)


class TestJulianDate:
    def test_j2000_reference(self):
        assert datetime_to_jd(datetime(2000, 1, 1, 12)) == pytest.approx(JD_J2000)

    def test_unix_epoch(self):
        assert datetime_to_jd(datetime(1970, 1, 1)) == pytest.approx(2440587.5)

    def test_known_date(self):
        # 1957-10-04 19:26:24 UTC, Sputnik launch: JD 2436116.31
        jd = datetime_to_jd(datetime(1957, 10, 4, 19, 26, 24))
        assert jd == pytest.approx(2436116.31, abs=1e-4)

    def test_timezone_aware_input_converted(self):
        naive = datetime(2020, 6, 1, 12)
        aware = datetime(2020, 6, 1, 12, tzinfo=timezone.utc)
        assert datetime_to_jd(naive) == datetime_to_jd(aware)

    def test_round_trip(self):
        when = datetime(2023, 3, 14, 1, 59, 26)
        back = jd_to_datetime(datetime_to_jd(when))
        assert abs((back - when).total_seconds()) < 1e-3

    @given(st.floats(min_value=0, max_value=36524 * 86400))
    def test_round_trip_property(self, offset_s):
        when = datetime(2000, 1, 1) + timedelta(seconds=offset_s)
        back = jd_to_datetime(datetime_to_jd(when))
        assert abs((back - when).total_seconds()) < 1e-2


class TestTLEEpoch:
    def test_day_one_is_january_first(self):
        assert tle_epoch_to_datetime(20, 1.0) == datetime(2020, 1, 1)

    def test_fractional_day(self):
        when = tle_epoch_to_datetime(20, 1.5)
        assert when == datetime(2020, 1, 1, 12)

    def test_century_split(self):
        assert tle_epoch_to_datetime(57, 1.0).year == 1957
        assert tle_epoch_to_datetime(56, 1.0).year == 2056
        assert tle_epoch_to_datetime(99, 1.0).year == 1999
        assert tle_epoch_to_datetime(0, 1.0).year == 2000

    def test_rejects_bad_year(self):
        with pytest.raises(ValueError):
            tle_epoch_to_datetime(150, 1.0)

    def test_round_trip(self):
        when = datetime(2020, 10, 2, 23, 41, 24)
        year2, day = datetime_to_tle_epoch(when)
        assert year2 == 20
        back = tle_epoch_to_datetime(year2, day)
        assert abs((back - when).total_seconds()) < 1e-3


class TestGMST:
    def test_range(self):
        for offset in range(0, 36500, 37):
            jd = JD_J2000 + offset
            theta = gmst_rad(jd)
            assert 0.0 <= theta < 2.0 * math.pi

    def test_known_value(self):
        # Vallado example 3-5: 1992-08-20 12:14 UT1 -> GMST 152.578 deg
        jd = datetime_to_jd(datetime(1992, 8, 20, 12, 14, 0))
        theta_deg = math.degrees(gmst_rad(jd))
        assert theta_deg == pytest.approx(152.578, abs=0.01)

    def test_advances_faster_than_solar_day(self):
        # Sidereal day ~ 23h56m: after 24h GMST advances by ~360.986 deg.
        jd = JD_J2000 + 1234.0
        delta = math.degrees(gmst_rad(jd + 1.0) - gmst_rad(jd)) % 360.0
        assert delta == pytest.approx(0.9856, abs=0.01)


class TestWrapping:
    @given(st.floats(min_value=-1000.0, max_value=1000.0))
    def test_wrap_two_pi_range(self, angle):
        wrapped = wrap_two_pi(angle)
        assert 0.0 <= wrapped < 2.0 * math.pi
        # Same angle modulo 2*pi.
        assert math.isclose(
            math.cos(wrapped), math.cos(angle), abs_tol=1e-9
        )

    @given(st.floats(min_value=-1000.0, max_value=1000.0))
    def test_wrap_pi_range(self, angle):
        wrapped = wrap_pi(angle)
        assert -math.pi < wrapped <= math.pi + 1e-12
