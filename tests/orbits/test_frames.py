"""Tests for TEME/ECEF rotations and geodetic conversions."""

import math
from datetime import datetime

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.orbits.frames import (
    ecef_to_geodetic,
    ecef_to_teme,
    geodetic_to_ecef,
    subsatellite_point,
    teme_to_ecef,
)
from repro.orbits.timebase import datetime_to_jd


class TestTemeEcef:
    def test_rotation_preserves_norm(self):
        pos = np.array([4000.0, -5000.0, 2500.0])
        jd = datetime_to_jd(datetime(2020, 6, 1, 7, 30))
        out = teme_to_ecef(pos, jd)
        assert np.linalg.norm(out) == pytest.approx(np.linalg.norm(pos))

    def test_z_component_unchanged(self):
        pos = np.array([1234.0, 5678.0, 4321.0])
        jd = datetime_to_jd(datetime(2021, 1, 15))
        out = teme_to_ecef(pos, jd)
        assert out[2] == pytest.approx(pos[2])

    @given(
        x=st.floats(min_value=-8000, max_value=8000),
        y=st.floats(min_value=-8000, max_value=8000),
        z=st.floats(min_value=-8000, max_value=8000),
        hours=st.floats(min_value=0, max_value=8760),
    )
    def test_round_trip(self, x, y, z, hours):
        pos = np.array([x, y, z])
        jd = datetime_to_jd(datetime(2020, 1, 1)) + hours / 24.0
        back = ecef_to_teme(teme_to_ecef(pos, jd), jd)
        assert np.allclose(back, pos, atol=1e-9)

    def test_velocity_subtracts_earth_rotation(self):
        # A satellite stationary in TEME at the equator moves westward in
        # ECEF at omega * r.
        pos = np.array([7000.0, 0.0, 0.0])
        vel = np.array([0.0, 0.0, 0.0])
        jd = datetime_to_jd(datetime(2020, 6, 1))
        _pos_e, vel_e = teme_to_ecef(pos, jd, vel)
        speed = float(np.linalg.norm(vel_e))
        assert speed == pytest.approx(7.2921158553e-5 * 7000.0, rel=1e-3)


class TestGeodetic:
    def test_equator_prime_meridian(self):
        ecef = geodetic_to_ecef(0.0, 0.0, 0.0)
        assert ecef[0] == pytest.approx(6378.137)
        assert abs(ecef[1]) < 1e-9
        assert abs(ecef[2]) < 1e-9

    def test_north_pole(self):
        ecef = geodetic_to_ecef(90.0, 0.0, 0.0)
        # Polar radius b = a(1-f) ~ 6356.752 km.
        assert ecef[2] == pytest.approx(6356.7523142, abs=1e-3)
        assert abs(ecef[0]) < 1e-6

    def test_altitude_adds_radially(self):
        ground = geodetic_to_ecef(45.0, 7.0, 0.0)
        high = geodetic_to_ecef(45.0, 7.0, 10.0)
        assert np.linalg.norm(high - ground) == pytest.approx(10.0, abs=1e-6)

    @given(
        lat=st.floats(min_value=-89.9, max_value=89.9),
        lon=st.floats(min_value=-180.0, max_value=180.0),
        alt=st.floats(min_value=-0.2, max_value=2000.0),
    )
    def test_round_trip(self, lat, lon, alt):
        ecef = geodetic_to_ecef(lat, lon, alt)
        lat2, lon2, alt2 = ecef_to_geodetic(ecef)
        assert lat2 == pytest.approx(lat, abs=1e-6)
        assert math.isclose(
            math.cos(math.radians(lon2 - lon)), 1.0, abs_tol=1e-9
        )
        assert alt2 == pytest.approx(alt, abs=1e-3)

    def test_polar_axis_point(self):
        lat, lon, alt = ecef_to_geodetic(np.array([0.0, 0.0, 6400.0]))
        assert lat == pytest.approx(90.0)
        assert alt == pytest.approx(6400.0 - 6356.7523142, abs=0.01)


class TestSubsatellitePoint:
    def test_leo_altitude_recovered(self, str3_tle):
        from repro.orbits.sgp4 import SGP4

        prop = SGP4(str3_tle)
        pos, _ = prop.propagate_tsince(0.0)
        jd = datetime_to_jd(str3_tle.epoch)
        lat, lon, alt = subsatellite_point(pos, jd)
        assert -90.0 <= lat <= 90.0
        assert -180.0 <= lon <= 180.0
        assert 100.0 < alt < 1500.0
