"""SGP4 validation against the Spacetrack Report #3 published test vectors."""

import math
from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.orbits.sgp4 import SGP4, SGP4Error
from repro.orbits.tle import TLE

# Spacetrack Report #3 SGP4 test case outputs (km and km/s), tsince minutes.
STR3_EXPECTED = {
    0.0: (
        [2328.97048951, -5995.22076416, 1719.97067261],
        [2.91207230, -0.98341546, -7.09081703],
    ),
    360.0: (
        [2456.10705566, -6071.93853760, 1222.89727783],
        [2.67938992, -0.44829041, -7.22879231],
    ),
}


class TestSTR3Vector:
    def test_position_and_velocity(self, str3_tle):
        prop = SGP4(str3_tle)
        for tsince, (exp_pos, exp_vel) in STR3_EXPECTED.items():
            pos, vel = prop.propagate_tsince(tsince)
            # Sub-10m position agreement with the published FORTRAN output.
            assert np.max(np.abs(pos - np.array(exp_pos))) < 0.01
            assert np.max(np.abs(vel - np.array(exp_vel))) < 1e-4

    def test_absolute_time_equals_tsince(self, str3_tle):
        prop = SGP4(str3_tle)
        when = str3_tle.epoch + timedelta(minutes=360.0)
        pos_a, _ = prop.propagate(when)
        pos_b, _ = prop.propagate_tsince(360.0)
        assert np.allclose(pos_a, pos_b)


class TestPhysicalInvariants:
    @pytest.fixture(scope="class")
    def leo_tle(self):
        return TLE.from_elements(
            satnum=90001, epoch=datetime(2020, 6, 1), inclination_deg=97.5,
            raan_deg=120.0, eccentricity=0.001, argp_deg=30.0,
            mean_anomaly_deg=200.0, mean_motion_rev_day=15.2,
        )

    def test_altitude_band(self, leo_tle):
        prop = SGP4(leo_tle)
        for minutes in range(0, 1440, 17):
            pos, _ = prop.propagate_tsince(float(minutes))
            radius = float(np.linalg.norm(pos))
            altitude = radius - 6378.135
            assert 150.0 < altitude < 1200.0

    def test_speed_near_circular_orbital_velocity(self, leo_tle):
        prop = SGP4(leo_tle)
        for minutes in (0.0, 45.0, 300.0):
            pos, vel = prop.propagate_tsince(minutes)
            speed = float(np.linalg.norm(vel))
            radius = float(np.linalg.norm(pos))
            v_circ = math.sqrt(398600.8 / radius)
            assert speed == pytest.approx(v_circ, rel=0.01)

    def test_period_matches_mean_motion(self, leo_tle):
        prop = SGP4(leo_tle)
        period_min = 1440.0 / leo_tle.mean_motion_rev_day
        pos0, _ = prop.propagate_tsince(0.0)
        pos1, _ = prop.propagate_tsince(period_min)
        # One orbit later the satellite is back near the same inertial spot
        # (J2 drift moves it a little).
        assert float(np.linalg.norm(pos1 - pos0)) < 150.0

    def test_angular_momentum_direction_stable(self, leo_tle):
        prop = SGP4(leo_tle)
        pos0, vel0 = prop.propagate_tsince(0.0)
        h0 = np.cross(pos0, vel0)
        pos1, vel1 = prop.propagate_tsince(200.0)
        h1 = np.cross(pos1, vel1)
        cos_angle = float(
            np.dot(h0, h1) / (np.linalg.norm(h0) * np.linalg.norm(h1))
        )
        assert cos_angle > 0.999


class TestErrors:
    def test_deep_space_rejected(self):
        geo = TLE.from_elements(
            satnum=90002, epoch=datetime(2020, 6, 1), inclination_deg=0.1,
            raan_deg=0.0, eccentricity=0.0002, argp_deg=0.0,
            mean_anomaly_deg=0.0, mean_motion_rev_day=1.0027,
        )
        with pytest.raises(SGP4Error, match="deep-space"):
            SGP4(geo)

    def test_decay_detected(self):
        # Very low orbit with a huge drag term decays within days.
        decaying = TLE.from_elements(
            satnum=90003, epoch=datetime(2020, 6, 1), inclination_deg=51.6,
            raan_deg=0.0, eccentricity=0.001, argp_deg=0.0,
            mean_anomaly_deg=0.0, mean_motion_rev_day=16.4, bstar=0.1,
        )
        prop = SGP4(decaying)
        with pytest.raises(SGP4Error, match="decayed|diverged"):
            for day in range(1, 120):
                prop.propagate_tsince(day * 1440.0)


class TestAgreementWithKeplerJ2:
    def test_short_horizon_agreement(self, small_tles):
        from repro.orbits.kepler import KeplerJ2Propagator

        for tle in small_tles[:3]:
            sgp4 = SGP4(tle)
            kj2 = KeplerJ2Propagator(tle)
            when = tle.epoch + timedelta(hours=1)
            pos_a, _ = sgp4.propagate(when)
            pos_b, _ = kj2.propagate(when)
            # Different theories; for near-circular LEO they should agree
            # to tens of km over an hour.
            assert float(np.linalg.norm(pos_a - pos_b)) < 60.0
