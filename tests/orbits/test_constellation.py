"""Tests for synthetic constellation generation."""

import math
from datetime import datetime

import pytest

from repro.orbits.constellation import (
    mean_motion_rev_day_for_altitude,
    sun_synchronous_inclination_deg,
    synthetic_leo_constellation,
    walker_delta,
)
from repro.orbits.sgp4 import SGP4

EPOCH = datetime(2020, 6, 1)


class TestMeanMotion:
    def test_iss_altitude(self):
        # ~420 km altitude -> ~15.5 rev/day.
        assert mean_motion_rev_day_for_altitude(420.0) == pytest.approx(15.49, abs=0.05)

    def test_monotonic_decreasing_with_altitude(self):
        motions = [mean_motion_rev_day_for_altitude(a) for a in (300, 500, 800, 1200)]
        assert all(a > b for a, b in zip(motions, motions[1:]))


class TestSunSynchronous:
    def test_known_altitude(self):
        # ~98 deg at 600 km is the textbook value.
        assert sun_synchronous_inclination_deg(600.0) == pytest.approx(97.79, abs=0.15)

    def test_always_retrograde(self):
        for alt in (300, 500, 800):
            assert sun_synchronous_inclination_deg(alt) > 90.0

    def test_impossible_altitude_raises(self):
        with pytest.raises(ValueError):
            sun_synchronous_inclination_deg(60000.0)


class TestSyntheticConstellation:
    def test_count_and_uniqueness(self):
        tles = synthetic_leo_constellation(50, EPOCH, seed=1)
        assert len(tles) == 50
        assert len({t.satnum for t in tles}) == 50

    def test_determinism(self):
        a = synthetic_leo_constellation(10, EPOCH, seed=9)
        b = synthetic_leo_constellation(10, EPOCH, seed=9)
        assert [t.to_lines() for t in a] == [t.to_lines() for t in b]

    def test_different_seeds_differ(self):
        a = synthetic_leo_constellation(10, EPOCH, seed=1)
        b = synthetic_leo_constellation(10, EPOCH, seed=2)
        assert [t.to_lines() for t in a] != [t.to_lines() for t in b]

    def test_altitude_band(self):
        tles = synthetic_leo_constellation(30, EPOCH, seed=3)
        for tle in tles:
            n = tle.mean_motion_rev_day
            # 300-600 km circular -> roughly 14.9-15.8 rev/day.
            assert 14.5 < n < 16.2

    def test_inclination_mix_present(self):
        tles = synthetic_leo_constellation(200, EPOCH, seed=4)
        sso = sum(1 for t in tles if 96.0 < t.inclination_deg < 99.5)
        iss = sum(1 for t in tles if 50.0 < t.inclination_deg < 53.0)
        assert sso > 40  # ~45% expected
        assert iss > 30  # ~35% expected

    def test_all_propagate_with_sgp4(self):
        for tle in synthetic_leo_constellation(10, EPOCH, seed=5):
            SGP4(tle).propagate_tsince(90.0)

    def test_rejects_zero_count(self):
        with pytest.raises(ValueError):
            synthetic_leo_constellation(0, EPOCH)


class TestWalkerDelta:
    def test_structure(self):
        tles = walker_delta(12, planes=3, phasing=1, inclination_deg=53.0,
                            altitude_km=550.0, epoch=EPOCH)
        assert len(tles) == 12
        raans = sorted({round(t.raan_deg, 3) for t in tles})
        assert raans == [0.0, 120.0, 240.0]
        # 4 satellites per plane, evenly phased.
        plane0 = sorted(
            t.mean_anomaly_deg for t in tles if abs(t.raan_deg) < 1e-6
        )
        diffs = [b - a for a, b in zip(plane0, plane0[1:])]
        assert all(d == pytest.approx(90.0, abs=1e-6) for d in diffs)

    def test_invalid_divisibility(self):
        with pytest.raises(ValueError):
            walker_delta(10, planes=3, phasing=0, inclination_deg=53.0,
                         altitude_km=550.0, epoch=EPOCH)

    def test_invalid_phasing(self):
        with pytest.raises(ValueError):
            walker_delta(12, planes=3, phasing=3, inclination_deg=53.0,
                         altitude_km=550.0, epoch=EPOCH)
