"""Scaling-path ephemeris features: float32, streaming windows, shared memory.

Everything here defends one invariant: however the position grid is
stored (narrow dtype, windowed, or mapped from a parent's shared-memory
block), lookups return exactly the rows the monolithic float64-adjacent
build would have produced for that dtype.
"""

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.obs.recorder import Recorder
from repro.orbits.constellation import synthetic_leo_constellation
from repro.orbits.ephemeris import (
    _SHM_REGISTRY,
    EphemerisTable,
    StreamingEphemerisTable,
    attach_shared_tables,
    clear_ephemeris_cache,
    export_shared_table,
    shared_ephemeris_table,
)
from repro.satellites.satellite import Satellite

EPOCH = datetime(2020, 6, 1)


def _unlink(shm):
    """Close + unlink a test-owned block without tracker complaints.

    In-process attach (parent and "worker" are the same process here)
    unregisters the name from the resource tracker, so re-register
    before unlink or the tracker logs a KeyError at exit.
    """
    from multiprocessing import resource_tracker

    shm.close()
    try:
        resource_tracker.register(shm._name, "shared_memory")
    except Exception:
        pass
    shm.unlink()


@pytest.fixture(scope="module")
def tles():
    return synthetic_leo_constellation(12, EPOCH, seed=3)


@pytest.fixture(scope="module")
def satellites(tles):
    return [Satellite(tle=t) for t in tles]


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_ephemeris_cache()
    yield
    clear_ephemeris_cache()


class TestFloat32Tables:
    def test_dtype_preserved_and_close_to_float64(self, satellites):
        t64 = EphemerisTable.build(satellites, EPOCH, 90, 60.0)
        t32 = EphemerisTable.build(satellites, EPOCH, 90, 60.0,
                                   dtype="float32")
        assert t64.positions.dtype == np.float64
        assert t32.positions.dtype == np.float32
        # float32 at LEO radii (~7000 km) resolves ~0.4 m; stay well
        # under 10 m of the float64 grid.
        err_km = np.max(np.abs(t32.positions - t64.positions))
        assert err_km < 0.01
        assert t32.positions.nbytes == t64.positions.nbytes // 2

    def test_save_load_keeps_dtype(self, satellites, tmp_path):
        t32 = EphemerisTable.build(satellites, EPOCH, 30, 60.0,
                                   dtype="float32")
        path = str(tmp_path / "eph32.npz")
        t32.save(path)
        loaded = EphemerisTable.load(path)
        assert loaded.positions.dtype == np.float32
        np.testing.assert_array_equal(loaded.positions, t32.positions)

    def test_chunked_build_matches_single_pass(self, satellites):
        whole = EphemerisTable.build(satellites, EPOCH, 61, 60.0)
        chunked = EphemerisTable.build(satellites, EPOCH, 61, 60.0,
                                       chunk_steps=7)
        np.testing.assert_array_equal(whole.positions, chunked.positions)

    def test_shared_cache_keys_by_dtype(self, satellites):
        t32 = shared_ephemeris_table(satellites, EPOCH, 30, 60.0,
                                     dtype="float32")
        t64 = shared_ephemeris_table(satellites, EPOCH, 30, 60.0)
        assert t32 is not t64
        assert t32.positions.dtype == np.float32
        assert t64.positions.dtype == np.float64


class TestStreamingTable:
    def test_rows_bit_identical_to_monolithic(self, satellites):
        for dtype in ("float64", "float32"):
            monolithic = EphemerisTable.build(satellites, EPOCH, 120, 60.0,
                                              dtype=dtype)
            streaming = StreamingEphemerisTable(satellites, EPOCH, 120,
                                                60.0, window_steps=16,
                                                dtype=dtype)
            for k in range(120):
                when = EPOCH + timedelta(seconds=60.0 * k)
                np.testing.assert_array_equal(
                    streaming.positions_ecef(when),
                    monolithic.positions_ecef(when),
                )

    def test_bounded_residency_and_build_count(self, satellites):
        streaming = StreamingEphemerisTable(satellites, EPOCH, 128, 60.0,
                                            window_steps=16, max_resident=2)
        for k in range(128):
            streaming.positions_ecef(EPOCH + timedelta(seconds=60.0 * k))
            assert len(streaming._windows) <= 2
        # A forward-only walk builds each of the 8 windows exactly once.
        assert streaming.window_builds == 8

    def test_recorder_counts_window_builds(self, satellites):
        rec = Recorder()
        streaming = StreamingEphemerisTable(satellites, EPOCH, 64, 60.0,
                                            window_steps=32, recorder=rec)
        for k in range(64):
            streaming.positions_ecef(EPOCH + timedelta(seconds=60.0 * k))
        assert rec.counters_snapshot()["ephemeris_stream/window_builds"] == 2

    def test_lookup_api_matches_table(self, satellites):
        streaming = StreamingEphemerisTable(satellites, EPOCH, 30, 60.0,
                                            window_steps=8)
        assert streaming.index_of(EPOCH) == 0
        assert streaming.index_of(EPOCH + timedelta(seconds=90)) is None
        assert streaming.positions_ecef(EPOCH - timedelta(hours=1)) is None
        assert streaming.covers(EPOCH, 30, 60.0)
        assert not streaming.covers(EPOCH, 31, 60.0)
        assert not streaming.covers(EPOCH, 10, 30.0)


class TestSharedMemoryTables:
    def test_export_attach_roundtrip(self, satellites):
        digest, handle, shm = export_shared_table(satellites, EPOCH, 40,
                                                  60.0)
        try:
            reference = EphemerisTable.build(satellites, EPOCH, 40, 60.0)
            attach_shared_tables({digest: handle})
            rec = Recorder()
            table = shared_ephemeris_table(satellites, EPOCH, 40, 60.0,
                                           recorder=rec)
            assert rec.counters_snapshot()["ephemeris_cache/shm_hit"] == 1
            np.testing.assert_array_equal(table.positions,
                                          reference.positions)
            # The mapped table is now memory-cached; no second attach.
            rec2 = Recorder()
            shared_ephemeris_table(satellites, EPOCH, 20, 60.0,
                                   recorder=rec2)
            assert rec2.counters_snapshot()[
                "ephemeris_cache/memory_hit"] == 1
            table._shm.close()
        finally:
            _SHM_REGISTRY.pop(digest, None)
            clear_ephemeris_cache()
            _unlink(shm)

    def test_stale_handle_falls_back_to_build(self, satellites):
        digest, handle, shm = export_shared_table(satellites, EPOCH, 20,
                                                  60.0)
        shm.close()
        shm.unlink()  # parent died / unlinked early: handle is stale
        attach_shared_tables({digest: handle})
        try:
            rec = Recorder()
            table = shared_ephemeris_table(satellites, EPOCH, 20, 60.0,
                                           recorder=rec)
            assert rec.counters_snapshot()["ephemeris_cache/build"] == 1
            assert table.positions.shape == (20, len(satellites), 3)
        finally:
            _SHM_REGISTRY.pop(digest, None)

    def test_float32_shared_block(self, satellites):
        digest, handle, shm = export_shared_table(satellites, EPOCH, 20,
                                                  60.0, dtype="float32")
        try:
            attach_shared_tables({digest: handle})
            table = shared_ephemeris_table(satellites, EPOCH, 20, 60.0,
                                           dtype="float32")
            assert table.positions.dtype == np.float32
            reference = EphemerisTable.build(satellites, EPOCH, 20, 60.0,
                                             dtype="float32")
            np.testing.assert_array_equal(table.positions,
                                          reference.positions)
            table._shm.close()
        finally:
            _SHM_REGISTRY.pop(digest, None)
            clear_ephemeris_cache()
            _unlink(shm)
