"""Tests for look angles, visibility, and coverage geometry."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.orbits.frames import geodetic_to_ecef
from repro.orbits.topocentric import (
    Topocentric,
    coverage_radius_km,
    look_angles,
    max_slant_range_km,
)


def _target_above(lat, lon, alt_above_km):
    """ECEF point directly above a site."""
    site = geodetic_to_ecef(lat, lon, 0.0)
    up = site / np.linalg.norm(site)
    return site + up * alt_above_km


class TestLookAngles:
    def test_zenith_target(self):
        topo = look_angles(47.0, 8.0, 0.0, _target_above(47.0, 8.0, 500.0))
        assert topo.elevation_deg == pytest.approx(90.0, abs=0.2)
        assert topo.range_km == pytest.approx(500.0, abs=1.0)
        assert topo.is_visible

    def test_target_due_north(self):
        # Target above a point slightly north of the site appears at
        # azimuth ~0.
        site_lat, site_lon = 40.0, -100.0
        target = _target_above(site_lat + 3.0, site_lon, 500.0)
        topo = look_angles(site_lat, site_lon, 0.0, target)
        assert topo.azimuth_deg == pytest.approx(0.0, abs=3.0) or \
            topo.azimuth_deg == pytest.approx(360.0, abs=3.0)

    def test_target_due_east(self):
        site_lat, site_lon = 0.0, 10.0
        target = _target_above(site_lat, site_lon + 3.0, 500.0)
        topo = look_angles(site_lat, site_lon, 0.0, target)
        assert topo.azimuth_deg == pytest.approx(90.0, abs=3.0)

    def test_antipodal_target_below_horizon(self):
        target = _target_above(-47.0, 8.0 - 180.0, 500.0)
        topo = look_angles(47.0, 8.0, 0.0, target)
        assert topo.elevation_deg < 0.0
        assert not topo.is_visible

    @given(
        lat=st.floats(min_value=-85, max_value=85),
        lon=st.floats(min_value=-180, max_value=180),
        tlat=st.floats(min_value=-85, max_value=85),
        tlon=st.floats(min_value=-180, max_value=180),
        alt=st.floats(min_value=200, max_value=2000),
    )
    def test_bounds(self, lat, lon, tlat, tlon, alt):
        target = _target_above(tlat, tlon, alt)
        topo = look_angles(lat, lon, 0.0, target)
        assert 0.0 <= topo.azimuth_deg < 360.0
        assert -90.0 <= topo.elevation_deg <= 90.0
        assert topo.range_km > 0.0

    def test_range_rate_sign(self):
        site = geodetic_to_ecef(0.0, 0.0, 0.0)
        target = _target_above(0.0, 0.0, 500.0)
        approaching = look_angles(0.0, 0.0, 0.0, target, np.array([-1.0, 0.0, 0.0]))
        receding = look_angles(0.0, 0.0, 0.0, target, np.array([1.0, 0.0, 0.0]))
        assert approaching.range_rate_km_s < 0.0
        assert receding.range_rate_km_s > 0.0
        del site

    def test_doppler_sign(self):
        topo = Topocentric(0.0, 45.0, 800.0, range_rate_km_s=-7.0)
        # Approaching -> positive (blue) shift.
        assert topo.doppler_shift_hz(8.2e9) > 0.0
        # Magnitude ~ v/c * f ~ 191 kHz.
        assert topo.doppler_shift_hz(8.2e9) == pytest.approx(
            7.0e3 / 299792458.0 * 8.2e9, rel=1e-6
        )


class TestCoverageGeometry:
    def test_max_slant_range_zenith_bound(self):
        # At 90 deg elevation the slant range equals the altitude.
        assert max_slant_range_km(500.0, 90.0) == pytest.approx(500.0, abs=1e-6)

    def test_slant_range_monotonic_in_elevation(self):
        ranges = [max_slant_range_km(500.0, el) for el in (0, 5, 10, 30, 60, 90)]
        assert all(a > b for a, b in zip(ranges, ranges[1:]))

    def test_horizon_range_leo(self):
        # 500 km altitude, 0 deg elevation: ~2600 km slant range.
        assert max_slant_range_km(500.0, 0.0) == pytest.approx(2574.0, rel=0.02)

    def test_coverage_radius_smaller_with_mask(self):
        assert coverage_radius_km(500.0, 10.0) < coverage_radius_km(500.0, 0.0)

    def test_coverage_radius_leo_scale(self):
        radius = coverage_radius_km(500.0, 5.0)
        assert 1500.0 < radius < 2200.0
