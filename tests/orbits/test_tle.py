"""Tests for TLE parsing, validation, checksums, and round-tripping."""

from datetime import datetime

import pytest
from hypothesis import given, strategies as st

from repro.orbits.tle import TLE, TLEError, checksum
from tests.conftest import ISS_LINE1, ISS_LINE2, STR3_LINE1, STR3_LINE2


class TestChecksum:
    def test_iss_lines_have_valid_checksums(self):
        assert checksum(ISS_LINE1) == int(ISS_LINE1[68])
        assert checksum(ISS_LINE2) == int(ISS_LINE2[68])

    def test_minus_counts_as_one(self):
        base = "1" + " " * 67
        with_minus = "1" + "-" + " " * 66
        assert checksum(with_minus) == checksum(base) + 1

    def test_letters_count_as_zero(self):
        assert checksum("A" * 68) == 0


class TestParse:
    def test_parse_iss(self):
        tle = TLE.parse([ISS_LINE1, ISS_LINE2])
        assert tle.satnum == 25544
        assert tle.classification == "U"
        assert tle.intl_designator == "98067A"
        assert tle.inclination_deg == pytest.approx(51.6443)
        assert tle.eccentricity == pytest.approx(0.0001400)
        assert tle.mean_motion_rev_day == pytest.approx(15.49438371)
        assert tle.epoch.year == 2020

    def test_parse_str3(self, str3_tle):
        assert str3_tle.satnum == 88888
        assert str3_tle.bstar == pytest.approx(0.66816e-4)
        assert str3_tle.ndot == pytest.approx(0.00073094)
        assert str3_tle.nddot == pytest.approx(0.13844e-3)

    def test_parse_with_name_line(self):
        tle = TLE.parse(f"ISS (ZARYA)\n{ISS_LINE1}\n{ISS_LINE2}")
        assert tle.name == "ISS (ZARYA)"

    def test_checksum_validation_catches_corruption(self):
        corrupted = ISS_LINE1[:20] + "9" + ISS_LINE1[21:]
        with pytest.raises(TLEError, match="checksum"):
            TLE.parse([corrupted, ISS_LINE2])

    def test_checksum_validation_can_be_disabled(self):
        corrupted = ISS_LINE1[:68] + "0"
        if checksum(corrupted) == 0:
            corrupted = ISS_LINE1[:68] + "1"
        tle = TLE.parse([corrupted, ISS_LINE2], validate_checksum=False)
        assert tle.satnum == 25544

    def test_satnum_mismatch_rejected(self):
        other = "2 25545" + ISS_LINE2[7:]
        with pytest.raises(TLEError, match="mismatch"):
            TLE.parse([ISS_LINE1, other], validate_checksum=False)

    def test_wrong_line_count(self):
        with pytest.raises(TLEError, match="2 element lines"):
            TLE.parse([ISS_LINE1])

    def test_short_line_rejected(self):
        with pytest.raises(TLEError, match="69 columns"):
            TLE.parse([ISS_LINE1[:50], ISS_LINE2])

    def test_swapped_lines_rejected(self):
        with pytest.raises(TLEError):
            TLE.parse([ISS_LINE2, ISS_LINE1])


class TestDerivedQuantities:
    def test_period(self):
        tle = TLE.parse([ISS_LINE1, ISS_LINE2])
        assert tle.period_minutes == pytest.approx(92.93, abs=0.05)

    def test_mean_motion_rad_min(self):
        tle = TLE.parse([ISS_LINE1, ISS_LINE2])
        import math

        expected = 15.49438371 * 2 * math.pi / 1440.0
        assert tle.mean_motion_rad_min == pytest.approx(expected)


class TestEmit:
    def test_round_trip_iss(self):
        tle = TLE.parse([ISS_LINE1, ISS_LINE2])
        line1, line2 = tle.to_lines()
        again = TLE.parse([line1, line2])
        assert again.satnum == tle.satnum
        assert again.inclination_deg == pytest.approx(tle.inclination_deg)
        assert again.eccentricity == pytest.approx(tle.eccentricity, abs=1e-7)
        assert again.mean_motion_rev_day == pytest.approx(
            tle.mean_motion_rev_day, abs=1e-7
        )
        assert again.bstar == pytest.approx(tle.bstar, rel=1e-4)

    def test_emitted_lines_are_69_columns_with_valid_checksums(self):
        tle = TLE.parse([ISS_LINE1, ISS_LINE2])
        for line in tle.to_lines():
            assert len(line) == 69
            assert checksum(line) == int(line[68])

    @given(
        incl=st.floats(min_value=0.0, max_value=179.9),
        raan=st.floats(min_value=0.0, max_value=359.99),
        ecc=st.floats(min_value=0.0, max_value=0.1),
        argp=st.floats(min_value=0.0, max_value=359.99),
        ma=st.floats(min_value=0.0, max_value=359.99),
        mm=st.floats(min_value=10.0, max_value=16.5),
        bstar=st.floats(min_value=-9e-3, max_value=9e-3),
    )
    def test_round_trip_property(self, incl, raan, ecc, argp, ma, mm, bstar):
        tle = TLE.from_elements(
            satnum=12345,
            epoch=datetime(2020, 6, 1, 13, 45, 12),
            inclination_deg=incl,
            raan_deg=raan,
            eccentricity=ecc,
            argp_deg=argp,
            mean_anomaly_deg=ma,
            mean_motion_rev_day=mm,
            bstar=bstar,
        )
        line1, line2 = tle.to_lines()
        again = TLE.parse([line1, line2])
        assert again.inclination_deg == pytest.approx(tle.inclination_deg, abs=1e-3)
        assert again.raan_deg == pytest.approx(tle.raan_deg, abs=1e-3)
        assert again.eccentricity == pytest.approx(tle.eccentricity, abs=1e-6)
        assert again.argp_deg == pytest.approx(tle.argp_deg, abs=1e-3)
        assert again.mean_anomaly_deg == pytest.approx(tle.mean_anomaly_deg, abs=1e-3)
        assert again.mean_motion_rev_day == pytest.approx(
            tle.mean_motion_rev_day, abs=1e-6
        )
        assert again.bstar == pytest.approx(tle.bstar, rel=1e-3, abs=1e-9)


class TestValidation:
    def test_bad_eccentricity(self):
        with pytest.raises(TLEError):
            TLE.from_elements(
                satnum=1, epoch=datetime(2020, 1, 1), inclination_deg=51.0,
                raan_deg=0.0, eccentricity=1.5, argp_deg=0.0,
                mean_anomaly_deg=0.0, mean_motion_rev_day=15.0,
            )

    def test_bad_mean_motion(self):
        with pytest.raises(TLEError):
            TLE.from_elements(
                satnum=1, epoch=datetime(2020, 1, 1), inclination_deg=51.0,
                raan_deg=0.0, eccentricity=0.001, argp_deg=0.0,
                mean_anomaly_deg=0.0, mean_motion_rev_day=-1.0,
            )
