"""The backend diversity combiner: draws, merging, and counters."""

from datetime import datetime, timedelta

from repro.network.diversity import DiversityCombiner, diversity_draw

WHEN = datetime(2020, 6, 1, 12, 0)


class TestDiversityDraw:
    def test_deterministic(self):
        assert diversity_draw(19, "SAT-1", "GS-1", WHEN) == \
            diversity_draw(19, "SAT-1", "GS-1", WHEN)

    def test_uniform_range(self):
        draws = [
            diversity_draw(19, f"SAT-{i}", f"GS-{j}", WHEN)
            for i in range(20) for j in range(20)
        ]
        assert all(0.0 <= d < 1.0 for d in draws)
        # Crude uniformity: the mean of 400 draws is near 1/2.
        assert 0.4 < sum(draws) / len(draws) < 0.6

    def test_keyed_per_station_and_time(self):
        base = diversity_draw(19, "SAT-1", "GS-1", WHEN)
        assert diversity_draw(19, "SAT-1", "GS-2", WHEN) != base
        assert diversity_draw(19, "SAT-2", "GS-1", WHEN) != base
        assert diversity_draw(20, "SAT-1", "GS-1", WHEN) != base
        assert diversity_draw(
            19, "SAT-1", "GS-1", WHEN + timedelta(seconds=60)
        ) != base


class TestCombiner:
    def test_certain_copy_decodes(self):
        combiner = DiversityCombiner(seed=19)
        reception = combiner.combine(
            "SAT-1", WHEN, [(0, "GS-0", True, 1.0)]
        )
        assert reception.decoded
        assert not reception.rescued
        assert combiner.combined_decoded == 1

    def test_impossible_copies_fail(self):
        combiner = DiversityCombiner(seed=19)
        reception = combiner.combine(
            "SAT-1", WHEN,
            [(0, "GS-0", True, 0.0), (1, "GS-1", False, 0.0)],
        )
        assert not reception.decoded
        assert combiner.combined_failed == 1
        assert combiner.copies_attempted == 2
        assert combiner.copies_decoded == 0

    def test_rescue_by_secondary(self):
        combiner = DiversityCombiner(seed=19)
        reception = combiner.combine(
            "SAT-1", WHEN,
            [(0, "GS-0", True, 0.0), (1, "GS-1", False, 1.0)],
        )
        assert reception.decoded
        assert reception.rescued
        assert combiner.rescued_by_diversity == 1

    def test_adding_a_secondary_never_perturbs_other_copies(self):
        solo = DiversityCombiner(seed=19)
        r1 = solo.combine("SAT-1", WHEN, [(0, "GS-0", True, 0.7)])
        duo = DiversityCombiner(seed=19)
        r2 = duo.combine(
            "SAT-1", WHEN,
            [(0, "GS-0", True, 0.7), (1, "GS-1", False, 0.7)],
        )
        assert r1.copies[0].decoded == r2.copies[0].decoded

    def test_per_station_stats_and_as_dict(self):
        combiner = DiversityCombiner(seed=19)
        for step in range(5):
            when = WHEN + timedelta(seconds=60 * step)
            combiner.combine(
                "SAT-1", when,
                [(0, "GS-0", True, 1.0), (1, "GS-1", False, 0.0)],
            )
        block = combiner.as_dict()
        assert block["passes"] == 5
        assert block["copies_attempted"] == 10
        assert block["copies_decoded"] == 5
        assert block["combined_decoded"] == 5
        assert block["stations"]["GS-0"] == {
            "copies": 5, "decoded": 5, "primary": 5
        }
        assert block["stations"]["GS-1"] == {
            "copies": 5, "decoded": 0, "primary": 0
        }
        # JSON-clean: keys sorted, plain types only.
        import json

        json.dumps(block, sort_keys=True)

    def test_empirical_rate_tracks_probability(self):
        combiner = DiversityCombiner(seed=19)
        for step in range(500):
            when = WHEN + timedelta(seconds=60 * step)
            combiner.combine("SAT-1", when, [(0, "GS-0", True, 0.8)])
        rate = combiner.copies_decoded / combiner.copies_attempted
        assert 0.74 < rate < 0.86
