"""Tests for the backend collator and delayed-ack loop."""

from datetime import datetime, timedelta

import pytest

from repro.network.backend import BackendCollator
from repro.network.messages import ChunkReceiptMessage

EPOCH = datetime(2020, 6, 1)


def receipt(chunk_id, sat="sat-A", at=EPOCH, size=8e9):
    return ChunkReceiptMessage(
        station_id="gs-001", satellite_id=sat, chunk_id=chunk_id,
        received_at=at, size_bits=size,
    )


class TestReceiptFlow:
    def test_receipt_lands_after_backhaul_latency(self):
        backend = BackendCollator()
        backend.submit_receipt(receipt(1), backhaul_latency_s=10.0)
        assert backend.in_flight_count == 1
        backend.advance(EPOCH + timedelta(seconds=5))
        assert backend.pending_acks("sat-A") == set()
        backend.advance(EPOCH + timedelta(seconds=11))
        assert backend.pending_acks("sat-A") == {1}
        assert backend.in_flight_count == 0

    def test_totals(self):
        backend = BackendCollator()
        backend.submit_receipt(receipt(1, size=100.0), 0.0)
        backend.submit_receipt(receipt(2, size=200.0), 0.0)
        backend.advance(EPOCH + timedelta(seconds=1))
        assert backend.total_receipts == 2
        assert backend.total_bits_received == pytest.approx(300.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            BackendCollator().submit_receipt(receipt(1), -1.0)

    def test_redelivered_chunk_does_not_double_count(self):
        """Regression: a retransmitted chunk whose first receipt was already
        acked must not inflate the throughput totals."""
        backend = BackendCollator()
        backend.submit_receipt(receipt(1, size=100.0), 0.0)
        backend.advance(EPOCH + timedelta(seconds=1))
        backend.issue_ack_batch("sat-A", EPOCH + timedelta(minutes=5))
        # The ack batch never reached the satellite; it retransmits and the
        # station dutifully reports the chunk again.
        backend.submit_receipt(receipt(1, size=100.0), 0.0)
        landed = backend.advance(EPOCH + timedelta(minutes=10))
        assert landed == 1  # the receipt did land...
        assert backend.total_receipts == 1  # ...but is not re-counted
        assert backend.total_bits_received == pytest.approx(100.0)
        assert backend.duplicate_receipts == 1
        # And it must not be re-queued for acking either.
        assert backend.pending_acks("sat-A") == set()

    def test_duplicate_of_pending_receipt_not_double_counted(self):
        """Two receipts for the same not-yet-acked chunk (e.g. duplicate
        relay) count once toward the totals."""
        backend = BackendCollator()
        backend.submit_receipt(receipt(7, size=50.0), 0.0)
        backend.submit_receipt(receipt(7, size=50.0), 0.0)
        backend.advance(EPOCH + timedelta(seconds=1))
        assert backend.total_receipts == 1
        assert backend.total_bits_received == pytest.approx(50.0)
        assert backend.duplicate_receipts == 1
        assert backend.pending_acks("sat-A") == {7}


class TestAckBatches:
    def test_batch_contains_landed_receipts(self):
        backend = BackendCollator()
        for chunk_id in (3, 1, 2):
            backend.submit_receipt(receipt(chunk_id), 0.0)
        backend.advance(EPOCH + timedelta(seconds=1))
        batch = backend.issue_ack_batch("sat-A", EPOCH + timedelta(minutes=5))
        assert batch.chunk_ids == (1, 2, 3)

    def test_batch_is_consumed(self):
        backend = BackendCollator()
        backend.submit_receipt(receipt(1), 0.0)
        backend.advance(EPOCH + timedelta(seconds=1))
        assert backend.issue_ack_batch("sat-A", EPOCH) is not None
        assert backend.issue_ack_batch("sat-A", EPOCH) is None
        assert backend.acked_count("sat-A") == 1

    def test_duplicate_receipt_after_ack_is_ignored(self):
        backend = BackendCollator()
        backend.submit_receipt(receipt(1), 0.0)
        backend.advance(EPOCH + timedelta(seconds=1))
        backend.issue_ack_batch("sat-A", EPOCH)
        # The same chunk reported again (e.g. duplicate relay).
        backend.submit_receipt(receipt(1), 0.0)
        backend.advance(EPOCH + timedelta(seconds=2))
        assert backend.issue_ack_batch("sat-A", EPOCH) is None

    def test_per_satellite_isolation(self):
        backend = BackendCollator()
        backend.submit_receipt(receipt(1, sat="sat-A"), 0.0)
        backend.submit_receipt(receipt(2, sat="sat-B"), 0.0)
        backend.advance(EPOCH + timedelta(seconds=1))
        assert backend.pending_acks("sat-A") == {1}
        assert backend.pending_acks("sat-B") == {2}
        batch_a = backend.issue_ack_batch("sat-A", EPOCH)
        assert batch_a.chunk_ids == (1,)
        assert backend.pending_acks("sat-B") == {2}

    def test_no_batch_for_unknown_satellite(self):
        assert BackendCollator().issue_ack_batch("ghost", EPOCH) is None

    def test_pending_acks_view_is_copy(self):
        backend = BackendCollator()
        backend.submit_receipt(receipt(1), 0.0)
        backend.advance(EPOCH + timedelta(seconds=1))
        view = backend.pending_acks("sat-A")
        view.add(999)
        assert backend.pending_acks("sat-A") == {1}


class TestFlushHorizon:
    def test_empty_backend_floors_at_now(self):
        backend = BackendCollator()
        assert backend.flush_horizon(EPOCH) == EPOCH

    def test_horizon_is_latest_outstanding_arrival(self):
        backend = BackendCollator()
        backend.submit_receipt(receipt(1), backhaul_latency_s=30.0)
        backend.submit_receipt(receipt(2), backhaul_latency_s=7 * 86400.0)
        horizon = backend.flush_horizon(EPOCH)
        assert horizon == EPOCH + timedelta(days=7)
        assert backend.advance(horizon) == 2
        assert backend.in_flight_count == 0

    def test_past_arrivals_never_move_clock_backwards(self):
        backend = BackendCollator()
        backend.submit_receipt(receipt(1), backhaul_latency_s=5.0)
        later = EPOCH + timedelta(hours=1)
        assert backend.flush_horizon(later) == later
