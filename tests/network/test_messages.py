"""Tests for wire message serialization."""

from datetime import datetime

import pytest
from hypothesis import given, strategies as st

from repro.network.messages import (
    AckBatchMessage,
    ChunkReceiptMessage,
    MessageError,
    PlanUploadMessage,
    decode_message,
    encode_message,
)

EPOCH = datetime(2020, 6, 1, 12, 30, 45)


class TestRoundTrip:
    def test_chunk_receipt(self):
        msg = ChunkReceiptMessage(
            station_id="gs-001", satellite_id="SYN-EO-003",
            chunk_id=42, received_at=EPOCH, size_bits=8e9,
        )
        assert decode_message(encode_message(msg)) == msg

    def test_ack_batch(self):
        msg = AckBatchMessage(
            satellite_id="SYN-EO-003", chunk_ids=(1, 2, 99), issued_at=EPOCH
        )
        assert decode_message(encode_message(msg)) == msg

    def test_plan_upload(self):
        msg = PlanUploadMessage(
            satellite_id="SYN-EO-003",
            issued_at=EPOCH,
            entries=(
                ("2020-06-01T13:00:00", "gs-001", 1.2e8),
                ("2020-06-01T13:05:00", "gs-042", 9.1e7),
            ),
        )
        assert decode_message(encode_message(msg)) == msg

    @given(
        chunk_ids=st.lists(st.integers(min_value=0, max_value=10**9),
                           max_size=50).map(tuple),
    )
    def test_ack_batch_property(self, chunk_ids):
        msg = AckBatchMessage("sat", chunk_ids, EPOCH)
        assert decode_message(encode_message(msg)) == msg

    def test_encoding_is_deterministic(self):
        msg = AckBatchMessage("sat", (3, 1, 2), EPOCH)
        assert encode_message(msg) == encode_message(msg)


class TestErrors:
    def test_unknown_object(self):
        with pytest.raises(MessageError, match="not a wire message"):
            encode_message({"not": "a message"})

    def test_invalid_json(self):
        with pytest.raises(MessageError, match="invalid JSON"):
            decode_message("{nope")

    def test_non_object(self):
        with pytest.raises(MessageError):
            decode_message("[1, 2, 3]")

    def test_unknown_type(self):
        with pytest.raises(MessageError, match="unknown message type"):
            decode_message('{"version": 1, "type": "telepathy", "payload": {}}')

    def test_wrong_version(self):
        with pytest.raises(MessageError, match="version"):
            decode_message('{"version": 99, "type": "ack_batch", "payload": {}}')

    def test_payload_mismatch(self):
        with pytest.raises(MessageError, match="payload"):
            decode_message(
                '{"version": 1, "type": "ack_batch", "payload": {"bogus": 1}}'
            )
