"""Tests for backhaul sizing and the station uplink queue."""

from datetime import datetime, timedelta

import math

import pytest

from repro.network.backhaul import (
    StationUplink,
    backhaul_reduction_factor,
    decoded_backhaul_mbps,
    raw_iq_backhaul_mbps,
)

EPOCH = datetime(2020, 6, 1)


class TestBackhaulSizing:
    def test_raw_iq_magnitude(self):
        # 75 Mbaud at 16-bit I/Q, 1.25x oversampling: 3 Gbit/s.
        assert raw_iq_backhaul_mbps(75e6) == pytest.approx(3000.0)

    def test_decoded_equals_bitrate(self):
        assert decoded_backhaul_mbps(150e6) == 150.0

    def test_orders_of_magnitude_claim(self):
        """Sec. 2: co-located demodulation cuts backhaul 'by orders of
        magnitude' -- >10x even at the highest MODCOD, ~50x at QPSK."""
        high = backhaul_reduction_factor(75e6, 75e6 * 4.45)
        low = backhaul_reduction_factor(75e6, 75e6 * 0.49)
        assert high > 8.0
        assert low > 50.0

    def test_dead_link_infinite_reduction(self):
        assert backhaul_reduction_factor(75e6, 0.0) == math.inf

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            raw_iq_backhaul_mbps(0.0)
        with pytest.raises(ValueError):
            raw_iq_backhaul_mbps(75e6, bits_per_sample=0)
        with pytest.raises(ValueError):
            decoded_backhaul_mbps(-1.0)


class TestStationUplink:
    def test_fifo_within_priority(self):
        uplink = StationUplink(capacity_mbps=8.0)  # 1 MB/s
        uplink.enqueue(1, 8e6, EPOCH)               # 1 s of uplink
        uplink.enqueue(2, 8e6, EPOCH + timedelta(seconds=1))
        done = uplink.drain(EPOCH, 10.0)
        assert [cid for cid, _t in done] == [1, 2]
        assert done[0][1] == EPOCH + timedelta(seconds=1)
        assert done[1][1] == EPOCH + timedelta(seconds=2)

    def test_priority_jumps_queue(self):
        uplink = StationUplink(capacity_mbps=8.0)
        uplink.enqueue(1, 8e6, EPOCH, priority=0.0)
        uplink.enqueue(2, 8e6, EPOCH, priority=5.0)  # urgent
        done = uplink.drain(EPOCH, 10.0)
        assert [cid for cid, _t in done] == [2, 1]

    def test_partial_drain_carries_over(self):
        uplink = StationUplink(capacity_mbps=8.0)
        uplink.enqueue(1, 16e6, EPOCH)  # needs 2 s
        assert uplink.drain(EPOCH, 1.0) == []
        assert uplink.queued_bits == pytest.approx(8e6)
        done = uplink.drain(EPOCH + timedelta(seconds=1), 1.0)
        assert [cid for cid, _t in done] == [1]

    def test_backlog_delay(self):
        uplink = StationUplink(capacity_mbps=8.0)
        uplink.enqueue(1, 16e6, EPOCH)
        assert uplink.backlog_delay_s() == pytest.approx(2.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            StationUplink(0.0)
        uplink = StationUplink(10.0)
        with pytest.raises(ValueError):
            uplink.enqueue(1, 0.0, EPOCH)
        with pytest.raises(ValueError):
            uplink.drain(EPOCH, -1.0)
