"""Tests for ground-station network generation."""

import pytest

from repro.groundstations.network import (
    baseline_polar_network,
    satnogs_like_network,
)


class TestSatnogsLikeNetwork:
    @pytest.fixture(scope="class")
    def network(self):
        return satnogs_like_network(173, seed=11)

    def test_size(self, network):
        assert len(network) == 173

    def test_deterministic(self):
        a = satnogs_like_network(50, seed=3)
        b = satnogs_like_network(50, seed=3)
        assert [(s.latitude_deg, s.longitude_deg) for s in a] == [
            (s.latitude_deg, s.longitude_deg) for s in b
        ]

    def test_unique_ids(self, network):
        assert len({s.station_id for s in network}) == len(network)

    def test_northern_hemisphere_bias(self, network):
        """Fig. 2: the volunteer network is mostly Europe/North America."""
        north = sum(1 for s in network if s.latitude_deg > 0)
        assert north / len(network) > 0.65

    def test_tx_capable_fraction(self, network):
        tx = len(network.transmit_capable)
        assert 10 <= tx <= 25  # ~10% of 173
        assert len(network.receive_only) == len(network) - tx

    def test_zero_tx_fraction(self):
        net = satnogs_like_network(30, tx_capable_fraction=0.0, seed=1)
        assert len(net.transmit_capable) == 0

    def test_coordinates_valid(self, network):
        for s in network:
            assert -90.0 <= s.latitude_deg <= 90.0
            assert -180.0 <= s.longitude_deg <= 180.0
            assert s.altitude_km >= 0.0

    def test_by_id(self, network):
        station = network[5]
        assert network.by_id(station.station_id) is station
        with pytest.raises(KeyError):
            network.by_id("nope")

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            satnogs_like_network(0)
        with pytest.raises(ValueError):
            satnogs_like_network(10, tx_capable_fraction=1.5)


class TestSubsetFraction:
    def test_quarter_size(self):
        net = satnogs_like_network(173, seed=11)
        quarter = net.subset_fraction(0.25, seed=2)
        assert len(quarter) == round(173 * 0.25)

    def test_subset_keeps_tx_capable(self):
        net = satnogs_like_network(60, tx_capable_fraction=0.05, seed=7)
        for seed in range(5):
            subset = net.subset_fraction(0.1, seed=seed)
            assert any(s.can_transmit for s in subset)

    def test_subset_is_deterministic(self):
        net = satnogs_like_network(60, seed=7)
        a = net.subset_fraction(0.25, seed=3)
        b = net.subset_fraction(0.25, seed=3)
        assert [s.station_id for s in a] == [s.station_id for s in b]

    def test_subset_preserves_order(self):
        net = satnogs_like_network(60, seed=7)
        subset = net.subset_fraction(0.5, seed=3)
        ids = [s.station_id for s in net]
        subset_ids = [s.station_id for s in subset]
        assert subset_ids == [i for i in ids if i in set(subset_ids)]

    def test_invalid_fraction(self):
        net = satnogs_like_network(10, seed=1)
        with pytest.raises(ValueError):
            net.subset_fraction(0.0)
        with pytest.raises(ValueError):
            net.subset_fraction(1.5)


class TestBaselineNetwork:
    def test_five_high_end_stations(self):
        net = baseline_polar_network()
        assert len(net) == 5
        for s in net:
            assert s.can_transmit
            assert s.receiver.channels == 6
            assert s.receiver.antenna.diameter_m == 4.0

    def test_polar_concentration(self):
        net = baseline_polar_network()
        high_latitude = sum(1 for s in net if abs(s.latitude_deg) > 60.0)
        assert high_latitude >= 4

    def test_reduced_count(self):
        assert len(baseline_polar_network(count=3)) == 3

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            baseline_polar_network(count=0)
        with pytest.raises(ValueError):
            baseline_polar_network(count=9)
