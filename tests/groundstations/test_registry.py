"""Tests for network JSON persistence."""

import pytest

from repro.groundstations.network import (
    GroundStationNetwork,
    baseline_polar_network,
    satnogs_like_network,
)
from repro.groundstations.registry import (
    RegistryError,
    network_from_json,
    network_to_json,
)
from repro.groundstations.station import DownlinkConstraints


class TestRoundTrip:
    def test_satnogs_network(self):
        network = satnogs_like_network(20, seed=9)
        again = network_from_json(network_to_json(network))
        assert len(again) == 20
        for a, b in zip(network, again):
            assert a.station_id == b.station_id
            assert a.latitude_deg == b.latitude_deg
            assert a.capability == b.capability
            assert a.receiver == b.receiver
            assert a.backhaul_latency_s == b.backhaul_latency_s

    def test_baseline_hardware_preserved(self):
        network = baseline_polar_network()
        again = network_from_json(network_to_json(network))
        assert all(s.receiver.channels == 6 for s in again)
        assert all(s.receiver.antenna.diameter_m == 4.0 for s in again)

    def test_constraint_bitmaps_preserved(self):
        network = satnogs_like_network(4, seed=2)
        network[1].constraints = DownlinkConstraints.from_allowed_indices(
            [0, 5, 200], total=259
        )
        network[2].constraints = DownlinkConstraints.deny_all()
        again = network_from_json(network_to_json(network))
        assert again[0].allows_satellite(17)
        assert again[1].allows_satellite(5)
        assert not again[1].allows_satellite(6)
        assert not again[2].allows_satellite(0)

    def test_schedulable_after_round_trip(self, small_fleet):
        from datetime import datetime, timedelta

        from repro.scheduling.scheduler import DownlinkScheduler
        from repro.scheduling.value_functions import LatencyValue

        for sat in small_fleet:
            sat.generate_data(datetime(2020, 6, 1) - timedelta(hours=1), 3600.0)
        network = network_from_json(
            network_to_json(satnogs_like_network(10, seed=4))
        )
        scheduler = DownlinkScheduler(small_fleet, network, LatencyValue())
        scheduler.schedule_step(datetime(2020, 6, 1))  # must not raise


class TestErrors:
    def test_invalid_json(self):
        with pytest.raises(RegistryError, match="invalid JSON"):
            network_from_json("{nope")

    def test_wrong_version(self):
        with pytest.raises(RegistryError, match="version"):
            network_from_json('{"version": 99, "stations": []}')

    def test_missing_stations(self):
        with pytest.raises(RegistryError):
            network_from_json('{"version": 1}')

    def test_malformed_station(self):
        with pytest.raises(RegistryError, match="malformed"):
            network_from_json(
                '{"version": 1, "stations": [{"station_id": "x"}]}'
            )

    def test_duplicate_ids(self):
        network = satnogs_like_network(2, seed=1)
        doc = network_to_json(
            GroundStationNetwork([network[0], network[0]])
        )
        with pytest.raises(RegistryError, match="duplicate"):
            network_from_json(doc)
