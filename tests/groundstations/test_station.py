"""Tests for the ground-station model and constraint bitmaps."""

import pytest
from hypothesis import given, strategies as st

from repro.groundstations.station import (
    DownlinkConstraints,
    GroundStation,
    StationCapability,
)


class TestConstraints:
    def test_allow_all(self):
        c = DownlinkConstraints.allow_all()
        for idx in (0, 7, 100, 258):
            assert c.allows(idx)

    def test_deny_all(self):
        c = DownlinkConstraints.deny_all()
        for idx in (0, 7, 258):
            assert not c.allows(idx)

    def test_explicit_bitmap(self):
        c = DownlinkConstraints.from_allowed_indices([0, 3, 258], total=259)
        assert c.allows(0)
        assert not c.allows(1)
        assert c.allows(3)
        assert c.allows(258)

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ValueError):
            DownlinkConstraints.from_allowed_indices([300], total=259)

    def test_allow_then_deny(self):
        c = DownlinkConstraints.deny_all()
        c.allow(5)
        assert c.allows(5)
        c.deny(5)
        assert not c.allows(5)

    def test_deny_on_allow_all_rejected(self):
        with pytest.raises(ValueError):
            DownlinkConstraints.allow_all().deny(3)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            DownlinkConstraints.allow_all().allows(-1)

    @given(indices=st.sets(st.integers(min_value=0, max_value=258), max_size=40))
    def test_bitmap_matches_set(self, indices):
        c = DownlinkConstraints.from_allowed_indices(indices, total=259)
        for idx in range(259):
            assert c.allows(idx) == (idx in indices)


class TestGroundStation:
    def test_defaults_are_receive_only_volunteer(self):
        gs = GroundStation("gs-x", 47.0, 8.0)
        assert not gs.can_transmit
        assert gs.capability is StationCapability.RECEIVE_ONLY
        assert gs.allows_satellite(17)

    def test_transmit_capable(self):
        gs = GroundStation("gs-t", 47.0, 8.0,
                           capability=StationCapability.TRANSMIT_CAPABLE)
        assert gs.can_transmit

    def test_invalid_latitude(self):
        with pytest.raises(ValueError):
            GroundStation("bad", 95.0, 8.0)

    def test_invalid_longitude(self):
        with pytest.raises(ValueError):
            GroundStation("bad", 47.0, 190.0)

    def test_negative_elevation_mask(self):
        with pytest.raises(ValueError):
            GroundStation("bad", 47.0, 8.0, min_elevation_deg=-1.0)

    def test_hashable_by_id(self):
        a = GroundStation("same", 47.0, 8.0)
        b = GroundStation("same", 10.0, 20.0)
        assert hash(a) == hash(b)
