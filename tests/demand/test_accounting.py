"""Tests for per-tenant quota, deadline, and fairness accounting."""

from datetime import datetime, timedelta
from types import SimpleNamespace

import pytest

from repro.demand import Tenant, TenantAccountant
from repro.satellites.data import ChunkState, DataChunk

EPOCH = datetime(2020, 6, 1)

TENANTS = (
    Tenant("premium", tier=3, weight=4.0, sla_deadline_s=3600.0,
           demand_share=0.5),
    Tenant("metered", tier=2, weight=2.0, quota_gb_per_day=10.0,
           sla_deadline_s=21600.0, demand_share=0.5),
)


def _chunk(tenant_id, size_bits=4e9, capture=EPOCH, deadline_s=3600.0,
           chunk_id=0):
    return DataChunk(
        satellite_id="sat-1",
        size_bits=size_bits,
        capture_time=capture,
        chunk_id=chunk_id,
        tenant_id=tenant_id,
        deadline=capture + timedelta(seconds=deadline_s),
    )


class TestDeliveryAccounting:
    def test_generation_and_delivery_totals(self):
        acct = TenantAccountant(TENANTS, start=EPOCH)
        chunk = _chunk("premium")
        acct.record_generation(chunk)
        acct.record_delivery(chunk, EPOCH + timedelta(minutes=30))
        block = acct.summary()["premium"]
        assert block["generated_bits"] == 4e9
        assert block["delivered_bits"] == 4e9
        assert block["delivered_gb"] == pytest.approx(0.5)
        assert block["delivered_chunks"] == 1

    def test_on_time_vs_late(self):
        acct = TenantAccountant(TENANTS, start=EPOCH)
        on_time = _chunk("premium", chunk_id=1)
        late = _chunk("premium", chunk_id=2)
        acct.record_delivery(on_time, EPOCH + timedelta(minutes=59))
        acct.record_delivery(late, EPOCH + timedelta(hours=2))
        block = acct.summary()["premium"]
        assert block["deadline_hits"] == 1
        assert block["late_deliveries"] == 1
        assert block["sla_violations"] == 1
        assert block["deadline_hit_rate"] == 0.5

    def test_unknown_tenant_ignored(self):
        acct = TenantAccountant(TENANTS, start=EPOCH)
        acct.record_generation(_chunk("stranger"))
        acct.record_delivery(_chunk("stranger"), EPOCH)
        assert acct.summary()["premium"]["delivered_bits"] == 0.0

    def test_no_tracked_chunks_is_perfect_hit_rate(self):
        acct = TenantAccountant(TENANTS, start=EPOCH)
        assert acct.summary()["premium"]["deadline_hit_rate"] == 1.0

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            TenantAccountant((Tenant("a"), Tenant("a")), start=EPOCH)


class TestQuota:
    def test_quota_exhaustion_and_daily_reset(self):
        acct = TenantAccountant(TENANTS, start=EPOCH)
        assert acct.under_quota("metered", EPOCH)
        # 10 GB/day quota = 8e10 bits; deliver 9 GB then 2 GB more.
        acct.record_delivery(_chunk("metered", size_bits=7.2e10, chunk_id=1),
                             EPOCH + timedelta(hours=1))
        assert acct.under_quota("metered", EPOCH + timedelta(hours=1))
        acct.record_delivery(_chunk("metered", size_bits=1.6e10, chunk_id=2),
                             EPOCH + timedelta(hours=2))
        assert not acct.under_quota("metered", EPOCH + timedelta(hours=2))
        # The ledger is per-day: the next UTC day starts fresh.
        assert acct.under_quota("metered", EPOCH + timedelta(days=1, hours=1))

    def test_unlimited_tenant_never_exhausts(self):
        acct = TenantAccountant(TENANTS, start=EPOCH)
        acct.record_delivery(_chunk("premium", size_bits=1e15), EPOCH)
        assert acct.under_quota("premium", EPOCH)

    def test_unknown_tenant_treated_as_unlimited(self):
        acct = TenantAccountant(TENANTS, start=EPOCH)
        assert acct.under_quota("stranger", EPOCH)


class TestRunEnd:
    def _satellite(self, onboard=(), unacked=()):
        storage = SimpleNamespace(
            onboard_chunks=list(onboard),
            delivered_unacked_chunks=list(unacked),
        )
        return SimpleNamespace(storage=storage)

    def test_overdue_onboard_chunks_count_as_missed(self):
        acct = TenantAccountant(TENANTS, start=EPOCH)
        overdue = _chunk("premium", deadline_s=3600.0, chunk_id=1)
        still_ok = _chunk("premium", deadline_s=86400.0, chunk_id=2)
        sat = self._satellite(onboard=[overdue, still_ok])
        acct.record_run_end([sat], end=EPOCH + timedelta(hours=6))
        block = acct.summary()["premium"]
        assert block["missed_undelivered"] == 1
        assert block["sla_violations"] == 1

    def test_undecoded_unacked_chunks_count_as_missed(self):
        acct = TenantAccountant(TENANTS, start=EPOCH)
        lost = _chunk("premium", chunk_id=1)
        lost.state = ChunkState.DELIVERED
        lost.ground_received = False
        landed = _chunk("premium", chunk_id=2)
        landed.state = ChunkState.DELIVERED
        sat = self._satellite(unacked=[lost, landed])
        acct.record_run_end([sat], end=EPOCH + timedelta(hours=6))
        assert acct.summary()["premium"]["missed_undelivered"] == 1


class TestFairness:
    def test_share_weighted_equality_is_fair(self):
        tenants = (
            Tenant("big", demand_share=0.8),
            Tenant("small", demand_share=0.2),
        )
        acct = TenantAccountant(tenants, start=EPOCH)
        # Deliveries exactly proportional to shares -> Jain's index 1.
        acct.record_delivery(_chunk("big", size_bits=8e9, chunk_id=1), EPOCH)
        acct.record_delivery(_chunk("small", size_bits=2e9, chunk_id=2), EPOCH)
        assert acct.fairness_index() == pytest.approx(1.0)

    def test_starvation_lowers_index(self):
        tenants = (Tenant("a", demand_share=0.5), Tenant("b", demand_share=0.5))
        acct = TenantAccountant(tenants, start=EPOCH)
        acct.record_delivery(_chunk("a", size_bits=8e9), EPOCH)
        assert acct.fairness_index() == pytest.approx(0.5)

    def test_nothing_delivered_is_vacuously_fair(self):
        acct = TenantAccountant(TENANTS, start=EPOCH)
        assert acct.fairness_index() == 1.0
