"""Tests for seeded request generation and chunk stamping."""

import itertools
from dataclasses import dataclass
from datetime import datetime, timedelta

import pytest

from repro.demand import DemandAssigner, RequestGenerator, Tenant, tenant_mix
from repro.satellites.data import DataChunk

EPOCH = datetime(2020, 6, 1)

MIX = tenant_mix("balanced")


def _take(generator, satellite_id, n):
    return list(itertools.islice(generator.stream_for(satellite_id), n))


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = RequestGenerator(MIX, seed=13)
        b = RequestGenerator(MIX, seed=13)
        assert _take(a, "sat-1", 50) == _take(b, "sat-1", 50)

    def test_different_seed_different_stream(self):
        a = RequestGenerator(MIX, seed=13)
        b = RequestGenerator(MIX, seed=14)
        assert _take(a, "sat-1", 50) != _take(b, "sat-1", 50)

    def test_different_satellites_different_streams(self):
        gen = RequestGenerator(MIX, seed=13)
        assert _take(gen, "sat-1", 50) != _take(gen, "sat-2", 50)

    def test_streams_independent_of_interleaving(self):
        """Per-satellite streams never depend on the fleet's order."""
        gen = RequestGenerator(MIX, seed=13)
        solo = _take(gen, "sat-2", 30)
        interleaved = RequestGenerator(MIX, seed=13)
        stream_1 = interleaved.stream_for("sat-1")
        stream_2 = interleaved.stream_for("sat-2")
        mixed = []
        for _ in range(30):
            next(stream_1)
            mixed.append(next(stream_2))
        assert mixed == solo

    def test_request_ids_are_per_satellite_sequences(self):
        gen = RequestGenerator(MIX, seed=13)
        for sat in ("sat-1", "sat-2"):
            ids = [r.request_id for r in _take(gen, sat, 10)]
            assert ids == list(range(10))


class TestTenantDraw:
    def test_shares_approximately_respected(self):
        gen = RequestGenerator(MIX, seed=13)
        requests = _take(gen, "sat-1", 4000)
        counts = {t.tenant_id: 0 for t in MIX}
        for request in requests:
            counts[request.tenant_id] += 1
        for tenant in MIX:
            observed = counts[tenant.tenant_id] / len(requests)
            assert observed == pytest.approx(tenant.demand_share, abs=0.05)

    def test_priority_is_tier_and_region_from_tenant(self):
        by_id = {t.tenant_id: t for t in MIX}
        gen = RequestGenerator(MIX, seed=13)
        for request in _take(gen, "sat-1", 200):
            tenant = by_id[request.tenant_id]
            assert request.priority == float(tenant.tier)
            assert request.sla_deadline_s == tenant.sla_deadline_s
            if tenant.regions:
                assert request.region in tenant.regions
            else:
                assert request.region == ""

    def test_needs_tenants(self):
        with pytest.raises(ValueError):
            RequestGenerator(())


@dataclass
class _FakeSatellite:
    generation_gb_per_day: float = 100.0
    chunk_size_gb: float = 0.5


def _chunk(i, satellite_id="sat-1"):
    return DataChunk(
        satellite_id=satellite_id,
        size_bits=4e9,
        capture_time=EPOCH + timedelta(minutes=i),
        chunk_id=i,
    )


class TestDemandAssigner:
    def test_consecutive_chunks_share_a_request(self):
        # 200 chunks/day over 25 requests/day -> runs of 8 chunks.
        assigner = DemandAssigner(RequestGenerator(MIX, seed=13),
                                  requests_per_day=25)
        satellite = _FakeSatellite()
        chunks = [_chunk(i) for i in range(16)]
        for chunk in chunks:
            assigner.stamp(chunk, satellite)
        first_run = {c.tenant_id for c in chunks[:8]}
        second_run = {c.tenant_id for c in chunks[8:]}
        assert len(first_run) == 1
        assert len(second_run) == 1

    def test_deadline_is_capture_plus_sla(self):
        by_id = {t.tenant_id: t for t in MIX}
        assigner = DemandAssigner(RequestGenerator(MIX, seed=13),
                                  requests_per_day=24)
        satellite = _FakeSatellite()
        for i in range(40):
            chunk = _chunk(i)
            assigner.stamp(chunk, satellite)
            sla = by_id[chunk.tenant_id].sla_deadline_s
            assert chunk.deadline == chunk.capture_time + timedelta(seconds=sla)
            assert chunk.priority == float(by_id[chunk.tenant_id].tier)

    def test_stamping_deterministic_across_assigners(self):
        satellite = _FakeSatellite()
        stamped = []
        for _ in range(2):
            assigner = DemandAssigner(RequestGenerator(MIX, seed=13),
                                      requests_per_day=24)
            chunks = [_chunk(i) for i in range(30)]
            for chunk in chunks:
                assigner.stamp(chunk, satellite)
            stamped.append([(c.tenant_id, c.deadline) for c in chunks])
        assert stamped[0] == stamped[1]

    def test_single_tenant_stamps_everything(self):
        solo = (Tenant("only", sla_deadline_s=7200.0),)
        assigner = DemandAssigner(RequestGenerator(solo, seed=1),
                                  requests_per_day=24)
        chunk = _chunk(0)
        assigner.stamp(chunk, _FakeSatellite())
        assert chunk.tenant_id == "only"

    def test_invalid_requests_per_day(self):
        with pytest.raises(ValueError):
            DemandAssigner(RequestGenerator(MIX), requests_per_day=0)
