"""Tests for tenant definitions and the preset mixes."""

import pytest

from repro.demand import TENANT_MIXES, Tenant, tenant_mix


class TestTenantValidation:
    def test_defaults_are_valid(self):
        tenant = Tenant("acme")
        assert tenant.tier == 1
        assert tenant.weight == 1.0
        assert tenant.quota_gb_per_day == 0.0
        assert tenant.regions == ()

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError, match="tenant_id"):
            Tenant("")

    def test_invalid_tier(self):
        with pytest.raises(ValueError, match="tier"):
            Tenant("acme", tier=0)

    def test_invalid_weight(self):
        with pytest.raises(ValueError, match="weight"):
            Tenant("acme", weight=0.0)

    def test_negative_quota(self):
        with pytest.raises(ValueError, match="quota"):
            Tenant("acme", quota_gb_per_day=-1.0)

    def test_invalid_sla(self):
        with pytest.raises(ValueError, match="sla"):
            Tenant("acme", sla_deadline_s=0.0)

    def test_invalid_share(self):
        with pytest.raises(ValueError, match="demand_share"):
            Tenant("acme", demand_share=0.0)

    def test_regions_normalized_to_tuple(self):
        tenant = Tenant("acme", regions=["americas", "europe"])
        assert tenant.regions == ("americas", "europe")
        # Normalization keeps the dataclass hashable for frozen specs.
        assert hash(tenant) == hash(Tenant("acme", regions=("americas", "europe")))


class TestQuota:
    def test_zero_means_unlimited(self):
        assert Tenant("acme").quota_bits_per_day == float("inf")

    def test_quota_converts_to_bits(self):
        assert Tenant("acme", quota_gb_per_day=10.0).quota_bits_per_day == 8e10


class TestSerialization:
    def test_round_trip(self):
        tenant = Tenant("acme", tier=3, weight=4.0, quota_gb_per_day=25.0,
                        sla_deadline_s=3600.0, regions=("asia",),
                        demand_share=0.4)
        assert Tenant.from_dict(tenant.to_dict()) == tenant

    def test_regions_serialize_as_list(self):
        raw = Tenant("acme", regions=("asia",)).to_dict()
        assert raw["regions"] == ["asia"]

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            Tenant.from_dict({"tenant_id": "acme", "colour": "blue"})


class TestMixes:
    @pytest.mark.parametrize("name", sorted(TENANT_MIXES))
    def test_presets_are_well_formed(self, name):
        tenants = tenant_mix(name)
        assert len(tenants) >= 2
        ids = [t.tenant_id for t in tenants]
        assert len(set(ids)) == len(ids)
        assert all(t.demand_share > 0 for t in tenants)

    def test_unknown_mix(self):
        with pytest.raises(ValueError, match="balanced"):
            tenant_mix("nonsense")
