"""Demand-layer equivalence: legacy runs stay bit-identical.

Two contracts pin the demand layer's blast radius to zero on existing
results: (1) a ``tenants=None`` spec produces byte-identical reports to
the pre-demand engine -- including across back-to-back runs in one
process, the chunk-counter regression -- and (2) attaching tenants under
the paper's latency pricing stamps the chunks without perturbing a
single scheduling decision.
"""

from dataclasses import replace

import pytest

from repro.core.scenarios import ScenarioSpec
from repro.demand import tenant_mix
from repro.orbits.ephemeris import clear_ephemeris_cache

SPEC = ScenarioSpec.dgs(num_satellites=6, num_stations=12,
                        duration_s=2 * 3600.0)

TENANT_KEYS = ("tenant_reports", "tenant_fairness")


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_ephemeris_cache()
    yield
    clear_ephemeris_cache()


def _run(spec):
    return spec.build().simulation.run()


class TestLegacyPath:
    def test_report_has_no_tenant_block(self):
        report = _run(SPEC)
        raw = report.to_dict()
        for key in TENANT_KEYS:
            assert key not in raw
        assert report.tenant_reports == {}
        assert report.tenant_fairness is None

    def test_same_spec_twice_in_one_process_is_identical(self):
        """Chunk ids are per-run, so an in-process rerun reproduces
        the report byte for byte (regression: the module-global chunk
        counter used to renumber the second run's chunks)."""
        first = _run(SPEC)
        second = _run(SPEC)
        assert first.to_json() == second.to_json()


class TestStampingIsInert:
    def test_tenants_under_latency_pricing_change_nothing(self):
        """Stamping tenancy onto chunks must not move a single decision
        when the value function ignores it: the report matches the
        untenanted run on every field outside the tenant block."""
        plain = _run(SPEC).to_dict()
        stamped_report = _run(
            replace(SPEC, tenants=tenant_mix("balanced"))
        )
        stamped = stamped_report.to_dict()
        assert stamped["tenant_reports"]  # the demand layer did run
        for key in TENANT_KEYS:
            stamped.pop(key)
        assert stamped == plain


class TestTenantAccountingConsistency:
    @pytest.fixture(scope="class")
    def report(self):
        clear_ephemeris_cache()
        return _run(
            replace(SPEC, tenants=tenant_mix("balanced"), value="deadline")
        )

    def test_reports_every_tenant(self, report):
        expected = {t.tenant_id for t in tenant_mix("balanced")}
        assert set(report.tenant_reports) == expected

    def test_totals_partition_exactly(self, report):
        """Every generated and delivered bit belongs to some tenant."""
        generated = sum(b["generated_bits"]
                        for b in report.tenant_reports.values())
        delivered = sum(b["delivered_bits"]
                        for b in report.tenant_reports.values())
        assert generated == pytest.approx(report.generated_bits)
        assert delivered == pytest.approx(report.delivered_bits)
        assert delivered > 0.0

    def test_fairness_in_unit_interval(self, report):
        assert 0.0 < report.tenant_fairness <= 1.0

    def test_report_round_trips(self, report):
        from repro.simulation.metrics import SimulationReport

        clone = SimulationReport.from_json(report.to_json())
        assert clone.tenant_reports == report.tenant_reports
        assert clone.tenant_fairness == report.tenant_fairness

    def test_deterministic_rerun(self, report):
        clear_ephemeris_cache()
        again = _run(
            replace(SPEC, tenants=tenant_mix("balanced"), value="deadline")
        )
        assert again.to_json() == report.to_json()


class TestSpecValidation:
    def test_deadline_value_needs_tenants(self):
        with pytest.raises(ValueError, match="tenants"):
            ScenarioSpec.dgs(value="deadline")

    def test_tenants_round_trip_through_spec_dict(self):
        spec = replace(SPEC, tenants=tenant_mix("quota-tight"),
                       value="deadline")
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.tenants == tenant_mix("quota-tight")
