"""Tests for the centralized baseline system model."""

import pytest

from repro.baseline.system import CentralizedBaseline, measured_node_throughput_ratio


class TestBaselineNetwork:
    def test_default_five_stations(self):
        net = CentralizedBaseline().network()
        assert len(net) == 5
        assert all(s.can_transmit for s in net)

    def test_custom_count(self):
        assert len(CentralizedBaseline(station_count=3).network()) == 3

    def test_elevation_mask_propagates(self):
        net = CentralizedBaseline(min_elevation_deg=10.0).network()
        assert all(s.min_elevation_deg == 10.0 for s in net)


class TestThroughputRatio:
    def test_paper_calibration_point(self):
        """Sec. 4: 'Each baseline ground station achieves 10x the median
        throughput achieved by a DGS node.'"""
        ratio = measured_node_throughput_ratio()
        assert 7.0 < ratio < 14.0

    def test_deterministic(self):
        assert measured_node_throughput_ratio(seed=3) == \
            measured_node_throughput_ratio(seed=3)

    def test_more_samples_stable(self):
        a = measured_node_throughput_ratio(samples=100, seed=1)
        b = measured_node_throughput_ratio(samples=400, seed=2)
        assert a == pytest.approx(b, rel=0.4)
