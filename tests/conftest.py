"""Shared fixtures: a small deterministic world for fast tests."""

from __future__ import annotations

from datetime import datetime

import pytest

from repro.groundstations.network import (
    baseline_polar_network,
    satnogs_like_network,
)
from repro.orbits.constellation import synthetic_leo_constellation
from repro.orbits.tle import TLE
from repro.satellites.satellite import Satellite

EPOCH = datetime(2020, 6, 1)

#: The Spacetrack Report #3 test TLE (checksums as published).
STR3_LINE1 = "1 88888U          80275.98708465  .00073094  13844-3  66816-4 0     8"
STR3_LINE2 = "2 88888  72.8435 115.9689 0086731  52.6988 110.5714 16.05824518   105"

#: An ISS-like TLE in canonical 69-column format with valid checksums.
ISS_LINE1 = "1 25544U 98067A   20162.14487269  .00000921  00000+0  24830-4 0    07"
ISS_LINE2 = "2 25544  51.6443  93.0000 0001400  84.0000 276.0000 15.49438371230009"


@pytest.fixture(scope="session")
def epoch() -> datetime:
    return EPOCH


@pytest.fixture(scope="session")
def str3_tle() -> TLE:
    return TLE.parse([STR3_LINE1, STR3_LINE2], validate_checksum=False)


@pytest.fixture(scope="session")
def small_tles():
    return synthetic_leo_constellation(6, EPOCH, seed=42)


@pytest.fixture()
def small_fleet(small_tles):
    """Fresh satellites each test (storage is mutable)."""
    return [Satellite(tle=t) for t in small_tles]


@pytest.fixture(scope="session")
def small_network():
    return satnogs_like_network(12, seed=5)


@pytest.fixture(scope="session")
def baseline_network():
    return baseline_polar_network()
