"""Earth-observation mission planning: revisit, eclipse, and power budgets.

Run:  python examples/mission_planning.py

Before any ground-segment question matters, an EO operator sizes the
space segment: how often does the constellation revisit a target, how
much of each orbit is sunlit, and can the power system sustain the
downlink duty cycle the DGS schedule wants?  This example runs those
checks with the library's orbit, sun, and power models, then runs a
power-gated simulation to show the energy-limited downlink in action.
"""

from datetime import datetime

from repro.orbits.constellation import synthetic_leo_constellation
from repro.orbits.groundtrack import constellation_revisit
from repro.orbits.sgp4 import SGP4
from repro.orbits.sun import sunlit_fraction
from repro.satellites.power import PowerModel

EPOCH = datetime(2020, 6, 1)


def revisit_analysis(tles) -> None:
    print("=== Revisit analysis (600 km swath, 24 h) ===")
    propagators = [SGP4(t).propagate for t in tles]
    targets = (
        ("Nairobi", -1.29, 36.82),
        ("Seattle", 47.61, -122.33),
        ("Svalbard", 78.22, 15.64),
    )
    for name, lat, lon in targets:
        stats = constellation_revisit(
            propagators, lat, lon, swath_km=600.0,
            start=EPOCH, duration_s=86400.0, step_s=60.0,
        )
        gap = (f"mean gap {stats['mean_gap_h']:.1f} h"
               if stats["visits"] > 1 else "single visit")
        print(f"  {name:10s}: {stats['visits']:3d} visits/day, {gap}")
    print("  (high-latitude targets see polar orbiters every orbit -- the "
          "same\n   geometry that concentrates commercial ground stations "
          "near the poles)")


def power_budget(tles) -> None:
    print("\n=== Power budget ===")
    power = PowerModel()  # 20 W panels, 40 Wh battery, 25 W transmitter
    for tle in tles[:4]:
        prop = SGP4(tle)
        fraction = sunlit_fraction(prop.propagate, EPOCH,
                                   duration_s=2 * 5760.0)
        duty = power.sustainable_transmit_duty(fraction)
        print(f"  {tle.name} (incl {tle.inclination_deg:5.1f}): "
              f"sunlit {fraction:.0%} of orbit -> sustainable transmit "
              f"duty {duty:.0%}")
    need = 100e9 * 8 / 100e6 / 86400.0  # 100 GB/day at 100 Mbps
    print(f"  downlinking 100 GB/day at ~100 Mbps needs ~{need:.0%} duty -- "
          "comfortably inside the envelope")


def power_gated_simulation(tles) -> None:
    print("\n=== Power-gated downlink simulation (4 h) ===")
    from repro.core.scenarios import build_paper_weather
    from repro.groundstations import satnogs_like_network
    from repro.satellites import Satellite
    from repro.scheduling.value_functions import LatencyValue
    from repro.simulation import Simulation, SimulationConfig

    for label, battery in (("healthy 40 Wh", 40.0), ("degraded 6 Wh", 6.0)):
        sats = [
            Satellite(tle=t, chunk_size_gb=0.5,
                      power=PowerModel(battery_capacity_wh=battery,
                                       energy_wh=battery * 0.5))
            for t in tles
        ]
        network = satnogs_like_network(40, seed=11)
        config = SimulationConfig(start=EPOCH, duration_s=4 * 3600.0)
        sim = Simulation(satellites=sats, network=network, value_function=LatencyValue(), config=config,
                         truth_weather=build_paper_weather())
        report = sim.run()
        soc = sum(s.power.state_of_charge for s in sats) / len(sats)
        print(f"  {label:15s}: delivered {report.delivered_bits / 8e9:6.1f} GB, "
              f"blocked passes {sim.power_blocked_steps:3d}, "
              f"mean SoC at end {soc:.0%}")


def main() -> None:
    tles = synthetic_leo_constellation(12, EPOCH, seed=7)
    revisit_analysis(tles)
    power_budget(tles)
    power_gated_simulation(tles)


if __name__ == "__main__":
    main()
