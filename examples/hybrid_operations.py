"""Hybrid uplink operations: plans, delayed acks, and retransmission.

Run:  python examples/hybrid_operations.py

Walks the paper's Sec. 3.3 "Ack-free Downlink" machinery explicitly:
receive-only stations post receipts to the backend over the Internet, the
backend collates them, and the next transmit-capable contact uploads the
ack batch -- at which point the satellite finally frees its recorder.
Also shows the wire messages themselves, then sweeps the transmit-capable
fraction to show how few uplink stations the hybrid design really needs.
"""

from datetime import datetime, timedelta

from repro.core.scenarios import build_paper_fleet, build_paper_weather
from repro.groundstations import satnogs_like_network
from repro.network.messages import decode_message, encode_message
from repro.scheduling.value_functions import LatencyValue
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulation

EPOCH = datetime(2020, 6, 1)


def ack_lifecycle_demo() -> None:
    print("=== Delayed-ack lifecycle ===")
    satellites = build_paper_fleet(count=12, seed=7)
    network = satnogs_like_network(40, tx_capable_fraction=0.1, seed=11)
    for sat in satellites:
        sat.generate_data(EPOCH - timedelta(hours=1), 3600.0)
    config = SimulationConfig(start=EPOCH, duration_s=6 * 3600.0)
    sim = Simulation(satellites=satellites, network=network, value_function=LatencyValue(), config=config,
                     truth_weather=build_paper_weather(seed=3))
    report = sim.run()

    delivered = sum(len(v) for v in report.latency_s.values())
    acked = sum(len(s.storage.acked_chunks) for s in satellites)
    waiting = sum(len(s.storage.delivered_unacked_chunks) for s in satellites)
    print(f"chunks delivered to the ground:     {delivered}")
    print(f"chunks acked back to satellites:    {acked}")
    print(f"delivered but awaiting ack:         {waiting}")
    print("(delivered data stays on the recorder until a transmit-capable "
          "contact\n relays the backend's collated acknowledgements)")

    # Ack latency: delivery -> ack, for chunks that completed the loop.
    gaps = []
    for sat in satellites:
        for chunk in sat.storage.acked_chunks:
            gaps.append((chunk.ack_time - chunk.delivery_time).total_seconds())
    if gaps:
        gaps.sort()
        print(f"delivery->ack gap: median {gaps[len(gaps) // 2] / 60:.0f} min, "
              f"max {gaps[-1] / 60:.0f} min across {len(gaps)} chunks")


def wire_message_demo() -> None:
    print("\n=== Wire messages ===")
    from repro.network.messages import AckBatchMessage, ChunkReceiptMessage

    receipt = ChunkReceiptMessage(
        station_id="gs-042", satellite_id="SYN-EO-003", chunk_id=1217,
        received_at=EPOCH + timedelta(hours=1, minutes=12), size_bits=8e9,
    )
    wire = encode_message(receipt)
    print(f"station -> backend ({len(wire)} bytes):")
    print(f"  {wire}")
    batch = AckBatchMessage(
        satellite_id="SYN-EO-003", chunk_ids=(1215, 1216, 1217),
        issued_at=EPOCH + timedelta(hours=3),
    )
    print("backend -> satellite via tx-capable station:")
    print(f"  {encode_message(batch)}")
    assert decode_message(wire) == receipt


def tx_fraction_sweep() -> None:
    print("\n=== How many uplink stations does the hybrid design need? ===")
    print(f"{'tx fraction':>12} | {'delivered GB':>12} | {'acked chunks':>12}")
    print("-" * 44)
    for fraction in (0.02, 0.05, 0.10, 0.25):
        satellites = build_paper_fleet(count=12, seed=7)
        network = satnogs_like_network(40, tx_capable_fraction=fraction, seed=11)
        config = SimulationConfig(
            start=EPOCH, duration_s=6 * 3600.0,
            enforce_plan_distribution=True, plan_max_age_s=12 * 3600.0,
        )
        sim = Simulation(satellites=satellites, network=network, value_function=LatencyValue(), config=config,
                         truth_weather=build_paper_weather(seed=3))
        report = sim.run()
        acked = sum(len(s.storage.acked_chunks) for s in satellites)
        print(f"{fraction:>11.0%} | {report.delivered_bits / 8e9:>12.1f} "
              f"| {acked:>12}")
    print("\nEven a few percent of transmit-capable stations keeps plans and "
          "acks flowing --\nthe paper's case for licensing only 'a very small "
          "number' of uplink sites.")


def main() -> None:
    ack_lifecycle_demo()
    wire_message_demo()
    tx_fraction_sweep()


if __name__ == "__main__":
    main()
