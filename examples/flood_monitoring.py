"""Latency-sensitive disaster imaging: the paper's flood/forest-fire case.

Run:  python examples/flood_monitoring.py

Sec. 1 motivates DGS with "time-sensitive applications of satellite data
like flood modeling and forest fires".  This example tags a slice of one
satellite's imagery as urgent flood imagery and uses the priority value
function with a region multiplier, then compares how fast the urgent
chunks reach the ground versus ordinary imagery on the same network.
"""

from datetime import datetime, timedelta

from repro.core.scenarios import build_paper_fleet, build_paper_weather
from repro.groundstations import satnogs_like_network
from repro.satellites.data import DataChunk
from repro.satellites.storage import highest_priority_first
from repro.scheduling.value_functions import PriorityValue
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulation

EPOCH = datetime(2020, 6, 1)
FLOOD_REGION = "ganges-delta"


def main() -> None:
    satellites = build_paper_fleet(count=30, seed=7)
    # Order each queue by operator priority, then age.
    for sat in satellites:
        sat.storage.queue_key = highest_priority_first
    network = satnogs_like_network(60, seed=11)

    # The flood mapper: one satellite captured urgent imagery two hours
    # ago, mixed into its ordinary backlog.
    mapper = satellites[0]
    for minutes_ago in (120, 110, 100, 90):
        mapper.storage.capture(
            DataChunk(
                satellite_id=mapper.satellite_id,
                size_bits=8e9,
                capture_time=EPOCH - timedelta(minutes=minutes_ago),
                priority=3.0,
                region=FLOOD_REGION,
            )
        )
    for sat in satellites:
        sat.generate_data(EPOCH - timedelta(hours=2), 7200.0)

    value_function = PriorityValue(region_multipliers={FLOOD_REGION: 4.0})
    config = SimulationConfig(start=EPOCH, duration_s=4 * 3600.0, step_s=60.0)
    sim = Simulation(satellites=satellites, network=network, value_function=value_function, config=config,
                     truth_weather=build_paper_weather(seed=3))
    report = sim.run()

    urgent = [
        c for c in mapper.storage.acked_chunks
        + mapper.storage.delivered_unacked_chunks
        if c.region == FLOOD_REGION and c.latency_seconds() is not None
    ]
    print("=== Flood imagery delivery ===")
    for chunk in urgent:
        # Age already accrued before the window is part of the latency.
        print(f"chunk {chunk.chunk_id}: capture->ground "
              f"{chunk.latency_seconds() / 60:.0f} min")
    if urgent:
        worst = max(c.latency_seconds() for c in urgent) / 60.0
        print(f"all {len(urgent)} urgent chunks delivered; slowest {worst:.0f} min")
    else:
        print("no urgent chunks delivered in the window -- try more stations")

    everyone = report.latency_percentiles_min((50, 90))
    print(f"\nnetwork-wide latency: median {everyone[50]:.0f} min, "
          f"p90 {everyone[90]:.0f} min over "
          f"{sum(len(v) for v in report.latency_s.values())} chunks")


if __name__ == "__main__":
    main()
