"""Weather-aware downlink routing: dodging rain with geographic diversity.

Run:  python examples/weather_routing.py

Sec. 3: "If the link from satellite alpha to ground station i is expected
to encounter clouds, then it could downlink data at a different ground
station j that falls along its path."  This example puts one satellite
over Europe with two candidate stations, soaks one of them in heavy rain,
and shows the scheduler's choice flip; it then quantifies the system-wide
effect of weather-aware scheduling by comparing a weather-blind scheduler
(clear-sky predictions, rainy truth) against the weather-aware one on the
same rainy world.
"""

from datetime import datetime, timedelta

from repro.core.scenarios import build_paper_fleet
from repro.groundstations import satnogs_like_network
from repro.scheduling.value_functions import LatencyValue
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulation
from repro.weather.cells import RainCellField, WeatherSample
from repro.weather.provider import ClearSkyProvider, QuantizedWeatherCache

EPOCH = datetime(2020, 6, 1)


class RainOverStation:
    """Truth weather: torrential rain at one location, clear elsewhere."""

    def __init__(self, lat: float, lon: float, radius_deg: float = 3.0):
        self.lat, self.lon, self.radius = lat, lon, radius_deg

    def sample(self, lat_deg, lon_deg, when):
        if (abs(lat_deg - self.lat) < self.radius
                and abs(lon_deg - self.lon) < self.radius):
            return WeatherSample(rain_rate_mm_h=60.0, cloud_water_kg_m2=3.0)
        return WeatherSample(rain_rate_mm_h=0.0, cloud_water_kg_m2=0.0)


def link_choice_demo() -> None:
    from repro import DGSNetwork

    satellites = build_paper_fleet(count=1, seed=7)
    network = satnogs_like_network(30, seed=11)
    satellites[0].generate_data(EPOCH - timedelta(hours=1), 3600.0)

    # Find an instant where the satellite sees at least two stations.
    clear = DGSNetwork(satellites=satellites, network=network, weather=ClearSkyProvider())
    when, pairs = None, []
    probe = EPOCH
    for _ in range(24 * 60):
        pairs = clear.visible_pairs(probe)
        if len(pairs) >= 2:
            when = probe
            break
        probe += timedelta(minutes=1)
    if when is None:
        print("satellite never sees two stations at once; re-seed")
        return

    step = clear.schedule(when)
    chosen = step.assignments[0].station_index
    station = network[chosen]
    print("=== Link choice under weather ===")
    print(f"clear sky: satellite downlinks to {station.station_id} "
          f"({station.latitude_deg:.1f}N, {station.longitude_deg:.1f}E)")

    rainy = DGSNetwork(
        satellites=satellites, network=network,
        weather=RainOverStation(station.latitude_deg, station.longitude_deg),
    )
    step_rain = rainy.schedule(when)
    if step_rain.assignments:
        alt = network[step_rain.assignments[0].station_index]
        if alt.station_id != station.station_id:
            print(f"with a storm over it: scheduler reroutes to "
                  f"{alt.station_id} ({alt.latitude_deg:.1f}N, "
                  f"{alt.longitude_deg:.1f}E)")
        else:
            print("storm not strong enough to flip this link (X band shrugs "
                  "off moderate rain)")
    else:
        print("with the storm the link does not close at all this instant")


def system_effect_demo() -> None:
    print("\n=== System-wide effect of weather-aware scheduling ===")
    truth = QuantizedWeatherCache(RainCellField(seed=3, intensity_scale=2.5))
    results = {}
    for label in ("aware", "blind"):
        satellites = build_paper_fleet(count=25, seed=7)
        network = satnogs_like_network(50, seed=11)
        config = SimulationConfig(start=EPOCH, duration_s=4 * 3600.0)
        sim = Simulation(satellites=satellites, network=network, value_function=LatencyValue(), config=config,
                         truth_weather=truth)
        if label == "blind":
            # The scheduler predicts with clear skies; reality is rainy, so
            # over-predicted rates fail to decode.
            sim.config.use_forecast = True
            sim.forecast = _ClearSkyForecast()
            sim.scheduler.weather = sim.forecast
        results[label] = sim.run()
    for label, report in results.items():
        lost_gb = report.lost_transmission_bits / 8e9
        print(f"{label:>6}: delivered {report.delivered_bits / 8e9:7.1f} GB, "
              f"lost to failed decodes {lost_gb:6.1f} GB")


class _ClearSkyForecast:
    """A 'forecast' that always promises clear skies (weather-blind)."""

    def forecast(self, lat, lon, issued_at, valid_at):
        return WeatherSample(0.0, 0.0)

    def sample(self, lat, lon, when):
        return WeatherSample(0.0, 0.0)


def main() -> None:
    link_choice_demo()
    system_effect_demo()


if __name__ == "__main__":
    main()
