"""Planned execution: running DGS the way Sec. 3 actually describes.

Run:  python examples/planned_operations.py

The paper's operational loop: the backend computes a downlink plan,
distributes it to every ground station over the Internet, and uploads it
to each satellite at its next transmit-capable contact.  Satellites then
follow the plan they hold -- which may be older than the one the stations
follow.  This example runs the same world in ``live`` mode (the paper's
simulation idealization) and ``planned`` mode, showing the cost of plan
distribution, then reconstructs operator-style contact reports from the
event log.
"""

from datetime import datetime

from repro.analysis.contacts import contacts_from_events, summarize_contacts
from repro.core.scenarios import build_paper_fleet, build_paper_weather
from repro.groundstations import satnogs_like_network
from repro.scheduling.value_functions import LatencyValue
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulation

EPOCH = datetime(2020, 6, 1)


def run_mode(mode: str):
    satellites = build_paper_fleet(count=30, seed=7)
    network = satnogs_like_network(50, tx_capable_fraction=0.12, seed=11)
    config = SimulationConfig(
        start=EPOCH, duration_s=6 * 3600.0,
        execution_mode=mode,
        plan_refresh_s=3600.0, plan_horizon_s=2 * 3600.0,
        record_events=True,
    )
    sim = Simulation(satellites=satellites, network=network, value_function=LatencyValue(), config=config,
                     truth_weather=build_paper_weather(seed=3))
    report = sim.run()
    return sim, report


def main() -> None:
    print("=== Live vs planned execution (6 h, 30 satellites) ===")
    results = {}
    for mode in ("live", "planned"):
        sim, report = run_mode(mode)
        results[mode] = (sim, report)
        lat = report.latency_percentiles_min((50, 90))
        extra = ""
        if mode == "planned":
            extra = (f"  plan mismatches: {sim.plan_mismatch_steps} steps, "
                     f"{len(sim._satellite_plans)}/{len(sim.satellites)} "
                     f"satellites bootstrapped")
        print(f"{mode:8s}: delivered {report.delivered_bits / 8e9:6.1f} GB, "
              f"latency p50/p90 {lat[50]:.0f}/{lat[90]:.0f} min{extra}")
    live_gb = results["live"][1].delivered_bits / 8e9
    planned_gb = results["planned"][1].delivered_bits / 8e9
    if live_gb > 0:
        print(f"\nplan-distribution cost: {1 - planned_gb / live_gb:.0%} of "
              "live-mode throughput\n(satellites idle until their first "
              "tx-capable contact, and fly stale plans between uploads)")

    print("\n=== Operator contact report (planned mode) ===")
    sim, _report = results["planned"]
    contacts = contacts_from_events(sim.events, step_s=60.0)
    summary = summarize_contacts(contacts)
    print(summary.render())
    longest = sorted(contacts, key=lambda c: -c.bits)[:5]
    for contact in longest:
        print(f"  {contact.start:%H:%M} {contact.satellite_id:>12s} @ "
              f"{contact.station_id:<8s} {contact.duration_s / 60:4.1f} min  "
              f"{contact.bits / 8e9:5.1f} GB  "
              f"{contact.mean_rate_bps / 1e6:5.0f} Mbps")


if __name__ == "__main__":
    main()
