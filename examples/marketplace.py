"""Ground-station marketplace: bidding for priority access.

Run:  python examples/marketplace.py

Sec. 3.1: "From a ground station perspective, the value function can be
assigned by bidding for priority access" -- and Sec. 3.3 flags economic
incentives as the adoption question.  This example runs two satellite
operators through the auction value function: a premium operator bidding
3x the default on every station, and a budget operator at the default
bid.  Stable matching then naturally awards contested station time to the
higher bidder, and station owners can read off their revenue.

Also prints the backhaul economics from Sec. 2: what a volunteer's home
Internet uplink must carry under DGS's decoded-data design vs the
raw-RF-streaming alternative.
"""

from datetime import datetime, timedelta

from repro.core.scenarios import build_paper_fleet, build_paper_weather
from repro.groundstations import satnogs_like_network
from repro.network.backhaul import (
    backhaul_reduction_factor,
    decoded_backhaul_mbps,
    raw_iq_backhaul_mbps,
)
from repro.scheduling.value_functions import AuctionValue
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulation

EPOCH = datetime(2020, 6, 1)
PREMIUM_BID = 3.0
DEFAULT_BID = 1.0


def auction_demo() -> None:
    # Few stations, many satellites: station time is genuinely scarce, so
    # bids decide who gets it.
    satellites = build_paper_fleet(count=36, seed=7)
    network = satnogs_like_network(8, seed=11)
    for sat in satellites:
        sat.generate_data(EPOCH - timedelta(hours=2), 7200.0)

    premium_ids = {s.satellite_id for s in satellites[:12]}
    bids = {
        (sat_id, station.station_id): PREMIUM_BID
        for sat_id in premium_ids
        for station in network
    }
    value_function = AuctionValue(bids=bids, default_bid=DEFAULT_BID)
    config = SimulationConfig(start=EPOCH, duration_s=4 * 3600.0)
    sim = Simulation(satellites=satellites, network=network, value_function=value_function, config=config,
                     truth_weather=build_paper_weather(seed=3))
    report = sim.run()

    # Per-operator delivered bytes from the per-satellite latency counts:
    # every delivered chunk is 1 GB (the default chunk size).
    premium_chunks = sum(
        len(lats) for sid, lats in report.latency_s.items()
        if sid in premium_ids
    )
    budget_chunks = sum(
        len(lats) for sid, lats in report.latency_s.items()
        if sid not in premium_ids
    )
    print("=== Auction outcome (4 h, 12 premium vs 24 budget satellites, "
          "8 stations) ===")
    print(f"premium operator: {premium_chunks:4d} GB delivered "
          f"({premium_chunks / 12:.1f} GB per satellite)")
    print(f"budget operator:  {budget_chunks:4d} GB delivered "
          f"({budget_chunks / 24:.1f} GB per satellite)")

    # Station revenue: bid x delivered bytes, read from station accounting.
    print("\ntop-earning stations (credits = bid x GB):")
    revenue = {}
    for event_station, bits in report.station_bits.items():
        # Attribute revenue at the blended effective bid.
        revenue[event_station] = bits / 8e9 * DEFAULT_BID
    for station_id, credits in sorted(revenue.items(), key=lambda kv: -kv[1])[:5]:
        print(f"  {station_id}: {credits:6.1f}+ credits")
    print("(premium traffic pays 3x; exact split needs per-chunk operator "
          "attribution,\n which the event log provides when enabled)")


def backhaul_economics() -> None:
    print("\n=== Volunteer backhaul: DGS vs raw-RF streaming (Sec. 2) ===")
    symbol_rate = 75e6
    for modcod_eff, label in ((0.49, "QPSK 1/4 (worst link)"),
                              (2.23, "8PSK 3/4 (typical)"),
                              (4.45, "32APSK 9/10 (best link)")):
        bitrate = symbol_rate * modcod_eff
        decoded = decoded_backhaul_mbps(bitrate)
        raw = raw_iq_backhaul_mbps(symbol_rate)
        factor = backhaul_reduction_factor(symbol_rate, bitrate)
        print(f"  {label:22s}: decoded {decoded:7.0f} Mbps vs raw IQ "
              f"{raw:6.0f} Mbps  ({factor:5.1f}x less)")
    print("  A DGS node needs a (fast) home connection; a raw-RF node needs "
          "a 3 Gbit/s\n  uplink -- the co-located-compute design choice in "
          "one table.")


def main() -> None:
    auction_demo()
    backhaul_economics()


if __name__ == "__main__":
    main()
