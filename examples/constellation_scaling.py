"""Contention vs constellation size: why centralized stations stop scaling.

Run:  python examples/constellation_scaling.py

Sec. 1: "the ground stations are under-utilized when the constellation
size is small.  As the constellation size grows to hundreds, the system
suffers from contention since multiple satellites become visible at the
same time to the ground station."  This example sweeps the fleet size and
prints median latency and delivery fraction for the 5-station baseline
versus a DGS network -- the crossover where distribution starts winning is
the paper's whole argument.
"""

from datetime import datetime

from repro.core.scenarios import ScenarioSpec

EPOCH = datetime(2020, 6, 1)
FLEET_SIZES = (10, 40, 100, 180)
DURATION_S = 6 * 3600.0


def run_point(kind: str, num_satellites: int) -> tuple[float, float]:
    if kind == "baseline":
        spec = ScenarioSpec.baseline(
            num_satellites=num_satellites, duration_s=DURATION_S
        )
    else:
        spec = ScenarioSpec.dgs(
            num_satellites=num_satellites, num_stations=120,
            duration_s=DURATION_S,
        )
    _f, _n, sim = spec.build()
    report = sim.run()
    median = report.latency_percentiles_min((50,))[50]
    return median, report.delivery_fraction


def main() -> None:
    print(f"{'fleet':>6} | {'baseline lat (min)':>19} | {'DGS lat (min)':>14} "
          f"| {'baseline dlvr':>13} | {'DGS dlvr':>9}")
    print("-" * 75)
    for size in FLEET_SIZES:
        base_lat, base_frac = run_point("baseline", size)
        dgs_lat, dgs_frac = run_point("dgs", size)
        print(f"{size:>6} | {base_lat:>19.1f} | {dgs_lat:>14.1f} "
              f"| {base_frac:>12.0%} | {dgs_frac:>8.0%}")
    print("\nAs the fleet grows the baseline's 5 stations saturate (latency "
          "climbs,\ndelivery fraction falls) while the distributed network "
          "degrades gracefully.")


if __name__ == "__main__":
    main()
