"""Quickstart: build a DGS network, inspect geometry, schedule a downlink.

Run:  python examples/quickstart.py

Builds a small synthetic world (20 satellites, 40 ground stations), then
walks the public API end to end: pass prediction, link-quality estimation,
one scheduling instant, and a short data-transfer simulation.
"""

from datetime import datetime, timedelta

from repro import DGSNetwork
from repro.core.scenarios import build_paper_fleet, build_paper_weather
from repro.groundstations import satnogs_like_network

EPOCH = datetime(2020, 6, 1)


def main() -> None:
    satellites = build_paper_fleet(count=20, seed=7)
    network = satnogs_like_network(40, seed=11)
    dgs = DGSNetwork(
        satellites=satellites,
        network=network,
        weather=build_paper_weather(seed=3),
    )

    # Give the fleet an hour of imagery so there is something to schedule.
    for sat in satellites:
        sat.generate_data(EPOCH - timedelta(hours=1), 3600.0)

    print("=== Pass prediction ===")
    sat, station = satellites[0], network[0]
    windows = dgs.predict_passes(sat, station, EPOCH, EPOCH + timedelta(days=1))
    print(f"{sat.satellite_id} over {station.station_id} "
          f"({station.latitude_deg:.1f}N, {station.longitude_deg:.1f}E): "
          f"{len(windows)} passes in 24 h")
    for w in windows[:3]:
        print(f"  rise {w.rise_time:%H:%M:%S}  set {w.set_time:%H:%M:%S}  "
              f"dur {w.duration_seconds / 60:.1f} min  "
              f"max el {w.max_elevation_deg:.0f} deg")

    print("\n=== Link quality at culmination ===")
    if windows:
        peak = windows[0].culmination_time
        link = dgs.link_quality(sat, station, peak)
        modcod = link.modcod.name if link.modcod else "no link"
        print(f"Es/N0 {link.esn0_db:.1f} dB -> {modcod} "
              f"-> {link.bitrate_bps / 1e6:.0f} Mbps "
              f"(FSPL {link.fspl_db:.0f} dB, rain {link.rain_db:.2f} dB)")

    print("\n=== One scheduling instant ===")
    step = dgs.schedule(EPOCH)
    print(f"{step.num_edges} feasible links, {len(step.assignments)} scheduled:")
    for a in step.assignments[:8]:
        print(f"  {satellites[a.satellite_index].satellite_id:12s} -> "
              f"{network[a.station_index].station_id}  "
              f"{a.bitrate_bps / 1e6:6.0f} Mbps  value {a.weight:.0f}")

    print("\n=== Two-hour data-transfer simulation ===")
    report = dgs.simulate(EPOCH, duration_s=2 * 3600.0)
    pct = report.latency_percentiles_min((50, 90))
    print(f"generated {report.generated_bits / 8e9:6.1f} GB, "
          f"delivered {report.delivered_bits / 8e9:6.1f} GB")
    if report.all_latencies_s().size:
        print(f"latency median {pct[50]:.1f} min, p90 {pct[90]:.1f} min")

    print("\n=== The unified entry point: ScenarioSpec ===")
    # One frozen spec describes a whole paper scenario; build() assembles
    # a fresh fleet/network/simulation, run() executes it.  Passing an
    # ObsConfig records stage timings (and, with trace_path/manifest_path
    # set, a JSONL event trace and a reproducibility manifest).
    from repro import ObsConfig, ScenarioSpec

    spec = ScenarioSpec.dgs(num_satellites=10, num_stations=20,
                            duration_s=3600.0, observability=ObsConfig())
    result = spec.run()
    timings = result.report.run_stage_seconds()
    print(f"{result.label}: delivered {result.report.delivered_bits / 8e9:.1f} GB "
          f"in {result.report.stage_timings['run']:.2f} s of compute")
    for stage, seconds in sorted(timings.items(), key=lambda kv: -kv[1])[:3]:
        print(f"  {stage:<12s} {seconds:.2f} s")


if __name__ == "__main__":
    main()
