#!/usr/bin/env python3
"""Per-package coverage floors over a coverage.py JSON report.

Usage::

    python scripts/coverage_gate.py coverage.json \
        [--floor repro/weather=85 --floor repro/network=85] \
        [--summary "$GITHUB_STEP_SUMMARY"]

The input is ``coverage json``'s report (``pytest --cov=repro
--cov-branch --cov-report=json:coverage.json``).  Files are grouped into
packages by their directory under ``src/``; each package's percentage is
the combined line+branch figure coverage.py itself uses
(``(covered_lines + covered_branches) / (num_statements +
num_branches)``), so running without ``--cov-branch`` simply degrades to
line coverage rather than failing.

The floors gate only the packages they name -- the table still lists
every package for eyeballing.  Exit codes: 0 ok, 1 floor violated (or a
floored package absent from the report), 2 usage.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict

#: Default floors: the PR-9 storm/diversity subsystems.  New weather and
#: network code is cheap to cover at birth and expensive to cover later.
DEFAULT_FLOORS = {"repro/weather": 85.0, "repro/network": 85.0}


def package_of(path: str) -> str:
    """``src/repro/weather/storms.py`` -> ``repro/weather``."""
    parts = path.replace("\\", "/").split("/")
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    return "/".join(parts[:-1]) if len(parts) > 1 else "(top-level)"


def aggregate(report: dict) -> dict[str, dict[str, int]]:
    packages: dict[str, dict[str, int]] = defaultdict(
        lambda: {"covered": 0, "total": 0, "files": 0}
    )
    for path, data in report.get("files", {}).items():
        summary = data.get("summary", {})
        agg = packages[package_of(path)]
        agg["covered"] += int(summary.get("covered_lines", 0))
        agg["covered"] += int(summary.get("covered_branches", 0))
        agg["total"] += int(summary.get("num_statements", 0))
        agg["total"] += int(summary.get("num_branches", 0))
        agg["files"] += 1
    return dict(packages)


def percent(agg: dict[str, int]) -> float:
    return 100.0 * agg["covered"] / agg["total"] if agg["total"] else 100.0


def parse_floor(spec: str) -> tuple[str, float]:
    name, _, value = spec.partition("=")
    if not name or not value:
        raise argparse.ArgumentTypeError(
            f"floor must look like repro/weather=85, got {spec!r}"
        )
    return name, float(value)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("report", help="coverage.py JSON report")
    parser.add_argument(
        "--floor", action="append", type=parse_floor, default=None,
        metavar="PKG=PCT",
        help="minimum combined line+branch %% for one package "
             "(repeatable; default: repro/weather=85 repro/network=85)",
    )
    parser.add_argument(
        "--summary", default=None,
        help="append the markdown table to this file "
             "(pass \"$GITHUB_STEP_SUMMARY\" in CI)",
    )
    args = parser.parse_args(argv)
    floors = dict(args.floor) if args.floor else dict(DEFAULT_FLOORS)

    try:
        with open(args.report, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {args.report}: {exc}", file=sys.stderr)
        return 2
    packages = aggregate(report)

    failures = []
    lines = [
        "### Coverage by package (line + branch)",
        "",
        "| package | files | covered% | floor | verdict |",
        "|---|---|---|---|---|",
    ]
    for name in sorted(set(packages) | set(floors)):
        floor = floors.get(name)
        if name not in packages:
            failures.append(f"{name} (floored package missing from report)")
            lines.append(f"| {name} | 0 | - | {floor:.0f}% | **missing** |")
            continue
        pct = percent(packages[name])
        verdict = "ok"
        if floor is not None and pct < floor:
            failures.append(f"{name} ({pct:.1f}% < {floor:.0f}%)")
            verdict = "**below floor**"
        lines.append(
            f"| {name} | {packages[name]['files']} | {pct:.1f}% | "
            f"{'-' if floor is None else f'{floor:.0f}%'} | {verdict} |"
        )
    lines.append("")
    if failures:
        lines.append("Coverage floors violated: " + "; ".join(failures))
    else:
        floored = ", ".join(sorted(floors)) or "(none)"
        lines.append(f"All coverage floors met ({floored}).")
    table = "\n".join(lines)
    print(table)
    if args.summary:
        with open(args.summary, "a", encoding="utf-8") as handle:
            handle.write(table + "\n")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
