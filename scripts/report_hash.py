"""Deterministic digest of a simulation report, for CI determinism checks.

Usage::

    python scripts/report_hash.py report.json [more.json ...]

Prints ``<sha256>  <path>`` per file.  Wall-clock facts (``stage_timings``)
are stripped before hashing and the JSON is canonicalized (sorted keys,
fixed separators), so two runs of the same seeded scenario hash equal iff
they computed the same physics -- across processes, machines, and Python
versions.  The cross-version CI job runs the same traced scenario under
two interpreters and fails when these digests differ.
"""

from __future__ import annotations

import hashlib
import json
import sys


def report_digest(text: str) -> str:
    raw = json.loads(text)
    raw.pop("stage_timings", None)
    canonical = json.dumps(raw, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in argv:
        with open(path, "r", encoding="utf-8") as handle:
            print(f"{report_digest(handle.read())}  {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
