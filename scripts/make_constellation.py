"""Synthesize Walker-delta constellations as deterministic TLE files.

Usage::

    python scripts/make_constellation.py --total 2500 --planes 50 \
        --inclination 53.0 --altitude 550 > walker2500.tle
    python scripts/make_constellation.py \
        --shell 1584:72:1:53.0:550 --shell 720:36:1:70.0:570 > starlinkish.tle

Each ``--shell`` is ``total:planes:phasing:inclination_deg:altitude_km``;
with no ``--shell``, the single-shell flags apply.  Output is standard
3-line TLE format (name, line 1, line 2) on stdout or ``--output``.  The
same arguments always produce byte-identical output -- the property that
lets scaling benchmarks use these fleets as content-addressed identities.
"""

from __future__ import annotations

import argparse
import sys
from datetime import datetime

_REPO_SRC = __file__.rsplit("/", 2)[0] + "/src"
if _REPO_SRC not in sys.path:
    sys.path.insert(0, _REPO_SRC)

from repro.orbits.constellation import walker_delta, walker_shells  # noqa: E402


def parse_shell(text: str) -> tuple[int, int, int, float, float]:
    parts = text.split(":")
    if len(parts) != 5:
        raise argparse.ArgumentTypeError(
            f"shell must be total:planes:phasing:inclination:altitude, "
            f"got {text!r}"
        )
    return (int(parts[0]), int(parts[1]), int(parts[2]),
            float(parts[3]), float(parts[4]))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--total", type=int, default=2500,
                        help="satellites in the (single) shell")
    parser.add_argument("--planes", type=int, default=50,
                        help="orbital planes (must divide total)")
    parser.add_argument("--phasing", type=int, default=1,
                        help="Walker f parameter (0 <= f < planes)")
    parser.add_argument("--inclination", type=float, default=53.0,
                        help="inclination, degrees")
    parser.add_argument("--altitude", type=float, default=550.0,
                        help="circular altitude, km")
    parser.add_argument("--epoch", default="2020-06-01T00:00:00",
                        help="TLE epoch (ISO 8601; default the paper epoch)")
    parser.add_argument("--first-satnum", type=int, default=70000)
    parser.add_argument("--shell", action="append", type=parse_shell,
                        metavar="T:P:F:INC:ALT", default=None,
                        help="multi-shell spec; repeatable, overrides the "
                             "single-shell flags")
    parser.add_argument("--output", "-o", default=None,
                        help="write here instead of stdout")
    args = parser.parse_args(argv)

    epoch = datetime.fromisoformat(args.epoch)
    if args.shell:
        tles = walker_shells(args.shell, epoch,
                             first_satnum=args.first_satnum)
    else:
        tles = walker_delta(
            args.total, args.planes, args.phasing, args.inclination,
            args.altitude, epoch, first_satnum=args.first_satnum,
        )

    lines = []
    for tle in tles:
        line1, line2 = tle.to_lines()
        lines.extend((tle.name, line1, line2))
    text = "\n".join(lines) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {len(tles)} TLEs to {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
