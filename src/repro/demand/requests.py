"""Seeded downlink-request generation and chunk stamping.

The demand layer maps each satellite's continuous capture stream onto
:class:`DownlinkRequest` windows: a request owns a run of consecutive
chunks, and every chunk in the run is stamped with the request's tenant,
priority, region, and SLA deadline at capture time.  Generation is a pure
function of ``(seed, satellite_id)`` -- per-satellite SHA-256-derived RNG
streams, never the interleaving of the fleet -- so the same scenario spec
produces bit-identical demand no matter how the simulation is sliced.
"""

from __future__ import annotations

import hashlib
import random
from collections import deque
from dataclasses import dataclass
from datetime import timedelta
from typing import TYPE_CHECKING, Iterator

from repro.demand.tenant import Tenant

if TYPE_CHECKING:
    from repro.satellites.data import DataChunk
    from repro.satellites.satellite import Satellite


@dataclass(frozen=True)
class DownlinkRequest:
    """One tenant's request for a window of a satellite's capture stream.

    ``request_id`` numbers the satellite's own request sequence (ids are
    per-satellite, which keeps the stream independent of fleet
    interleaving); the remaining fields are what gets stamped onto the
    chunks the request covers.
    """

    request_id: int
    tenant_id: str
    priority: float
    region: str
    sla_deadline_s: float


def _stream_seed(seed: int, satellite_id: str) -> int:
    """A per-satellite RNG seed; SHA-256, never the salted builtin hash."""
    digest = hashlib.sha256(f"{seed}:{satellite_id}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RequestGenerator:
    """Per-satellite infinite streams of seeded downlink requests."""

    def __init__(self, tenants: tuple[Tenant, ...], seed: int = 13):
        if not tenants:
            raise ValueError("RequestGenerator needs at least one tenant")
        self._tenants = tuple(tenants)
        self._seed = seed
        total = sum(t.demand_share for t in self._tenants)
        cumulative = []
        running = 0.0
        for tenant in self._tenants:
            running += tenant.demand_share / total
            cumulative.append(running)
        cumulative[-1] = 1.0  # guard the float tail
        self._cumulative = cumulative

    def stream_for(self, satellite_id: str) -> Iterator[DownlinkRequest]:
        """The satellite's request stream; deterministic in (seed, id)."""
        rng = random.Random(_stream_seed(self._seed, satellite_id))
        request_id = 0
        while True:
            draw = rng.random()
            tenant = self._tenants[-1]
            for k, edge in enumerate(self._cumulative):
                if draw < edge:
                    tenant = self._tenants[k]
                    break
            region = ""
            if tenant.regions:
                region = tenant.regions[rng.randrange(len(tenant.regions))]
            yield DownlinkRequest(
                request_id=request_id,
                tenant_id=tenant.tenant_id,
                priority=float(tenant.tier),
                region=region,
                sla_deadline_s=tenant.sla_deadline_s,
            )
            request_id += 1


class DemandAssigner:
    """Stamps captured chunks with their owning request's identity.

    ``requests_per_day`` sets the granularity: a satellite producing
    ``daily_chunks`` chunks per day cuts its stream into runs of
    ``max(1, round(daily_chunks / requests_per_day))`` consecutive chunks
    per request, so tenancy switches at request boundaries rather than
    per chunk (real tasking windows cover contiguous imagery).
    """

    def __init__(self, generator: RequestGenerator,
                 requests_per_day: int = 24):
        if requests_per_day < 1:
            raise ValueError("requests_per_day must be >= 1")
        self._generator = generator
        self._requests_per_day = requests_per_day
        #: satellite_id -> [stream, current request, chunks left in it].
        self._state: dict[str, list] = {}
        #: satellite_id -> deque of [request, chunks left] injected via
        #: :meth:`inject`; drained before the seeded stream resumes.
        self._pending: dict[str, deque] = {}

    def _chunks_per_request(self, satellite: "Satellite") -> int:
        daily_chunks = (
            satellite.generation_gb_per_day / satellite.chunk_size_gb
        )
        return max(1, round(daily_chunks / self._requests_per_day))

    def inject(self, satellite_id: str, request: DownlinkRequest,
               chunks: int = 1) -> None:
        """Queue an externally submitted request for a satellite.

        Injected requests preempt the seeded stream: the satellite's
        next ``chunks`` captures are stamped with this request, in
        submission order across injections, and the interrupted seeded
        window is abandoned (a fresh seeded request is drawn once the
        injections drain).  With no injections the stamping path is
        untouched, so purely seeded runs stay bit-identical.
        """
        if chunks < 1:
            raise ValueError("chunks must be >= 1")
        self._pending.setdefault(satellite_id, deque()).append(
            [request, int(chunks)]
        )

    def stamp(self, chunk: "DataChunk", satellite: "Satellite") -> None:
        """Assign the chunk to the satellite's current request window."""
        state = self._state.get(chunk.satellite_id)
        if state is None:
            state = [self._generator.stream_for(chunk.satellite_id), None, 0]
            self._state[chunk.satellite_id] = state
        pending = self._pending.get(chunk.satellite_id)
        if pending:
            head = pending[0]
            request: DownlinkRequest = head[0]
            head[1] -= 1
            if head[1] <= 0:
                pending.popleft()
            state[2] = 0  # abandon the preempted seeded window
        else:
            if state[2] <= 0:
                state[1] = next(state[0])
                state[2] = self._chunks_per_request(satellite)
            request = state[1]
            state[2] -= 1
        chunk.tenant_id = request.tenant_id
        chunk.priority = request.priority
        chunk.region = request.region
        chunk.deadline = chunk.capture_time + timedelta(
            seconds=request.sla_deadline_s
        )
