"""Per-tenant delivery accounting: quotas, deadlines, fairness.

The accountant is shared between the engine (which reports generations
and deliveries as they happen) and the :class:`DeadlineSlaValue` pricing
(which reads the current day's quota state to discount over-quota
tenants).  At the end of a run it folds undelivered-but-overdue chunks
into the SLA-violation counts and summarizes everything into the
per-tenant block of the :class:`~repro.simulation.metrics.SimulationReport`.
"""

from __future__ import annotations

from dataclasses import replace
from datetime import datetime
from typing import TYPE_CHECKING, Iterable

from repro.demand.tenant import GB_TO_BITS, Tenant

if TYPE_CHECKING:
    from repro.satellites.data import DataChunk
    from repro.satellites.satellite import Satellite


class TenantAccountant:
    """Accumulates per-tenant demand metrics during one run."""

    def __init__(self, tenants: tuple[Tenant, ...], start: datetime):
        self._tenants = {t.tenant_id: t for t in tenants}
        if len(self._tenants) != len(tenants):
            raise ValueError("tenant ids must be unique")
        self._start = start
        self.generated_bits = {t.tenant_id: 0.0 for t in tenants}
        self.delivered_bits = {t.tenant_id: 0.0 for t in tenants}
        self.delivered_chunks = {t.tenant_id: 0 for t in tenants}
        self.deadline_hits = {t.tenant_id: 0 for t in tenants}
        self.late_deliveries = {t.tenant_id: 0 for t in tenants}
        self.missed_undelivered = {t.tenant_id: 0 for t in tenants}
        #: (tenant_id, day index) -> bits delivered in that UTC day of
        #: the run; the per-day quota ledger the pricing reads.
        self._delivered_by_day: dict[tuple[str, int], float] = {}

    def _day_index(self, when: datetime) -> int:
        return int((when - self._start).total_seconds() // 86400.0)

    # -- engine-side recording ---------------------------------------------

    def record_generation(self, chunk: "DataChunk") -> None:
        if chunk.tenant_id in self.generated_bits:
            self.generated_bits[chunk.tenant_id] += chunk.size_bits

    def record_delivery(self, chunk: "DataChunk", now: datetime) -> None:
        """Account a first decoded delivery (the engine dedups redeliveries)."""
        tenant_id = chunk.tenant_id
        if tenant_id not in self.delivered_bits:
            return
        self.delivered_bits[tenant_id] += chunk.size_bits
        self.delivered_chunks[tenant_id] += 1
        day = (tenant_id, self._day_index(now))
        self._delivered_by_day[day] = (
            self._delivered_by_day.get(day, 0.0) + chunk.size_bits
        )
        if chunk.deadline is None or now <= chunk.deadline:
            self.deadline_hits[tenant_id] += 1
        else:
            self.late_deliveries[tenant_id] += 1

    def record_run_end(self, satellites: Iterable["Satellite"],
                       end: datetime) -> None:
        """Fold undelivered-but-overdue chunks into the violation counts.

        Mirrors ``true_backlog_bits``: the onboard queue plus chunks the
        satellite believes delivered but the ground never decoded.
        """
        for sat in satellites:
            undelivered = list(sat.storage.onboard_chunks)
            undelivered += [
                c for c in sat.storage.delivered_unacked_chunks
                if not c.ground_received
            ]
            for chunk in undelivered:
                if (
                    chunk.tenant_id in self.missed_undelivered
                    and chunk.deadline is not None
                    and chunk.deadline < end
                ):
                    self.missed_undelivered[chunk.tenant_id] += 1

    # -- mid-run control inputs ---------------------------------------------

    def set_quota(self, tenant_id: str, quota_gb_per_day: float) -> None:
        """Apply a mid-run quota change for one tenant.

        Takes effect immediately for :meth:`under_quota` reads (so
        quota-aware pricing sees it at the next scheduling pass) and for
        the end-of-run summary; already-delivered bits in the day ledger
        are kept.
        """
        tenant = self._tenants.get(tenant_id)
        if tenant is None:
            raise KeyError(f"unknown tenant {tenant_id!r}")
        if quota_gb_per_day < 0.0:
            raise ValueError("quota_gb_per_day must be >= 0")
        self._tenants[tenant_id] = replace(
            tenant, quota_gb_per_day=float(quota_gb_per_day)
        )

    # -- pricing-side reads -------------------------------------------------

    def under_quota(self, tenant_id: str, now: datetime) -> bool:
        """Whether the tenant still has quota left for ``now``'s day."""
        tenant = self._tenants.get(tenant_id)
        if tenant is None or tenant.quota_gb_per_day == 0.0:
            return True
        delivered = self._delivered_by_day.get(
            (tenant_id, self._day_index(now)), 0.0
        )
        return delivered < tenant.quota_bits_per_day

    # -- summary -------------------------------------------------------------

    def summary(self) -> dict[str, dict]:
        """Per-tenant report block, keyed by tenant id."""
        out: dict[str, dict] = {}
        for tenant_id, tenant in self._tenants.items():
            hits = self.deadline_hits[tenant_id]
            late = self.late_deliveries[tenant_id]
            missed = self.missed_undelivered[tenant_id]
            tracked = hits + late + missed
            out[tenant_id] = {
                "tier": tenant.tier,
                "quota_gb_per_day": tenant.quota_gb_per_day,
                "generated_bits": self.generated_bits[tenant_id],
                "delivered_bits": self.delivered_bits[tenant_id],
                "delivered_gb": self.delivered_bits[tenant_id] / GB_TO_BITS,
                "delivered_chunks": self.delivered_chunks[tenant_id],
                "deadline_hits": hits,
                "late_deliveries": late,
                "missed_undelivered": missed,
                "sla_violations": late + missed,
                "deadline_hit_rate": (
                    hits / tracked if tracked else 1.0
                ),
            }
        return out

    def fairness_index(self) -> float:
        """Jain's index over demand-share-normalized delivered bits.

        Dividing each tenant's delivered volume by its demand share asks
        "did everyone get ground time proportional to what they asked
        for?", so a bulk tenant with a small share is not counted as
        starved merely for being small.
        """
        from repro.analysis.fairness import jain_index

        return jain_index(
            self.delivered_bits[t.tenant_id] / t.demand_share
            for t in self._tenants.values()
        )
