"""Tenant definitions for the multi-tenant demand layer.

Sec. 3.1 sketches SLA weighting and "bidding for priority access" over a
shared ground segment; a :class:`Tenant` is one paying customer of that
segment -- a priority tier, a per-day downlink quota, an SLA deadline on
capture-to-ground latency, and optional regions of interest.  Tenants are
frozen and hashable so a tuple of them can sit inside a frozen
:class:`~repro.core.scenarios.ScenarioSpec` and survive serialization.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

#: Mirrors :data:`repro.simulation.metrics.GB_TO_BITS` without importing
#: the metrics module from this low-level package.
GB_TO_BITS = 8e9


@dataclass(frozen=True)
class Tenant:
    """One customer of the shared ground-station network.

    Parameters
    ----------
    tenant_id:
        Stable identifier; chunks are stamped with it at capture.
    tier:
        Priority tier (1 = bulk, higher = more urgent).  Stamped onto
        chunks as their ``priority`` so priority-aware queue orders and
        value functions see it.
    weight:
        Multiplier the :class:`DeadlineSlaValue` pricing applies to this
        tenant's data (what the tier is *worth*).
    quota_gb_per_day:
        Per-day delivered-volume quota; pricing discounts a tenant that
        has already exceeded its quota for the current day so others
        catch up.  ``0`` = unlimited.
    sla_deadline_s:
        Capture-to-delivery SLA; each chunk's deadline is its capture
        time plus this.  Deliveries after the deadline (or never) count
        as SLA violations.
    regions:
        Optional geographic regions of interest; requests draw a region
        tag from these for geography-aware value functions.
    demand_share:
        Relative share of the capture stream mapped to this tenant by
        the seeded request generator.
    """

    tenant_id: str
    tier: int = 1
    weight: float = 1.0
    quota_gb_per_day: float = 0.0
    sla_deadline_s: float = 21600.0
    regions: tuple[str, ...] = ()
    demand_share: float = 1.0

    def __post_init__(self) -> None:
        if not self.tenant_id:
            raise ValueError("tenant_id cannot be empty")
        if self.tier < 1:
            raise ValueError(f"tier must be >= 1, got {self.tier}")
        if self.weight <= 0.0:
            raise ValueError(f"weight must be positive, got {self.weight}")
        if self.quota_gb_per_day < 0.0:
            raise ValueError("quota_gb_per_day cannot be negative (0 = unlimited)")
        if self.sla_deadline_s <= 0.0:
            raise ValueError("sla_deadline_s must be positive")
        if self.demand_share <= 0.0:
            raise ValueError("demand_share must be positive")
        # from_dict round-trips hand lists in; the spec needs hashability.
        object.__setattr__(self, "regions", tuple(self.regions))

    @property
    def quota_bits_per_day(self) -> float:
        """The quota in bits, or +inf when unlimited."""
        if self.quota_gb_per_day == 0.0:
            return float("inf")
        return self.quota_gb_per_day * GB_TO_BITS

    def to_dict(self) -> dict:
        """JSON-compatible dict; stable round-trip via :meth:`from_dict`."""
        return {
            "tenant_id": self.tenant_id,
            "tier": self.tier,
            "weight": self.weight,
            "quota_gb_per_day": self.quota_gb_per_day,
            "sla_deadline_s": self.sla_deadline_s,
            "regions": list(self.regions),
            "demand_share": self.demand_share,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "Tenant":
        unknown = set(raw) - {f.name for f in fields(cls)}
        if unknown:
            raise ValueError(f"unknown Tenant fields: {sorted(unknown)}")
        return cls(**raw)


#: Named tenant mixes for sweeps and the CLI.  Shares are relative; the
#: request generator normalizes them.
TENANT_MIXES: dict[str, tuple[Tenant, ...]] = {
    # A premium EO customer with a tight SLA, a standard tier under a
    # daily quota, and a bulk archive tier that tolerates a day of delay.
    "balanced": (
        Tenant("premium", tier=3, weight=4.0, sla_deadline_s=3600.0,
               regions=("americas", "europe"), demand_share=0.2),
        Tenant("standard", tier=2, weight=2.0, quota_gb_per_day=40.0,
               sla_deadline_s=21600.0, demand_share=0.5),
        Tenant("bulk", tier=1, weight=1.0, sla_deadline_s=86400.0,
               demand_share=0.3),
    ),
    # Premium demand dominates the capture stream: the pricing has to
    # ration station time between many urgent chunks.
    "premium-heavy": (
        Tenant("premium", tier=3, weight=4.0, sla_deadline_s=3600.0,
               demand_share=0.6),
        Tenant("standard", tier=2, weight=2.0, quota_gb_per_day=40.0,
               sla_deadline_s=21600.0, demand_share=0.3),
        Tenant("bulk", tier=1, weight=1.0, sla_deadline_s=86400.0,
               demand_share=0.1),
    ),
    # Small per-day quotas on every tier: the over-quota discount is the
    # dominant pricing term and fairness pressure is maximal.
    "quota-tight": (
        Tenant("alpha", tier=2, weight=2.0, quota_gb_per_day=10.0,
               sla_deadline_s=14400.0, demand_share=0.34),
        Tenant("beta", tier=2, weight=2.0, quota_gb_per_day=10.0,
               sla_deadline_s=14400.0, demand_share=0.33),
        Tenant("gamma", tier=1, weight=1.0, quota_gb_per_day=10.0,
               sla_deadline_s=43200.0, demand_share=0.33),
    ),
}


def tenant_mix(name: str) -> tuple[Tenant, ...]:
    """A named preset mix, or a ValueError naming the valid choices."""
    try:
        return TENANT_MIXES[name]
    except KeyError:
        raise ValueError(
            f"unknown tenant mix {name!r} (choose from "
            f"{', '.join(sorted(TENANT_MIXES))})"
        ) from None
