"""Multi-tenant demand: who the downlinked data belongs to and what it
is worth.

The paper models a single uniform tenant (every satellite emits
100 GB/day of equal-value data); Sec. 3.1's SLA weighting and "bidding
for priority access" presuppose the ground segment is shared between
customers with different urgency and willingness to pay.  This package
supplies that demand side: :class:`Tenant` definitions, seeded
:class:`DownlinkRequest` generation mapping each satellite's capture
stream onto tenants, and the :class:`TenantAccountant` that tracks
per-tenant quotas, deadlines, and fairness through a run.

:class:`DemandLayer` bundles the three for the engine; scenarios build
one from ``ScenarioSpec(tenants=..., requests_per_day=..., demand_seed=...)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime

from repro.demand.accounting import TenantAccountant
from repro.demand.requests import (
    DemandAssigner,
    DownlinkRequest,
    RequestGenerator,
)
from repro.demand.tenant import TENANT_MIXES, Tenant, tenant_mix

__all__ = [
    "DemandAssigner",
    "DemandLayer",
    "DownlinkRequest",
    "RequestGenerator",
    "TENANT_MIXES",
    "Tenant",
    "TenantAccountant",
    "tenant_mix",
]


@dataclass
class DemandLayer:
    """The assembled demand side of one simulation run."""

    tenants: tuple[Tenant, ...]
    assigner: DemandAssigner
    accountant: TenantAccountant

    @classmethod
    def build(cls, tenants: tuple[Tenant, ...], requests_per_day: int,
              seed: int, start: datetime) -> "DemandLayer":
        """Assemble generator, assigner, and accountant for one run."""
        generator = RequestGenerator(tuple(tenants), seed=seed)
        return cls(
            tenants=tuple(tenants),
            assigner=DemandAssigner(generator,
                                    requests_per_day=requests_per_day),
            accountant=TenantAccountant(tuple(tenants), start=start),
        )
