"""Station backhaul: Internet uplink capacity and edge-compute prioritization.

Two pieces of the paper live here:

* **The VERGE comparison (Sec. 2).**  Lockheed's VERGE streams raw RF to
  the cloud for software demodulation; DGS co-locates compute with the
  antenna and ships only decoded data, cutting required backhaul "by
  orders of magnitude".  :func:`raw_iq_backhaul_mbps` vs
  :func:`decoded_backhaul_mbps` quantifies that claim for any link.

* **Edge compute on the ground station (Sec. 3.3).**  A station with a
  finite uplink cannot forward a whole pass instantly;
  :class:`StationUplink` models the upload queue, and edge compute means
  latency-sensitive chunks jump it ("deliver latency-sensitive data to
  the cloud faster and upload the other data at a lower priority").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from datetime import datetime, timedelta


def raw_iq_backhaul_mbps(symbol_rate_baud: float,
                         bits_per_sample: int = 16,
                         oversampling: float = 1.25) -> float:
    """Backhaul needed to stream raw complex baseband (the VERGE design).

    I/Q pairs at ``oversampling`` x the symbol rate, ``bits_per_sample``
    per component: a single 75 Mbaud X-band channel needs ~3 Gbit/s of
    Internet uplink before any data has even been demodulated.
    """
    if symbol_rate_baud <= 0:
        raise ValueError("symbol rate must be positive")
    if bits_per_sample < 1 or oversampling < 1.0:
        raise ValueError("invalid sampling parameters")
    samples_per_s = symbol_rate_baud * oversampling
    return samples_per_s * 2 * bits_per_sample / 1e6


def decoded_backhaul_mbps(bitrate_bps: float) -> float:
    """Backhaul needed to forward demodulated+decoded data (the DGS design)."""
    if bitrate_bps < 0:
        raise ValueError("bitrate cannot be negative")
    return bitrate_bps / 1e6


def backhaul_reduction_factor(symbol_rate_baud: float,
                              bitrate_bps: float,
                              bits_per_sample: int = 16) -> float:
    """How many times less backhaul DGS needs than raw-RF streaming.

    Infinite when the link is down (raw streaming still ships samples!).
    """
    decoded = decoded_backhaul_mbps(bitrate_bps)
    raw = raw_iq_backhaul_mbps(symbol_rate_baud, bits_per_sample)
    if decoded == 0.0:
        return math.inf
    return raw / decoded


@dataclass(order=True)
class _QueuedUpload:
    sort_key: tuple = field(init=False, repr=False)
    priority: float = 0.0  # higher = uploads sooner
    enqueued_at: datetime = None
    chunk_id: int = -1
    remaining_bits: float = 0.0
    size_bits: float = 0.0

    def __post_init__(self) -> None:
        self.sort_key = (-self.priority, self.enqueued_at)


class StationUplink:
    """A station's finite Internet uplink with priority queueing.

    Chunks received off the air are enqueued; :meth:`drain` advances the
    uplink clock, uploading in priority order (edge compute decides the
    priorities).  Completed uploads are returned with their cloud-arrival
    times so the caller can account end-to-end latency.
    """

    def __init__(self, capacity_mbps: float):
        if capacity_mbps <= 0:
            raise ValueError("uplink capacity must be positive")
        self.capacity_bps = capacity_mbps * 1e6
        self._queue: list[_QueuedUpload] = []

    def enqueue(self, chunk_id: int, size_bits: float, when: datetime,
                priority: float = 0.0) -> None:
        if size_bits <= 0:
            raise ValueError("chunk size must be positive")
        self._queue.append(_QueuedUpload(
            priority=priority, enqueued_at=when,
            chunk_id=chunk_id, remaining_bits=size_bits, size_bits=size_bits,
        ))
        self._queue.sort()

    @property
    def queued_bits(self) -> float:
        return sum(u.remaining_bits for u in self._queue)

    def backlog_delay_s(self) -> float:
        """Time to clear the current queue at full capacity."""
        return self.queued_bits / self.capacity_bps

    def drain(self, start: datetime, duration_s: float) -> list[tuple[int, datetime]]:
        """Upload for an interval; returns (chunk_id, cloud_arrival) pairs."""
        if duration_s < 0:
            raise ValueError("duration cannot be negative")
        budget = self.capacity_bps * duration_s
        elapsed = 0.0
        completed: list[tuple[int, datetime]] = []
        while budget > 1e-9 and self._queue:
            head = self._queue[0]
            sendable = min(budget, head.remaining_bits)
            head.remaining_bits -= sendable
            budget -= sendable
            elapsed += sendable / self.capacity_bps
            if head.remaining_bits <= 1e-9:
                self._queue.pop(0)
                completed.append(
                    (head.chunk_id, start + timedelta(seconds=elapsed))
                )
        return completed
