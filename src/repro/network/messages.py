"""Wire messages exchanged between stations, the backend, and satellites.

Three message types cover the DGS control loop:

* :class:`ChunkReceiptMessage` -- station -> backend over the Internet:
  "I fully received chunk C of satellite S at time T".
* :class:`AckBatchMessage` -- backend -> satellite via a transmit-capable
  station: the collated delayed acknowledgements (Sec. 3.3).
* :class:`PlanUploadMessage` -- backend -> satellite via a transmit-capable
  station: the timed downlink plan ("the data-dump plan", Sec. 1).

Messages serialize to/from JSON; the format is versioned so a deployed
fleet can evolve.  Timestamps are ISO-8601 UTC strings on the wire.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from datetime import datetime

_FORMAT_VERSION = 1


class MessageError(ValueError):
    """Raised on malformed or unknown wire messages."""


@dataclass(frozen=True)
class ChunkReceiptMessage:
    """A station's report that it fully received a chunk."""

    station_id: str
    satellite_id: str
    chunk_id: int
    received_at: datetime
    size_bits: float

    type_name = "chunk_receipt"


@dataclass(frozen=True)
class AckBatchMessage:
    """Collated acknowledgements for one satellite."""

    satellite_id: str
    chunk_ids: tuple[int, ...]
    issued_at: datetime

    type_name = "ack_batch"


@dataclass(frozen=True)
class PlanUploadMessage:
    """A downlink plan for one satellite: timed (start, station) entries."""

    satellite_id: str
    issued_at: datetime
    #: (ISO start time, station_id, expected bitrate bps)
    entries: tuple[tuple[str, str, float], ...] = field(default_factory=tuple)

    type_name = "plan_upload"


_TYPES = {
    cls.type_name: cls
    for cls in (ChunkReceiptMessage, AckBatchMessage, PlanUploadMessage)
}


def _encode_value(value):
    if isinstance(value, datetime):
        return {"__dt__": value.isoformat()}
    if isinstance(value, tuple):
        return [_encode_value(v) for v in value]
    if isinstance(value, list):
        return [_encode_value(v) for v in value]
    return value


def _decode_value(value):
    if isinstance(value, dict) and "__dt__" in value:
        return datetime.fromisoformat(value["__dt__"])
    if isinstance(value, list):
        decoded = [_decode_value(v) for v in value]
        return tuple(decoded)
    return value


def encode_message(message) -> str:
    """Serialize a message to its JSON wire form."""
    type_name = getattr(message, "type_name", None)
    if type_name not in _TYPES:
        raise MessageError(f"not a wire message: {type(message).__name__}")
    payload = {k: _encode_value(v) for k, v in asdict(message).items()}
    return json.dumps(
        {"version": _FORMAT_VERSION, "type": type_name, "payload": payload},
        sort_keys=True,
    )


def decode_message(wire: str):
    """Parse a JSON wire message back into its dataclass."""
    try:
        obj = json.loads(wire)
    except json.JSONDecodeError as exc:
        raise MessageError(f"invalid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise MessageError("message must be a JSON object")
    if obj.get("version") != _FORMAT_VERSION:
        raise MessageError(f"unsupported version: {obj.get('version')}")
    cls = _TYPES.get(obj.get("type"))
    if cls is None:
        raise MessageError(f"unknown message type: {obj.get('type')}")
    payload = obj.get("payload")
    if not isinstance(payload, dict):
        raise MessageError("payload must be an object")
    try:
        decoded = {k: _decode_value(v) for k, v in payload.items()}
        return cls(**decoded)
    except TypeError as exc:
        raise MessageError(f"payload does not match {cls.__name__}: {exc}") from exc
