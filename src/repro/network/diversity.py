"""Backend diversity combiner: merge independently-errored pass copies.

The hybrid-GS argument (paper Sec. 3.3) is that several cheap stations
listening to the *same* pass can substitute for one good station, because
their decode errors are independent: the backend only needs *one* clean
copy of each chunk.  This module is the Internet-side half of that story.
Stations attempt to decode the common downlink stream; each attempt is a
:class:`CopyOutcome` with a per-station decode probability (from
:func:`repro.linkbudget.decode.decode_probability`) resolved by a seeded,
hash-keyed draw; the :class:`DiversityCombiner` ORs the copies into one
:class:`CombinedReception` and keeps the ``diversity_*`` counters that
surface in :class:`repro.simulation.metrics.SimulationReport`.

Receipt dedup is NOT re-implemented here: the engine submits one receipt
per (chunk, successful station) through the normal
:class:`repro.network.backend.BackendCollator` path, whose existing
duplicate-receipt handling collapses the extra copies.  The combiner is
pure accounting plus the deterministic per-copy randomness.

Determinism contract: a draw depends only on
``(seed, satellite_id, station_id, timestamp)`` -- never on evaluation
order, process, or whether the link budget ran scalar or batched -- so
diversity runs are bit-reproducible and scalar/batched paths stay
bit-identical.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from datetime import datetime


def diversity_draw(seed: int, satellite_id: str, station_id: str,
                   when: datetime) -> float:
    """Deterministic uniform in [0, 1) for one station's decode attempt."""
    key = f"{seed}:{satellite_id}:{station_id}:{when.isoformat()}"
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class CopyOutcome:
    """One station's attempt at decoding the shared downlink stream."""

    station_index: int
    station_id: str
    is_primary: bool
    decode_probability: float
    decoded: bool


@dataclass(frozen=True)
class CombinedReception:
    """The merged result of all copies of one pass step."""

    satellite_id: str
    when: datetime
    copies: tuple[CopyOutcome, ...]

    @property
    def decoded(self) -> bool:
        """The backend has the data iff *any* copy decoded."""
        return any(copy.decoded for copy in self.copies)

    @property
    def rescued(self) -> bool:
        """A secondary saved a pass the primary alone would have lost."""
        primary_ok = any(c.decoded for c in self.copies if c.is_primary)
        return not primary_ok and self.decoded


@dataclass
class DiversityCombiner:
    """Seeded decode draws + ``diversity_*`` accounting for the report.

    One combiner instance lives for a simulation run; the engine calls
    :meth:`combine` once per executed pass step with the per-copy decode
    probabilities it priced from each station's *true* weather.
    """

    seed: int = 19
    passes: int = 0
    copies_attempted: int = 0
    copies_decoded: int = 0
    combined_decoded: int = 0
    combined_failed: int = 0
    #: Pass steps where the primary failed but a secondary decoded --
    #: the quantity diversity reception exists to maximize.
    rescued_by_diversity: int = 0
    #: station_id -> {"copies": n, "decoded": n, "primary": n}
    _stations: dict[str, dict[str, int]] = field(default_factory=dict)

    def combine(self, satellite_id: str, when: datetime,
                attempts: list[tuple[int, str, bool, float]]) -> CombinedReception:
        """Resolve one pass step's copies.

        ``attempts`` is ``[(station_index, station_id, is_primary,
        decode_probability), ...]``; the primary must be listed (usually
        first).  Draws are keyed per station so adding or removing a
        secondary never perturbs any other station's outcome.
        """
        copies = []
        for station_index, station_id, is_primary, probability in attempts:
            draw = diversity_draw(self.seed, satellite_id, station_id, when)
            decoded = draw < probability
            copies.append(CopyOutcome(
                station_index=station_index,
                station_id=station_id,
                is_primary=is_primary,
                decode_probability=probability,
                decoded=decoded,
            ))
            stats = self._stations.setdefault(
                station_id, {"copies": 0, "decoded": 0, "primary": 0}
            )
            stats["copies"] += 1
            if decoded:
                stats["decoded"] += 1
            if is_primary:
                stats["primary"] += 1

        reception = CombinedReception(
            satellite_id=satellite_id, when=when, copies=tuple(copies)
        )
        self.passes += 1
        self.copies_attempted += len(copies)
        self.copies_decoded += sum(1 for c in copies if c.decoded)
        if reception.decoded:
            self.combined_decoded += 1
            if reception.rescued:
                self.rescued_by_diversity += 1
        else:
            self.combined_failed += 1
        return reception

    def as_dict(self) -> dict:
        """The ``diversity`` block of the report (plain JSON types)."""
        return {
            "passes": self.passes,
            "copies_attempted": self.copies_attempted,
            "copies_decoded": self.copies_decoded,
            "combined_decoded": self.combined_decoded,
            "combined_failed": self.combined_failed,
            "rescued_by_diversity": self.rescued_by_diversity,
            "stations": {
                station_id: dict(stats)
                for station_id, stats in sorted(self._stations.items())
            },
        }
