"""Ground-segment networking: the backend, ack relay, and wire messages.

DGS's receive-only stations cannot acknowledge over the air; instead
(Sec. 3.3) receptions are reported to a backend over the Internet, the
backend collates per-satellite acknowledgements, and the next
transmit-capable contact uploads the collated acks (and a fresh downlink
plan) to the satellite.  This package implements that whole loop plus the
serializable message formats the components exchange.
"""

from repro.network.messages import (
    AckBatchMessage,
    ChunkReceiptMessage,
    MessageError,
    PlanUploadMessage,
    decode_message,
    encode_message,
)
from repro.network.backend import BackendCollator, PendingReceipt
from repro.network.diversity import (
    CombinedReception,
    CopyOutcome,
    DiversityCombiner,
    diversity_draw,
)
from repro.network.backhaul import (
    StationUplink,
    backhaul_reduction_factor,
    decoded_backhaul_mbps,
    raw_iq_backhaul_mbps,
)

__all__ = [
    "StationUplink",
    "raw_iq_backhaul_mbps",
    "decoded_backhaul_mbps",
    "backhaul_reduction_factor",
    "ChunkReceiptMessage",
    "AckBatchMessage",
    "PlanUploadMessage",
    "MessageError",
    "encode_message",
    "decode_message",
    "BackendCollator",
    "PendingReceipt",
    "CopyOutcome",
    "CombinedReception",
    "DiversityCombiner",
    "diversity_draw",
]
