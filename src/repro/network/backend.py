"""The DGS backend: receipt collation and delayed-ack bookkeeping.

The backend is the Internet-side brain of Fig. 1: every station reports
chunk receipts to it (after their backhaul latency), it collates them per
satellite, and when a satellite touches a transmit-capable station the
backend hands over the batch of not-yet-acknowledged chunk ids for upload.

The collator is deliberately ignorant of orbits and scheduling -- it is a
pure data-plane component, which keeps it independently testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime

from repro.network.messages import AckBatchMessage, ChunkReceiptMessage


@dataclass(frozen=True)
class PendingReceipt:
    """A receipt in flight over a station's Internet backhaul."""

    message: ChunkReceiptMessage
    arrives_at: datetime


@dataclass
class BackendCollator:
    """Collates chunk receipts and issues delayed ack batches."""

    #: Receipts still traversing the Internet, ordered by arrival.
    _in_flight: list[PendingReceipt] = field(default_factory=list)
    #: satellite_id -> chunk ids received but not yet uploaded as acks.
    _unacked: dict[str, set[int]] = field(default_factory=dict)
    #: satellite_id -> chunk ids already acked (for idempotence/audit).
    _acked: dict[str, set[int]] = field(default_factory=dict)
    total_receipts: int = 0
    total_bits_received: float = 0.0
    #: Receipts that re-reported a chunk already known (pending or acked),
    #: e.g. a retransmission the satellite sent because its ack went
    #: missing.  These never contribute to the throughput totals.
    duplicate_receipts: int = 0

    def submit_receipt(self, message: ChunkReceiptMessage,
                       backhaul_latency_s: float) -> None:
        """A station posts a receipt; it lands after its backhaul latency."""
        if backhaul_latency_s < 0:
            raise ValueError("backhaul latency cannot be negative")
        from datetime import timedelta

        arrives = message.received_at + timedelta(seconds=backhaul_latency_s)
        self._in_flight.append(PendingReceipt(message, arrives))

    def advance(self, now: datetime) -> int:
        """Land every in-flight receipt that has arrived by ``now``.

        A receipt for a chunk the backend already knows about -- either
        awaiting ack upload or already acked -- is a retransmission
        artifact (the ack-free design re-sends chunks whose acks went
        missing).  It is counted in :attr:`duplicate_receipts` but does
        not bump the throughput totals, so ``total_bits_received`` stays
        the volume of *unique* data received.
        """
        landed = 0
        still_flying = []
        for pending in self._in_flight:
            if pending.arrives_at <= now:
                msg = pending.message
                acked = self._acked.get(msg.satellite_id, set())
                unacked = self._unacked.get(msg.satellite_id, set())
                if msg.chunk_id in acked or msg.chunk_id in unacked:
                    self.duplicate_receipts += 1
                else:
                    self._unacked.setdefault(msg.satellite_id, set()).add(
                        msg.chunk_id
                    )
                    self.total_receipts += 1
                    self.total_bits_received += msg.size_bits
                landed += 1
            else:
                still_flying.append(pending)
        self._in_flight = still_flying
        return landed

    def flush_horizon(self, now: datetime) -> datetime:
        """Earliest instant by which every in-flight receipt has arrived.

        The end-of-run drain advances to this instant -- never a fixed
        offset -- so receipts delayed by arbitrarily large backhaul
        latency spikes still land and the totals stay conserved.  Floored
        at ``now`` so a drain never moves the clock backwards.
        """
        horizon = now
        for pending in self._in_flight:
            if pending.arrives_at > horizon:
                horizon = pending.arrives_at
        return horizon

    def pending_acks(self, satellite_id: str) -> set[int]:
        """Chunk ids awaiting upload to a satellite (read-only view)."""
        return set(self._unacked.get(satellite_id, set()))

    def issue_ack_batch(self, satellite_id: str,
                        now: datetime) -> AckBatchMessage | None:
        """Issue (and mark as uploaded) the ack batch for a tx contact.

        Returns None when there is nothing to acknowledge.  Chunks move to
        the acked set, so a re-contact does not re-send them.
        """
        chunk_ids = self._unacked.pop(satellite_id, set())
        if not chunk_ids:
            return None
        self._acked.setdefault(satellite_id, set()).update(chunk_ids)
        return AckBatchMessage(
            satellite_id=satellite_id,
            chunk_ids=tuple(sorted(chunk_ids)),
            issued_at=now,
        )

    def acked_count(self, satellite_id: str) -> int:
        return len(self._acked.get(satellite_id, set()))

    @property
    def in_flight_count(self) -> int:
        return len(self._in_flight)

    def stats(self) -> dict[str, float]:
        """Aggregate data-plane totals for the observability layer."""
        return {
            "total_receipts": self.total_receipts,
            "total_bits_received": self.total_bits_received,
            "duplicate_receipts": self.duplicate_receipts,
            "in_flight_receipts": self.in_flight_count,
            "unacked_chunks": sum(len(v) for v in self._unacked.values()),
            "acked_chunks": sum(len(v) for v in self._acked.values()),
        }
