"""Run manifests: everything needed to audit bit-reproducibility.

A manifest answers "what exactly produced this output?": a canonical hash
of the simulation configuration, the RNG seeds the scenario was built
from, interpreter/package versions, the git revision of the working tree,
and the platform.  Two runs with equal manifests (ignoring the wall-clock
``created_utc`` and ``git_dirty`` fields) must produce bit-identical
reports -- that is the contract the equivalence tests lean on.
"""

from __future__ import annotations

import hashlib
import json
import platform
import subprocess
import sys
from dataclasses import asdict, is_dataclass
from datetime import datetime, timezone

#: Version tag stamped into every manifest.
MANIFEST_SCHEMA = "repro-manifest/1"


def _jsonable(value):
    """Canonical JSON-compatible form of a config value."""
    if isinstance(value, datetime):
        return value.isoformat()
    if is_dataclass(value) and not isinstance(value, type):
        return {k: _jsonable(v) for k, v in asdict(value).items()}
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def config_digest(config) -> str:
    """SHA-256 of a config's canonical JSON form (dataclass or dict)."""
    canonical = json.dumps(_jsonable(config), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _git_revision() -> tuple[str | None, bool | None]:
    """(revision, dirty) of the current working tree, if it is a repo."""
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5.0,
        )
        if rev.returncode != 0:
            return None, None
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True, text=True, timeout=5.0,
        )
        dirty = bool(status.stdout.strip()) if status.returncode == 0 else None
        return rev.stdout.strip(), dirty
    except (OSError, subprocess.SubprocessError):
        return None, None


def _package_versions() -> dict[str, str]:
    versions = {"python": platform.python_version()}
    try:
        import numpy

        versions["numpy"] = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        pass
    try:
        import repro

        versions["repro"] = repro.__version__
    except (ImportError, AttributeError):  # pragma: no cover
        pass
    return versions


def build_manifest(config=None, seeds: dict | None = None,
                   extra: dict | None = None) -> dict:
    """Assemble the manifest dict for one run.

    ``config`` is typically a :class:`~repro.simulation.config.SimulationConfig`
    (any dataclass or dict works); ``seeds`` maps seed names to values;
    ``extra`` is merged verbatim (scenario label, CLI argv, ...).
    """
    revision, dirty = _git_revision()
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "created_utc": datetime.now(timezone.utc).isoformat(),
        "config": _jsonable(config) if config is not None else {},
        "config_sha256": config_digest(config) if config is not None else None,
        "seeds": dict(seeds or {}),
        "versions": _package_versions(),
        "git_revision": revision,
        "git_dirty": dirty,
        "platform": platform.platform(),
        "argv": list(sys.argv),
    }
    if extra:
        manifest.update(_jsonable(extra))
    return manifest


def write_manifest(path: str, manifest: dict) -> None:
    """Write a manifest as pretty-printed, key-sorted JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
