"""Streaming JSONL event traces and their schema validator.

One trace = one run.  Every line is a JSON object with a ``kind`` field;
the first line is a ``run_start`` record carrying the schema version and
the run manifest, and a well-formed trace ends with exactly one
``run_end`` record carrying stage timings, counters, and totals.  The
schema is versioned (:data:`TRACE_SCHEMA`) so offline tooling can reject
traces it does not understand instead of misreading them.

Validation is deliberately dependency-free (no jsonschema): the schema is
a table of required fields and types per event kind, checked line by
line.  ``repro validate-trace`` and the CI trace job both go through
:func:`validate_trace_file`.
"""

from __future__ import annotations

import json
from datetime import datetime
from typing import IO, Iterable

#: Version tag stamped into every ``run_start`` record.
TRACE_SCHEMA = "repro-trace/1"

#: Required fields (and their JSON types) per event kind.  Extra fields
#: are always allowed -- the schema is a floor, not a ceiling.
EVENT_SCHEMA: dict[str, dict[str, type | tuple[type, ...]]] = {
    "run_start": {"schema": str, "manifest": dict},
    "step": {"step": int, "when": str, "matched": int},
    "assignment": {
        "when": str,
        "satellite_id": str,
        "station_id": str,
        "bitrate_bps": (int, float),
        "decoded": bool,
    },
    "delivery": {
        "when": str,
        "satellite_id": str,
        "station_id": str,
        "chunk_id": int,
        "latency_s": (int, float),
    },
    "fault": {"when": str, "fault": str},
    "cache": {"name": str, "hits": int, "misses": int},
    "run_end": {
        "stage_timings": dict,
        "counters": dict,
        "gauges": dict,
        "fault_counters": dict,
    },
}


class TraceValidationError(ValueError):
    """A trace file violated the schema; ``errors`` lists every finding."""

    def __init__(self, errors: list[str]):
        self.errors = errors
        summary = errors[0] if errors else "invalid trace"
        if len(errors) > 1:
            summary += f" (+{len(errors) - 1} more)"
        super().__init__(summary)


class TraceWriter:
    """Append-only JSONL sink for one run's events.

    Lines are written as events arrive (streaming -- a killed run leaves
    a readable prefix), keys sorted for diff-stable output.
    """

    def __init__(self, path_or_handle: str | IO[str]):
        if hasattr(path_or_handle, "write"):
            self._fh: IO[str] = path_or_handle  # type: ignore[assignment]
            self._owns = False
        else:
            self._fh = open(path_or_handle, "w", encoding="utf-8")
            self._owns = True
        self._closed = False
        self.lines_written = 0

    def write_event(self, kind: str, **fields) -> None:
        if self._closed:
            return
        record = {"kind": kind, **fields}
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self.lines_written += 1

    def flush(self) -> None:
        if not self._closed:
            self._fh.flush()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._fh.flush()
        if self._owns:
            self._fh.close()


# -- validation --------------------------------------------------------------


def _check_fields(record: dict, lineno: int, errors: list[str]) -> None:
    kind = record.get("kind")
    spec = EVENT_SCHEMA.get(kind)  # type: ignore[arg-type]
    if spec is None:
        errors.append(f"line {lineno}: unknown event kind {kind!r}")
        return
    for name, expected in spec.items():
        if name not in record:
            errors.append(
                f"line {lineno}: {kind} event missing field {name!r}"
            )
            continue
        value = record[name]
        # bool is an int subclass; an int-typed field must not be a bool.
        if expected is int and isinstance(value, bool):
            errors.append(
                f"line {lineno}: {kind}.{name} must be int, got bool"
            )
        elif not isinstance(value, expected):
            type_name = getattr(expected, "__name__", str(expected))
            errors.append(
                f"line {lineno}: {kind}.{name} must be {type_name}, "
                f"got {type(value).__name__}"
            )
    when = record.get("when")
    if isinstance(when, str):
        try:
            datetime.fromisoformat(when)
        except ValueError:
            errors.append(
                f"line {lineno}: 'when' is not an ISO-8601 timestamp: "
                f"{when!r}"
            )


def validate_trace_lines(lines: Iterable[str]) -> list[str]:
    """All schema violations in an iterable of JSONL lines (empty = valid)."""
    errors: list[str] = []
    first_kind: str | None = None
    run_end_count = 0
    last_kind: str | None = None
    count = 0
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        count += 1
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"line {lineno}: invalid JSON ({exc.msg})")
            continue
        if not isinstance(record, dict):
            errors.append(f"line {lineno}: event must be a JSON object")
            continue
        _check_fields(record, lineno, errors)
        kind = record.get("kind")
        if first_kind is None:
            first_kind = kind
            if kind == "run_start" and record.get("schema") != TRACE_SCHEMA:
                errors.append(
                    f"line {lineno}: unsupported schema "
                    f"{record.get('schema')!r} (expected {TRACE_SCHEMA!r})"
                )
        if kind == "run_end":
            run_end_count += 1
        last_kind = kind
    if count == 0:
        errors.append("trace is empty")
        return errors
    if first_kind != "run_start":
        errors.append(
            f"first event must be run_start, got {first_kind!r}"
        )
    if run_end_count != 1:
        errors.append(
            f"trace must contain exactly one run_end event, "
            f"found {run_end_count}"
        )
    elif last_kind != "run_end":
        errors.append("run_end must be the last event")
    return errors


def validate_trace_file(path: str) -> int:
    """Validate a trace file; returns the event count or raises.

    Raises :class:`TraceValidationError` listing every violation, or
    :class:`OSError` when the file cannot be read.
    """
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    errors = validate_trace_lines(lines)
    if errors:
        raise TraceValidationError(errors)
    return sum(1 for line in lines if line.strip())
