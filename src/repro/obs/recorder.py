"""Span timers, counters, and gauges -- the recorder every stage talks to.

Two implementations share one duck-typed surface:

* :class:`NullRecorder` (the default, via :data:`NULL_RECORDER`): every
  method is a no-op and ``span()`` returns a shared inert context
  manager.  The engine's instrumentation therefore costs a few hundred
  nanoseconds per *step* when observability is off -- unmeasurable next
  to the step's real work -- and touches no simulation state, so output
  stays bit-identical.
* :class:`Recorder`: maintains a span stack, accumulates wall time per
  span *path* (``run/schedule/graph_build``), counts and gauges, streams
  events to a :class:`~repro.obs.trace.TraceWriter`, and can wrap named
  spans in :mod:`cProfile`.

Span paths are slash-joined stacks, so ``stage_timings()`` is
hierarchy-aware without separate bookkeeping: the children of ``run`` are
exactly the keys matching ``run/<stage>`` with no further slash.
"""

from __future__ import annotations

import cProfile
import os
import time

from repro.obs.config import ObsConfig
from repro.obs.trace import TRACE_SCHEMA, TraceWriter


class _NullSpan:
    """Inert context manager returned by the null recorder."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The do-nothing recorder: same surface, zero effect."""

    enabled = False

    def span(self, name: str, **attrs):
        return _NULL_SPAN

    def add_time(self, path: str, seconds: float) -> None:
        pass

    def counter(self, name: str, n: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def event(self, kind: str, **fields) -> None:
        pass

    def stage_timings(self) -> dict[str, float]:
        return {}

    def counters_snapshot(self) -> dict[str, float]:
        return {}

    def gauges_snapshot(self) -> dict[str, float]:
        return {}

    def start_run(self, manifest: dict) -> None:
        pass

    def finish_run(self, **summary) -> None:
        pass

    def close(self) -> None:
        pass


#: Shared singleton; everything uninstrumented points here.
NULL_RECORDER = NullRecorder()


class _Span:
    """One live span: pushes itself on the stack, times its body."""

    __slots__ = ("_rec", "_name", "_path", "_t0", "_profile")

    def __init__(self, rec: "Recorder", name: str):
        self._rec = rec
        self._name = name
        self._path = ""
        self._t0 = 0.0
        self._profile: cProfile.Profile | None = None

    def __enter__(self):
        rec = self._rec
        rec._stack.append(self._name)
        self._path = "/".join(rec._stack)
        if self._name in rec._profile_spans and rec._active_profile is None:
            # One Profile per span name, re-enabled on each occurrence so
            # repeated spans (per-step stages) accumulate into one dump.
            self._profile = rec._profiles.setdefault(
                self._name, cProfile.Profile()
            )
            rec._active_profile = self._profile
            self._profile.enable()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        elapsed = time.perf_counter() - self._t0
        rec = self._rec
        if self._profile is not None:
            self._profile.disable()
            rec._active_profile = None
        rec._stack.pop()
        rec._totals[self._path] = rec._totals.get(self._path, 0.0) + elapsed
        rec._span_calls[self._path] = rec._span_calls.get(self._path, 0) + 1
        return False


class Recorder:
    """The live recorder behind an enabled :class:`ObsConfig`."""

    enabled = True

    def __init__(self, config: ObsConfig | None = None):
        self.config = config or ObsConfig()
        self._stack: list[str] = []
        self._totals: dict[str, float] = {}
        self._span_calls: dict[str, int] = {}
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._profile_spans = frozenset(self.config.profile_spans)
        self._profiles: dict[str, cProfile.Profile] = {}
        self._active_profile: cProfile.Profile | None = None
        self._trace: TraceWriter | None = None
        if self.config.trace_path is not None:
            self._trace = TraceWriter(self.config.trace_path)
        self.manifest: dict | None = None
        self._finished = False

    # -- spans and metrics -------------------------------------------------

    def span(self, name: str, **attrs) -> _Span:
        """Context manager timing one stage; nest freely."""
        return _Span(self, name)

    def add_time(self, path: str, seconds: float) -> None:
        """Manually account time under a fixed path (no stack push)."""
        self._totals[path] = self._totals.get(path, 0.0) + seconds
        self._span_calls[path] = self._span_calls.get(path, 0) + 1

    def counter(self, name: str, n: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    # -- snapshots ---------------------------------------------------------

    def stage_timings(self) -> dict[str, float]:
        """Accumulated seconds per span path (``run/schedule/matching``)."""
        return dict(self._totals)

    def span_calls(self) -> dict[str, int]:
        return dict(self._span_calls)

    def counters_snapshot(self) -> dict[str, float]:
        return dict(self._counters)

    def gauges_snapshot(self) -> dict[str, float]:
        return dict(self._gauges)

    # -- trace -------------------------------------------------------------

    def event(self, kind: str, **fields) -> None:
        """Append one event to the trace (no-op when tracing is off)."""
        if self._trace is not None:
            self._trace.write_event(kind, **fields)

    def start_run(self, manifest: dict) -> None:
        """Record the manifest and open the trace with a run_start event."""
        self.manifest = manifest
        if self.config.manifest_path is not None:
            from repro.obs.manifest import write_manifest

            write_manifest(self.config.manifest_path, manifest)
        if self._trace is not None:
            self._trace.write_event(
                "run_start", schema=TRACE_SCHEMA, manifest=manifest
            )
            self._trace.flush()

    def finish_run(self, fault_counters: dict | None = None,
                   **summary) -> None:
        """Emit the run_end record and close the trace (idempotent)."""
        if self._finished:
            return
        self._finished = True
        for name, profile in self._profiles.items():
            self._dump_profile(name, profile)
        if self._trace is not None:
            self._trace.write_event(
                "run_end",
                stage_timings=self.stage_timings(),
                counters=self.counters_snapshot(),
                gauges=self.gauges_snapshot(),
                fault_counters=dict(fault_counters or {}),
                **summary,
            )
        self.close()

    def close(self) -> None:
        if self._trace is not None:
            self._trace.close()

    # -- profiling ---------------------------------------------------------

    def _dump_profile(self, span_name: str, profile: cProfile.Profile) -> None:
        directory = self.config.profile_dir or "."
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{span_name.replace('/', '_')}.prof")
        profile.dump_stats(path)


def make_recorder(config: ObsConfig | None) -> Recorder | NullRecorder:
    """The recorder for a config: live when enabled, the shared null
    recorder when ``config`` is None or disabled."""
    if config is None or not config.enabled:
        return NULL_RECORDER
    return Recorder(config)
