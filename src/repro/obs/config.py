"""Observability configuration.

``ObsConfig`` is the single opt-in switch: pass one to the unified entry
points (``ScenarioSpec.build(observability=...)``,
``Simulation(observability=...)``, ``DGSNetwork.simulate(observability=...)``,
or ``repro simulate --trace``) and the run records span timings, counters,
an optional JSONL trace, an optional run manifest, and optional cProfile
captures.  Without one, the engine uses the no-op recorder.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ObsConfig:
    """All knobs of the observability layer for one run.

    A constructed ``ObsConfig`` is enabled unless ``enabled=False`` --
    the *absence* of a config (``observability=None``) is what selects
    the no-op recorder.
    """

    #: Master switch; ``False`` behaves exactly like passing no config.
    enabled: bool = True
    #: Stream a schema-versioned JSONL event trace to this path.
    trace_path: str | None = None
    #: Write the run manifest (config hash, seeds, versions, git revision)
    #: to this path.  The manifest is embedded in the trace either way.
    manifest_path: str | None = None
    #: Span names to wrap in :mod:`cProfile`; stats land in
    #: ``profile_dir/<span>.prof``.  Only the outermost matching span
    #: profiles (cProfile cannot nest).
    profile_spans: tuple[str, ...] = ()
    #: Directory for the ``.prof`` dumps (default: current directory).
    profile_dir: str | None = None
    #: RNG seeds the scenario was built from, recorded in the manifest.
    #: ``ScenarioSpec.build`` fills this automatically.
    seeds: dict = field(default_factory=dict)
    #: Free-form extras merged into the manifest (scenario label, CLI
    #: argv, experiment id, ...).
    manifest_extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.profile_spans and not isinstance(self.profile_spans, tuple):
            object.__setattr__(self, "profile_spans",
                               tuple(self.profile_spans))
