"""Structured observability: spans, counters, traces, run manifests.

The engine is instrumented with *stages* -- hierarchical span timers
around ephemeris build, weather sampling, contact-graph construction,
matching, execution, plan upload, and ack collation -- plus counters and
gauges (cache hits, edge counts, backend totals).  Three sinks consume
them:

* :class:`Recorder` aggregates span totals into
  ``SimulationReport.stage_timings`` and streams a schema-versioned JSONL
  event trace (step boundaries, assignments, decode outcomes, fault
  events) when :attr:`ObsConfig.trace_path` is set.
* :mod:`repro.obs.manifest` captures a run manifest -- config hash, RNG
  seeds, package versions, git revision -- for bit-reproducibility audits.
* A :mod:`cProfile` hook can wrap any named span
  (:attr:`ObsConfig.profile_spans`).

The default is :data:`NULL_RECORDER`, a no-op with near-zero overhead:
simulations without an ``observability=`` argument behave (and output)
bit-identically to an uninstrumented build.
"""

from repro.obs.config import ObsConfig
from repro.obs.manifest import build_manifest, config_digest, write_manifest
from repro.obs.recorder import NULL_RECORDER, NullRecorder, Recorder, make_recorder
from repro.obs.trace import (
    TRACE_SCHEMA,
    TraceValidationError,
    TraceWriter,
    validate_trace_file,
    validate_trace_lines,
)

__all__ = [
    "ObsConfig",
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "make_recorder",
    "TraceWriter",
    "TRACE_SCHEMA",
    "TraceValidationError",
    "validate_trace_file",
    "validate_trace_lines",
    "build_manifest",
    "config_digest",
    "write_manifest",
]
