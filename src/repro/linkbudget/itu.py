"""ITU-R atmospheric attenuation models (P.838, P.839, P.840, P.676-lite).

The paper (Sec. 3.2) predicts the weather-dependent loss component with the
ITU recommendations [19-21]:

* **P.838-3** -- rain *specific* attenuation gamma_R = k * R^alpha, with the
  published frequency regressions for the k and alpha coefficients in both
  horizontal and vertical polarization (valid 1-1000 GHz).
* **P.839** -- rain height above mean sea level.  The map-based P.839-4
  needs a digital data file that cannot ship here; we implement the
  latitude-based model of P.839-2, which the map revision superseded but
  which matches it to a few hundred metres at the station latitudes used.
* **P.840** -- cloud/fog attenuation from columnar liquid water via the
  Rayleigh approximation with a double-Debye water permittivity.
* A small table-driven approximation of **P.676** zenith gaseous
  attenuation (the paper does not call P.676 out, but every real X-band
  budget carries the ~0.1 dB term, and it matters at Ka band ablations).

All functions are pure and deterministic so they can be property-tested.
"""

from __future__ import annotations

import math

import numpy as np

# --------------------------------------------------------------------------
# ITU-R P.838-3: specific attenuation coefficients k and alpha.
#
# log10 k  = sum_j a_j * exp(-((log10 f - b_j)/c_j)^2) + m_k*log10 f + c_k
# alpha    = sum_j a_j * exp(-((log10 f - b_j)/c_j)^2) + m_a*log10 f + c_a
# --------------------------------------------------------------------------

_KH = {
    "a": (-5.33980, -0.35351, -0.23789, -0.94158),
    "b": (-0.10008, 1.26970, 0.86036, 0.64552),
    "c": (1.13098, 0.45400, 0.15354, 0.16817),
    "m": -0.18961,
    "offset": 0.71147,
}
_KV = {
    "a": (-3.80595, -3.44965, -0.39902, 0.50167),
    "b": (0.56934, -0.22911, 0.73042, 1.07319),
    "c": (0.81061, 0.51059, 0.11899, 0.27195),
    "m": -0.16398,
    "offset": 0.63297,
}
_ALPHA_H = {
    "a": (-0.14318, 0.29591, 0.32177, -5.37610, 16.1721),
    "b": (1.82442, 0.77564, 0.63773, -0.96230, -3.29980),
    "c": (-0.55187, 0.19822, 0.13164, 1.47828, 3.43990),
    "m": 0.67849,
    "offset": -1.95537,
}
_ALPHA_V = {
    "a": (-0.07771, 0.56727, -0.20238, -48.2991, 48.5833),
    "b": (2.33840, 0.95545, 1.14520, 0.791669, 0.791459),
    "c": (-0.76284, 0.54039, 0.26809, 0.116226, 0.116479),
    "m": -0.053739,
    "offset": 0.83433,
}


def _regression(coeffs: dict, frequency_ghz: float) -> float:
    log_f = math.log10(frequency_ghz)
    total = coeffs["m"] * log_f + coeffs["offset"]
    for a, b, c in zip(coeffs["a"], coeffs["b"], coeffs["c"]):
        total += a * math.exp(-(((log_f - b) / c) ** 2))
    return total


#: (frequency, polarization) -> (k, alpha) memo: the regression is pure
#: and a simulation uses a handful of carrier frequencies, yet the batch
#: rain kernel asks every step.
_RAIN_COEFF_CACHE: dict[tuple[float, str], tuple[float, float]] = {}


def rain_coefficients(frequency_ghz: float,
                      polarization: str = "circular") -> tuple[float, float]:
    """P.838-3 (k, alpha) for a frequency and polarization.

    ``polarization`` is ``"h"``, ``"v"``, or ``"circular"`` (the equal-power
    combination used when the link tilt is unknown; exact for a 45 deg tilt
    at zero elevation and an excellent approximation for LEO downlinks).
    """
    cache_key = (frequency_ghz, polarization)
    cached = _RAIN_COEFF_CACHE.get(cache_key)
    if cached is not None:
        return cached
    if not 1.0 <= frequency_ghz <= 1000.0:
        raise ValueError(
            f"P.838 is defined for 1-1000 GHz, got {frequency_ghz} GHz"
        )
    k_h = 10.0 ** _regression(_KH, frequency_ghz)
    k_v = 10.0 ** _regression(_KV, frequency_ghz)
    a_h = _regression(_ALPHA_H, frequency_ghz)
    a_v = _regression(_ALPHA_V, frequency_ghz)
    pol = polarization.lower()
    if pol in {"h", "horizontal"}:
        result = (k_h, a_h)
    elif pol in {"v", "vertical"}:
        result = (k_v, a_v)
    elif pol in {"c", "circular"}:
        k = (k_h + k_v) / 2.0
        alpha = (k_h * a_h + k_v * a_v) / (2.0 * k)
        result = (k, alpha)
    else:
        raise ValueError(f"unknown polarization {polarization!r}")
    _RAIN_COEFF_CACHE[cache_key] = result
    return result


def rain_specific_attenuation_db_km(
    rain_rate_mm_h: float,
    frequency_ghz: float,
    polarization: str = "circular",
) -> float:
    """gamma_R = k * R^alpha (dB/km) for an instantaneous rain rate."""
    if rain_rate_mm_h < 0.0:
        raise ValueError(f"rain rate cannot be negative: {rain_rate_mm_h}")
    if rain_rate_mm_h == 0.0:
        return 0.0
    k, alpha = rain_coefficients(frequency_ghz, polarization)
    return k * rain_rate_mm_h**alpha


# --------------------------------------------------------------------------
# ITU-R P.839 (latitude model): rain height.
# --------------------------------------------------------------------------

def rain_height_km(latitude_deg: float) -> float:
    """Mean rain height above sea level (km) from station latitude.

    Latitude-based model (P.839-2); symmetric breakpoints per hemisphere.
    """
    lat = latitude_deg
    if lat >= 0.0:  # northern hemisphere
        if lat <= 23.0:
            return 5.0
        return max(0.0, 5.0 - 0.075 * (lat - 23.0))
    # southern hemisphere
    lat = abs(lat)
    if lat <= 21.0:
        return 5.0
    if lat <= 71.0:
        return max(0.0, 5.0 - 0.1 * (lat - 21.0))
    return 0.0


# --------------------------------------------------------------------------
# Slant-path rain attenuation (instantaneous, P.618-style geometry).
# --------------------------------------------------------------------------

def slant_path_length_km(
    elevation_deg: float,
    rain_height_above_station_km: float,
) -> float:
    """Length of the signal path below the rain height.

    Simple csc(el) geometry with a floor at 5 deg elevation to avoid the
    grazing-path blowup (P.618 switches to a spherical-Earth formula below
    5 deg; the clamp is within its envelope for LEO work where the
    scheduler rarely commits to <5 deg links anyway).
    """
    if rain_height_above_station_km <= 0.0:
        return 0.0
    el = max(elevation_deg, 5.0)
    return rain_height_above_station_km / math.sin(math.radians(el))


def _horizontal_reduction_factor(slant_km: float, elevation_deg: float,
                                 gamma_db_km: float, frequency_ghz: float) -> float:
    """P.618 horizontal reduction factor r_0.01 applied to instantaneous rain.

    Accounts for rain cells not filling the whole slant path; without it,
    long low-elevation paths through heavy rain are absurdly pessimistic.
    """
    lg = slant_km * math.cos(math.radians(max(elevation_deg, 5.0)))
    if lg <= 0.0 or gamma_db_km <= 0.0:
        return 1.0
    r = 1.0 / (
        1.0
        + 0.78 * math.sqrt(lg * gamma_db_km / frequency_ghz)
        - 0.38 * (1.0 - math.exp(-2.0 * lg))
    )
    return min(max(r, 0.05), 2.5)


def rain_attenuation_db(
    rain_rate_mm_h: float,
    frequency_ghz: float,
    elevation_deg: float,
    station_latitude_deg: float,
    station_altitude_km: float = 0.0,
    polarization: str = "circular",
) -> float:
    """Total slant-path rain attenuation (dB) for an instantaneous rain rate.

    gamma_R from P.838 times an effective path length: the below-rain-height
    slant distance (P.839 height) scaled by the P.618 horizontal reduction
    factor.  Zero rain gives exactly zero.
    """
    if rain_rate_mm_h <= 0.0:
        return 0.0
    gamma = rain_specific_attenuation_db_km(
        rain_rate_mm_h, frequency_ghz, polarization
    )
    height = max(0.0, rain_height_km(station_latitude_deg) - station_altitude_km)
    slant = slant_path_length_km(elevation_deg, height)
    reduction = _horizontal_reduction_factor(
        slant, elevation_deg, gamma, frequency_ghz
    )
    return gamma * slant * reduction


def rain_height_km_batch(latitude_deg: np.ndarray) -> np.ndarray:
    """Vectorized :func:`rain_height_km` over an array of latitudes."""
    lat = np.asarray(latitude_deg, dtype=float)
    north = np.where(
        lat <= 23.0, 5.0, np.maximum(0.0, 5.0 - 0.075 * (lat - 23.0))
    )
    alat = np.abs(lat)
    south = np.where(
        alat <= 21.0,
        5.0,
        np.where(
            alat <= 71.0, np.maximum(0.0, 5.0 - 0.1 * (alat - 21.0)), 0.0
        ),
    )
    return np.where(lat >= 0.0, north, south)


def rain_attenuation_db_batch(
    rain_rate_mm_h: np.ndarray,
    frequency_ghz: float,
    elevation_deg: np.ndarray,
    station_latitude_deg: np.ndarray,
    station_altitude_km: np.ndarray | float = 0.0,
    polarization: str = "circular",
) -> np.ndarray:
    """Vectorized :func:`rain_attenuation_db` over per-pair arrays.

    Frequency and polarization are scalar (one radio per batch); rain
    rate, elevation, latitude, and altitude broadcast together.  Matches
    the scalar path to float rounding (np vs libm transcendentals).
    """
    rain = np.asarray(rain_rate_mm_h, dtype=float)
    if (rain < 0.0).any():
        raise ValueError("rain rate cannot be negative")
    elevation = np.asarray(elevation_deg, dtype=float)
    rain, elevation, lat, alt = np.broadcast_arrays(
        rain, elevation,
        np.asarray(station_latitude_deg, dtype=float),
        np.asarray(station_altitude_km, dtype=float),
    )
    # Dry pairs attenuate exactly 0 dB, so the model only ever runs on
    # the wet subset -- elementwise ops on a gathered subset produce the
    # same per-element bits as on the full arrays, and rain is commonly
    # sparse (isolated rain cells) or absent (clear-sky scenarios).
    wet = np.flatnonzero(rain > 0.0)
    out = np.zeros(rain.shape)
    if wet.size == 0:
        return out
    if wet.size < rain.size:
        out.ravel()[wet] = rain_attenuation_db_batch(
            rain.ravel()[wet], frequency_ghz, elevation.ravel()[wet],
            lat.ravel()[wet], alt.ravel()[wet], polarization,
        )
        return out
    k, alpha = rain_coefficients(frequency_ghz, polarization)
    with np.errstate(divide="ignore"):
        gamma = np.where(rain > 0.0, k * rain**alpha, 0.0)
    height = np.maximum(0.0, rain_height_km_batch(lat) - alt)
    el = np.maximum(elevation, 5.0)
    sin_el = np.sin(np.radians(el))
    slant = np.where(height > 0.0, height / sin_el, 0.0)
    # P.618 horizontal reduction factor, as in the scalar helper.
    lg = slant * np.cos(np.radians(el))
    with np.errstate(invalid="ignore", divide="ignore"):
        r = 1.0 / (
            1.0
            + 0.78 * np.sqrt(lg * gamma / frequency_ghz)
            - 0.38 * (1.0 - np.exp(-2.0 * lg))
        )
    reduction = np.where(
        (lg <= 0.0) | (gamma <= 0.0), 1.0, np.clip(r, 0.05, 2.5)
    )
    return np.where(rain > 0.0, gamma * slant * reduction, 0.0)


def rain_attenuation_db_batch_pregeom(
    rain_rate_mm_h: np.ndarray,
    frequency_ghz: float,
    slant: np.ndarray,
    lg: np.ndarray,
    b_term: np.ndarray,
    polarization: str = "circular",
) -> np.ndarray:
    """:func:`rain_attenuation_db_batch` with its geometry pre-evaluated.

    ``slant``, ``lg``, and ``b_term`` must be the slant path, horizontal
    projection, and ``0.38 * (1 - exp(-2 * lg))`` reduction term the full
    model would derive from elevation/latitude/altitude for the same
    rows (``LinkBudget.precompute_statics`` produces exactly these).
    Only the rain-rate-dependent terms -- specific attenuation and the
    P.618 reduction factor -- are evaluated here, on the wet subset,
    with the same expressions and operand order as the full model, so
    results are bit-identical.
    """
    rain = np.asarray(rain_rate_mm_h, dtype=float)
    if (rain < 0.0).any():
        raise ValueError("rain rate cannot be negative")
    slant = np.asarray(slant, dtype=float)
    lg = np.asarray(lg, dtype=float)
    b_term = np.asarray(b_term, dtype=float)
    if not (rain.shape == slant.shape == lg.shape == b_term.shape):
        rain, slant, lg, b_term = np.broadcast_arrays(
            rain, slant, lg, b_term
        )
    wet = np.flatnonzero(rain > 0.0)
    out = np.zeros(rain.shape)
    if wet.size == 0:
        return out
    # Gathered-subset elementwise ops produce the same per-element bits
    # as full-array ops, matching the full model's wet-subset recursion.
    rain_w = rain.ravel()[wet]
    slant_w = slant.ravel()[wet]
    lg_w = lg.ravel()[wet]
    b_w = b_term.ravel()[wet]
    k, alpha = rain_coefficients(frequency_ghz, polarization)
    # Every wet row has rain > 0, so the full model's zero-rain guards
    # select the computed branch for every element here; gamma > 0 and
    # lg >= 0 also bound the reduction denominator away from zero, so no
    # errstate suppression is needed (identical arithmetic either way).
    gamma = k * rain_w**alpha
    r = 1.0 / (
        1.0
        + 0.78 * np.sqrt(lg_w * gamma / frequency_ghz)
        - b_w
    )
    reduction = np.where(lg_w <= 0.0, 1.0, np.clip(r, 0.05, 2.5))
    out.ravel()[wet] = gamma * slant_w * reduction
    return out


def rain_attenuation_exceeded_db(
    rain_rate_001_mm_h: float,
    frequency_ghz: float,
    elevation_deg: float,
    station_latitude_deg: float,
    exceedance_percent: float = 0.01,
    station_altitude_km: float = 0.0,
    polarization: str = "circular",
) -> float:
    """P.618-style rain attenuation exceeded for a % of an average year.

    ``rain_rate_001_mm_h`` is the local rain rate exceeded 0.01% of the
    time (the standard climatic input, ~20-40 mm/h temperate, ~60-120
    tropical).  The 0.01% attenuation comes from the instantaneous model
    at that rate; other exceedance percentages use the P.618-13 scaling
    law.  Used for availability analysis: what fade margin buys 99.9% /
    99.99% link availability in each band.
    """
    if rain_rate_001_mm_h < 0.0:
        raise ValueError("rain rate cannot be negative")
    if not 0.001 <= exceedance_percent <= 5.0:
        raise ValueError("exceedance must be in [0.001, 5] percent")
    a001 = rain_attenuation_db(
        rain_rate_001_mm_h, frequency_ghz, elevation_deg,
        station_latitude_deg, station_altitude_km, polarization,
    )
    if a001 <= 0.0:
        return 0.0
    p = exceedance_percent
    beta = 0.0
    if p < 1.0 and abs(station_latitude_deg) < 36.0:
        beta = -0.005 * (abs(station_latitude_deg) - 36.0)
    exponent = -(
        0.655
        + 0.033 * math.log(p)
        - 0.045 * math.log(a001)
        - beta * (1.0 - p) * math.sin(math.radians(max(elevation_deg, 5.0)))
    )
    return a001 * (p / 0.01) ** exponent


def link_availability_percent(
    fade_margin_db: float,
    rain_rate_001_mm_h: float,
    frequency_ghz: float,
    elevation_deg: float,
    station_latitude_deg: float,
) -> float:
    """Yearly availability (%) a fade margin buys against rain.

    Inverts :func:`rain_attenuation_exceeded_db` by bisection on the
    exceedance percentage: the returned availability is 100 - p where p is
    the fraction of time the rain fade exceeds the margin.
    """
    if fade_margin_db < 0.0:
        raise ValueError("fade margin cannot be negative")
    # If even the 5%-exceeded attenuation beats the margin, availability
    # is below 95%; report the floor.
    def fade(p):
        return rain_attenuation_exceeded_db(
            rain_rate_001_mm_h, frequency_ghz, elevation_deg,
            station_latitude_deg, exceedance_percent=p,
        )

    if fade(5.0) > fade_margin_db:
        return 95.0
    if fade(0.001) <= fade_margin_db:
        return 99.999
    lo, hi = 0.001, 5.0  # fade(lo) > margin >= fade(hi)
    for _ in range(60):
        mid = math.sqrt(lo * hi)  # bisect in log space
        if fade(mid) > fade_margin_db:
            lo = mid
        else:
            hi = mid
    return 100.0 - hi


# --------------------------------------------------------------------------
# ITU-R P.840: cloud attenuation from columnar liquid water.
# --------------------------------------------------------------------------

def _water_permittivity(frequency_ghz: float, temperature_k: float) -> tuple[float, float]:
    """Double-Debye complex permittivity of liquid water: (eps', eps'')."""
    theta = 300.0 / temperature_k
    eps0 = 77.66 + 103.3 * (theta - 1.0)
    eps1 = 0.0671 * eps0
    eps2 = 3.52
    fp = 20.20 - 146.0 * (theta - 1.0) + 316.0 * (theta - 1.0) ** 2
    fs = 39.8 * fp
    f = frequency_ghz
    eps_real = (
        (eps0 - eps1) / (1.0 + (f / fp) ** 2)
        + (eps1 - eps2) / (1.0 + (f / fs) ** 2)
        + eps2
    )
    eps_imag = (
        f * (eps0 - eps1) / (fp * (1.0 + (f / fp) ** 2))
        + f * (eps1 - eps2) / (fs * (1.0 + (f / fs) ** 2))
    )
    return eps_real, eps_imag


def cloud_specific_coefficient(frequency_ghz: float,
                               temperature_k: float = 273.15) -> float:
    """P.840 cloud attenuation coefficient K_l, dB/km per g/m^3."""
    eps_real, eps_imag = _water_permittivity(frequency_ghz, temperature_k)
    eta = (2.0 + eps_real) / eps_imag
    return 0.819 * frequency_ghz / (eps_imag * (1.0 + eta * eta))


def cloud_attenuation_db(
    columnar_liquid_water_kg_m2: float,
    frequency_ghz: float,
    elevation_deg: float,
    temperature_k: float = 273.15,
) -> float:
    """Cloud/fog slant attenuation A = L * K_l / sin(el) (dB).

    ``columnar_liquid_water_kg_m2`` is the total cloud liquid water along a
    zenith column (typical stratus ~0.1-0.5, heavy convective >1).
    """
    if columnar_liquid_water_kg_m2 < 0.0:
        raise ValueError("columnar liquid water cannot be negative")
    if columnar_liquid_water_kg_m2 == 0.0:
        return 0.0
    el = max(elevation_deg, 5.0)
    kl = cloud_specific_coefficient(frequency_ghz, temperature_k)
    return columnar_liquid_water_kg_m2 * kl / math.sin(math.radians(el))


def cloud_attenuation_db_batch(
    columnar_liquid_water_kg_m2: np.ndarray,
    frequency_ghz: float,
    elevation_deg: np.ndarray,
    temperature_k: float = 273.15,
) -> np.ndarray:
    """Vectorized :func:`cloud_attenuation_db` over per-pair arrays."""
    clw = np.asarray(columnar_liquid_water_kg_m2, dtype=float)
    if (clw < 0.0).any():
        raise ValueError("columnar liquid water cannot be negative")
    elevation = np.asarray(elevation_deg, dtype=float)
    clw, elevation = np.broadcast_arrays(clw, elevation)
    # As with rain: dry pairs are exactly 0 dB, so evaluate the wet
    # subset only (bit-identical per element).
    wet = np.flatnonzero(clw > 0.0)
    out = np.zeros(clw.shape)
    if wet.size == 0:
        return out
    el = np.maximum(elevation.ravel()[wet], 5.0)
    kl = cloud_specific_coefficient(frequency_ghz, temperature_k)
    out.ravel()[wet] = clw.ravel()[wet] * kl / np.sin(np.radians(el))
    return out


def cloud_attenuation_db_batch_presin(
    columnar_liquid_water_kg_m2: np.ndarray,
    frequency_ghz: float,
    sin_elevation: np.ndarray,
    temperature_k: float = 273.15,
) -> np.ndarray:
    """:func:`cloud_attenuation_db_batch` with the elevation sine hoisted.

    ``sin_elevation`` must equal ``np.sin(np.radians(np.maximum(el, 5.0)))``
    element-wise for the same elevations the plain batch call would see;
    the output is then bit-identical (the remaining multiply/divide run in
    the same order on the same operands).  Callers that evaluate the same
    geometry every step -- the contact-window index -- compute the sine
    once at build time instead of once per step.
    """
    clw = np.asarray(columnar_liquid_water_kg_m2, dtype=float)
    if (clw < 0.0).any():
        raise ValueError("columnar liquid water cannot be negative")
    sin_el = np.asarray(sin_elevation, dtype=float)
    if clw.shape != sin_el.shape:
        clw, sin_el = np.broadcast_arrays(clw, sin_el)
    wet = np.flatnonzero(clw > 0.0)
    out = np.zeros(clw.shape)
    if wet.size == 0:
        return out
    kl = cloud_specific_coefficient(frequency_ghz, temperature_k)
    out.ravel()[wet] = clw.ravel()[wet] * kl / sin_el.ravel()[wet]
    return out


# --------------------------------------------------------------------------
# Gaseous attenuation (coarse P.676 stand-in).
# --------------------------------------------------------------------------

#: (frequency GHz, zenith attenuation dB) knots for a standard atmosphere
#: with 7.5 g/m^3 surface water vapour.  Captures the 22.3 GHz water line
#: and the rise toward the 60 GHz oxygen complex.
_GAS_ZENITH_TABLE = (
    (1.0, 0.035),
    (2.0, 0.038),
    (4.0, 0.042),
    (8.0, 0.050),
    (10.0, 0.055),
    (12.0, 0.065),
    (15.0, 0.095),
    (20.0, 0.30),
    (22.3, 0.44),
    (25.0, 0.30),
    (30.0, 0.24),
    (35.0, 0.28),
    (40.0, 0.37),
    (50.0, 1.20),
)


def _gas_zenith_db(frequency_ghz: float) -> float:
    """Zenith gaseous attenuation at a frequency, log-log interpolated."""
    table = _GAS_ZENITH_TABLE
    f = min(max(frequency_ghz, table[0][0]), table[-1][0])
    zenith = table[-1][1]
    for (f0, a0), (f1, a1) in zip(table, table[1:]):
        if f0 <= f <= f1:
            if f1 == f0:
                zenith = a0
            else:
                frac = (math.log(f) - math.log(f0)) / (math.log(f1) - math.log(f0))
                zenith = math.exp(
                    math.log(a0) + frac * (math.log(a1) - math.log(a0))
                )
            break
    return zenith


def gaseous_attenuation_db(frequency_ghz: float, elevation_deg: float) -> float:
    """Oxygen + water-vapour slant attenuation (dB), log-log interpolated."""
    zenith = _gas_zenith_db(frequency_ghz)
    el = max(elevation_deg, 5.0)
    return zenith / math.sin(math.radians(el))


def gaseous_attenuation_db_batch(frequency_ghz: float,
                                 elevation_deg: np.ndarray) -> np.ndarray:
    """Vectorized :func:`gaseous_attenuation_db` over an elevation array."""
    zenith = _gas_zenith_db(frequency_ghz)
    el = np.maximum(np.asarray(elevation_deg, dtype=float), 5.0)
    return zenith / np.sin(np.radians(el))
