"""Link-quality model for satellite-ground links (paper Sec. 3.2).

The paper predicts link quality *before* communication begins -- receive-only
stations cannot send feedback -- by combining:

* free-space path loss (paper Eq. 1), :mod:`repro.linkbudget.fspl`;
* ITU-R rain and cloud attenuation models (P.838, P.839, P.840) driven by
  weather forecasts, :mod:`repro.linkbudget.itu`;
* hardware terms (dish gain, system noise), :mod:`repro.linkbudget.antennas`;
* the DVB-S2 MODCOD table to turn SNR into a data rate,
  :mod:`repro.linkbudget.dvbs2`;
* an end-to-end budget calculator, :mod:`repro.linkbudget.budget`;
* a soft decode-probability model around the MODCOD threshold for
  diversity reception, :mod:`repro.linkbudget.decode`.
"""

from repro.linkbudget.fspl import free_space_path_loss_db, free_space_loss_linear
from repro.linkbudget.itu import (
    cloud_attenuation_db,
    gaseous_attenuation_db,
    rain_attenuation_db,
    rain_height_km,
    rain_specific_attenuation_db_km,
)
from repro.linkbudget.antennas import (
    AntennaSpec,
    ReceiverSpec,
    parabolic_gain_dbi,
    system_noise_temperature_k,
)
from repro.linkbudget.dvbs2 import (
    DVBS2_MODCODS,
    ModCod,
    best_modcod,
    required_esn0_db,
)
from repro.linkbudget.budget import LinkBudget, LinkResult, RadioConfig
from repro.linkbudget.decode import (
    DEFAULT_SIGMA_DB,
    decode_probability,
    decode_probability_batch,
)

__all__ = [
    "free_space_path_loss_db",
    "free_space_loss_linear",
    "rain_specific_attenuation_db_km",
    "rain_height_km",
    "rain_attenuation_db",
    "cloud_attenuation_db",
    "gaseous_attenuation_db",
    "AntennaSpec",
    "ReceiverSpec",
    "parabolic_gain_dbi",
    "system_noise_temperature_k",
    "DVBS2_MODCODS",
    "ModCod",
    "best_modcod",
    "required_esn0_db",
    "LinkBudget",
    "LinkResult",
    "RadioConfig",
    "DEFAULT_SIGMA_DB",
    "decode_probability",
    "decode_probability_batch",
]
