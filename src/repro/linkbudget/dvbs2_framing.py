"""DVB-S2 framing layer: BBFRAME/FECFRAME/PLFRAME structure (EN 302 307).

The MODCOD table in :mod:`repro.linkbudget.dvbs2` treats the link as an
ideal bit pipe at the published spectral efficiency.  This module models
the actual frame chain the standard defines -- which is what "DGS's design
is compatible with the DVB-S2 protocol" (Sec. 3.3) means concretely:

* **BBFRAME**: the baseband frame; an 80-bit BBHEADER plus a data field
  of ``kbch - 80`` bits (kbch from the standard's BCH parameter tables).
* **FECFRAME**: BCH + LDPC encoding expands kbch bits to 64800 (normal)
  or 16200 (short) coded bits.
* **PLFRAME**: the physical-layer frame: a 90-symbol PLHEADER, the
  XFECFRAME (coded bits / modulation bits-per-symbol), and optional pilot
  blocks (36 symbols after every 16 slots of 90 symbols).

From these, exact net data rates (a few percent below the ideal
efficiencies once headers and pilots are paid for), frame air times, and
a frame-level pass simulator with an LDPC-waterfall error model.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable

from repro.linkbudget.dvbs2 import DVBS2_MODCODS, ModCod, modcod_by_name

# EN 302 307 Table 5a: BCH uncoded block size kbch, normal FECFRAME (64800).
KBCH_NORMAL = {
    "1/4": 16008, "1/3": 21408, "2/5": 25728, "1/2": 32208,
    "3/5": 38688, "2/3": 43040, "3/4": 48408, "4/5": 51648,
    "5/6": 53840, "8/9": 57472, "9/10": 58192,
}
# EN 302 307 Table 5b: short FECFRAME (16200).  9/10 is not defined short.
KBCH_SHORT = {
    "1/4": 3072, "1/3": 5232, "2/5": 6312, "1/2": 7032,
    "3/5": 9552, "2/3": 10632, "3/4": 11712, "4/5": 12432,
    "5/6": 13152, "8/9": 14232,
}

BBHEADER_BITS = 80
PLHEADER_SYMBOLS = 90
PILOT_BLOCK_SYMBOLS = 36
SLOTS_PER_PILOT = 16
SLOT_SYMBOLS = 90

_BITS_PER_SYMBOL = {"QPSK": 2, "8PSK": 3, "16APSK": 4, "32APSK": 5}


class FramingError(ValueError):
    """Raised for invalid MODCOD/frame combinations."""


@dataclass(frozen=True)
class FrameSpec:
    """The physical frame structure for one MODCOD configuration."""

    modcod: ModCod
    pilots: bool = False
    short_frame: bool = False

    def __post_init__(self) -> None:
        table = KBCH_SHORT if self.short_frame else KBCH_NORMAL
        if self.modcod.code_rate not in table:
            raise FramingError(
                f"code rate {self.modcod.code_rate} undefined for "
                f"{'short' if self.short_frame else 'normal'} FECFRAMEs"
            )

    @property
    def coded_bits(self) -> int:
        return 16200 if self.short_frame else 64800

    @property
    def kbch(self) -> int:
        table = KBCH_SHORT if self.short_frame else KBCH_NORMAL
        return table[self.modcod.code_rate]

    @property
    def data_bits_per_frame(self) -> int:
        """User bits per frame: the BBFRAME data field."""
        return self.kbch - BBHEADER_BITS

    @property
    def bits_per_symbol(self) -> int:
        return _BITS_PER_SYMBOL[self.modcod.modulation]

    @property
    def xfecframe_symbols(self) -> int:
        return self.coded_bits // self.bits_per_symbol

    @property
    def pilot_symbols(self) -> int:
        if not self.pilots:
            return 0
        slots = self.xfecframe_symbols // SLOT_SYMBOLS
        # A pilot block after every 16 slots, but not after the last group.
        blocks = (slots - 1) // SLOTS_PER_PILOT
        return blocks * PILOT_BLOCK_SYMBOLS

    @property
    def symbols_per_frame(self) -> int:
        return PLHEADER_SYMBOLS + self.xfecframe_symbols + self.pilot_symbols

    @property
    def net_spectral_efficiency(self) -> float:
        """User bits per transmitted symbol, all overheads paid."""
        return self.data_bits_per_frame / self.symbols_per_frame

    def frame_duration_s(self, symbol_rate_baud: float) -> float:
        if symbol_rate_baud <= 0:
            raise FramingError("symbol rate must be positive")
        return self.symbols_per_frame / symbol_rate_baud

    def net_bitrate_bps(self, symbol_rate_baud: float) -> float:
        return self.data_bits_per_frame / self.frame_duration_s(symbol_rate_baud)


def frame_error_probability(esn0_db: float, modcod: ModCod,
                            waterfall_db: float = 0.35) -> float:
    """LDPC waterfall PER model: ~1e-7 at threshold, ~0.5 below it.

    The standard's thresholds are quasi-error-free points (PER 1e-7); real
    LDPC curves fall from ~1 to ~1e-7 over a fraction of a dB.  A logistic
    in Es/N0 centred ``waterfall_db`` below threshold reproduces that
    cliff well enough for system studies.
    """
    if waterfall_db <= 0:
        raise FramingError("waterfall width must be positive")
    midpoint = modcod.esn0_db - waterfall_db / 2.0
    steepness = 16.1 / waterfall_db  # ln(1e-7) span across the waterfall
    x = steepness * (esn0_db - midpoint)
    if x > 40.0:
        return 1e-12
    if x < -40.0:
        return 1.0
    return 1.0 / (1.0 + math.exp(x))


@dataclass
class PassFrameResult:
    """Outcome of framing one pass."""

    frames_sent: int
    frames_lost: int
    goodput_bits: float
    airtime_s: float

    @property
    def frame_loss_rate(self) -> float:
        if self.frames_sent == 0:
            return 0.0
        return self.frames_lost / self.frames_sent


def simulate_pass_frames(
    esn0_profile: Callable[[float], float],
    duration_s: float,
    symbol_rate_baud: float,
    modcod_name: str,
    pilots: bool = False,
    short_frame: bool = False,
    seed: int | None = None,
) -> PassFrameResult:
    """Frame-accurate simulation of one pass at a fixed MODCOD.

    ``esn0_profile(t_seconds)`` gives the link Es/N0 over the pass; each
    frame decodes with the waterfall probability at its transmit time.
    With ``seed=None`` the expectation is returned (deterministic:
    fractional lost frames); with a seed, Bernoulli trials per frame.
    """
    if duration_s <= 0:
        raise FramingError("duration must be positive")
    spec = FrameSpec(modcod_by_name(modcod_name), pilots, short_frame)
    frame_time = spec.frame_duration_s(symbol_rate_baud)
    frames = int(duration_s // frame_time)
    rng = random.Random(seed) if seed is not None else None
    lost = 0.0
    for index in range(frames):
        t = index * frame_time
        per = frame_error_probability(esn0_profile(t), spec.modcod)
        if rng is None:
            lost += per
        elif rng.random() < per:
            lost += 1.0
    goodput = (frames - lost) * spec.data_bits_per_frame
    return PassFrameResult(
        frames_sent=frames,
        frames_lost=int(round(lost)),
        goodput_bits=goodput,
        airtime_s=frames * frame_time,
    )


def framing_overhead_fraction(modcod_name: str, pilots: bool = False,
                              short_frame: bool = False) -> float:
    """Fraction of the ideal information rate lost to headers/pilots/BCH."""
    modcod = modcod_by_name(modcod_name)
    spec = FrameSpec(modcod, pilots, short_frame)
    ideal = modcod.spectral_efficiency
    return 1.0 - spec.net_spectral_efficiency / ideal


def all_frame_specs(pilots: bool = False) -> list[FrameSpec]:
    """A FrameSpec per table MODCOD (normal frames)."""
    return [FrameSpec(mc, pilots=pilots) for mc in DVBS2_MODCODS]
