"""DVB-S2 (ETSI EN 302 307) MODCOD table and adaptive rate selection.

The paper converts predicted SNR into a data rate through "the
specifications of the DVB-S2 protocol used for downlink in Earth
observation satellites" (Sec. 3.2).  This module carries the full table of
28 MODCODs from EN 302 307 Table 13 -- modulation, LDPC code rate, ideal
Es/N0 threshold for quasi-error-free operation, and spectral efficiency --
and implements ACM: pick the highest-efficiency MODCOD whose threshold the
link clears with margin.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ModCod:
    """One DVB-S2 modulation-and-coding point."""

    name: str
    modulation: str
    code_rate: str
    esn0_db: float  # ideal Es/N0 for QEF (PER 1e-7), AWGN, from Table 13
    spectral_efficiency: float  # information bits per symbol (normal FECFRAME)

    def bitrate_bps(self, symbol_rate_baud: float) -> float:
        return self.spectral_efficiency * symbol_rate_baud


def _mc(name: str, esn0: float, eff: float) -> ModCod:
    modulation, code_rate = name.split(" ")
    return ModCod(name, modulation, code_rate, esn0, eff)


#: EN 302 307 Table 13, ordered by required Es/N0 (equivalently efficiency
#: within each modulation).  Efficiencies are for normal FECFRAMEs with
#: pilots off.
DVBS2_MODCODS: tuple[ModCod, ...] = (
    _mc("QPSK 1/4", -2.35, 0.490243),
    _mc("QPSK 1/3", -1.24, 0.656448),
    _mc("QPSK 2/5", -0.30, 0.789412),
    _mc("QPSK 1/2", 1.00, 0.988858),
    _mc("QPSK 3/5", 2.23, 1.188304),
    _mc("QPSK 2/3", 3.10, 1.322253),
    _mc("QPSK 3/4", 4.03, 1.487473),
    _mc("QPSK 4/5", 4.68, 1.587196),
    _mc("QPSK 5/6", 5.18, 1.654663),
    _mc("8PSK 3/5", 5.50, 1.779991),
    _mc("QPSK 8/9", 6.20, 1.766451),
    _mc("QPSK 9/10", 6.42, 1.788612),
    _mc("8PSK 2/3", 6.62, 1.980636),
    _mc("8PSK 3/4", 7.91, 2.228124),
    _mc("16APSK 2/3", 8.97, 2.637201),
    _mc("8PSK 5/6", 9.35, 2.478562),
    _mc("16APSK 3/4", 10.21, 2.966728),
    _mc("8PSK 8/9", 10.69, 2.646012),
    _mc("8PSK 9/10", 10.98, 2.679207),
    _mc("16APSK 4/5", 11.03, 3.165623),
    _mc("16APSK 5/6", 11.61, 3.300184),
    _mc("32APSK 3/4", 12.73, 3.703295),
    _mc("16APSK 8/9", 12.89, 3.523143),
    _mc("16APSK 9/10", 13.13, 3.567342),
    _mc("32APSK 4/5", 13.64, 3.951571),
    _mc("32APSK 5/6", 14.28, 4.119540),
    _mc("32APSK 8/9", 15.69, 4.397854),
    _mc("32APSK 9/10", 16.05, 4.453027),
)

_BY_NAME = {mc.name: mc for mc in DVBS2_MODCODS}


def modcod_by_name(name: str) -> ModCod:
    """Look up a MODCOD by its canonical name, e.g. ``"8PSK 3/4"``."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown DVB-S2 MODCOD {name!r}; known: {sorted(_BY_NAME)}"
        ) from None


def required_esn0_db(name: str) -> float:
    """Ideal Es/N0 threshold (dB) for a named MODCOD."""
    return modcod_by_name(name).esn0_db


#: Es/N0 thresholds in table order (ascending -- required by searchsorted).
ESN0_THRESHOLDS_DB = np.array([mc.esn0_db for mc in DVBS2_MODCODS])

#: Spectral efficiency per table index, for batched bitrate computation.
SPECTRAL_EFFICIENCIES = np.array(
    [mc.spectral_efficiency for mc in DVBS2_MODCODS]
)


def _prefix_best_indices() -> np.ndarray:
    """``best[c]``: index of the best MODCOD among the first ``c`` entries.

    Efficiency is *not* monotone in Es/N0 (8PSK 3/5 beats QPSK 8/9 at a
    lower threshold), so "supported" is a prefix of the table but "best"
    needs this precomputed prefix-argmax.  ``best[0] = -1`` (nothing
    closes).  Ties keep the earlier entry, matching :func:`best_modcod`'s
    strict ``>`` replacement rule.
    """
    best = np.empty(len(DVBS2_MODCODS) + 1, dtype=np.int64)
    best[0] = -1
    top_eff = -1.0
    top_index = -1
    for index, mc in enumerate(DVBS2_MODCODS):
        if mc.spectral_efficiency > top_eff:
            top_eff = mc.spectral_efficiency
            top_index = index
        best[index + 1] = top_index
    return best


_PREFIX_BEST = _prefix_best_indices()


def best_modcod_indices(esn0_db: np.ndarray,
                        margin_db: float = 1.0) -> np.ndarray:
    """Vectorized ACM selection: table indices, ``-1`` where nothing closes.

    Exactly matches :func:`best_modcod` element-wise (including the
    ``<=`` threshold comparison at exact boundaries): ``searchsorted``
    counts the thresholds at or below the margin-adjusted Es/N0, and the
    prefix-argmax table maps that count to the most efficient supported
    MODCOD.
    """
    available = np.asarray(esn0_db, dtype=float) - margin_db
    counts = np.searchsorted(ESN0_THRESHOLDS_DB, available, side="right")
    return _PREFIX_BEST[counts]


def best_modcod(esn0_db: float, margin_db: float = 1.0) -> ModCod | None:
    """ACM selection: the most efficient MODCOD supported at this Es/N0.

    ``margin_db`` is the implementation/fade margin subtracted before the
    threshold comparison (real modems never run at the ideal AWGN
    threshold).  Returns ``None`` when even QPSK 1/4 does not close --
    i.e. the link carries no data.
    """
    available = esn0_db - margin_db
    best: ModCod | None = None
    for mc in DVBS2_MODCODS:
        if mc.esn0_db <= available:
            if best is None or mc.spectral_efficiency > best.spectral_efficiency:
                best = mc
    return best


def achievable_bitrate_bps(esn0_db: float, symbol_rate_baud: float,
                           margin_db: float = 1.0) -> float:
    """Information bitrate achievable at an Es/N0, or 0.0 if no MODCOD closes."""
    mc = best_modcod(esn0_db, margin_db)
    if mc is None:
        return 0.0
    return mc.bitrate_bps(symbol_rate_baud)
