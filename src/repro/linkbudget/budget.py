"""End-to-end link budget: geometry + weather + hardware -> data rate.

This is the paper's Sec. 3.2 pipeline: free-space path loss from slant
range (Eq. 1), ITU rain/cloud/gas attenuation from the weather forecast,
static hardware terms, then Es/N0 through the DVB-S2 ACM table to a
predicted bitrate.  ``LinkBudget.evaluate`` is the single function the
scheduler calls per (satellite, station, time) edge.

Calibration note: the satellite radio defaults follow the Planet
high-speed-radio description the paper cites [10] -- X-band, six parallel
channels, ~1.6 Gbps aggregate at the best 4 m-dish link.  A 1 m DGS dish
then lands near one-tenth of that per-station throughput, reproducing the
paper's stated 10x baseline-to-DGS node ratio.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.linkbudget.antennas import AntennaSpec, ReceiverSpec
from repro.linkbudget.dvbs2 import (
    DVBS2_MODCODS,
    ESN0_THRESHOLDS_DB,
    ModCod,
    SPECTRAL_EFFICIENCIES,
    best_modcod,
    best_modcod_indices,
)
from repro.linkbudget.fspl import (
    free_space_path_loss_db,
    free_space_path_loss_db_batch,
)
from repro.linkbudget.itu import (
    cloud_attenuation_db,
    cloud_attenuation_db_batch,
    cloud_attenuation_db_batch_presin,
    gaseous_attenuation_db,
    gaseous_attenuation_db_batch,
    rain_attenuation_db,
    rain_attenuation_db_batch,
    rain_attenuation_db_batch_pregeom,
    rain_height_km_batch,
)
from repro.orbits.constants import BOLTZMANN_DBW


@dataclass(frozen=True)
class RadioConfig:
    """The satellite transmit side of the link.

    ``channels`` is how many parallel frequency/polarization channels the
    spacecraft radio can emit; a contact uses
    ``min(radio.channels, receiver.channels)`` of them.  The transmitter is
    power-limited: ``total_eirp_dbw`` is split evenly across the active
    channels, so a single-channel DGS node receives the full EIRP on its
    one channel while a 6-channel baseline contact pays ~7.8 dB per channel
    for its parallelism.  This is what makes the baseline's aggregate
    advantage ~10x rather than 6 x (12 dB of dish) x.
    """

    frequency_ghz: float = 8.2  # X-band EO downlink
    #: Calibrated so a 4 m 6-channel baseline contact peaks at ~1.6 Gbps
    #: aggregate -- the best known published rate [10] -- and a 1 m DGS
    #: node peaks near 150 Mbps, putting the baseline near the paper's
    #: stated 10x median-node-throughput multiple.
    total_eirp_dbw: float = 10.5
    symbol_rate_baud: float = 75e6
    channels: int = 6
    polarization: str = "circular"

    def eirp_dbw_per_channel(self, active_channels: int) -> float:
        """EIRP available to each of ``active_channels`` parallel channels."""
        if not 1 <= active_channels <= self.channels:
            raise ValueError(
                f"active channels must be 1..{self.channels}, got {active_channels}"
            )
        return self.total_eirp_dbw - 10.0 * math.log10(active_channels)

    def __post_init__(self) -> None:
        if self.frequency_ghz <= 0:
            raise ValueError("frequency must be positive")
        if self.symbol_rate_baud <= 0:
            raise ValueError("symbol rate must be positive")
        if self.channels < 1:
            raise ValueError("channels must be >= 1")


@dataclass(frozen=True)
class LinkResult:
    """Everything the budget predicts for one link at one instant."""

    esn0_db: float
    modcod: ModCod | None
    bitrate_bps: float  # aggregate over active channels
    active_channels: int
    fspl_db: float
    rain_db: float
    cloud_db: float
    gas_db: float

    @property
    def closes(self) -> bool:
        """True when at least the most robust MODCOD is supported."""
        return self.modcod is not None

    @property
    def total_atmospheric_db(self) -> float:
        return self.rain_db + self.cloud_db + self.gas_db


@dataclass(frozen=True)
class BatchLinkResult:
    """Per-pair arrays of everything :meth:`LinkBudget.evaluate` predicts.

    ``modcod_index`` is the DVB-S2 table index (``-1`` where no MODCOD
    closes); ``required_esn0_db`` carries the sentinel ``-100.0`` there,
    matching :class:`ContactEdge`'s default.
    """

    esn0_db: np.ndarray
    modcod_index: np.ndarray
    bitrate_bps: np.ndarray
    required_esn0_db: np.ndarray
    fspl_db: np.ndarray
    rain_db: np.ndarray
    cloud_db: np.ndarray
    gas_db: np.ndarray

    @property
    def closes(self) -> np.ndarray:
        """Boolean mask: which pairs support at least QPSK 1/4."""
        return self.modcod_index >= 0

    def modcod_at(self, position: int) -> ModCod | None:
        """The scalar MODCOD object for one element (None when open)."""
        index = int(self.modcod_index[position])
        return DVBS2_MODCODS[index] if index >= 0 else None


@dataclass(frozen=True)
class KernelStatics:
    """Geometry-only kernel terms, precomputed once for a fixed pair set.

    Free-space path loss and gaseous attenuation depend only on range,
    elevation, and the radio frequency; the cloud model's sole
    transcendental is ``sin(radians(max(el, 5)))``.  All three are
    invariant across simulation steps for a stored (pair, step) row, so
    the contact-window index evaluates them once at build time and the
    batched budget reuses them every tick.  Each array is the exact
    output of the corresponding batch helper on the same range/elevation
    columns, which keeps :meth:`LinkBudget.evaluate_batch` bit-identical
    with or without them.
    """

    fspl_db: np.ndarray
    gas_db: np.ndarray
    sin_el: np.ndarray
    #: Rain-model geometry (slant path, horizontal projection, and the
    #: ``0.38 * (1 - exp(-2 * lg))`` reduction term), present only when
    #: :meth:`LinkBudget.precompute_statics` was given station latitude
    #: (the rain geometry additionally needs latitude and altitude).
    rain_slant: np.ndarray | None = None
    rain_lg: np.ndarray | None = None
    rain_b: np.ndarray | None = None

    def narrow(self, lo: int, hi: int) -> "KernelStatics":
        """Zero-copy row slice ``[lo:hi)`` of every stored column."""
        return KernelStatics(
            fspl_db=self.fspl_db[lo:hi],
            gas_db=self.gas_db[lo:hi],
            sin_el=self.sin_el[lo:hi],
            rain_slant=None if self.rain_slant is None
            else self.rain_slant[lo:hi],
            rain_lg=None if self.rain_lg is None else self.rain_lg[lo:hi],
            rain_b=None if self.rain_b is None else self.rain_b[lo:hi],
        )

    def take(self, idx: np.ndarray) -> "KernelStatics":
        """Row gather of every stored column (fancy-indexed copies)."""
        return KernelStatics(
            fspl_db=self.fspl_db[idx],
            gas_db=self.gas_db[idx],
            sin_el=self.sin_el[idx],
            rain_slant=None if self.rain_slant is None
            else self.rain_slant[idx],
            rain_lg=None if self.rain_lg is None else self.rain_lg[idx],
            rain_b=None if self.rain_b is None else self.rain_b[idx],
        )


@dataclass
class LinkBudget:
    """A calculator binding one satellite radio to one ground receiver."""

    radio: RadioConfig
    receiver: ReceiverSpec
    acm_margin_db: float = 1.0
    #: Static per-pair calibration term (paper: "hardware dependent loss is
    #: static ... and can be calibrated for").  Positive values are losses.
    hardware_calibration_db: float = 0.0
    #: Account pilot-symbol overhead via the framing layer (EN 302 307
    #: PLFRAME structure) instead of the ideal Table-13 efficiency.
    pilots: bool = False

    def esn0_db(
        self,
        range_km: float,
        elevation_deg: float,
        station_latitude_deg: float = 45.0,
        rain_rate_mm_h: float = 0.0,
        cloud_water_kg_m2: float = 0.0,
        station_altitude_km: float = 0.0,
    ) -> LinkResult:
        """Predict Es/N0 and the resulting DVB-S2 operating point.

        A link below the horizon (elevation <= 0) never closes, regardless
        of hardware.
        """
        freq = self.radio.frequency_ghz
        fspl = free_space_path_loss_db(range_km, freq)
        rain = rain_attenuation_db(
            rain_rate_mm_h, freq, elevation_deg,
            station_latitude_deg, station_altitude_km,
            self.radio.polarization,
        )
        cloud = cloud_attenuation_db(cloud_water_kg_m2, freq, elevation_deg)
        gas = gaseous_attenuation_db(freq, elevation_deg)
        channels = min(self.radio.channels, self.receiver.channels)
        cn0_dbhz = (
            self.radio.eirp_dbw_per_channel(channels)
            + self.receiver.g_over_t_db(freq)
            - fspl
            - rain
            - cloud
            - gas
            - self.receiver.antenna.pointing_loss_db
            - self.receiver.implementation_loss_db
            - self.hardware_calibration_db
            - BOLTZMANN_DBW
        )
        esn0 = cn0_dbhz - 10.0 * math.log10(self.radio.symbol_rate_baud)
        if elevation_deg <= 0.0:
            return LinkResult(esn0, None, 0.0, 0, fspl, rain, cloud, gas)
        modcod = best_modcod(esn0, self.acm_margin_db)
        bitrate = 0.0
        if modcod is not None:
            if self.pilots:
                from repro.linkbudget.dvbs2_framing import FrameSpec

                spec = FrameSpec(modcod, pilots=True)
                bitrate = spec.net_bitrate_bps(self.radio.symbol_rate_baud) * channels
            else:
                bitrate = modcod.bitrate_bps(self.radio.symbol_rate_baud) * channels
        return LinkResult(esn0, modcod, bitrate, channels if modcod else 0,
                          fspl, rain, cloud, gas)

    def evaluate(self, *args, **kwargs) -> LinkResult:
        """Alias for :meth:`esn0_db`; kept for readable call sites."""
        return self.esn0_db(*args, **kwargs)

    # -- batched path ------------------------------------------------------

    def _bitrate_table_bps(self) -> np.ndarray:
        """Aggregate bitrate per MODCOD index for this radio/receiver pair."""
        table = getattr(self, "_bitrate_table_cache", None)
        if table is not None:
            return table
        channels = min(self.radio.channels, self.receiver.channels)
        if self.pilots:
            from repro.linkbudget.dvbs2_framing import FrameSpec

            table = np.array(
                [
                    FrameSpec(mc, pilots=True).net_bitrate_bps(
                        self.radio.symbol_rate_baud
                    ) * channels
                    for mc in DVBS2_MODCODS
                ]
            )
        else:
            table = SPECTRAL_EFFICIENCIES * self.radio.symbol_rate_baud \
                * channels
        self._bitrate_table_cache = table
        return table

    def precompute_statics(
        self,
        range_km: np.ndarray,
        elevation_deg: np.ndarray,
        station_latitude_deg: np.ndarray | None = None,
        station_altitude_km: np.ndarray | float = 0.0,
    ) -> KernelStatics:
        """Evaluate the geometry-only kernel terms for a fixed pair set.

        Runs the identical batch helpers :meth:`evaluate_batch` would run,
        so passing the result back via its ``static`` parameter changes
        nothing but when the work happens.  When ``station_latitude_deg``
        is given, the rain model's geometry (slant path, horizontal
        projection, reduction ``b`` term -- functions of elevation,
        latitude, and altitude only) is precomputed too, with the exact
        expressions of :func:`rain_attenuation_db_batch`.
        """
        range_km = np.asarray(range_km, dtype=float)
        elevation_deg = np.asarray(elevation_deg, dtype=float)
        freq = self.radio.frequency_ghz
        rain_slant = rain_lg = rain_b = None
        if station_latitude_deg is not None:
            lat, alt, el_in = np.broadcast_arrays(
                np.asarray(station_latitude_deg, dtype=float),
                np.asarray(station_altitude_km, dtype=float),
                elevation_deg,
            )
            # The cloud sine and the rain model clamp to the same 5-deg
            # floor, so one radians/sin/cos evaluation serves both.
            el = np.maximum(el_in, 5.0)
            rad_el = np.radians(el)
            sin_el = np.sin(rad_el)
            height = np.maximum(0.0, rain_height_km_batch(lat) - alt)
            rain_slant = np.where(height > 0.0, height / sin_el, 0.0)
            rain_lg = rain_slant * np.cos(rad_el)
            rain_b = 0.38 * (1.0 - np.exp(-2.0 * rain_lg))
        else:
            sin_el = np.sin(np.radians(np.maximum(elevation_deg, 5.0)))
        return KernelStatics(
            fspl_db=free_space_path_loss_db_batch(range_km, freq),
            gas_db=gaseous_attenuation_db_batch(freq, elevation_deg),
            sin_el=sin_el,
            rain_slant=rain_slant,
            rain_lg=rain_lg,
            rain_b=rain_b,
        )

    def evaluate_batch(
        self,
        range_km: np.ndarray,
        elevation_deg: np.ndarray,
        station_latitude_deg: np.ndarray | float = 45.0,
        rain_rate_mm_h: np.ndarray | float = 0.0,
        cloud_water_kg_m2: np.ndarray | float = 0.0,
        station_altitude_km: np.ndarray | float = 0.0,
        static: KernelStatics | None = None,
    ) -> BatchLinkResult:
        """Vectorized :meth:`evaluate` over per-pair arrays.

        All array arguments broadcast together; frequency, hardware terms,
        and the ACM margin are fixed by this budget instance, exactly as
        in the scalar path.  Results match :meth:`evaluate` element-wise
        to float rounding (NumPy vs libm transcendentals, ~1e-12 dB); a
        MODCOD choice can differ only for an Es/N0 within that distance
        of a table threshold.

        ``static``, when given, must be :meth:`precompute_statics` of this
        same ``range_km``/``elevation_deg`` (element-wise); the fspl, gas,
        and cloud-sine evaluations are then skipped in favour of the
        stored arrays, bit-identically.
        """
        range_km = np.asarray(range_km, dtype=float)
        elevation_deg = np.asarray(elevation_deg, dtype=float)
        freq = self.radio.frequency_ghz
        if static is not None:
            fspl = static.fspl_db
            gas = static.gas_db
            cloud = cloud_attenuation_db_batch_presin(
                cloud_water_kg_m2, freq, static.sin_el
            )
        else:
            fspl = free_space_path_loss_db_batch(range_km, freq)
            cloud = cloud_attenuation_db_batch(
                cloud_water_kg_m2, freq, elevation_deg
            )
            gas = gaseous_attenuation_db_batch(freq, elevation_deg)
        if static is not None and static.rain_slant is not None:
            rain = rain_attenuation_db_batch_pregeom(
                rain_rate_mm_h, freq, static.rain_slant,
                static.rain_lg, static.rain_b, self.radio.polarization,
            )
        else:
            rain = rain_attenuation_db_batch(
                rain_rate_mm_h, freq, elevation_deg,
                station_latitude_deg, station_altitude_km,
                self.radio.polarization,
            )
        # Per-instance scalar constants (EIRP + G/T and the symbol-rate
        # term): pure functions of the frozen radio/receiver fields, so
        # computing them once and reusing the exact floats is
        # bit-identical to re-deriving them every call.
        scalars = getattr(self, "_cn0_scalar_cache", None)
        if scalars is None:
            channels = min(self.radio.channels, self.receiver.channels)
            scalars = (
                self.radio.eirp_dbw_per_channel(channels)
                + self.receiver.g_over_t_db(freq),
                10.0 * math.log10(self.radio.symbol_rate_baud),
            )
            self._cn0_scalar_cache = scalars
        # Same accumulation order as the scalar path, for bit-stability.
        cn0_dbhz = scalars[0]
        cn0_dbhz = cn0_dbhz - fspl
        cn0_dbhz = cn0_dbhz - rain
        cn0_dbhz = cn0_dbhz - cloud
        cn0_dbhz = cn0_dbhz - gas
        cn0_dbhz = cn0_dbhz - self.receiver.antenna.pointing_loss_db
        cn0_dbhz = cn0_dbhz - self.receiver.implementation_loss_db
        cn0_dbhz = cn0_dbhz - self.hardware_calibration_db
        cn0_dbhz = cn0_dbhz - BOLTZMANN_DBW
        esn0 = cn0_dbhz - scalars[1]
        index = best_modcod_indices(esn0, self.acm_margin_db)
        index = np.where(elevation_deg <= 0.0, -1, index)
        open_link = index < 0
        safe = np.where(open_link, 0, index)
        bitrate = np.where(open_link, 0.0, self._bitrate_table_bps()[safe])
        required = np.where(open_link, -100.0, ESN0_THRESHOLDS_DB[safe])
        return BatchLinkResult(
            esn0_db=esn0,
            modcod_index=index,
            bitrate_bps=bitrate,
            required_esn0_db=required,
            fspl_db=fspl,
            rain_db=rain,
            cloud_db=cloud,
            gas_db=gas,
        )


def dgs_node_receiver(channels: int = 1) -> ReceiverSpec:
    """The paper's low-complexity DGS node: 1 m dish, single channel.

    A well-fed 1 m offset dish with a modern LNB: 65% efficiency, 0.9 dB
    noise figure.  Together with the power-split advantage of a
    single-channel link this puts a baseline station at ~10x the median
    DGS-node throughput, the paper's stated calibration point.
    """
    return ReceiverSpec(
        antenna=AntennaSpec(diameter_m=1.0, efficiency=0.65, pointing_loss_db=0.4),
        noise_figure_db=0.9,
        channels=channels,
    )


def baseline_receiver() -> ReceiverSpec:
    """The paper's baseline: high-end receiver, 4 m dish, 6 channels [10]."""
    return ReceiverSpec(
        antenna=AntennaSpec(diameter_m=4.0, efficiency=0.65, pointing_loss_db=0.3),
        noise_figure_db=0.8,
        channels=6,
    )
