"""End-to-end link budget: geometry + weather + hardware -> data rate.

This is the paper's Sec. 3.2 pipeline: free-space path loss from slant
range (Eq. 1), ITU rain/cloud/gas attenuation from the weather forecast,
static hardware terms, then Es/N0 through the DVB-S2 ACM table to a
predicted bitrate.  ``LinkBudget.evaluate`` is the single function the
scheduler calls per (satellite, station, time) edge.

Calibration note: the satellite radio defaults follow the Planet
high-speed-radio description the paper cites [10] -- X-band, six parallel
channels, ~1.6 Gbps aggregate at the best 4 m-dish link.  A 1 m DGS dish
then lands near one-tenth of that per-station throughput, reproducing the
paper's stated 10x baseline-to-DGS node ratio.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.linkbudget.antennas import AntennaSpec, ReceiverSpec
from repro.linkbudget.dvbs2 import ModCod, best_modcod
from repro.linkbudget.fspl import free_space_path_loss_db
from repro.linkbudget.itu import (
    cloud_attenuation_db,
    gaseous_attenuation_db,
    rain_attenuation_db,
)
from repro.orbits.constants import BOLTZMANN_DBW


@dataclass(frozen=True)
class RadioConfig:
    """The satellite transmit side of the link.

    ``channels`` is how many parallel frequency/polarization channels the
    spacecraft radio can emit; a contact uses
    ``min(radio.channels, receiver.channels)`` of them.  The transmitter is
    power-limited: ``total_eirp_dbw`` is split evenly across the active
    channels, so a single-channel DGS node receives the full EIRP on its
    one channel while a 6-channel baseline contact pays ~7.8 dB per channel
    for its parallelism.  This is what makes the baseline's aggregate
    advantage ~10x rather than 6 x (12 dB of dish) x.
    """

    frequency_ghz: float = 8.2  # X-band EO downlink
    #: Calibrated so a 4 m 6-channel baseline contact peaks at ~1.6 Gbps
    #: aggregate -- the best known published rate [10] -- and a 1 m DGS
    #: node peaks near 150 Mbps, putting the baseline near the paper's
    #: stated 10x median-node-throughput multiple.
    total_eirp_dbw: float = 10.5
    symbol_rate_baud: float = 75e6
    channels: int = 6
    polarization: str = "circular"

    def eirp_dbw_per_channel(self, active_channels: int) -> float:
        """EIRP available to each of ``active_channels`` parallel channels."""
        if not 1 <= active_channels <= self.channels:
            raise ValueError(
                f"active channels must be 1..{self.channels}, got {active_channels}"
            )
        return self.total_eirp_dbw - 10.0 * math.log10(active_channels)

    def __post_init__(self) -> None:
        if self.frequency_ghz <= 0:
            raise ValueError("frequency must be positive")
        if self.symbol_rate_baud <= 0:
            raise ValueError("symbol rate must be positive")
        if self.channels < 1:
            raise ValueError("channels must be >= 1")


@dataclass(frozen=True)
class LinkResult:
    """Everything the budget predicts for one link at one instant."""

    esn0_db: float
    modcod: ModCod | None
    bitrate_bps: float  # aggregate over active channels
    active_channels: int
    fspl_db: float
    rain_db: float
    cloud_db: float
    gas_db: float

    @property
    def closes(self) -> bool:
        """True when at least the most robust MODCOD is supported."""
        return self.modcod is not None

    @property
    def total_atmospheric_db(self) -> float:
        return self.rain_db + self.cloud_db + self.gas_db


@dataclass
class LinkBudget:
    """A calculator binding one satellite radio to one ground receiver."""

    radio: RadioConfig
    receiver: ReceiverSpec
    acm_margin_db: float = 1.0
    #: Static per-pair calibration term (paper: "hardware dependent loss is
    #: static ... and can be calibrated for").  Positive values are losses.
    hardware_calibration_db: float = 0.0
    #: Account pilot-symbol overhead via the framing layer (EN 302 307
    #: PLFRAME structure) instead of the ideal Table-13 efficiency.
    pilots: bool = False

    def esn0_db(
        self,
        range_km: float,
        elevation_deg: float,
        station_latitude_deg: float = 45.0,
        rain_rate_mm_h: float = 0.0,
        cloud_water_kg_m2: float = 0.0,
        station_altitude_km: float = 0.0,
    ) -> LinkResult:
        """Predict Es/N0 and the resulting DVB-S2 operating point.

        A link below the horizon (elevation <= 0) never closes, regardless
        of hardware.
        """
        freq = self.radio.frequency_ghz
        fspl = free_space_path_loss_db(range_km, freq)
        rain = rain_attenuation_db(
            rain_rate_mm_h, freq, elevation_deg,
            station_latitude_deg, station_altitude_km,
            self.radio.polarization,
        )
        cloud = cloud_attenuation_db(cloud_water_kg_m2, freq, elevation_deg)
        gas = gaseous_attenuation_db(freq, elevation_deg)
        channels = min(self.radio.channels, self.receiver.channels)
        cn0_dbhz = (
            self.radio.eirp_dbw_per_channel(channels)
            + self.receiver.g_over_t_db(freq)
            - fspl
            - rain
            - cloud
            - gas
            - self.receiver.antenna.pointing_loss_db
            - self.receiver.implementation_loss_db
            - self.hardware_calibration_db
            - BOLTZMANN_DBW
        )
        esn0 = cn0_dbhz - 10.0 * math.log10(self.radio.symbol_rate_baud)
        if elevation_deg <= 0.0:
            return LinkResult(esn0, None, 0.0, 0, fspl, rain, cloud, gas)
        modcod = best_modcod(esn0, self.acm_margin_db)
        bitrate = 0.0
        if modcod is not None:
            if self.pilots:
                from repro.linkbudget.dvbs2_framing import FrameSpec

                spec = FrameSpec(modcod, pilots=True)
                bitrate = spec.net_bitrate_bps(self.radio.symbol_rate_baud) * channels
            else:
                bitrate = modcod.bitrate_bps(self.radio.symbol_rate_baud) * channels
        return LinkResult(esn0, modcod, bitrate, channels if modcod else 0,
                          fspl, rain, cloud, gas)

    def evaluate(self, *args, **kwargs) -> LinkResult:
        """Alias for :meth:`esn0_db`; kept for readable call sites."""
        return self.esn0_db(*args, **kwargs)


def dgs_node_receiver(channels: int = 1) -> ReceiverSpec:
    """The paper's low-complexity DGS node: 1 m dish, single channel.

    A well-fed 1 m offset dish with a modern LNB: 65% efficiency, 0.9 dB
    noise figure.  Together with the power-split advantage of a
    single-channel link this puts a baseline station at ~10x the median
    DGS-node throughput, the paper's stated calibration point.
    """
    return ReceiverSpec(
        antenna=AntennaSpec(diameter_m=1.0, efficiency=0.65, pointing_loss_db=0.4),
        noise_figure_db=0.9,
        channels=channels,
    )


def baseline_receiver() -> ReceiverSpec:
    """The paper's baseline: high-end receiver, 4 m dish, 6 channels [10]."""
    return ReceiverSpec(
        antenna=AntennaSpec(diameter_m=4.0, efficiency=0.65, pointing_loss_db=0.3),
        noise_figure_db=0.8,
        channels=6,
    )
