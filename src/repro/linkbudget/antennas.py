"""Antenna and receiver hardware models.

The hardware-dependent loss term of the paper's link model (Sec. 3.2) is
"static for a satellite-ground station pair and can be calibrated for"; we
model it explicitly so the 4 m baseline dishes, the 1 m DGS dishes (the
paper's "reduces the SNR of each station by 6 dB"), and arbitrary ablation
hardware all come from one parameterization.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.orbits.constants import SPEED_OF_LIGHT_M_S


def parabolic_gain_dbi(diameter_m: float, frequency_ghz: float,
                       efficiency: float = 0.6) -> float:
    """Boresight gain of a parabolic dish: 10*log10(eff * (pi*D/lambda)^2)."""
    if diameter_m <= 0.0:
        raise ValueError(f"diameter must be positive, got {diameter_m}")
    if not 0.0 < efficiency <= 1.0:
        raise ValueError(f"efficiency must be in (0, 1], got {efficiency}")
    wavelength = SPEED_OF_LIGHT_M_S / (frequency_ghz * 1e9)
    return 10.0 * math.log10(efficiency * (math.pi * diameter_m / wavelength) ** 2)


def half_power_beamwidth_deg(diameter_m: float, frequency_ghz: float) -> float:
    """Approximate -3 dB beamwidth of a parabolic dish: 70 * lambda / D."""
    wavelength = SPEED_OF_LIGHT_M_S / (frequency_ghz * 1e9)
    return 70.0 * wavelength / diameter_m


def system_noise_temperature_k(
    antenna_temperature_k: float = 60.0,
    lna_noise_figure_db: float = 1.0,
    feed_loss_db: float = 0.3,
    ambient_k: float = 290.0,
) -> float:
    """Receive-system noise temperature referred to the antenna port.

    T_sys = T_ant/L_feed + T_feed + T_lna with the feed modelled as a lossy
    attenuator at ambient temperature.
    """
    loss_linear = 10.0 ** (feed_loss_db / 10.0)
    t_feed = ambient_k * (loss_linear - 1.0) / loss_linear
    t_lna = ambient_k * (10.0 ** (lna_noise_figure_db / 10.0) - 1.0)
    return antenna_temperature_k / loss_linear + t_feed + t_lna


@dataclass(frozen=True)
class AntennaSpec:
    """A dish antenna: enough to compute gain at any carrier frequency."""

    diameter_m: float
    efficiency: float = 0.6
    pointing_loss_db: float = 0.5

    def gain_dbi(self, frequency_ghz: float) -> float:
        return parabolic_gain_dbi(self.diameter_m, frequency_ghz, self.efficiency)

    def beamwidth_deg(self, frequency_ghz: float) -> float:
        return half_power_beamwidth_deg(self.diameter_m, frequency_ghz)


@dataclass(frozen=True)
class ReceiverSpec:
    """A ground receiver chain: antenna + noise + channel parallelism.

    ``channels`` models stations that combine several frequency/polarization
    channels (the paper's baseline uses 6; DGS nodes use 1).
    """

    antenna: AntennaSpec
    noise_figure_db: float = 1.0
    feed_loss_db: float = 0.3
    antenna_temperature_k: float = 60.0
    channels: int = 1
    implementation_loss_db: float = 1.0

    def system_noise_k(self) -> float:
        return system_noise_temperature_k(
            self.antenna_temperature_k,
            self.noise_figure_db,
            self.feed_loss_db,
        )

    def g_over_t_db(self, frequency_ghz: float) -> float:
        """Receiver figure of merit G/T in dB/K."""
        return self.antenna.gain_dbi(frequency_ghz) - 10.0 * math.log10(
            self.system_noise_k()
        )
