"""Free-space path loss -- Equation (1) of the paper.

    L = (4 * pi * d * f / c)^2

Loss grows with distance ``d`` and carrier frequency ``f``; ``c`` is the
speed of light.  Expressed in dB this is the familiar
``92.45 + 20 log10(d_km) + 20 log10(f_GHz)``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.orbits.constants import SPEED_OF_LIGHT_M_S


def free_space_loss_linear(distance_m: float, frequency_hz: float) -> float:
    """Path loss as a linear power ratio (>= 1 in the far field)."""
    if distance_m <= 0.0:
        raise ValueError(f"distance must be positive, got {distance_m}")
    if frequency_hz <= 0.0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return (4.0 * math.pi * distance_m * frequency_hz / SPEED_OF_LIGHT_M_S) ** 2


def free_space_path_loss_db(distance_km: float, frequency_ghz: float) -> float:
    """Path loss in dB for a distance in km and frequency in GHz."""
    return 10.0 * math.log10(
        free_space_loss_linear(distance_km * 1e3, frequency_ghz * 1e9)
    )


def free_space_path_loss_db_batch(distance_km: np.ndarray,
                                  frequency_ghz: float) -> np.ndarray:
    """Vectorized :func:`free_space_path_loss_db` over an array of ranges."""
    distance_m = np.asarray(distance_km, dtype=float) * 1e3
    if (distance_m <= 0.0).any():
        raise ValueError("distances must be positive")
    if frequency_ghz <= 0.0:
        raise ValueError(f"frequency must be positive, got {frequency_ghz}")
    ratio = 4.0 * math.pi * distance_m * (frequency_ghz * 1e9) \
        / SPEED_OF_LIGHT_M_S
    return 10.0 * np.log10(ratio * ratio)
