"""Doppler prediction and blind-acquisition budgets for receive-only nodes.

A DGS receive-only station cannot ask the satellite for a beacon sweep:
it must predict the downlink frequency from orbit knowledge and open its
acquisition window around that prediction.  This module computes the
Doppler profile of a pass from the propagated orbit, and the *residual*
frequency uncertainty caused by TLE staleness -- tying the orbit catalog's
position error to a receiver design number (how wide the FLL/PLL pull-in
range must be).

LEO X-band numbers for intuition: +-7.4 km/s line-of-sight worst case is
+-200 kHz at 8.2 GHz, slewing through zero at up to ~3.5 kHz/s at
closest approach.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from datetime import datetime, timedelta
from typing import Callable

from repro.orbits.constants import SPEED_OF_LIGHT_M_S
from repro.orbits.frames import teme_to_ecef
from repro.orbits.timebase import datetime_to_jd
from repro.orbits.topocentric import look_angles

Propagator = Callable[[datetime], tuple]


def doppler_shift_hz(range_rate_km_s: float, carrier_hz: float) -> float:
    """Received-minus-transmitted frequency for a line-of-sight range rate.

    Negative range rate (approaching) gives a positive (blue) shift.
    """
    return -range_rate_km_s * 1000.0 / SPEED_OF_LIGHT_M_S * carrier_hz


def max_doppler_hz(carrier_hz: float, orbital_speed_km_s: float = 7.6) -> float:
    """Worst-case LEO Doppler magnitude at a carrier frequency."""
    if carrier_hz <= 0:
        raise ValueError("carrier must be positive")
    return orbital_speed_km_s * 1000.0 / SPEED_OF_LIGHT_M_S * carrier_hz


@dataclass(frozen=True)
class DopplerSample:
    when: datetime
    shift_hz: float
    rate_hz_s: float


def pass_doppler_profile(
    propagate: Propagator,
    site_lat_deg: float,
    site_lon_deg: float,
    site_alt_km: float,
    start: datetime,
    duration_s: float,
    carrier_hz: float,
    step_s: float = 10.0,
) -> list[DopplerSample]:
    """Doppler shift and slew rate over a pass, sampled at ``step_s``."""
    if duration_s <= 0 or step_s <= 0:
        raise ValueError("duration and step must be positive")

    def shift_at(when: datetime) -> float:
        pos_teme, vel_teme = propagate(when)
        pos_ecef, vel_ecef = teme_to_ecef(
            pos_teme, datetime_to_jd(when), vel_teme
        )
        topo = look_angles(site_lat_deg, site_lon_deg, site_alt_km,
                           pos_ecef, vel_ecef)
        return doppler_shift_hz(topo.range_rate_km_s, carrier_hz)

    samples = []
    steps = int(duration_s // step_s) + 1
    previous = None
    for k in range(steps):
        when = start + timedelta(seconds=k * step_s)
        shift = shift_at(when)
        rate = 0.0 if previous is None else (shift - previous) / step_s
        samples.append(DopplerSample(when, shift, rate))
        previous = shift
    return samples


def acquisition_window_hz(
    position_error_km: float,
    carrier_hz: float,
    pass_geometry_range_km: float = 800.0,
    oscillator_ppm: float = 0.5,
) -> float:
    """Half-width of the frequency window a blind receiver must search.

    Two contributions: the frequency error from mispredicting the
    satellite's along-track position (a position error ``d`` at slant
    range ``R`` mispredicts the range-rate profile by roughly
    ``v * d / R`` at closest approach), and local oscillator offset.
    TLE-grade ephemerides (<= a few km) keep X-band windows in the tens
    of kHz -- comfortably a one-shot FFT acquisition.
    """
    if position_error_km < 0 or pass_geometry_range_km <= 0:
        raise ValueError("invalid geometry")
    orbital_speed_m_s = 7600.0
    rate_error_m_s = orbital_speed_m_s * (
        position_error_km / pass_geometry_range_km
    )
    ephemeris_term = rate_error_m_s / SPEED_OF_LIGHT_M_S * carrier_hz
    oscillator_term = carrier_hz * oscillator_ppm * 1e-6
    return ephemeris_term + oscillator_term
