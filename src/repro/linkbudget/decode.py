"""Per-station decode probability as a function of link SNR margin.

The deterministic budget (:mod:`repro.linkbudget.budget`) answers "does
the planned MODCOD close under this atmosphere" with a hard threshold.
Real receive-only stations sit on the soft shoulder of that threshold:
scintillation, pointing jitter, and implementation losses move the
realized Es/N0 around the prediction by a fraction of a dB, so two
stations with the same *predicted* margin decode the same pass with
*independent* errors -- which is precisely why the hybrid-GS design wants
several cheap stations listening to one pass (diversity reception).

The model is a Gaussian margin perturbation: the realized Es/N0 is the
predicted value plus zero-mean Gaussian noise with standard deviation
``sigma_db``, and a frame decodes when the realized value clears the
MODCOD threshold::

    P(decode) = Phi((esn0_db - required_esn0_db) / sigma_db)

At the scheduler's default 1 dB ACM margin and the default sigma this
gives ~89% per-copy success in clear sky; a station under a storm core
whose predicted margin went negative decays toward zero smoothly rather
than cliff-edge.  The randomness itself lives with the caller (the
diversity combiner draws seeded uniforms); this module is a pure,
deterministic function of the margin.
"""

from __future__ import annotations

import math

#: Short-term Es/N0 jitter (dB, 1-sigma) around the budget's prediction.
#: 0.8 dB is representative of small-aperture stations: ~0.3-0.5 dB of
#: tropospheric scintillation at X-band plus pointing/implementation
#: losses on a 1 m dish.
DEFAULT_SIGMA_DB = 0.8


def decode_probability(esn0_db: float, required_esn0_db: float,
                       sigma_db: float = DEFAULT_SIGMA_DB) -> float:
    """Probability one station decodes a frame sent at a fixed MODCOD.

    ``esn0_db`` is the station's predicted Es/N0 for the pass (its own
    geometry and its own weather); ``required_esn0_db`` is the threshold
    of the MODCOD the *transmitter* committed to -- in diversity
    reception every listener must decode the primary's stream, so a
    weaker secondary evaluates against the primary's threshold, not one
    it could have closed itself.
    """
    if sigma_db <= 0.0:
        raise ValueError("sigma_db must be positive")
    margin = esn0_db - required_esn0_db
    return 0.5 * (1.0 + math.erf(margin / (sigma_db * math.sqrt(2.0))))


def decode_probability_batch(esn0_db, required_esn0_db,
                             sigma_db: float = DEFAULT_SIGMA_DB):
    """Vector form of :func:`decode_probability`.

    Evaluates the scalar function element by element (``math.erf`` has no
    numpy twin in the stdlib stack), so batch and scalar paths are
    bit-identical by construction -- the same contract the link-budget
    kernels keep.
    """
    import numpy as np

    esn0 = np.asarray(esn0_db, dtype=float)
    required = np.broadcast_to(
        np.asarray(required_esn0_db, dtype=float), esn0.shape
    )
    return np.array([
        decode_probability(float(e), float(r), sigma_db)
        for e, r in zip(esn0.ravel(), required.ravel())
    ]).reshape(esn0.shape)
