"""Forecast views over a truth weather field.

DGS schedules against *predicted* weather (Sec. 3.2: "We use weather
forecasts for a region ... to predict this component of the loss"), so the
scheduler must not read the truth field directly.  :class:`ForecastProvider`
wraps a truth provider and corrupts it with lead-time-dependent error:

* multiplicative lognormal error on rain rate whose sigma grows with lead
  time (a standard verification result for precipitation forecasts);
* occasional misses (forecast dry, truth wet) and false alarms at long
  leads.

:class:`PerfectForecast` is the zero-error wrapper used to isolate
scheduling quality from forecast quality in ablations.
"""

from __future__ import annotations

import math
import random
from datetime import datetime

from repro.weather.cells import WeatherSample
from repro.weather.provider import WeatherProvider


class PerfectForecast:
    """A forecast that simply reveals the truth (oracle ablation)."""

    def __init__(self, truth: WeatherProvider):
        self.truth = truth

    def forecast(self, lat_deg: float, lon_deg: float, issued_at: datetime,
                 valid_at: datetime) -> WeatherSample:
        return self.truth.sample(lat_deg, lon_deg, valid_at)


class ForecastProvider:
    """Truth plus lead-time-dependent, deterministic forecast error.

    Parameters
    ----------
    truth:
        The underlying real atmosphere.
    error_growth_per_day:
        Lognormal sigma added per day of lead time (0.35/day is typical of
        operational precipitation forecasts at the rain/no-rain scale).
    miss_probability_per_day:
        Probability per day of lead that a wet truth is forecast dry (and
        symmetric false alarms on dry truth).
    seed:
        Error realization seed, independent of the weather seed.
    """

    def __init__(
        self,
        truth: WeatherProvider,
        error_growth_per_day: float = 0.35,
        miss_probability_per_day: float = 0.08,
        seed: int = 7,
    ):
        if error_growth_per_day < 0.0:
            raise ValueError("error growth cannot be negative")
        if not 0.0 <= miss_probability_per_day <= 1.0:
            raise ValueError("miss probability must be a probability")
        self.truth = truth
        self.error_growth_per_day = error_growth_per_day
        self.miss_probability_per_day = miss_probability_per_day
        self.seed = seed

    def _rng(self, lat: float, lon: float, issued_at: datetime,
             valid_at: datetime) -> random.Random:
        key = (
            f"{self.seed}:{round(lat, 2)}:{round(lon, 2)}:"
            f"{issued_at.replace(second=0, microsecond=0).isoformat()}:"
            f"{valid_at.replace(second=0, microsecond=0).isoformat()}"
        )
        return random.Random(key)

    def forecast(self, lat_deg: float, lon_deg: float, issued_at: datetime,
                 valid_at: datetime) -> WeatherSample:
        """Forecast for ``valid_at`` as issued at ``issued_at``.

        Lead times <= 0 return the truth (nowcast).
        """
        truth = self.truth.sample(lat_deg, lon_deg, valid_at)
        lead_days = (valid_at - issued_at).total_seconds() / 86400.0
        if lead_days <= 0.0:
            return truth
        rng = self._rng(lat_deg, lon_deg, issued_at, valid_at)
        sigma = self.error_growth_per_day * lead_days
        factor = math.exp(rng.gauss(-0.5 * sigma * sigma, sigma))
        miss_p = min(0.5, self.miss_probability_per_day * lead_days)
        rain = truth.rain_rate_mm_h * factor
        cloud = truth.cloud_water_kg_m2 * factor
        if truth.is_raining and rng.random() < miss_p:
            rain = 0.0  # missed event
        elif not truth.is_raining and rng.random() < miss_p:
            rain = rng.expovariate(0.5)  # false alarm
        return WeatherSample(
            rain_rate_mm_h=rain,
            cloud_water_kg_m2=cloud,
            temperature_k=truth.temperature_k,
        )
