"""Weather provider protocol and trivial providers for tests and ablations.

The scheduler and simulator depend only on this protocol -- the synthetic
rain-cell field, the forecast wrapper, a clear-sky stub, and any future
real-data loader are interchangeable.
"""

from __future__ import annotations

from datetime import datetime
from typing import Protocol, runtime_checkable

from repro.weather.cells import WeatherSample


@runtime_checkable
class WeatherProvider(Protocol):
    """Anything that can report point weather: the Dark Sky role."""

    def sample(self, lat_deg: float, lon_deg: float,
               when: datetime) -> WeatherSample:
        """Weather at a location and UTC instant."""
        ...


class QuantizedWeatherCache:
    """Memoizes a provider on a (location, time-bucket) grid.

    Rain systems decorrelate over hours; quantizing lookups to
    ``period_s`` (default 5 minutes) loses nothing physically and makes
    minute-cadence simulation loops ~period/step times cheaper.  The cache
    is LRU-bounded so week-long simulations do not grow without bound.
    """

    def __init__(self, inner: WeatherProvider, period_s: float = 300.0,
                 max_entries: int = 200_000):
        if period_s <= 0:
            raise ValueError("period must be positive")
        self.inner = inner
        self.period_s = period_s
        self.max_entries = max_entries
        self._cache: dict[tuple, WeatherSample] = {}
        #: Lifetime hit/miss totals, read by the observability layer.
        self.hits = 0
        self.misses = 0

    def sample(self, lat_deg: float, lon_deg: float,
               when: datetime) -> WeatherSample:
        bucket = int(when.timestamp() // self.period_s)
        key = (round(lat_deg, 3), round(lon_deg, 3), bucket)
        hit = self._cache.get(key)
        if hit is not None:
            self.hits += 1
            return hit
        self.misses += 1
        value = self.inner.sample(lat_deg, lon_deg, when)
        if len(self._cache) >= self.max_entries:
            self._cache.clear()
        self._cache[key] = value
        return value


class ClearSkyProvider:
    """No rain, no clouds, ever.  Isolates geometry from weather effects."""

    #: Every sample is identically zero, so batch consumers (the edge
    #: pricing kernel) may skip per-station sampling entirely.
    always_clear = True

    def sample(self, lat_deg: float, lon_deg: float,
               when: datetime) -> WeatherSample:
        return WeatherSample(rain_rate_mm_h=0.0, cloud_water_kg_m2=0.0)


class ConstantWeatherProvider:
    """The same sample everywhere, always.  Useful for budget unit tests."""

    def __init__(self, sample: WeatherSample):
        self._sample = sample

    def sample(self, lat_deg: float, lon_deg: float,
               when: datetime) -> WeatherSample:
        return self._sample
