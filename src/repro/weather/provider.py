"""Weather provider protocol and trivial providers for tests and ablations.

The scheduler and simulator depend only on this protocol -- the synthetic
rain-cell field, the forecast wrapper, a clear-sky stub, and any future
real-data loader are interchangeable.
"""

from __future__ import annotations

from datetime import datetime
from typing import Protocol, runtime_checkable

from repro.weather.cells import WeatherSample


@runtime_checkable
class WeatherProvider(Protocol):
    """Anything that can report point weather: the Dark Sky role."""

    def sample(self, lat_deg: float, lon_deg: float,
               when: datetime) -> WeatherSample:
        """Weather at a location and UTC instant."""
        ...


class QuantizedWeatherCache:
    """Memoizes a provider on a (location, time-bucket) grid.

    Rain systems decorrelate over hours; quantizing lookups to
    ``period_s`` (default 5 minutes) loses nothing physically and makes
    minute-cadence simulation loops ~period/step times cheaper.  The cache
    is LRU-bounded so week-long simulations do not grow without bound.
    """

    def __init__(self, inner: WeatherProvider, period_s: float = 300.0,
                 max_entries: int = 200_000):
        if period_s <= 0:
            raise ValueError("period must be positive")
        self.inner = inner
        self.period_s = period_s
        #: Published bucket width.  Schedulers that memoize per-station
        #: samples (``scheduling.scheduler._StationWeatherMemo``) key their
        #: staleness stamps on ``int(when.timestamp() // quantize_s)`` so
        #: that they re-sample exactly when this cache would miss anyway;
        #: the memo then issues the *same first call per bucket* the
        #: unmemoized loop would have issued, keeping cache contents (which
        #: depend on the first ``when`` seen per bucket) bit-identical.
        self.quantize_s = period_s
        self.max_entries = max_entries
        self._cache: dict[tuple, WeatherSample] = {}
        #: Last (when, bucket) seen, compared by object identity: loops
        #: sample many stations at one shared instant, and
        #: ``datetime.timestamp()`` on naive datetimes costs a libc
        #: ``mktime`` round-trip per call.  Identity on an immutable
        #: datetime implies an equal timestamp, so this changes nothing.
        self._when_memo: tuple[datetime, int] | None = None
        #: Lifetime hit/miss totals, read by the observability layer.
        self.hits = 0
        self.misses = 0

    def sample(self, lat_deg: float, lon_deg: float,
               when: datetime) -> WeatherSample:
        memo = self._when_memo
        if memo is not None and memo[0] is when:
            bucket = memo[1]
        else:
            bucket = int(when.timestamp() // self.period_s)
            self._when_memo = (when, bucket)
        key = (round(lat_deg, 3), round(lon_deg, 3), bucket)
        hit = self._cache.get(key)
        if hit is not None:
            self.hits += 1
            return hit
        self.misses += 1
        value = self.inner.sample(lat_deg, lon_deg, when)
        if len(self._cache) >= self.max_entries:
            self._cache.clear()
        self._cache[key] = value
        return value

    def sample_prequantized(self, lat_q: float, lon_q: float,
                            lat_deg: float, lon_deg: float,
                            when: datetime) -> WeatherSample:
        """:meth:`sample` with the caller holding pre-rounded coordinates.

        ``lat_q``/``lon_q`` must equal ``round(lat_deg, 3)`` /
        ``round(lon_deg, 3)``; fixed-location callers (the scheduler's
        per-station memo) round once instead of twice per sample.  Cache
        keys, counters, and miss sampling (which uses the *unrounded*
        coordinates, as :meth:`sample` does) are identical.
        """
        memo = self._when_memo
        if memo is not None and memo[0] is when:
            bucket = memo[1]
        else:
            bucket = int(when.timestamp() // self.period_s)
            self._when_memo = (when, bucket)
        key = (lat_q, lon_q, bucket)
        hit = self._cache.get(key)
        if hit is not None:
            self.hits += 1
            return hit
        self.misses += 1
        value = self.inner.sample(lat_deg, lon_deg, when)
        if len(self._cache) >= self.max_entries:
            self._cache.clear()
        self._cache[key] = value
        return value


class ClearSkyProvider:
    """No rain, no clouds, ever.  Isolates geometry from weather effects."""

    #: Every sample is identically zero, so batch consumers (the edge
    #: pricing kernel) may skip per-station sampling entirely.
    always_clear = True

    def sample(self, lat_deg: float, lon_deg: float,
               when: datetime) -> WeatherSample:
        return WeatherSample(rain_rate_mm_h=0.0, cloud_water_kg_m2=0.0)


class ConstantWeatherProvider:
    """The same sample everywhere, always.  Useful for budget unit tests."""

    def __init__(self, sample: WeatherSample):
        self._sample = sample

    def sample(self, lat_deg: float, lon_deg: float,
               when: datetime) -> WeatherSample:
        return self._sample
