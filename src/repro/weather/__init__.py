"""Synthetic weather substrate (the paper's Dark Sky API substitute).

The paper pulls per-station weather from the Dark Sky API [7]; that service
is gone and was never redistributable, so this package generates a
*synthetic but statistically honest* global weather process:

* :mod:`repro.weather.cells` -- rain is produced by moving, finite-lifetime
  rain cells (mesoscale systems) advected zonally, giving the real
  spatio-temporal correlation structure that makes DGS's geographic
  diversity argument meaningful: weather is correlated over ~hundreds of km
  and a few hours, and *de*-correlated across continents.
* :mod:`repro.weather.climate` -- latitude-banded climate zones set cell
  density and intensity (tropics rain more than poles).
* :mod:`repro.weather.forecast` -- the scheduler never sees truth; it sees
  a forecast whose error grows with lead time, exercising the same
  prediction-based code path the paper describes.
* :mod:`repro.weather.storms` -- advected synoptic storm tracks layered on
  the base field: moving regional wipeouts that take out correlated
  clusters of stations for hours, the scenario geographic redundancy is
  supposed to absorb.

Everything is deterministic given a seed.
"""

from repro.weather.cells import RainCellField, WeatherSample
from repro.weather.climate import ClimateZone, climate_zone_for_latitude
from repro.weather.forecast import ForecastProvider, PerfectForecast
from repro.weather.provider import (
    ClearSkyProvider,
    ConstantWeatherProvider,
    QuantizedWeatherCache,
    WeatherProvider,
)
from repro.weather.storms import StormCell, StormField, StormWeatherProvider

__all__ = [
    "WeatherSample",
    "RainCellField",
    "StormCell",
    "StormField",
    "StormWeatherProvider",
    "ClimateZone",
    "climate_zone_for_latitude",
    "ForecastProvider",
    "PerfectForecast",
    "WeatherProvider",
    "ClearSkyProvider",
    "ConstantWeatherProvider",
    "QuantizedWeatherCache",
]
