"""Advected storm tracks: moving regional wipeouts over the rain field.

The stationary statistics of :mod:`repro.weather.cells` exercise *local*
weather loss, but the scenario that actually stresses a geographically
distributed ground segment is a **moving storm system** that takes out a
correlated cluster of stations for hours and then moves on ("Mapping the
Storm" finds severe-weather outages on LEO networks arrive exactly this
way).  This module adds that process:

* :class:`StormCell` -- one synoptic-scale system (hundreds of km core,
  tens of hours of lifetime, heavy rain) with a birth point, a great-arc
  advection track, and a trapezoidal grow/sustain/decay envelope, so a
  region under the core is wiped out *flat* for a sustained window rather
  than grazed by a Gaussian tail.
* :class:`StormField` -- the seeded generator: Poisson storm births per
  24-hour epoch, with count scaled by ``rate`` and track speed scaled by
  ``speed_scale``.  Every draw derives from ``(seed, epoch index)`` via a
  string-keyed :class:`random.Random`, so two processes with the same
  seed advect the identical storms (the same bit-reproducibility contract
  the rain-cell field keeps).
* :class:`StormWeatherProvider` -- composition with the existing provider
  path: storms *add on top of* a base provider (normally the rain-cell
  field), so the background statistics are unchanged and everything
  downstream (ITU attenuation, forecasts, the quantized cache) works
  untouched.

Scenario knobs (``ScenarioSpec(weather="storms", storm_seed=...,
storm_rate=..., storm_speed=...)``) construct this stack via
``repro.core.scenarios.build_storm_weather``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from datetime import datetime

from repro.weather.cells import WeatherSample, _ORIGIN, _poisson, haversine_km
from repro.weather.provider import WeatherProvider

#: Storm systems live on synoptic timescales; seed them per day, not per
#: 6-hour rain epoch.
_STORM_EPOCH_HOURS = 24.0

#: Expected global storm births per day at ``rate=1.0``.
_BIRTHS_PER_DAY = 6.0

#: Lifetimes are clamped so a storm can span at most two extra epochs
#: beyond its birth epoch; :meth:`StormField.storm_at` scans that window.
_MAX_LIFETIME_S = 60.0 * 3600.0

#: Storms are seeded where ground stations actually are (and where
#: extratropical cyclones track): between the 65th parallels.
_LAT_LIMIT_DEG = 65.0


@dataclass(frozen=True)
class StormCell:
    """One advecting storm system.

    Same kinematics as :class:`repro.weather.cells.RainCell` (great-arc
    advection from the birth point), but synoptic scale and with a
    flat-topped footprint and trapezoidal envelope: inside the core the
    rain rate sits at ``peak_rain_mm_h`` for the sustained phase instead
    of only touching it at the cell centre for an instant.
    """

    birth_lat_deg: float
    birth_lon_deg: float
    birth_time_s: float  # seconds since the weather origin
    lifetime_s: float
    radius_km: float
    peak_rain_mm_h: float
    zonal_speed_km_h: float
    meridional_speed_km_h: float

    #: Fraction of the lifetime spent ramping up (and, mirrored, decaying).
    RAMP_FRACTION = 0.2

    def center_at(self, time_s: float) -> tuple[float, float]:
        """Storm centre (lat, lon) at an absolute time (s since origin)."""
        age_h = (time_s - self.birth_time_s) / 3600.0
        lat = self.birth_lat_deg + self.meridional_speed_km_h * age_h / 111.0
        lat = max(-89.9, min(89.9, lat))
        km_per_deg_lon = 111.0 * max(0.05, math.cos(math.radians(lat)))
        lon = self.birth_lon_deg + self.zonal_speed_km_h * age_h / km_per_deg_lon
        return lat, ((lon + 180.0) % 360.0) - 180.0

    def envelope_at(self, time_s: float) -> float:
        """Trapezoidal grow/sustain/decay envelope in [0, 1]."""
        age = time_s - self.birth_time_s
        if age < 0.0 or age > self.lifetime_s:
            return 0.0
        ramp = self.RAMP_FRACTION * self.lifetime_s
        return min(1.0, age / ramp, (self.lifetime_s - age) / ramp)

    def footprint_at(self, lat_deg: float, lon_deg: float,
                     time_s: float) -> float:
        """Spatial x temporal intensity factor at a point, in [0, 1].

        The spatial profile is a super-Gaussian, ``exp(-(d/r)^4 / 2)``:
        nearly flat inside the core radius (the wipeout), falling off
        fast beyond it -- regional, not merely local.
        """
        env = self.envelope_at(time_s)
        if env <= 0.0:
            return 0.0
        clat, clon = self.center_at(time_s)
        dist = haversine_km(lat_deg, lon_deg, clat, clon)
        if dist > 2.5 * self.radius_km:
            return 0.0
        return env * math.exp(-0.5 * (dist / self.radius_km) ** 4)


class StormField:
    """The seeded storm-track process.

    Parameters
    ----------
    seed:
        Master storm seed, independent of the rain-cell seed; identical
        seeds advect identical storms in every process.
    rate:
        Multiplier on the expected storm births per day (0 = no storms).
    speed_scale:
        Multiplier on track speeds: >1 sweeps the wipeout across the
        network faster, <1 parks it over a region for longer.
    intensity_scale:
        Multiplier on every storm's peak rain rate.
    """

    def __init__(self, seed: int = 17, rate: float = 1.0,
                 speed_scale: float = 1.0, intensity_scale: float = 1.0):
        if rate < 0.0:
            raise ValueError("storm rate cannot be negative")
        if speed_scale < 0.0:
            raise ValueError("storm speed scale cannot be negative")
        if intensity_scale < 0.0:
            raise ValueError("intensity_scale cannot be negative")
        self.seed = seed
        self.rate = rate
        self.speed_scale = speed_scale
        self.intensity_scale = intensity_scale
        self._epoch_cells: dict[int, list[StormCell]] = {}

    # -- generation ---------------------------------------------------------

    def _cells_for_epoch(self, epoch_index: int) -> list[StormCell]:
        cached = self._epoch_cells.get(epoch_index)
        if cached is not None:
            return cached
        rng = random.Random(f"{self.seed}:storm:{epoch_index}")
        epoch_start_s = epoch_index * _STORM_EPOCH_HOURS * 3600.0
        expected = self.rate * _BIRTHS_PER_DAY * (_STORM_EPOCH_HOURS / 24.0)
        cells = [
            self._spawn(rng, epoch_start_s) for _ in range(_poisson(rng, expected))
        ]
        self._epoch_cells[epoch_index] = cells
        # Keep the cache bounded for long simulations.
        if len(self._epoch_cells) > 16:
            del self._epoch_cells[min(self._epoch_cells)]
        return cells

    def _spawn(self, rng: random.Random, epoch_start_s: float) -> StormCell:
        # Area-uniform latitude between the +-65 deg parallels.
        sin_limit = math.sin(math.radians(_LAT_LIMIT_DEG))
        lat = math.degrees(math.asin(rng.uniform(-sin_limit, sin_limit)))
        # Tropical systems track westward, extratropical ones eastward.
        zonal_sign = -1.0 if abs(lat) < 23.0 else 1.0
        zonal = zonal_sign * 35.0 * rng.uniform(0.6, 1.4) * self.speed_scale
        # Poleward drift, as real cyclones recurve.
        meridional = (
            math.copysign(1.0, lat) * rng.uniform(0.0, 8.0) * self.speed_scale
        )
        return StormCell(
            birth_lat_deg=lat,
            birth_lon_deg=rng.uniform(-180.0, 180.0),
            birth_time_s=epoch_start_s
            + rng.uniform(0.0, _STORM_EPOCH_HOURS * 3600.0),
            lifetime_s=min(
                _MAX_LIFETIME_S,
                max(6.0 * 3600.0, rng.expovariate(1.0 / 30.0) * 3600.0),
            ),
            radius_km=max(150.0, rng.lognormvariate(math.log(400.0), 0.35)),
            peak_rain_mm_h=(15.0 + rng.expovariate(1.0 / 20.0))
            * self.intensity_scale,
            zonal_speed_km_h=zonal,
            meridional_speed_km_h=meridional,
        )

    # -- evaluation ---------------------------------------------------------

    def storm_at(self, lat_deg: float, lon_deg: float,
                 when: datetime) -> tuple[float, float]:
        """(rain mm/h, cloud kg/m^2) the storm process adds at a point.

        A storm born late in epoch ``e`` can still rage in ``e+2``
        (lifetimes are clamped to 60 h against 24 h epochs), so the scan
        covers the birth epochs that could reach ``when``.
        """
        time_s = (when - _ORIGIN).total_seconds()
        epoch = int(time_s // (_STORM_EPOCH_HOURS * 3600.0))
        rain = 0.0
        cloud = 0.0
        for ep in range(epoch - 2, epoch + 1):
            for cell in self._cells_for_epoch(ep):
                factor = cell.footprint_at(lat_deg, lon_deg, time_s)
                if factor <= 0.0:
                    continue
                rain += cell.peak_rain_mm_h * factor
                # The storm shield: thick cloud over the whole core.
                cloud += 0.12 * cell.peak_rain_mm_h * factor
        return rain, cloud

    def sample(self, lat_deg: float, lon_deg: float,
               when: datetime) -> WeatherSample:
        """The storm process alone as a :class:`WeatherProvider` (tests)."""
        rain, cloud = self.storm_at(lat_deg, lon_deg, when)
        temperature = 288.0 - 30.0 * (abs(lat_deg) / 90.0) ** 1.5
        return WeatherSample(
            rain_rate_mm_h=rain,
            cloud_water_kg_m2=min(cloud, 6.0),
            temperature_k=temperature,
        )


class StormWeatherProvider:
    """Base weather plus advected storm tracks, as one provider.

    Composition keeps the contract every consumer already relies on: the
    result is a plain :class:`WeatherSample`, the base field's statistics
    are untouched away from storms (a zero storm contribution returns the
    base sample object itself), and the stack still wraps cleanly in
    :class:`repro.weather.provider.QuantizedWeatherCache` and
    :class:`repro.weather.forecast.ForecastProvider`.
    """

    def __init__(self, base: WeatherProvider, storms: StormField):
        self.base = base
        self.storms = storms

    def sample(self, lat_deg: float, lon_deg: float,
               when: datetime) -> WeatherSample:
        base = self.base.sample(lat_deg, lon_deg, when)
        rain, cloud = self.storms.storm_at(lat_deg, lon_deg, when)
        if rain <= 0.0 and cloud <= 0.0:
            return base
        return WeatherSample(
            rain_rate_mm_h=base.rain_rate_mm_h + rain,
            cloud_water_kg_m2=min(base.cloud_water_kg_m2 + cloud, 6.0),
            temperature_k=base.temperature_k,
        )
