"""Latitude-banded climate zones controlling synthetic rain statistics.

The bands are a coarse Koppen-like summary tuned so that long-run rain
occurrence and intensity are plausible: ~8-12% wet-time in the tropics with
convective intensities, ~5-7% in mid-latitudes with stratiform rain, and
very light, rare precipitation at polar latitudes.  These statistics drive
the rain-cell generator in :mod:`repro.weather.cells`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ClimateZone:
    """Rain-process parameters for a latitude band.

    Attributes
    ----------
    cell_density_per_mm_km2:
        Expected number of active rain cells per million km^2 at any
        instant; sets how often a station is under rain.
    mean_rain_rate_mm_h:
        Mean of the (exponential-tailed) peak rain-rate distribution for
        cells born in this zone.
    mean_cell_radius_km, mean_cell_lifetime_h:
        Spatial and temporal scales of the cells.
    background_cloud_kg_m2:
        Mean non-precipitating cloud liquid water (stratus background).
    zonal_wind_km_h:
        Mean advection speed (positive = eastward); mid-latitude westerlies
        move systems east, tropical easterlies move them west.
    """

    name: str
    cell_density_per_mm_km2: float
    mean_rain_rate_mm_h: float
    mean_cell_radius_km: float
    mean_cell_lifetime_h: float
    background_cloud_kg_m2: float
    zonal_wind_km_h: float


# Densities are tuned so that instantaneous rain-area coverage (cells x
# pi*r^2 / band area) lands at ~6% in the tropics, ~4-5% mid-latitude, and
# ~2% polar -- matching climatological wet-time fractions.
_TROPICAL = ClimateZone("tropical", 0.35, 18.0, 150.0, 4.0, 0.25, -20.0)
_SUBTROPICAL = ClimateZone("subtropical", 0.15, 10.0, 200.0, 6.0, 0.15, 10.0)
_TEMPERATE = ClimateZone("temperate", 0.16, 6.0, 300.0, 9.0, 0.20, 45.0)
_SUBPOLAR = ClimateZone("subpolar", 0.12, 3.0, 350.0, 10.0, 0.18, 55.0)
_POLAR = ClimateZone("polar", 0.08, 1.5, 250.0, 8.0, 0.08, 25.0)


def climate_zone_for_latitude(latitude_deg: float) -> ClimateZone:
    """The climate band containing a latitude (hemisphere-symmetric)."""
    lat = abs(latitude_deg)
    if lat > 90.0:
        raise ValueError(f"latitude out of range: {latitude_deg}")
    if lat < 15.0:
        return _TROPICAL
    if lat < 35.0:
        return _SUBTROPICAL
    if lat < 55.0:
        return _TEMPERATE
    if lat < 70.0:
        return _SUBPOLAR
    return _POLAR


ALL_ZONES = (_TROPICAL, _SUBTROPICAL, _TEMPERATE, _SUBPOLAR, _POLAR)

#: Band edges used by the generator to decide how many cells to seed per band.
ZONE_BANDS = (
    (-90.0, -70.0, _POLAR),
    (-70.0, -55.0, _SUBPOLAR),
    (-55.0, -35.0, _TEMPERATE),
    (-35.0, -15.0, _SUBTROPICAL),
    (-15.0, 15.0, _TROPICAL),
    (15.0, 35.0, _SUBTROPICAL),
    (35.0, 55.0, _TEMPERATE),
    (55.0, 70.0, _SUBPOLAR),
    (70.0, 90.0, _POLAR),
)
