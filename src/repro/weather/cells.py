"""Moving-rain-cell weather field: deterministic, spatially correlated rain.

The generator seeds rain cells per 6-hour epoch and latitude band with a
Poisson count matching the band's climate-zone density, then advects each
cell zonally over its lifetime.  Rain rate at a point is the sum of
Gaussian footprints of the active cells; cloud liquid water follows the
cells (anvil, at twice the rain radius) plus a smooth harmonic stratus
background.  Every number derives from ``(seed, epoch index, band index)``
so two processes with the same seed see the identical atmosphere.

Per-station queries are fast because cells are pre-filtered per
(station, epoch): only cells whose advection track passes near the station
are evaluated in the inner loop.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from datetime import datetime, timedelta

import numpy as np

from repro.weather.climate import (
    ZONE_BANDS,
    ClimateZone,
    climate_zone_for_latitude,
)

_EARTH_RADIUS_KM = 6371.0
_EPOCH_HOURS = 6.0
_ORIGIN = datetime(2000, 1, 1)


def haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance between two geodetic points, km."""
    p1, p2 = math.radians(lat1), math.radians(lat2)
    dp = p2 - p1
    dl = math.radians(lon2 - lon1)
    a = math.sin(dp / 2.0) ** 2 + math.cos(p1) * math.cos(p2) * math.sin(dl / 2.0) ** 2
    return 2.0 * _EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(a)))


def _haversine_km_vec(lat1_rad, lon1_rad, lat2_rad, lon2_rad):
    """Broadcasting haversine; all inputs already in radians."""
    dp = lat2_rad - lat1_rad
    dl = lon2_rad - lon1_rad
    a = (
        np.sin(dp / 2.0) ** 2
        + np.cos(lat1_rad) * np.cos(lat2_rad) * np.sin(dl / 2.0) ** 2
    )
    return 2.0 * _EARTH_RADIUS_KM * np.arcsin(np.minimum(1.0, np.sqrt(a)))


@dataclass(frozen=True)
class WeatherSample:
    """Point weather at one location and instant."""

    rain_rate_mm_h: float
    cloud_water_kg_m2: float
    temperature_k: float = 283.0

    @property
    def is_raining(self) -> bool:
        return self.rain_rate_mm_h > 0.1


@dataclass(frozen=True)
class RainCell:
    """One advecting rain cell."""

    birth_lat_deg: float
    birth_lon_deg: float
    birth_time_s: float  # seconds since _ORIGIN
    lifetime_s: float
    radius_km: float
    peak_rain_mm_h: float
    zonal_speed_km_h: float
    meridional_speed_km_h: float

    def center_at(self, time_s: float) -> tuple[float, float]:
        """Cell centre (lat, lon) at an absolute time (seconds since origin)."""
        age_h = (time_s - self.birth_time_s) / 3600.0
        lat = self.birth_lat_deg + self.meridional_speed_km_h * age_h / 111.0
        lat = max(-89.9, min(89.9, lat))
        km_per_deg_lon = 111.0 * max(0.05, math.cos(math.radians(lat)))
        lon = self.birth_lon_deg + self.zonal_speed_km_h * age_h / km_per_deg_lon
        return lat, ((lon + 180.0) % 360.0) - 180.0

    def envelope_at(self, time_s: float) -> float:
        """Grow/decay temporal envelope in [0, 1]; 0 outside the lifetime."""
        age = time_s - self.birth_time_s
        if age < 0.0 or age > self.lifetime_s:
            return 0.0
        return math.sin(math.pi * age / self.lifetime_s) ** 2


def _band_area_mm_km2(lat_lo: float, lat_hi: float) -> float:
    """Area of a latitude band in units of 10^6 km^2."""
    area = (
        2.0
        * math.pi
        * _EARTH_RADIUS_KM**2
        * abs(math.sin(math.radians(lat_hi)) - math.sin(math.radians(lat_lo)))
    )
    return area / 1e6


class RainCellField:
    """The global synthetic weather process.

    Parameters
    ----------
    seed:
        Master seed; identical seeds give identical weather everywhere.
    intensity_scale:
        Multiplies every cell's peak rain rate (ablation knob: 0 disables
        rain entirely, >1 simulates a wetter month).
    """

    def __init__(self, seed: int = 0, intensity_scale: float = 1.0):
        if intensity_scale < 0.0:
            raise ValueError("intensity_scale cannot be negative")
        self.seed = seed
        self.intensity_scale = intensity_scale
        self._epoch_cells: dict[int, list[RainCell]] = {}
        self._epoch_arrays: dict[int, dict[str, np.ndarray]] = {}
        self._station_cache: dict[tuple[float, float, int], list[RainCell]] = {}
        #: Concatenation of ``_relevant_cells`` over the 4-epoch scan
        #: window, keyed like the station cache, with each cell's fields
        #: pre-extracted into a plain tuple.  ``sample`` is on the
        #: scheduler's per-step path, so one dict probe replacing four
        #: (plus per-cell dataclass attribute chasing) is measurable at
        #: fleet scale.
        self._window_cache: dict[tuple[float, float, int], list[tuple]] = {}

    # -- cell generation ---------------------------------------------------

    def _cells_for_epoch(self, epoch_index: int) -> list[RainCell]:
        cached = self._epoch_cells.get(epoch_index)
        if cached is not None:
            return cached
        cells: list[RainCell] = []
        epoch_start_s = epoch_index * _EPOCH_HOURS * 3600.0
        for band_index, (lat_lo, lat_hi, zone) in enumerate(ZONE_BANDS):
            rng = random.Random(f"{self.seed}:{epoch_index}:{band_index}")
            cells.extend(
                self._seed_band(rng, lat_lo, lat_hi, zone, epoch_start_s)
            )
        self._epoch_cells[epoch_index] = cells
        # Keep the cache bounded for long simulations.
        if len(self._epoch_cells) > 64:
            oldest = min(self._epoch_cells)
            del self._epoch_cells[oldest]
            self._epoch_arrays.pop(oldest, None)
            self._station_cache = {
                k: v for k, v in self._station_cache.items() if k[2] != oldest
            }
            # Window lists span several epochs; rebuilding them is cheap
            # and pruning only ever happens on multi-week simulations.
            self._window_cache.clear()
        return cells

    def _arrays_for_epoch(self, epoch_index: int) -> dict[str, np.ndarray]:
        """Column arrays of the epoch's cells for the vectorized pre-filter:
        start/end track positions (radians), conservative reach, and travel."""
        cached = self._epoch_arrays.get(epoch_index)
        if cached is not None:
            return cached
        cells = self._cells_for_epoch(epoch_index)
        starts = [c.center_at(c.birth_time_s) for c in cells]
        ends = [c.center_at(c.birth_time_s + c.lifetime_s) for c in cells]
        start_lat = np.radians([p[0] for p in starts])
        start_lon = np.radians([p[1] for p in starts])
        end_lat = np.radians([p[0] for p in ends])
        end_lon = np.radians([p[1] for p in ends])
        arrays = {
            "start_lat": start_lat,
            "start_lon": start_lon,
            "end_lat": end_lat,
            "end_lon": end_lon,
            "reach": 3.0 * np.array([c.radius_km for c in cells]),
            "travel": _haversine_km_vec(
                start_lat, start_lon, end_lat, end_lon
            ),
        }
        self._epoch_arrays[epoch_index] = arrays
        return arrays

    def _seed_band(self, rng: random.Random, lat_lo: float, lat_hi: float,
                   zone: ClimateZone, epoch_start_s: float) -> list[RainCell]:
        # Births during the epoch so that the *steady-state* count of live
        # cells matches density * area: births = density*area * epoch/lifetime.
        area = _band_area_mm_km2(lat_lo, lat_hi)
        expected_births = (
            zone.cell_density_per_mm_km2
            * area
            * (_EPOCH_HOURS / max(zone.mean_cell_lifetime_h, 0.1))
        )
        # Poisson sample via inversion (keeps us off numpy's global RNG).
        count = _poisson(rng, expected_births)
        cells = []
        for _ in range(count):
            # Area-uniform latitude within the band.
            u = rng.random()
            sin_lo, sin_hi = math.sin(math.radians(lat_lo)), math.sin(math.radians(lat_hi))
            lat = math.degrees(math.asin(sin_lo + u * (sin_hi - sin_lo)))
            cells.append(
                RainCell(
                    birth_lat_deg=lat,
                    birth_lon_deg=rng.uniform(-180.0, 180.0),
                    birth_time_s=epoch_start_s + rng.uniform(0.0, _EPOCH_HOURS * 3600.0),
                    lifetime_s=rng.expovariate(1.0 / zone.mean_cell_lifetime_h) * 3600.0,
                    radius_km=max(30.0, rng.lognormvariate(
                        math.log(zone.mean_cell_radius_km), 0.4)),
                    peak_rain_mm_h=rng.expovariate(1.0 / zone.mean_rain_rate_mm_h)
                    * self.intensity_scale,
                    zonal_speed_km_h=zone.zonal_wind_km_h * rng.uniform(0.5, 1.5),
                    meridional_speed_km_h=rng.uniform(-10.0, 10.0),
                )
            )
        return cells

    # -- station-local evaluation -------------------------------------------

    def _relevant_cells(self, lat: float, lon: float, epoch_index: int) -> list[RainCell]:
        """Cells from an epoch that could ever rain on (lat, lon).

        Conservative reach: start/end positions +- 3 radii (cloud anvil
        extends to 2 radii; 3 adds slack for the coarse 2-point check).
        The distance tests run vectorized over the whole epoch's cells.
        """
        key = (round(lat, 3), round(lon, 3), epoch_index)
        cached = self._station_cache.get(key)
        if cached is not None:
            return cached
        cells = self._cells_for_epoch(epoch_index)
        if not cells:
            self._station_cache[key] = []
            return []
        arr = self._arrays_for_epoch(epoch_index)
        lat_r, lon_r = math.radians(lat), math.radians(lon)
        d_start = _haversine_km_vec(lat_r, lon_r, arr["start_lat"], arr["start_lon"])
        d_end = _haversine_km_vec(lat_r, lon_r, arr["end_lat"], arr["end_lon"])
        limit = arr["reach"] + arr["travel"]
        mask = ((d_start <= limit) & (d_end <= limit)) | \
            (d_start <= arr["reach"]) | (d_end <= arr["reach"])
        relevant = [cells[i] for i in np.nonzero(mask)[0]]
        self._station_cache[key] = relevant
        return relevant

    def _window_cells(self, lat_deg: float, lon_deg: float,
                      epoch: int) -> list[tuple]:
        """Relevant cells over the 4-epoch scan window, concatenated.

        A cell born late in epoch e can still be alive in epoch e+1 (and
        beyond for long-lived systems), so ``sample`` scans epochs
        ``epoch-3 .. epoch``.  The concatenation preserves that scan
        order, so summing over this list accumulates in exactly the same
        sequence as the per-epoch loops it replaces.  Each entry is the
        cell's fields as a flat tuple so the inner loop reads locals
        instead of chasing dataclass attributes.
        """
        key = (round(lat_deg, 3), round(lon_deg, 3), epoch)
        cached = self._window_cache.get(key)
        if cached is None:
            cached = [
                (
                    cell.birth_time_s,
                    cell.lifetime_s,
                    cell.radius_km,
                    cell.peak_rain_mm_h,
                    cell.zonal_speed_km_h,
                    cell.meridional_speed_km_h,
                    cell.birth_lat_deg,
                    cell.birth_lon_deg,
                )
                for ep in range(epoch - 3, epoch + 1)
                for cell in self._relevant_cells(lat_deg, lon_deg, ep)
            ]
            self._window_cache[key] = cached
        return cached

    def sample(self, lat_deg: float, lon_deg: float, when: datetime) -> WeatherSample:
        """Truth weather at a point and UTC instant.

        The cell loop inlines :meth:`RainCell.envelope_at` and
        :meth:`RainCell.center_at` expression-for-expression (the
        arithmetic must stay verbatim: the accumulated sums are part of
        the simulation's bit-reproducibility contract).
        """
        time_s = (when - _ORIGIN).total_seconds()
        epoch = int(time_s // (_EPOCH_HOURS * 3600.0))
        rain = 0.0
        cell_cloud = 0.0
        for (birth_s, lifetime_s, radius_km, peak_mm_h,
             zonal_km_h, meridional_km_h, birth_lat, birth_lon) in \
                self._window_cells(lat_deg, lon_deg, epoch):
            age = time_s - birth_s
            if age < 0.0 or age > lifetime_s:
                continue
            env = math.sin(math.pi * age / lifetime_s) ** 2
            if env <= 0.0:
                continue
            age_h = (time_s - birth_s) / 3600.0
            clat = birth_lat + meridional_km_h * age_h / 111.0
            clat = max(-89.9, min(89.9, clat))
            km_per_deg_lon = 111.0 * max(0.05, math.cos(math.radians(clat)))
            clon = birth_lon + zonal_km_h * age_h / km_per_deg_lon
            clon = ((clon + 180.0) % 360.0) - 180.0
            dist = haversine_km(lat_deg, lon_deg, clat, clon)
            if dist > 3.0 * radius_km:
                continue
            footprint = math.exp(-0.5 * (dist / radius_km) ** 2)
            rain += peak_mm_h * env * footprint
            # Cloud anvil: wider and persists at low rain.
            anvil = math.exp(-0.5 * (dist / (2.0 * radius_km)) ** 2)
            cell_cloud += 0.08 * peak_mm_h * env * anvil
        background = self._background_cloud(lat_deg, lon_deg, time_s)
        temperature = 288.0 - 30.0 * (abs(lat_deg) / 90.0) ** 1.5
        return WeatherSample(
            rain_rate_mm_h=rain,
            cloud_water_kg_m2=min(cell_cloud + background, 6.0),
            temperature_k=temperature,
        )

    def _background_cloud(self, lat: float, lon: float, time_s: float) -> float:
        """Smooth stratus background from a few deterministic harmonics."""
        zone = climate_zone_for_latitude(lat)
        t_days = time_s / 86400.0
        phase = (
            math.sin(math.radians(3.0 * lon) + 2.0 * math.pi * t_days / 5.0)
            + math.sin(math.radians(2.0 * lat) + 2.0 * math.pi * t_days / 3.0 + 1.7)
            + math.sin(math.radians(lon + 2.0 * lat) - 2.0 * math.pi * t_days / 7.0)
        ) / 3.0
        return zone.background_cloud_kg_m2 * max(0.0, 1.0 + phase)


def _poisson(rng: random.Random, lam: float) -> int:
    """Poisson sample; normal approximation above lambda=50 for speed."""
    if lam <= 0.0:
        return 0
    if lam > 50.0:
        return max(0, round(rng.gauss(lam, math.sqrt(lam))))
    limit = math.exp(-lam)
    count = 0
    product = rng.random()
    while product > limit:
        count += 1
        product *= rng.random()
    return count
