"""Classical Keplerian elements and an analytic Kepler + J2 propagator.

SGP4 (:mod:`repro.orbits.sgp4`) is the reference propagator for TLEs; this
module provides the textbook machinery that underlies it -- Kepler's
equation, element/state conversions -- plus a lighter propagator that
applies only two-body motion and the secular J2 drifts (RAAN regression,
argument-of-perigee rotation, mean-anomaly rate correction).  The light
propagator is useful for fast what-if sweeps and as an independent
cross-check on SGP4 in tests: for near-circular LEO the two agree to a few
kilometres over a day.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from datetime import datetime

import numpy as np

from repro.orbits.constants import WGS72, EarthModel
from repro.orbits.timebase import wrap_two_pi
from repro.orbits.tle import TLE

_TWO_PI = 2.0 * math.pi


def eccentric_anomaly_from_mean(mean_anomaly: float, eccentricity: float,
                                tol: float = 1e-12, max_iter: int = 50) -> float:
    """Solve Kepler's equation M = E - e*sin(E) for E (radians).

    Uses Newton iteration with a third-order Halley fallback step; converges
    for all 0 <= e < 1.
    """
    if not 0.0 <= eccentricity < 1.0:
        raise ValueError(f"eccentricity must be in [0, 1), got {eccentricity}")
    mean = wrap_two_pi(mean_anomaly)
    # Standard starter: E0 = M + e*sin(M) works everywhere in [0, 1).
    ecc_anom = mean + eccentricity * math.sin(mean)
    for _ in range(max_iter):
        f = ecc_anom - eccentricity * math.sin(ecc_anom) - mean
        fp = 1.0 - eccentricity * math.cos(ecc_anom)
        step = f / fp
        ecc_anom -= step
        if abs(step) < tol:
            return wrap_two_pi(ecc_anom)
    return wrap_two_pi(ecc_anom)


def true_anomaly_from_eccentric(ecc_anom: float, eccentricity: float) -> float:
    """True anomaly (radians) from eccentric anomaly."""
    beta = math.sqrt(1.0 - eccentricity * eccentricity)
    sin_nu = beta * math.sin(ecc_anom)
    cos_nu = math.cos(ecc_anom) - eccentricity
    return wrap_two_pi(math.atan2(sin_nu, cos_nu))


@dataclass(frozen=True)
class KeplerianElements:
    """Osculating classical elements; angles in radians, distances in km."""

    semi_major_axis_km: float
    eccentricity: float
    inclination_rad: float
    raan_rad: float
    argp_rad: float
    mean_anomaly_rad: float

    @classmethod
    def from_tle(cls, tle: TLE, model: EarthModel = WGS72) -> "KeplerianElements":
        """Interpret TLE mean elements as osculating (adequate for J2-only work)."""
        n_rad_s = tle.mean_motion_rev_day * _TWO_PI / 86400.0
        sma = (model.mu_km3_s2 / n_rad_s**2) ** (1.0 / 3.0)
        return cls(
            semi_major_axis_km=sma,
            eccentricity=tle.eccentricity,
            inclination_rad=math.radians(tle.inclination_deg),
            raan_rad=math.radians(tle.raan_deg),
            argp_rad=math.radians(tle.argp_deg),
            mean_anomaly_rad=math.radians(tle.mean_anomaly_deg),
        )

    @property
    def semi_latus_rectum_km(self) -> float:
        return self.semi_major_axis_km * (1.0 - self.eccentricity**2)

    @property
    def apogee_radius_km(self) -> float:
        return self.semi_major_axis_km * (1.0 + self.eccentricity)

    @property
    def perigee_radius_km(self) -> float:
        return self.semi_major_axis_km * (1.0 - self.eccentricity)

    def mean_motion_rad_s(self, model: EarthModel = WGS72) -> float:
        return math.sqrt(model.mu_km3_s2 / self.semi_major_axis_km**3)

    def period_seconds(self, model: EarthModel = WGS72) -> float:
        return _TWO_PI / self.mean_motion_rad_s(model)

    def to_state_vector(self, model: EarthModel = WGS72) -> tuple[np.ndarray, np.ndarray]:
        """Inertial position (km) and velocity (km/s) for these elements."""
        ecc_anom = eccentric_anomaly_from_mean(self.mean_anomaly_rad, self.eccentricity)
        nu = true_anomaly_from_eccentric(ecc_anom, self.eccentricity)
        p = self.semi_latus_rectum_km
        r = p / (1.0 + self.eccentricity * math.cos(nu))
        # Perifocal frame.
        r_pf = np.array([r * math.cos(nu), r * math.sin(nu), 0.0])
        vk = math.sqrt(model.mu_km3_s2 / p)
        v_pf = np.array(
            [-vk * math.sin(nu), vk * (self.eccentricity + math.cos(nu)), 0.0]
        )
        rot = _perifocal_to_inertial(self.raan_rad, self.inclination_rad, self.argp_rad)
        return rot @ r_pf, rot @ v_pf


def _perifocal_to_inertial(raan: float, incl: float, argp: float) -> np.ndarray:
    """Rotation matrix from the perifocal (PQW) frame to the inertial frame."""
    cos_o, sin_o = math.cos(raan), math.sin(raan)
    cos_i, sin_i = math.cos(incl), math.sin(incl)
    cos_w, sin_w = math.cos(argp), math.sin(argp)
    return np.array(
        [
            [
                cos_o * cos_w - sin_o * sin_w * cos_i,
                -cos_o * sin_w - sin_o * cos_w * cos_i,
                sin_o * sin_i,
            ],
            [
                sin_o * cos_w + cos_o * sin_w * cos_i,
                -sin_o * sin_w + cos_o * cos_w * cos_i,
                -cos_o * sin_i,
            ],
            [sin_w * sin_i, cos_w * sin_i, cos_i],
        ]
    )


class KeplerJ2Propagator:
    """Two-body propagation with secular J2 drift of RAAN, argp, and M.

    Cheap (a handful of trig calls per epoch) and drift-accurate for
    near-circular LEO; no drag, no periodic J2 terms.  Positions come out in
    the same quasi-inertial frame SGP4 uses (TEME), close enough for
    ground-station geometry at the km level.
    """

    def __init__(self, tle: TLE, model: EarthModel = WGS72):
        self.tle = tle
        self.model = model
        self.elements = KeplerianElements.from_tle(tle, model)
        self._epoch = tle.epoch
        n = self.elements.mean_motion_rad_s(model)
        a = self.elements.semi_major_axis_km
        e = self.elements.eccentricity
        i = self.elements.inclination_rad
        p = a * (1.0 - e * e)
        j2 = model.j2
        re = model.radius_km
        factor = 1.5 * j2 * (re / p) ** 2 * n
        cos_i = math.cos(i)
        #: Secular rates, rad/s.
        self.raan_dot = -factor * cos_i
        self.argp_dot = factor * (2.0 - 2.5 * math.sin(i) ** 2)
        self.mean_anomaly_dot = n + factor * math.sqrt(1.0 - e * e) * (
            1.0 - 1.5 * math.sin(i) ** 2
        )

    @property
    def epoch(self) -> datetime:
        return self._epoch

    def propagate(self, when: datetime) -> tuple[np.ndarray, np.ndarray]:
        """Inertial (TEME) position km and velocity km/s at ``when``."""
        dt = (when - self._epoch).total_seconds()
        el = self.elements
        drifted = KeplerianElements(
            semi_major_axis_km=el.semi_major_axis_km,
            eccentricity=el.eccentricity,
            inclination_rad=el.inclination_rad,
            raan_rad=wrap_two_pi(el.raan_rad + self.raan_dot * dt),
            argp_rad=wrap_two_pi(el.argp_rad + self.argp_dot * dt),
            mean_anomaly_rad=wrap_two_pi(
                el.mean_anomaly_rad + self.mean_anomaly_dot * dt
            ),
        )
        return drifted.to_state_vector(self.model)
