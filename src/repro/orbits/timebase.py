"""Time scales for orbit work: Julian dates, TLE epochs, and sidereal time.

Everything in this library runs on UTC ``datetime`` objects; Julian dates
appear only at the boundary with the astronomy formulae (GMST, frame
rotations).  Leap seconds are ignored, which is the universal convention for
TLE-grade work (TLE epochs are themselves UTC without leap-second
bookkeeping and orbit prediction error dwarfs the <1 s effect).
"""

from __future__ import annotations

import math
from datetime import datetime, timedelta, timezone

#: Julian date of the Unix epoch (1970-01-01T00:00:00 UTC).
JD_UNIX_EPOCH = 2440587.5
#: Julian date of J2000.0 (2000-01-01T12:00:00 TT, treated as UTC here).
JD_J2000 = 2451545.0

_TWO_PI = 2.0 * math.pi


def datetime_to_jd(when: datetime) -> float:
    """Convert a datetime (assumed UTC if naive) to a Julian date."""
    if when.tzinfo is not None:
        when = when.astimezone(timezone.utc).replace(tzinfo=None)
    delta = when - datetime(1970, 1, 1)
    return JD_UNIX_EPOCH + delta.total_seconds() / 86400.0


def jd_to_datetime(jd: float) -> datetime:
    """Convert a Julian date back to a naive UTC datetime."""
    seconds = (jd - JD_UNIX_EPOCH) * 86400.0
    return datetime(1970, 1, 1) + timedelta(seconds=seconds)


def tle_epoch_to_datetime(epoch_year: int, epoch_day: float) -> datetime:
    """Convert a TLE epoch (two-digit year + fractional day of year) to UTC.

    Per the TLE convention, two-digit years 57-99 map to 1957-1999 and
    00-56 map to 2000-2056.  ``epoch_day`` is 1-based: day 1.0 is January 1,
    00:00 UTC.
    """
    if epoch_year < 0 or epoch_year > 99:
        raise ValueError(f"TLE epoch year must be two digits, got {epoch_year}")
    year = epoch_year + (1900 if epoch_year >= 57 else 2000)
    return datetime(year, 1, 1) + timedelta(days=epoch_day - 1.0)


def datetime_to_tle_epoch(when: datetime) -> tuple[int, float]:
    """Inverse of :func:`tle_epoch_to_datetime`: (two-digit year, day-of-year)."""
    if when.tzinfo is not None:
        when = when.astimezone(timezone.utc).replace(tzinfo=None)
    start = datetime(when.year, 1, 1)
    day = 1.0 + (when - start).total_seconds() / 86400.0
    return when.year % 100, day


def gmst_rad(jd_ut1: float) -> float:
    """Greenwich Mean Sidereal Time (IAU 1982 model), radians in [0, 2*pi).

    Accurate to well under an arcsecond over decades around J2000, which is
    far tighter than TLE position error.
    """
    t = (jd_ut1 - JD_J2000) / 36525.0
    gmst_deg = (
        280.46061837
        + 360.98564736629 * (jd_ut1 - JD_J2000)
        + 0.000387933 * t * t
        - t * t * t / 38710000.0
    )
    return math.radians(gmst_deg) % _TWO_PI


def wrap_two_pi(angle: float) -> float:
    """Wrap an angle in radians to [0, 2*pi)."""
    wrapped = math.fmod(angle, _TWO_PI)
    if wrapped < 0.0:
        wrapped += _TWO_PI
    if wrapped >= _TWO_PI:  # -epsilon + 2*pi rounds up to exactly 2*pi
        wrapped = 0.0
    return wrapped


def wrap_pi(angle: float) -> float:
    """Wrap an angle in radians to (-pi, pi]."""
    wrapped = wrap_two_pi(angle)
    if wrapped > math.pi:
        wrapped -= _TWO_PI
    return wrapped
