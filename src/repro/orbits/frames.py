"""Coordinate frames: TEME <-> ECEF rotation and geodetic conversions.

SGP4 emits state vectors in TEME (True Equator, Mean Equinox), a
quasi-inertial frame.  Ground stations live on the rotating Earth, so
link geometry needs everything in ECEF.  We rotate by GMST about the
z-axis, which is the standard TLE-grade TEME->ECEF approximation (ignores
polar motion, ~10 m -- far below TLE error).

Geodetic conversions use the WGS84 ellipsoid with the closed-form Bowring
method for ECEF->geodetic (sub-millimetre for Earth-surface and LEO
altitudes).
"""

from __future__ import annotations

import math

import numpy as np

from repro.orbits.constants import WGS84, EarthModel
from repro.orbits.timebase import gmst_rad


def teme_to_ecef(position_teme_km: np.ndarray, jd_ut1: float,
                 velocity_teme_km_s: np.ndarray | None = None):
    """Rotate a TEME state into ECEF at the given Julian date.

    If a velocity is supplied, the Earth-rotation (omega x r) term is
    removed so the returned velocity is relative to the rotating frame.
    Returns position, or (position, velocity).
    """
    theta = gmst_rad(jd_ut1)
    cos_t, sin_t = math.cos(theta), math.sin(theta)
    rot = np.array([[cos_t, sin_t, 0.0], [-sin_t, cos_t, 0.0], [0.0, 0.0, 1.0]])
    pos_ecef = rot @ np.asarray(position_teme_km, dtype=float)
    if velocity_teme_km_s is None:
        return pos_ecef
    omega = 7.29211514670698e-5 * 86400.0 / 86164.0905  # rad/s, UT1 rate
    omega_vec = np.array([0.0, 0.0, 7.2921158553e-5])
    vel_ecef = rot @ np.asarray(velocity_teme_km_s, dtype=float) - np.cross(
        omega_vec, pos_ecef
    )
    del omega  # documented constant retained above for clarity
    return pos_ecef, vel_ecef


def ecef_to_teme(position_ecef_km: np.ndarray, jd_ut1: float) -> np.ndarray:
    """Inverse rotation of :func:`teme_to_ecef` (position only)."""
    theta = gmst_rad(jd_ut1)
    cos_t, sin_t = math.cos(theta), math.sin(theta)
    rot = np.array([[cos_t, -sin_t, 0.0], [sin_t, cos_t, 0.0], [0.0, 0.0, 1.0]])
    return rot @ np.asarray(position_ecef_km, dtype=float)


def geodetic_to_ecef(lat_deg: float, lon_deg: float, alt_km: float = 0.0,
                     model: EarthModel = WGS84) -> np.ndarray:
    """ECEF position (km) of a geodetic latitude/longitude/altitude."""
    lat = math.radians(lat_deg)
    lon = math.radians(lon_deg)
    e2 = model.eccentricity_sq
    sin_lat = math.sin(lat)
    n = model.radius_km / math.sqrt(1.0 - e2 * sin_lat * sin_lat)
    x = (n + alt_km) * math.cos(lat) * math.cos(lon)
    y = (n + alt_km) * math.cos(lat) * math.sin(lon)
    z = (n * (1.0 - e2) + alt_km) * sin_lat
    return np.array([x, y, z])


def ecef_to_geodetic(position_ecef_km: np.ndarray,
                     model: EarthModel = WGS84) -> tuple[float, float, float]:
    """Geodetic (lat_deg, lon_deg, alt_km) of an ECEF position (Bowring)."""
    x, y, z = (float(v) for v in position_ecef_km)
    lon = math.atan2(y, x)
    p = math.hypot(x, y)
    e2 = model.eccentricity_sq
    a = model.radius_km
    b = a * (1.0 - model.flattening)
    if p < 1e-9:  # on the polar axis
        lat = math.copysign(math.pi / 2.0, z)
        alt = abs(z) - b
        return math.degrees(lat), math.degrees(lon), alt
    ep2 = (a * a - b * b) / (b * b)
    theta = math.atan2(z * a, p * b)
    lat = math.atan2(
        z + ep2 * b * math.sin(theta) ** 3,
        p - e2 * a * math.cos(theta) ** 3,
    )
    sin_lat = math.sin(lat)
    n = a / math.sqrt(1.0 - e2 * sin_lat * sin_lat)
    alt = p / math.cos(lat) - n
    return math.degrees(lat), math.degrees(lon), alt


def subsatellite_point(position_teme_km: np.ndarray, jd_ut1: float,
                       model: EarthModel = WGS84) -> tuple[float, float, float]:
    """Geodetic ground-track point under a TEME position: (lat, lon, alt_km)."""
    return ecef_to_geodetic(teme_to_ecef(position_teme_km, jd_ut1), model)
