"""Physical and geodetic constants used throughout the orbit substrate.

Two Earth gravity models are provided:

* :data:`WGS72` -- the model baked into the original SGP4 definition
  (Spacetrack Report #3).  TLE propagation must use these values to stay
  faithful to how TLEs are fitted.
* :data:`WGS84` -- the modern ellipsoid, used for geodetic conversions
  (ground-station latitude/longitude to ECEF and back).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

# Generic values used where model choice is immaterial.
EARTH_RADIUS_KM = 6378.137
MU_EARTH_KM3_S2 = 398600.4418
EARTH_ROTATION_RAD_S = 7.2921158553e-5
SECONDS_PER_DAY = 86400.0
MINUTES_PER_DAY = 1440.0
SPEED_OF_LIGHT_M_S = 299792458.0
BOLTZMANN_DBW = -228.6  # 10*log10(k), dBW/K/Hz


@dataclass(frozen=True)
class EarthModel:
    """A self-consistent set of Earth gravity/ellipsoid constants.

    Attributes
    ----------
    radius_km:
        Equatorial radius (``aE``) in kilometres.
    mu_km3_s2:
        Gravitational parameter in km^3/s^2.
    j2, j3, j4:
        Zonal harmonic coefficients.
    flattening:
        Ellipsoid flattening ``f`` (0 for a spherical model).
    """

    name: str
    radius_km: float
    mu_km3_s2: float
    j2: float
    j3: float
    j4: float
    flattening: float

    @property
    def xke(self) -> float:
        """SGP4 ``ke``: sqrt(mu) in units of (earth radii)^1.5 per minute."""
        return 60.0 / math.sqrt(self.radius_km**3 / self.mu_km3_s2)

    @property
    def ck2(self) -> float:
        """SGP4 ``k2`` = J2/2 (earth radii^2 with aE=1)."""
        return 0.5 * self.j2

    @property
    def ck4(self) -> float:
        """SGP4 ``k4`` = -3/8 J4 (earth radii^4 with aE=1)."""
        return -0.375 * self.j4

    @property
    def eccentricity_sq(self) -> float:
        """First eccentricity squared of the ellipsoid."""
        return self.flattening * (2.0 - self.flattening)


WGS72 = EarthModel(
    name="WGS72",
    radius_km=6378.135,
    mu_km3_s2=398600.8,
    j2=1.082616e-3,
    j3=-2.53881e-6,
    j4=-1.65597e-6,
    flattening=1.0 / 298.26,
)

WGS84 = EarthModel(
    name="WGS84",
    radius_km=6378.137,
    mu_km3_s2=398600.5,
    j2=1.08262998905e-3,
    j3=-2.53215306e-6,
    j4=-1.61098761e-6,
    flattening=1.0 / 298.257223563,
)
