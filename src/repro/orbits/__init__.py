"""Orbital mechanics substrate for the DGS reproduction.

This package implements everything DGS needs to know about where satellites
are: TLE parsing and emission, orbit propagation (a full SGP4 implementation
plus a lighter Kepler+J2 analytic propagator), coordinate frames
(TEME -> ECEF -> geodetic), topocentric geometry (azimuth / elevation /
slant range), contact-window ("pass") prediction, and synthetic
constellation generation.

The public surface re-exported here is what the rest of the library uses;
the submodules carry the numerical detail.
"""

from repro.orbits.constants import (
    EARTH_RADIUS_KM,
    MU_EARTH_KM3_S2,
    WGS72,
    WGS84,
    EarthModel,
)
from repro.orbits.timebase import (
    datetime_to_jd,
    gmst_rad,
    jd_to_datetime,
    tle_epoch_to_datetime,
)
from repro.orbits.tle import TLE, TLEError, checksum
from repro.orbits.kepler import (
    KeplerianElements,
    KeplerJ2Propagator,
    eccentric_anomaly_from_mean,
    true_anomaly_from_eccentric,
)
from repro.orbits.sgp4 import SGP4, SGP4Error
from repro.orbits.ephemeris import (
    BatchSGP4,
    EphemerisTable,
    clear_ephemeris_cache,
    shared_ephemeris_table,
)
from repro.orbits.frames import (
    ecef_to_geodetic,
    geodetic_to_ecef,
    teme_to_ecef,
)
from repro.orbits.topocentric import (
    Topocentric,
    look_angles,
)
from repro.orbits.passes import ContactWindow, PassPredictor
from repro.orbits.constellation import (
    synthetic_leo_constellation,
    sun_synchronous_inclination_deg,
    walker_delta,
)
from repro.orbits.sun import is_eclipsed, sun_position_teme, sunlit_fraction
from repro.orbits.groundtrack import (
    ground_track,
    target_visits,
    constellation_revisit,
)

__all__ = [
    "EARTH_RADIUS_KM",
    "MU_EARTH_KM3_S2",
    "WGS72",
    "WGS84",
    "EarthModel",
    "datetime_to_jd",
    "jd_to_datetime",
    "gmst_rad",
    "tle_epoch_to_datetime",
    "TLE",
    "TLEError",
    "checksum",
    "KeplerianElements",
    "KeplerJ2Propagator",
    "eccentric_anomaly_from_mean",
    "true_anomaly_from_eccentric",
    "SGP4",
    "SGP4Error",
    "BatchSGP4",
    "EphemerisTable",
    "clear_ephemeris_cache",
    "shared_ephemeris_table",
    "teme_to_ecef",
    "ecef_to_geodetic",
    "geodetic_to_ecef",
    "Topocentric",
    "look_angles",
    "ContactWindow",
    "PassPredictor",
    "synthetic_leo_constellation",
    "sun_synchronous_inclination_deg",
    "walker_delta",
    "sun_position_teme",
    "is_eclipsed",
    "sunlit_fraction",
    "ground_track",
    "target_visits",
    "constellation_revisit",
]
