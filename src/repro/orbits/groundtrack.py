"""Ground tracks, swath coverage, and revisit analysis.

The paper's opening claim is that LEO constellations image the Earth "at
high revisit rates" (Sec. 1).  This module provides the machinery to
verify and explore that: sampled ground tracks, whether a target falls in
an imaging swath, and the distribution of revisit gaps for a target and a
constellation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from datetime import datetime, timedelta
from typing import Callable, Iterator

from repro.orbits.frames import subsatellite_point
from repro.orbits.timebase import datetime_to_jd
from repro.weather.cells import haversine_km

Propagator = Callable[[datetime], tuple]


@dataclass(frozen=True)
class GroundTrackPoint:
    """One sample of the sub-satellite point."""

    when: datetime
    latitude_deg: float
    longitude_deg: float
    altitude_km: float


def ground_track(propagate: Propagator, start: datetime, duration_s: float,
                 step_s: float = 30.0) -> Iterator[GroundTrackPoint]:
    """Yield sub-satellite points at fixed cadence."""
    if duration_s <= 0 or step_s <= 0:
        raise ValueError("duration and step must be positive")
    steps = int(duration_s // step_s) + 1
    for k in range(steps):
        when = start + timedelta(seconds=k * step_s)
        pos, _vel = propagate(when)
        lat, lon, alt = subsatellite_point(pos, datetime_to_jd(when))
        yield GroundTrackPoint(when, lat, lon, alt)


@dataclass(frozen=True)
class TargetVisit:
    """One imaging opportunity over a target."""

    when: datetime
    cross_track_km: float


def target_visits(
    propagate: Propagator,
    target_lat_deg: float,
    target_lon_deg: float,
    swath_km: float,
    start: datetime,
    duration_s: float,
    step_s: float = 30.0,
) -> list[TargetVisit]:
    """Times the target falls inside the imaging swath.

    A visit is recorded at the sample of minimum ground distance within
    each contiguous in-swath interval; ``swath_km`` is the full swath
    width (the instrument images +- swath/2 of the ground track).
    """
    if swath_km <= 0:
        raise ValueError("swath must be positive")
    half_swath = swath_km / 2.0
    visits: list[TargetVisit] = []
    in_swath = False
    best: TargetVisit | None = None
    for point in ground_track(propagate, start, duration_s, step_s):
        distance = haversine_km(
            point.latitude_deg, point.longitude_deg,
            target_lat_deg, target_lon_deg,
        )
        if distance <= half_swath:
            candidate = TargetVisit(point.when, distance)
            if not in_swath or (best and candidate.cross_track_km
                                < best.cross_track_km):
                best = candidate
            in_swath = True
        elif in_swath:
            if best is not None:
                visits.append(best)
            in_swath = False
            best = None
    if in_swath and best is not None:
        visits.append(best)
    return visits


def revisit_gaps_hours(visit_times: list[datetime]) -> list[float]:
    """Gaps between consecutive visits, hours."""
    ordered = sorted(visit_times)
    return [
        (b - a).total_seconds() / 3600.0 for a, b in zip(ordered, ordered[1:])
    ]


def constellation_revisit(
    propagators: list[Propagator],
    target_lat_deg: float,
    target_lon_deg: float,
    swath_km: float,
    start: datetime,
    duration_s: float,
    step_s: float = 60.0,
) -> dict:
    """Revisit statistics for a whole constellation over one target.

    Returns visit count, and mean/max revisit gap in hours (NaN when fewer
    than two visits).
    """
    all_times: list[datetime] = []
    for propagate in propagators:
        all_times.extend(
            v.when for v in target_visits(
                propagate, target_lat_deg, target_lon_deg, swath_km,
                start, duration_s, step_s,
            )
        )
    gaps = revisit_gaps_hours(all_times)
    return {
        "visits": len(all_times),
        "mean_gap_h": sum(gaps) / len(gaps) if gaps else math.nan,
        "max_gap_h": max(gaps) if gaps else math.nan,
    }
