"""Two Line Element (TLE) parsing, validation, and emission.

TLEs are the interchange format the paper assumes for satellite orbits
(Sec. 3.1): every satellite is "represented by its TLE".  This module
implements the full NORAD fixed-column format, including the modulo-10
checksum and the implied-decimal exponent fields, and round-trips cleanly
(``TLE.parse(t.to_lines()) == t``) so synthetic constellations can be
serialized and reloaded.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from datetime import datetime

from repro.orbits.timebase import datetime_to_tle_epoch, tle_epoch_to_datetime


class TLEError(ValueError):
    """Raised when a TLE line fails structural or checksum validation."""


def checksum(line: str) -> int:
    """Modulo-10 TLE checksum of the first 68 columns of a line.

    Digits count as their value; a minus sign counts as 1; everything else
    (letters, periods, plus signs, spaces) counts as 0.
    """
    total = 0
    for ch in line[:68]:
        if ch.isdigit():
            total += int(ch)
        elif ch == "-":
            total += 1
    return total % 10


def _parse_implied_decimal(fieldtext: str) -> float:
    """Parse TLE 'implied decimal point' exponent fields like ' 66816-4'.

    The field is a mantissa with an assumed leading '0.' followed by a
    signed single-digit exponent: ``66816-4`` means 0.66816e-4.
    """
    text = fieldtext.strip()
    if not text or text in {"0", "+0", "-0", "00000-0", "00000+0"}:
        return 0.0
    match = re.fullmatch(r"([+\-]?)(\d+)([+\-]\d)", text)
    if match is None:
        raise TLEError(f"malformed implied-decimal field: {fieldtext!r}")
    sign = -1.0 if match.group(1) == "-" else 1.0
    mantissa = int(match.group(2))
    exponent = int(match.group(3))
    return sign * mantissa * 10.0 ** (exponent - len(match.group(2)))


def _format_implied_decimal(value: float) -> str:
    """Format a float into the 8-column TLE implied-decimal field."""
    if value == 0.0:
        return " 00000+0"
    sign = "-" if value < 0 else " "
    magnitude = abs(value)
    exponent = math.floor(math.log10(magnitude)) + 1
    mantissa = magnitude / 10.0**exponent
    mantissa_digits = round(mantissa * 1e5)
    if mantissa_digits >= 100000:  # rounding carried over, e.g. 0.999999
        mantissa_digits = 10000
        exponent += 1
    if exponent < -9:  # below field resolution: canonical zero
        return " 00000+0"
    if exponent > 9:
        raise TLEError(f"value {value} out of TLE exponent range")
    exp_sign = "-" if exponent < 0 else "+"
    return f"{sign}{mantissa_digits:05d}{exp_sign}{abs(exponent)}"


@dataclass
class TLE:
    """A parsed Two Line Element set.

    Angles are stored in degrees and mean motion in revolutions/day, matching
    the TLE convention; propagators convert internally.
    """

    satnum: int
    epoch_year: int  # two-digit year, TLE convention
    epoch_day: float  # fractional day of year, 1-based
    ndot: float  # rev/day^2 (first derivative of mean motion / 2, as in TLE)
    nddot: float  # rev/day^3 (second derivative / 6, as in TLE)
    bstar: float  # drag term, 1/earth-radii
    inclination_deg: float
    raan_deg: float
    eccentricity: float
    argp_deg: float
    mean_anomaly_deg: float
    mean_motion_rev_day: float
    classification: str = "U"
    intl_designator: str = ""
    element_set_no: int = 0
    rev_number: int = 0
    name: str = ""
    ephemeris_type: int = 0
    _epoch_cache: datetime | None = field(default=None, repr=False, compare=False)

    @property
    def epoch(self) -> datetime:
        """The TLE epoch as a UTC datetime."""
        if self._epoch_cache is None:
            self._epoch_cache = tle_epoch_to_datetime(self.epoch_year, self.epoch_day)
        return self._epoch_cache

    @property
    def period_minutes(self) -> float:
        """Orbital period implied by the mean motion."""
        return 1440.0 / self.mean_motion_rev_day

    @property
    def mean_motion_rad_min(self) -> float:
        """Mean motion in radians per minute (SGP4's native unit)."""
        return self.mean_motion_rev_day * 2.0 * math.pi / 1440.0

    @classmethod
    def parse(cls, lines: str | list[str], validate_checksum: bool = True) -> "TLE":
        """Parse a 2- or 3-line element set (optional name line first)."""
        if isinstance(lines, str):
            raw = [ln for ln in lines.splitlines() if ln.strip()]
        else:
            raw = [ln for ln in lines if ln.strip()]
        name = ""
        if len(raw) == 3:
            name = raw[0].strip()
            raw = raw[1:]
        if len(raw) != 2:
            raise TLEError(f"expected 2 element lines, got {len(raw)}")
        line1, line2 = raw[0].rstrip(), raw[1].rstrip()
        if len(line1) < 69 or len(line2) < 69:
            raise TLEError("TLE lines must be at least 69 columns")
        if line1[0] != "1" or line2[0] != "2":
            raise TLEError("TLE lines must start with '1' and '2'")
        if validate_checksum:
            for line in (line1, line2):
                expected = checksum(line)
                actual = int(line[68])
                if expected != actual:
                    raise TLEError(
                        f"checksum mismatch on line {line[0]}: "
                        f"expected {expected}, found {actual}"
                    )
        satnum1 = int(line1[2:7])
        satnum2 = int(line2[2:7])
        if satnum1 != satnum2:
            raise TLEError(f"satellite number mismatch: {satnum1} vs {satnum2}")
        try:
            tle = cls(
                satnum=satnum1,
                classification=line1[7],
                intl_designator=line1[9:17].strip(),
                epoch_year=int(line1[18:20]),
                epoch_day=float(line1[20:32]),
                ndot=float(line1[33:43]),
                nddot=_parse_implied_decimal(line1[44:52]),
                bstar=_parse_implied_decimal(line1[53:61]),
                ephemeris_type=int(line1[62]) if line1[62].strip() else 0,
                element_set_no=int(line1[64:68]) if line1[64:68].strip() else 0,
                inclination_deg=float(line2[8:16]),
                raan_deg=float(line2[17:25]),
                eccentricity=float("0." + line2[26:33].strip()),
                argp_deg=float(line2[34:42]),
                mean_anomaly_deg=float(line2[43:51]),
                mean_motion_rev_day=float(line2[52:63]),
                rev_number=int(line2[63:68]) if line2[63:68].strip() else 0,
                name=name,
            )
        except ValueError as exc:
            raise TLEError(f"malformed TLE field: {exc}") from exc
        tle.validate()
        return tle

    def validate(self) -> None:
        """Check physical plausibility of the parsed elements."""
        if not 0.0 <= self.eccentricity < 1.0:
            raise TLEError(f"eccentricity out of range: {self.eccentricity}")
        if not 0.0 <= self.inclination_deg <= 180.0:
            raise TLEError(f"inclination out of range: {self.inclination_deg}")
        if self.mean_motion_rev_day <= 0.0:
            raise TLEError(f"mean motion must be positive: {self.mean_motion_rev_day}")

    def to_lines(self) -> tuple[str, str]:
        """Emit the canonical 69-column line pair (with valid checksums)."""
        # ndot occupies 10 columns: sign + ".dddddddd" (no leading zero).
        if abs(self.ndot) >= 1.0:
            raise TLEError(f"ndot {self.ndot} out of TLE field range")
        ndot_text = ("-" if self.ndot < 0 else " ") + f"{abs(self.ndot):.8f}"[1:]
        line1 = (
            f"1 {self.satnum:05d}{self.classification} "
            f"{self.intl_designator:<8s} "
            f"{self.epoch_year:02d}{self.epoch_day:012.8f} "
            f"{ndot_text} "
            f"{_format_implied_decimal(self.nddot)} "
            f"{_format_implied_decimal(self.bstar)} "
            f"{self.ephemeris_type:1d} "
            f"{self.element_set_no:4d}"
        )
        ecc_text = f"{self.eccentricity:.7f}"[2:]
        line2 = (
            f"2 {self.satnum:05d} "
            f"{self.inclination_deg:8.4f} "
            f"{self.raan_deg:8.4f} "
            f"{ecc_text} "
            f"{self.argp_deg:8.4f} "
            f"{self.mean_anomaly_deg:8.4f} "
            f"{self.mean_motion_rev_day:11.8f}"
            f"{self.rev_number:5d}"
        )
        line1 = f"{line1:<68.68s}{checksum(line1)}"
        line2 = f"{line2:<68.68s}{checksum(line2)}"
        return line1, line2

    @classmethod
    def from_elements(
        cls,
        satnum: int,
        epoch: datetime,
        inclination_deg: float,
        raan_deg: float,
        eccentricity: float,
        argp_deg: float,
        mean_anomaly_deg: float,
        mean_motion_rev_day: float,
        bstar: float = 0.0001,
        name: str = "",
    ) -> "TLE":
        """Build a TLE directly from mean elements (for synthetic satellites)."""
        year2, day = datetime_to_tle_epoch(epoch)
        tle = cls(
            satnum=satnum,
            epoch_year=year2,
            epoch_day=day,
            ndot=0.0,
            nddot=0.0,
            bstar=bstar,
            inclination_deg=inclination_deg % 180.0,
            raan_deg=raan_deg % 360.0,
            eccentricity=eccentricity,
            argp_deg=argp_deg % 360.0,
            mean_anomaly_deg=mean_anomaly_deg % 360.0,
            mean_motion_rev_day=mean_motion_rev_day,
            name=name,
        )
        tle.validate()
        return tle
