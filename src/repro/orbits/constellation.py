"""Synthetic constellation generation.

The paper's dataset is 259 real satellites drawn from the SatNOGS database;
that snapshot is not redistributable, so we generate a statistically
matching population: sun-synchronous / polar LEO orbits at 300-600 km, the
altitude band the paper states for Earth-observation cubesats (Sec. 1),
spread across local times of ascending node and mean anomalies.  Walker
Delta generation is also provided for structured constellations
(communication-style shells) used by examples and ablations.
"""

from __future__ import annotations

import math
import random
from datetime import datetime

from repro.orbits.constants import WGS72, EarthModel
from repro.orbits.tle import TLE

_TWO_PI = 2.0 * math.pi


def mean_motion_rev_day_for_altitude(altitude_km: float,
                                     model: EarthModel = WGS72) -> float:
    """Circular-orbit mean motion (rev/day) at a given altitude."""
    sma = model.radius_km + altitude_km
    n_rad_s = math.sqrt(model.mu_km3_s2 / sma**3)
    return n_rad_s * 86400.0 / _TWO_PI


def sun_synchronous_inclination_deg(altitude_km: float,
                                    eccentricity: float = 0.0,
                                    model: EarthModel = WGS72) -> float:
    """Inclination giving a sun-synchronous RAAN drift (360 deg/year).

    Solves the J2 nodal-regression equation for cos(i); LEO answers fall
    near 97-98 deg, matching real Earth-observation orbits.
    """
    sma = model.radius_km + altitude_km
    p = sma * (1.0 - eccentricity**2)
    n = math.sqrt(model.mu_km3_s2 / sma**3)
    target_raan_dot = _TWO_PI / (365.2421897 * 86400.0)  # rad/s
    cos_i = -target_raan_dot / (1.5 * model.j2 * (model.radius_km / p) ** 2 * n)
    if not -1.0 <= cos_i <= 1.0:
        raise ValueError(
            f"no sun-synchronous inclination exists at {altitude_km} km"
        )
    return math.degrees(math.acos(cos_i))


#: Inclination mix of a SatNOGS-like LEO population: sun-synchronous
#: imagers, ISS-deployed cubesats at 51.6 deg, dedicated polar rides, and
#: miscellaneous mid-inclination launches.  The mid-inclination mass is
#: what starves polar-sited baseline stations -- a 51.6 deg satellite
#: never rises above the horizon of a 78 deg-latitude station.
DEFAULT_INCLINATION_MIX = (
    ("sso", 0.45),
    ("iss", 0.35),
    ("polar", 0.10),
    ("mid", 0.10),
)


def synthetic_leo_constellation(
    count: int,
    epoch: datetime,
    seed: int = 0,
    altitude_range_km: tuple[float, float] = (300.0, 600.0),
    inclination_mix: tuple[tuple[str, float], ...] = DEFAULT_INCLINATION_MIX,
    first_satnum: int = 50000,
) -> list[TLE]:
    """Generate ``count`` synthetic Earth-observation LEO TLEs.

    Orbits are drawn from ``inclination_mix``: ``sso`` (sun-synchronous,
    ~97-98 deg), ``iss`` (51.6 deg rideshare deployments), ``polar``
    (80-100 deg), and ``mid`` (45-70 deg).  RAAN, argument of perigee, and
    mean anomaly are uniform, so satellites are well spread in phase -- the
    property that matters for contention and pass-diversity results.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    rng = random.Random(seed)
    lo_alt, hi_alt = altitude_range_km
    categories = [name for name, _ in inclination_mix]
    weights = [w for _, w in inclination_mix]
    tles = []
    for idx in range(count):
        altitude = rng.uniform(lo_alt, hi_alt)
        category = rng.choices(categories, weights=weights)[0]
        if category == "sso":
            inclination = sun_synchronous_inclination_deg(altitude)
        elif category == "iss":
            inclination = rng.gauss(51.6, 0.3)
        elif category == "polar":
            inclination = rng.uniform(80.0, 100.0)
        elif category == "mid":
            inclination = rng.uniform(45.0, 70.0)
        else:
            raise ValueError(f"unknown inclination category {category!r}")
        tles.append(
            TLE.from_elements(
                satnum=first_satnum + idx,
                epoch=epoch,
                inclination_deg=inclination,
                raan_deg=rng.uniform(0.0, 360.0),
                eccentricity=rng.uniform(0.0001, 0.002),
                argp_deg=rng.uniform(0.0, 360.0),
                mean_anomaly_deg=rng.uniform(0.0, 360.0),
                mean_motion_rev_day=mean_motion_rev_day_for_altitude(altitude),
                bstar=rng.uniform(1e-5, 3e-4),
                name=f"SYN-EO-{idx:03d}",
            )
        )
    return tles


def walker_delta(
    total_satellites: int,
    planes: int,
    phasing: int,
    inclination_deg: float,
    altitude_km: float,
    epoch: datetime,
    first_satnum: int = 70000,
    name_prefix: str = "WALKER",
) -> list[TLE]:
    """Generate a Walker Delta constellation i:t/p/f as TLEs.

    ``total_satellites`` must divide evenly into ``planes``; ``phasing``
    is the Walker f parameter (inter-plane phase offset units).  The
    output is fully deterministic -- same arguments, same TLE lines --
    which is what makes Walker fleets usable as benchmark identities.
    """
    if total_satellites % planes != 0:
        raise ValueError("total_satellites must be divisible by planes")
    if not 0 <= phasing < planes:
        raise ValueError("phasing must satisfy 0 <= f < planes")
    per_plane = total_satellites // planes
    mean_motion = mean_motion_rev_day_for_altitude(altitude_km)
    tles = []
    for plane in range(planes):
        raan = 360.0 * plane / planes
        for slot in range(per_plane):
            mean_anomaly = (
                360.0 * slot / per_plane
                + 360.0 * phasing * plane / total_satellites
            )
            index = plane * per_plane + slot
            tles.append(
                TLE.from_elements(
                    satnum=first_satnum + index,
                    epoch=epoch,
                    inclination_deg=inclination_deg,
                    raan_deg=raan,
                    eccentricity=0.0005,
                    argp_deg=0.0,
                    mean_anomaly_deg=mean_anomaly % 360.0,
                    mean_motion_rev_day=mean_motion,
                    name=f"{name_prefix}-{plane}-{slot}",
                )
            )
    return tles


def walker_shells(
    shells: list[tuple[int, int, int, float, float]],
    epoch: datetime,
    first_satnum: int = 70000,
) -> list[TLE]:
    """Concatenate Walker Delta shells into one deterministic TLE set.

    ``shells`` is a list of ``(total, planes, phasing, inclination_deg,
    altitude_km)`` tuples -- the multi-shell layout of real
    mega-constellations (e.g. Starlink's 53/53.2/70/97.6 deg shells).
    Satellite numbers are allocated contiguously across shells and names
    carry the shell index, so the combined set stays collision-free.
    """
    tles: list[TLE] = []
    satnum = first_satnum
    for shell_index, (total, planes, phasing, incl, alt) in enumerate(shells):
        tles.extend(
            walker_delta(
                total, planes, phasing, incl, alt, epoch,
                first_satnum=satnum,
                name_prefix=f"WALKER{shell_index}",
            )
        )
        satnum += total
    return tles
