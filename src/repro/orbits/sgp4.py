"""SGP4 orbit propagator (near-Earth), implemented from Spacetrack Report #3.

This is a from-scratch implementation of the standard SGP4 analytic
propagator (Hoots & Roehrich 1980, the model TLEs are fitted against),
covering the full near-Earth branch: secular gravity (J2/J4), atmospheric
drag with the B* model (including the higher-order d2..d4 terms for
perigee >= 220 km), long- and short-period periodic corrections, and the
Kepler solve in (axn, ayn) variables.

Deep-space orbits (period >= 225 min) need the SDP4 lunar/solar/resonance
terms; every satellite in the paper is a 300-600 km LEO, so we raise
:class:`SGP4Error` for those rather than silently mispredicting.

Output is position (km) and velocity (km/s) in the TEME frame, which
:func:`repro.orbits.frames.teme_to_ecef` rotates into Earth-fixed
coordinates.  Validated in the test suite against the Spacetrack Report #3
published test vector.
"""

from __future__ import annotations

import math
from datetime import datetime

import numpy as np

from repro.orbits.constants import WGS72, EarthModel
from repro.orbits.timebase import wrap_two_pi
from repro.orbits.tle import TLE

# Constants from Spacetrack Report #3 (WGS-72 based).
_QO = 120.0  # km, upper drag density-fit altitude bound
_SO = 78.0  # km, lower bound
_DEEP_SPACE_PERIOD_MIN = 225.0


class SGP4Error(RuntimeError):
    """Raised on unsupported orbits or propagation breakdown (decay)."""


class SGP4:
    """An initialized SGP4 propagator for one TLE.

    Initialization precomputes every element-dependent coefficient; each
    :meth:`propagate` call is then cheap, which matters because the DGS
    scheduler evaluates hundreds of satellites at minute cadence.
    """

    def __init__(self, tle: TLE, model: EarthModel = WGS72):
        self.tle = tle
        self.model = model
        self._init_from_elements()

    # -- initialization ---------------------------------------------------

    def _init_from_elements(self) -> None:
        model = self.model
        ae = 1.0
        self._xkmper = model.radius_km
        self._xke = model.xke
        ck2 = model.ck2
        ck4 = model.ck4
        self._ck2 = ck2
        a3ovk2 = -model.j3 / ck2 * ae**3

        s_param = ae + _SO / self._xkmper
        qoms2t = ((_QO - _SO) / self._xkmper) ** 4

        tle = self.tle
        xno = tle.mean_motion_rad_min
        eo = tle.eccentricity
        xincl = math.radians(tle.inclination_deg)
        omegao = math.radians(tle.argp_deg)
        xmo = math.radians(tle.mean_anomaly_deg)
        xnodeo = math.radians(tle.raan_deg)
        bstar = tle.bstar

        if tle.period_minutes >= _DEEP_SPACE_PERIOD_MIN:
            raise SGP4Error(
                f"satellite {tle.satnum}: period {tle.period_minutes:.1f} min is "
                "deep-space (>=225 min); SDP4 is not implemented"
            )

        # Recover original mean motion (xnodp) and semimajor axis (aodp).
        a1 = (self._xke / xno) ** (2.0 / 3.0)
        cosio = math.cos(xincl)
        theta2 = cosio * cosio
        x3thm1 = 3.0 * theta2 - 1.0
        eosq = eo * eo
        betao2 = 1.0 - eosq
        betao = math.sqrt(betao2)
        del1 = 1.5 * ck2 * x3thm1 / (a1 * a1 * betao * betao2)
        ao = a1 * (
            1.0 - del1 * (1.0 / 3.0 + del1 * (1.0 + 134.0 / 81.0 * del1))
        )
        delo = 1.5 * ck2 * x3thm1 / (ao * ao * betao * betao2)
        xnodp = xno / (1.0 + delo)
        aodp = ao / (1.0 - delo)

        # For perigee below 220 km, truncate drag to the C1 term.
        self._isimp = (aodp * (1.0 - eo) / ae) < (220.0 / self._xkmper + ae)

        # For perigee below 156 km, adjust the s4 density constant.
        s4 = s_param
        qoms24 = qoms2t
        perige = (aodp * (1.0 - eo) - ae) * self._xkmper
        if perige < 156.0:
            s4 = perige - _SO
            if perige <= 98.0:
                s4 = 20.0
            qoms24 = ((_QO - s4) * ae / self._xkmper) ** 4
            s4 = s4 / self._xkmper + ae

        pinvsq = 1.0 / (aodp * aodp * betao2 * betao2)
        tsi = 1.0 / (aodp - s4)
        eta = aodp * eo * tsi
        etasq = eta * eta
        eeta = eo * eta
        psisq = abs(1.0 - etasq)
        coef = qoms24 * tsi**4
        coef1 = coef / psisq**3.5
        c2 = coef1 * xnodp * (
            aodp * (1.0 + 1.5 * etasq + eeta * (4.0 + etasq))
            + 0.75 * ck2 * tsi / psisq * x3thm1
            * (8.0 + 3.0 * etasq * (8.0 + etasq))
        )
        c1 = bstar * c2
        sinio = math.sin(xincl)
        # C3 involves 1/eo; for circular synthetic orbits guard the division.
        c3 = 0.0
        if eo > 1e-4:
            c3 = coef * tsi * a3ovk2 * xnodp * ae * sinio / eo
        x1mth2 = 1.0 - theta2
        c4 = 2.0 * xnodp * coef1 * aodp * betao2 * (
            eta * (2.0 + 0.5 * etasq)
            + eo * (0.5 + 2.0 * etasq)
            - 2.0 * ck2 * tsi / (aodp * psisq)
            * (
                -3.0 * x3thm1 * (1.0 - 2.0 * eeta + etasq * (1.5 - 0.5 * eeta))
                + 0.75 * x1mth2 * (2.0 * etasq - eeta * (1.0 + etasq))
                * math.cos(2.0 * omegao)
            )
        )
        c5 = 2.0 * coef1 * aodp * betao2 * (
            1.0 + 2.75 * (etasq + eeta) + eeta * etasq
        )
        theta4 = theta2 * theta2
        temp1 = 3.0 * ck2 * pinvsq * xnodp
        temp2 = temp1 * ck2 * pinvsq
        temp3 = 1.25 * ck4 * pinvsq * pinvsq * xnodp
        xmdot = (
            xnodp
            + 0.5 * temp1 * betao * x3thm1
            + 0.0625 * temp2 * betao * (13.0 - 78.0 * theta2 + 137.0 * theta4)
        )
        x1m5th = 1.0 - 5.0 * theta2
        omgdot = (
            -0.5 * temp1 * x1m5th
            + 0.0625 * temp2 * (7.0 - 114.0 * theta2 + 395.0 * theta4)
            + temp3 * (3.0 - 36.0 * theta2 + 49.0 * theta4)
        )
        xhdot1 = -temp1 * cosio
        xnodot = xhdot1 + (
            0.5 * temp2 * (4.0 - 19.0 * theta2)
            + 2.0 * temp3 * (3.0 - 7.0 * theta2)
        ) * cosio
        omgcof = bstar * c3 * math.cos(omegao)
        xmcof = 0.0
        if eo > 1e-4:
            xmcof = -(2.0 / 3.0) * coef * bstar * ae / eeta
        xnodcf = 3.5 * betao2 * xhdot1 * c1
        t2cof = 1.5 * c1
        # xlcof divides by (1 + cosio); guard i ~ 180 deg retrograde.
        denom = 1.0 + cosio
        if abs(denom) < 1.5e-12:
            denom = 1.5e-12
        xlcof = 0.125 * a3ovk2 * sinio * (3.0 + 5.0 * cosio) / denom
        aycof = 0.25 * a3ovk2 * sinio
        delmo = (1.0 + eta * math.cos(xmo)) ** 3
        sinmo = math.sin(xmo)
        x7thm1 = 7.0 * theta2 - 1.0

        if not self._isimp:
            c1sq = c1 * c1
            d2 = 4.0 * aodp * tsi * c1sq
            temp = d2 * tsi * c1 / 3.0
            d3 = (17.0 * aodp + s4) * temp
            d4 = 0.5 * temp * aodp * tsi * (221.0 * aodp + 31.0 * s4) * c1
            t3cof = d2 + 2.0 * c1sq
            t4cof = 0.25 * (3.0 * d3 + c1 * (12.0 * d2 + 10.0 * c1sq))
            t5cof = 0.2 * (
                3.0 * d4
                + 12.0 * c1 * d3
                + 6.0 * d2 * d2
                + 15.0 * c1sq * (2.0 * d2 + c1sq)
            )
            self._d2, self._d3, self._d4 = d2, d3, d4
            self._t3cof, self._t4cof, self._t5cof = t3cof, t4cof, t5cof

        # Stash everything propagate() needs.
        self._eo, self._xincl = eo, xincl
        self._omegao, self._xmo, self._xnodeo = omegao, xmo, xnodeo
        self._bstar = bstar
        self._xnodp, self._aodp = xnodp, aodp
        self._xmdot, self._omgdot, self._xnodot = xmdot, omgdot, xnodot
        self._xnodcf, self._t2cof = xnodcf, t2cof
        self._c1, self._c4, self._c5 = c1, c4, c5
        self._omgcof, self._xmcof = omgcof, xmcof
        self._eta, self._delmo, self._sinmo = eta, delmo, sinmo
        self._xlcof, self._aycof = xlcof, aycof
        self._x3thm1, self._x1mth2, self._x7thm1 = x3thm1, x1mth2, x7thm1
        self._cosio, self._sinio = cosio, sinio

    # -- propagation ------------------------------------------------------

    def propagate_tsince(self, tsince_min: float) -> tuple[np.ndarray, np.ndarray]:
        """Propagate ``tsince_min`` minutes past the TLE epoch.

        Returns (position_km, velocity_km_s) in TEME.
        """
        tsince = float(tsince_min)

        # Secular gravity and atmospheric drag.
        xmdf = self._xmo + self._xmdot * tsince
        omgadf = self._omegao + self._omgdot * tsince
        xnoddf = self._xnodeo + self._xnodot * tsince
        omega = omgadf
        xmp = xmdf
        tsq = tsince * tsince
        xnode = xnoddf + self._xnodcf * tsq
        tempa = 1.0 - self._c1 * tsince
        tempe = self._bstar * self._c4 * tsince
        templ = self._t2cof * tsq
        if not self._isimp:
            delomg = self._omgcof * tsince
            delm = self._xmcof * (
                (1.0 + self._eta * math.cos(xmdf)) ** 3 - self._delmo
            )
            temp = delomg + delm
            xmp = xmdf + temp
            omega = omgadf - temp
            tcube = tsq * tsince
            tfour = tsince * tcube
            tempa = tempa - self._d2 * tsq - self._d3 * tcube - self._d4 * tfour
            tempe = tempe + self._bstar * self._c5 * (math.sin(xmp) - self._sinmo)
            templ = templ + self._t3cof * tcube + self._t4cof * tfour \
                + self._t5cof * tsince * tfour
        a = self._aodp * tempa * tempa
        e = self._eo - tempe
        if e >= 1.0 or e < -0.001 or a < 0.95:
            raise SGP4Error(
                f"satellite {self.tle.satnum} decayed or propagation diverged "
                f"at tsince={tsince:.1f} min (a={a:.4f} er, e={e:.6f})"
            )
        e = max(e, 1e-6)
        xl = xmp + omega + xnode + self._xnodp * templ
        beta = math.sqrt(1.0 - e * e)
        xn = self._xke / a**1.5

        # Long period periodics.
        axn = e * math.cos(omega)
        temp = 1.0 / (a * beta * beta)
        xll = temp * self._xlcof * axn
        aynl = temp * self._aycof
        xlt = xl + xll
        ayn = e * math.sin(omega) + aynl

        # Solve Kepler's equation in (axn, ayn) variables.
        capu = wrap_two_pi(xlt - xnode)
        epw = capu
        for _ in range(10):
            sinepw = math.sin(epw)
            cosepw = math.cos(epw)
            temp3 = axn * sinepw
            temp4 = ayn * cosepw
            temp5 = axn * cosepw
            temp6 = ayn * sinepw
            new_epw = (capu - temp4 + temp3 - epw) / (1.0 - temp5 - temp6) + epw
            if abs(new_epw - epw) <= 1e-12:
                epw = new_epw
                break
            epw = new_epw
        sinepw = math.sin(epw)
        cosepw = math.cos(epw)
        temp3 = axn * sinepw
        temp4 = ayn * cosepw
        temp5 = axn * cosepw
        temp6 = ayn * sinepw

        # Short period preliminary quantities.
        ecose = temp5 + temp6
        esine = temp3 - temp4
        elsq = axn * axn + ayn * ayn
        temp = 1.0 - elsq
        pl = a * temp
        if pl < 0.0:
            raise SGP4Error(
                f"satellite {self.tle.satnum}: semilatus rectum went negative"
            )
        r = a * (1.0 - ecose)
        temp1 = 1.0 / r
        rdot = self._xke * math.sqrt(a) * esine * temp1
        rfdot = self._xke * math.sqrt(pl) * temp1
        temp2 = a * temp1
        betal = math.sqrt(temp)
        temp3 = 1.0 / (1.0 + betal)
        cosu = temp2 * (cosepw - axn + ayn * esine * temp3)
        sinu = temp2 * (sinepw - ayn - axn * esine * temp3)
        u = math.atan2(sinu, cosu)
        sin2u = 2.0 * sinu * cosu
        cos2u = 2.0 * cosu * cosu - 1.0
        temp = 1.0 / pl
        temp1 = self._ck2 * temp
        temp2 = temp1 * temp

        # Update for short periodics.
        rk = r * (1.0 - 1.5 * temp2 * betal * self._x3thm1) \
            + 0.5 * temp1 * self._x1mth2 * cos2u
        uk = u - 0.25 * temp2 * self._x7thm1 * sin2u
        xnodek = xnode + 1.5 * temp2 * self._cosio * sin2u
        xinck = self._xincl + 1.5 * temp2 * self._cosio * self._sinio * cos2u
        rdotk = rdot - xn * temp1 * self._x1mth2 * sin2u
        rfdotk = rfdot + xn * temp1 * (self._x1mth2 * cos2u + 1.5 * self._x3thm1)

        # Orientation vectors.
        sinuk = math.sin(uk)
        cosuk = math.cos(uk)
        sinik = math.sin(xinck)
        cosik = math.cos(xinck)
        sinnok = math.sin(xnodek)
        cosnok = math.cos(xnodek)
        xmx = -sinnok * cosik
        xmy = cosnok * cosik
        ux = xmx * sinuk + cosnok * cosuk
        uy = xmy * sinuk + sinnok * cosuk
        uz = sinik * sinuk
        vx = xmx * cosuk - cosnok * sinuk
        vy = xmy * cosuk - sinnok * sinuk
        vz = sinik * cosuk

        # Position (earth radii -> km) and velocity (er/min -> km/s).
        pos = np.array([rk * ux, rk * uy, rk * uz]) * self._xkmper
        vel = (
            np.array(
                [
                    rdotk * ux + rfdotk * vx,
                    rdotk * uy + rfdotk * vy,
                    rdotk * uz + rfdotk * vz,
                ]
            )
            * self._xkmper
            / 60.0
        )
        return pos, vel

    def propagate(self, when: datetime) -> tuple[np.ndarray, np.ndarray]:
        """Propagate to an absolute UTC time; TEME km and km/s."""
        tsince_min = (when - self.tle.epoch).total_seconds() / 60.0
        return self.propagate_tsince(tsince_min)
