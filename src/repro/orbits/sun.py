"""Solar geometry: sun position and Earth-shadow (eclipse) tests.

Earth-observation satellites are solar powered; whether the spacecraft is
in sunlight gates battery charging and therefore downlink duty cycle
(:mod:`repro.satellites.power`).  The sun position uses the standard
low-precision almanac (accurate to ~0.01 deg, decades around J2000) and
the eclipse test uses the cylindrical-shadow model, which is accurate to
a few seconds of shadow-entry time for LEO -- far finer than the
simulation step.
"""

from __future__ import annotations

import math
from datetime import datetime

import numpy as np

from repro.orbits.constants import EARTH_RADIUS_KM
from repro.orbits.timebase import JD_J2000, datetime_to_jd

#: One astronomical unit, km.
AU_KM = 149_597_870.7


def sun_position_teme(when: datetime) -> np.ndarray:
    """Geocentric sun vector (km) in the TEME/ECI frame.

    Low-precision almanac (Vallado Alg. 29): mean solar longitude and
    anomaly, ecliptic longitude with two correction terms, rotated through
    the mean obliquity.
    """
    t_ut1 = (datetime_to_jd(when) - JD_J2000) / 36525.0
    mean_lon_deg = (280.460 + 36000.771 * t_ut1) % 360.0
    mean_anom_deg = (357.5291092 + 35999.05034 * t_ut1) % 360.0
    mean_anom = math.radians(mean_anom_deg)
    ecliptic_lon_deg = (
        mean_lon_deg
        + 1.914666471 * math.sin(mean_anom)
        + 0.019994643 * math.sin(2.0 * mean_anom)
    )
    ecliptic_lon = math.radians(ecliptic_lon_deg % 360.0)
    distance_au = (
        1.000140612
        - 0.016708617 * math.cos(mean_anom)
        - 0.000139589 * math.cos(2.0 * mean_anom)
    )
    obliquity = math.radians(23.439291 - 0.0130042 * t_ut1)
    r = distance_au * AU_KM
    return np.array(
        [
            r * math.cos(ecliptic_lon),
            r * math.cos(obliquity) * math.sin(ecliptic_lon),
            r * math.sin(obliquity) * math.sin(ecliptic_lon),
        ]
    )


def is_eclipsed(position_teme_km: np.ndarray, when: datetime) -> bool:
    """True when the satellite is inside Earth's (cylindrical) shadow."""
    sun = sun_position_teme(when)
    sun_hat = sun / np.linalg.norm(sun)
    pos = np.asarray(position_teme_km, dtype=float)
    along_sun = float(np.dot(pos, sun_hat))
    if along_sun >= 0.0:
        return False  # on the day side
    # Distance from the shadow axis (the anti-sun line).
    perpendicular = pos - along_sun * sun_hat
    return float(np.linalg.norm(perpendicular)) < EARTH_RADIUS_KM


def sunlit_fraction(propagate, start: datetime, duration_s: float,
                    samples: int = 90) -> float:
    """Fraction of an interval a propagated satellite spends in sunlight.

    ``propagate(when) -> (pos_teme, vel)``.  LEO orbits spend ~60-70% of
    each orbit sunlit (more for dawn-dusk sun-synchronous orbits).
    """
    if samples < 2:
        raise ValueError("need at least 2 samples")
    from datetime import timedelta

    sunlit = 0
    for k in range(samples):
        when = start + timedelta(seconds=duration_s * k / (samples - 1))
        pos, _vel = propagate(when)
        if not is_eclipsed(pos, when):
            sunlit += 1
    return sunlit / samples
