"""Topocentric geometry: azimuth, elevation, slant range, range rate.

This is the geometry DGS's scheduler consumes every time step (paper
Sec. 3.1, "Orbit Calculations"): whether a satellite is above the horizon
for a station and, if so, its distance, elevation, and azimuth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.orbits.constants import WGS84, EarthModel
from repro.orbits.frames import geodetic_to_ecef


@dataclass(frozen=True)
class Topocentric:
    """Look angles and range of a target from a ground site.

    Attributes
    ----------
    azimuth_deg:
        Compass azimuth, 0 = North, 90 = East, in [0, 360).
    elevation_deg:
        Elevation above the local horizon plane, in [-90, 90].
    range_km:
        Slant range to the target.
    range_rate_km_s:
        d(range)/dt, negative while the target approaches; 0 when no
        velocity was supplied.
    """

    azimuth_deg: float
    elevation_deg: float
    range_km: float
    range_rate_km_s: float = 0.0

    @property
    def is_visible(self) -> bool:
        """Above the geometric horizon (elevation > 0)."""
        return self.elevation_deg > 0.0

    def doppler_shift_hz(self, carrier_hz: float) -> float:
        """Line-of-sight Doppler shift for a given carrier frequency."""
        return -self.range_rate_km_s * 1000.0 / 299792458.0 * carrier_hz


def _enu_basis(lat_deg: float, lon_deg: float) -> np.ndarray:
    """Rows: East, North, Up unit vectors in ECEF at the given site."""
    lat = math.radians(lat_deg)
    lon = math.radians(lon_deg)
    sin_lat, cos_lat = math.sin(lat), math.cos(lat)
    sin_lon, cos_lon = math.sin(lon), math.cos(lon)
    east = np.array([-sin_lon, cos_lon, 0.0])
    north = np.array([-sin_lat * cos_lon, -sin_lat * sin_lon, cos_lat])
    up = np.array([cos_lat * cos_lon, cos_lat * sin_lon, sin_lat])
    return np.vstack([east, north, up])


def look_angles(
    site_lat_deg: float,
    site_lon_deg: float,
    site_alt_km: float,
    target_ecef_km: np.ndarray,
    target_vel_ecef_km_s: np.ndarray | None = None,
    model: EarthModel = WGS84,
) -> Topocentric:
    """Compute azimuth/elevation/range of an ECEF target from a geodetic site."""
    site_ecef = geodetic_to_ecef(site_lat_deg, site_lon_deg, site_alt_km, model)
    rel = np.asarray(target_ecef_km, dtype=float) - site_ecef
    basis = _enu_basis(site_lat_deg, site_lon_deg)
    east, north, up = basis @ rel
    rng = float(np.linalg.norm(rel))
    if rng < 1e-9:
        return Topocentric(0.0, 90.0, 0.0)
    elevation = math.degrees(math.asin(max(-1.0, min(1.0, up / rng))))
    azimuth = math.degrees(math.atan2(east, north)) % 360.0
    if azimuth >= 360.0:  # float fold: -1e-15 % 360 == 360.0
        azimuth = 0.0
    range_rate = 0.0
    if target_vel_ecef_km_s is not None:
        range_rate = float(np.dot(rel, np.asarray(target_vel_ecef_km_s)) / rng)
    return Topocentric(azimuth, elevation, rng, range_rate)


def max_slant_range_km(altitude_km: float, min_elevation_deg: float = 0.0,
                       model: EarthModel = WGS84) -> float:
    """Slant range to a satellite at ``altitude_km`` seen at the minimum elevation.

    Law-of-cosines geometry on a spherical Earth; used for quick visibility
    pre-filters and for link-budget worst cases.
    """
    re = model.radius_km
    rs = re + altitude_km
    el = math.radians(min_elevation_deg)
    # range^2 + 2*re*sin(el)*range + re^2 - rs^2 = 0, take positive root.
    b = 2.0 * re * math.sin(el)
    disc = b * b - 4.0 * (re * re - rs * rs)
    return (-b + math.sqrt(disc)) / 2.0


def coverage_radius_km(altitude_km: float, min_elevation_deg: float = 0.0,
                       model: EarthModel = WGS84) -> float:
    """Great-circle radius of a satellite's coverage footprint on the ground."""
    re = model.radius_km
    rs = re + altitude_km
    el = math.radians(min_elevation_deg)
    central_angle = math.acos(re * math.cos(el) / rs) - el
    return re * central_angle
