"""Fleet-wide ephemeris: batched SGP4 and a cached position grid.

The scheduling loop needs every satellite's ECEF position at every
scheduling instant, and every experiment variant (fig3a/3b/3c, the
ablations) needs them over the *same* horizon for the *same* fleet.  The
seed implementation called the scalar :meth:`repro.orbits.sgp4.SGP4.propagate`
once per satellite per step -- ~375k pure-Python propagations per
simulated day, repeated per variant.  This module removes both costs:

* :class:`BatchSGP4` stacks the per-satellite SGP4 coefficients into
  NumPy arrays and propagates the whole fleet (for any number of time
  offsets) in one vectorized pass, including the Kepler solve.  The math
  mirrors ``sgp4.py`` term for term, so positions agree with the scalar
  propagator to well under a metre (see ``tests/orbits/test_ephemeris.py``).
* :class:`EphemerisTable` evaluates the batch propagator on a fixed
  ``(start, step_s, num_steps)`` grid, rotates TEME -> ECEF once per step,
  and stores the resulting ``(num_steps, M, 3)`` position grid for O(1)
  per-instant lookup.
* :func:`shared_ephemeris_table` memoizes tables by fleet + grid so the
  figure runs and every ablation variant reuse one propagation, and can
  optionally persist tables to disk (``REPRO_EPHEMERIS_CACHE`` or the
  ``cache_dir`` argument).

Satellites whose batched positions disagree with the scalar propagator at
the grid start (exotic element sets; none in the paper's fleet) fall back
to per-satellite scalar propagation for their column of the table.
"""

from __future__ import annotations

import hashlib
import os
from datetime import datetime, timedelta
from typing import Sequence

import numpy as np

from repro.orbits.sgp4 import SGP4, SGP4Error
from repro.orbits.timebase import datetime_to_jd, gmst_rad

__all__ = [
    "BatchSGP4",
    "EphemerisTable",
    "StreamingEphemerisTable",
    "attach_shared_tables",
    "clear_ephemeris_cache",
    "export_shared_table",
    "shared_ephemeris_table",
]

#: Batch-vs-scalar disagreement (km) above which a satellite's column is
#: recomputed with the scalar propagator.  The vectorized math tracks the
#: scalar path to ~1e-9 km, so anything past this is a genuinely exotic
#: element set.
_FALLBACK_TOLERANCE_KM = 1e-3

#: float32 storage rounds positions by up to ~1 m at LEO radii, so the
#: fallback comparison needs commensurate slack -- anything below it is
#: storage rounding, not an exotic element set.
_FALLBACK_TOLERANCE_F32_KM = 5e-2

#: Grid-alignment slack when mapping a datetime onto a table row.
_GRID_TOLERANCE_S = 1e-6


def _fallback_tolerance_km(dtype: np.dtype) -> float:
    return (_FALLBACK_TOLERANCE_F32_KM if np.dtype(dtype) == np.float32
            else _FALLBACK_TOLERANCE_KM)


class BatchSGP4:
    """Vectorized SGP4 over a fleet: one propagation call, M satellites.

    Construction stacks the coefficients that each satellite's scalar
    :class:`SGP4` initialization already computed; :meth:`propagate_tsince`
    then evaluates the whole near-Earth propagation (secular gravity,
    drag, long/short-period periodics, vectorized Kepler solve) as NumPy
    array expressions.  ``tsince`` may be shape ``(M,)`` for one instant
    or ``(K, M)`` for K instants at once.
    """

    _COEFFS = (
        "_eo", "_xincl", "_omegao", "_xmo", "_xnodeo", "_bstar",
        "_xnodp", "_aodp", "_xmdot", "_omgdot", "_xnodot", "_xnodcf",
        "_t2cof", "_c1", "_c4", "_c5", "_omgcof", "_xmcof", "_eta",
        "_delmo", "_sinmo", "_xlcof", "_aycof", "_x3thm1", "_x1mth2",
        "_x7thm1", "_cosio", "_sinio", "_ck2",
    )
    _DRAG_COEFFS = ("_d2", "_d3", "_d4", "_t3cof", "_t4cof", "_t5cof")

    def __init__(self, propagators: Sequence[SGP4]):
        self.propagators = list(propagators)
        self.num_satellites = len(self.propagators)
        self.satnums = np.array(
            [p.tle.satnum for p in self.propagators], dtype=np.int64
        )
        for name in self._COEFFS:
            values = [getattr(p, name) for p in self.propagators]
            setattr(self, name, np.array(values, dtype=float))
        # Higher-order drag terms exist only for perigee >= 220 km; a zero
        # coefficient is exactly the scalar "skip this term" branch for
        # tempa/tempe/templ, and _isimp masks the delomg/delm correction.
        self._isimp = np.array(
            [p._isimp for p in self.propagators], dtype=bool
        )
        for name in self._DRAG_COEFFS:
            values = [getattr(p, name, 0.0) for p in self.propagators]
            setattr(self, name, np.array(values, dtype=float))
        if self.propagators:
            self._xke = self.propagators[0]._xke
            self._xkmper = self.propagators[0]._xkmper
        else:  # empty fleet: keep propagate() well-defined
            self._xke, self._xkmper = 0.0743669161, 6378.135

    def propagate_tsince(
        self, tsince_min: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched propagation ``tsince_min`` minutes past each TLE epoch.

        ``tsince_min`` has shape ``(..., M)``; returns TEME
        ``(position_km, velocity_km_s)`` of shape ``(..., M, 3)``.
        """
        t = np.asarray(tsince_min, dtype=float)
        if t.shape[-1:] != (self.num_satellites,):
            raise ValueError(
                f"tsince last axis must be {self.num_satellites}, "
                f"got shape {t.shape}"
            )

        # Secular gravity and atmospheric drag.
        xmdf = self._xmo + self._xmdot * t
        omgadf = self._omegao + self._omgdot * t
        xnoddf = self._xnodeo + self._xnodot * t
        tsq = t * t
        xnode = xnoddf + self._xnodcf * tsq
        tempa = 1.0 - self._c1 * t
        tempe = self._bstar * self._c4 * t
        templ = self._t2cof * tsq

        delomg = self._omgcof * t
        delm = self._xmcof * ((1.0 + self._eta * np.cos(xmdf)) ** 3 - self._delmo)
        corr = delomg + delm
        nonsimp = ~self._isimp
        xmp = np.where(nonsimp, xmdf + corr, xmdf)
        omega = np.where(nonsimp, omgadf - corr, omgadf)
        tcube = tsq * t
        tfour = t * tcube
        tempa = tempa - self._d2 * tsq - self._d3 * tcube - self._d4 * tfour
        tempe = np.where(
            nonsimp,
            tempe + self._bstar * self._c5 * (np.sin(xmp) - self._sinmo),
            tempe,
        )
        templ = templ + self._t3cof * tcube + self._t4cof * tfour \
            + self._t5cof * t * tfour

        a = self._aodp * tempa * tempa
        e = self._eo - tempe
        bad = (e >= 1.0) | (e < -0.001) | (a < 0.95)
        if bad.any():
            index = int(np.argwhere(bad)[0][-1])
            raise SGP4Error(
                f"satellite {int(self.satnums[index])} decayed or propagation "
                "diverged during batch propagation"
            )
        e = np.maximum(e, 1e-6)
        xl = xmp + omega + xnode + self._xnodp * templ
        beta = np.sqrt(1.0 - e * e)
        xn = self._xke / a**1.5

        # Long period periodics.
        axn = e * np.cos(omega)
        temp = 1.0 / (a * beta * beta)
        xll = temp * self._xlcof * axn
        aynl = temp * self._aycof
        xlt = xl + xll
        ayn = e * np.sin(omega) + aynl

        # Kepler solve in (axn, ayn) variables, all satellites at once.
        # Converged entries sit at a fixed point of the update, so running
        # them through the remaining iterations changes nothing material.
        capu = np.mod(xlt - xnode, 2.0 * np.pi)
        epw = capu.copy()
        for _ in range(10):
            sinepw = np.sin(epw)
            cosepw = np.cos(epw)
            temp3 = axn * sinepw
            temp4 = ayn * cosepw
            temp5 = axn * cosepw
            temp6 = ayn * sinepw
            new_epw = (capu - temp4 + temp3 - epw) / (1.0 - temp5 - temp6) + epw
            done = np.abs(new_epw - epw) <= 1e-12
            epw = new_epw
            if done.all():
                break
        sinepw = np.sin(epw)
        cosepw = np.cos(epw)
        temp3 = axn * sinepw
        temp4 = ayn * cosepw
        temp5 = axn * cosepw
        temp6 = ayn * sinepw

        # Short period preliminary quantities.
        ecose = temp5 + temp6
        esine = temp3 - temp4
        elsq = axn * axn + ayn * ayn
        temp = 1.0 - elsq
        pl = a * temp
        if (pl < 0.0).any():
            index = int(np.argwhere(pl < 0.0)[0][-1])
            raise SGP4Error(
                f"satellite {int(self.satnums[index])}: semilatus rectum "
                "went negative during batch propagation"
            )
        r = a * (1.0 - ecose)
        temp1 = 1.0 / r
        rdot = self._xke * np.sqrt(a) * esine * temp1
        rfdot = self._xke * np.sqrt(pl) * temp1
        temp2 = a * temp1
        betal = np.sqrt(temp)
        temp3 = 1.0 / (1.0 + betal)
        cosu = temp2 * (cosepw - axn + ayn * esine * temp3)
        sinu = temp2 * (sinepw - ayn - axn * esine * temp3)
        u = np.arctan2(sinu, cosu)
        sin2u = 2.0 * sinu * cosu
        cos2u = 2.0 * cosu * cosu - 1.0
        temp = 1.0 / pl
        temp1 = self._ck2 * temp
        temp2 = temp1 * temp

        # Update for short periodics.
        rk = r * (1.0 - 1.5 * temp2 * betal * self._x3thm1) \
            + 0.5 * temp1 * self._x1mth2 * cos2u
        uk = u - 0.25 * temp2 * self._x7thm1 * sin2u
        xnodek = xnode + 1.5 * temp2 * self._cosio * sin2u
        xinck = self._xincl + 1.5 * temp2 * self._cosio * self._sinio * cos2u
        rdotk = rdot - xn * temp1 * self._x1mth2 * sin2u
        rfdotk = rfdot + xn * temp1 * (self._x1mth2 * cos2u + 1.5 * self._x3thm1)

        # Orientation vectors.
        sinuk = np.sin(uk)
        cosuk = np.cos(uk)
        sinik = np.sin(xinck)
        cosik = np.cos(xinck)
        sinnok = np.sin(xnodek)
        cosnok = np.cos(xnodek)
        xmx = -sinnok * cosik
        xmy = cosnok * cosik
        ux = xmx * sinuk + cosnok * cosuk
        uy = xmy * sinuk + sinnok * cosuk
        uz = sinik * sinuk
        vx = xmx * cosuk - cosnok * sinuk
        vy = xmy * cosuk - sinnok * sinuk
        vz = sinik * cosuk

        pos = np.stack([rk * ux, rk * uy, rk * uz], axis=-1) * self._xkmper
        vel = np.stack(
            [
                rdotk * ux + rfdotk * vx,
                rdotk * uy + rfdotk * vy,
                rdotk * uz + rfdotk * vz,
            ],
            axis=-1,
        ) * (self._xkmper / 60.0)
        return pos, vel


class EphemerisTable:
    """Precomputed fleet ECEF positions on a fixed scheduling grid.

    ``positions_ecef[k, i]`` is satellite ``i``'s ECEF position (km) at
    ``start + k * step_s``.  Built once per (fleet, grid) and shared
    across experiment variants via :func:`shared_ephemeris_table`.
    """

    def __init__(self, start: datetime, step_s: float,
                 positions_ecef: np.ndarray):
        if step_s <= 0:
            raise ValueError("step must be positive")
        # Preserve float32 storage (and shared-memory buffer views -- no
        # copy when the dtype already matches); everything else normalizes
        # to float64 as before.
        positions_ecef = np.asarray(positions_ecef)
        if positions_ecef.dtype != np.float32:
            positions_ecef = np.asarray(positions_ecef, dtype=float)
        if positions_ecef.ndim != 3 or positions_ecef.shape[-1] != 3:
            raise ValueError(
                f"positions must have shape (num_steps, M, 3), "
                f"got {positions_ecef.shape}"
            )
        self.start = start
        self.step_s = float(step_s)
        self.positions = positions_ecef
        self.num_steps = positions_ecef.shape[0]
        self.num_satellites = positions_ecef.shape[1]

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, satellites: Sequence, start: datetime, num_steps: int,
              step_s: float, chunk_steps: int = 128,
              dtype: str = "float64") -> "EphemerisTable":
        """Batch-propagate a fleet over the grid and rotate into ECEF.

        ``satellites`` is anything carrying a ``tle`` (a
        :class:`repro.satellites.satellite.Satellite` or a bare propagator
        wrapper).  ``chunk_steps`` bounds the size of the temporaries the
        vectorized propagation allocates.  ``dtype="float32"`` halves the
        stored table (propagation still runs in float64; only storage is
        rounded -- sub-metre at LEO radii).
        """
        if num_steps <= 0:
            raise ValueError("num_steps must be positive")
        propagators = [_propagator_of(sat) for sat in satellites]
        batch = BatchSGP4(propagators)
        m = batch.num_satellites
        positions = np.empty((num_steps, m, 3), dtype=np.dtype(dtype))
        if m == 0:
            return cls(start, step_s, positions)

        epoch_offset_min = np.array(
            [
                (start - p.tle.epoch).total_seconds() / 60.0
                for p in propagators
            ]
        )
        step_min = step_s / 60.0
        jd0 = datetime_to_jd(start)
        for lo in range(0, num_steps, chunk_steps):
            hi = min(lo + chunk_steps, num_steps)
            k = np.arange(lo, hi, dtype=float)
            tsince = epoch_offset_min[None, :] + k[:, None] * step_min
            teme, _vel = batch.propagate_tsince(tsince)
            theta = np.array(
                [gmst_rad(jd0 + kk * step_s / 86400.0) for kk in k]
            )
            positions[lo:hi] = _rotate_teme_to_ecef(teme, theta)

        table = cls(start, step_s, positions)
        table._apply_scalar_fallback(propagators)
        return table

    def _apply_scalar_fallback(self, propagators: list[SGP4]) -> None:
        """Recompute columns where the batch path disagrees with scalar.

        One scalar propagation per satellite at the grid start flags
        exotic element sets; flagged satellites get their whole column
        from the reference scalar propagator.
        """
        first = self.start
        tolerance_km = _fallback_tolerance_km(self.positions.dtype)
        for i, prop in enumerate(propagators):
            scalar_pos, _ = prop.propagate(first)
            jd = datetime_to_jd(first)
            scalar_ecef = _rotate_teme_to_ecef(
                scalar_pos[None, None, :], np.array([gmst_rad(jd)])
            )[0, 0]
            if np.linalg.norm(self.positions[0, i] - scalar_ecef) \
                    <= tolerance_km:
                continue
            for k in range(self.num_steps):
                when = self.start + timedelta(seconds=k * self.step_s)
                pos, _ = prop.propagate(when)
                theta = gmst_rad(datetime_to_jd(when))
                self.positions[k, i] = _rotate_teme_to_ecef(
                    pos[None, None, :], np.array([theta])
                )[0, 0]

    # -- lookup ------------------------------------------------------------

    def index_of(self, when: datetime) -> int | None:
        """Grid row for ``when``, or None when off-grid / out of range."""
        offset_s = (when - self.start).total_seconds()
        k = offset_s / self.step_s
        nearest = round(k)
        if abs(offset_s - nearest * self.step_s) > _GRID_TOLERANCE_S:
            return None
        if not 0 <= nearest < self.num_steps:
            return None
        return int(nearest)

    def positions_ecef(self, when: datetime) -> np.ndarray | None:
        """All-fleet ``(M, 3)`` ECEF positions at ``when``, if on-grid."""
        index = self.index_of(when)
        if index is None:
            return None
        return self.positions[index]

    def covers(self, start: datetime, num_steps: int, step_s: float) -> bool:
        """Whether this table serves a request for the given grid."""
        if abs(step_s - self.step_s) > 1e-9:
            return False
        if abs((start - self.start).total_seconds()) > _GRID_TOLERANCE_S:
            return False
        return num_steps <= self.num_steps

    # -- persistence -------------------------------------------------------

    def save(self, path: str) -> None:
        """Persist the table as a compressed ``.npz`` archive."""
        np.savez_compressed(
            path,
            positions=self.positions,
            start=np.array([self.start.isoformat()]),
            step_s=np.array([self.step_s]),
        )

    @classmethod
    def load(cls, path: str) -> "EphemerisTable":
        with np.load(path, allow_pickle=False) as data:
            start = datetime.fromisoformat(str(data["start"][0]))
            return cls(start, float(data["step_s"][0]), data["positions"])


class StreamingEphemerisTable:
    """Window-on-demand ephemeris with the :class:`EphemerisTable` lookup API.

    A 10k-satellite day at minute cadence is 1440 x 10000 x 3 float64 --
    ~350 MB of positions, most of which the minute-by-minute scheduling
    loop never holds live at once.  This table materializes only
    ``window_steps``-row windows, built lazily as lookups walk the grid,
    keeping at most ``max_resident`` windows in memory (two, so the
    planned-mode lookahead that reads slightly ahead of the live cursor
    does not thrash).

    Rows are bit-identical to the monolithic :meth:`EphemerisTable.build`
    output: windows are computed with the *global* grid arithmetic
    (absolute row indices against the global start, the same expressions
    the monolithic chunk loop evaluates), and the scalar-fallback decision
    is made once from global row 0, exactly as the monolithic build does.
    """

    def __init__(self, satellites: Sequence, start: datetime,
                 num_steps: int, step_s: float, window_steps: int = 512,
                 dtype: str = "float64", max_resident: int = 2,
                 recorder=None):
        if num_steps <= 0:
            raise ValueError("num_steps must be positive")
        if step_s <= 0:
            raise ValueError("step must be positive")
        if window_steps <= 0:
            raise ValueError("window_steps must be positive")
        if max_resident <= 0:
            raise ValueError("max_resident must be positive")
        self.start = start
        self.step_s = float(step_s)
        self.num_steps = int(num_steps)
        self.window_steps = int(window_steps)
        self.dtype = np.dtype(dtype)
        self.max_resident = int(max_resident)
        self._recorder = recorder
        self._propagators = [_propagator_of(sat) for sat in satellites]
        self._batch = BatchSGP4(self._propagators)
        self.num_satellites = self._batch.num_satellites
        self._windows: dict[int, np.ndarray] = {}
        self._lru: list[int] = []
        self.window_builds = 0
        self._epoch_offset_min = np.array(
            [
                (start - p.tle.epoch).total_seconds() / 60.0
                for p in self._propagators
            ]
        )
        self._jd0 = datetime_to_jd(start)
        # Flag exotic element sets once, from global row 0 -- the same
        # comparison (and therefore the same flags) as the monolithic
        # build, so fallback columns match too.
        self._fallback_sats: list[int] = []
        if self.num_satellites:
            row0 = self._compute_rows(0, 1, fallback=False)[0]
            tolerance_km = _fallback_tolerance_km(self.dtype)
            jd = datetime_to_jd(start)
            theta0 = np.array([gmst_rad(jd)])
            for i, prop in enumerate(self._propagators):
                scalar_pos, _ = prop.propagate(start)
                scalar_ecef = _rotate_teme_to_ecef(
                    scalar_pos[None, None, :], theta0
                )[0, 0]
                if np.linalg.norm(row0[i] - scalar_ecef) > tolerance_km:
                    self._fallback_sats.append(i)

    def _compute_rows(self, lo: int, hi: int,
                      fallback: bool = True) -> np.ndarray:
        """Rows ``[lo, hi)`` of the global grid, in storage dtype."""
        k = np.arange(lo, hi, dtype=float)
        step_min = self.step_s / 60.0
        tsince = self._epoch_offset_min[None, :] + k[:, None] * step_min
        teme, _vel = self._batch.propagate_tsince(tsince)
        theta = np.array(
            [gmst_rad(self._jd0 + kk * self.step_s / 86400.0) for kk in k]
        )
        rows = np.empty((hi - lo, self.num_satellites, 3), dtype=self.dtype)
        rows[:] = _rotate_teme_to_ecef(teme, theta)
        if fallback:
            for i in self._fallback_sats:
                for kk in range(lo, hi):
                    when = self.start + timedelta(seconds=kk * self.step_s)
                    pos, _ = self._propagators[i].propagate(when)
                    theta1 = gmst_rad(datetime_to_jd(when))
                    rows[kk - lo, i] = _rotate_teme_to_ecef(
                        pos[None, None, :], np.array([theta1])
                    )[0, 0]
        return rows

    def _window(self, w: int) -> np.ndarray:
        rows = self._windows.get(w)
        if rows is not None:
            self._lru.remove(w)
            self._lru.append(w)
            return rows
        lo = w * self.window_steps
        hi = min(lo + self.window_steps, self.num_steps)
        rows = self._compute_rows(lo, hi)
        self._windows[w] = rows
        self._lru.append(w)
        self.window_builds += 1
        if self._recorder is not None:
            self._recorder.counter("ephemeris_stream/window_builds")
        while len(self._lru) > self.max_resident:
            evicted = self._lru.pop(0)
            del self._windows[evicted]
        return rows

    # -- lookup (EphemerisTable interface) -------------------------------

    def index_of(self, when: datetime) -> int | None:
        offset_s = (when - self.start).total_seconds()
        k = offset_s / self.step_s
        nearest = round(k)
        if abs(offset_s - nearest * self.step_s) > _GRID_TOLERANCE_S:
            return None
        if not 0 <= nearest < self.num_steps:
            return None
        return int(nearest)

    def positions_ecef(self, when: datetime) -> np.ndarray | None:
        index = self.index_of(when)
        if index is None:
            return None
        w = index // self.window_steps
        return self._window(w)[index - w * self.window_steps]

    def covers(self, start: datetime, num_steps: int, step_s: float) -> bool:
        if abs(step_s - self.step_s) > 1e-9:
            return False
        if abs((start - self.start).total_seconds()) > _GRID_TOLERANCE_S:
            return False
        return num_steps <= self.num_steps


# --------------------------------------------------------------------------
# Shared keyed cache: one propagation per (fleet, grid) per process.
# --------------------------------------------------------------------------

_TABLE_CACHE: dict[tuple, EphemerisTable] = {}

#: Shared-memory ephemeris handles published by a parent process (sweep
#: runner): cache-key digest -> (shm_name, shape, dtype, start_iso,
#: step_s).  Workers consult it on cache miss and map the parent's table
#: instead of rebuilding.  Survives :func:`clear_ephemeris_cache` -- the
#: registry describes tables owned by the parent, not this process.
_SHM_REGISTRY: dict[str, tuple] = {}


def _propagator_of(sat) -> SGP4:
    """The scalar SGP4 propagator behind a satellite-like object."""
    prop = getattr(sat, "_propagator", None)
    if isinstance(prop, SGP4):
        return prop
    if isinstance(sat, SGP4):
        return sat
    return SGP4(sat.tle)


def _fleet_key(satellites: Sequence) -> tuple:
    """Identity of a fleet's orbits: the TLE lines, order-sensitive."""
    return tuple(
        tuple(_propagator_of(sat).tle.to_lines()) for sat in satellites
    )


def _table_key(satellites: Sequence, start: datetime, step_s: float,
               dtype: str) -> tuple:
    return (
        _fleet_key(satellites), start.isoformat(),
        round(float(step_s), 9), str(np.dtype(dtype)),
    )


def _key_digest(key: tuple) -> str:
    return hashlib.sha256(repr(key).encode()).hexdigest()[:24]


def shared_ephemeris_table(
    satellites: Sequence,
    start: datetime,
    num_steps: int,
    step_s: float,
    cache_dir: str | None = None,
    recorder=None,
    dtype: str = "float64",
) -> EphemerisTable:
    """Fetch (or build) the fleet's position grid from the shared cache.

    Tables are keyed by (TLE set, start, step, dtype); a cached table with
    at least ``num_steps`` rows serves any shorter request, so fig3a/3b/3c
    and every ablation over the same horizon share one propagation.  With
    ``cache_dir`` (or ``$REPRO_EPHEMERIS_CACHE``) set, tables also persist
    to disk and survive across processes.  When the parent process
    published a shared-memory table for this key
    (:func:`export_shared_table` / :func:`attach_shared_tables`), a cache
    miss maps that table instead of rebuilding -- zero-copy, one
    propagation for the whole worker pool.  ``recorder`` (a
    :class:`repro.obs.Recorder`) receives hit/miss counters
    (``ephemeris_cache/memory_hit`` / ``shm_hit`` / ``disk_hit`` /
    ``build``).
    """
    key = _table_key(satellites, start, step_s, dtype)
    cached = _TABLE_CACHE.get(key)
    if cached is not None and cached.covers(start, num_steps, step_s):
        if recorder is not None:
            recorder.counter("ephemeris_cache/memory_hit")
        return cached

    digest = _key_digest(key)
    handle = _SHM_REGISTRY.get(digest)
    if handle is not None:
        table = _attach_shm_table(handle)
        if table is not None and table.covers(start, num_steps, step_s):
            _TABLE_CACHE[key] = table
            if recorder is not None:
                recorder.counter("ephemeris_cache/shm_hit")
            return table

    cache_dir = cache_dir or os.environ.get("REPRO_EPHEMERIS_CACHE")
    disk_path = None
    if cache_dir:
        disk_path = os.path.join(cache_dir, f"ephemeris_{digest}.npz")
        if os.path.exists(disk_path):
            try:
                table = EphemerisTable.load(disk_path)
            except Exception:
                # Corrupt / truncated / foreign file: rebuild and overwrite.
                table = None
            if table is not None and table.covers(start, num_steps, step_s):
                _TABLE_CACHE[key] = table
                if recorder is not None:
                    recorder.counter("ephemeris_cache/disk_hit")
                return table

    table = EphemerisTable.build(satellites, start, num_steps, step_s,
                                 dtype=dtype)
    _TABLE_CACHE[key] = table
    if recorder is not None:
        recorder.counter("ephemeris_cache/build")
    if disk_path is not None:
        os.makedirs(cache_dir, exist_ok=True)
        _atomic_save(table, disk_path, cache_dir)
    return table


# --------------------------------------------------------------------------
# Shared-memory tables: one propagation for a whole worker pool.
# --------------------------------------------------------------------------


def export_shared_table(
    satellites: Sequence,
    start: datetime,
    num_steps: int,
    step_s: float,
    dtype: str = "float64",
) -> tuple[str, tuple, object]:
    """Build a table and publish it in POSIX shared memory.

    For the parent of a worker pool: returns ``(digest, handle, shm)``
    where ``handle`` is the picklable descriptor workers pass to
    :func:`attach_shared_tables` and ``shm`` is the owning
    ``SharedMemory`` block the parent must ``close()`` + ``unlink()``
    after the pool finishes.  The build deliberately bypasses this
    process's ``_TABLE_CACHE`` so forked workers cannot inherit a private
    copy and silently skip the shared path.
    """
    from multiprocessing import shared_memory

    table = EphemerisTable.build(satellites, start, num_steps, step_s,
                                 dtype=dtype)
    shm = shared_memory.SharedMemory(create=True,
                                     size=table.positions.nbytes)
    view = np.ndarray(table.positions.shape, dtype=table.positions.dtype,
                      buffer=shm.buf)
    view[:] = table.positions
    key = _table_key(satellites, start, step_s, dtype)
    handle = (
        shm.name, table.positions.shape, str(table.positions.dtype),
        start.isoformat(), float(step_s),
    )
    return _key_digest(key), handle, shm


def attach_shared_tables(handles: dict[str, tuple]) -> None:
    """Register parent-published shared-memory table handles.

    Called in worker processes before any simulation runs; subsequent
    :func:`shared_ephemeris_table` misses for a registered key map the
    parent's block instead of rebuilding.
    """
    _SHM_REGISTRY.update(handles)


def _attach_shm_table(handle: tuple) -> EphemerisTable | None:
    """Map a parent-published block as an :class:`EphemerisTable`."""
    from multiprocessing import resource_tracker, shared_memory

    name, shape, dtype_str, start_iso, step_s = handle
    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return None
    # The attach re-registered the block with this process's resource
    # tracker (fixed by track=False only in newer Pythons); unregister so
    # the parent, which owns the block, performs the single unlink.
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass
    positions = np.ndarray(tuple(shape), dtype=np.dtype(dtype_str),
                           buffer=shm.buf)
    table = EphemerisTable(datetime.fromisoformat(start_iso),
                           float(step_s), positions)
    # Keep the mapping alive for the table's lifetime.
    table._shm = shm
    return table


def _atomic_save(table: EphemerisTable, disk_path: str,
                 cache_dir: str) -> None:
    """Write the table to a temp file and atomically rename into place.

    A process killed mid-write must never leave a truncated ``.npz`` at
    the final path -- readers tolerate corrupt caches by rebuilding, but a
    half-written file would be silently re-read on every run until evicted.
    The temp file lives in ``cache_dir`` so the ``os.replace`` stays on
    one filesystem (rename is only atomic within a filesystem).
    """
    import tempfile

    fd, tmp_path = tempfile.mkstemp(
        dir=cache_dir, prefix=".ephemeris_tmp_", suffix=".npz"
    )
    os.close(fd)
    try:
        table.save(tmp_path)
        os.replace(tmp_path, disk_path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def clear_ephemeris_cache() -> None:
    """Drop all in-memory cached tables (tests use this)."""
    _TABLE_CACHE.clear()


def _rotate_teme_to_ecef(teme: np.ndarray, theta: np.ndarray) -> np.ndarray:
    """Rotate ``(K, M, 3)`` TEME positions by per-step GMST angles ``(K,)``."""
    cos_t = np.cos(theta)[:, None]
    sin_t = np.sin(theta)[:, None]
    x = teme[..., 0]
    y = teme[..., 1]
    return np.stack(
        [cos_t * x + sin_t * y, -sin_t * x + cos_t * y, teme[..., 2]],
        axis=-1,
    )
