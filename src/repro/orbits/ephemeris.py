"""Fleet-wide ephemeris: batched SGP4 and a cached position grid.

The scheduling loop needs every satellite's ECEF position at every
scheduling instant, and every experiment variant (fig3a/3b/3c, the
ablations) needs them over the *same* horizon for the *same* fleet.  The
seed implementation called the scalar :meth:`repro.orbits.sgp4.SGP4.propagate`
once per satellite per step -- ~375k pure-Python propagations per
simulated day, repeated per variant.  This module removes both costs:

* :class:`BatchSGP4` stacks the per-satellite SGP4 coefficients into
  NumPy arrays and propagates the whole fleet (for any number of time
  offsets) in one vectorized pass, including the Kepler solve.  The math
  mirrors ``sgp4.py`` term for term, so positions agree with the scalar
  propagator to well under a metre (see ``tests/orbits/test_ephemeris.py``).
* :class:`EphemerisTable` evaluates the batch propagator on a fixed
  ``(start, step_s, num_steps)`` grid, rotates TEME -> ECEF once per step,
  and stores the resulting ``(num_steps, M, 3)`` position grid for O(1)
  per-instant lookup.
* :func:`shared_ephemeris_table` memoizes tables by fleet + grid so the
  figure runs and every ablation variant reuse one propagation, and can
  optionally persist tables to disk (``REPRO_EPHEMERIS_CACHE`` or the
  ``cache_dir`` argument).

Satellites whose batched positions disagree with the scalar propagator at
the grid start (exotic element sets; none in the paper's fleet) fall back
to per-satellite scalar propagation for their column of the table.
"""

from __future__ import annotations

import hashlib
import os
from datetime import datetime, timedelta
from typing import Sequence

import numpy as np

from repro.orbits.sgp4 import SGP4, SGP4Error
from repro.orbits.timebase import datetime_to_jd, gmst_rad

__all__ = [
    "BatchSGP4",
    "EphemerisTable",
    "clear_ephemeris_cache",
    "shared_ephemeris_table",
]

#: Batch-vs-scalar disagreement (km) above which a satellite's column is
#: recomputed with the scalar propagator.  The vectorized math tracks the
#: scalar path to ~1e-9 km, so anything past this is a genuinely exotic
#: element set.
_FALLBACK_TOLERANCE_KM = 1e-3

#: Grid-alignment slack when mapping a datetime onto a table row.
_GRID_TOLERANCE_S = 1e-6


class BatchSGP4:
    """Vectorized SGP4 over a fleet: one propagation call, M satellites.

    Construction stacks the coefficients that each satellite's scalar
    :class:`SGP4` initialization already computed; :meth:`propagate_tsince`
    then evaluates the whole near-Earth propagation (secular gravity,
    drag, long/short-period periodics, vectorized Kepler solve) as NumPy
    array expressions.  ``tsince`` may be shape ``(M,)`` for one instant
    or ``(K, M)`` for K instants at once.
    """

    _COEFFS = (
        "_eo", "_xincl", "_omegao", "_xmo", "_xnodeo", "_bstar",
        "_xnodp", "_aodp", "_xmdot", "_omgdot", "_xnodot", "_xnodcf",
        "_t2cof", "_c1", "_c4", "_c5", "_omgcof", "_xmcof", "_eta",
        "_delmo", "_sinmo", "_xlcof", "_aycof", "_x3thm1", "_x1mth2",
        "_x7thm1", "_cosio", "_sinio", "_ck2",
    )
    _DRAG_COEFFS = ("_d2", "_d3", "_d4", "_t3cof", "_t4cof", "_t5cof")

    def __init__(self, propagators: Sequence[SGP4]):
        self.propagators = list(propagators)
        self.num_satellites = len(self.propagators)
        self.satnums = np.array(
            [p.tle.satnum for p in self.propagators], dtype=np.int64
        )
        for name in self._COEFFS:
            values = [getattr(p, name) for p in self.propagators]
            setattr(self, name, np.array(values, dtype=float))
        # Higher-order drag terms exist only for perigee >= 220 km; a zero
        # coefficient is exactly the scalar "skip this term" branch for
        # tempa/tempe/templ, and _isimp masks the delomg/delm correction.
        self._isimp = np.array(
            [p._isimp for p in self.propagators], dtype=bool
        )
        for name in self._DRAG_COEFFS:
            values = [getattr(p, name, 0.0) for p in self.propagators]
            setattr(self, name, np.array(values, dtype=float))
        if self.propagators:
            self._xke = self.propagators[0]._xke
            self._xkmper = self.propagators[0]._xkmper
        else:  # empty fleet: keep propagate() well-defined
            self._xke, self._xkmper = 0.0743669161, 6378.135

    def propagate_tsince(
        self, tsince_min: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched propagation ``tsince_min`` minutes past each TLE epoch.

        ``tsince_min`` has shape ``(..., M)``; returns TEME
        ``(position_km, velocity_km_s)`` of shape ``(..., M, 3)``.
        """
        t = np.asarray(tsince_min, dtype=float)
        if t.shape[-1:] != (self.num_satellites,):
            raise ValueError(
                f"tsince last axis must be {self.num_satellites}, "
                f"got shape {t.shape}"
            )

        # Secular gravity and atmospheric drag.
        xmdf = self._xmo + self._xmdot * t
        omgadf = self._omegao + self._omgdot * t
        xnoddf = self._xnodeo + self._xnodot * t
        tsq = t * t
        xnode = xnoddf + self._xnodcf * tsq
        tempa = 1.0 - self._c1 * t
        tempe = self._bstar * self._c4 * t
        templ = self._t2cof * tsq

        delomg = self._omgcof * t
        delm = self._xmcof * ((1.0 + self._eta * np.cos(xmdf)) ** 3 - self._delmo)
        corr = delomg + delm
        nonsimp = ~self._isimp
        xmp = np.where(nonsimp, xmdf + corr, xmdf)
        omega = np.where(nonsimp, omgadf - corr, omgadf)
        tcube = tsq * t
        tfour = t * tcube
        tempa = tempa - self._d2 * tsq - self._d3 * tcube - self._d4 * tfour
        tempe = np.where(
            nonsimp,
            tempe + self._bstar * self._c5 * (np.sin(xmp) - self._sinmo),
            tempe,
        )
        templ = templ + self._t3cof * tcube + self._t4cof * tfour \
            + self._t5cof * t * tfour

        a = self._aodp * tempa * tempa
        e = self._eo - tempe
        bad = (e >= 1.0) | (e < -0.001) | (a < 0.95)
        if bad.any():
            index = int(np.argwhere(bad)[0][-1])
            raise SGP4Error(
                f"satellite {int(self.satnums[index])} decayed or propagation "
                "diverged during batch propagation"
            )
        e = np.maximum(e, 1e-6)
        xl = xmp + omega + xnode + self._xnodp * templ
        beta = np.sqrt(1.0 - e * e)
        xn = self._xke / a**1.5

        # Long period periodics.
        axn = e * np.cos(omega)
        temp = 1.0 / (a * beta * beta)
        xll = temp * self._xlcof * axn
        aynl = temp * self._aycof
        xlt = xl + xll
        ayn = e * np.sin(omega) + aynl

        # Kepler solve in (axn, ayn) variables, all satellites at once.
        # Converged entries sit at a fixed point of the update, so running
        # them through the remaining iterations changes nothing material.
        capu = np.mod(xlt - xnode, 2.0 * np.pi)
        epw = capu.copy()
        for _ in range(10):
            sinepw = np.sin(epw)
            cosepw = np.cos(epw)
            temp3 = axn * sinepw
            temp4 = ayn * cosepw
            temp5 = axn * cosepw
            temp6 = ayn * sinepw
            new_epw = (capu - temp4 + temp3 - epw) / (1.0 - temp5 - temp6) + epw
            done = np.abs(new_epw - epw) <= 1e-12
            epw = new_epw
            if done.all():
                break
        sinepw = np.sin(epw)
        cosepw = np.cos(epw)
        temp3 = axn * sinepw
        temp4 = ayn * cosepw
        temp5 = axn * cosepw
        temp6 = ayn * sinepw

        # Short period preliminary quantities.
        ecose = temp5 + temp6
        esine = temp3 - temp4
        elsq = axn * axn + ayn * ayn
        temp = 1.0 - elsq
        pl = a * temp
        if (pl < 0.0).any():
            index = int(np.argwhere(pl < 0.0)[0][-1])
            raise SGP4Error(
                f"satellite {int(self.satnums[index])}: semilatus rectum "
                "went negative during batch propagation"
            )
        r = a * (1.0 - ecose)
        temp1 = 1.0 / r
        rdot = self._xke * np.sqrt(a) * esine * temp1
        rfdot = self._xke * np.sqrt(pl) * temp1
        temp2 = a * temp1
        betal = np.sqrt(temp)
        temp3 = 1.0 / (1.0 + betal)
        cosu = temp2 * (cosepw - axn + ayn * esine * temp3)
        sinu = temp2 * (sinepw - ayn - axn * esine * temp3)
        u = np.arctan2(sinu, cosu)
        sin2u = 2.0 * sinu * cosu
        cos2u = 2.0 * cosu * cosu - 1.0
        temp = 1.0 / pl
        temp1 = self._ck2 * temp
        temp2 = temp1 * temp

        # Update for short periodics.
        rk = r * (1.0 - 1.5 * temp2 * betal * self._x3thm1) \
            + 0.5 * temp1 * self._x1mth2 * cos2u
        uk = u - 0.25 * temp2 * self._x7thm1 * sin2u
        xnodek = xnode + 1.5 * temp2 * self._cosio * sin2u
        xinck = self._xincl + 1.5 * temp2 * self._cosio * self._sinio * cos2u
        rdotk = rdot - xn * temp1 * self._x1mth2 * sin2u
        rfdotk = rfdot + xn * temp1 * (self._x1mth2 * cos2u + 1.5 * self._x3thm1)

        # Orientation vectors.
        sinuk = np.sin(uk)
        cosuk = np.cos(uk)
        sinik = np.sin(xinck)
        cosik = np.cos(xinck)
        sinnok = np.sin(xnodek)
        cosnok = np.cos(xnodek)
        xmx = -sinnok * cosik
        xmy = cosnok * cosik
        ux = xmx * sinuk + cosnok * cosuk
        uy = xmy * sinuk + sinnok * cosuk
        uz = sinik * sinuk
        vx = xmx * cosuk - cosnok * sinuk
        vy = xmy * cosuk - sinnok * sinuk
        vz = sinik * cosuk

        pos = np.stack([rk * ux, rk * uy, rk * uz], axis=-1) * self._xkmper
        vel = np.stack(
            [
                rdotk * ux + rfdotk * vx,
                rdotk * uy + rfdotk * vy,
                rdotk * uz + rfdotk * vz,
            ],
            axis=-1,
        ) * (self._xkmper / 60.0)
        return pos, vel


class EphemerisTable:
    """Precomputed fleet ECEF positions on a fixed scheduling grid.

    ``positions_ecef[k, i]`` is satellite ``i``'s ECEF position (km) at
    ``start + k * step_s``.  Built once per (fleet, grid) and shared
    across experiment variants via :func:`shared_ephemeris_table`.
    """

    def __init__(self, start: datetime, step_s: float,
                 positions_ecef: np.ndarray):
        if step_s <= 0:
            raise ValueError("step must be positive")
        positions_ecef = np.asarray(positions_ecef, dtype=float)
        if positions_ecef.ndim != 3 or positions_ecef.shape[-1] != 3:
            raise ValueError(
                f"positions must have shape (num_steps, M, 3), "
                f"got {positions_ecef.shape}"
            )
        self.start = start
        self.step_s = float(step_s)
        self.positions = positions_ecef
        self.num_steps = positions_ecef.shape[0]
        self.num_satellites = positions_ecef.shape[1]

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, satellites: Sequence, start: datetime, num_steps: int,
              step_s: float, chunk_steps: int = 128) -> "EphemerisTable":
        """Batch-propagate a fleet over the grid and rotate into ECEF.

        ``satellites`` is anything carrying a ``tle`` (a
        :class:`repro.satellites.satellite.Satellite` or a bare propagator
        wrapper).  ``chunk_steps`` bounds the size of the temporaries the
        vectorized propagation allocates.
        """
        if num_steps <= 0:
            raise ValueError("num_steps must be positive")
        propagators = [_propagator_of(sat) for sat in satellites]
        batch = BatchSGP4(propagators)
        m = batch.num_satellites
        positions = np.empty((num_steps, m, 3))
        if m == 0:
            return cls(start, step_s, positions)

        epoch_offset_min = np.array(
            [
                (start - p.tle.epoch).total_seconds() / 60.0
                for p in propagators
            ]
        )
        step_min = step_s / 60.0
        jd0 = datetime_to_jd(start)
        for lo in range(0, num_steps, chunk_steps):
            hi = min(lo + chunk_steps, num_steps)
            k = np.arange(lo, hi, dtype=float)
            tsince = epoch_offset_min[None, :] + k[:, None] * step_min
            teme, _vel = batch.propagate_tsince(tsince)
            theta = np.array(
                [gmst_rad(jd0 + kk * step_s / 86400.0) for kk in k]
            )
            positions[lo:hi] = _rotate_teme_to_ecef(teme, theta)

        table = cls(start, step_s, positions)
        table._apply_scalar_fallback(propagators)
        return table

    def _apply_scalar_fallback(self, propagators: list[SGP4]) -> None:
        """Recompute columns where the batch path disagrees with scalar.

        One scalar propagation per satellite at the grid start flags
        exotic element sets; flagged satellites get their whole column
        from the reference scalar propagator.
        """
        first = self.start
        for i, prop in enumerate(propagators):
            scalar_pos, _ = prop.propagate(first)
            jd = datetime_to_jd(first)
            scalar_ecef = _rotate_teme_to_ecef(
                scalar_pos[None, None, :], np.array([gmst_rad(jd)])
            )[0, 0]
            if np.linalg.norm(self.positions[0, i] - scalar_ecef) \
                    <= _FALLBACK_TOLERANCE_KM:
                continue
            for k in range(self.num_steps):
                when = self.start + timedelta(seconds=k * self.step_s)
                pos, _ = prop.propagate(when)
                theta = gmst_rad(datetime_to_jd(when))
                self.positions[k, i] = _rotate_teme_to_ecef(
                    pos[None, None, :], np.array([theta])
                )[0, 0]

    # -- lookup ------------------------------------------------------------

    def index_of(self, when: datetime) -> int | None:
        """Grid row for ``when``, or None when off-grid / out of range."""
        offset_s = (when - self.start).total_seconds()
        k = offset_s / self.step_s
        nearest = round(k)
        if abs(offset_s - nearest * self.step_s) > _GRID_TOLERANCE_S:
            return None
        if not 0 <= nearest < self.num_steps:
            return None
        return int(nearest)

    def positions_ecef(self, when: datetime) -> np.ndarray | None:
        """All-fleet ``(M, 3)`` ECEF positions at ``when``, if on-grid."""
        index = self.index_of(when)
        if index is None:
            return None
        return self.positions[index]

    def covers(self, start: datetime, num_steps: int, step_s: float) -> bool:
        """Whether this table serves a request for the given grid."""
        if abs(step_s - self.step_s) > 1e-9:
            return False
        if abs((start - self.start).total_seconds()) > _GRID_TOLERANCE_S:
            return False
        return num_steps <= self.num_steps

    # -- persistence -------------------------------------------------------

    def save(self, path: str) -> None:
        """Persist the table as a compressed ``.npz`` archive."""
        np.savez_compressed(
            path,
            positions=self.positions,
            start=np.array([self.start.isoformat()]),
            step_s=np.array([self.step_s]),
        )

    @classmethod
    def load(cls, path: str) -> "EphemerisTable":
        with np.load(path, allow_pickle=False) as data:
            start = datetime.fromisoformat(str(data["start"][0]))
            return cls(start, float(data["step_s"][0]), data["positions"])


# --------------------------------------------------------------------------
# Shared keyed cache: one propagation per (fleet, grid) per process.
# --------------------------------------------------------------------------

_TABLE_CACHE: dict[tuple, EphemerisTable] = {}


def _propagator_of(sat) -> SGP4:
    """The scalar SGP4 propagator behind a satellite-like object."""
    prop = getattr(sat, "_propagator", None)
    if isinstance(prop, SGP4):
        return prop
    if isinstance(sat, SGP4):
        return sat
    return SGP4(sat.tle)


def _fleet_key(satellites: Sequence) -> tuple:
    """Identity of a fleet's orbits: the TLE lines, order-sensitive."""
    return tuple(
        tuple(_propagator_of(sat).tle.to_lines()) for sat in satellites
    )


def shared_ephemeris_table(
    satellites: Sequence,
    start: datetime,
    num_steps: int,
    step_s: float,
    cache_dir: str | None = None,
    recorder=None,
) -> EphemerisTable:
    """Fetch (or build) the fleet's position grid from the shared cache.

    Tables are keyed by (TLE set, start, step); a cached table with at
    least ``num_steps`` rows serves any shorter request, so fig3a/3b/3c
    and every ablation over the same horizon share one propagation.  With
    ``cache_dir`` (or ``$REPRO_EPHEMERIS_CACHE``) set, tables also persist
    to disk and survive across processes.  ``recorder`` (a
    :class:`repro.obs.Recorder`) receives hit/miss counters
    (``ephemeris_cache/memory_hit`` / ``disk_hit`` / ``build``).
    """
    key = (_fleet_key(satellites), start.isoformat(), round(float(step_s), 9))
    cached = _TABLE_CACHE.get(key)
    if cached is not None and cached.covers(start, num_steps, step_s):
        if recorder is not None:
            recorder.counter("ephemeris_cache/memory_hit")
        return cached

    cache_dir = cache_dir or os.environ.get("REPRO_EPHEMERIS_CACHE")
    disk_path = None
    if cache_dir:
        digest = hashlib.sha256(repr(key).encode()).hexdigest()[:24]
        disk_path = os.path.join(cache_dir, f"ephemeris_{digest}.npz")
        if os.path.exists(disk_path):
            try:
                table = EphemerisTable.load(disk_path)
            except Exception:
                # Corrupt / truncated / foreign file: rebuild and overwrite.
                table = None
            if table is not None and table.covers(start, num_steps, step_s):
                _TABLE_CACHE[key] = table
                if recorder is not None:
                    recorder.counter("ephemeris_cache/disk_hit")
                return table

    table = EphemerisTable.build(satellites, start, num_steps, step_s)
    _TABLE_CACHE[key] = table
    if recorder is not None:
        recorder.counter("ephemeris_cache/build")
    if disk_path is not None:
        os.makedirs(cache_dir, exist_ok=True)
        _atomic_save(table, disk_path, cache_dir)
    return table


def _atomic_save(table: EphemerisTable, disk_path: str,
                 cache_dir: str) -> None:
    """Write the table to a temp file and atomically rename into place.

    A process killed mid-write must never leave a truncated ``.npz`` at
    the final path -- readers tolerate corrupt caches by rebuilding, but a
    half-written file would be silently re-read on every run until evicted.
    The temp file lives in ``cache_dir`` so the ``os.replace`` stays on
    one filesystem (rename is only atomic within a filesystem).
    """
    import tempfile

    fd, tmp_path = tempfile.mkstemp(
        dir=cache_dir, prefix=".ephemeris_tmp_", suffix=".npz"
    )
    os.close(fd)
    try:
        table.save(tmp_path)
        os.replace(tmp_path, disk_path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def clear_ephemeris_cache() -> None:
    """Drop all in-memory cached tables (tests use this)."""
    _TABLE_CACHE.clear()


def _rotate_teme_to_ecef(teme: np.ndarray, theta: np.ndarray) -> np.ndarray:
    """Rotate ``(K, M, 3)`` TEME positions by per-step GMST angles ``(K,)``."""
    cos_t = np.cos(theta)[:, None]
    sin_t = np.sin(theta)[:, None]
    x = teme[..., 0]
    y = teme[..., 1]
    return np.stack(
        [cos_t * x + sin_t * y, -sin_t * x + cos_t * y, teme[..., 2]],
        axis=-1,
    )
