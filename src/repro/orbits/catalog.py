"""TLE catalog management: multi-satellite element files and staleness.

"Note that the TLEs are time-varying and are updated over time" and "for
LEO satellites, satellite location prediction using TLEs is accurate to
within a kilometer if done a few days in advance" (Sec. 3.1).  A real DGS
deployment would continuously ingest fresh element sets; this module
provides the catalog container (parse/emit standard 3LE files, pick the
freshest elements per satellite) plus the staleness error model that
quantifies the paper's accuracy claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime

import numpy as np

from repro.orbits.sgp4 import SGP4
from repro.orbits.tle import TLE, TLEError


@dataclass
class TLECatalog:
    """All known element sets, possibly several epochs per satellite."""

    _by_satnum: dict[int, list[TLE]] = field(default_factory=dict)

    def add(self, tle: TLE) -> None:
        entries = self._by_satnum.setdefault(tle.satnum, [])
        entries.append(tle)
        entries.sort(key=lambda t: t.epoch)

    def extend(self, tles) -> None:
        for tle in tles:
            self.add(tle)

    def __len__(self) -> int:
        return len(self._by_satnum)

    def __contains__(self, satnum: int) -> bool:
        return satnum in self._by_satnum

    @property
    def satnums(self) -> list[int]:
        return sorted(self._by_satnum)

    def epochs(self, satnum: int) -> list[datetime]:
        return [t.epoch for t in self._by_satnum.get(satnum, [])]

    def latest(self, satnum: int, as_of: datetime | None = None) -> TLE:
        """The freshest elements for a satellite, optionally as of a time.

        ``as_of`` models operational reality: the scheduler can only use
        elements whose epoch precedes "now".  Raises KeyError when the
        satellite is unknown or has no elements old enough.
        """
        entries = self._by_satnum.get(satnum)
        if not entries:
            raise KeyError(f"no elements for satellite {satnum}")
        if as_of is None:
            return entries[-1]
        usable = [t for t in entries if t.epoch <= as_of]
        if not usable:
            raise KeyError(
                f"no elements for satellite {satnum} with epoch <= {as_of}"
            )
        return usable[-1]

    # -- file format ----------------------------------------------------------

    def to_3le(self) -> str:
        """Serialize the newest element set per satellite as a 3LE file."""
        blocks = []
        for satnum in self.satnums:
            tle = self._by_satnum[satnum][-1]
            line1, line2 = tle.to_lines()
            name = tle.name or f"SAT-{satnum}"
            blocks.append(f"{name}\n{line1}\n{line2}")
        return "\n".join(blocks) + "\n"

    @classmethod
    def from_3le(cls, text: str, validate_checksum: bool = True) -> "TLECatalog":
        """Parse a 2LE/3LE file (name lines optional, mixed is fine)."""
        catalog = cls()
        lines = [ln.rstrip() for ln in text.splitlines() if ln.strip()]
        index = 0
        while index < len(lines):
            if lines[index].startswith("1 ") and index + 1 < len(lines):
                catalog.add(TLE.parse(lines[index:index + 2],
                                      validate_checksum=validate_checksum))
                index += 2
            elif (
                index + 2 < len(lines)
                and lines[index + 1].startswith("1 ")
                and lines[index + 2].startswith("2 ")
            ):
                catalog.add(TLE.parse(lines[index:index + 3],
                                      validate_checksum=validate_checksum))
                index += 3
            else:
                raise TLEError(
                    f"unrecognized catalog structure at line {index + 1}: "
                    f"{lines[index]!r}"
                )
        return catalog


def staleness_error_km(tle: TLE, fresh: TLE, when: datetime) -> float:
    """Position difference (km) between stale and fresh elements at a time.

    Quantifies the Sec. 3.1 accuracy claim: propagate the same satellite
    from an old element set and a freshly fitted one, and measure the
    displacement.  (For synthetic use, ``fresh`` is typically the same
    orbit re-fitted at a later epoch.)
    """
    if tle.satnum != fresh.satnum:
        raise ValueError("element sets describe different satellites")
    pos_stale, _ = SGP4(tle).propagate(when)
    pos_fresh, _ = SGP4(fresh).propagate(when)
    return float(np.linalg.norm(pos_stale - pos_fresh))
