"""Contact-window ("pass") prediction between satellites and ground sites.

A pass is the interval during which a satellite is above a station's
elevation mask.  The paper's whole premise rests on pass structure: LEO
passes last "seven to ten minutes" and a satellite sees a given station
"two-to-three" times a day (Sec. 2).  The predictor here scans elevation at
a coarse step, then bisects each horizon crossing to sub-second precision
and locates the culmination (max elevation) by golden-section search.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from datetime import datetime, timedelta
from typing import Callable, Iterator

from repro.orbits.frames import teme_to_ecef
from repro.orbits.timebase import datetime_to_jd
from repro.orbits.topocentric import look_angles

#: Signature of a propagator: UTC datetime -> (teme position km, velocity km/s).
Propagator = Callable[[datetime], tuple]


@dataclass(frozen=True)
class ContactWindow:
    """One satellite pass over one site.

    Interval contract: a window is half-open, ``[rise_time, set_time)``.
    The satellite is above the mask *at* ``rise_time`` and already below
    it *at* ``set_time``, so a tick landing exactly on one window's set
    time and the next window's rise time belongs to exactly one window —
    never both.  Step-sampled consumers
    (:class:`repro.scheduling.windows.ContactWindowIndex`) rely on this
    to avoid double-counting boundary ticks.
    """

    rise_time: datetime
    set_time: datetime
    culmination_time: datetime
    max_elevation_deg: float

    @property
    def duration_seconds(self) -> float:
        return (self.set_time - self.rise_time).total_seconds()

    def contains(self, when: datetime) -> bool:
        return self.rise_time <= when < self.set_time

    def overlaps(self, other: "ContactWindow") -> bool:
        return self.rise_time < other.set_time and other.rise_time < self.set_time


class PassPredictor:
    """Predict passes of one propagated satellite over one geodetic site.

    This is the scalar, sub-second-precision reference: it bisects the
    exact horizon crossings of a single (satellite, site) pair.  The
    vectorized :class:`repro.scheduling.windows.ContactWindowIndex`
    computes the same pass structure for *every* pair at once, but only
    at the simulation's step granularity — its step-sampled intervals
    are always bracketed by this predictor's rise/set times (pinned by
    an equivalence test).  Use the predictor for precise single-pass
    queries, the index for driving the per-step scheduling loop.
    """

    def __init__(
        self,
        propagator: Propagator,
        site_lat_deg: float,
        site_lon_deg: float,
        site_alt_km: float = 0.0,
        min_elevation_deg: float = 0.0,
    ):
        self.propagator = propagator
        self.site_lat_deg = site_lat_deg
        self.site_lon_deg = site_lon_deg
        self.site_alt_km = site_alt_km
        self.min_elevation_deg = min_elevation_deg

    def elevation_deg(self, when: datetime) -> float:
        """Elevation of the satellite above the site's horizon at ``when``."""
        pos_teme, _vel = self.propagator(when)
        pos_ecef = teme_to_ecef(pos_teme, datetime_to_jd(when))
        topo = look_angles(
            self.site_lat_deg, self.site_lon_deg, self.site_alt_km, pos_ecef
        )
        return topo.elevation_deg

    def passes(
        self,
        start: datetime,
        end: datetime,
        coarse_step_s: float = 30.0,
    ) -> Iterator[ContactWindow]:
        """Yield every contact window between ``start`` and ``end``.

        ``coarse_step_s`` must be shorter than the shortest pass of
        interest; 30 s is safe for LEO (passes of useful elevation last
        minutes).  Windows already in progress at ``start`` are reported as
        beginning at ``start``; windows still open at ``end`` are truncated.
        """
        if end <= start:
            return
        above = self.elevation_deg(start) > self.min_elevation_deg
        rise = start if above else None
        t = start
        step = timedelta(seconds=coarse_step_s)
        while t < end:
            t_next = min(t + step, end)
            now_above = self.elevation_deg(t_next) > self.min_elevation_deg
            if now_above and not above:
                rise = self._bisect_crossing(t, t_next, rising=True)
            elif above and not now_above:
                set_time = self._bisect_crossing(t, t_next, rising=False)
                if rise is not None:
                    yield self._finalize(rise, set_time)
                rise = None
            above = now_above
            t = t_next
        if above and rise is not None:
            yield self._finalize(rise, end)

    def _bisect_crossing(self, lo: datetime, hi: datetime,
                         rising: bool, tol_s: float = 0.5) -> datetime:
        """Bisect the horizon crossing inside (lo, hi) to ``tol_s`` precision."""
        while (hi - lo).total_seconds() > tol_s:
            mid = lo + (hi - lo) / 2
            above = self.elevation_deg(mid) > self.min_elevation_deg
            if above == rising:
                hi = mid
            else:
                lo = mid
        return lo + (hi - lo) / 2

    def _finalize(self, rise: datetime, set_time: datetime) -> ContactWindow:
        culmination, max_el = self._culmination(rise, set_time)
        return ContactWindow(
            rise_time=rise,
            set_time=set_time,
            culmination_time=culmination,
            max_elevation_deg=max_el,
        )

    def _culmination(self, rise: datetime, set_time: datetime,
                     tol_s: float = 1.0) -> tuple[datetime, float]:
        """Golden-section search for the elevation maximum within a pass."""
        inv_phi = (math.sqrt(5.0) - 1.0) / 2.0
        a = 0.0
        b = (set_time - rise).total_seconds()
        if b <= tol_s:
            mid = rise + timedelta(seconds=b / 2.0)
            return mid, self.elevation_deg(mid)
        c = b - inv_phi * (b - a)
        d = a + inv_phi * (b - a)
        fc = self.elevation_deg(rise + timedelta(seconds=c))
        fd = self.elevation_deg(rise + timedelta(seconds=d))
        while (b - a) > tol_s:
            if fc > fd:
                b, d, fd = d, c, fc
                c = b - inv_phi * (b - a)
                fc = self.elevation_deg(rise + timedelta(seconds=c))
            else:
                a, c, fc = c, d, fd
                d = a + inv_phi * (b - a)
                fd = self.elevation_deg(rise + timedelta(seconds=d))
        best_offset = (a + b) / 2.0
        when = rise + timedelta(seconds=best_offset)
        return when, self.elevation_deg(when)
