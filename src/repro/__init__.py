"""DGS: a distributed and hybrid ground station network for LEO satellites.

A full reproduction of Vasisht & Chandra, "A Distributed and Hybrid Ground
Station Network for Low Earth Orbit Satellites", HotNets 2020 -- the
scheduler, link-quality model, hybrid uplink design, and every substrate
the evaluation needs (SGP4 orbit propagation, ITU-R atmosphere models,
DVB-S2 rate adaptation, synthetic weather and SatNOGS-like datasets, and a
data-transfer simulator).

Quickstart::

    from datetime import datetime
    from repro import DGSNetwork
    from repro.core import build_paper_fleet, build_paper_weather
    from repro.groundstations import satnogs_like_network

    net = DGSNetwork(
        satellites=build_paper_fleet(count=20),
        network=satnogs_like_network(40),
        weather=build_paper_weather(),
    )
    step = net.schedule(datetime(2020, 6, 1, 12, 0))
    for a in step.assignments:
        print(a.satellite_index, "->", a.station_index, f"{a.bitrate_bps/1e6:.0f} Mbps")
"""

from repro.core.api import DGSNetwork
from repro.core.scenarios import ScenarioSpec
from repro.obs import ObsConfig

__version__ = "1.0.0"

__all__ = ["DGSNetwork", "ObsConfig", "ScenarioSpec", "__version__"]
