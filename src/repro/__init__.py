"""DGS: a distributed and hybrid ground station network for LEO satellites.

A full reproduction of Vasisht & Chandra, "A Distributed and Hybrid Ground
Station Network for Low Earth Orbit Satellites", HotNets 2020 -- the
scheduler, link-quality model, hybrid uplink design, and every substrate
the evaluation needs (SGP4 orbit propagation, ITU-R atmosphere models,
DVB-S2 rate adaptation, synthetic weather and SatNOGS-like datasets, and a
data-transfer simulator).

Quickstart::

    from datetime import datetime
    from repro import DGSNetwork
    from repro.core import build_paper_fleet, build_paper_weather
    from repro.groundstations import satnogs_like_network

    net = DGSNetwork(
        satellites=build_paper_fleet(count=20),
        network=satnogs_like_network(40),
        weather=build_paper_weather(),
    )
    step = net.schedule(datetime(2020, 6, 1, 12, 0))
    for a in step.assignments:
        print(a.satellite_index, "->", a.station_index, f"{a.bitrate_bps/1e6:.0f} Mbps")

Or describe a whole run as a frozen :class:`ScenarioSpec` and either
batch-run it (``spec.run()``) or drive it as an event-fed
:class:`SimulationSession` -- optionally behind the
:class:`SchedulerService` HTTP daemon (``repro serve``)::

    from repro import ScenarioSpec, SimulationSession, SubmitRequest
    from repro.demand import tenant_mix

    spec = ScenarioSpec.dgs(num_satellites=20, num_stations=40,
                            duration_s=3600.0, tenants=tenant_mix("balanced"))
    session = SimulationSession(spec)
    session.ingest([SubmitRequest("req-1", "premium",
                                  session.simulation.satellites[0].satellite_id)])
    session.advance(steps=10)
    report = session.finalize()

This module's ``__all__`` is the library's one canonical public surface;
everything else is reachable through the subpackages it re-exports from.
"""

from repro.core.api import DGSNetwork
from repro.core.scenarios import Scenario, ScenarioResult, ScenarioSpec
from repro.demand import DemandLayer, DownlinkRequest, Tenant, tenant_mix
from repro.obs import ObsConfig
from repro.service import SchedulerService
from repro.simulation import (
    OutageNotice,
    PlanDelta,
    QuotaUpdate,
    Simulation,
    SimulationConfig,
    SimulationReport,
    SimulationSession,
    SubmitRequest,
)

__version__ = "1.0.0"

__all__ = [
    "DGSNetwork",
    "DemandLayer",
    "DownlinkRequest",
    "ObsConfig",
    "OutageNotice",
    "PlanDelta",
    "QuotaUpdate",
    "Scenario",
    "ScenarioResult",
    "ScenarioSpec",
    "SchedulerService",
    "Simulation",
    "SimulationConfig",
    "SimulationReport",
    "SimulationSession",
    "SubmitRequest",
    "Tenant",
    "tenant_mix",
    "__version__",
]
