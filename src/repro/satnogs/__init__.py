"""Synthetic SatNOGS-like dataset (the paper's evaluation data substitute).

The paper filters the public SatNOGS database to 173 operational stations
with >= 1k observations and 259 satellites, and uses a month of
observation logs to validate orbit/contact calculations.  That snapshot is
not redistributable; this package generates a dataset with the same
schema and the same statistical shape -- station geography matching
Fig. 2, LEO satellites at 300-600 km, and observation logs whose
durations/elevations follow pass geometry -- plus JSON (de)serialization
and the paper's filtering step.
"""

from repro.satnogs.dataset import (
    Observation,
    SatelliteRecord,
    SatNOGSDataset,
    StationRecord,
    generate_dataset,
    generate_geometric_dataset,
)
from repro.satnogs.loader import (
    SatNOGSLoaderError,
    load_dataset,
    load_observations_api,
    load_stations_api,
    stations_to_network,
)
from repro.satnogs.validation import (
    ValidationResult,
    ks_statistic,
    validate_against_observations,
)

__all__ = [
    "StationRecord",
    "SatelliteRecord",
    "Observation",
    "SatNOGSDataset",
    "generate_dataset",
    "generate_geometric_dataset",
    "SatNOGSLoaderError",
    "load_stations_api",
    "load_observations_api",
    "load_dataset",
    "stations_to_network",
    "ValidationResult",
    "ks_statistic",
    "validate_against_observations",
]
