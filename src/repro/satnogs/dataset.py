"""SatNOGS-like records, observation log generation, and (de)serialization.

Schema follows the public SatNOGS DB closely enough that a loader for the
real network API would be a drop-in replacement for the generator:
stations carry location/antenna/status metadata and a lifetime observation
count; observations carry the (station, satellite, rise, set, max
elevation) tuple plus a simple demodulation SNR.

Observation *statistics* are grounded in geometry: durations and maximum
elevations are drawn from the joint distribution produced by actual LEO
pass geometry (short low-elevation passes are common, long zenith passes
rare), and the logged SNR follows a VHF/UHF link budget in the band the
real network operates, so the paper's low-frequency link-model validation
(Sec. 4) has something honest to validate against.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import asdict, dataclass, field
from datetime import datetime, timedelta

from repro.orbits.constellation import synthetic_leo_constellation
from repro.orbits.tle import TLE

_BANDS = ("VHF", "UHF", "L")
#: Roughly the real network's antenna mix: mostly VHF/UHF, ~20% L-band.
_BAND_WEIGHTS = (0.35, 0.45, 0.20)


@dataclass
class StationRecord:
    """One ground station row of the dataset."""

    station_id: int
    name: str
    latitude_deg: float
    longitude_deg: float
    altitude_m: float
    bands: tuple[str, ...]
    status: str  # "online" | "testing" | "offline"
    observation_count: int


@dataclass
class SatelliteRecord:
    """One satellite row: NORAD id, name, and its TLE lines."""

    norad_id: int
    name: str
    tle_line1: str
    tle_line2: str

    def tle(self) -> TLE:
        return TLE.parse([self.tle_line1, self.tle_line2], validate_checksum=False)


@dataclass
class Observation:
    """One logged pass observation."""

    observation_id: int
    station_id: int
    norad_id: int
    rise_time: datetime
    set_time: datetime
    max_elevation_deg: float
    band: str
    snr_db: float
    good: bool  # demodulation succeeded

    @property
    def duration_s(self) -> float:
        return (self.set_time - self.rise_time).total_seconds()


@dataclass
class SatNOGSDataset:
    """The full dataset: stations, satellites, a month of observations."""

    stations: list[StationRecord] = field(default_factory=list)
    satellites: list[SatelliteRecord] = field(default_factory=list)
    observations: list[Observation] = field(default_factory=list)

    # -- the paper's filtering step -----------------------------------------

    def filter_operational(self, min_observations: int = 1000) -> "SatNOGSDataset":
        """Keep online stations with >= ``min_observations`` (paper Sec. 4)."""
        keep = {
            s.station_id
            for s in self.stations
            if s.status == "online" and s.observation_count >= min_observations
        }
        return SatNOGSDataset(
            stations=[s for s in self.stations if s.station_id in keep],
            satellites=list(self.satellites),
            observations=[o for o in self.observations if o.station_id in keep],
        )

    def observations_for_station(self, station_id: int) -> list[Observation]:
        return [o for o in self.observations if o.station_id == station_id]

    def observations_for_satellite(self, norad_id: int) -> list[Observation]:
        return [o for o in self.observations if o.norad_id == norad_id]

    # -- serialization --------------------------------------------------------

    def to_json(self) -> str:
        def encode(obj):
            d = asdict(obj)
            for key, value in d.items():
                if isinstance(value, datetime):
                    d[key] = value.isoformat()
            return d

        return json.dumps(
            {
                "stations": [encode(s) for s in self.stations],
                "satellites": [encode(s) for s in self.satellites],
                "observations": [encode(o) for o in self.observations],
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "SatNOGSDataset":
        raw = json.loads(text)
        stations = [
            StationRecord(**{**s, "bands": tuple(s["bands"])})
            for s in raw["stations"]
        ]
        satellites = [SatelliteRecord(**s) for s in raw["satellites"]]
        observations = [
            Observation(
                **{
                    **o,
                    "rise_time": datetime.fromisoformat(o["rise_time"]),
                    "set_time": datetime.fromisoformat(o["set_time"]),
                }
            )
            for o in raw["observations"]
        ]
        return cls(stations, satellites, observations)


# -- generation ----------------------------------------------------------------


def _sample_pass_geometry(rng: random.Random) -> tuple[float, float]:
    """(duration_s, max_elevation_deg) from LEO pass-geometry statistics.

    For a randomly phased circular LEO orbit the maximum elevation of a
    pass is heavily skewed low: the ground-track offset is ~uniform, and
    elevation falls off sharply with offset.  We sample the offset
    fraction u ~ U(0,1) and map it through the standard geometry, giving
    the characteristic many-short / few-long pass mix; zenith passes run
     8-12 minutes, grazing passes 1-3.
    """
    u = rng.random()
    max_el = 90.0 * (1.0 - u) ** 2.2 + rng.uniform(0.0, 4.0)
    max_el = min(90.0, max(1.0, max_el))
    # Duration grows with max elevation, saturating near the overhead pass.
    full_pass_s = rng.uniform(560.0, 720.0)
    duration = full_pass_s * math.sqrt(max_el / 90.0)
    duration = max(60.0, duration * rng.uniform(0.85, 1.15))
    return duration, max_el


def _snr_for_band(band: str, max_elevation_deg: float, rng: random.Random) -> float:
    """Logged demod SNR: elevation-driven with per-pass lognormal spread."""
    base = {"VHF": 18.0, "UHF": 16.0, "L": 12.0}[band]
    elevation_gain = 10.0 * math.log10(max(0.05, math.sin(math.radians(max_elevation_deg))))
    return base + elevation_gain + rng.gauss(0.0, 2.0)


def generate_dataset(
    num_stations: int = 200,
    num_satellites: int = 259,
    start: datetime | None = None,
    days: int = 30,
    seed: int = 0,
) -> SatNOGSDataset:
    """Generate a month-long synthetic SatNOGS-like dataset.

    ``num_stations`` defaults to 200 so the paper's >=1k-observation filter
    has something to cut down to ~173; station activity levels are drawn
    log-normally, putting a realistic minority under the threshold.
    """
    if start is None:
        start = datetime(2020, 6, 1)
    rng = random.Random(seed)
    from repro.groundstations.network import satnogs_like_network

    layout = satnogs_like_network(num_stations, seed=seed)
    stations = []
    for idx, gs in enumerate(layout):
        monthly = int(rng.lognormvariate(math.log(1500.0), 0.8))
        status = "online" if rng.random() < 0.9 else rng.choice(["testing", "offline"])
        band_count = 1 if rng.random() < 0.7 else 2
        bands = tuple(
            sorted(set(rng.choices(_BANDS, weights=_BAND_WEIGHTS, k=band_count)))
        )
        stations.append(
            StationRecord(
                station_id=idx,
                name=f"satnogs-{idx:04d}",
                latitude_deg=gs.latitude_deg,
                longitude_deg=gs.longitude_deg,
                altitude_m=gs.altitude_km * 1000.0,
                bands=bands,
                status=status,
                observation_count=monthly,
            )
        )
    tles = synthetic_leo_constellation(num_satellites, start, seed=seed + 1)
    satellites = []
    for tle in tles:
        line1, line2 = tle.to_lines()
        satellites.append(
            SatelliteRecord(
                norad_id=tle.satnum,
                name=tle.name,
                tle_line1=line1,
                tle_line2=line2,
            )
        )
    observations = []
    obs_id = 0
    period_s = days * 86400.0
    for st in stations:
        if st.status != "online":
            continue
        # Scale logged observations to the station's activity level,
        # bounded to keep the dataset a tractable size.
        count = min(st.observation_count, 300)
        for _ in range(count):
            sat = rng.choice(satellites)
            duration, max_el = _sample_pass_geometry(rng)
            rise = start + timedelta(seconds=rng.uniform(0.0, period_s - duration))
            band = rng.choice(st.bands)
            snr = _snr_for_band(band, max_el, rng)
            observations.append(
                Observation(
                    observation_id=obs_id,
                    station_id=st.station_id,
                    norad_id=sat.norad_id,
                    rise_time=rise,
                    set_time=rise + timedelta(seconds=duration),
                    max_elevation_deg=max_el,
                    band=band,
                    snr_db=snr,
                    good=snr > 6.0,
                )
            )
            obs_id += 1
    observations.sort(key=lambda o: o.rise_time)
    return SatNOGSDataset(stations, satellites, observations)


def generate_geometric_dataset(
    num_stations: int = 6,
    num_satellites: int = 4,
    start: datetime | None = None,
    hours: float = 24.0,
    seed: int = 0,
    observation_probability: float = 0.8,
) -> SatNOGSDataset:
    """A small dataset whose observations come from *real* pass geometry.

    Unlike :func:`generate_dataset` (statistical observation times, sized
    for month-long populations), this propagates every satellite over
    every station and logs each true pass with probability
    ``observation_probability`` -- so orbit-validation code
    (:mod:`repro.satnogs.validation`) has ground truth to recover.  Cost
    is O(stations x satellites x hours); keep the populations small.
    """
    from repro.orbits.passes import PassPredictor
    from repro.orbits.sgp4 import SGP4

    if start is None:
        start = datetime(2020, 6, 1)
    rng = random.Random(seed)
    base = generate_dataset(num_stations=num_stations,
                            num_satellites=num_satellites,
                            start=start, days=1, seed=seed)
    stations = [
        StationRecord(**{**s.__dict__, "status": "online"})
        for s in base.stations
    ]
    observations = []
    obs_id = 0
    end = start + timedelta(hours=hours)
    for sat in base.satellites:
        propagate = SGP4(sat.tle()).propagate
        for st in stations:
            predictor = PassPredictor(
                propagate, st.latitude_deg, st.longitude_deg,
                st.altitude_m / 1000.0, min_elevation_deg=5.0,
            )
            for window in predictor.passes(start, end):
                if rng.random() > observation_probability:
                    continue
                band = rng.choice(st.bands)
                snr = _snr_for_band(band, window.max_elevation_deg, rng)
                observations.append(
                    Observation(
                        observation_id=obs_id,
                        station_id=st.station_id,
                        norad_id=sat.norad_id,
                        rise_time=window.rise_time,
                        set_time=window.set_time,
                        max_elevation_deg=window.max_elevation_deg,
                        band=band,
                        snr_db=snr,
                        good=snr > 6.0,
                    )
                )
                obs_id += 1
    observations.sort(key=lambda o: o.rise_time)
    return SatNOGSDataset(stations, base.satellites, observations)
