"""Orbit-model validation against observation logs (paper Sec. 4).

"We use the SatNOGS measurements to validate other aspects of our design
like orbit calculation, observation times, satellite-ground station link
duration, etc."  This module implements those checks: given a dataset of
logged observations and the TLEs, compare our predicted passes against
what stations actually recorded.

Metrics:

* **coverage** -- fraction of logged observations that overlap a predicted
  pass of the same satellite over the same station;
* **duration agreement** -- relative error between logged and predicted
  pass durations for the matched pairs;
* **distribution comparison** -- a two-sample Kolmogorov-Smirnov statistic
  between logged and predicted duration distributions.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import timedelta

import numpy as np

from repro.orbits.passes import ContactWindow, PassPredictor
from repro.orbits.sgp4 import SGP4
from repro.satnogs.dataset import Observation, SatNOGSDataset


@dataclass
class ValidationResult:
    """Outcome of validating predictions against an observation log."""

    observations_checked: int
    observations_matched: int
    duration_errors: list[float]  # (predicted - logged) / logged
    ks_statistic: float

    @property
    def coverage(self) -> float:
        if self.observations_checked == 0:
            return float("nan")
        return self.observations_matched / self.observations_checked

    @property
    def median_duration_error(self) -> float:
        if not self.duration_errors:
            return float("nan")
        return float(np.median(np.abs(self.duration_errors)))


def ks_statistic(sample_a, sample_b) -> float:
    """Two-sample Kolmogorov-Smirnov statistic (no p-value machinery)."""
    a = np.sort(np.asarray(list(sample_a), dtype=float))
    b = np.sort(np.asarray(list(sample_b), dtype=float))
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    return float(np.max(np.abs(cdf_a - cdf_b)))


def _overlaps(observation: Observation, window: ContactWindow,
              slack_s: float) -> bool:
    slack = timedelta(seconds=slack_s)
    return (
        observation.rise_time - slack < window.set_time
        and window.rise_time < observation.set_time + slack
    )


def validate_against_observations(
    dataset: SatNOGSDataset,
    max_observations: int = 100,
    min_elevation_deg: float = 0.0,
    slack_s: float = 120.0,
) -> ValidationResult:
    """Check logged observations against SGP4 pass predictions.

    For each sampled observation, predict the satellite's passes over the
    logging station around the observation interval and test for overlap.
    ``slack_s`` absorbs clock skew and operator-configured margins in the
    logs.  Observations of unknown satellites are skipped.
    """
    tles = {record.norad_id: record.tle() for record in dataset.satellites}
    stations = {record.station_id: record for record in dataset.stations}
    checked = 0
    matched = 0
    duration_errors: list[float] = []
    logged_durations: list[float] = []
    predicted_durations: list[float] = []
    for observation in dataset.observations[:max_observations]:
        tle = tles.get(observation.norad_id)
        station = stations.get(observation.station_id)
        if tle is None or station is None:
            continue
        predictor = PassPredictor(
            SGP4(tle).propagate,
            station.latitude_deg,
            station.longitude_deg,
            station.altitude_m / 1000.0,
            min_elevation_deg=min_elevation_deg,
        )
        search_start = observation.rise_time - timedelta(minutes=30)
        search_end = observation.set_time + timedelta(minutes=30)
        windows = list(predictor.passes(search_start, search_end))
        checked += 1
        logged_durations.append(observation.duration_s)
        overlapping = [
            w for w in windows if _overlaps(observation, w, slack_s)
        ]
        if overlapping:
            matched += 1
            best = max(overlapping, key=lambda w: w.duration_seconds)
            predicted_durations.append(best.duration_seconds)
            if observation.duration_s > 0:
                duration_errors.append(
                    (best.duration_seconds - observation.duration_s)
                    / observation.duration_s
                )
    ks = float("nan")
    if logged_durations and predicted_durations:
        ks = ks_statistic(logged_durations, predicted_durations)
    return ValidationResult(
        observations_checked=checked,
        observations_matched=matched,
        duration_errors=duration_errors,
        ks_statistic=ks,
    )
