"""Loader for real SatNOGS network API payloads.

The synthetic generator (:mod:`repro.satnogs.dataset`) produces the same
in-memory types this loader does, so a deployment with network access can
swap in the real database: download the JSON from
``https://network.satnogs.org/api/stations/`` and
``.../api/observations/`` plus a TLE file, feed them here, and every
experiment runs on real data.

The field mapping follows the public API schema (v1); unknown fields are
ignored so schema additions do not break the loader.
"""

from __future__ import annotations

import json
from datetime import datetime

from repro.groundstations.network import GroundStationNetwork
from repro.groundstations.station import GroundStation, StationCapability
from repro.orbits.catalog import TLECatalog
from repro.satnogs.dataset import Observation, SatNOGSDataset, StationRecord


class SatNOGSLoaderError(ValueError):
    """Raised on payloads that do not match the SatNOGS API schema."""


def _parse_time(text: str) -> datetime:
    # The API emits e.g. "2020-06-01T12:34:56Z".
    return datetime.fromisoformat(text.replace("Z", "+00:00")).replace(
        tzinfo=None
    )


def load_stations_api(payload: str) -> list[StationRecord]:
    """Parse a SatNOGS ``/api/stations/`` JSON array."""
    try:
        raw = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise SatNOGSLoaderError(f"invalid JSON: {exc}") from exc
    if not isinstance(raw, list):
        raise SatNOGSLoaderError("expected a JSON array of stations")
    stations = []
    for entry in raw:
        try:
            antennas = entry.get("antenna", [])
            bands = tuple(sorted({
                a.get("band", "UHF") for a in antennas
            })) or ("UHF",)
            stations.append(
                StationRecord(
                    station_id=int(entry["id"]),
                    name=str(entry.get("name", f"station-{entry['id']}")),
                    latitude_deg=float(entry["lat"]),
                    longitude_deg=float(entry["lng"]),
                    altitude_m=float(entry.get("altitude", 0.0)),
                    bands=bands,
                    status=str(entry.get("status", "online")).lower(),
                    observation_count=int(entry.get("observations", 0)),
                )
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SatNOGSLoaderError(
                f"malformed station entry {entry!r}: {exc}"
            ) from exc
    return stations


def load_observations_api(payload: str) -> list[Observation]:
    """Parse a SatNOGS ``/api/observations/`` JSON array."""
    try:
        raw = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise SatNOGSLoaderError(f"invalid JSON: {exc}") from exc
    if not isinstance(raw, list):
        raise SatNOGSLoaderError("expected a JSON array of observations")
    observations = []
    for entry in raw:
        try:
            rise = _parse_time(entry["start"])
            set_time = _parse_time(entry["end"])
            observations.append(
                Observation(
                    observation_id=int(entry["id"]),
                    station_id=int(entry["ground_station"]),
                    norad_id=int(entry["norad_cat_id"]),
                    rise_time=rise,
                    set_time=set_time,
                    max_elevation_deg=float(entry.get("max_altitude", 0.0)),
                    band=str(entry.get("transmitter_mode", "UHF")),
                    snr_db=float(entry.get("snr", 0.0) or 0.0),
                    good=str(entry.get("vetted_status", "good")) == "good",
                )
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SatNOGSLoaderError(
                f"malformed observation entry {entry!r}: {exc}"
            ) from exc
    observations.sort(key=lambda o: o.rise_time)
    return observations


def load_dataset(stations_payload: str, observations_payload: str,
                 tle_text: str = "") -> SatNOGSDataset:
    """Assemble a full dataset from API payloads plus an optional TLE file."""
    from repro.satnogs.dataset import SatelliteRecord

    stations = load_stations_api(stations_payload)
    observations = load_observations_api(observations_payload)
    satellites: list[SatelliteRecord] = []
    if tle_text.strip():
        catalog = TLECatalog.from_3le(tle_text, validate_checksum=False)
        for satnum in catalog.satnums:
            tle = catalog.latest(satnum)
            line1, line2 = tle.to_lines()
            satellites.append(
                SatelliteRecord(
                    norad_id=satnum,
                    name=tle.name or f"SAT-{satnum}",
                    tle_line1=line1,
                    tle_line2=line2,
                )
            )
    return SatNOGSDataset(stations, satellites, observations)


def stations_to_network(
    records: list[StationRecord],
    tx_capable_fraction: float = 0.1,
    min_elevation_deg: float = 5.0,
) -> GroundStationNetwork:
    """Convert dataset station records into a schedulable network.

    Stations keep their real locations; hardware is the standard DGS node
    (the records describe VHF/UHF amateur hardware -- the paper likewise
    re-equips the real sites with X-band nodes for its simulations).  The
    first ``tx_capable_fraction`` of stations (deterministic by id order)
    are made transmit-capable.
    """
    if not records:
        raise SatNOGSLoaderError("no stations to convert")
    ordered = sorted(records, key=lambda r: r.station_id)
    tx_count = max(1, round(len(ordered) * tx_capable_fraction))
    stations = []
    for index, record in enumerate(ordered):
        stations.append(
            GroundStation(
                station_id=f"satnogs-{record.station_id}",
                latitude_deg=record.latitude_deg,
                longitude_deg=record.longitude_deg,
                altitude_km=record.altitude_m / 1000.0,
                capability=(
                    StationCapability.TRANSMIT_CAPABLE
                    if index < tx_count
                    else StationCapability.RECEIVE_ONLY
                ),
                min_elevation_deg=min_elevation_deg,
                owner=record.name,
            )
        )
    return GroundStationNetwork(stations)
