"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``passes``         -- predict contact windows for a satellite (synthetic
                        or from a TLE file) over a ground site.
* ``schedule``       -- print one scheduling instant for a synthetic world.
* ``simulate``       -- run a data-transfer simulation and print the
                        report (optionally tracing it and saving JSON).
* ``experiment``     -- run one paper experiment (fig3a, fig3b, fig3c,
                        summary, setup, ablations, robustness).
* ``sweep``          -- run a grid of frozen scenario specs across worker
                        processes, with checkpoint/resume and a merged
                        schema-versioned report.
* ``serve``          -- boot the scheduler-as-a-service daemon: a ticking
                        simulation session behind HTTP endpoints for
                        request submission, plan polling, and metrics.
* ``dataset``        -- generate a SatNOGS-like dataset as JSON.
* ``validate-trace`` -- schema-check a JSONL trace emitted by a run.

Everything is synthetic and seeded, so runs are reproducible; this is the
operational face of the library for people who want numbers without
writing Python.  Every command exits non-zero with a one-line message on
stderr for operational errors (missing files, malformed inputs) instead
of a traceback.
"""

from __future__ import annotations

import argparse
import sys
from datetime import datetime, timedelta

EPOCH = datetime(2020, 6, 1)


def _load_tles(path: str, limit: int):
    """Element sets from a 2LE/3LE file (newest per satellite, capped)."""
    from repro.orbits.catalog import TLECatalog

    with open(path, "r", encoding="utf-8") as handle:
        catalog = TLECatalog.from_3le(handle.read())
    tles = [catalog.latest(satnum) for satnum in catalog.satnums]
    return tles[:limit] if limit > 0 else tles


def _cmd_passes(args: argparse.Namespace) -> int:
    from repro.orbits.passes import PassPredictor
    from repro.orbits.sgp4 import SGP4

    if args.tle_file:
        tles = _load_tles(args.tle_file, args.satellites)
        # Real elements may be epoch-ed far from the synthetic scenario
        # epoch; predict from the catalog's newest epoch instead.
        predictor_start = max(tle.epoch for tle in tles)
    else:
        from repro.orbits.constellation import synthetic_leo_constellation

        tles = synthetic_leo_constellation(
            args.satellites, EPOCH, seed=args.seed
        )
        predictor_start = EPOCH
    for tle in tles[: args.satellites]:
        predictor = PassPredictor(
            SGP4(tle).propagate, args.lat, args.lon, 0.0,
            min_elevation_deg=args.min_elevation,
        )
        windows = list(
            predictor.passes(predictor_start,
                             predictor_start + timedelta(hours=args.hours))
        )
        print(f"{tle.name} (incl {tle.inclination_deg:.1f} deg): "
              f"{len(windows)} passes")
        for w in windows:
            print(f"  {w.rise_time:%Y-%m-%d %H:%M:%S} -> "
                  f"{w.set_time:%H:%M:%S}  {w.duration_seconds / 60:4.1f} min  "
                  f"max el {w.max_elevation_deg:4.1f} deg")
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    from repro.core.scenarios import build_paper_fleet, build_paper_weather
    from repro.groundstations.network import satnogs_like_network
    from repro.scheduling.scheduler import DownlinkScheduler
    from repro.scheduling.value_functions import LatencyValue

    fleet = build_paper_fleet(args.satellites, seed=args.seed)
    for sat in fleet:
        sat.generate_data(EPOCH - timedelta(hours=1), 3600.0)
    network = satnogs_like_network(args.stations, seed=args.seed + 1)
    scheduler = DownlinkScheduler(
        fleet, network, LatencyValue(),
        matcher=args.matcher, weather=build_paper_weather(),
    )
    when = EPOCH + timedelta(minutes=args.minute)
    step = scheduler.schedule_step(when)
    print(f"{when:%Y-%m-%d %H:%M} UTC: {step.num_edges} feasible links, "
          f"{len(step.assignments)} scheduled ({args.matcher} matching)")
    for a in sorted(step.assignments, key=lambda a: -a.weight):
        print(f"  {fleet[a.satellite_index].satellite_id:>12s} -> "
              f"{network[a.station_index].station_id:<8s} "
              f"{a.bitrate_bps / 1e6:7.1f} Mbps  el {a.elevation_deg:4.1f}  "
              f"value {a.weight:.1f}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.core.scenarios import ScenarioSpec
    from repro.obs import ObsConfig

    observability = None
    if args.trace or args.manifest or args.profile_dir:
        observability = ObsConfig(
            trace_path=args.trace,
            manifest_path=args.manifest,
            profile_dir=args.profile_dir,
            profile_spans=("run",) if args.profile_dir else (),
        )
    tenants = None
    if args.tenants:
        from repro.demand import tenant_mix

        tenants = tenant_mix(args.tenants)
    common = dict(
        value=args.value, num_satellites=args.satellites,
        duration_s=args.hours * 3600.0, observability=observability,
        tenants=tenants, weather=args.weather,
        storm_rate=args.storm_rate, storm_speed=args.storm_speed,
    )
    if args.diversity > 0:
        common.update(execution_mode="diversity",
                      diversity_receivers=args.diversity)
    if args.system == "baseline":
        spec = ScenarioSpec.baseline(**common)
    else:
        spec = ScenarioSpec.dgs(
            station_fraction=args.fraction,
            num_stations=args.stations,
            constellation=args.constellation,
            spatial_culling=not args.no_culling,
            ephemeris_dtype=args.ephemeris_dtype,
            ephemeris_window_steps=args.ephemeris_window,
            contact_windows=not args.no_window_index,
            **common,
        )
    sim = spec.build().simulation
    report = sim.run()
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            handle.write(report.to_json(indent=2))
        print(f"wrote report to {args.json_out}", file=sys.stderr)
    lat = report.latency_percentiles_min((50, 90, 99))
    backlog = report.backlog_percentiles_gb((50, 90, 99))
    print(f"system: {args.system} (value function: {args.value})")
    print(f"generated: {report.generated_bits / 8e12:8.2f} TB")
    print(f"delivered: {report.delivered_tb:8.2f} TB "
          f"({report.delivery_fraction:.1%})")
    print(f"latency  p50/p90/p99: {lat[50]:.1f} / {lat[90]:.1f} / "
          f"{lat[99]:.1f} min  (mean {report.mean_latency_min():.1f})")
    print(f"backlog  p50/p90/p99: {backlog[50]:.2f} / {backlog[90]:.2f} / "
          f"{backlog[99]:.2f} GB")
    if report.tenant_reports:
        print(f"tenants (fairness {report.tenant_fairness:.3f}, "
              f"{report.total_sla_violations()} SLA violations):")
        for tenant_id, block in sorted(report.tenant_reports.items()):
            print(f"  {tenant_id:<12s} tier {block['tier']}  "
                  f"{block['delivered_gb']:8.1f} GB delivered  "
                  f"deadline hit {block['deadline_hit_rate']:.1%}  "
                  f"violations {block['sla_violations']}")
    if report.diversity:
        d = report.diversity
        per_copy = (d["copies_decoded"] / d["copies_attempted"]
                    if d["copies_attempted"] else 0.0)
        combined = (d["combined_decoded"] / d["passes"]
                    if d["passes"] else 0.0)
        print(f"diversity: {d['passes']} pass steps, "
              f"{d['copies_attempted']} copies "
              f"(decode {per_copy:.1%} per copy, {combined:.1%} combined), "
              f"{d['rescued_by_diversity']} rescued by extra receivers")
    if report.stage_timings:
        total = report.stage_timings.get("run", 0.0)
        print(f"stage timings ({total:.2f} s run loop, "
              f"{report.stage_coverage():.0%} covered):")
        for name, seconds in sorted(report.run_stage_seconds().items(),
                                    key=lambda kv: -kv[1]):
            print(f"  {name:<16s} {seconds:8.2f} s")
    if args.plot and report.all_latencies_s().size:
        from repro.analysis.plots import render_cdfs

        print()
        print(render_cdfs(
            {"latency": [v / 60.0 for v in report.all_latencies_s()]},
            title="latency CDF", x_label="minutes",
        ))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import inspect

    from repro import experiments

    modules = {
        "fig3a": experiments.fig3a,
        "fig3b": experiments.fig3b,
        "fig3c": experiments.fig3c,
        "summary": experiments.summary,
        "setup": experiments.setup_validation,
        "ablations": experiments.ablations,
        "robustness": experiments.robustness,
        "storage": experiments.storage_requirement,
    }
    module = modules[args.name]
    kwargs = {}
    if "workers" in inspect.signature(module.run).parameters:
        kwargs["workers"] = args.workers
    elif args.workers:
        print(f"repro experiment: note: {args.name} runs in-process; "
              "--workers ignored", file=sys.stderr)
    result = module.run(duration_s=args.hours * 3600.0, scale=args.scale,
                        **kwargs)
    print(result.render())
    if args.plot and result.series:
        from repro.analysis.plots import render_cdfs

        plottable = {k: v for k, v in result.series.items() if len(v) > 1}
        if plottable:
            print()
            print(render_cdfs(plottable, title=result.description))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.runners import SweepRunner
    from repro.runners.grids import build_grid, load_grid_file

    if bool(args.grid) == bool(args.grid_file):
        raise ValueError("pass exactly one of --grid or --grid-file")
    if args.workers < 0:
        raise ValueError(f"--workers must be >= 0, got {args.workers}")
    if args.resume and args.out and args.resume != args.out:
        raise ValueError("--resume DIR already names the run directory; "
                         "drop --out or make them match")
    if args.grid_file:
        cells = load_grid_file(args.grid_file)
    else:
        cells = build_grid(args.grid, args.hours * 3600.0, args.scale)
    run_dir = args.resume or args.out
    if args.trace and run_dir is None:
        raise ValueError("--trace requires --out DIR (or --resume DIR)")
    if args.share_ephemeris and args.workers < 1:
        print("repro sweep: note: --share-ephemeris needs --workers >= 1; "
              "the serial path already shares in-process", file=sys.stderr)
    runner = SweepRunner(
        cells, run_dir=run_dir, workers=args.workers,
        sweep_seed=args.sweep_seed, trace=args.trace,
        share_ephemeris=args.share_ephemeris,
    )
    result = runner.run(resume=args.resume is not None)
    mode = f"{args.workers} workers" if args.workers else "in-process"
    print(f"sweep: {result.merged['cell_count']} cells "
          f"({result.completed} run, {result.skipped} resumed; {mode})")
    for payload in result.merged["cells"]:
        report = payload["report"]
        delivered_tb = report["delivered_bits"] / 8e12
        print(f"  {payload['label']:<28s} {delivered_tb:7.2f} TB delivered  "
              f"[{payload['config_sha256'][:12]}]")
    if result.report_path:
        print(f"wrote {result.report_path}", file=sys.stderr)
        print(f"wrote {result.manifest_path}", file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.core.scenarios import ScenarioSpec
    from repro.service import SchedulerService
    from repro.simulation.session import SimulationSession

    tenants = None
    if args.tenants:
        from repro.demand import tenant_mix

        tenants = tenant_mix(args.tenants)
    spec = ScenarioSpec.dgs(
        num_satellites=args.satellites, num_stations=args.stations,
        duration_s=args.hours * 3600.0, value=args.value, tenants=tenants,
        contact_windows=not args.no_window_index,
    )
    service = SchedulerService(
        SimulationSession(spec), host=args.host, port=args.port,
        pace_s=args.pace,
    )
    host, port = service.address
    session = service.session
    print(f"repro serve: http://{host}:{port} -- "
          f"{args.satellites} satellites x {args.stations} stations, "
          f"{session.horizon_steps} steps"
          + (f", tenants={args.tenants}" if args.tenants else "")
          + "; POST /shutdown to finalize", file=sys.stderr)
    try:
        report = service.serve_forever()
    except KeyboardInterrupt:
        report = service.finalize()
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            handle.write(report.to_json(indent=2))
        print(f"wrote report to {args.json_out}", file=sys.stderr)
    print(f"served {session.step}/{session.horizon_steps} steps: "
          f"{report.delivered_tb:.2f} TB delivered "
          f"({report.delivery_fraction:.1%}), "
          f"{len(session.plan_deltas())} plan deltas")
    return 0


def _cmd_dataset(args: argparse.Namespace) -> int:
    from repro.satnogs.dataset import generate_dataset

    dataset = generate_dataset(
        num_stations=args.stations, num_satellites=args.satellites,
        days=args.days, seed=args.seed,
    )
    if args.filter:
        dataset = dataset.filter_operational()
    text = dataset.to_json()
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {len(dataset.stations)} stations, "
              f"{len(dataset.satellites)} satellites, "
              f"{len(dataset.observations)} observations to {args.output}",
              file=sys.stderr)
    return 0


def _cmd_validate_trace(args: argparse.Namespace) -> int:
    from repro.obs import validate_trace_file

    count = validate_trace_file(args.path)
    print(f"{args.path}: {count} events, schema ok")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DGS: distributed hybrid ground station network (HotNets '20)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("passes", help="predict contact windows")
    p.add_argument("--lat", type=float, default=47.6)
    p.add_argument("--lon", type=float, default=-122.3)
    p.add_argument("--min-elevation", type=float, default=5.0)
    p.add_argument("--hours", type=float, default=24.0)
    p.add_argument("--satellites", type=int, default=1)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--tle-file", default=None,
                   help="predict from a 2LE/3LE element file instead of "
                        "the synthetic constellation")
    p.set_defaults(func=_cmd_passes)

    p = sub.add_parser("schedule", help="print one scheduling instant")
    p.add_argument("--satellites", type=int, default=30)
    p.add_argument("--stations", type=int, default=40)
    p.add_argument("--minute", type=int, default=0,
                   help="minutes after the scenario epoch")
    p.add_argument("--matcher", choices=("stable", "optimal", "greedy"),
                   default="stable")
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(func=_cmd_schedule)

    p = sub.add_parser("simulate", help="run a data-transfer simulation")
    p.add_argument("--system", choices=("dgs", "baseline"), default="dgs")
    p.add_argument("--satellites", type=int, default=50)
    p.add_argument("--stations", type=int, default=60)
    p.add_argument("--fraction", type=float, default=1.0)
    p.add_argument("--value", choices=("latency", "throughput", "deadline"),
                   default="latency")
    p.add_argument("--tenants", default=None,
                   choices=("balanced", "premium-heavy", "quota-tight"),
                   help="attach a preset multi-tenant demand mix "
                        "(required for --value deadline)")
    p.add_argument("--hours", type=float, default=6.0)
    p.add_argument("--weather", choices=("cells", "storms"), default="cells",
                   help="weather process: stationary rain cells or the "
                        "same plus advected storm tracks")
    p.add_argument("--storm-rate", type=float, default=1.0,
                   help="storm births-per-day multiplier (--weather storms)")
    p.add_argument("--storm-speed", type=float, default=1.0,
                   help="storm track-speed multiplier (--weather storms)")
    p.add_argument("--diversity", type=int, default=0, metavar="N",
                   help="diversity reception with N receivers per pass "
                        "(0 = off; primary + N-1 extra listeners)")
    p.add_argument("--plot", action="store_true")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="write a schema-versioned JSONL event trace")
    p.add_argument("--manifest", default=None, metavar="PATH",
                   help="write the run manifest (config hash, seeds, "
                        "versions) as JSON")
    p.add_argument("--constellation", choices=("paper", "walker"),
                   default="paper",
                   help="fleet synthesis: paper EO mix or Walker-delta shell")
    p.add_argument("--no-culling", action="store_true",
                   help="disable the spatial-culling prefilter (dense path)")
    p.add_argument("--no-window-index", action="store_true",
                   help="disable the contact-window index (per-step "
                        "candidate generation; bit-identical reports)")
    p.add_argument("--ephemeris-dtype", choices=("float64", "float32"),
                   default="float64",
                   help="ephemeris storage precision")
    p.add_argument("--ephemeris-window", type=int, default=0, metavar="STEPS",
                   help="stream the ephemeris in windows of STEPS rows "
                        "(0 = materialize the whole horizon)")
    p.add_argument("--profile-dir", default=None, metavar="DIR",
                   help="cProfile the run span; dump stats under DIR")
    p.add_argument("--json-out", default=None, metavar="PATH",
                   help="write the full simulation report as JSON")
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("experiment", help="run one paper experiment")
    p.add_argument("name", choices=("fig3a", "fig3b", "fig3c", "summary",
                                    "setup", "ablations", "robustness",
                                    "storage"))
    p.add_argument("--scale", type=float, default=0.3)
    p.add_argument("--hours", type=float, default=12.0)
    p.add_argument("--plot", action="store_true")
    p.add_argument("--workers", type=int, default=0,
                   help="shard the experiment's scenario grid across this "
                        "many worker processes (0 = in this process)")
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser("sweep",
                       help="run a scenario grid across worker processes")
    p.add_argument("--grid", default=None,
                   help="named grid: fig3, fig3-seeds, ablations, "
                        "fault-sweep, constellation-scaling, demand-sweep, "
                        "storm-diversity")
    p.add_argument("--grid-file", default=None, metavar="PATH",
                   help="explicit grid: JSON list of {label, spec} objects")
    p.add_argument("--workers", type=int, default=0,
                   help="worker processes (0 = serial, in this process)")
    p.add_argument("--hours", type=float, default=6.0)
    p.add_argument("--scale", type=float, default=0.3)
    p.add_argument("--out", default=None, metavar="DIR",
                   help="run directory: per-cell checkpoints plus the "
                        "merged report and runtime manifest")
    p.add_argument("--resume", default=None, metavar="DIR",
                   help="resume a killed sweep from its run directory "
                        "(finished cells are skipped)")
    p.add_argument("--sweep-seed", type=int, default=None,
                   help="re-derive every cell's RNG seeds from this seed")
    p.add_argument("--share-ephemeris", action="store_true",
                   help="publish each fleet's ephemeris once in shared "
                        "memory; workers map it instead of recomputing")
    p.add_argument("--trace", action="store_true",
                   help="write a per-cell JSONL trace under DIR/traces/")
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("serve",
                       help="boot the scheduler-as-a-service daemon")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="listen port (0 = pick an ephemeral port)")
    p.add_argument("--satellites", type=int, default=50)
    p.add_argument("--stations", type=int, default=60)
    p.add_argument("--hours", type=float, default=6.0)
    p.add_argument("--value", choices=("latency", "throughput", "deadline"),
                   default="latency")
    p.add_argument("--tenants", default=None,
                   choices=("balanced", "premium-heavy", "quota-tight"),
                   help="attach a preset multi-tenant demand mix "
                        "(required for --value deadline)")
    p.add_argument("--pace", type=float, default=0.0, metavar="SECONDS",
                   help="sleep between ticks so clients can steer the "
                        "plan (0 = free-running)")
    p.add_argument("--no-window-index", action="store_true",
                   help="disable the contact-window index for the served "
                        "session (bit-identical reports)")
    p.add_argument("--json-out", default=None, metavar="PATH",
                   help="write the final simulation report as JSON")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("dataset", help="generate a SatNOGS-like dataset")
    p.add_argument("--stations", type=int, default=200)
    p.add_argument("--satellites", type=int, default=259)
    p.add_argument("--days", type=int, default=30)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--filter", action="store_true",
                   help="apply the paper's operational/1k-observation filter")
    p.add_argument("--output", default="-")
    p.set_defaults(func=_cmd_dataset)

    p = sub.add_parser("validate-trace",
                       help="schema-check a JSONL trace file")
    p.add_argument("path")
    p.set_defaults(func=_cmd_validate_trace)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (OSError, ValueError, KeyError) as exc:
        # Operational errors (missing files, malformed inputs, schema
        # violations) get one line on stderr, not a traceback.
        message = str(exc) or type(exc).__name__
        print(f"repro {args.command}: error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
