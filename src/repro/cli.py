"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``passes``      -- predict contact windows for a synthetic satellite
                     over a ground site.
* ``schedule``    -- print one scheduling instant for a synthetic world.
* ``simulate``    -- run a data-transfer simulation and print the report.
* ``experiment``  -- run one paper experiment (fig3a, fig3b, fig3c,
                     summary, setup, ablations, robustness).
* ``dataset``     -- generate a SatNOGS-like dataset as JSON.

Everything is synthetic and seeded, so runs are reproducible; this is the
operational face of the library for people who want numbers without
writing Python.
"""

from __future__ import annotations

import argparse
import sys
from datetime import datetime, timedelta

EPOCH = datetime(2020, 6, 1)


def _cmd_passes(args: argparse.Namespace) -> int:
    from repro.orbits.constellation import synthetic_leo_constellation
    from repro.orbits.passes import PassPredictor
    from repro.orbits.sgp4 import SGP4

    tles = synthetic_leo_constellation(args.satellites, EPOCH, seed=args.seed)
    predictor_start = EPOCH
    for tle in tles[: args.satellites]:
        predictor = PassPredictor(
            SGP4(tle).propagate, args.lat, args.lon, 0.0,
            min_elevation_deg=args.min_elevation,
        )
        windows = list(
            predictor.passes(predictor_start,
                             predictor_start + timedelta(hours=args.hours))
        )
        print(f"{tle.name} (incl {tle.inclination_deg:.1f} deg): "
              f"{len(windows)} passes")
        for w in windows:
            print(f"  {w.rise_time:%Y-%m-%d %H:%M:%S} -> "
                  f"{w.set_time:%H:%M:%S}  {w.duration_seconds / 60:4.1f} min  "
                  f"max el {w.max_elevation_deg:4.1f} deg")
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    from repro.core.scenarios import build_paper_fleet, build_paper_weather
    from repro.groundstations.network import satnogs_like_network
    from repro.scheduling.scheduler import DownlinkScheduler
    from repro.scheduling.value_functions import LatencyValue

    fleet = build_paper_fleet(args.satellites, seed=args.seed)
    for sat in fleet:
        sat.generate_data(EPOCH - timedelta(hours=1), 3600.0)
    network = satnogs_like_network(args.stations, seed=args.seed + 1)
    scheduler = DownlinkScheduler(
        fleet, network, LatencyValue(),
        matcher=args.matcher, weather=build_paper_weather(),
    )
    when = EPOCH + timedelta(minutes=args.minute)
    step = scheduler.schedule_step(when)
    print(f"{when:%Y-%m-%d %H:%M} UTC: {step.num_edges} feasible links, "
          f"{len(step.assignments)} scheduled ({args.matcher} matching)")
    for a in sorted(step.assignments, key=lambda a: -a.weight):
        print(f"  {fleet[a.satellite_index].satellite_id:>12s} -> "
              f"{network[a.station_index].station_id:<8s} "
              f"{a.bitrate_bps / 1e6:7.1f} Mbps  el {a.elevation_deg:4.1f}  "
              f"value {a.weight:.1f}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.core.scenarios import make_baseline_scenario, make_dgs_scenario

    if args.system == "baseline":
        _f, _n, sim = make_baseline_scenario(
            value=args.value, num_satellites=args.satellites,
            duration_s=args.hours * 3600.0,
        )
    else:
        _f, _n, sim = make_dgs_scenario(
            station_fraction=args.fraction, value=args.value,
            num_satellites=args.satellites, num_stations=args.stations,
            duration_s=args.hours * 3600.0,
        )
    report = sim.run()
    lat = report.latency_percentiles_min((50, 90, 99))
    backlog = report.backlog_percentiles_gb((50, 90, 99))
    print(f"system: {args.system} (value function: {args.value})")
    print(f"generated: {report.generated_bits / 8e12:8.2f} TB")
    print(f"delivered: {report.delivered_tb:8.2f} TB "
          f"({report.delivery_fraction:.1%})")
    print(f"latency  p50/p90/p99: {lat[50]:.1f} / {lat[90]:.1f} / "
          f"{lat[99]:.1f} min  (mean {report.mean_latency_min():.1f})")
    print(f"backlog  p50/p90/p99: {backlog[50]:.2f} / {backlog[90]:.2f} / "
          f"{backlog[99]:.2f} GB")
    if args.plot and report.all_latencies_s().size:
        from repro.analysis.plots import render_cdfs

        print()
        print(render_cdfs(
            {"latency": [v / 60.0 for v in report.all_latencies_s()]},
            title="latency CDF", x_label="minutes",
        ))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro import experiments

    modules = {
        "fig3a": experiments.fig3a,
        "fig3b": experiments.fig3b,
        "fig3c": experiments.fig3c,
        "summary": experiments.summary,
        "setup": experiments.setup_validation,
        "ablations": experiments.ablations,
        "robustness": experiments.robustness,
        "storage": experiments.storage_requirement,
    }
    module = modules[args.name]
    result = module.run(duration_s=args.hours * 3600.0, scale=args.scale)
    print(result.render())
    if args.plot and result.series:
        from repro.analysis.plots import render_cdfs

        plottable = {k: v for k, v in result.series.items() if len(v) > 1}
        if plottable:
            print()
            print(render_cdfs(plottable, title=result.description))
    return 0


def _cmd_dataset(args: argparse.Namespace) -> int:
    from repro.satnogs.dataset import generate_dataset

    dataset = generate_dataset(
        num_stations=args.stations, num_satellites=args.satellites,
        days=args.days, seed=args.seed,
    )
    if args.filter:
        dataset = dataset.filter_operational()
    text = dataset.to_json()
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {len(dataset.stations)} stations, "
              f"{len(dataset.satellites)} satellites, "
              f"{len(dataset.observations)} observations to {args.output}",
              file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DGS: distributed hybrid ground station network (HotNets '20)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("passes", help="predict contact windows")
    p.add_argument("--lat", type=float, default=47.6)
    p.add_argument("--lon", type=float, default=-122.3)
    p.add_argument("--min-elevation", type=float, default=5.0)
    p.add_argument("--hours", type=float, default=24.0)
    p.add_argument("--satellites", type=int, default=1)
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(func=_cmd_passes)

    p = sub.add_parser("schedule", help="print one scheduling instant")
    p.add_argument("--satellites", type=int, default=30)
    p.add_argument("--stations", type=int, default=40)
    p.add_argument("--minute", type=int, default=0,
                   help="minutes after the scenario epoch")
    p.add_argument("--matcher", choices=("stable", "optimal", "greedy"),
                   default="stable")
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(func=_cmd_schedule)

    p = sub.add_parser("simulate", help="run a data-transfer simulation")
    p.add_argument("--system", choices=("dgs", "baseline"), default="dgs")
    p.add_argument("--satellites", type=int, default=50)
    p.add_argument("--stations", type=int, default=60)
    p.add_argument("--fraction", type=float, default=1.0)
    p.add_argument("--value", choices=("latency", "throughput"),
                   default="latency")
    p.add_argument("--hours", type=float, default=6.0)
    p.add_argument("--plot", action="store_true")
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("experiment", help="run one paper experiment")
    p.add_argument("name", choices=("fig3a", "fig3b", "fig3c", "summary",
                                    "setup", "ablations", "robustness",
                                    "storage"))
    p.add_argument("--scale", type=float, default=0.3)
    p.add_argument("--hours", type=float, default=12.0)
    p.add_argument("--plot", action="store_true")
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser("dataset", help="generate a SatNOGS-like dataset")
    p.add_argument("--stations", type=int, default=200)
    p.add_argument("--satellites", type=int, default=259)
    p.add_argument("--days", type=int, default=30)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--filter", action="store_true",
                   help="apply the paper's operational/1k-observation filter")
    p.add_argument("--output", default="-")
    p.set_defaults(func=_cmd_dataset)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
