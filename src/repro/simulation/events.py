"""Structured event log for simulation runs.

The metrics collector aggregates; the event log *narrates*.  When enabled
(``SimulationConfig.record_events``), the engine appends one event per
transmission, delivery, plan upload, ack batch, and requeue, giving
post-hoc analysis and debugging the full story of a run ("why did
satellite 17's chunk sit for four hours?").  Events serialize to JSON
Lines for offline tooling.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from datetime import datetime
from typing import Iterator


@dataclass(frozen=True)
class Event:
    """One timestamped simulation event."""

    when: datetime
    kind: str  # transmission | delivery | plan_upload | ack_batch | requeue | loss
    satellite_id: str
    station_id: str = ""
    data: dict = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(
            {
                "when": self.when.isoformat(),
                "kind": self.kind,
                "satellite_id": self.satellite_id,
                "station_id": self.station_id,
                **self.data,
            },
            sort_keys=True,
        )


class EventLog:
    """Append-only event store with filtered iteration."""

    #: Recognized event kinds; appends of anything else are a bug.
    KINDS = frozenset(
        {"transmission", "delivery", "plan_upload", "ack_batch",
         "requeue", "loss"}
    )

    def __init__(self) -> None:
        self._events: list[Event] = []

    def append(self, event: Event) -> None:
        if event.kind not in self.KINDS:
            raise ValueError(f"unknown event kind {event.kind!r}")
        self._events.append(event)

    def record(self, when: datetime, kind: str, satellite_id: str,
               station_id: str = "", **data) -> None:
        self.append(Event(when, kind, satellite_id, station_id, data))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def of_kind(self, kind: str) -> list[Event]:
        return [e for e in self._events if e.kind == kind]

    def for_satellite(self, satellite_id: str) -> list[Event]:
        return [e for e in self._events if e.satellite_id == satellite_id]

    def between(self, start: datetime, end: datetime) -> list[Event]:
        return [e for e in self._events if start <= e.when < end]

    def to_jsonl(self) -> str:
        return "\n".join(e.to_json() for e in self._events)

    @classmethod
    def from_jsonl(cls, text: str) -> "EventLog":
        log = cls()
        for line in text.splitlines():
            if not line.strip():
                continue
            raw = json.loads(line)
            when = datetime.fromisoformat(raw.pop("when"))
            kind = raw.pop("kind")
            satellite_id = raw.pop("satellite_id")
            station_id = raw.pop("station_id", "")
            log.append(Event(when, kind, satellite_id, station_id, raw))
        return log
