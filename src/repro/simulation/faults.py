"""Fault injection: ground-station outages.

The paper's Sec. 1 motivates DGS with robustness -- "the centralized link
is a single point of failure" -- but never quantifies it.  This module
makes outages a first-class simulation input so the robustness experiment
(:mod:`repro.experiments.robustness`) can compare how the baseline and
DGS degrade when stations fail.

An :class:`OutageSchedule` is a set of (station_id, start, end) downtime
intervals; the engine drops any scheduled transmission whose station is
down (the scheduler may also be made outage-aware, modelling announced
maintenance vs. unannounced failure).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from datetime import datetime, timedelta


@dataclass(frozen=True)
class Outage:
    """One downtime interval for one station."""

    station_id: str
    start: datetime
    end: datetime

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("outage must end after it starts")

    def covers(self, when: datetime) -> bool:
        return self.start <= when < self.end

    @property
    def duration_s(self) -> float:
        return (self.end - self.start).total_seconds()


@dataclass
class OutageSchedule:
    """A collection of outages with point-in-time queries."""

    outages: list[Outage] = field(default_factory=list)

    def add(self, outage: Outage) -> None:
        self.outages.append(outage)

    def is_down(self, station_id: str, when: datetime) -> bool:
        return any(
            o.station_id == station_id and o.covers(when) for o in self.outages
        )

    def down_stations(self, when: datetime) -> set[str]:
        return {o.station_id for o in self.outages if o.covers(when)}

    def total_downtime_s(self, station_id: str) -> float:
        return sum(
            o.duration_s for o in self.outages if o.station_id == station_id
        )

    @classmethod
    def total_failure(cls, station_ids, start: datetime,
                      duration_s: float) -> "OutageSchedule":
        """Every listed station hard-down for one interval."""
        end = start + timedelta(seconds=duration_s)
        return cls([Outage(sid, start, end) for sid in station_ids])

    @classmethod
    def random_failures(
        cls,
        station_ids,
        start: datetime,
        horizon_s: float,
        mean_time_between_failures_s: float,
        mean_repair_s: float,
        seed: int = 0,
    ) -> "OutageSchedule":
        """Poisson failures with exponential repair, independently per station.

        MTBF counts operating time; a station can fail repeatedly over the
        horizon.  Deterministic given the seed.
        """
        if mean_time_between_failures_s <= 0 or mean_repair_s <= 0:
            raise ValueError("MTBF and repair time must be positive")
        rng = random.Random(seed)
        schedule = cls()
        for sid in station_ids:
            clock = 0.0
            while True:
                clock += rng.expovariate(1.0 / mean_time_between_failures_s)
                if clock >= horizon_s:
                    break
                repair = rng.expovariate(1.0 / mean_repair_s)
                begin = start + timedelta(seconds=clock)
                finish = start + timedelta(seconds=min(clock + repair, horizon_s))
                if finish > begin:
                    schedule.add(Outage(sid, begin, finish))
                clock += repair
        return schedule
